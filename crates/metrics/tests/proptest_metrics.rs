//! Property-based tests of the metric implementations.

use gsgcn_metrics::convergence::Curve;
use gsgcn_metrics::f1::{accuracy, argmax_onehot, binarize, f1_macro, f1_micro};
use gsgcn_metrics::timing::{speedup, Breakdown, Phase};
use gsgcn_tensor::DMatrix;
use proptest::prelude::*;

fn binary_matrix(
    rows: std::ops::Range<usize>,
    cols: std::ops::Range<usize>,
) -> impl Strategy<Value = DMatrix> {
    (rows, cols).prop_flat_map(|(r, c)| {
        proptest::collection::vec(prop::bool::ANY, r * c).prop_map(move |bits| {
            DMatrix::from_vec(r, c, bits.into_iter().map(|b| b as u8 as f32).collect())
        })
    })
}

/// Two binary matrices with a shared shape (prediction, target).
fn binary_matrix_pair(
    rows: std::ops::Range<usize>,
    cols: std::ops::Range<usize>,
) -> impl Strategy<Value = (DMatrix, DMatrix)> {
    (rows, cols).prop_flat_map(|(r, c)| {
        let m = move |bits: Vec<bool>| {
            DMatrix::from_vec(r, c, bits.into_iter().map(|b| b as u8 as f32).collect())
        };
        (
            proptest::collection::vec(prop::bool::ANY, r * c).prop_map(m),
            proptest::collection::vec(prop::bool::ANY, r * c).prop_map(m),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// F1 scores are always in [0, 1] and never NaN.
    #[test]
    fn f1_bounded((p, t) in binary_matrix_pair(1..10, 1..8)) {
        for v in [f1_micro(&p, &t), f1_macro(&p, &t), accuracy(&p, &t)] {
            prop_assert!((0.0..=1.0).contains(&v));
            prop_assert!(!v.is_nan());
        }
    }

    /// Perfect prediction gives F1 = 1 exactly when positives exist.
    #[test]
    fn perfect_prediction(t in binary_matrix(1..10, 1..8)) {
        let has_positive = t.data().iter().any(|&x| x > 0.0);
        let f = f1_micro(&t, &t);
        if has_positive {
            prop_assert_eq!(f, 1.0);
        } else {
            prop_assert_eq!(f, 0.0); // undefined → 0, not NaN
        }
        prop_assert_eq!(accuracy(&t, &t), 1.0);
    }

    /// F1 is symmetric under class permutation (micro).
    #[test]
    fn f1_class_permutation_invariant((p, t) in binary_matrix_pair(2..8, 2..6)) {
        let c = p.cols();
        // Rotate classes by one.
        let rot = |m: &DMatrix| DMatrix::from_fn(m.rows(), c, |i, j| m.get(i, (j + 1) % c));
        let a = f1_micro(&p, &t);
        let b = f1_micro(&rot(&p), &rot(&t));
        prop_assert!((a - b).abs() < 1e-12);
    }

    /// binarize output is binary and respects the threshold.
    #[test]
    fn binarize_contract(rows in 1usize..10, cols in 1usize..8, thr in 0.1f32..0.9, seed in any::<u64>()) {
        let probs = DMatrix::from_fn(rows, cols, |i, j| {
            (((seed as usize) + i * 7 + j * 13) % 100) as f32 / 100.0
        });
        let b = binarize(&probs, thr);
        for (pv, bv) in probs.data().iter().zip(b.data()) {
            prop_assert_eq!(*bv, if *pv >= thr { 1.0 } else { 0.0 });
        }
    }

    /// argmax_onehot rows are exactly one-hot.
    #[test]
    fn argmax_one_hot(rows in 1usize..10, cols in 1usize..8, seed in any::<u64>()) {
        let probs = DMatrix::from_fn(rows, cols, |i, j| {
            (((seed as usize) ^ (i * 31 + j * 17)) % 97) as f32 / 97.0
        });
        let a = argmax_onehot(&probs);
        for i in 0..rows {
            let s: f32 = a.row(i).iter().sum();
            prop_assert_eq!(s, 1.0);
        }
    }

    /// Breakdown fractions sum to 1 when any time was recorded.
    #[test]
    fn breakdown_fractions_sum(
        s in 0.0f64..10.0, f in 0.0f64..10.0, w in 0.0f64..10.0, o in 0.0f64..10.0
    ) {
        let mut b = Breakdown::default();
        b.add(Phase::Sampling, s);
        b.add(Phase::FeatureProp, f);
        b.add(Phase::WeightApp, w);
        b.add(Phase::Other, o);
        if b.total() > 0.0 {
            let sum: f64 = Phase::ALL.iter().map(|p| b.fraction(*p)).sum();
            prop_assert!((sum - 1.0).abs() < 1e-9);
        }
    }

    /// Curve: time_to_reach is monotone in the threshold.
    #[test]
    fn time_to_reach_monotone(points in proptest::collection::vec((0.0f64..100.0, 0.0f64..1.0), 1..20)) {
        let mut sorted = points.clone();
        sorted.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        let mut c = Curve::new("x");
        for (t, m) in sorted {
            c.push(t, m);
        }
        let lo = c.time_to_reach(0.25);
        let hi = c.time_to_reach(0.75);
        if let (Some(l), Some(h)) = (lo, hi) {
            prop_assert!(l <= h, "reaching a higher threshold cannot be earlier");
        }
        if hi.is_some() {
            prop_assert!(lo.is_some(), "reaching 0.75 implies reaching 0.25");
        }
    }

    /// Speedup arithmetic is positive for positive inputs.
    #[test]
    fn speedup_positive(a in 0.001f64..100.0, b in 0.001f64..100.0) {
        prop_assert!(speedup(a, b) > 0.0);
        prop_assert!((speedup(a, b) * speedup(b, a) - 1.0).abs() < 1e-9);
    }
}
