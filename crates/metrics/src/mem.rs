//! Process memory probes for the out-of-core benchmarks: the whole point
//! of the shard store is a bounded resident set, so the bench and the CI
//! smoke test read the kernel's own accounting instead of trusting
//! allocator statistics.

/// Read one `kB` field from `/proc/self/status`, returned in bytes.
#[cfg(target_os = "linux")]
fn proc_status_kb(field: &str) -> Option<usize> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix(field) {
            let kb: usize = rest
                .trim_start_matches(':')
                .trim()
                .trim_end_matches(" kB")
                .trim()
                .parse()
                .ok()?;
            return Some(kb * 1024);
        }
    }
    None
}

/// Peak resident set size (`VmHWM`) of the current process in bytes.
/// `None` off Linux or if `/proc` is unreadable.
pub fn peak_rss_bytes() -> Option<usize> {
    #[cfg(target_os = "linux")]
    {
        proc_status_kb("VmHWM")
    }
    #[cfg(not(target_os = "linux"))]
    {
        None
    }
}

/// Peak virtual address-space size (`VmPeak`) in bytes — what
/// `ulimit -v` actually caps, so the CI smoke test calibrates its limit
/// against this, not RSS. `None` off Linux.
pub fn peak_vm_bytes() -> Option<usize> {
    #[cfg(target_os = "linux")]
    {
        proc_status_kb("VmPeak")
    }
    #[cfg(not(target_os = "linux"))]
    {
        None
    }
}

/// Current resident set size (`VmRSS`) in bytes. `None` off Linux.
pub fn current_rss_bytes() -> Option<usize> {
    #[cfg(target_os = "linux")]
    {
        proc_status_kb("VmRSS")
    }
    #[cfg(not(target_os = "linux"))]
    {
        None
    }
}

/// Render a byte count as a short human-readable figure (`12.3 MiB`).
pub fn format_bytes(bytes: usize) -> String {
    const UNITS: [&str; 4] = ["B", "KiB", "MiB", "GiB"];
    let mut v = bytes as f64;
    let mut unit = 0;
    while v >= 1024.0 && unit + 1 < UNITS.len() {
        v /= 1024.0;
        unit += 1;
    }
    if unit == 0 {
        format!("{bytes} B")
    } else {
        format!("{v:.1} {}", UNITS[unit])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[cfg(target_os = "linux")]
    fn rss_probes_read_sane_values() {
        let current = current_rss_bytes().expect("VmRSS readable on Linux");
        let peak = peak_rss_bytes().expect("VmHWM readable on Linux");
        // A running test binary occupies at least a few hundred KiB, and
        // the high-water mark can never undercut the current value by a
        // page-accounting margin.
        assert!(current > 100 * 1024, "current RSS {current}");
        assert!(peak + 4096 >= current, "peak {peak} < current {current}");
    }

    #[test]
    fn format_bytes_units() {
        assert_eq!(format_bytes(512), "512 B");
        assert_eq!(format_bytes(2048), "2.0 KiB");
        assert_eq!(format_bytes(3 << 20), "3.0 MiB");
        assert_eq!(format_bytes(5 << 30), "5.0 GiB");
    }
}
