//! Per-phase timing: the execution-time breakdown of Fig. 3 and the
//! speedup arithmetic of Figs. 3–4 / Table II.

use std::time::Instant;

/// The three phases the paper breaks training time into (Fig. 3, rightmost
/// panels), plus a bucket for everything else (loss, optimiser, glue).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Graph sampling (Alg. 5 lines 3–5).
    Sampling,
    /// Sparse feature propagation (forward + backward).
    FeatureProp,
    /// Dense weight application (all GEMMs).
    WeightApp,
    /// Loss, optimiser state updates, bookkeeping.
    Other,
}

impl Phase {
    /// All phases in display order.
    pub const ALL: [Phase; 4] = [
        Phase::Sampling,
        Phase::FeatureProp,
        Phase::WeightApp,
        Phase::Other,
    ];

    /// Display name matching the paper's legend.
    pub fn name(&self) -> &'static str {
        match self {
            Phase::Sampling => "Sampling",
            Phase::FeatureProp => "Feat Propagation",
            Phase::WeightApp => "Weight Application",
            Phase::Other => "Other",
        }
    }
}

/// Accumulated seconds per phase.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Breakdown {
    pub sampling_secs: f64,
    pub feature_prop_secs: f64,
    pub weight_app_secs: f64,
    pub other_secs: f64,
}

impl Breakdown {
    /// Add seconds to one phase.
    pub fn add(&mut self, phase: Phase, secs: f64) {
        match phase {
            Phase::Sampling => self.sampling_secs += secs,
            Phase::FeatureProp => self.feature_prop_secs += secs,
            Phase::WeightApp => self.weight_app_secs += secs,
            Phase::Other => self.other_secs += secs,
        }
    }

    /// Seconds of one phase.
    pub fn get(&self, phase: Phase) -> f64 {
        match phase {
            Phase::Sampling => self.sampling_secs,
            Phase::FeatureProp => self.feature_prop_secs,
            Phase::WeightApp => self.weight_app_secs,
            Phase::Other => self.other_secs,
        }
    }

    /// Total seconds across phases.
    pub fn total(&self) -> f64 {
        self.sampling_secs + self.feature_prop_secs + self.weight_app_secs + self.other_secs
    }

    /// Fraction of total per phase (0 when total is 0).
    pub fn fraction(&self, phase: Phase) -> f64 {
        let t = self.total();
        if t == 0.0 {
            0.0
        } else {
            self.get(phase) / t
        }
    }

    /// Merge another breakdown into this one.
    pub fn merge(&mut self, other: &Breakdown) {
        self.sampling_secs += other.sampling_secs;
        self.feature_prop_secs += other.feature_prop_secs;
        self.weight_app_secs += other.weight_app_secs;
        self.other_secs += other.other_secs;
    }

    /// One-line report: `Sampling 12.3% | Feat 45.6% | Weight 40.0% | ...`.
    pub fn report(&self) -> String {
        Phase::ALL
            .iter()
            .map(|p| format!("{} {:.1}%", p.name(), 100.0 * self.fraction(*p)))
            .collect::<Vec<_>>()
            .join(" | ")
    }
}

/// Stopwatch that adds its elapsed time to a [`Breakdown`] phase.
pub struct PhaseTimer<'a> {
    breakdown: &'a mut Breakdown,
    phase: Phase,
    start: Instant,
}

impl<'a> PhaseTimer<'a> {
    /// Start timing `phase`.
    pub fn start(breakdown: &'a mut Breakdown, phase: Phase) -> Self {
        PhaseTimer {
            breakdown,
            phase,
            start: Instant::now(),
        }
    }
}

impl Drop for PhaseTimer<'_> {
    fn drop(&mut self) {
        self.breakdown
            .add(self.phase, self.start.elapsed().as_secs_f64());
    }
}

/// Speedup of `baseline` over `measured` (`baseline/measured`; 0 guard).
pub fn speedup(baseline_secs: f64, measured_secs: f64) -> f64 {
    if measured_secs <= 0.0 {
        0.0
    } else {
        baseline_secs / measured_secs
    }
}

/// Format a speedup table: one row per labelled series, one column per
/// x-axis point (e.g. core counts) — the layout of Table II.
pub fn format_speedup_table(
    col_header: &str,
    cols: &[usize],
    rows: &[(String, Vec<f64>)],
) -> String {
    let mut out = String::new();
    out.push_str(&format!("{col_header:<12}"));
    for c in cols {
        out.push_str(&format!("{c:>12}"));
    }
    out.push('\n');
    for (label, vals) in rows {
        out.push_str(&format!("{label:<12}"));
        for v in vals {
            out.push_str(&format!("{:>11.2}x", v));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_accumulates() {
        let mut b = Breakdown::default();
        b.add(Phase::Sampling, 1.0);
        b.add(Phase::Sampling, 0.5);
        b.add(Phase::WeightApp, 2.5);
        assert_eq!(b.sampling_secs, 1.5);
        assert_eq!(b.total(), 4.0);
        assert!((b.fraction(Phase::WeightApp) - 0.625).abs() < 1e-12);
    }

    #[test]
    fn timer_records_elapsed() {
        let mut b = Breakdown::default();
        {
            let _t = PhaseTimer::start(&mut b, Phase::FeatureProp);
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        assert!(b.feature_prop_secs >= 0.004, "{}", b.feature_prop_secs);
    }

    #[test]
    fn merge_combines() {
        let mut a = Breakdown::default();
        a.add(Phase::Sampling, 1.0);
        let mut b = Breakdown::default();
        b.add(Phase::Sampling, 2.0);
        b.add(Phase::Other, 1.0);
        a.merge(&b);
        assert_eq!(a.sampling_secs, 3.0);
        assert_eq!(a.other_secs, 1.0);
    }

    #[test]
    fn fraction_of_empty_is_zero() {
        let b = Breakdown::default();
        assert_eq!(b.fraction(Phase::Sampling), 0.0);
        assert!(!b.fraction(Phase::Sampling).is_nan());
    }

    #[test]
    fn report_contains_phases() {
        let mut b = Breakdown::default();
        b.add(Phase::WeightApp, 1.0);
        let r = b.report();
        assert!(r.contains("Weight Application 100.0%"), "{r}");
        assert!(r.contains("Sampling 0.0%"));
    }

    #[test]
    fn speedup_math() {
        assert_eq!(speedup(10.0, 2.0), 5.0);
        assert_eq!(speedup(10.0, 0.0), 0.0);
    }

    #[test]
    fn table_layout() {
        let t = format_speedup_table(
            "layers",
            &[1, 5],
            &[("1-layer".to_string(), vec![2.0, 4.8])],
        );
        assert!(t.contains("1-layer"));
        assert!(t.contains("2.00x"));
        assert!(t.contains("4.80x"));
        let header = t.lines().next().unwrap();
        assert!(header.contains('1') && header.contains('5'));
    }
}
