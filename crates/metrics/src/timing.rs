//! Per-phase timing: the execution-time breakdown of Fig. 3 and the
//! speedup arithmetic of Figs. 3–4 / Table II.

use std::time::Instant;

/// The three phases the paper breaks training time into (Fig. 3, rightmost
/// panels), plus a bucket for everything else (loss, optimiser, glue).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Graph sampling as the *consumer* sees it (Alg. 5 lines 3–5): on
    /// the synchronous path this is the full sampling wall-clock; on the
    /// pipelined path it is only the time the training loop actually
    /// stalled waiting on the sampler queue — sampling that ran hidden
    /// behind compute is accounted separately
    /// ([`Breakdown::sampling_hidden_secs`]).
    Sampling,
    /// Sparse feature propagation (forward + backward).
    FeatureProp,
    /// Dense weight application (all GEMMs).
    WeightApp,
    /// Loss, optimiser state updates, bookkeeping.
    Other,
}

impl Phase {
    /// All phases in display order.
    pub const ALL: [Phase; 4] = [
        Phase::Sampling,
        Phase::FeatureProp,
        Phase::WeightApp,
        Phase::Other,
    ];

    /// Display name matching the paper's legend.
    pub fn name(&self) -> &'static str {
        match self {
            Phase::Sampling => "Sampling",
            Phase::FeatureProp => "Feat Propagation",
            Phase::WeightApp => "Weight Application",
            Phase::Other => "Other",
        }
    }
}

/// Accumulated seconds per phase.
///
/// All four phase fields are *consumer wall-clock* — they sum
/// ([`Breakdown::total`]) to the time the training loop itself spent.
/// `sampling_hidden_secs` is the exception: sampler wall-clock that ran
/// concurrently with compute on the pipelined path. It overlaps the other
/// phases rather than adding to them, so it is excluded from `total()`
/// and reported as an overlap percentage instead.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Breakdown {
    pub sampling_secs: f64,
    pub feature_prop_secs: f64,
    pub weight_app_secs: f64,
    pub other_secs: f64,
    /// Sampler wall-clock hidden behind compute (pipelined path only;
    /// `0` on the synchronous path, where every sampling second stalls
    /// the consumer).
    pub sampling_hidden_secs: f64,
}

impl Breakdown {
    /// Add seconds to one phase.
    pub fn add(&mut self, phase: Phase, secs: f64) {
        match phase {
            Phase::Sampling => self.sampling_secs += secs,
            Phase::FeatureProp => self.feature_prop_secs += secs,
            Phase::WeightApp => self.weight_app_secs += secs,
            Phase::Other => self.other_secs += secs,
        }
    }

    /// Seconds of one phase.
    pub fn get(&self, phase: Phase) -> f64 {
        match phase {
            Phase::Sampling => self.sampling_secs,
            Phase::FeatureProp => self.feature_prop_secs,
            Phase::WeightApp => self.weight_app_secs,
            Phase::Other => self.other_secs,
        }
    }

    /// Record sampler wall-clock that overlapped compute (pipelined path).
    pub fn add_hidden_sampling(&mut self, secs: f64) {
        self.sampling_hidden_secs += secs;
    }

    /// Total sampler wall-clock: consumer stall + compute-hidden time.
    pub fn sampling_wall_secs(&self) -> f64 {
        self.sampling_secs + self.sampling_hidden_secs
    }

    /// Fraction of sampler wall-clock hidden behind compute
    /// (`0` when no sampling was recorded or nothing overlapped).
    pub fn sampling_overlap_fraction(&self) -> f64 {
        let wall = self.sampling_wall_secs();
        if wall == 0.0 {
            0.0
        } else {
            self.sampling_hidden_secs / wall
        }
    }

    /// Total consumer seconds across phases (hidden sampling overlaps
    /// these and is deliberately not included).
    pub fn total(&self) -> f64 {
        self.sampling_secs + self.feature_prop_secs + self.weight_app_secs + self.other_secs
    }

    /// Fraction of total per phase (0 when total is 0).
    pub fn fraction(&self, phase: Phase) -> f64 {
        let t = self.total();
        if t == 0.0 {
            0.0
        } else {
            self.get(phase) / t
        }
    }

    /// Merge another breakdown into this one.
    pub fn merge(&mut self, other: &Breakdown) {
        self.sampling_secs += other.sampling_secs;
        self.feature_prop_secs += other.feature_prop_secs;
        self.weight_app_secs += other.weight_app_secs;
        self.other_secs += other.other_secs;
        self.sampling_hidden_secs += other.sampling_hidden_secs;
    }

    /// One-line report: `Sampling 12.3% | Feat 45.6% | Weight 40.0% | ...`,
    /// with the sampling-overlap percentage appended when any sampling ran
    /// hidden behind compute.
    pub fn report(&self) -> String {
        let mut out = Phase::ALL
            .iter()
            .map(|p| format!("{} {:.1}%", p.name(), 100.0 * self.fraction(*p)))
            .collect::<Vec<_>>()
            .join(" | ");
        if self.sampling_hidden_secs > 0.0 {
            out.push_str(&format!(
                " | sampling overlap {:.1}%",
                100.0 * self.sampling_overlap_fraction()
            ));
        }
        out
    }
}

/// Stopwatch that adds its elapsed time to a [`Breakdown`] phase.
pub struct PhaseTimer<'a> {
    breakdown: &'a mut Breakdown,
    phase: Phase,
    start: Instant,
}

impl<'a> PhaseTimer<'a> {
    /// Start timing `phase`.
    pub fn start(breakdown: &'a mut Breakdown, phase: Phase) -> Self {
        PhaseTimer {
            breakdown,
            phase,
            start: Instant::now(),
        }
    }
}

impl Drop for PhaseTimer<'_> {
    fn drop(&mut self) {
        self.breakdown
            .add(self.phase, self.start.elapsed().as_secs_f64());
    }
}

/// Speedup of `baseline` over `measured` (`baseline/measured`; 0 guard).
pub fn speedup(baseline_secs: f64, measured_secs: f64) -> f64 {
    if measured_secs <= 0.0 {
        0.0
    } else {
        baseline_secs / measured_secs
    }
}

/// Format a speedup table: one row per labelled series, one column per
/// x-axis point (e.g. core counts) — the layout of Table II.
pub fn format_speedup_table(
    col_header: &str,
    cols: &[usize],
    rows: &[(String, Vec<f64>)],
) -> String {
    let mut out = String::new();
    out.push_str(&format!("{col_header:<12}"));
    for c in cols {
        out.push_str(&format!("{c:>12}"));
    }
    out.push('\n');
    for (label, vals) in rows {
        out.push_str(&format!("{label:<12}"));
        for v in vals {
            out.push_str(&format!("{:>11.2}x", v));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_accumulates() {
        let mut b = Breakdown::default();
        b.add(Phase::Sampling, 1.0);
        b.add(Phase::Sampling, 0.5);
        b.add(Phase::WeightApp, 2.5);
        assert_eq!(b.sampling_secs, 1.5);
        assert_eq!(b.total(), 4.0);
        assert!((b.fraction(Phase::WeightApp) - 0.625).abs() < 1e-12);
    }

    #[test]
    fn timer_records_elapsed() {
        let mut b = Breakdown::default();
        {
            let _t = PhaseTimer::start(&mut b, Phase::FeatureProp);
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        assert!(b.feature_prop_secs >= 0.004, "{}", b.feature_prop_secs);
    }

    #[test]
    fn merge_combines() {
        let mut a = Breakdown::default();
        a.add(Phase::Sampling, 1.0);
        a.add_hidden_sampling(0.5);
        let mut b = Breakdown::default();
        b.add(Phase::Sampling, 2.0);
        b.add(Phase::Other, 1.0);
        b.add_hidden_sampling(1.5);
        a.merge(&b);
        assert_eq!(a.sampling_secs, 3.0);
        assert_eq!(a.other_secs, 1.0);
        assert_eq!(a.sampling_hidden_secs, 2.0);
    }

    #[test]
    fn hidden_sampling_overlap_accounting() {
        let mut b = Breakdown::default();
        // 1 s stalled, 3 s hidden behind compute.
        b.add(Phase::Sampling, 1.0);
        b.add_hidden_sampling(3.0);
        b.add(Phase::WeightApp, 9.0);
        assert_eq!(b.sampling_wall_secs(), 4.0);
        assert!((b.sampling_overlap_fraction() - 0.75).abs() < 1e-12);
        // Hidden time overlaps compute: not part of the consumer total.
        assert_eq!(b.total(), 10.0);
        let r = b.report();
        assert!(r.contains("sampling overlap 75.0%"), "{r}");
    }

    #[test]
    fn overlap_zero_cases() {
        let b = Breakdown::default();
        assert_eq!(b.sampling_overlap_fraction(), 0.0);
        assert!(!b.sampling_overlap_fraction().is_nan());
        // Synchronous path: stall only, no overlap segment in the report.
        let mut b = Breakdown::default();
        b.add(Phase::Sampling, 2.0);
        assert_eq!(b.sampling_overlap_fraction(), 0.0);
        assert!(!b.report().contains("overlap"), "{}", b.report());
    }

    #[test]
    fn fraction_of_empty_is_zero() {
        let b = Breakdown::default();
        assert_eq!(b.fraction(Phase::Sampling), 0.0);
        assert!(!b.fraction(Phase::Sampling).is_nan());
    }

    #[test]
    fn report_contains_phases() {
        let mut b = Breakdown::default();
        b.add(Phase::WeightApp, 1.0);
        let r = b.report();
        assert!(r.contains("Weight Application 100.0%"), "{r}");
        assert!(r.contains("Sampling 0.0%"));
    }

    #[test]
    fn speedup_math() {
        assert_eq!(speedup(10.0, 2.0), 5.0);
        assert_eq!(speedup(10.0, 0.0), 0.0);
    }

    #[test]
    fn table_layout() {
        let t = format_speedup_table(
            "layers",
            &[1, 5],
            &[("1-layer".to_string(), vec![2.0, 4.8])],
        );
        assert!(t.contains("1-layer"));
        assert!(t.contains("2.00x"));
        assert!(t.contains("4.80x"));
        let header = t.lines().next().unwrap();
        assert!(header.contains('1') && header.contains('5'));
    }
}
