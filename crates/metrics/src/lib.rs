//! Evaluation metrics and timing instrumentation.
//!
//! * [`f1`] — F1-micro / F1-macro (the paper's accuracy metric, Fig. 2)
//!   for multi-label (0.5-thresholded sigmoid) and single-label (argmax)
//!   predictions, plus plain accuracy.
//! * [`timing`] — the per-phase execution-time breakdown of Fig. 3
//!   (sampling / feature propagation / weight application) and speedup
//!   helpers.
//! * [`convergence`] — time-vs-accuracy curves and the threshold-crossing
//!   speedup measurement of Sec. VI-B (`a₀ − 0.0025` rule).
//! * [`mem`] — process resident-set probes (`/proc/self/status`) used by
//!   the out-of-core bench and the RSS-capped CI smoke test.

pub mod convergence;
pub mod f1;
pub mod mem;
pub mod timing;
