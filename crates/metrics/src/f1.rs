//! F1 scores — the paper's accuracy measure ("Accuracy (F1 Mic)", Fig. 2).

use gsgcn_tensor::DMatrix;

/// Binary confusion counts.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Confusion {
    pub tp: usize,
    pub fp: usize,
    pub fn_: usize,
    pub tn: usize,
}

impl Confusion {
    /// Precision `tp / (tp + fp)` (0 when undefined).
    pub fn precision(&self) -> f64 {
        if self.tp + self.fp == 0 {
            0.0
        } else {
            self.tp as f64 / (self.tp + self.fp) as f64
        }
    }

    /// Recall `tp / (tp + fn)` (0 when undefined).
    pub fn recall(&self) -> f64 {
        if self.tp + self.fn_ == 0 {
            0.0
        } else {
            self.tp as f64 / (self.tp + self.fn_) as f64
        }
    }

    /// F1 = harmonic mean of precision and recall (0 when undefined).
    pub fn f1(&self) -> f64 {
        let (p, r) = (self.precision(), self.recall());
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }
}

/// The multi-label decision threshold used across evaluation and
/// serving: a class is predicted when its probability reaches this.
pub const MULTI_LABEL_THRESHOLD: f32 = 0.5;

/// First-maximum argmax of one probability row — the single tie rule
/// shared by [`argmax_onehot`], the streaming [`f1_micro_from_probs`]
/// and the serving-side label decision (`gsgcn-serve`).
pub fn argmax_row(row: &[f32]) -> usize {
    let mut best = 0usize;
    for (j, &v) in row.iter().enumerate() {
        if v > row[best] {
            best = j;
        }
    }
    best
}

/// Task-appropriate decision rule for one probability row: the argmax
/// class for single-label models, every class reaching
/// [`MULTI_LABEL_THRESHOLD`] (possibly none) for multi-label.
pub fn decide_labels(row: &[f32], single_label: bool) -> Vec<u32> {
    if single_label {
        vec![argmax_row(row) as u32]
    } else {
        row.iter()
            .enumerate()
            .filter(|(_, &p)| p >= MULTI_LABEL_THRESHOLD)
            .map(|(j, _)| j as u32)
            .collect()
    }
}

/// Threshold probabilities into binary predictions (multi-label).
pub fn binarize(probs: &DMatrix, threshold: f32) -> DMatrix {
    let mut out = probs.clone();
    out.data_mut()
        .iter_mut()
        .for_each(|x| *x = if *x >= threshold { 1.0 } else { 0.0 });
    out
}

/// One-hot argmax predictions (single-label).
pub fn argmax_onehot(probs: &DMatrix) -> DMatrix {
    let mut out = DMatrix::zeros(probs.rows(), probs.cols());
    for i in 0..probs.rows() {
        out.set(i, argmax_row(probs.row(i)), 1.0);
    }
    out
}

/// Per-class confusion counts from binary predictions/targets.
pub fn per_class_confusion(pred: &DMatrix, target: &DMatrix) -> Vec<Confusion> {
    assert_eq!(pred.shape(), target.shape(), "pred/target shape mismatch");
    let mut per = vec![Confusion::default(); pred.cols()];
    for i in 0..pred.rows() {
        let (pr, tr) = (pred.row(i), target.row(i));
        for (c, conf) in per.iter_mut().enumerate() {
            match (pr[c] > 0.5, tr[c] > 0.5) {
                (true, true) => conf.tp += 1,
                (true, false) => conf.fp += 1,
                (false, true) => conf.fn_ += 1,
                (false, false) => conf.tn += 1,
            }
        }
    }
    per
}

/// Micro-averaged F1: pool all classes' counts, then compute F1.
pub fn f1_micro(pred: &DMatrix, target: &DMatrix) -> f64 {
    let per = per_class_confusion(pred, target);
    let pooled = per.iter().fold(Confusion::default(), |acc, c| Confusion {
        tp: acc.tp + c.tp,
        fp: acc.fp + c.fp,
        fn_: acc.fn_ + c.fn_,
        tn: acc.tn + c.tn,
    });
    pooled.f1()
}

/// Macro-averaged F1: mean of per-class F1 scores.
pub fn f1_macro(pred: &DMatrix, target: &DMatrix) -> f64 {
    let per = per_class_confusion(pred, target);
    if per.is_empty() {
        return 0.0;
    }
    per.iter().map(|c| c.f1()).sum::<f64>() / per.len() as f64
}

/// Row-level accuracy: fraction of rows whose predictions match exactly
/// (for single-label this is ordinary classification accuracy).
pub fn accuracy(pred: &DMatrix, target: &DMatrix) -> f64 {
    assert_eq!(pred.shape(), target.shape());
    if pred.rows() == 0 {
        return 0.0;
    }
    let mut hit = 0usize;
    for i in 0..pred.rows() {
        let ok = pred
            .row(i)
            .iter()
            .zip(target.row(i))
            .all(|(&p, &t)| (p > 0.5) == (t > 0.5));
        if ok {
            hit += 1;
        }
    }
    hit as f64 / pred.rows() as f64
}

/// Streaming micro-F1 accumulator: feed probability/target row pairs in
/// any order — full matrices at once, or chunk by chunk as an out-of-core
/// evaluation produces them — and read the pooled F1 at the end. The
/// decision rule per row is the task-appropriate one (argmax for
/// single-label, the 0.5 threshold for multi-label), identical to
/// [`f1_micro_from_probs`], which is the one-shot wrapper over this type.
#[derive(Clone, Copy, Debug, Default)]
pub struct F1Accumulator {
    pooled: Confusion,
    single_label: bool,
    rows: usize,
}

impl F1Accumulator {
    /// Fresh accumulator for the given task kind.
    pub fn new(single_label: bool) -> Self {
        F1Accumulator {
            pooled: Confusion::default(),
            single_label,
            rows: 0,
        }
    }

    /// Fold one probability row against its binary target row.
    pub fn push_row(&mut self, probs: &[f32], target: &[f32]) {
        debug_assert_eq!(probs.len(), target.len(), "probs/target width mismatch");
        let best = if self.single_label {
            argmax_row(probs)
        } else {
            0
        };
        for (c, (&p, &t)) in probs.iter().zip(target).enumerate() {
            let predicted = if self.single_label {
                c == best
            } else {
                p >= MULTI_LABEL_THRESHOLD
            };
            match (predicted, t > 0.5) {
                (true, true) => self.pooled.tp += 1,
                (true, false) => self.pooled.fp += 1,
                (false, true) => self.pooled.fn_ += 1,
                (false, false) => self.pooled.tn += 1,
            }
        }
        self.rows += 1;
    }

    /// Fold every row of a probability matrix against its target matrix.
    pub fn push_rows(&mut self, probs: &DMatrix, target: &DMatrix) {
        assert_eq!(probs.shape(), target.shape(), "probs/target shape mismatch");
        for i in 0..probs.rows() {
            self.push_row(probs.row(i), target.row(i));
        }
    }

    /// Rows folded so far.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Pooled confusion counts so far.
    pub fn confusion(&self) -> Confusion {
        self.pooled
    }

    /// Micro-averaged F1 of everything folded so far.
    pub fn f1(&self) -> f64 {
        self.pooled.f1()
    }
}

/// Convenience: F1-micro of probability outputs against targets, with the
/// task-appropriate decision rule (argmax for single-label, a 0.5
/// threshold for multi-label).
///
/// Streams the confusion counts row by row instead of materialising a
/// prediction matrix, so the per-epoch `evaluate` hot path performs zero
/// matrix allocations (equivalent to
/// `f1_micro(&argmax_onehot(probs) | &binarize(probs, 0.5), target)`,
/// pinned by a test below).
pub fn f1_micro_from_probs(probs: &DMatrix, target: &DMatrix, single_label: bool) -> f64 {
    let mut acc = F1Accumulator::new(single_label);
    acc.push_rows(probs, target);
    acc.f1()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn confusion_perfect_prediction() {
        let y = DMatrix::from_vec(2, 2, vec![1.0, 0.0, 0.0, 1.0]);
        assert_eq!(f1_micro(&y, &y), 1.0);
        assert_eq!(f1_macro(&y, &y), 1.0);
        assert_eq!(accuracy(&y, &y), 1.0);
    }

    #[test]
    fn confusion_all_wrong() {
        let p = DMatrix::from_vec(2, 2, vec![1.0, 0.0, 1.0, 0.0]);
        let t = DMatrix::from_vec(2, 2, vec![0.0, 1.0, 0.0, 1.0]);
        assert_eq!(f1_micro(&p, &t), 0.0);
        assert_eq!(accuracy(&p, &t), 0.0);
    }

    #[test]
    fn micro_f1_hand_computed() {
        // 3 rows, 2 classes.
        // Class 0: pred [1,1,0], true [1,0,0] → tp=1, fp=1, fn=0.
        // Class 1: pred [0,1,1], true [1,1,1] → tp=2, fp=0, fn=1.
        // Pooled: tp=3, fp=1, fn=1 → P=3/4, R=3/4, F1=3/4.
        let p = DMatrix::from_vec(3, 2, vec![1.0, 0.0, 1.0, 1.0, 0.0, 1.0]);
        let t = DMatrix::from_vec(3, 2, vec![1.0, 1.0, 0.0, 1.0, 0.0, 1.0]);
        assert!((f1_micro(&p, &t) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn macro_f1_hand_computed() {
        // Same data: class0 F1 = 2·(1/2·1)/(1/2+1) = 2/3;
        // class1: P=1, R=2/3 → F1 = 4/5. Macro = (2/3 + 4/5)/2 = 11/15.
        let p = DMatrix::from_vec(3, 2, vec![1.0, 0.0, 1.0, 1.0, 0.0, 1.0]);
        let t = DMatrix::from_vec(3, 2, vec![1.0, 1.0, 0.0, 1.0, 0.0, 1.0]);
        assert!((f1_macro(&p, &t) - 11.0 / 15.0).abs() < 1e-12);
    }

    #[test]
    fn binarize_threshold() {
        let p = DMatrix::from_vec(1, 3, vec![0.2, 0.5, 0.9]);
        let b = binarize(&p, 0.5);
        assert_eq!(b.data(), &[0.0, 1.0, 1.0]);
    }

    #[test]
    fn argmax_picks_largest() {
        let p = DMatrix::from_vec(2, 3, vec![0.1, 0.7, 0.2, 0.5, 0.2, 0.3]);
        let a = argmax_onehot(&p);
        assert_eq!(a.row(0), &[0.0, 1.0, 0.0]);
        assert_eq!(a.row(1), &[1.0, 0.0, 0.0]);
    }

    #[test]
    fn empty_predictions_degenerate() {
        let e = DMatrix::zeros(0, 3);
        assert_eq!(accuracy(&e, &e), 0.0);
        assert_eq!(f1_micro(&e, &e), 0.0);
    }

    #[test]
    fn f1_from_probs_single_vs_multi() {
        let probs = DMatrix::from_vec(2, 2, vec![0.6, 0.55, 0.3, 0.4]);
        let t = DMatrix::from_vec(2, 2, vec![1.0, 0.0, 0.0, 1.0]);
        // Single-label: argmax rows → [1,0] and [0,1]: perfect.
        assert_eq!(f1_micro_from_probs(&probs, &t, true), 1.0);
        // Multi-label at 0.5: row0 predicts both classes (fp), row1 none (fn).
        let m = f1_micro_from_probs(&probs, &t, false);
        assert!(m < 1.0 && m > 0.0);
    }

    /// The streaming `f1_micro_from_probs` must agree exactly with the
    /// matrix-materialising composition it replaced.
    #[test]
    fn f1_from_probs_matches_materialised_composition() {
        let probs = DMatrix::from_fn(17, 5, |i, j| (((i * 31 + j * 17) % 23) as f32) / 22.0);
        let target = DMatrix::from_fn(17, 5, |i, j| (((i * 7 + j * 3) % 3) == 0) as u8 as f32);
        let single = f1_micro(&argmax_onehot(&probs), &target);
        assert_eq!(f1_micro_from_probs(&probs, &target, true), single);
        let multi = f1_micro(&binarize(&probs, 0.5), &target);
        assert_eq!(f1_micro_from_probs(&probs, &target, false), multi);
    }

    /// Chunked accumulation must pool to the same F1 as a single pass —
    /// the invariant out-of-core evaluation relies on.
    #[test]
    fn accumulator_chunking_is_order_free() {
        let probs = DMatrix::from_fn(23, 4, |i, j| (((i * 13 + j * 5) % 19) as f32) / 18.0);
        let target = DMatrix::from_fn(23, 4, |i, j| (((i * 3 + j) % 4) == 0) as u8 as f32);
        for single in [true, false] {
            let oneshot = f1_micro_from_probs(&probs, &target, single);
            let mut acc = F1Accumulator::new(single);
            // Feed rows in a scrambled order, one at a time.
            for k in 0..23usize {
                let i = (k * 7) % 23;
                acc.push_row(probs.row(i), target.row(i));
            }
            assert_eq!(acc.rows(), 23);
            assert_eq!(acc.f1(), oneshot, "single_label={single}");
        }
    }

    #[test]
    fn undefined_f1_is_zero_not_nan() {
        let p = DMatrix::zeros(2, 2);
        let t = DMatrix::zeros(2, 2);
        let f = f1_micro(&p, &t);
        assert_eq!(f, 0.0);
        assert!(!f.is_nan());
    }
}
