//! Time-vs-accuracy curves and threshold-crossing speedups (Fig. 2,
//! Sec. VI-B).
//!
//! The paper measures "serial training time speedup" as: let `a₀` be the
//! best accuracy any baseline reaches; the threshold is `a₀ − 0.0025`
//! (0.25% slack for training stochasticity); the speedup is the ratio of
//! the baselines' best time-to-threshold to the proposed method's
//! time-to-threshold.

/// One point of a convergence curve.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CurvePoint {
    /// Cumulative training time when the measurement was taken.
    pub time_secs: f64,
    /// Validation metric (F1-micro in the paper).
    pub metric: f64,
}

/// A labelled convergence curve (one training run).
#[derive(Clone, Debug)]
pub struct Curve {
    pub label: String,
    pub points: Vec<CurvePoint>,
}

impl Curve {
    /// New empty curve.
    pub fn new(label: impl Into<String>) -> Self {
        Curve {
            label: label.into(),
            points: Vec::new(),
        }
    }

    /// Append a measurement (time must be non-decreasing).
    pub fn push(&mut self, time_secs: f64, metric: f64) {
        if let Some(last) = self.points.last() {
            assert!(
                time_secs >= last.time_secs,
                "curve time must be non-decreasing"
            );
        }
        self.points.push(CurvePoint { time_secs, metric });
    }

    /// Best metric reached anywhere on the curve.
    pub fn best_metric(&self) -> f64 {
        self.points
            .iter()
            .map(|p| p.metric)
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// First time the curve reaches `threshold` (linear scan), or `None`.
    pub fn time_to_reach(&self, threshold: f64) -> Option<f64> {
        self.points
            .iter()
            .find(|p| p.metric >= threshold)
            .map(|p| p.time_secs)
    }

    /// CSV rows `time,metric` prefixed with the label column.
    pub fn to_csv(&self) -> String {
        let mut s = String::new();
        for p in &self.points {
            s.push_str(&format!(
                "{},{:.4},{:.6}\n",
                self.label, p.time_secs, p.metric
            ));
        }
        s
    }
}

/// The paper's accuracy-threshold rule: `a₀ − 0.0025` where `a₀` is the
/// best metric over the baseline curves.
pub fn paper_threshold(baselines: &[&Curve]) -> f64 {
    let a0 = baselines
        .iter()
        .map(|c| c.best_metric())
        .fold(f64::NEG_INFINITY, f64::max);
    a0 - 0.0025
}

/// Sec. VI-B speedup: best baseline time-to-threshold divided by the
/// proposed method's time-to-threshold. `None` if either side never
/// reaches the threshold.
pub fn threshold_speedup(proposed: &Curve, baselines: &[&Curve]) -> Option<f64> {
    let threshold = paper_threshold(baselines);
    let ours = proposed.time_to_reach(threshold)?;
    let theirs = baselines
        .iter()
        .filter_map(|c| c.time_to_reach(threshold))
        .fold(f64::INFINITY, f64::min);
    if theirs.is_infinite() || ours <= 0.0 {
        None
    } else {
        Some(theirs / ours)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn curve(label: &str, pts: &[(f64, f64)]) -> Curve {
        let mut c = Curve::new(label);
        for &(t, m) in pts {
            c.push(t, m);
        }
        c
    }

    #[test]
    fn best_and_time_to_reach() {
        let c = curve("x", &[(1.0, 0.5), (2.0, 0.8), (3.0, 0.7)]);
        assert_eq!(c.best_metric(), 0.8);
        assert_eq!(c.time_to_reach(0.75), Some(2.0));
        assert_eq!(c.time_to_reach(0.9), None);
        assert_eq!(c.time_to_reach(0.4), Some(1.0));
    }

    #[test]
    fn paper_threshold_rule() {
        let b1 = curve("b1", &[(1.0, 0.90)]);
        let b2 = curve("b2", &[(1.0, 0.95)]);
        let t = paper_threshold(&[&b1, &b2]);
        assert!((t - 0.9475).abs() < 1e-12);
    }

    #[test]
    fn speedup_against_best_baseline() {
        // Proposed reaches 0.9475 at t=2; baselines at t=10 and t=8.
        let prop = curve("ours", &[(1.0, 0.80), (2.0, 0.96)]);
        let b1 = curve("b1", &[(10.0, 0.95)]);
        let b2 = curve("b2", &[(8.0, 0.95)]);
        let s = threshold_speedup(&prop, &[&b1, &b2]).unwrap();
        assert!((s - 4.0).abs() < 1e-12, "{s}");
    }

    #[test]
    fn speedup_none_when_unreached() {
        let prop = curve("ours", &[(1.0, 0.5)]);
        let b = curve("b", &[(1.0, 0.9)]);
        assert!(threshold_speedup(&prop, &[&b]).is_none());
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn time_must_not_go_backwards() {
        let mut c = Curve::new("x");
        c.push(2.0, 0.1);
        c.push(1.0, 0.2);
    }

    #[test]
    fn csv_format() {
        let c = curve("ours", &[(1.5, 0.75)]);
        assert_eq!(c.to_csv(), "ours,1.5000,0.750000\n");
    }
}
