//! Property-based tests of the dataset substrate.

use gsgcn_data::alias::AliasTable;
use gsgcn_data::dataset::Split;
use gsgcn_data::generators::{community_powerlaw, CommunityGraphSpec};
use gsgcn_data::labels::{multi_label, single_label};
use gsgcn_graph::stats;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The community generator always yields a valid graph: symmetric,
    /// no self loops, no isolated vertices, every community non-empty.
    #[test]
    fn generator_invariants(
        n in 20usize..400,
        avg_deg in 2usize..12,
        k in 1usize..8,
        p_in in 0.0f64..1.0,
        seed in any::<u64>(),
    ) {
        let k = k.min(n / 4).max(1);
        let spec = CommunityGraphSpec {
            vertices: n,
            edges: n * avg_deg / 2,
            communities: k,
            p_in,
            ..CommunityGraphSpec::default()
        };
        let cg = community_powerlaw(&spec, seed);
        prop_assert_eq!(cg.graph.num_vertices(), n);
        prop_assert!(cg.graph.is_symmetric());
        prop_assert!(!cg.graph.has_self_loops());
        prop_assert_eq!(stats::degree_stats(&cg.graph).isolated_fraction, 0.0);
        prop_assert!(cg.community.iter().all(|&c| (c as usize) < k));
        for c in 0..k as u32 {
            prop_assert!(cg.community.contains(&c), "community {c} empty");
        }
    }

    /// Splits cover every vertex exactly once for arbitrary fractions.
    #[test]
    fn split_partitions(n in 3usize..500, train in 0.1f64..0.7, val in 0.05f64..0.25, seed in any::<u64>()) {
        prop_assume!(train + val < 0.95);
        let s = Split::random(n, train, val, seed);
        let mut all: Vec<u32> = s.train.iter().chain(&s.val).chain(&s.test).copied().collect();
        all.sort_unstable();
        prop_assert_eq!(all, (0..n as u32).collect::<Vec<_>>());
        prop_assert!(!s.train.is_empty());
    }

    /// Multi-label targets: every vertex gets ≥1 label; values binary.
    #[test]
    fn multi_label_contract(
        n in 5usize..200,
        k in 1usize..6,
        classes in 4usize..30,
        p_present in 0.1f64..1.0,
        seed in any::<u64>(),
    ) {
        let comm: Vec<u32> = (0..n).map(|v| ((v * k) / n) as u32).collect();
        let per = (classes / k).clamp(1, classes);
        let y = multi_label(&comm, classes, per, p_present, 0.01, seed);
        prop_assert_eq!(y.shape(), (n, classes));
        for v in 0..n {
            let s: f32 = y.row(v).iter().sum();
            prop_assert!(s >= 1.0, "vertex {v} unlabeled");
            prop_assert!(y.row(v).iter().all(|&x| x == 0.0 || x == 1.0));
        }
    }

    /// Single-label targets are exactly one-hot.
    #[test]
    fn single_label_contract(n in 5usize..200, k in 1usize..8, flip in 0.0f64..0.5, seed in any::<u64>()) {
        let comm: Vec<u32> = (0..n).map(|v| ((v * k) / n) as u32).collect();
        let classes = k + 2;
        let y = single_label(&comm, classes, flip, seed);
        for v in 0..n {
            let s: f32 = y.row(v).iter().sum();
            prop_assert_eq!(s, 1.0);
        }
    }

    /// Alias tables: samples land only on positive-weight outcomes and
    /// match expected frequencies within tolerance.
    #[test]
    fn alias_table_respects_support(weights in proptest::collection::vec(0.0f64..10.0, 1..30), seed in any::<u64>()) {
        prop_assume!(weights.iter().sum::<f64>() > 0.0);
        let t = AliasTable::new(&weights);
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..200 {
            let s = t.sample(&mut rng);
            prop_assert!(weights[s] > 0.0, "sampled zero-weight outcome {s}");
        }
    }
}
