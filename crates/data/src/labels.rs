//! Label synthesis from community structure.
//!
//! The GCN's job on the paper's datasets is to recover label structure
//! that correlates with graph neighborhoods (protein functional modules,
//! subreddit communities, …). We reproduce that: labels are functions of
//! a vertex's community plus noise, so neighborhood aggregation carries
//! real signal.

use gsgcn_tensor::DMatrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Multi-label targets: each community has `labels_per_community`
/// characteristic classes; a member carries each with probability
/// `p_present`, plus background classes with probability `p_noise`.
/// Returns an `n × classes` multi-hot matrix with ≥ 1 label per vertex.
pub fn multi_label(
    community: &[u32],
    classes: usize,
    labels_per_community: usize,
    p_present: f64,
    p_noise: f64,
    seed: u64,
) -> DMatrix {
    assert!(classes >= 1);
    assert!(labels_per_community >= 1 && labels_per_community <= classes);
    let n = community.len();
    let k = community.iter().map(|&c| c as usize + 1).max().unwrap_or(1);
    let mut rng = StdRng::seed_from_u64(seed);

    // Characteristic class set per community.
    let charset: Vec<Vec<usize>> = (0..k)
        .map(|c| {
            (0..labels_per_community)
                .map(|j| (c * labels_per_community + j + (c * 7919) % classes) % classes)
                .collect()
        })
        .collect();

    let mut y = DMatrix::zeros(n, classes);
    for (v, &comm) in community.iter().enumerate().take(n) {
        let c = comm as usize;
        let mut any = false;
        for &cls in &charset[c] {
            if rng.random::<f64>() < p_present {
                y.set(v, cls, 1.0);
                any = true;
            }
        }
        for cls in 0..classes {
            if rng.random::<f64>() < p_noise {
                y.set(v, cls, 1.0);
                any = true;
            }
        }
        if !any {
            // Guarantee at least one positive label (metrics need it).
            y.set(v, charset[c][0], 1.0);
        }
    }
    y
}

/// Single-label targets: class = community id with probability
/// `1 − flip_prob`, otherwise a uniformly random other class. Returns an
/// `n × classes` one-hot matrix. Requires `classes ≥ #communities`.
pub fn single_label(community: &[u32], classes: usize, flip_prob: f64, seed: u64) -> DMatrix {
    let n = community.len();
    let k = community.iter().map(|&c| c as usize + 1).max().unwrap_or(1);
    assert!(classes >= k, "need at least as many classes as communities");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut y = DMatrix::zeros(n, classes);
    for (v, &comm) in community.iter().enumerate().take(n) {
        let mut cls = comm as usize;
        if rng.random::<f64>() < flip_prob {
            cls = rng.random_range(0..classes);
        }
        y.set(v, cls, 1.0);
    }
    y
}

/// Per-class positive frequencies (column means) — used by tests and by
/// dataset statistics.
pub fn class_frequencies(y: &DMatrix) -> Vec<f64> {
    let n = y.rows().max(1) as f64;
    (0..y.cols())
        .map(|c| (0..y.rows()).map(|i| y.get(i, c) as f64).sum::<f64>() / n)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn communities(n: usize, k: usize) -> Vec<u32> {
        (0..n).map(|v| ((v * k) / n) as u32).collect()
    }

    #[test]
    fn multi_label_every_vertex_labeled() {
        let comm = communities(200, 4);
        let y = multi_label(&comm, 20, 3, 0.8, 0.02, 1);
        assert_eq!(y.shape(), (200, 20));
        for v in 0..200 {
            let s: f32 = y.row(v).iter().sum();
            assert!(s >= 1.0, "vertex {v} has no labels");
        }
        // Multi-hot, not one-hot: average label count > 1.
        let avg: f32 = y.data().iter().sum::<f32>() / 200.0;
        assert!(avg > 1.5, "avg labels {avg}");
    }

    #[test]
    fn multi_label_correlates_with_community() {
        let comm = communities(400, 4);
        let y = multi_label(&comm, 16, 3, 0.9, 0.01, 2);
        // Two vertices of the same community share labels far more often
        // than vertices of different communities.
        let sim = |a: usize, b: usize| -> f64 {
            let (ra, rb) = (y.row(a), y.row(b));
            let inter: f64 = ra
                .iter()
                .zip(rb)
                .filter(|(&x, &z)| x > 0.0 && z > 0.0)
                .count() as f64;
            inter
        };
        let same = sim(0, 1) + sim(10, 20) + sim(50, 70);
        let diff = sim(0, 399) + sim(10, 350) + sim(50, 250);
        assert!(same > diff, "same-community {same} vs cross {diff}");
    }

    #[test]
    fn single_label_one_hot() {
        let comm = communities(100, 5);
        let y = single_label(&comm, 8, 0.1, 3);
        for v in 0..100 {
            let s: f32 = y.row(v).iter().sum();
            assert_eq!(s, 1.0, "row {v} not one-hot");
        }
    }

    #[test]
    fn single_label_mostly_community() {
        let comm = communities(1000, 5);
        let y = single_label(&comm, 5, 0.05, 4);
        let correct = (0..1000)
            .filter(|&v| y.get(v, comm[v] as usize) == 1.0)
            .count();
        assert!(correct > 900, "only {correct}/1000 match community");
    }

    #[test]
    fn deterministic() {
        let comm = communities(50, 2);
        assert_eq!(
            multi_label(&comm, 10, 2, 0.7, 0.05, 9),
            multi_label(&comm, 10, 2, 0.7, 0.05, 9)
        );
        assert_eq!(
            single_label(&comm, 4, 0.1, 9),
            single_label(&comm, 4, 0.1, 9)
        );
    }

    #[test]
    fn frequencies_sum_matches() {
        let comm = communities(100, 2);
        let y = single_label(&comm, 4, 0.0, 5);
        let f = class_frequencies(&y);
        assert!(
            (f.iter().sum::<f64>() - 1.0).abs() < 1e-9,
            "one-hot rows sum to 1"
        );
    }

    #[test]
    #[should_panic(expected = "at least as many classes")]
    fn single_label_too_few_classes() {
        single_label(&communities(10, 5), 3, 0.0, 1);
    }
}
