//! Spill-to-shards dataset path: persist a [`Dataset`] as a versioned
//! on-disk store directory and reopen it through [`GraphStore`] backends.
//!
//! Layout of a spilled dataset directory:
//!
//! ```text
//! <dir>/
//!   full/          shard store of the full graph (+features +labels)
//!   train/         shard store of the training-induced view
//!   dataset.gss    name, task kind, split, train-view origin map
//! ```
//!
//! The `train/` store holds the *induced training subgraph* — the same
//! topology and gathered rows [`Dataset::train_view`] builds in memory —
//! so sampling from it out-of-core is bit-identical to sampling from the
//! resident `TrainView` for a fixed seed. `dataset.gss` is written last
//! (via a temp-file rename), so a crash mid-spill leaves a directory that
//! [`StoreDataset::open`] loudly refuses instead of a silently truncated
//! dataset.

use crate::dataset::{Dataset, Split, TaskKind};
use gsgcn_graph::store::{
    default_num_shards, shard_cache_budget_from_env, write_store_with_precision, StoreBackend,
};
use gsgcn_graph::{GraphStore, StoreOrder, Topology};
use gsgcn_tensor::Precision;
use std::io::{self, Write};
use std::path::Path;
use std::sync::Arc;

/// Magic for `dataset.gss` ("GSDS").
const META_MAGIC: u32 = 0x4753_4453;
/// On-disk metadata format version.
const META_VERSION: u32 = 1;
/// Metadata file name inside a spilled dataset directory.
pub const META_FILE: &str = "dataset.gss";
/// Subdirectory holding the full-graph shard store.
pub const FULL_SUBDIR: &str = "full";
/// Subdirectory holding the training-view shard store.
pub const TRAIN_SUBDIR: &str = "train";

impl Dataset {
    /// Spill this dataset to `dir` as two shard stores plus metadata,
    /// in natural (vertex-id) placement order.
    ///
    /// `num_shards = 0` picks the size-based default per store. Existing
    /// store files in `dir` are overwritten.
    pub fn spill_to_dir(&self, dir: &Path, num_shards: usize) -> io::Result<()> {
        self.spill_to_dir_ordered(dir, num_shards, StoreOrder::Natural)
    }

    /// Spill with an explicit placement order (`gsgcn shard --order`).
    ///
    /// Both the full and the train store are laid out in `order`; vertex
    /// ids in the metadata (splits, train origins) stay in the user's
    /// numbering — translation happens once at the store boundary, so
    /// results are bit-identical across orders.
    pub fn spill_to_dir_ordered(
        &self,
        dir: &Path,
        num_shards: usize,
        order: StoreOrder,
    ) -> io::Result<()> {
        self.spill_to_dir_with_precision(dir, num_shards, order, Precision::F32)
    }

    /// Spill with an explicit feature storage precision (`gsgcn shard
    /// --features bf16`): bf16 halves both stores' feature payload, at
    /// one bf16 rounding per feature element. Labels stay f32; gathers
    /// widen rows back to f32 on read.
    pub fn spill_to_dir_with_precision(
        &self,
        dir: &Path,
        num_shards: usize,
        order: StoreOrder,
        feature_precision: Precision,
    ) -> io::Result<()> {
        std::fs::create_dir_all(dir)?;
        let full_dir = dir.join(FULL_SUBDIR);
        std::fs::create_dir_all(&full_dir)?;
        let full_shards = if num_shards == 0 {
            default_num_shards(self.graph.num_vertices())
        } else {
            num_shards
        };
        write_store_with_precision(
            &full_dir,
            &self.graph,
            Some(&self.features),
            Some(&self.labels),
            full_shards,
            order,
            feature_precision,
        )?;

        let tv = self.train_view();
        let train_dir = dir.join(TRAIN_SUBDIR);
        std::fs::create_dir_all(&train_dir)?;
        let train_shards = if num_shards == 0 {
            default_num_shards(tv.graph.num_vertices())
        } else {
            num_shards
        };
        write_store_with_precision(
            &train_dir,
            &tv.graph,
            Some(&*tv.features),
            Some(&*tv.labels),
            train_shards,
            order,
            feature_precision,
        )?;

        // Metadata last: its presence certifies both stores are complete.
        write_meta(dir, &self.name, self.task, &self.split, &tv.origin)
    }
}

/// A dataset whose graph/feature/label data lives behind [`GraphStore`]
/// backends instead of resident matrices. Opened from a directory written
/// by [`Dataset::spill_to_dir`].
#[derive(Debug)]
pub struct StoreDataset {
    /// Dataset name (for reports).
    pub name: String,
    /// Task kind.
    pub task: TaskKind,
    /// Vertex split over the full graph.
    pub split: Split,
    /// Store over the full graph (+features +labels).
    pub full: Arc<GraphStore>,
    /// Store over the training-induced subgraph (+gathered rows).
    pub train: Arc<GraphStore>,
    /// Train-store local id → original vertex id (ascending).
    pub train_origin: Vec<u32>,
}

impl StoreDataset {
    /// Open a spilled dataset honoring `GSGCN_GRAPH_STORE` and
    /// `GSGCN_SHARD_CACHE`.
    pub fn open(dir: &Path) -> io::Result<StoreDataset> {
        Self::open_with(
            dir,
            gsgcn_graph::store::backend_from_env(),
            shard_cache_budget_from_env(),
        )
    }

    /// Open with an explicit backend and per-store cache budget.
    ///
    /// The `mem` backend materializes both stores fully resident — the
    /// negative control for the out-of-core RSS cap: a capped process
    /// that survives `mmap` here must die on `mem`.
    pub fn open_with(dir: &Path, backend: StoreBackend, budget: usize) -> io::Result<StoreDataset> {
        let (name, task, split, train_origin) = read_meta(dir)?;
        let full = GraphStore::open_with_budget(&dir.join(FULL_SUBDIR), budget)?;
        let train = GraphStore::open_with_budget(&dir.join(TRAIN_SUBDIR), budget)?;

        let n = full.num_vertices();
        let covered = split.train.len() + split.val.len() + split.test.len();
        if covered != n {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("dataset metadata split covers {covered} of {n} vertices"),
            ));
        }
        if train.num_vertices() != train_origin.len() || train_origin.len() != split.train.len() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "train store has {} vertices but metadata lists {} origins / {} train ids",
                    train.num_vertices(),
                    train_origin.len(),
                    split.train.len()
                ),
            ));
        }

        let (full, train) = match backend {
            StoreBackend::Mmap => (full, train),
            StoreBackend::Mem => (materialize_to_mem(full)?, materialize_to_mem(train)?),
        };
        Ok(StoreDataset {
            name,
            task,
            split,
            full: Arc::new(full),
            train: Arc::new(train),
            train_origin,
        })
    }

    /// Vertices in the full graph.
    pub fn num_vertices(&self) -> usize {
        self.full.num_vertices()
    }

    /// Feature width `f^{(0)}`.
    pub fn feature_dim(&self) -> usize {
        self.full.feature_dim()
    }

    /// Number of target classes.
    pub fn num_classes(&self) -> usize {
        self.full.label_dim()
    }

    /// Materialize back into a fully-resident [`Dataset`] (the in-memory
    /// fallback path; defeats the purpose of the store for large graphs).
    pub fn to_dataset(&self) -> io::Result<Dataset> {
        let (graph, features, labels) = self.full.materialize()?;
        let features = features
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "store holds no features"))?;
        let labels = labels
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "store holds no labels"))?;
        Ok(Dataset {
            name: self.name.clone(),
            graph: Arc::try_unwrap(graph).unwrap_or_else(|a| (*a).clone()),
            features: Arc::try_unwrap(features).unwrap_or_else(|a| (*a).clone()),
            labels: Arc::try_unwrap(labels).unwrap_or_else(|a| (*a).clone()),
            task: self.task,
            split: self.split.clone(),
        })
    }
}

/// Rebuild a store fully resident (negative-control `mem` backend).
fn materialize_to_mem(store: GraphStore) -> io::Result<GraphStore> {
    let (g, f, l) = store.materialize()?;
    Ok(GraphStore::mem(g, f, l))
}

fn put_u32s(buf: &mut Vec<u8>, ids: &[u32]) {
    buf.extend_from_slice(&(ids.len() as u32).to_le_bytes());
    for &v in ids {
        buf.extend_from_slice(&v.to_le_bytes());
    }
}

fn write_meta(
    dir: &Path,
    name: &str,
    task: TaskKind,
    split: &Split,
    train_origin: &[u32],
) -> io::Result<()> {
    let mut buf = Vec::new();
    buf.extend_from_slice(&META_MAGIC.to_le_bytes());
    buf.extend_from_slice(&META_VERSION.to_le_bytes());
    buf.push(match task {
        TaskKind::MultiLabel => 0,
        TaskKind::SingleLabel => 1,
    });
    buf.extend_from_slice(&(name.len() as u32).to_le_bytes());
    buf.extend_from_slice(name.as_bytes());
    put_u32s(&mut buf, &split.train);
    put_u32s(&mut buf, &split.val);
    put_u32s(&mut buf, &split.test);
    put_u32s(&mut buf, train_origin);

    let tmp = dir.join(format!("{META_FILE}.tmp"));
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(&buf)?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, dir.join(META_FILE))
}

/// Cursor over the metadata byte buffer with loud truncation errors.
struct MetaReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> MetaReader<'a> {
    fn take(&mut self, len: usize) -> io::Result<&'a [u8]> {
        if self.pos + len > self.buf.len() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "dataset.gss truncated or corrupt",
            ));
        }
        let s = &self.buf[self.pos..self.pos + len];
        self.pos += len;
        Ok(s)
    }

    fn u32(&mut self) -> io::Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u8(&mut self) -> io::Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u32s(&mut self) -> io::Result<Vec<u32>> {
        let len = self.u32()? as usize;
        let raw = self.take(len * 4)?;
        Ok(raw
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
            .collect())
    }
}

fn read_meta(dir: &Path) -> io::Result<(String, TaskKind, Split, Vec<u32>)> {
    let bytes = std::fs::read(dir.join(META_FILE)).map_err(|e| {
        io::Error::new(
            e.kind(),
            format!(
                "cannot read {} in {} — not a spilled dataset directory? ({e})",
                META_FILE,
                dir.display()
            ),
        )
    })?;
    let mut r = MetaReader {
        buf: &bytes,
        pos: 0,
    };
    if r.u32()? != META_MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "dataset.gss has wrong magic",
        ));
    }
    let version = r.u32()?;
    if version != META_VERSION {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("dataset.gss format version {version} (expected {META_VERSION})"),
        ));
    }
    let task = match r.u8()? {
        0 => TaskKind::MultiLabel,
        1 => TaskKind::SingleLabel,
        t => {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("dataset.gss has unknown task kind {t}"),
            ))
        }
    };
    let name_len = r.u32()? as usize;
    let name = String::from_utf8(r.take(name_len)?.to_vec())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "dataset name not UTF-8"))?;
    let split = Split {
        train: r.u32s()?,
        val: r.u32s()?,
        test: r.u32s()?,
    };
    let train_origin = r.u32s()?;
    Ok((name, task, split, train_origin))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;
    use gsgcn_tensor::DMatrix;

    fn tmp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "gsgcn-sds-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn small_dataset() -> Dataset {
        let spec = presets::scale_spec(&presets::ppi_spec(), 120);
        spec.generate(7)
    }

    #[test]
    fn spill_and_reopen_mmap_roundtrips() {
        let d = small_dataset();
        let dir = tmp_dir("roundtrip");
        d.spill_to_dir(&dir, 4).unwrap();
        let sd = StoreDataset::open_with(&dir, StoreBackend::Mmap, 1 << 20).unwrap();

        assert_eq!(sd.name, d.name);
        assert_eq!(sd.task, d.task);
        assert_eq!(sd.split.train, d.split.train);
        assert_eq!(sd.num_vertices(), d.graph.num_vertices());
        assert_eq!(sd.feature_dim(), d.feature_dim());
        assert_eq!(sd.num_classes(), d.num_classes());

        // Full-store topology and rows match the resident dataset bit-for-bit.
        for v in 0..d.graph.num_vertices() as u32 {
            assert_eq!(
                sd.full.neighbors_ref(v).to_vec(),
                d.graph.neighbors(v).to_vec(),
                "vertex {v} adjacency"
            );
        }
        let probe: Vec<u32> = (0..d.graph.num_vertices() as u32).step_by(7).collect();
        let mut rows = DMatrix::zeros(probe.len(), sd.feature_dim());
        sd.full.gather_features_into(&probe, &mut rows).unwrap();
        for (i, &v) in probe.iter().enumerate() {
            assert_eq!(rows.row(i), d.features.row(v as usize), "feature row {v}");
        }

        // Train store equals the in-memory train view.
        let tv = d.train_view();
        assert_eq!(sd.train_origin, tv.origin);
        assert_eq!(sd.train.num_vertices(), tv.graph.num_vertices());
        for v in 0..tv.graph.num_vertices() as u32 {
            assert_eq!(
                sd.train.neighbors_ref(v).to_vec(),
                tv.graph.neighbors(v).to_vec(),
                "train vertex {v} adjacency"
            );
        }

        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn ordered_spill_is_observationally_identical() {
        let d = small_dataset();
        for order in [StoreOrder::Bfs, StoreOrder::Degree] {
            let dir = tmp_dir(&format!("ordered-{}", order.name()));
            d.spill_to_dir_ordered(&dir, 4, order).unwrap();
            let sd = StoreDataset::open_with(&dir, StoreBackend::Mmap, 1 << 20).unwrap();
            assert_eq!(sd.full.order(), order);
            assert_eq!(sd.train.order(), order);
            // Same user-facing numbering: adjacency and rows unchanged.
            for v in 0..d.graph.num_vertices() as u32 {
                assert_eq!(
                    sd.full.neighbors_ref(v).to_vec(),
                    d.graph.neighbors(v).to_vec(),
                    "{order:?} vertex {v}"
                );
            }
            let probe: Vec<u32> = (0..d.graph.num_vertices() as u32).step_by(5).collect();
            let mut rows = DMatrix::zeros(probe.len(), sd.feature_dim());
            sd.full.gather_features_into(&probe, &mut rows).unwrap();
            for (i, &v) in probe.iter().enumerate() {
                assert_eq!(rows.row(i), d.features.row(v as usize), "{order:?} row {v}");
            }
            assert_eq!(sd.train_origin, d.train_view().origin);
            std::fs::remove_dir_all(&dir).unwrap();
        }
    }

    #[test]
    fn mem_backend_materializes_and_matches() {
        let d = small_dataset();
        let dir = tmp_dir("membackend");
        d.spill_to_dir(&dir, 3).unwrap();
        let sd = StoreDataset::open_with(&dir, StoreBackend::Mem, 1 << 20).unwrap();
        assert_eq!(sd.full.backend(), StoreBackend::Mem);
        let rd = sd.to_dataset().unwrap();
        assert_eq!(rd.graph, d.graph);
        assert_eq!(rd.features.data(), d.features.data());
        assert_eq!(rd.labels.data(), d.labels.data());
        assert!(rd.validate().is_ok());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_or_truncated_meta_fails_loudly() {
        let d = small_dataset();
        let dir = tmp_dir("badmeta");
        assert!(StoreDataset::open_with(&dir, StoreBackend::Mmap, 1 << 20).is_err());

        d.spill_to_dir(&dir, 2).unwrap();
        let meta = dir.join(META_FILE);
        let len = std::fs::metadata(&meta).unwrap().len();
        let f = std::fs::OpenOptions::new().write(true).open(&meta).unwrap();
        f.set_len(len / 2).unwrap();
        drop(f);
        let err = StoreDataset::open_with(&dir, StoreBackend::Mmap, 1 << 20).unwrap_err();
        assert!(
            err.to_string().contains("truncated"),
            "unexpected error: {err}"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
