//! Dataset substrate: synthetic graphs + features + labels that stand in
//! for the paper's four evaluation datasets (Table I).
//!
//! The real datasets (SNAP PPI/Reddit dumps, the Yelp challenge dump, an
//! Amazon co-purchase crawl) are not redistributable here, so this crate
//! generates structurally matched substitutes (the substitution rule is
//! documented in DESIGN.md §3):
//!
//! * [`alias`] — O(1) weighted sampling (alias method), the workhorse of
//!   the generators.
//! * [`generators`] — degree-corrected community graphs with power-law
//!   degrees (matching each dataset's |V|, |E| and skew), plus classic
//!   Erdős–Rényi / ring graphs for tests.
//! * [`features`] — class-correlated Gaussian features with optional
//!   neighbor smoothing, so graph convolutions genuinely help — the same
//!   reason Word2Vec/SVD features work on the real datasets.
//! * [`labels`] — community-derived multi-label and single-label targets.
//! * [`dataset`] — the assembled [`dataset::Dataset`]: graph, features,
//!   labels, train/val/test split and task kind.
//! * [`presets`] — `ppi`, `reddit`, `yelp`, `amazon` at paper scale and
//!   `*_scaled` versions for time-bounded experiments.

pub mod alias;
pub mod dataset;
pub mod features;
pub mod generators;
pub mod labels;
pub mod presets;
pub mod store_dataset;

pub use dataset::{Dataset, Split, TaskKind};
pub use store_dataset::StoreDataset;
