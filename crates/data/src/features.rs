//! Feature synthesis: class-correlated Gaussian attributes.
//!
//! Each class gets a Gaussian prototype vector; a vertex's raw feature is
//! the mean of its label prototypes plus isotropic noise. An optional
//! neighbor-smoothing pass (one mean-aggregation sweep blended into the
//! raw features) mimics the homophily of real attributed graphs and gives
//! graph convolutions an edge over a pure MLP — without it, the graph
//! would carry no feature signal and all GCN variants would tie.

use gsgcn_graph::CsrGraph;
use gsgcn_tensor::DMatrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;

/// Feature-synthesis parameters.
#[derive(Clone, Debug)]
pub struct FeatureSpec {
    /// Feature width `f^{(0)}` (Table I "Attribute Size").
    pub dim: usize,
    /// Std-dev of the per-vertex noise relative to prototype scale 1.0.
    pub noise: f32,
    /// Blend factor of one neighbor-mean sweep (0 = raw, 0.5 = half).
    pub smoothing: f32,
}

impl Default for FeatureSpec {
    fn default() -> Self {
        FeatureSpec {
            dim: 64,
            noise: 0.6,
            smoothing: 0.3,
        }
    }
}

/// Generate features for vertices with multi-hot `labels` on `graph`.
pub fn class_features(
    graph: &CsrGraph,
    labels: &DMatrix,
    spec: &FeatureSpec,
    seed: u64,
) -> DMatrix {
    assert_eq!(graph.num_vertices(), labels.rows());
    assert!(spec.dim > 0);
    assert!((0.0..=1.0).contains(&spec.smoothing));
    let n = graph.num_vertices();
    let classes = labels.cols();

    // Class prototypes: unit-variance Gaussian directions.
    let mut rng = StdRng::seed_from_u64(seed);
    let mut gauss = move || -> f32 {
        let u1: f32 = rng.random_range(f32::EPSILON..1.0);
        let u2: f32 = rng.random_range(0.0..1.0);
        (-2.0 * u1.ln()).sqrt() * (std::f32::consts::TAU * u2).cos()
    };
    let mut prototypes = DMatrix::zeros(classes, spec.dim);
    for c in 0..classes {
        for j in 0..spec.dim {
            prototypes.set(c, j, gauss());
        }
    }

    // Raw features: mean of own prototypes + noise. Parallel rows with
    // per-row derived RNG for determinism.
    let mut x = DMatrix::zeros(n, spec.dim);
    let dim = spec.dim;
    let noise = spec.noise;
    x.data_mut()
        .par_chunks_mut(dim)
        .enumerate()
        .for_each(|(v, row)| {
            let mut r = StdRng::seed_from_u64(seed ^ (v as u64).wrapping_mul(0x9E3779B97F4A7C15));
            let lv = labels.row(v);
            let count = lv.iter().filter(|&&l| l > 0.0).count().max(1) as f32;
            for (c, &l) in lv.iter().enumerate() {
                if l > 0.0 {
                    for (j, out) in row.iter_mut().enumerate() {
                        *out += prototypes.get(c, j) / count;
                    }
                }
            }
            for out in row.iter_mut() {
                let u1: f32 = r.random_range(f32::EPSILON..1.0);
                let u2: f32 = r.random_range(0.0..1.0);
                *out += noise * (-2.0 * u1.ln()).sqrt() * (std::f32::consts::TAU * u2).cos();
            }
        });

    // Optional homophily smoothing: x ← (1−s)·x + s·mean_neighbors(x).
    if spec.smoothing > 0.0 {
        let mut smooth = DMatrix::zeros(n, dim);
        smooth
            .data_mut()
            .par_chunks_mut(dim)
            .enumerate()
            .for_each(|(v, row)| {
                let nb = graph.neighbors(v as u32);
                if nb.is_empty() {
                    row.copy_from_slice(x.row(v));
                    return;
                }
                for &u in nb {
                    for (o, &s) in row.iter_mut().zip(x.row(u as usize)) {
                        *o += s;
                    }
                }
                let inv = 1.0 / nb.len() as f32;
                for o in row.iter_mut() {
                    *o *= inv;
                }
            });
        let s = spec.smoothing;
        x.data_mut()
            .par_iter_mut()
            .zip(smooth.data().par_iter())
            .for_each(|(xv, &sv)| *xv = (1.0 - s) * *xv + s * sv);
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsgcn_graph::GraphBuilder;

    fn setup() -> (CsrGraph, DMatrix) {
        // Two cliques of 10; labels = clique id one-hot over 2 classes.
        let mut edges = Vec::new();
        for base in [0u32, 10] {
            for i in 0..10 {
                for j in (i + 1)..10 {
                    edges.push((base + i, base + j));
                }
            }
        }
        edges.push((0, 10));
        let g = GraphBuilder::new(20).add_edges(edges).build();
        let y = DMatrix::from_fn(20, 2, |i, j| if j == i / 10 { 1.0 } else { 0.0 });
        (g, y)
    }

    #[test]
    fn shape_and_determinism() {
        let (g, y) = setup();
        let spec = FeatureSpec {
            dim: 16,
            ..FeatureSpec::default()
        };
        let a = class_features(&g, &y, &spec, 1);
        let b = class_features(&g, &y, &spec, 1);
        assert_eq!(a.shape(), (20, 16));
        assert_eq!(a, b);
        let c = class_features(&g, &y, &spec, 2);
        assert_ne!(a, c);
        assert!(a.all_finite());
    }

    #[test]
    fn same_class_features_closer_than_cross_class() {
        let (g, y) = setup();
        let spec = FeatureSpec {
            dim: 32,
            noise: 0.3,
            smoothing: 0.0,
        };
        let x = class_features(&g, &y, &spec, 3);
        let dist = |a: usize, b: usize| -> f32 {
            x.row(a)
                .iter()
                .zip(x.row(b))
                .map(|(p, q)| (p - q) * (p - q))
                .sum::<f32>()
                .sqrt()
        };
        // Average same-class vs cross-class distances.
        let same = (dist(0, 1) + dist(2, 3) + dist(10, 11) + dist(12, 13)) / 4.0;
        let cross = (dist(0, 10) + dist(1, 12) + dist(2, 15) + dist(3, 18)) / 4.0;
        assert!(
            cross > same,
            "cross-class distance {cross} should exceed same-class {same}"
        );
    }

    #[test]
    fn smoothing_pulls_towards_neighbors() {
        let (g, y) = setup();
        let raw = class_features(
            &g,
            &y,
            &FeatureSpec {
                dim: 16,
                noise: 1.0,
                smoothing: 0.0,
            },
            4,
        );
        let smooth = class_features(
            &g,
            &y,
            &FeatureSpec {
                dim: 16,
                noise: 1.0,
                smoothing: 0.8,
            },
            4,
        );
        // Within-clique variance must drop with smoothing.
        let var_of = |x: &DMatrix| -> f32 {
            let mut mean = vec![0.0f32; 16];
            for v in 0..10 {
                for (m, &xv) in mean.iter_mut().zip(x.row(v)) {
                    *m += xv / 10.0;
                }
            }
            (0..10)
                .map(|v| {
                    x.row(v)
                        .iter()
                        .zip(&mean)
                        .map(|(&xv, &m)| (xv - m) * (xv - m))
                        .sum::<f32>()
                })
                .sum::<f32>()
        };
        assert!(
            var_of(&smooth) < var_of(&raw),
            "smoothing should reduce intra-clique variance"
        );
    }

    #[test]
    fn thread_count_invariance() {
        let (g, y) = setup();
        let spec = FeatureSpec {
            dim: 8,
            ..FeatureSpec::default()
        };
        let a = rayon::ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .unwrap()
            .install(|| class_features(&g, &y, &spec, 5));
        let b = rayon::ThreadPoolBuilder::new()
            .num_threads(8)
            .build()
            .unwrap()
            .install(|| class_features(&g, &y, &spec, 5));
        assert_eq!(a, b);
    }
}
