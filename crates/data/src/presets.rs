//! Dataset presets matching Table I of the paper.
//!
//! | Dataset | #Vertices | #Edges | Attr | Classes | Task |
//! |---|---|---|---|---|---|
//! | PPI    | 14,755    | 225,270     | 50  | 121 | (M) |
//! | Reddit | 232,965   | 11,606,919  | 602 | 41  | (S) |
//! | Yelp   | 716,847   | 6,977,410   | 300 | 100 | (M) |
//! | Amazon | 1,598,960 | 132,169,734 | 200 | 107 | (M) |
//!
//! Every preset comes in two sizes: `*_full(seed)` reproduces the Table I
//! statistics exactly (memory: up to ~2.5 GB for Amazon), while
//! `*_scaled(seed)` keeps the *shape* — average degree, degree skew,
//! attribute width, class count, task kind — at a few thousand vertices
//! so the complete benchmark suite runs in minutes. Experiments default
//! to scaled; EXPERIMENTS.md records which size produced each number.

use crate::dataset::{Dataset, Split, TaskKind};
use crate::features::{class_features, FeatureSpec};
use crate::generators::{community_powerlaw, CommunityGraphSpec};
use crate::labels::{multi_label, single_label};

/// Everything needed to synthesise one dataset.
#[derive(Clone, Debug)]
pub struct DatasetSpec {
    pub name: &'static str,
    pub vertices: usize,
    /// Target undirected edge count.
    pub edges: usize,
    pub feature_dim: usize,
    pub classes: usize,
    pub task: TaskKind,
    pub communities: usize,
    /// Degree-distribution exponent (lower = heavier tail).
    pub power_law_alpha: f64,
    /// Hub cap as a multiple of the average degree.
    pub max_degree_factor: f64,
}

impl DatasetSpec {
    /// Synthesise the dataset.
    pub fn generate(&self, seed: u64) -> Dataset {
        let cg = community_powerlaw(
            &CommunityGraphSpec {
                vertices: self.vertices,
                edges: self.edges,
                communities: self.communities,
                p_in: 0.8,
                power_law_alpha: self.power_law_alpha,
                max_degree_factor: self.max_degree_factor,
            },
            seed,
        );
        let labels = match self.task {
            TaskKind::MultiLabel => {
                let per_comm = (self.classes / self.communities).clamp(2, 6);
                multi_label(
                    &cg.community,
                    self.classes,
                    per_comm,
                    0.85,
                    0.02,
                    seed ^ 0x1AB,
                )
            }
            TaskKind::SingleLabel => single_label(&cg.community, self.classes, 0.05, seed ^ 0x1AB),
        };
        let features = class_features(
            &cg.graph,
            &labels,
            &FeatureSpec {
                dim: self.feature_dim,
                noise: 0.6,
                smoothing: 0.3,
            },
            seed ^ 0xFEA7,
        );
        let split = Split::random(self.vertices, 0.66, 0.17, seed ^ 0x5711);
        Dataset {
            name: self.name.to_string(),
            graph: cg.graph,
            features,
            labels,
            task: self.task,
            split,
        }
    }
}

/// PPI at paper scale (Table I row 1).
pub fn ppi_spec() -> DatasetSpec {
    DatasetSpec {
        name: "PPI",
        vertices: 14_755,
        edges: 225_270,
        feature_dim: 50,
        classes: 121,
        task: TaskKind::MultiLabel,
        communities: 40,
        power_law_alpha: 2.5,
        max_degree_factor: 30.0,
    }
}

/// Reddit at paper scale (Table I row 2) — the largest graph evaluated by
/// prior embedding methods.
pub fn reddit_spec() -> DatasetSpec {
    DatasetSpec {
        name: "Reddit",
        vertices: 232_965,
        edges: 11_606_919,
        feature_dim: 602,
        classes: 41,
        task: TaskKind::SingleLabel,
        communities: 41,
        power_law_alpha: 2.2,
        max_degree_factor: 60.0,
    }
}

/// Yelp at paper scale (Table I row 3).
pub fn yelp_spec() -> DatasetSpec {
    DatasetSpec {
        name: "Yelp",
        vertices: 716_847,
        edges: 6_977_410,
        feature_dim: 300,
        classes: 100,
        task: TaskKind::MultiLabel,
        communities: 50,
        power_law_alpha: 2.4,
        max_degree_factor: 50.0,
    }
}

/// Amazon at paper scale (Table I row 4) — the heavily skewed graph that
/// motivates the sampler's degree cap (Sec. VI-C2).
pub fn amazon_spec() -> DatasetSpec {
    DatasetSpec {
        name: "Amazon",
        vertices: 1_598_960,
        edges: 132_169_734,
        feature_dim: 200,
        classes: 107,
        task: TaskKind::MultiLabel,
        communities: 60,
        power_law_alpha: 1.9,
        max_degree_factor: f64::INFINITY,
    }
}

/// Scale a spec down to roughly `vertices` vertices, preserving average
/// degree, attribute width, class count and skew.
pub fn scale_spec(spec: &DatasetSpec, vertices: usize) -> DatasetSpec {
    let factor = vertices as f64 / spec.vertices as f64;
    DatasetSpec {
        vertices,
        edges: ((spec.edges as f64 * factor).round() as usize).max(vertices),
        communities: spec.communities.min(vertices / 16).max(2),
        ..spec.clone()
    }
}

/// PPI-shaped dataset at ~2k vertices (default experiment size).
pub fn ppi_scaled(seed: u64) -> Dataset {
    scale_spec(&ppi_spec(), 2048).generate(seed)
}

/// Reddit-shaped dataset at ~4k vertices.
pub fn reddit_scaled(seed: u64) -> Dataset {
    scale_spec(&reddit_spec(), 4096).generate(seed)
}

/// Yelp-shaped dataset at ~4k vertices.
pub fn yelp_scaled(seed: u64) -> Dataset {
    scale_spec(&yelp_spec(), 4096).generate(seed)
}

/// Amazon-shaped dataset at ~4k vertices (keeps the unbounded skew).
pub fn amazon_scaled(seed: u64) -> Dataset {
    scale_spec(&amazon_spec(), 4096).generate(seed)
}

/// PPI at full Table I scale.
pub fn ppi_full(seed: u64) -> Dataset {
    ppi_spec().generate(seed)
}

/// Reddit at full Table I scale (~600 MB of features).
pub fn reddit_full(seed: u64) -> Dataset {
    reddit_spec().generate(seed)
}

/// Yelp at full Table I scale.
pub fn yelp_full(seed: u64) -> Dataset {
    yelp_spec().generate(seed)
}

/// Amazon at full Table I scale (~2.5 GB total).
pub fn amazon_full(seed: u64) -> Dataset {
    amazon_spec().generate(seed)
}

/// All four scaled presets, in Table I order.
pub fn all_scaled(seed: u64) -> Vec<Dataset> {
    vec![
        ppi_scaled(seed),
        reddit_scaled(seed.wrapping_add(1)),
        yelp_scaled(seed.wrapping_add(2)),
        amazon_scaled(seed.wrapping_add(3)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsgcn_graph::stats;

    #[test]
    fn specs_match_table1() {
        let specs = [ppi_spec(), reddit_spec(), yelp_spec(), amazon_spec()];
        let expect = [
            ("PPI", 14_755, 225_270, 50, 121),
            ("Reddit", 232_965, 11_606_919, 602, 41),
            ("Yelp", 716_847, 6_977_410, 300, 100),
            ("Amazon", 1_598_960, 132_169_734, 200, 107),
        ];
        for (s, (name, v, e, f, c)) in specs.iter().zip(expect) {
            assert_eq!(s.name, name);
            assert_eq!(s.vertices, v);
            assert_eq!(s.edges, e);
            assert_eq!(s.feature_dim, f);
            assert_eq!(s.classes, c);
        }
        assert_eq!(reddit_spec().task, TaskKind::SingleLabel);
        assert_eq!(ppi_spec().task, TaskKind::MultiLabel);
    }

    #[test]
    fn scaled_ppi_valid_and_shaped() {
        let d = ppi_scaled(42);
        assert!(d.validate().is_ok(), "{:?}", d.validate());
        assert_eq!(d.graph.num_vertices(), 2048);
        assert_eq!(d.feature_dim(), 50);
        assert_eq!(d.num_classes(), 121);
        // Average degree preserved within 2× (dedup losses allowed).
        let target_d = 2.0 * 225_270.0 / 14_755.0;
        let got_d = d.graph.avg_degree();
        assert!(
            got_d > target_d * 0.5 && got_d < target_d * 2.0,
            "avg degree {got_d:.1} vs target {target_d:.1}"
        );
    }

    #[test]
    fn scaled_reddit_single_label() {
        let d = reddit_scaled(1);
        assert!(d.validate().is_ok());
        assert_eq!(d.task, TaskKind::SingleLabel);
        assert_eq!(d.num_classes(), 41);
    }

    #[test]
    fn scaled_amazon_is_skewed() {
        let d = amazon_scaled(2);
        let s = stats::degree_stats(&d.graph);
        assert!(
            s.max as f64 > 8.0 * s.mean,
            "Amazon-shaped graph should be heavily skewed: max {} mean {:.1}",
            s.max,
            s.mean
        );
    }

    #[test]
    fn all_scaled_returns_four() {
        let all = all_scaled(3);
        assert_eq!(all.len(), 4);
        let names: Vec<_> = all.iter().map(|d| d.name.as_str()).collect();
        assert_eq!(names, vec!["PPI", "Reddit", "Yelp", "Amazon"]);
        for d in &all {
            assert!(d.validate().is_ok(), "{} invalid", d.name);
        }
    }

    #[test]
    fn generation_deterministic() {
        let a = ppi_scaled(7);
        let b = ppi_scaled(7);
        assert_eq!(a.graph, b.graph);
        assert_eq!(a.features, b.features);
        assert_eq!(a.labels, b.labels);
    }
}
