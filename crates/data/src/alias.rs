//! Walker's alias method: O(n) construction, O(1) sampling from a fixed
//! discrete distribution.
//!
//! Sec. IV-A of the paper contrasts the Dashboard against exactly this
//! structure: "existing well-known methods for fast sampling such as
//! aliasing … cannot be modified easily for this problem [dynamic
//! distributions]". The generators here sample *static* distributions
//! (degree sequences), which is the alias method's home turf.

use rand::Rng;

/// Precomputed alias table over `weights.len()` outcomes.
#[derive(Clone, Debug)]
pub struct AliasTable {
    prob: Vec<f64>,
    alias: Vec<u32>,
}

impl AliasTable {
    /// Build from non-negative weights (not all zero).
    pub fn new(weights: &[f64]) -> Self {
        let n = weights.len();
        assert!(n > 0, "empty weight vector");
        assert!(weights.iter().all(|&w| w >= 0.0), "negative weight");
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "all weights zero");

        let scale = n as f64 / total;
        let mut prob: Vec<f64> = weights.iter().map(|&w| w * scale).collect();
        let mut alias = vec![0u32; n];
        let mut small: Vec<u32> = Vec::new();
        let mut large: Vec<u32> = Vec::new();
        for (i, &p) in prob.iter().enumerate() {
            if p < 1.0 {
                small.push(i as u32);
            } else {
                large.push(i as u32);
            }
        }
        while let (Some(&s), Some(&l)) = (small.last(), large.last()) {
            small.pop();
            alias[s as usize] = l;
            prob[l as usize] -= 1.0 - prob[s as usize];
            if prob[l as usize] < 1.0 {
                large.pop();
                small.push(l);
            }
        }
        // Numerical leftovers: everything remaining gets probability 1.
        for &i in small.iter().chain(large.iter()) {
            prob[i as usize] = 1.0;
        }
        AliasTable { prob, alias }
    }

    /// Number of outcomes.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// True if the table has no outcomes (never — construction forbids it).
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Draw one outcome.
    #[inline]
    pub fn sample<R: Rng>(&self, rng: &mut R) -> usize {
        let i = rng.random_range(0..self.prob.len());
        if rng.random::<f64>() < self.prob[i] {
            i
        } else {
            self.alias[i] as usize
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_weights_sample_uniformly() {
        let t = AliasTable::new(&[1.0; 8]);
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = [0usize; 8];
        for _ in 0..80_000 {
            counts[t.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!((c as f64 - 10_000.0).abs() < 1_000.0, "{counts:?}");
        }
    }

    #[test]
    fn skewed_weights_respected() {
        let t = AliasTable::new(&[1.0, 3.0]);
        let mut rng = StdRng::seed_from_u64(2);
        let mut ones = 0usize;
        let trials = 100_000;
        for _ in 0..trials {
            if t.sample(&mut rng) == 1 {
                ones += 1;
            }
        }
        let rate = ones as f64 / trials as f64;
        assert!((rate - 0.75).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn zero_weight_outcomes_never_sampled() {
        let t = AliasTable::new(&[0.0, 1.0, 0.0, 2.0]);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let s = t.sample(&mut rng);
            assert!(s == 1 || s == 3);
        }
    }

    #[test]
    fn single_outcome() {
        let t = AliasTable::new(&[5.0]);
        let mut rng = StdRng::seed_from_u64(4);
        assert_eq!(t.sample(&mut rng), 0);
        assert_eq!(t.len(), 1);
    }

    #[test]
    #[should_panic(expected = "all weights zero")]
    fn all_zero_rejected() {
        AliasTable::new(&[0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_rejected() {
        AliasTable::new(&[]);
    }

    #[test]
    fn power_law_distribution_preserved() {
        // Weights w_i = 1/(i+1): heavy head. Verify first outcome's
        // empirical frequency.
        let weights: Vec<f64> = (0..100).map(|i| 1.0 / (i + 1) as f64).collect();
        let total: f64 = weights.iter().sum();
        let t = AliasTable::new(&weights);
        let mut rng = StdRng::seed_from_u64(5);
        let mut zero = 0usize;
        let trials = 200_000;
        for _ in 0..trials {
            if t.sample(&mut rng) == 0 {
                zero += 1;
            }
        }
        let expect = 1.0 / total;
        let rate = zero as f64 / trials as f64;
        assert!((rate - expect).abs() < 0.01, "{rate} vs {expect}");
    }
}
