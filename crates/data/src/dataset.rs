//! The assembled dataset: graph + features + labels + split + task kind.

use gsgcn_graph::{induced_subgraph, CsrGraph};
use gsgcn_tensor::DMatrix;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Classification task kind (Table I's (M)/(S) marks).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TaskKind {
    /// Multi-label (sigmoid/BCE): PPI, Yelp, Amazon.
    MultiLabel,
    /// Single-label (softmax/CE): Reddit.
    SingleLabel,
}

impl TaskKind {
    /// Table I's mark for the task.
    pub fn mark(&self) -> &'static str {
        match self {
            TaskKind::MultiLabel => "(M)",
            TaskKind::SingleLabel => "(S)",
        }
    }
}

/// Train/validation/test vertex split.
#[derive(Clone, Debug)]
pub struct Split {
    pub train: Vec<u32>,
    pub val: Vec<u32>,
    pub test: Vec<u32>,
}

impl Split {
    /// Random split with the given fractions (test takes the remainder).
    pub fn random(n: usize, train_frac: f64, val_frac: f64, seed: u64) -> Self {
        assert!(train_frac > 0.0 && val_frac >= 0.0 && train_frac + val_frac < 1.0);
        let mut ids: Vec<u32> = (0..n as u32).collect();
        ids.shuffle(&mut StdRng::seed_from_u64(seed));
        let n_train = ((n as f64) * train_frac).round() as usize;
        let n_val = ((n as f64) * val_frac).round() as usize;
        let mut train = ids[..n_train].to_vec();
        let mut val = ids[n_train..n_train + n_val].to_vec();
        let mut test = ids[n_train + n_val..].to_vec();
        train.sort_unstable();
        val.sort_unstable();
        test.sort_unstable();
        Split { train, val, test }
    }
}

/// A complete supervised graph-learning dataset.
#[derive(Clone, Debug)]
pub struct Dataset {
    /// Dataset name (for reports).
    pub name: String,
    /// The full graph.
    pub graph: CsrGraph,
    /// Vertex attributes, `|V| × f`.
    pub features: DMatrix,
    /// Multi-hot / one-hot targets, `|V| × classes`.
    pub labels: DMatrix,
    /// Task kind.
    pub task: TaskKind,
    /// Vertex split.
    pub split: Split,
}

/// The training-graph view: the paper samples subgraphs from the graph
/// *induced on the training vertices* ("one full traversal of all
/// training vertices", Sec. III-B), never touching val/test topology
/// during training.
#[derive(Clone, Debug)]
pub struct TrainView {
    /// Graph induced on the training vertices (local ids `0..t`).
    ///
    /// Shared via `Arc` so long-lived sampler worker threads (the
    /// pipelined trainer's producers) can hold the training topology
    /// without copying it; everything else reads through the `Deref`
    /// coercion to `&CsrGraph`.
    pub graph: std::sync::Arc<CsrGraph>,
    /// Features of the training vertices (rows aligned with `graph`).
    ///
    /// `Arc`-shared so a [`gsgcn_graph::GraphStore`] built over the view
    /// can alias the matrices instead of copying them; read-only call
    /// sites keep working through `Deref`.
    pub features: std::sync::Arc<DMatrix>,
    /// Labels of the training vertices.
    pub labels: std::sync::Arc<DMatrix>,
    /// Local id → original vertex id.
    pub origin: Vec<u32>,
}

impl Dataset {
    /// Feature width `f^{(0)}`.
    pub fn feature_dim(&self) -> usize {
        self.features.cols()
    }

    /// Number of target classes.
    pub fn num_classes(&self) -> usize {
        self.labels.cols()
    }

    /// Undirected edge count (stored edges are symmetric-directed).
    pub fn num_undirected_edges(&self) -> usize {
        self.graph.num_edges() / 2
    }

    /// Consistency checks; returns the first problem found.
    pub fn validate(&self) -> Result<(), String> {
        let n = self.graph.num_vertices();
        if self.features.rows() != n {
            return Err(format!("features rows {} ≠ |V| {n}", self.features.rows()));
        }
        if self.labels.rows() != n {
            return Err(format!("labels rows {} ≠ |V| {n}", self.labels.rows()));
        }
        let total = self.split.train.len() + self.split.val.len() + self.split.test.len();
        if total != n {
            return Err(format!("split covers {total} of {n} vertices"));
        }
        if !self.features.all_finite() {
            return Err("non-finite feature values".into());
        }
        if !self.labels.all_finite() {
            return Err("non-finite label values".into());
        }
        if self.task == TaskKind::SingleLabel {
            for v in 0..n {
                let s: f32 = self.labels.row(v).iter().sum();
                if (s - 1.0).abs() > 1e-6 {
                    return Err(format!("vertex {v} not one-hot in single-label task"));
                }
            }
        }
        Ok(())
    }

    /// The same dataset with vertices renamed by `new_id` (`new_id[v]`
    /// is the new id of vertex `v`; must be a permutation of `0..|V|`).
    /// Topology, feature/label rows and splits are rewritten
    /// consistently, so the result describes the identical graph under
    /// scrambled ids. Benchmarks use this to model real-world inputs,
    /// whose vertex numbering (crawl order, hashes) carries none of the
    /// locality a synthetic generator's contiguous communities do —
    /// which is precisely the input a locality-aware shard order has to
    /// recover from.
    pub fn relabeled(&self, new_id: &[u32]) -> Dataset {
        let n = self.graph.num_vertices();
        assert_eq!(new_id.len(), n, "permutation must cover every vertex");
        let mut old_of_new = vec![u32::MAX; n];
        for (old, &new) in new_id.iter().enumerate() {
            assert!(
                old_of_new[new as usize] == u32::MAX,
                "new_id is not a permutation (duplicate id {new})"
            );
            old_of_new[new as usize] = old as u32;
        }
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0usize);
        let mut adj = Vec::with_capacity(self.graph.num_edges());
        let mut features = DMatrix::zeros(n, self.features.cols());
        let mut labels = DMatrix::zeros(n, self.labels.cols());
        for (new, &old) in old_of_new.iter().enumerate() {
            let old = old as usize;
            // Neighbor lists keep their stored order, just renamed — the
            // relabeled dataset is internally consistent, which is all
            // the backend-determinism contract needs.
            for &u in self.graph.neighbors(old as u32) {
                adj.push(new_id[u as usize]);
            }
            offsets.push(adj.len());
            features
                .row_mut(new)
                .copy_from_slice(self.features.row(old));
            labels.row_mut(new).copy_from_slice(self.labels.row(old));
        }
        let map = |ids: &[u32]| -> Vec<u32> { ids.iter().map(|&v| new_id[v as usize]).collect() };
        Dataset {
            name: self.name.clone(),
            graph: CsrGraph::from_raw(offsets, adj),
            features,
            labels,
            task: self.task,
            split: Split {
                train: map(&self.split.train),
                val: map(&self.split.val),
                test: map(&self.split.test),
            },
        }
    }

    /// Build the training view (induced training graph + gathered rows).
    pub fn train_view(&self) -> TrainView {
        let sub = induced_subgraph(&self.graph, &self.split.train);
        let features = self.features.gather_rows(&sub.origin);
        let labels = self.labels.gather_rows(&sub.origin);
        TrainView {
            graph: std::sync::Arc::new(sub.graph),
            features: std::sync::Arc::new(features),
            labels: std::sync::Arc::new(labels),
            origin: sub.origin,
        }
    }

    /// One Table I row: `name, |V|, |E|, attribute size, classes+mark`.
    pub fn table1_row(&self) -> String {
        format!(
            "{:<10} {:>10} {:>12} {:>8} {:>6} {}",
            self.name,
            self.graph.num_vertices(),
            self.num_undirected_edges(),
            self.feature_dim(),
            self.num_classes(),
            self.task.mark()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsgcn_graph::GraphBuilder;

    fn tiny() -> Dataset {
        let g = GraphBuilder::new(6)
            .add_edges([(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)])
            .build();
        Dataset {
            name: "tiny".into(),
            features: DMatrix::from_fn(6, 3, |i, j| (i + j) as f32),
            labels: DMatrix::from_fn(6, 2, |i, j| if j == i % 2 { 1.0 } else { 0.0 }),
            task: TaskKind::SingleLabel,
            split: Split::random(6, 0.5, 0.17, 1),
            graph: g,
        }
    }

    #[test]
    fn relabeled_describes_the_same_graph() {
        let d = tiny();
        let new_id: Vec<u32> = vec![3, 0, 5, 1, 4, 2];
        let r = d.relabeled(&new_id);
        r.validate().expect("relabeled dataset is well-formed");
        assert_eq!(r.graph.num_edges(), d.graph.num_edges());
        for old in 0..6u32 {
            let new = new_id[old as usize];
            // Degree, feature and label rows travel with the vertex.
            assert_eq!(r.graph.degree(new), d.graph.degree(old));
            assert_eq!(r.features.row(new as usize), d.features.row(old as usize));
            assert_eq!(r.labels.row(new as usize), d.labels.row(old as usize));
            // Edges are preserved under the renaming (order included).
            let want: Vec<u32> = d
                .graph
                .neighbors(old)
                .iter()
                .map(|&u| new_id[u as usize])
                .collect();
            assert_eq!(r.graph.neighbors(new), &want[..]);
        }
        // Splits are renamed in place, preserving list order.
        assert_eq!(r.split.train.len(), d.split.train.len());
        for (a, b) in r.split.train.iter().zip(&d.split.train) {
            assert_eq!(*a, new_id[*b as usize]);
        }
        // Round-trip through the inverse permutation is the identity.
        let mut inverse = vec![0u32; 6];
        for (old, &new) in new_id.iter().enumerate() {
            inverse[new as usize] = old as u32;
        }
        let back = r.relabeled(&inverse);
        assert_eq!(back.graph.adjacency(), d.graph.adjacency());
        assert_eq!(back.features.row(2), d.features.row(2));
    }

    #[test]
    fn split_fractions_and_coverage() {
        let s = Split::random(100, 0.66, 0.17, 2);
        assert_eq!(s.train.len(), 66);
        assert_eq!(s.val.len(), 17);
        assert_eq!(s.test.len(), 17);
        let mut all: Vec<u32> = s
            .train
            .iter()
            .chain(&s.val)
            .chain(&s.test)
            .copied()
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..100).collect::<Vec<u32>>());
    }

    #[test]
    fn split_deterministic() {
        let a = Split::random(50, 0.6, 0.2, 7);
        let b = Split::random(50, 0.6, 0.2, 7);
        assert_eq!(a.train, b.train);
        let c = Split::random(50, 0.6, 0.2, 8);
        assert_ne!(a.train, c.train);
    }

    #[test]
    fn dataset_validates() {
        assert!(tiny().validate().is_ok());
        let mut d = tiny();
        d.features = DMatrix::zeros(5, 3);
        assert!(d.validate().is_err());
        let mut d = tiny();
        d.labels.set(0, 0, f32::NAN);
        // NaN labels are allowed only in features check; single-label check
        // will fail on the row sum.
        assert!(d.validate().is_err());
    }

    #[test]
    fn train_view_gathers_consistently() {
        let d = tiny();
        let tv = d.train_view();
        assert_eq!(tv.graph.num_vertices(), d.split.train.len());
        assert_eq!(tv.features.rows(), tv.graph.num_vertices());
        assert_eq!(tv.labels.rows(), tv.graph.num_vertices());
        // Row i of the view equals the original row of origin[i].
        for (i, &orig) in tv.origin.iter().enumerate() {
            assert_eq!(tv.features.row(i), d.features.row(orig as usize));
            assert_eq!(tv.labels.row(i), d.labels.row(orig as usize));
        }
    }

    #[test]
    fn table1_row_contains_fields() {
        let row = tiny().table1_row();
        assert!(row.contains("tiny"));
        assert!(row.contains("(S)"));
        assert!(row.contains('6'));
    }

    #[test]
    #[should_panic]
    fn bad_split_fractions_panic() {
        Split::random(10, 0.9, 0.2, 1);
    }
}
