//! Graph generators.
//!
//! The main generator, [`community_powerlaw`], is a degree-corrected
//! stochastic block model: vertices live in `k` communities, target
//! degrees follow a truncated Pareto (power-law) distribution, and each
//! edge stub connects inside the community with probability `p_in`
//! (otherwise globally), with endpoints chosen degree-proportionally.
//! This matches the two structural properties the paper's datasets share
//! and the evaluation depends on: heavy-tailed degrees (frontier-sampler
//! behaviour, degree caps) and community structure (learnable labels).

use crate::alias::AliasTable;
use gsgcn_graph::{CsrGraph, GraphBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;

/// Parameters of the degree-corrected community graph.
#[derive(Clone, Debug)]
pub struct CommunityGraphSpec {
    /// Number of vertices.
    pub vertices: usize,
    /// Target *undirected* edge count (realised count is within a few
    /// percent after deduplication).
    pub edges: usize,
    /// Number of communities.
    pub communities: usize,
    /// Probability an edge stub stays inside its community.
    pub p_in: f64,
    /// Power-law exponent of the degree distribution (Pareto α); larger →
    /// less skew. Typical social graphs: 2–3.
    pub power_law_alpha: f64,
    /// Hard cap on a vertex's target degree (before dedup), as a multiple
    /// of the average degree. Controls hub size; `f64::INFINITY` for
    /// untruncated Amazon-like skew.
    pub max_degree_factor: f64,
}

impl Default for CommunityGraphSpec {
    fn default() -> Self {
        CommunityGraphSpec {
            vertices: 1000,
            edges: 10_000,
            communities: 10,
            p_in: 0.8,
            power_law_alpha: 2.5,
            max_degree_factor: 50.0,
        }
    }
}

/// Output of the community generator: the graph and each vertex's
/// community id (consumed by the label generator).
#[derive(Clone, Debug)]
pub struct CommunityGraph {
    pub graph: CsrGraph,
    pub community: Vec<u32>,
}

/// Generate a degree-corrected community graph (see module docs).
pub fn community_powerlaw(spec: &CommunityGraphSpec, seed: u64) -> CommunityGraph {
    assert!(spec.vertices >= 2, "need at least 2 vertices");
    assert!(spec.communities >= 1 && spec.communities <= spec.vertices);
    assert!((0.0..=1.0).contains(&spec.p_in));
    assert!(spec.power_law_alpha > 1.0, "alpha must exceed 1");
    let n = spec.vertices;
    let k = spec.communities;
    let mut rng = StdRng::seed_from_u64(seed);

    // Community assignment: contiguous equal-size blocks, then a light
    // shuffle of block boundaries via random permutation of vertex ids
    // is unnecessary — ids are arbitrary anyway.
    let community: Vec<u32> = (0..n).map(|v| ((v * k) / n) as u32).collect();

    // Target degrees: truncated Pareto with mean scaled to hit `edges`.
    let avg_deg = (2.0 * spec.edges as f64 / n as f64).max(1.0);
    let cap = (avg_deg * spec.max_degree_factor).max(2.0);
    let alpha = spec.power_law_alpha;
    let mut theta: Vec<f64> = (0..n)
        .map(|_| {
            // Pareto(x_m = 1, α) via inverse CDF, truncated at `cap`.
            let u: f64 = rng.random::<f64>().max(1e-12);
            u.powf(-1.0 / alpha).min(cap)
        })
        .collect();
    // Rescale so Σθ = 2·edges (each unit of θ ≈ one edge stub).
    let sum: f64 = theta.iter().sum();
    let scale = 2.0 * spec.edges as f64 / sum;
    for t in theta.iter_mut() {
        *t *= scale;
    }

    // Per-community and global alias tables over θ.
    let global = AliasTable::new(&theta);
    let mut members: Vec<Vec<u32>> = vec![Vec::new(); k];
    for (v, &c) in community.iter().enumerate() {
        members[c as usize].push(v as u32);
    }
    let per_comm: Vec<AliasTable> = members
        .iter()
        .map(|m| {
            let w: Vec<f64> = m.iter().map(|&v| theta[v as usize]).collect();
            AliasTable::new(&w)
        })
        .collect();

    // Stub placement, parallel over source-vertex chunks (each chunk gets
    // an independent RNG stream → deterministic regardless of threads).
    let chunk = 1024;
    let edges: Vec<(u32, u32)> = (0..n.div_ceil(chunk))
        .into_par_iter()
        .flat_map_iter(|ci| {
            let mut rng = StdRng::seed_from_u64(seed ^ (0xC0FFEE + ci as u64 * 0x9E3779B9));
            let lo = ci * chunk;
            let hi = ((ci + 1) * chunk).min(n);
            let mut out = Vec::new();
            for v in lo..hi {
                let c = community[v] as usize;
                // Half the stubs (each undirected edge has two endpoints).
                let stubs = (theta[v] / 2.0).round() as usize;
                for _ in 0..stubs {
                    let u = if rng.random::<f64>() < spec.p_in && members[c].len() > 1 {
                        members[c][per_comm[c].sample(&mut rng)]
                    } else {
                        global.sample(&mut rng) as u32
                    };
                    if u as usize != v {
                        out.push((v as u32, u));
                    }
                }
            }
            out
        })
        .collect();

    // Connectivity floor: a ring inside each community guarantees
    // min-degree ≥ 1 (samplers assume no isolated vertices) and keeps
    // every community internally connected.
    let mut builder = GraphBuilder::with_capacity(n, edges.len() + n);
    builder = builder.add_edges(edges);
    for m in &members {
        for w in m.windows(2) {
            builder = builder.add_edge(w[0], w[1]);
        }
        if m.len() > 2 {
            builder = builder.add_edge(m[m.len() - 1], m[0]);
        }
    }
    CommunityGraph {
        graph: builder.build(),
        community,
    }
}

/// Erdős–Rényi `G(n, m)` graph (test utility).
pub fn erdos_renyi(n: usize, m: usize, seed: u64) -> CsrGraph {
    assert!(n >= 2);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut builder = GraphBuilder::with_capacity(n, m + n);
    for _ in 0..m {
        let u = rng.random_range(0..n as u32);
        let v = rng.random_range(0..n as u32);
        if u != v {
            builder = builder.add_edge(u, v);
        }
    }
    // Ring floor for min-degree ≥ 1.
    for v in 0..n as u32 {
        builder = builder.add_edge(v, (v + 1) % n as u32);
    }
    builder.build()
}

/// Ring of `n` vertices (test utility).
pub fn ring(n: usize) -> CsrGraph {
    GraphBuilder::new(n)
        .add_edges((0..n as u32).map(|i| (i, (i + 1) % n as u32)))
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsgcn_graph::stats;

    #[test]
    fn community_graph_basic_shape() {
        let spec = CommunityGraphSpec {
            vertices: 500,
            edges: 5000,
            communities: 5,
            ..CommunityGraphSpec::default()
        };
        let cg = community_powerlaw(&spec, 1);
        assert_eq!(cg.graph.num_vertices(), 500);
        assert_eq!(cg.community.len(), 500);
        // Directed edge count ≈ 2 × target (±30% after dedup).
        let m = cg.graph.num_edges();
        assert!(
            (6_000..=13_000).contains(&m),
            "directed edges {m} far from 2×5000"
        );
        // Min degree ≥ 1.
        assert_eq!(stats::degree_stats(&cg.graph).isolated_fraction, 0.0);
        assert!(cg.graph.is_symmetric());
        assert!(!cg.graph.has_self_loops());
    }

    #[test]
    fn deterministic_per_seed_and_thread_count() {
        let spec = CommunityGraphSpec {
            vertices: 300,
            edges: 2000,
            ..CommunityGraphSpec::default()
        };
        let a = community_powerlaw(&spec, 7);
        let b = community_powerlaw(&spec, 7);
        assert_eq!(a.graph, b.graph);
        let pool1 = rayon::ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .unwrap();
        let c = pool1.install(|| community_powerlaw(&spec, 7));
        assert_eq!(
            a.graph, c.graph,
            "generation must not depend on thread count"
        );
        let d = community_powerlaw(&spec, 8);
        assert_ne!(a.graph, d.graph);
    }

    #[test]
    fn communities_are_assortative() {
        // With p_in = 0.9, most edges should stay within communities.
        let spec = CommunityGraphSpec {
            vertices: 400,
            edges: 4000,
            communities: 4,
            p_in: 0.9,
            ..CommunityGraphSpec::default()
        };
        let cg = community_powerlaw(&spec, 2);
        let (mut within, mut total) = (0usize, 0usize);
        for (u, v) in cg.graph.edges() {
            total += 1;
            if cg.community[u as usize] == cg.community[v as usize] {
                within += 1;
            }
        }
        let frac = within as f64 / total as f64;
        assert!(frac > 0.6, "within-community fraction {frac}");
    }

    #[test]
    fn degree_distribution_is_skewed() {
        let spec = CommunityGraphSpec {
            vertices: 2000,
            edges: 20_000,
            power_law_alpha: 2.0,
            max_degree_factor: 100.0,
            ..CommunityGraphSpec::default()
        };
        let cg = community_powerlaw(&spec, 3);
        let s = stats::degree_stats(&cg.graph);
        // Heavy tail: max degree far above the mean.
        assert!(
            s.max as f64 > 5.0 * s.mean,
            "max {} vs mean {:.1} — not skewed",
            s.max,
            s.mean
        );
    }

    #[test]
    fn max_degree_factor_caps_hubs() {
        // α = 1.5 keeps the uncapped tail far above the cap for any RNG
        // stream (at α = 1.8 the expected uncapped max ≈ the cap, making
        // the comparison a coin flip on the stream).
        let base = CommunityGraphSpec {
            vertices: 2000,
            edges: 20_000,
            power_law_alpha: 1.5,
            ..CommunityGraphSpec::default()
        };
        let wild = community_powerlaw(
            &CommunityGraphSpec {
                max_degree_factor: f64::INFINITY,
                ..base.clone()
            },
            4,
        );
        let tame = community_powerlaw(
            &CommunityGraphSpec {
                max_degree_factor: 3.0,
                ..base
            },
            4,
        );
        assert!(tame.graph.max_degree() < wild.graph.max_degree());
    }

    #[test]
    fn erdos_renyi_shape() {
        let g = erdos_renyi(100, 500, 5);
        assert_eq!(g.num_vertices(), 100);
        assert!(g.num_edges() >= 200); // ring floor alone gives 200
        assert_eq!(stats::degree_stats(&g).isolated_fraction, 0.0);
    }

    #[test]
    fn ring_shape() {
        let g = ring(10);
        assert_eq!(g.num_edges(), 20);
        assert!(g.is_symmetric());
        assert_eq!(stats::largest_component_size(&g), 10);
    }
}
