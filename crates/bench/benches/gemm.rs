//! Criterion microbenchmarks of the dense GEMM kernels (the MKL
//! replacement used for weight application, Sec. V-A).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gsgcn_tensor::{gemm, DMatrix};
use std::hint::black_box;

fn bench_gemm(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm");
    group.sample_size(20);
    for &(m, k, n) in &[(1000usize, 512usize, 256usize), (2000, 512, 512)] {
        let a = DMatrix::from_fn(m, k, |i, j| ((i + j) % 7) as f32 * 0.1);
        let b = DMatrix::from_fn(k, n, |i, j| ((i * 3 + j) % 5) as f32 * 0.2);
        group.throughput(Throughput::Elements((2 * m * k * n) as u64));
        group.bench_with_input(
            BenchmarkId::new("nn", format!("{m}x{k}x{n}")),
            &m,
            |bch, _| {
                bch.iter(|| black_box(gemm::matmul(&a, &b)));
            },
        );
        let bt = DMatrix::from_fn(n, k, |i, j| ((i * 3 + j) % 5) as f32 * 0.2);
        group.bench_with_input(
            BenchmarkId::new("nt", format!("{m}x{k}x{n}")),
            &m,
            |bch, _| {
                bch.iter(|| black_box(gemm::matmul_nt(&a, &bt)));
            },
        );
        let at = DMatrix::from_fn(k, m, |i, j| ((i + j) % 7) as f32 * 0.1);
        group.bench_with_input(
            BenchmarkId::new("tn", format!("{m}x{k}x{n}")),
            &m,
            |bch, _| {
                bch.iter(|| black_box(gemm::matmul_tn(&at, &b)));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_gemm);
criterion_main!(benches);
