//! Criterion microbenchmarks of the dense GEMM kernels (the MKL
//! replacement used for weight application, Sec. V-A).
//!
//! Two shape families:
//!
//! * square-ish (`1000×512×256`, `2000×512×512`) — generic kernel health;
//! * GCN-shaped tall-skinny (`n×f · f×h` with `n` = sampled-subgraph
//!   vertices, `f` = feature width, `h` = hidden width; e.g. `8192×602 ·
//!   602×256` is a PPI-scale forward weight application) — the shapes the
//!   training loop actually issues, benchmarked for the packed kernel
//!   against the seed's unpacked k-blocked kernel
//!   (`gemm::matmul_unpacked`) so the packing win stays measured, and
//!   **per microkernel tier** (`packed_scalar` / `packed_avx2` /
//!   `packed_avx512`, whichever the CPU supports) so the explicit-SIMD
//!   gain over the autovectorised fallback stays measured too (acceptance
//!   target: avx512 ≥ 1.5× scalar on `8192×602·602×256`).
//!
//! Run with `GSGCN_BENCH_JSON=BENCH_gemm.json` to archive the numbers;
//! each record is tagged with the kernel tier that produced it.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gsgcn_tensor::{gemm, DMatrix};
use std::hint::black_box;

fn bench_gemm(c: &mut Criterion) {
    gsgcn_bench::announce_kernel_tier();
    let mut group = c.benchmark_group("gemm");
    group.sample_size(20);
    for &(m, k, n) in &[(1000usize, 512usize, 256usize), (2000, 512, 512)] {
        let a = DMatrix::from_fn(m, k, |i, j| ((i + j) % 7) as f32 * 0.1);
        let b = DMatrix::from_fn(k, n, |i, j| ((i * 3 + j) % 5) as f32 * 0.2);
        group.throughput(Throughput::Elements((2 * m * k * n) as u64));
        group.bench_with_input(
            BenchmarkId::new("nn", format!("{m}x{k}x{n}")),
            &m,
            |bch, _| {
                bch.iter(|| black_box(gemm::matmul(&a, &b)));
            },
        );
        let bt = DMatrix::from_fn(n, k, |i, j| ((i * 3 + j) % 5) as f32 * 0.2);
        group.bench_with_input(
            BenchmarkId::new("nt", format!("{m}x{k}x{n}")),
            &m,
            |bch, _| {
                bch.iter(|| black_box(gemm::matmul_nt(&a, &bt)));
            },
        );
        let at = DMatrix::from_fn(k, m, |i, j| ((i + j) % 7) as f32 * 0.1);
        group.bench_with_input(
            BenchmarkId::new("tn", format!("{m}x{k}x{n}")),
            &m,
            |bch, _| {
                bch.iter(|| black_box(gemm::matmul_tn(&at, &b)));
            },
        );
    }
    group.finish();
}

/// GCN training shapes: packed kernel vs the seed's unpacked kernel.
fn bench_gemm_gcn_shapes(c: &mut Criterion) {
    gsgcn_bench::announce_kernel_tier();
    let mut group = c.benchmark_group("gemm_gcn");
    group.sample_size(20);
    // (n, f, h): subgraph vertices × input width × hidden width.
    // 8192×602·602×256 ≈ a PPI-scale forward weight application;
    // 8192×256·256×128 ≈ a deeper layer; 2048×602·602×256 ≈ a smaller
    // sampling budget.
    for &(n, f, h) in &[
        (8192usize, 602usize, 256usize),
        (8192, 256, 128),
        (2048, 602, 256),
    ] {
        let act = DMatrix::from_fn(n, f, |i, j| ((i * 5 + j) % 11) as f32 * 0.1 - 0.5);
        let w = DMatrix::from_fn(f, h, |i, j| ((i * 3 + j) % 7) as f32 * 0.15 - 0.4);
        group.throughput(Throughput::Elements((2 * n * f * h) as u64));
        group.bench_with_input(
            BenchmarkId::new("packed", format!("{n}x{f}x{h}")),
            &n,
            |bch, _| {
                bch.iter(|| black_box(gemm::matmul(&act, &w)));
            },
        );
        // Every available microkernel tier on the forward shape: the
        // explicit-SIMD vs autovec-fallback comparison CI archives.
        for tier in gemm::available_tiers() {
            criterion::set_json_tags([("kernel", tier.name())]);
            group.bench_with_input(
                BenchmarkId::new(format!("packed_{}", tier.name()), format!("{n}x{f}x{h}")),
                &n,
                |bch, _| {
                    gemm::with_tier(tier, || {
                        bch.iter(|| black_box(gemm::matmul(&act, &w)));
                    });
                },
            );
        }
        criterion::set_json_tags([("kernel", gemm::selected_tier().name())]);
        group.bench_with_input(
            BenchmarkId::new("seed_unpacked", format!("{n}x{f}x{h}")),
            &n,
            |bch, _| {
                bch.iter(|| black_box(gemm::matmul_unpacked(&act, &w)));
            },
        );
        // The backward shapes: weight gradient (tn) and input gradient
        // (nt) at the same scale — the layouts the seed kernel handled
        // worst (nt ran a horizontal-reduction dot-product loop).
        let dy = DMatrix::from_fn(n, h, |i, j| ((i + 2 * j) % 9) as f32 * 0.1 - 0.4);
        group.bench_with_input(
            BenchmarkId::new("packed_tn", format!("{n}x{f}x{h}")),
            &n,
            |bch, _| {
                bch.iter(|| black_box(gemm::matmul_tn(&act, &dy)));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("packed_nt", format!("{n}x{f}x{h}")),
            &n,
            |bch, _| {
                // dH = dY·Wᵀ: W is already stored n×k (= f×h) for nt.
                bch.iter(|| black_box(gemm::matmul_nt(&dy, &w)));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_gemm, bench_gemm_gcn_shapes);
criterion_main!(benches);
