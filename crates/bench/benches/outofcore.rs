//! Out-of-core store benchmark (`BENCH_outofcore.json` in CI): the same
//! sharded on-disk dataset driven through both `GraphStore` backends.
//!
//! A yelp-shaped graph is spilled to a shard directory once, then every
//! access path the trainer and server exercise is measured per backend:
//!
//! * `outofcore/open_B` — `StoreDataset::open_with` cost. The mem
//!   backend pays full materialization up front; mmap only maps headers.
//! * `outofcore/gather_B` — scattered 4096-row feature gathers, the
//!   trainer's per-iteration hot path. Under the deliberately undersized
//!   cache (`CACHE_BUDGET` ≪ store size) the mmap numbers include CLOCK
//!   eviction and remapping — that penalty *is* the result, not noise.
//! * `outofcore/ball2_B` — 2-hop ball expansion of 64 scattered roots
//!   through the `Topology` trait (adjacency-only traffic).
//! * `outofcore/train_epoch_B` — one full `GsGcnTrainer` epoch from the
//!   sharded store.
//!
//! Records are tagged `backend=`, `cache=`, `shards=`; the mmap train
//! record additionally carries the shard-cache hit/miss/eviction counts
//! and each backend phase carries `peak_rss` (`VmHWM`). The mmap phase
//! runs FIRST so its reported peak RSS is a true bound on the out-of-core
//! working set — VmHWM is monotone, so once the mem backend materializes
//! the store the watermark stops being attributable.

use criterion::{criterion_group, criterion_main, Criterion};
use gsgcn_core::{GsGcnTrainer, TrainerConfig};
use gsgcn_data::presets;
use gsgcn_data::store_dataset::StoreDataset;
use gsgcn_graph::{l_hop_ball, GraphStore, StoreBackend, Topology};
use gsgcn_metrics::mem::{format_bytes, peak_rss_bytes};
use gsgcn_sampler::dashboard::FrontierConfig;
use std::path::PathBuf;
use std::time::Instant;

/// Yelp-shaped fixture: big enough that the shard cache genuinely
/// cannot hold the store, small enough to spill in CI seconds.
const GRAPH_VERTICES: usize = 30_000;
const NUM_SHARDS: usize = 12;
/// Shard-cache budget for the mmap backend — roughly a quarter of the
/// on-disk store, so gathers and balls must evict to make progress.
const CACHE_BUDGET: usize = 24 << 20;
const GATHER_ROWS: usize = 4096;
const SAMPLES: usize = 30;

fn shard_dir() -> PathBuf {
    std::env::temp_dir().join(format!("gsgcn-bench-outofcore-{}", std::process::id()))
}

/// Spill the fixture once; later opens reuse it.
fn ensure_spilled() -> PathBuf {
    let dir = shard_dir();
    if !dir.join("dataset.gss").exists() {
        let d = presets::scale_spec(&presets::yelp_spec(), GRAPH_VERTICES).generate(3);
        d.spill_to_dir(&dir, NUM_SHARDS).expect("spill fixture");
    }
    dir
}

fn scattered_rows(iter: usize, count: usize, n: usize) -> Vec<u32> {
    let stride = (n / count).max(1);
    (0..count)
        .map(|k| ((k * stride + iter * 131) % n) as u32)
        .collect()
}

fn backend_tags(backend: StoreBackend, extra: &[(&str, String)]) -> Vec<(String, String)> {
    let mut tags = vec![
        ("backend".to_string(), format!("{backend:?}").to_lowercase()),
        ("cache".to_string(), format_bytes(CACHE_BUDGET)),
        ("shards".to_string(), NUM_SHARDS.to_string()),
    ];
    for (k, v) in extra {
        tags.push((k.to_string(), v.clone()));
    }
    tags
}

fn bench_backend(backend: StoreBackend) {
    let dir = ensure_spilled();
    let backend_name = format!("{backend:?}").to_lowercase();

    // Open / materialization cost.
    let open_lat: Vec<f64> = (0..3)
        .map(|_| {
            let t0 = Instant::now();
            let sd = StoreDataset::open_with(&dir, backend, CACHE_BUDGET).expect("open store");
            std::hint::black_box(sd.num_vertices());
            t0.elapsed().as_secs_f64()
        })
        .collect();
    criterion::set_json_tags(backend_tags(backend, &[]));
    criterion::record_latency_distribution(
        &format!("outofcore/open_{backend_name}"),
        &open_lat,
        None,
    );

    let sd = StoreDataset::open_with(&dir, backend, CACHE_BUDGET).expect("open store");
    let full: &GraphStore = &sd.full;
    let n = full.num_vertices();
    let fdim = full.feature_dim();

    // Scattered feature gathers — the trainer's per-iteration hot path.
    let mut buf = gsgcn_tensor::DMatrix::zeros(GATHER_ROWS, fdim);
    let gather_lat: Vec<f64> = (0..SAMPLES)
        .map(|i| {
            let rows = scattered_rows(i, GATHER_ROWS, n);
            let t0 = Instant::now();
            full.gather_features_into(&rows, &mut buf).expect("gather");
            t0.elapsed().as_secs_f64()
        })
        .collect();
    let gather_median = {
        let mut s = gather_lat.clone();
        s.sort_by(f64::total_cmp);
        s[s.len() / 2]
    };
    criterion::record_latency_distribution(
        &format!("outofcore/gather_{backend_name}"),
        &gather_lat,
        Some(GATHER_ROWS as f64 / gather_median),
    );

    // Adjacency traffic: 2-hop balls of scattered roots via `Topology`.
    let g: &dyn Topology = full;
    let ball_lat: Vec<f64> = (0..SAMPLES)
        .map(|i| {
            let roots = scattered_rows(7 * i + 1, 64, n);
            let t0 = Instant::now();
            std::hint::black_box(l_hop_ball(g, &roots, 2).len());
            t0.elapsed().as_secs_f64()
        })
        .collect();
    criterion::record_latency_distribution(
        &format!("outofcore/ball2_{backend_name}"),
        &ball_lat,
        None,
    );

    // One full training epoch from the sharded store.
    let cfg = TrainerConfig {
        sampler: FrontierConfig {
            frontier_size: 200,
            budget: 2000,
            ..FrontierConfig::default()
        },
        hidden_dims: vec![128],
        epochs: 1,
        eval_every: 0,
        seed: 5,
        ..TrainerConfig::default()
    };
    let mut trainer = GsGcnTrainer::from_store(&sd, cfg).expect("trainer");
    trainer.train_epoch().expect("warm-up epoch");
    let epoch_lat: Vec<f64> = (0..3)
        .map(|_| {
            let t0 = Instant::now();
            trainer.train_epoch().expect("epoch");
            t0.elapsed().as_secs_f64()
        })
        .collect();
    let mut extra = Vec::new();
    if let Some(stats) = full.cache_stats() {
        extra.push(("cache_hits", stats.hits.to_string()));
        extra.push(("cache_misses", stats.misses.to_string()));
        extra.push(("cache_evictions", stats.evictions.to_string()));
    }
    if let Some(rss) = peak_rss_bytes() {
        extra.push(("peak_rss", format_bytes(rss)));
    }
    criterion::set_json_tags(backend_tags(backend, &extra));
    criterion::record_latency_distribution(
        &format!("outofcore/train_epoch_{backend_name}"),
        &epoch_lat,
        None,
    );
    if let Some(stats) = full.cache_stats() {
        println!(
            "  {backend_name}: shard cache {} hits / {} misses / {} evictions, {} mapped",
            stats.hits,
            stats.misses,
            stats.evictions,
            format_bytes(stats.mapped_bytes),
        );
    }
    if let Some(rss) = peak_rss_bytes() {
        println!("  {backend_name}: peak RSS so far {}", format_bytes(rss));
    }
    criterion::set_json_tags([("backend", backend_name)]);
}

fn bench_outofcore(c: &mut Criterion) {
    let _ = c;
    gsgcn_bench::announce_kernel_tier();
    // mmap FIRST: VmHWM is monotone, so the out-of-core phase must set
    // its watermark before the mem backend materializes everything.
    bench_backend(StoreBackend::Mmap);
    bench_backend(StoreBackend::Mem);
    criterion::set_json_tags([] as [(&str, &str); 0]);
    std::fs::remove_dir_all(shard_dir()).ok();
}

criterion_group!(benches, bench_outofcore);
criterion_main!(benches);
