//! Out-of-core store benchmark (`BENCH_outofcore.json` in CI): the same
//! yelp-shaped dataset driven through a matrix of store configurations.
//!
//! Three variants run, each against its own spill of the same graph:
//!
//! * `mmap_natural` — mmap backend, natural (identity) shard order, no
//!   prefetch thread. The out-of-core baseline every PR before the
//!   locality work shipped.
//! * `mmap_bfs_pf` — mmap backend, BFS shard order, background prefetch
//!   thread on. The tuned out-of-core path.
//! * `mem` — fully materialized store (order is irrelevant once
//!   resident). The in-memory floor both gaps are measured against.
//!
//! Per variant the benchmark measures every access path the trainer and
//! server exercise:
//!
//! * `outofcore/open_V` — `StoreDataset::open_with` cost. The mem
//!   backend pays full materialization up front; mmap only maps headers.
//! * `outofcore/gather_V` — scattered 4096-row feature gathers, the
//!   trainer's per-iteration hot path. Rows are multiplicatively
//!   scrambled so consecutive rows land in unrelated shards; under the
//!   deliberately undersized cache (`CACHE_BUDGET` ≪ store size) the
//!   baseline pays a shard map/unmap per row-group transition while the
//!   grouped+prefetched path maps each shard once per gather.
//! * `outofcore/ball2_V` — 2-hop ball expansion of 64 scattered roots
//!   through the `Topology` trait (adjacency-only traffic).
//! * `outofcore/train_epoch_V` — one full `GsGcnTrainer` epoch from the
//!   sharded store (pipelined sampler, so the ready-hook prefetch of
//!   upcoming origins is live on the tuned variant).
//!
//! After the matrix, `outofcore/gather_gap_V` and `outofcore/epoch_gap_V`
//! record each mmap variant's out-of-core *penalty* (mmap minus mem
//! median) and the tuned records carry `*_gap_improvement` tags — the
//! headline "close the out-of-core gap" numbers.
//!
//! Records are tagged `backend=`, `order=`, `prefetch=`, `cache=`,
//! `shards=`; mmap train records additionally carry the shard-cache
//! hit/miss/eviction and prefetch issued/hit/wasted counts, and each
//! variant carries `peak_rss` (`VmHWM`). The mmap variants run FIRST so
//! their reported peak RSS is a true bound on the out-of-core working
//! set — VmHWM is monotone, so once the mem backend materializes the
//! store the watermark stops being attributable.

use criterion::{criterion_group, criterion_main, Criterion};
use gsgcn_core::{GsGcnTrainer, TrainerConfig};
use gsgcn_data::presets;
use gsgcn_data::store_dataset::StoreDataset;
use gsgcn_graph::{l_hop_ball, GraphStore, StoreBackend, StoreOrder, Topology};
use gsgcn_metrics::mem::{format_bytes, peak_rss_bytes};
use gsgcn_sampler::dashboard::FrontierConfig;
use std::path::PathBuf;
use std::time::Instant;

/// Yelp-shaped fixture: big enough that the shard cache genuinely
/// cannot hold the store, small enough to spill in CI seconds.
const GRAPH_VERTICES: usize = 30_000;
const NUM_SHARDS: usize = 12;
/// Shard-cache budget for the mmap backend — roughly a quarter of the
/// on-disk store, so gathers and balls must evict to make progress.
const CACHE_BUDGET: usize = 24 << 20;
const GATHER_ROWS: usize = 4096;
const SAMPLES: usize = 30;

/// One cell of the benchmark matrix.
struct Variant {
    backend: StoreBackend,
    order: StoreOrder,
    prefetch: bool,
    label: &'static str,
}

/// Medians the gap summary needs from each variant.
struct Medians {
    gather: f64,
    epoch: f64,
}

fn shard_dir(order: StoreOrder) -> PathBuf {
    std::env::temp_dir().join(format!(
        "gsgcn-bench-outofcore-{}-{}",
        std::process::id(),
        order.name()
    ))
}

/// Deterministic id scramble (LCG Fisher–Yates). The synthetic generator
/// lays communities out as contiguous id blocks, which would hand the
/// natural order the very locality the BFS order has to *recover*; real
/// inputs number vertices by crawl order or hash, so the fixture
/// relabels to match.
fn scramble_perm(n: usize, seed: u64) -> Vec<u32> {
    let mut perm: Vec<u32> = (0..n as u32).collect();
    let mut s = seed | 1;
    for i in (1..n).rev() {
        s = s
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        let j = (s >> 33) as usize % (i + 1);
        perm.swap(i, j);
    }
    perm
}

/// Spill the fixture once per order; later opens reuse it.
fn ensure_spilled(order: StoreOrder) -> PathBuf {
    let dir = shard_dir(order);
    if !dir.join("dataset.gss").exists() {
        let d = presets::scale_spec(&presets::yelp_spec(), GRAPH_VERTICES)
            .generate(3)
            .relabeled(&scramble_perm(GRAPH_VERTICES, 0xC0FFEE));
        d.spill_to_dir_ordered(&dir, NUM_SHARDS, order)
            .expect("spill fixture");
    }
    dir
}

/// Genuinely scattered rows: a multiplicative scramble, so consecutive
/// rows land in unrelated shards. (A strided walk would visit shards in
/// ascending order and hand the unoptimized path free locality.)
fn scattered_rows(iter: usize, count: usize, n: usize) -> Vec<u32> {
    (0..count)
        .map(|k| {
            let x = (k as u64)
                .wrapping_mul(2_654_435_761)
                .wrapping_add(iter as u64 * 7_919);
            (x % n as u64) as u32
        })
        .collect()
}

fn variant_tags(v: &Variant, extra: &[(&str, String)]) -> Vec<(String, String)> {
    let mut tags = vec![
        (
            "backend".to_string(),
            format!("{:?}", v.backend).to_lowercase(),
        ),
        ("order".to_string(), v.order.name().to_string()),
        (
            "prefetch".to_string(),
            if v.prefetch { "on" } else { "off" }.to_string(),
        ),
        ("cache".to_string(), format_bytes(CACHE_BUDGET)),
        ("shards".to_string(), NUM_SHARDS.to_string()),
    ];
    for (k, val) in extra {
        tags.push((k.to_string(), val.clone()));
    }
    tags
}

fn median(samples: &[f64]) -> f64 {
    let mut s = samples.to_vec();
    s.sort_by(f64::total_cmp);
    s[s.len() / 2]
}

fn bench_variant(v: &Variant) -> Medians {
    let dir = ensure_spilled(v.order);
    let label = v.label;
    // The bench matrix is single-threaded, so flipping the process-wide
    // env between variants is race-free; `bench_outofcore` clears it.
    std::env::set_var("GSGCN_SHARD_PREFETCH", if v.prefetch { "1" } else { "0" });

    // Open / materialization cost.
    let open_lat: Vec<f64> = (0..3)
        .map(|_| {
            let t0 = Instant::now();
            let sd = StoreDataset::open_with(&dir, v.backend, CACHE_BUDGET).expect("open store");
            std::hint::black_box(sd.num_vertices());
            t0.elapsed().as_secs_f64()
        })
        .collect();
    criterion::set_json_tags(variant_tags(v, &[]));
    criterion::record_latency_distribution(&format!("outofcore/open_{label}"), &open_lat, None);

    let sd = StoreDataset::open_with(&dir, v.backend, CACHE_BUDGET).expect("open store");
    let full: &GraphStore = &sd.full;
    let n = full.num_vertices();
    let fdim = full.feature_dim();

    // Scattered feature gathers — the trainer's per-iteration hot path.
    let mut buf = gsgcn_tensor::DMatrix::zeros(GATHER_ROWS, fdim);
    let gather_lat: Vec<f64> = (0..SAMPLES)
        .map(|i| {
            let rows = scattered_rows(i, GATHER_ROWS, n);
            let t0 = Instant::now();
            full.gather_features_into(&rows, &mut buf).expect("gather");
            t0.elapsed().as_secs_f64()
        })
        .collect();
    let gather_median = median(&gather_lat);
    criterion::record_latency_distribution(
        &format!("outofcore/gather_{label}"),
        &gather_lat,
        Some(GATHER_ROWS as f64 / gather_median),
    );

    // Adjacency traffic: 2-hop balls of scattered roots via `Topology`.
    let g: &dyn Topology = full;
    let ball_lat: Vec<f64> = (0..SAMPLES)
        .map(|i| {
            let roots = scattered_rows(7 * i + 1, 64, n);
            let t0 = Instant::now();
            std::hint::black_box(l_hop_ball(g, &roots, 2).len());
            t0.elapsed().as_secs_f64()
        })
        .collect();
    criterion::record_latency_distribution(&format!("outofcore/ball2_{label}"), &ball_lat, None);

    // One full training epoch from the sharded store. A single sampler
    // worker keeps the pipeline (and the tuned variant's origin-prefetch
    // ready hook) on the measured path for every variant.
    let cfg = TrainerConfig {
        sampler: FrontierConfig {
            frontier_size: 200,
            budget: 2000,
            ..FrontierConfig::default()
        },
        hidden_dims: vec![128],
        epochs: 1,
        eval_every: 0,
        seed: 5,
        sampler_threads: 1,
        ..TrainerConfig::default()
    };
    let mut trainer = GsGcnTrainer::from_store(&sd, cfg).expect("trainer");
    trainer.train_epoch().expect("warm-up epoch");
    let epoch_lat: Vec<f64> = (0..3)
        .map(|_| {
            let t0 = Instant::now();
            trainer.train_epoch().expect("epoch");
            t0.elapsed().as_secs_f64()
        })
        .collect();
    let mut extra = Vec::new();
    if let Some(stats) = full.cache_stats() {
        extra.push(("cache_hits", stats.hits.to_string()));
        extra.push(("cache_misses", stats.misses.to_string()));
        extra.push(("cache_evictions", stats.evictions.to_string()));
        if stats.prefetch_issued > 0 {
            extra.push(("prefetch_issued", stats.prefetch_issued.to_string()));
            extra.push(("prefetch_hits", stats.prefetch_hits.to_string()));
            extra.push(("prefetch_wasted", stats.prefetch_wasted.to_string()));
        }
    }
    if let Some(rss) = peak_rss_bytes() {
        extra.push(("peak_rss", format_bytes(rss)));
    }
    criterion::set_json_tags(variant_tags(v, &extra));
    criterion::record_latency_distribution(
        &format!("outofcore/train_epoch_{label}"),
        &epoch_lat,
        None,
    );
    if let Some(stats) = full.cache_stats() {
        println!("  {label}: shard cache {}", stats.summary());
    }
    if let Some(rss) = peak_rss_bytes() {
        println!("  {label}: peak RSS so far {}", format_bytes(rss));
    }
    Medians {
        gather: gather_median,
        epoch: median(&epoch_lat),
    }
}

fn bench_outofcore(c: &mut Criterion) {
    let _ = c;
    gsgcn_bench::announce_kernel_tier();
    let baseline = Variant {
        backend: StoreBackend::Mmap,
        order: StoreOrder::Natural,
        prefetch: false,
        label: "mmap_natural",
    };
    let tuned = Variant {
        backend: StoreBackend::Mmap,
        order: StoreOrder::Bfs,
        prefetch: true,
        label: "mmap_bfs_pf",
    };
    let resident = Variant {
        backend: StoreBackend::Mem,
        order: StoreOrder::Natural,
        prefetch: false,
        label: "mem",
    };
    // mmap variants FIRST: VmHWM is monotone, so the out-of-core phases
    // must set their watermarks before the mem backend materializes
    // everything.
    let base = bench_variant(&baseline);
    let tuned_m = bench_variant(&tuned);
    let mem = bench_variant(&resident);

    // The headline numbers: each mmap variant's out-of-core penalty over
    // the in-memory floor, and how much the tuned variant shrinks it.
    let gather_gap = (base.gather - mem.gather).max(0.0);
    let gather_gap_tuned = (tuned_m.gather - mem.gather).max(0.0);
    let epoch_gap = (base.epoch - mem.epoch).max(0.0);
    let epoch_gap_tuned = (tuned_m.epoch - mem.epoch).max(0.0);
    let gather_improvement = gather_gap / gather_gap_tuned.max(1e-12);
    let epoch_improvement = epoch_gap / epoch_gap_tuned.max(1e-12);
    criterion::set_json_tags(variant_tags(&baseline, &[]));
    criterion::record_latency_distribution(
        "outofcore/gather_gap_mmap_natural",
        &[gather_gap],
        None,
    );
    criterion::record_latency_distribution("outofcore/epoch_gap_mmap_natural", &[epoch_gap], None);
    criterion::set_json_tags(variant_tags(
        &tuned,
        &[
            (
                "gather_gap_improvement",
                format!("{gather_improvement:.2}x"),
            ),
            ("epoch_gap_improvement", format!("{epoch_improvement:.2}x")),
        ],
    ));
    criterion::record_latency_distribution(
        "outofcore/gather_gap_mmap_bfs_pf",
        &[gather_gap_tuned],
        None,
    );
    criterion::record_latency_distribution(
        "outofcore/epoch_gap_mmap_bfs_pf",
        &[epoch_gap_tuned],
        None,
    );
    println!(
        "  gather gap: natural {:.3}ms vs bfs+prefetch {:.3}ms ({gather_improvement:.2}x smaller)",
        gather_gap * 1e3,
        gather_gap_tuned * 1e3,
    );
    println!(
        "  epoch gap: natural {:.3}ms vs bfs+prefetch {:.3}ms ({epoch_improvement:.2}x smaller)",
        epoch_gap * 1e3,
        epoch_gap_tuned * 1e3,
    );

    criterion::set_json_tags([] as [(&str, &str); 0]);
    std::env::remove_var("GSGCN_SHARD_PREFETCH");
    std::fs::remove_dir_all(shard_dir(StoreOrder::Natural)).ok();
    std::fs::remove_dir_all(shard_dir(StoreOrder::Bfs)).ok();
}

criterion_group!(benches, bench_outofcore);
criterion_main!(benches);
