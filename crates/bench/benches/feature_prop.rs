//! Criterion microbenchmarks of the feature-propagation kernels (Sec. V):
//! naive row-parallel vs feature-partitioned (Alg. 6) vs 2-D partitioned.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gsgcn_data::generators::{community_powerlaw, CommunityGraphSpec};
use gsgcn_graph::partition::range_partition;
use gsgcn_prop::kernels;
use gsgcn_tensor::DMatrix;
use std::hint::black_box;

fn bench_propagation(c: &mut Criterion) {
    let n = 4000;
    let cg = community_powerlaw(
        &CommunityGraphSpec {
            vertices: n,
            edges: n * 8,
            communities: 16,
            ..CommunityGraphSpec::default()
        },
        11,
    );
    let g = &cg.graph;

    let mut group = c.benchmark_group("feature_propagation");
    group.sample_size(20);
    for &f in &[128usize, 512] {
        let h = DMatrix::from_fn(n, f, |i, j| ((i + j) % 13) as f32 * 0.1);
        group.throughput(Throughput::Elements((g.num_edges() * f) as u64));
        group.bench_with_input(BenchmarkId::new("naive", f), &f, |b, _| {
            b.iter(|| black_box(kernels::aggregate_naive(g, &h)));
        });
        group.bench_with_input(BenchmarkId::new("feature_partitioned", f), &f, |b, _| {
            b.iter(|| black_box(kernels::aggregate_feature_partitioned(g, &h, 256 * 1024)));
        });
        let part = range_partition(n, 4);
        group.bench_with_input(BenchmarkId::new("two_d_p4", f), &f, |b, _| {
            b.iter(|| black_box(kernels::aggregate_2d(g, &h, &part, 4)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_propagation);
criterion_main!(benches);
