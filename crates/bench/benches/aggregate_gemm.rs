//! Fused aggregate→GEMM vs the unfused `aggregate → matmul` sequence on
//! the GCN layer shapes (the tentpole comparison of the SpMM-fusion work;
//! acceptance target: fused ≥ 1.3× on the 8192×602·602×256 shape).
//!
//! Both sides compute the full layer neighbor-half product
//! `C = (Â·H)·W` into a preallocated output:
//!
//! * `unfused` — `aggregate_feature_partitioned_into` (Alg. 6, 256 KiB
//!   fast memory) materialises `Â·H`, then the packed GEMM reads it back;
//! * `fused`   — the aggregation runs as the GEMM's A-panel producer and
//!   the aggregated matrix never leaves L2.
//!
//! A third contender, `fused_bf16`, is the same fused pipeline reading
//! bf16 storage (features quantised once up front, the way a bf16 shard
//! store or activation cache hands them over): the aggregation re-reads
//! each feature row `deg(u)` times at half the bytes, so on the
//! bandwidth-bound shapes it should clear ≥1.5× over f32 fused.
//!
//! Run with `GSGCN_BENCH_JSON=BENCH_fused_layer.json` to archive the
//! numbers (CI does); records are tagged with the dispatched GEMM
//! microkernel tier — the fused pipeline rides the same kernel dispatch
//! as the dense GEMMs — and with `precision=` for the storage type the
//! A-side rows are read in.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gsgcn_data::generators::{community_powerlaw, CommunityGraphSpec};
use gsgcn_prop::fused::{AggregatedRows, AggregatedRowsBf16};
use gsgcn_prop::kernels;
use gsgcn_prop::propagator::scale_rows_by_inv_degree;
use gsgcn_tensor::{bf16, gemm, Bf16MatRef, DMatrix};
use std::hint::black_box;

/// Per-core fast-memory size handed to Alg. 6 (the paper's 256 KiB L2).
const CACHE_BYTES: usize = 256 * 1024;

fn bench_aggregate_gemm(c: &mut Criterion) {
    gsgcn_bench::announce_kernel_tier();
    // Per-record precision tag: the f32 and bf16 contenders run in the
    // same process, so the storage type is a property of the record, not
    // of the session.
    let set_precision_tag = |p: &str| {
        let mut tags = gsgcn_bench::base_tags();
        tags.retain(|(k, _)| k != "precision");
        tags.push(("precision".to_string(), p.to_string()));
        criterion::set_json_tags(tags);
    };
    let mut group = c.benchmark_group("aggregate_gemm");
    group.sample_size(15);
    // (n, f, h): subgraph vertices × input width × neighbor-half width.
    // 8192×602·602×256 is the acceptance shape (PPI-scale forward).
    for &(n, f, h) in &[(8192usize, 602usize, 256usize), (2048, 602, 256)] {
        let cg = community_powerlaw(
            &CommunityGraphSpec {
                vertices: n,
                edges: n * 8,
                communities: 16,
                ..CommunityGraphSpec::default()
            },
            11,
        );
        let g = &cg.graph;
        let hm = DMatrix::from_fn(n, f, |i, j| ((i * 5 + j) % 11) as f32 * 0.1 - 0.5);
        let w = DMatrix::from_fn(f, h, |i, j| ((i * 3 + j) % 7) as f32 * 0.15 - 0.4);
        // Count the edge gathers plus the dense GEMM work.
        group.throughput(Throughput::Elements(
            (g.num_edges() * f + 2 * n * f * h) as u64,
        ));

        let mut c_out = DMatrix::zeros(n, h);
        set_precision_tag("f32");
        group.bench_with_input(
            BenchmarkId::new("fused", format!("{n}x{f}x{h}")),
            &n,
            |bch, _| {
                bch.iter(|| {
                    gemm::gemm_source_nn_v(
                        1.0,
                        &AggregatedRows::mean(g, hm.view()),
                        w.view(),
                        0.0,
                        c_out.view_mut(),
                    );
                    black_box(c_out.get(0, 0))
                });
            },
        );

        // bf16 storage: features quantised once (as a bf16 shard store or
        // activation cache would hand them over), aggregation widens rows
        // on load and accumulates in f32.
        let mut qbits = vec![0u16; n * f];
        bf16::quantize_slice(hm.data(), bf16::from_bits_slice_mut(&mut qbits));
        let qh = Bf16MatRef::new(bf16::from_bits_slice(&qbits), n, f);
        set_precision_tag("bf16");
        group.bench_with_input(
            BenchmarkId::new("fused_bf16", format!("{n}x{f}x{h}")),
            &n,
            |bch, _| {
                bch.iter(|| {
                    gemm::gemm_source_nn_bf16_v(
                        1.0,
                        &AggregatedRowsBf16::mean(g, qh),
                        w.view(),
                        0.0,
                        c_out.view_mut(),
                    );
                    black_box(c_out.get(0, 0))
                });
            },
        );

        set_precision_tag("f32");
        let mut agg = DMatrix::zeros(n, f);
        group.bench_with_input(
            BenchmarkId::new("unfused", format!("{n}x{f}x{h}")),
            &n,
            |bch, _| {
                bch.iter(|| {
                    agg.fill(0.0);
                    kernels::aggregate_feature_partitioned_into(g, &hm, CACHE_BYTES, &mut agg);
                    scale_rows_by_inv_degree(g, &mut agg);
                    gemm::gemm_nn_v(1.0, agg.view(), w.view(), 0.0, c_out.view_mut());
                    black_box(c_out.get(0, 0))
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_aggregate_gemm);
criterion_main!(benches);
