//! Serving-path benchmark (`BENCH_serving.json` in CI): batched L-hop
//! inference vs the full-graph forward, and the `BatchEngine`'s
//! sustained classification throughput, on a reddit-shaped graph.
//!
//! Numbers reported per batch size B ∈ {1, 16, 64, 256}:
//!
//! * `serving/batch_B` — per-request latency distribution (p50/p99) of a
//!   B-node query answered on its L-hop induced subgraph (extraction +
//!   feature gather + fused forward, warm per-thread workspace), plus
//!   classified-nodes/s at the median. Query batches are drawn as
//!   contiguous id windows — correlated queries hitting one or two of
//!   the generator's (block-contiguous) communities, the serving analogue
//!   of a community-local traffic burst. `serving/batch_64_scattered`
//!   repeats B=64 with maximally spread ids as the adversarial pattern.
//! * `serving/full_graph` — the pre-refactor alternative: one full-graph
//!   `infer_probs` answers any query.
//! * `serving/engine_sustained[_wW]` — nodes/s through the whole
//!   `BatchEngine` (queue → coalesce → worker) under back-to-back
//!   1024-node bulk requests, for W ∈ {1, 2, 4} workers (tag
//!   `workers=`; scaling is meaningful on multi-core CI runners only).
//! * `serving/cache_warm_{0,50,100}` — depth-2 batch-64 latency with an
//!   activation cache at 0/50/100% warm rotations (tag `cache=`); the
//!   uncached baseline is `serving/batch_64_depth2`.
//! * `serving/overload_2x_served` — served-request latency distribution
//!   (p99 bound) under 2× measured capacity with shed admission, plus
//!   the shed fraction (tags `admission=shed`, `load=2x`).
//! * `serving/frontend_{event_binary,threaded_line}` — socket-level
//!   nodes/s over 8 closed-loop connections through each front-end (tag
//!   `frontend=`).
//!
//! **Depth note, measured honestly:** at reddit density (avg degree
//! ≈ 100) the raw 2-hop ball of ≥ 64 roots is essentially the whole
//! graph; what keeps depth-2 batches viable is the classifier's cone
//! pruning (layer k only aggregates rows still feeding the roots), which
//! cut `serving/batch_64_depth2` ~3.3× vs the unpruned ball forward.
//! The headline sweep serves a depth-1 model — 1-hop query balls are the
//! regime where batching wins an order of magnitude — and deeper serving
//! at full throughput wants cached intermediate activations (ROADMAP
//! follow-on). Records are tagged `batch=`, `layers=`, the GEMM kernel
//! tier and the session storage precision (`precision=` — run under
//! `GSGCN_PRECISION=bf16` for half-width activation storage).

use criterion::{criterion_group, criterion_main, Criterion};
use gsgcn_data::presets;
use gsgcn_nn::model::{GcnConfig, GcnModel, LossKind};
use gsgcn_serve::{
    ActivationCache, AdmissionControl, BatchEngine, ClassifyWorkspace, EngineConfig,
    NodeClassifier, ServeError,
};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Reddit-shaped serving graph: big enough that a 1-hop batch ball is a
/// small fraction of it, small enough to generate in CI seconds.
const GRAPH_VERTICES: usize = 32_768;
const BATCH_SIZES: [usize; 4] = [1, 16, 64, 256];
/// Per-request latency samples per batch size.
const SAMPLES: usize = 40;

/// Replace the record tags with the shared base (kernel tier +
/// precision) plus bench-specific extras — the shim's `set_json_tags`
/// replaces wholesale, so every site routes through here.
fn set_tags(extra: &[(&str, String)]) {
    let mut tags = gsgcn_bench::base_tags();
    tags.extend(extra.iter().map(|(k, v)| (k.to_string(), v.clone())));
    criterion::set_json_tags(tags);
}

fn serving_classifier(depth: usize) -> Arc<NodeClassifier> {
    let d = presets::scale_spec(&presets::reddit_spec(), GRAPH_VERTICES).generate(3);
    let model = GcnModel::new(
        GcnConfig {
            in_dim: d.feature_dim(),
            hidden_dims: vec![128; depth],
            num_classes: d.num_classes(),
            loss: LossKind::SoftmaxCe,
            ..GcnConfig::default()
        },
        5,
    );
    Arc::new(
        NodeClassifier::new(
            Arc::new(model),
            Arc::new(d.graph.clone()),
            Arc::new(d.features.clone()),
        )
        .expect("classifier")
        // Pin: benches control the cache explicitly, regardless of the
        // GSGCN_ACTIVATION_CACHE default the CI matrix sets.
        .with_cache(None),
    )
}

/// Correlated query batch: a contiguous id window (communities are
/// contiguous id blocks in the generator).
fn window_roots(iter: usize, batch: usize, n: usize) -> Vec<u32> {
    let start = (iter * 9973) % (n - batch);
    (start as u32..(start + batch) as u32).collect()
}

/// Adversarial query batch: ids spread evenly across the whole graph
/// (touches every community).
fn scattered_roots(iter: usize, batch: usize, n: usize) -> Vec<u32> {
    let stride = n / batch;
    (0..batch)
        .map(|k| ((k * stride + iter * 131) % n) as u32)
        .collect()
}

fn measure_batches(
    c: &NodeClassifier,
    batch: usize,
    roots: impl Fn(usize) -> Vec<u32>,
) -> Vec<f64> {
    let mut ws = ClassifyWorkspace::new();
    let mut out = Vec::new();
    // Warm-up over the *whole* measured rotation: ball sizes vary per
    // window, and with nearest-rank p99 over `SAMPLES` samples a single
    // cold workspace-growth hit would directly become the published
    // tail latency.
    for i in 0..SAMPLES {
        out.clear();
        c.classify_into(&roots(i), &mut ws, &mut out)
            .expect("classify");
    }
    (0..SAMPLES)
        .map(|i| {
            let nodes = roots(i);
            out.clear();
            let t0 = Instant::now();
            c.classify_into(&nodes, &mut ws, &mut out)
                .expect("classify");
            let dt = t0.elapsed().as_secs_f64();
            assert_eq!(out.len(), batch);
            dt
        })
        .collect()
}

fn bench_batched_vs_full(c: &mut Criterion) {
    gsgcn_bench::announce_kernel_tier();
    let classifier = serving_classifier(1);
    let n = classifier.num_nodes();

    let mut group = c.benchmark_group("serving");
    group.sample_size(10);

    // Baseline: the full-graph forward that used to answer every query.
    set_tags(&[("layers", "1".to_string()), ("batch", "full".to_string())]);
    let mut full_ws = ClassifyWorkspace::new();
    classifier.full_graph_probs_into(&mut full_ws); // warm-up
    let full_lat: Vec<f64> = (0..3)
        .map(|_| {
            let t0 = Instant::now();
            classifier.full_graph_probs_into(&mut full_ws);
            t0.elapsed().as_secs_f64()
        })
        .collect();
    let full_median = {
        let mut s = full_lat;
        s.sort_by(f64::total_cmp);
        s[s.len() / 2]
    };
    group.bench_function("full_graph", |b| {
        b.iter(|| classifier.full_graph_probs_into(&mut full_ws));
    });

    // Batch-size sweep on the L-hop (here 1-hop) subgraph path.
    let mut batch64_median = f64::NAN;
    for batch in BATCH_SIZES {
        set_tags(&[("layers", "1".to_string()), ("batch", batch.to_string())]);
        let lat = measure_batches(&classifier, batch, |i| window_roots(i, batch, n));
        let mut sorted = lat.clone();
        sorted.sort_by(f64::total_cmp);
        let median = sorted[sorted.len() / 2];
        if batch == 64 {
            batch64_median = median;
        }
        criterion::record_latency_distribution(
            &format!("serving/batch_{batch}"),
            &lat,
            Some(batch as f64 / median),
        );
    }

    // Adversarial spread for B = 64.
    set_tags(&[
        ("layers", "1".to_string()),
        ("batch", "64_scattered".to_string()),
    ]);
    let lat = measure_batches(&classifier, 64, |i| scattered_roots(i, 64, n));
    let mut sorted = lat.clone();
    sorted.sort_by(f64::total_cmp);
    criterion::record_latency_distribution(
        "serving/batch_64_scattered",
        &lat,
        Some(64.0 / sorted[sorted.len() / 2]),
    );

    println!(
        "  batch-64 vs full-graph per 64-node query: {:.2}× \
         (batched {:.3} ms, full {:.3} ms)",
        full_median / batch64_median,
        1e3 * batch64_median,
        1e3 * full_median,
    );

    // Depth-2 record: the raw 2-hop ball of 64 reddit-density roots
    // covers ~the whole graph; cone pruning keeps the sparse work on
    // the inner cone (see the module docs).
    let deep = serving_classifier(2);
    set_tags(&[("layers", "2".to_string()), ("batch", "64".to_string())]);
    let lat = measure_batches(&deep, 64, |i| window_roots(i, 64, n));
    let mut sorted = lat.clone();
    sorted.sort_by(f64::total_cmp);
    criterion::record_latency_distribution(
        "serving/batch_64_depth2",
        &lat,
        Some(64.0 / sorted[sorted.len() / 2]),
    );

    set_tags(&[]);
    group.finish();
}

/// Bulk-request size for the sustained-throughput runs.
const SUSTAINED_BATCH: usize = 1024;

/// Closed-loop sustained run: `clients` threads keep bulk requests in
/// flight for `dur`. Returns (nodes/s, per-request latencies).
fn sustained_run(
    engine: &Arc<BatchEngine<NodeClassifier>>,
    n: usize,
    clients: usize,
    dur: Duration,
) -> (f64, Vec<f64>) {
    let start_nodes = engine.nodes_classified();
    let t_start = Instant::now();
    let deadline = t_start + dur;
    let latencies: Vec<Vec<f64>> = std::thread::scope(|s| {
        (0..clients)
            .map(|t| {
                let engine = Arc::clone(engine);
                s.spawn(move || {
                    let mut lat = Vec::new();
                    let mut i = t * 1000;
                    while Instant::now() < deadline {
                        let nodes = window_roots(i, SUSTAINED_BATCH, n);
                        i += 1;
                        let t0 = Instant::now();
                        engine.classify(nodes).expect("classify");
                        lat.push(t0.elapsed().as_secs_f64());
                    }
                    lat
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().expect("client"))
            .collect()
    });
    let wall = t_start.elapsed().as_secs_f64().max(1e-9);
    let nodes_done = (engine.nodes_classified() - start_nodes) as f64;
    (nodes_done / wall, latencies.into_iter().flatten().collect())
}

/// Sustained engine throughput across worker counts {1, 2, 4}: client
/// threads keep `SUSTAINED_BATCH`-node windows in flight. Larger
/// requests amortise ball overlap (rows-per-root falls with batch size,
/// see the sweep), so the sustained load uses the largest
/// production-plausible request. The single-worker record keeps its
/// historical name; multi-worker records are tagged `workers=` (scaling
/// is only meaningful on the multi-core CI runners).
fn bench_engine_sustained(c: &mut Criterion) {
    let _ = c;
    let classifier = serving_classifier(1);
    let n = classifier.num_nodes();

    for workers in [1usize, 2, 4] {
        let engine = Arc::new(
            BatchEngine::spawn(
                Arc::clone(&classifier),
                EngineConfig {
                    workers,
                    max_batch: SUSTAINED_BATCH,
                    max_wait: Duration::from_micros(100),
                    queue_capacity: 64,
                    admission: AdmissionControl::Block,
                },
            )
            .expect("engine"),
        );
        set_tags(&[
            ("layers", "1".to_string()),
            ("batch", SUSTAINED_BATCH.to_string()),
            ("workers", workers.to_string()),
        ]);
        // 2 clients per worker keeps every worker saturated without
        // queue-wait dominating the latency samples.
        let (rate, all) = sustained_run(&engine, n, 2 * workers, Duration::from_millis(2000));
        let name = if workers == 1 {
            "serving/engine_sustained".to_string()
        } else {
            format!("serving/engine_sustained_w{workers}")
        };
        criterion::record_latency_distribution(&name, &all, Some(rate));
        println!(
            "  engine sustained {:.0} node-classifications/s over {} requests \
             ({} coalesced batches, {} worker{})",
            rate,
            engine.requests(),
            engine.batches(),
            workers,
            if workers == 1 { "" } else { "s" },
        );
    }
    set_tags(&[]);
}

/// Activation-cache hit-rate sweep at depth 2, batch 64: the same query
/// rotation measured at 0% warm (version-bumped before every sample),
/// ~50% warm (alternate windows re-warmed after an invalidation) and
/// 100% warm (rotation fully resident). Tagged `cache=`; the no-cache
/// baseline is `serving/batch_64_depth2`.
fn bench_cache_hit_sweep(c: &mut Criterion) {
    let _ = c;
    let classifier = serving_classifier(2);
    let n = classifier.num_nodes();
    // The cache stores rows at the session precision, so a bf16 run
    // measures the half-width-row hit path end to end.
    let cache = Arc::new(ActivationCache::with_precision(
        512 << 20,
        gsgcn_tensor::precision::current(),
    ));
    let classifier = Arc::new(
        Arc::try_unwrap(classifier)
            .ok()
            .expect("sole owner")
            .with_cache(Some(Arc::clone(&cache))),
    );
    let mut ws = ClassifyWorkspace::new();
    let mut out = Vec::new();
    let classify = |ws: &mut ClassifyWorkspace, out: &mut Vec<_>, i: usize| {
        out.clear();
        let nodes = window_roots(i, 64, n);
        let t0 = Instant::now();
        classifier.classify_into(&nodes, ws, out).expect("classify");
        t0.elapsed().as_secs_f64()
    };

    // Warm the workspace and fill the cache over the whole rotation.
    for i in 0..SAMPLES {
        classify(&mut ws, &mut out, i);
    }

    let mut medians = [f64::NAN; 3];
    for (slot, warm_pct) in [(0usize, 0u32), (1, 50), (2, 100)] {
        set_tags(&[
            ("layers", "2".to_string()),
            ("batch", "64".to_string()),
            ("cache", warm_pct.to_string()),
        ]);
        match warm_pct {
            0 => {} // bumped before every sample below
            50 => {
                cache.bump_version();
                // Re-warm alternate windows only (unmeasured).
                for i in (0..SAMPLES).filter(|i| i % 2 == 1) {
                    classify(&mut ws, &mut out, i);
                }
            }
            _ => {
                cache.bump_version();
                for i in 0..SAMPLES {
                    classify(&mut ws, &mut out, i);
                }
            }
        }
        let pre = cache.stats();
        let lat: Vec<f64> = (0..SAMPLES)
            .map(|i| {
                if warm_pct == 0 {
                    cache.bump_version();
                }
                classify(&mut ws, &mut out, i)
            })
            .collect();
        let post = cache.stats();
        let hit_rate = {
            let probes = (post.hits - pre.hits) + (post.misses - pre.misses);
            if probes == 0 {
                0.0
            } else {
                (post.hits - pre.hits) as f64 / probes as f64
            }
        };
        let mut sorted = lat.clone();
        sorted.sort_by(f64::total_cmp);
        let median = sorted[sorted.len() / 2];
        medians[slot] = median;
        criterion::record_latency_distribution(
            &format!("serving/cache_warm_{warm_pct}"),
            &lat,
            Some(64.0 / median),
        );
        println!(
            "  depth-2 batch-64, {warm_pct}% warm target: median {:.3} ms \
             ({:.0} nodes/s, measured row hit rate {:.2})",
            1e3 * median,
            64.0 / median,
            hit_rate,
        );
    }
    println!(
        "  warm-cache speedup (0% → 100% warm): {:.2}×",
        medians[0] / medians[2],
    );
    set_tags(&[]);
}

/// Overload behavior under shed admission: measure closed-loop capacity,
/// then offer 2× that in an open loop and report the served-request
/// latency distribution (the p99 bound claim) plus the shed fraction.
fn bench_overload_shed(c: &mut Criterion) {
    let _ = c;
    let classifier = serving_classifier(1);
    let n = classifier.num_nodes();
    let batch = 64usize;
    let engine = Arc::new(
        BatchEngine::spawn(
            Arc::clone(&classifier),
            EngineConfig {
                workers: 1,
                max_batch: batch,
                max_wait: Duration::from_micros(100),
                queue_capacity: 16,
                admission: AdmissionControl::Shed,
            },
        )
        .expect("engine"),
    );

    // Capacity probe: closed-loop single client for half a second.
    let t0 = Instant::now();
    let mut reqs = 0u64;
    while t0.elapsed() < Duration::from_millis(500) {
        engine
            .classify(window_roots(reqs as usize, batch, n))
            .expect("probe");
        reqs += 1;
    }
    let capacity_rps = reqs as f64 / t0.elapsed().as_secs_f64();

    // Open loop at 2× capacity for 2 s: a load thread fires on a fixed
    // cadence; a waiter thread harvests completions off a channel so
    // waiting never throttles the offered load.
    let interval = Duration::from_secs_f64(1.0 / (2.0 * capacity_rps));
    let (tx, rx) = std::sync::mpsc::channel::<(Instant, gsgcn_serve::ResponseHandle)>();
    let waiter = std::thread::spawn(move || {
        let mut served = Vec::new();
        let mut shed = 0u64;
        for (t0, h) in rx {
            match h.wait() {
                Ok(_) => served.push(t0.elapsed().as_secs_f64()),
                Err(ServeError::Overloaded) => shed += 1,
                Err(e) => panic!("overload run failed: {e}"),
            }
        }
        (served, shed)
    });
    let mut shed_sync = 0u64;
    let mut offered = 0u64;
    let t_load = Instant::now();
    let mut next = t_load;
    while t_load.elapsed() < Duration::from_millis(2000) {
        let now = Instant::now();
        if now < next {
            std::thread::sleep(next - now);
        }
        next += interval;
        offered += 1;
        match engine.submit(window_roots(offered as usize + 7, batch, n)) {
            Ok(h) => tx.send((Instant::now(), h)).expect("waiter alive"),
            Err(ServeError::Overloaded) => shed_sync += 1,
            Err(e) => panic!("overload submit failed: {e}"),
        }
    }
    drop(tx);
    let (served, shed_async) = waiter.join().expect("waiter");
    let shed_total = shed_sync + shed_async;

    set_tags(&[
        ("layers", "1".to_string()),
        ("batch", batch.to_string()),
        ("admission", "shed".to_string()),
        ("load", "2x".to_string()),
    ]);
    criterion::record_latency_distribution(
        "serving/overload_2x_served",
        &served,
        Some(served.len() as f64 * batch as f64 / t_load.elapsed().as_secs_f64()),
    );
    let mut sorted = served.clone();
    sorted.sort_by(f64::total_cmp);
    let p99 = sorted[(sorted.len() * 99 / 100).min(sorted.len() - 1)];
    println!(
        "  overload 2× ({capacity_rps:.0} rps capacity): {} offered, {} served \
         (p99 {:.1} ms), {} shed ({:.0}% — engine counted {})",
        offered,
        served.len(),
        1e3 * p99,
        shed_total,
        100.0 * shed_total as f64 / offered as f64,
        engine.shed(),
    );
    set_tags(&[]);
}

/// Front-end comparison over real sockets: 8 closed-loop connections,
/// batch-64 requests, event front-end (binary protocol) vs the original
/// thread-per-connection front-end (line protocol). Tagged `frontend=`.
fn bench_frontends(c: &mut Criterion) {
    use gsgcn_serve::poll::{wire, EventFrontend, FrontendConfig, Protocol};
    use gsgcn_serve::tcp::{TcpConfig, TcpFrontend};
    use std::io::{BufRead, BufReader, Read, Write};

    let _ = c;
    let classifier = serving_classifier(1);
    let n = classifier.num_nodes();
    let batch = 64usize;
    let conns = 8usize;
    let dur = Duration::from_millis(1500);
    let engine_cfg = EngineConfig {
        workers: 1,
        max_batch: 1024,
        max_wait: Duration::from_micros(100),
        queue_capacity: 64,
        admission: AdmissionControl::Block,
    };

    let run_clients = |addr: std::net::SocketAddr, binary: bool| -> Vec<f64> {
        let deadline = Instant::now() + dur;
        std::thread::scope(|s| {
            (0..conns)
                .map(|t| {
                    s.spawn(move || {
                        let mut stream = std::net::TcpStream::connect(addr).expect("connect");
                        stream.set_nodelay(true).ok();
                        let mut lat = Vec::new();
                        let mut i = t * 1000;
                        if binary {
                            let mut buf = Vec::new();
                            let mut chunk = [0u8; 16384];
                            while Instant::now() < deadline {
                                let nodes = window_roots(i, batch, n);
                                i += 1;
                                let mut req = Vec::new();
                                wire::encode_request(i as u64, &nodes, &mut req);
                                let t0 = Instant::now();
                                stream.write_all(&req).expect("write");
                                loop {
                                    if let Some((used, _, resp)) =
                                        wire::try_decode_response(&buf).expect("frame")
                                    {
                                        buf.drain(..used);
                                        assert!(matches!(resp, wire::WireResponse::Ok(_)));
                                        break;
                                    }
                                    let got = stream.read(&mut chunk).expect("read");
                                    assert!(got > 0, "server closed");
                                    buf.extend_from_slice(&chunk[..got]);
                                }
                                lat.push(t0.elapsed().as_secs_f64());
                            }
                        } else {
                            let mut writer = stream.try_clone().expect("clone");
                            let mut reader = BufReader::new(stream);
                            let mut line = String::new();
                            while Instant::now() < deadline {
                                let nodes = window_roots(i, batch, n);
                                i += 1;
                                let req = nodes
                                    .iter()
                                    .map(u32::to_string)
                                    .collect::<Vec<_>>()
                                    .join(" ");
                                let t0 = Instant::now();
                                writer.write_all(req.as_bytes()).expect("write");
                                writer.write_all(b"\n").expect("write");
                                line.clear();
                                reader.read_line(&mut line).expect("read");
                                assert!(line.starts_with("ok "), "{line}");
                                lat.push(t0.elapsed().as_secs_f64());
                            }
                        }
                        lat
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .flat_map(|h| h.join().expect("client"))
                .collect()
        })
    };

    // Event front-end, binary protocol.
    {
        let engine =
            Arc::new(BatchEngine::spawn(Arc::clone(&classifier), engine_cfg).expect("engine"));
        let fe = EventFrontend::spawn(
            engine,
            "127.0.0.1:0",
            FrontendConfig {
                protocol: Protocol::Binary,
                ..FrontendConfig::default()
            },
        )
        .expect("frontend");
        set_tags(&[
            ("layers", "1".to_string()),
            ("batch", batch.to_string()),
            ("frontend", "event-binary".to_string()),
        ]);
        let lat = run_clients(fe.local_addr(), true);
        let rate = lat.len() as f64 * batch as f64 / dur.as_secs_f64();
        criterion::record_latency_distribution("serving/frontend_event_binary", &lat, Some(rate));
        println!("  event/binary front-end: {rate:.0} nodes/s over {conns} connections");
        fe.shutdown();
    }

    // Thread-per-connection front-end, line protocol.
    {
        let engine =
            Arc::new(BatchEngine::spawn(Arc::clone(&classifier), engine_cfg).expect("engine"));
        let fe = TcpFrontend::spawn(engine, "127.0.0.1:0", TcpConfig::default()).expect("frontend");
        set_tags(&[
            ("layers", "1".to_string()),
            ("batch", batch.to_string()),
            ("frontend", "threaded-line".to_string()),
        ]);
        let lat = run_clients(fe.local_addr(), false);
        let rate = lat.len() as f64 * batch as f64 / dur.as_secs_f64();
        criterion::record_latency_distribution("serving/frontend_threaded_line", &lat, Some(rate));
        println!("  threaded/line front-end: {rate:.0} nodes/s over {conns} connections");
        fe.shutdown();
    }
    set_tags(&[]);
}

criterion_group!(
    benches,
    bench_batched_vs_full,
    bench_engine_sustained,
    bench_cache_hit_sweep,
    bench_overload_shed,
    bench_frontends
);
criterion_main!(benches);
