//! Serving-path benchmark (`BENCH_serving.json` in CI): batched L-hop
//! inference vs the full-graph forward, and the `BatchEngine`'s
//! sustained classification throughput, on a reddit-shaped graph.
//!
//! Numbers reported per batch size B ∈ {1, 16, 64, 256}:
//!
//! * `serving/batch_B` — per-request latency distribution (p50/p99) of a
//!   B-node query answered on its L-hop induced subgraph (extraction +
//!   feature gather + fused forward, warm per-thread workspace), plus
//!   classified-nodes/s at the median. Query batches are drawn as
//!   contiguous id windows — correlated queries hitting one or two of
//!   the generator's (block-contiguous) communities, the serving analogue
//!   of a community-local traffic burst. `serving/batch_64_scattered`
//!   repeats B=64 with maximally spread ids as the adversarial pattern.
//! * `serving/full_graph` — the pre-refactor alternative: one full-graph
//!   `infer_probs` answers any query.
//! * `serving/engine_sustained` — nodes/s through the whole
//!   `BatchEngine` (queue → coalesce → worker) under back-to-back
//!   1024-node bulk requests from 2 clients, single worker.
//!
//! **Depth note, measured honestly:** at reddit density (avg degree
//! ≈ 100) the raw 2-hop ball of ≥ 64 roots is essentially the whole
//! graph; what keeps depth-2 batches viable is the classifier's cone
//! pruning (layer k only aggregates rows still feeding the roots), which
//! cut `serving/batch_64_depth2` ~3.3× vs the unpruned ball forward.
//! The headline sweep serves a depth-1 model — 1-hop query balls are the
//! regime where batching wins an order of magnitude — and deeper serving
//! at full throughput wants cached intermediate activations (ROADMAP
//! follow-on). Records are tagged `batch=`, `layers=` and the GEMM
//! kernel tier.

use criterion::{criterion_group, criterion_main, Criterion};
use gsgcn_data::presets;
use gsgcn_nn::model::{GcnConfig, GcnModel, LossKind};
use gsgcn_serve::{BatchEngine, ClassifyWorkspace, EngineConfig, NodeClassifier};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Reddit-shaped serving graph: big enough that a 1-hop batch ball is a
/// small fraction of it, small enough to generate in CI seconds.
const GRAPH_VERTICES: usize = 32_768;
const BATCH_SIZES: [usize; 4] = [1, 16, 64, 256];
/// Per-request latency samples per batch size.
const SAMPLES: usize = 40;

fn serving_classifier(depth: usize) -> Arc<NodeClassifier> {
    let d = presets::scale_spec(&presets::reddit_spec(), GRAPH_VERTICES).generate(3);
    let model = GcnModel::new(
        GcnConfig {
            in_dim: d.feature_dim(),
            hidden_dims: vec![128; depth],
            num_classes: d.num_classes(),
            loss: LossKind::SoftmaxCe,
            ..GcnConfig::default()
        },
        5,
    );
    Arc::new(
        NodeClassifier::new(
            Arc::new(model),
            Arc::new(d.graph.clone()),
            Arc::new(d.features.clone()),
        )
        .expect("classifier"),
    )
}

/// Correlated query batch: a contiguous id window (communities are
/// contiguous id blocks in the generator).
fn window_roots(iter: usize, batch: usize, n: usize) -> Vec<u32> {
    let start = (iter * 9973) % (n - batch);
    (start as u32..(start + batch) as u32).collect()
}

/// Adversarial query batch: ids spread evenly across the whole graph
/// (touches every community).
fn scattered_roots(iter: usize, batch: usize, n: usize) -> Vec<u32> {
    let stride = n / batch;
    (0..batch)
        .map(|k| ((k * stride + iter * 131) % n) as u32)
        .collect()
}

fn measure_batches(
    c: &NodeClassifier,
    batch: usize,
    roots: impl Fn(usize) -> Vec<u32>,
) -> Vec<f64> {
    let mut ws = ClassifyWorkspace::new();
    let mut out = Vec::new();
    // Warm-up over the *whole* measured rotation: ball sizes vary per
    // window, and with nearest-rank p99 over `SAMPLES` samples a single
    // cold workspace-growth hit would directly become the published
    // tail latency.
    for i in 0..SAMPLES {
        out.clear();
        c.classify_into(&roots(i), &mut ws, &mut out)
            .expect("classify");
    }
    (0..SAMPLES)
        .map(|i| {
            let nodes = roots(i);
            out.clear();
            let t0 = Instant::now();
            c.classify_into(&nodes, &mut ws, &mut out)
                .expect("classify");
            let dt = t0.elapsed().as_secs_f64();
            assert_eq!(out.len(), batch);
            dt
        })
        .collect()
}

fn bench_batched_vs_full(c: &mut Criterion) {
    gsgcn_bench::announce_kernel_tier();
    let kernel = gsgcn_tensor::gemm::selected_tier().name();
    let classifier = serving_classifier(1);
    let n = classifier.num_nodes();

    let mut group = c.benchmark_group("serving");
    group.sample_size(10);

    // Baseline: the full-graph forward that used to answer every query.
    criterion::set_json_tags([
        ("kernel", kernel.to_string()),
        ("layers", "1".to_string()),
        ("batch", "full".to_string()),
    ]);
    let mut full_ws = ClassifyWorkspace::new();
    classifier.full_graph_probs_into(&mut full_ws); // warm-up
    let full_lat: Vec<f64> = (0..3)
        .map(|_| {
            let t0 = Instant::now();
            classifier.full_graph_probs_into(&mut full_ws);
            t0.elapsed().as_secs_f64()
        })
        .collect();
    let full_median = {
        let mut s = full_lat;
        s.sort_by(f64::total_cmp);
        s[s.len() / 2]
    };
    group.bench_function("full_graph", |b| {
        b.iter(|| classifier.full_graph_probs_into(&mut full_ws));
    });

    // Batch-size sweep on the L-hop (here 1-hop) subgraph path.
    let mut batch64_median = f64::NAN;
    for batch in BATCH_SIZES {
        criterion::set_json_tags([
            ("kernel", kernel.to_string()),
            ("layers", "1".to_string()),
            ("batch", batch.to_string()),
        ]);
        let lat = measure_batches(&classifier, batch, |i| window_roots(i, batch, n));
        let mut sorted = lat.clone();
        sorted.sort_by(f64::total_cmp);
        let median = sorted[sorted.len() / 2];
        if batch == 64 {
            batch64_median = median;
        }
        criterion::record_latency_distribution(
            &format!("serving/batch_{batch}"),
            &lat,
            Some(batch as f64 / median),
        );
    }

    // Adversarial spread for B = 64.
    criterion::set_json_tags([
        ("kernel", kernel.to_string()),
        ("layers", "1".to_string()),
        ("batch", "64_scattered".to_string()),
    ]);
    let lat = measure_batches(&classifier, 64, |i| scattered_roots(i, 64, n));
    let mut sorted = lat.clone();
    sorted.sort_by(f64::total_cmp);
    criterion::record_latency_distribution(
        "serving/batch_64_scattered",
        &lat,
        Some(64.0 / sorted[sorted.len() / 2]),
    );

    println!(
        "  batch-64 vs full-graph per 64-node query: {:.2}× \
         (batched {:.3} ms, full {:.3} ms)",
        full_median / batch64_median,
        1e3 * batch64_median,
        1e3 * full_median,
    );

    // Depth-2 record: the raw 2-hop ball of 64 reddit-density roots
    // covers ~the whole graph; cone pruning keeps the sparse work on
    // the inner cone (see the module docs).
    let deep = serving_classifier(2);
    criterion::set_json_tags([
        ("kernel", kernel.to_string()),
        ("layers", "2".to_string()),
        ("batch", "64".to_string()),
    ]);
    let lat = measure_batches(&deep, 64, |i| window_roots(i, 64, n));
    let mut sorted = lat.clone();
    sorted.sort_by(f64::total_cmp);
    criterion::record_latency_distribution(
        "serving/batch_64_depth2",
        &lat,
        Some(64.0 / sorted[sorted.len() / 2]),
    );

    criterion::set_json_tags([("kernel", kernel.to_string())]);
    group.finish();
}

/// Sustained engine throughput: 2 client threads keep `SUSTAINED_BATCH`-
/// node windows in flight against a single worker for ~1.5 s. Larger
/// requests amortise ball overlap (rows-per-root falls with batch size,
/// see the sweep), so the sustained load uses the largest
/// production-plausible request.
const SUSTAINED_BATCH: usize = 1024;

fn bench_engine_sustained(c: &mut Criterion) {
    let _ = c;
    let kernel = gsgcn_tensor::gemm::selected_tier().name();
    let classifier = serving_classifier(1);
    let n = classifier.num_nodes();
    let engine = Arc::new(
        BatchEngine::spawn(
            Arc::clone(&classifier),
            EngineConfig {
                workers: 1,
                max_batch: SUSTAINED_BATCH,
                max_wait: Duration::from_micros(100),
                queue_capacity: 64,
            },
        )
        .expect("engine"),
    );

    criterion::set_json_tags([
        ("kernel", kernel.to_string()),
        ("layers", "1".to_string()),
        ("batch", SUSTAINED_BATCH.to_string()),
    ]);
    let deadline = Instant::now() + Duration::from_millis(2000);
    let latencies: Vec<Vec<f64>> = std::thread::scope(|s| {
        (0..2usize)
            .map(|t| {
                let engine = Arc::clone(&engine);
                s.spawn(move || {
                    let mut lat = Vec::new();
                    let mut i = t * 1000;
                    while Instant::now() < deadline {
                        let nodes = window_roots(i, SUSTAINED_BATCH, n);
                        i += 1;
                        let t0 = Instant::now();
                        engine.classify(nodes).expect("classify");
                        lat.push(t0.elapsed().as_secs_f64());
                    }
                    lat
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().expect("client"))
            .collect()
    });
    let wall = latencies
        .iter()
        .flat_map(|l| l.iter())
        .sum::<f64>()
        .max(1e-9)
        / 2.0; // 2 clients ran concurrently
    let nodes_done = engine.nodes_classified() as f64;
    let all: Vec<f64> = latencies.into_iter().flatten().collect();
    criterion::record_latency_distribution(
        "serving/engine_sustained",
        &all,
        Some(nodes_done / wall),
    );
    println!(
        "  engine sustained {:.0} node-classifications/s over {} requests \
         ({} coalesced batches, 1 worker)",
        nodes_done / wall,
        engine.requests(),
        engine.batches(),
    );
    criterion::set_json_tags([("kernel", kernel.to_string())]);
}

criterion_group!(benches, bench_batched_vs_full, bench_engine_sustained);
criterion_main!(benches);
