//! Criterion microbenchmarks of the frontier samplers (Sec. IV):
//! Dashboard (scalar and lane-batched probing) vs the naive O(m)-per-pop
//! implementation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gsgcn_data::generators::{community_powerlaw, CommunityGraphSpec};
use gsgcn_sampler::dashboard::{DashboardSampler, FrontierConfig, ProbeMode};
use gsgcn_sampler::naive::NaiveFrontierSampler;
use gsgcn_sampler::GraphSampler;
use std::hint::black_box;

fn bench_samplers(c: &mut Criterion) {
    let cg = community_powerlaw(
        &CommunityGraphSpec {
            vertices: 4000,
            edges: 30_000,
            communities: 16,
            ..CommunityGraphSpec::default()
        },
        7,
    );
    let g = &cg.graph;

    let mut group = c.benchmark_group("frontier_sampling");
    group.sample_size(20);
    for &m in &[100usize, 500] {
        let budget = (m * 4).min(g.num_vertices());
        group.bench_with_input(BenchmarkId::new("naive", m), &m, |b, _| {
            let s = NaiveFrontierSampler::new(m, budget);
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                black_box(s.sample_vertices(g, seed))
            });
        });
        group.bench_with_input(BenchmarkId::new("dashboard_scalar", m), &m, |b, _| {
            let s = DashboardSampler::new(FrontierConfig {
                frontier_size: m,
                budget,
                probe_mode: ProbeMode::Scalar,
                ..FrontierConfig::default()
            });
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                black_box(s.sample_vertices(g, seed))
            });
        });
        group.bench_with_input(BenchmarkId::new("dashboard_lanes", m), &m, |b, _| {
            let s = DashboardSampler::new(FrontierConfig {
                frontier_size: m,
                budget,
                probe_mode: ProbeMode::Lanes,
                ..FrontierConfig::default()
            });
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                black_box(s.sample_vertices(g, seed))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_samplers);
criterion_main!(benches);
