//! Criterion end-to-end benchmark of one training iteration (sample →
//! gather → forward → backward → Adam) — the unit whose scaling Fig. 3
//! reports — plus the subgraph-extraction step alone.

use criterion::{criterion_group, criterion_main, Criterion};
use gsgcn_data::presets;
use gsgcn_nn::model::{GcnConfig, GcnModel, LossKind};
use gsgcn_sampler::dashboard::{DashboardSampler, FrontierConfig};
use gsgcn_sampler::GraphSampler;
use std::hint::black_box;

fn bench_training_iteration(c: &mut Criterion) {
    gsgcn_bench::announce_kernel_tier();
    let d = presets::ppi_scaled(3);
    let tv = d.train_view();
    let sampler = DashboardSampler::new(FrontierConfig {
        frontier_size: 100,
        budget: 800,
        ..FrontierConfig::default()
    });

    let mut group = c.benchmark_group("training");
    group.sample_size(10);

    group.bench_function("sample_subgraph", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            black_box(sampler.sample_subgraph(&tv.graph, seed))
        });
    });

    group.bench_function("train_iteration_2layer_h128", |b| {
        let cfg = GcnConfig {
            in_dim: d.feature_dim(),
            hidden_dims: vec![128, 128],
            num_classes: d.num_classes(),
            loss: LossKind::SigmoidBce,
            ..GcnConfig::default()
        };
        let mut model = GcnModel::new(cfg, 5);
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let sub = sampler.sample_subgraph(&tv.graph, seed);
            let x = tv.features.gather_rows(&sub.origin);
            let y = tv.labels.gather_rows(&sub.origin);
            black_box(model.train_step(&sub.graph, &x, &y))
        });
    });

    group.finish();
}

criterion_group!(benches, bench_training_iteration);
criterion_main!(benches);
