//! Criterion end-to-end benchmark of one training iteration (sample →
//! gather → forward → backward → Adam) — the unit whose scaling Fig. 3
//! reports — plus the subgraph-extraction step alone and whole-epoch
//! variants comparing the synchronous sampler path against the pipelined
//! producer–consumer path (`BENCH_training.json` in CI).

use criterion::{criterion_group, criterion_main, Criterion};
use gsgcn_core::{GsGcnTrainer, TrainerConfig};
use gsgcn_data::presets;
use gsgcn_nn::model::{GcnConfig, GcnModel, LossKind};
use gsgcn_sampler::dashboard::{DashboardSampler, FrontierConfig};
use gsgcn_sampler::GraphSampler;
use std::hint::black_box;

fn bench_training_iteration(c: &mut Criterion) {
    gsgcn_bench::announce_kernel_tier();
    let d = presets::ppi_scaled(3);
    let tv = d.train_view();
    let sampler = DashboardSampler::new(FrontierConfig {
        frontier_size: 100,
        budget: 800,
        ..FrontierConfig::default()
    });

    let mut group = c.benchmark_group("training");
    group.sample_size(10);

    group.bench_function("sample_subgraph", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            black_box(sampler.sample_subgraph(&*tv.graph, seed))
        });
    });

    group.bench_function("train_iteration_2layer_h128", |b| {
        let cfg = GcnConfig {
            in_dim: d.feature_dim(),
            hidden_dims: vec![128, 128],
            num_classes: d.num_classes(),
            loss: LossKind::SigmoidBce,
            ..GcnConfig::default()
        };
        let mut model = GcnModel::new(cfg, 5);
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let sub = sampler.sample_subgraph(&*tv.graph, seed);
            let x = tv.features.gather_rows(&sub.origin);
            let y = tv.labels.gather_rows(&sub.origin);
            black_box(model.train_step(&sub.graph, &x, &y))
        });
    });

    group.finish();
}

/// Whole-epoch wall-clock: synchronous in-loop sampling vs the pipelined
/// sampler with dedicated worker threads, on a sampling-heavy
/// configuration (dense reddit-shaped graph, frontier sampler, modest
/// hidden dims so sampling is a large fraction of the iteration).
///
/// The two paths consume the identical subgraph stream, so any epoch-time
/// difference is pure overlap (or, on a single core, pipeline overhead).
/// Each JSON record is tagged `sampler=synchronous|pipelined_<N>w`.
fn bench_epoch_sync_vs_pipelined(c: &mut Criterion) {
    gsgcn_bench::announce_kernel_tier();
    let kernel = gsgcn_tensor::gemm::selected_tier().name();
    let d = presets::reddit_scaled(3);

    let cfg_for = |sampler_threads: usize| {
        let mut cfg = TrainerConfig::default();
        cfg.sampler.frontier_size = 256;
        cfg.sampler.budget = 512;
        cfg.hidden_dims = vec![32, 32];
        cfg.epochs = 1;
        cfg.eval_every = 0;
        cfg.p_inter = 4;
        cfg.seed = 7;
        cfg.sampler_threads = sampler_threads;
        cfg
    };

    let mut group = c.benchmark_group("training");
    group.sample_size(10);

    for (name, sampler_threads) in [("epoch_synchronous", 0usize), ("epoch_pipelined_2w", 2)] {
        criterion::set_json_tags([
            ("kernel", kernel.to_string()),
            (
                "sampler",
                if sampler_threads == 0 {
                    "synchronous".to_string()
                } else {
                    format!("pipelined_{sampler_threads}w")
                },
            ),
        ]);
        let mut trainer = GsGcnTrainer::new(&d, cfg_for(sampler_threads)).expect("trainer");
        group.bench_function(name, |b| {
            b.iter(|| black_box(trainer.train_epoch().expect("epoch")))
        });
        let bd = trainer.breakdown();
        println!(
            "  {name}: cumulative sampling stalled {:.1} ms, hidden {:.1} ms (overlap {:.0}%)",
            1e3 * bd.sampling_secs,
            1e3 * bd.sampling_hidden_secs,
            100.0 * bd.sampling_overlap_fraction(),
        );
    }
    criterion::set_json_tags([("kernel", kernel.to_string())]);

    group.finish();
}

/// Back-to-back sweep `train()` calls: respawning sampler workers per
/// trainer vs handing one pipeline down the sweep
/// (`take_pipeline` → `new_with_pipeline`). The reused pipeline is
/// rewound over each trainer's sampler × store × seed, so the subgraph
/// streams are bit-identical — the delta is pure thread spawn/join and
/// channel setup. Records are tagged `pipeline=respawn|reused`.
fn bench_sweep_pipeline_reuse(c: &mut Criterion) {
    gsgcn_bench::announce_kernel_tier();
    let kernel = gsgcn_tensor::gemm::selected_tier().name();
    let d = presets::ppi_scaled(3);
    const SWEEP: u64 = 4;

    let cfg_for = |seed: u64| {
        let mut cfg = TrainerConfig::default();
        cfg.sampler.frontier_size = 100;
        cfg.sampler.budget = 400;
        cfg.hidden_dims = vec![32];
        cfg.epochs = 1;
        cfg.eval_every = 0;
        cfg.seed = seed;
        cfg.sampler_threads = 2;
        cfg
    };

    let mut group = c.benchmark_group("training");
    group.sample_size(10);

    criterion::set_json_tags([
        ("kernel", kernel.to_string()),
        ("pipeline", "respawn".to_string()),
    ]);
    group.bench_function("sweep4_pipeline_respawn", |b| {
        b.iter(|| {
            for s in 0..SWEEP {
                let mut t = GsGcnTrainer::new(&d, cfg_for(7 + s)).expect("trainer");
                black_box(t.train_epoch().expect("epoch"));
            }
        });
    });

    criterion::set_json_tags([
        ("kernel", kernel.to_string()),
        ("pipeline", "reused".to_string()),
    ]);
    group.bench_function("sweep4_pipeline_reused", |b| {
        b.iter(|| {
            let mut pipe = None;
            for s in 0..SWEEP {
                let cfg = cfg_for(7 + s);
                let mut t = match pipe.take() {
                    Some(p) => GsGcnTrainer::new_with_pipeline(&d, cfg, p).expect("trainer"),
                    None => GsGcnTrainer::new(&d, cfg).expect("trainer"),
                };
                black_box(t.train_epoch().expect("epoch"));
                pipe = t.take_pipeline();
            }
        });
    });
    criterion::set_json_tags([("kernel", kernel.to_string())]);

    group.finish();
}

criterion_group!(
    benches,
    bench_training_iteration,
    bench_epoch_sync_vs_pipelined,
    bench_sweep_pipeline_reuse
);
criterion_main!(benches);
