//! Shared helpers for the benchmark harness.
//!
//! Every paper table/figure has a dedicated binary in `src/bin/`:
//!
//! | Binary | Paper artifact |
//! |---|---|
//! | `table1_datasets` | Table I — dataset statistics |
//! | `fig2_time_accuracy` | Fig. 2 — accuracy vs sequential training time + Sec. VI-B speedups |
//! | `fig3_scaling` | Fig. 3 — iteration / feature-prop / weight-app scaling + breakdown |
//! | `fig4_sampling` | Fig. 4 — sampler scaling (`p_inter`) and lane/AVX gain |
//! | `table2_deeper` | Table II — speedup vs parallelized GraphSAGE by depth × cores |
//! | `ablation_sampler` | A1 — Dashboard vs naive frontier sampler |
//! | `ablation_partitioning` | A2 — propagation kernels + Theorem 2 cost model |
//! | `ablation_samplers` | A3 — accuracy under different sampling algorithms |
//!
//! Environment knobs (all optional):
//! * `GSGCN_FULL=1` — run heavier configurations (longer, closer to paper scale).
//! * `GSGCN_MAX_CORES=N` — cap the core sweep (default: all available).
//! * `GSGCN_SEED=N` — master seed (default 42).

use std::time::Instant;

/// The JSON tags every bench record should carry: the dispatched GEMM
/// microkernel tier and the session storage precision. Benches that set
/// record-specific tags must extend this base (the shim's
/// `set_json_tags` replaces tags wholesale) so archived numbers stay
/// attributable to an ISA and a precision.
pub fn base_tags() -> Vec<(String, String)> {
    vec![
        (
            "kernel".to_string(),
            gsgcn_tensor::gemm::selected_tier().name().to_string(),
        ),
        (
            "precision".to_string(),
            gsgcn_tensor::precision::current().name().to_string(),
        ),
    ]
}

/// Print the dispatched GEMM microkernel tier (once per process) and tag
/// all subsequent criterion JSON records with it plus the storage
/// precision, so every bench artifact is attributable to an ISA and a
/// precision. Call at the top of each criterion bench group; CI greps
/// the line to attribute archived numbers.
pub fn announce_kernel_tier() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let selected = gsgcn_tensor::gemm::selected_tier();
        let available: Vec<&str> = gsgcn_tensor::gemm::available_tiers()
            .iter()
            .map(|t| t.name())
            .collect();
        println!(
            "GEMM kernel tier: {} (available: {}), storing {}, bf16 via {}",
            selected.name(),
            available.join(", "),
            gsgcn_tensor::precision::current().name(),
            gsgcn_tensor::gemm::bf16_engine(selected),
        );
        criterion::set_json_tags(base_tags());
    });
}

/// Whether heavy "full" mode was requested.
pub fn full_mode() -> bool {
    std::env::var("GSGCN_FULL")
        .map(|v| v == "1")
        .unwrap_or(false)
}

/// Master seed.
pub fn seed() -> u64 {
    std::env::var("GSGCN_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(42)
}

/// Available cores, honouring `GSGCN_MAX_CORES`.
pub fn max_cores() -> usize {
    let avail = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    std::env::var("GSGCN_MAX_CORES")
        .ok()
        .and_then(|v| v.parse().ok())
        .map(|m: usize| m.min(avail).max(1))
        .unwrap_or(avail)
}

/// Core sweep: powers of two up to [`max_cores`], always including 1 and
/// the max itself (mirrors the paper's 1/5/10/20/40 sweep shape).
pub fn core_sweep() -> Vec<usize> {
    let max = max_cores();
    let mut cores = vec![1usize];
    let mut c = 2;
    while c < max {
        cores.push(c);
        c *= 2;
    }
    if max > 1 {
        cores.push(max);
    }
    cores
}

/// Wall-clock a closure, returning `(result, seconds)`.
pub fn time<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64())
}

/// Run a closure inside a rayon pool of `threads` workers.
pub fn with_threads<T: Send>(threads: usize, f: impl FnOnce() -> T + Send) -> T {
    rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("thread pool")
        .install(f)
}

/// Print a section header.
pub fn header(title: &str) {
    println!("\n=== {title} ===");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn core_sweep_starts_at_one_and_is_sorted() {
        let s = core_sweep();
        assert_eq!(s[0], 1);
        assert!(s.windows(2).all(|w| w[0] < w[1]));
        assert!(*s.last().unwrap() <= max_cores());
    }

    #[test]
    fn time_measures() {
        let (v, secs) = time(|| {
            std::thread::sleep(std::time::Duration::from_millis(5));
            7
        });
        assert_eq!(v, 7);
        assert!(secs >= 0.004);
    }

    #[test]
    fn with_threads_runs_in_sized_pool() {
        let n = with_threads(2, rayon::current_num_threads);
        assert_eq!(n, 2);
    }
}
