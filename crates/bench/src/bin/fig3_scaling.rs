//! Figure 3 — scaling of overall training iteration, feature propagation
//! and weight application with core count, plus the execution-time
//! breakdown, for hidden dimensions 512 and 1024.
//!
//! For each dataset × hidden size × core count we train a fixed number of
//! iterations and read the trainer's per-phase breakdown; speedups are
//! relative to the 1-core run of the same configuration.

use gsgcn_bench::{core_sweep, full_mode, header, seed, time, with_threads};
use gsgcn_core::{GsGcnTrainer, TrainerConfig};
use gsgcn_data::Dataset;
use gsgcn_metrics::timing::Breakdown;
use gsgcn_nn::adam::AdamHyper;
use gsgcn_prop::propagator::FeaturePropagator;
use gsgcn_tensor::DMatrix;

/// One measured configuration.
struct Meas {
    cores: usize,
    total: f64,
    breakdown: Breakdown,
}

fn measure(d: &Dataset, hidden: usize, cores: usize, epochs: usize) -> Meas {
    let mut cfg = TrainerConfig {
        hidden_dims: vec![hidden, hidden],
        adam: AdamHyper {
            lr: 1e-2,
            ..AdamHyper::default()
        },
        epochs,
        eval_every: 0,
        threads: cores,
        p_inter: cores,
        // Unfused: Fig. 3 splits time into feature propagation vs weight
        // application, and only the unfused path books the neighbor-half
        // GEMM under weight application (see `KernelTimings` — fused mode
        // folds it into the propagation bucket, skewing this breakdown).
        fused: false,
        // Per-core scaling measures the synchronous algorithm; don't let
        // GSGCN_SAMPLER_THREADS leak pipelined sampling into the baseline.
        sampler_threads: 0,
        ..TrainerConfig::default()
    };
    cfg.sampler.frontier_size = 200;
    cfg.sampler.budget = 2000;
    cfg.seed = seed();
    let mut t = GsGcnTrainer::new(d, cfg).expect("trainer");
    for _ in 0..epochs {
        t.train_epoch().expect("epoch");
    }
    Meas {
        cores,
        total: t.train_secs(),
        breakdown: *t.breakdown(),
    }
}

/// Standalone feature-propagation scaling (paper Fig. 3B): forward +
/// backward mean aggregation with an `f`-wide feature matrix, min of
/// `reps`, per core count. Measured on the dataset's *full* graph — the
/// scaled training subgraphs finish in microseconds, where fork-join
/// overhead would hide the kernel's real scaling.
fn feature_prop_scaling(d: &Dataset, f: usize, cores: &[usize], reps: usize) -> Vec<f64> {
    let g = &d.graph;
    let n = g.num_vertices();
    let h = DMatrix::from_fn(n, f, |i, j| ((i * 31 + j * 7) % 13) as f32 * 0.2 - 1.0);
    let prop = FeaturePropagator::default();
    cores
        .iter()
        .map(|&c| {
            with_threads(c, || {
                // Warm-up.
                let y = prop.forward(g, &h);
                let _ = prop.backward(g, &y);
                let mut best = f64::INFINITY;
                for _ in 0..reps {
                    let (_, secs) = time(|| {
                        let y = prop.forward(g, &h);
                        std::hint::black_box(prop.backward(g, &y));
                    });
                    best = best.min(secs);
                }
                best
            })
        })
        .collect()
}

fn main() {
    let (epochs, hiddens): (usize, Vec<usize>) = if full_mode() {
        (6, vec![512, 1024])
    } else {
        (3, vec![512])
    };
    let datasets: Vec<Dataset> = if full_mode() {
        gsgcn_data::presets::all_scaled(seed())
    } else {
        vec![
            gsgcn_data::presets::ppi_scaled(seed()),
            gsgcn_data::presets::reddit_scaled(seed() + 1),
        ]
    };
    let cores = core_sweep();

    for hidden in &hiddens {
        header(&format!("Fig. 3 (hidden dimension = {hidden})"));
        for d in &datasets {
            println!("--- dataset {} ---", d.name);
            let runs: Vec<Meas> = cores
                .iter()
                .map(|&c| measure(d, *hidden, c, epochs))
                .collect();
            // Panel B: standalone feature-propagation scaling (the phase
            // is <1% of in-training time at these sizes, so the in-loop
            // numbers would be timer noise).
            let fp = feature_prop_scaling(d, *hidden, &cores, 5);
            let base = &runs[0];
            println!(
                "{:>6} {:>12} {:>12} {:>12}  breakdown (samp/feat/weight/other %)",
                "cores", "iter_spdup", "feat_spdup", "weight_spdup"
            );
            for (i, r) in runs.iter().enumerate() {
                let b = &r.breakdown;
                let s = |x: f64, y: f64| if y > 0.0 { x / y } else { 0.0 };
                println!(
                    "{:>6} {:>11.2}x {:>11.2}x {:>11.2}x  {:>4.1}/{:>4.1}/{:>4.1}/{:>4.1}",
                    r.cores,
                    s(base.total, r.total),
                    s(fp[0], fp[i]),
                    s(base.breakdown.weight_app_secs, b.weight_app_secs),
                    100.0 * b.fraction(gsgcn_metrics::timing::Phase::Sampling),
                    100.0 * b.fraction(gsgcn_metrics::timing::Phase::FeatureProp),
                    100.0 * b.fraction(gsgcn_metrics::timing::Phase::WeightApp),
                    100.0 * b.fraction(gsgcn_metrics::timing::Phase::Other),
                );
            }
        }
    }
    println!(
        "\nExpected shape (paper, 40 cores): ~20x iteration, ~25x feature propagation, ~16x weight application;"
    );
    println!("sampling a small fraction of total time; weight application the scaling bottleneck.");
}
