//! Ablation A1 — Dashboard vs naive frontier sampler (Sec. IV-A).
//!
//! The naive implementation pays `O(m)` per pop (prefix-sum scan of the
//! frontier); the Dashboard pays amortised `O(η/(η−1)·d̄)` slot work and
//! `O(η)` expected probes. With the paper's `m = 1000` the Dashboard
//! should win by a wide margin, growing with `m`.

use gsgcn_bench::{full_mode, header, seed, time};
use gsgcn_data::presets;
use gsgcn_sampler::dashboard::{DashboardSampler, FrontierConfig, ProbeMode};
use gsgcn_sampler::naive::NaiveFrontierSampler;
use gsgcn_sampler::GraphSampler;

fn main() {
    let d = presets::ppi_scaled(seed());
    let tv = d.train_view();
    let g = &*tv.graph;
    let reps = if full_mode() { 20 } else { 5 };

    header("A1: Dashboard vs naive frontier sampler (serial, per-subgraph seconds)");
    println!(
        "{:>6} {:>8} {:>14} {:>14} {:>9} {:>10} {:>9}",
        "m", "budget", "naive_secs", "dashboard_secs", "speedup", "probes/pop", "cleanups"
    );
    for &(m, budget) in &[(50usize, 400usize), (200, 800), (500, 1200), (1000, 1350)] {
        let budget = budget.min(g.num_vertices());
        let m = m.min(budget / 2);
        let naive = NaiveFrontierSampler::new(m, budget);
        let dash = DashboardSampler::new(FrontierConfig {
            frontier_size: m,
            budget,
            eta: 2.0,
            degree_cap: None,
            probe_mode: ProbeMode::Lanes,
        });
        let (_, naive_secs) = time(|| {
            for r in 0..reps {
                let v = naive.sample_vertices(g, seed() + r as u64);
                assert!(!v.is_empty());
            }
        });
        let mut probes = 0usize;
        let mut pops = 0usize;
        let mut cleanups = 0usize;
        let (_, dash_secs) = time(|| {
            for r in 0..reps {
                let (v, stats) = dash.sample_with_stats(g, seed() + r as u64);
                assert!(!v.is_empty());
                probes += stats.probes;
                pops += stats.pops;
                cleanups += stats.cleanups;
            }
        });
        println!(
            "{:>6} {:>8} {:>14.6} {:>14.6} {:>8.2}x {:>10.2} {:>9}",
            m,
            budget,
            naive_secs / reps as f64,
            dash_secs / reps as f64,
            naive_secs / dash_secs,
            probes as f64 / pops.max(1) as f64,
            cleanups
        );
    }
    println!("\nExpected shape: speedup grows with m (naive is O(m) per pop; Dashboard is O(1) amortised).");
}
