//! Table II — training-time speedup of the graph-sampling GCN over the
//! parallelized GraphSAGE-style baseline on the Reddit-shaped dataset,
//! for 1/2/3-layer models across core counts.
//!
//! Both systems train the same number of epochs (full traversals of the
//! training vertices); the ratio of wall-clock epoch times is the
//! speedup. The paper's 1306× at 3 layers folds in Python/Tensorflow
//! overhead; with both sides in Rust the measured ratio isolates the
//! algorithmic neighbor-explosion factor (`∝ d_LS^(L-1)` work per
//! vertex), so expect large-but-smaller numbers with the same growth
//! pattern: speedup increases with depth and with cores.

use gsgcn_baselines::sage::{SageConfig, SageTrainer};
use gsgcn_bench::{core_sweep, full_mode, header, seed, time, with_threads};
use gsgcn_core::{GsGcnTrainer, TrainerConfig};
use gsgcn_data::Dataset;
use gsgcn_metrics::timing::format_speedup_table;
use gsgcn_nn::adam::AdamHyper;

fn proposed_epoch_secs(d: &Dataset, layers: usize, cores: usize, epochs: usize) -> f64 {
    let mut cfg = TrainerConfig {
        hidden_dims: vec![128; layers],
        adam: AdamHyper::default(),
        epochs,
        eval_every: 0,
        threads: cores,
        p_inter: cores,
        // Core-scaling table: keep sampling synchronous regardless of the
        // GSGCN_SAMPLER_THREADS environment.
        sampler_threads: 0,
        ..TrainerConfig::default()
    };
    cfg.sampler.frontier_size = 150;
    cfg.sampler.budget = 1500;
    cfg.seed = seed();
    let mut t = GsGcnTrainer::new(d, cfg).expect("trainer");
    for _ in 0..epochs {
        t.train_epoch().expect("epoch");
    }
    t.train_secs() / epochs as f64
}

fn sage_epoch_secs(d: &Dataset, layers: usize, cores: usize, epochs: usize) -> f64 {
    let cfg = SageConfig {
        fanout: 10,
        batch_size: 512,
        hidden_dims: vec![128; layers],
        adam: AdamHyper::default(),
        seed: seed(),
    };
    with_threads(cores, || {
        let mut t = SageTrainer::new(d, cfg).expect("sage trainer");
        let (_, secs) = time(|| {
            for _ in 0..epochs {
                t.train_epoch();
            }
        });
        secs / epochs as f64
    })
}

fn main() {
    let d = gsgcn_data::presets::reddit_scaled(seed() + 1);
    let cores = core_sweep();
    let max_layers = 3;
    let epochs = if full_mode() { 3 } else { 1 };

    header("Table II: speedup vs parallelized GraphSAGE-style baseline (Reddit-shaped)");
    let mut rows = Vec::new();
    for layers in 1..=max_layers {
        let mut row = Vec::new();
        for &c in &cores {
            let ours = proposed_epoch_secs(&d, layers, c, epochs);
            let theirs = sage_epoch_secs(&d, layers, c, epochs);
            row.push(theirs / ours);
        }
        rows.push((format!("{layers}-layer"), row));
    }
    println!("{}", format_speedup_table("layers\\cores", &cores, &rows));

    // Show how far the neighbor explosion actually reaches at this graph
    // scale (it saturates at |V_train|, compressing the depth ratios
    // relative to the paper's 233k-vertex Reddit).
    let mut probe = SageTrainer::new(
        &d,
        SageConfig {
            fanout: 10,
            batch_size: 512,
            hidden_dims: vec![128; max_layers],
            adam: AdamHyper::default(),
            seed: seed(),
        },
    )
    .expect("probe trainer");
    probe.train_batch(&(0..512u32).collect::<Vec<_>>());
    println!(
        "layer-sampler node counts for one 512-vertex batch (3-layer): {:?} of {} train vertices",
        probe.last_layer_sizes(),
        d.split.train.len()
    );

    println!("\npaper reference (40-core Xeon, vs Tensorflow implementation):");
    println!("  1-layer: 2.03x → 23.93x | 2-layer: 7.74x → 37.44x | 3-layer: 335x → 1306x");
    println!("expected shape here: speedup grows with depth. The paper's growth with");
    println!("cores and its 1306x include the Tensorflow baseline's overhead and poor");
    println!("scaling; with both systems on the same Rust substrate the ratio isolates");
    println!("the algorithmic work difference, compressed further by explosion");
    println!("saturation at |V_train| on scaled graphs (see EXPERIMENTS.md).");
}
