//! Figure 4 — parallel frontier sampling.
//!
//! Part A: sampling speedup vs inter-subgraph parallelism `p_inter`
//! (lane-batched probing on, the paper's `p_intra = 8`).
//! Part B: the gain of lane-batched ("AVX") probing over scalar probing,
//! measured on the vertex-sampling phase alone (probing / invalidate /
//! append — the operations Alg. 4 vectorises; induced-subgraph
//! extraction is identical in both modes and excluded).
//!
//! Methodology: each point samples a fixed batch of subgraphs with
//! `p_inter` worker threads; reported time is the minimum of 3 repetitions
//! after a full warm-up pass; speedup is relative to `p_inter = 1`.

use gsgcn_bench::{core_sweep, full_mode, header, seed, time, with_threads};
use gsgcn_data::Dataset;
use gsgcn_sampler::cost_model::SamplerCostModel;
use gsgcn_sampler::dashboard::{DashboardSampler, FrontierConfig, ProbeMode};
use gsgcn_sampler::pool::{instance_seed, sample_many};
use gsgcn_sampler::GraphSampler;
use rayon::prelude::*;

fn sampler(d: &Dataset, mode: ProbeMode) -> DashboardSampler {
    let budget = (d.split.train.len() / 2).clamp(200, 8000);
    DashboardSampler::new(FrontierConfig {
        frontier_size: (budget / 8).max(16),
        budget,
        eta: 2.0,
        degree_cap: Some(30),
        probe_mode: mode,
    })
}

/// Min-of-`reps` seconds to sample `batch` full subgraphs with `p` threads.
fn batch_subgraph_secs(
    g: &gsgcn_graph::CsrGraph,
    s: &DashboardSampler,
    p: usize,
    batch: usize,
    reps: usize,
) -> f64 {
    with_threads(p, || {
        let mut best = f64::INFINITY;
        for r in 0..reps {
            let (_, secs) = time(|| {
                let subs = sample_many(s, g, batch, seed() + r as u64, 0);
                assert_eq!(subs.len(), batch);
            });
            best = best.min(secs);
        }
        best
    })
}

/// Min-of-`reps` seconds for the vertex-sampling phase only (no induced
/// subgraph extraction).
fn batch_vertex_secs(
    g: &gsgcn_graph::CsrGraph,
    s: &DashboardSampler,
    p: usize,
    batch: usize,
    reps: usize,
) -> f64 {
    with_threads(p, || {
        let mut best = f64::INFINITY;
        for r in 0..reps {
            let (_, secs) = time(|| {
                let total: usize = (0..batch)
                    .into_par_iter()
                    .map(|i| {
                        s.sample_vertices(g, instance_seed(seed() + r as u64, 0, i as u64))
                            .len()
                    })
                    .sum();
                assert!(total > 0);
            });
            best = best.min(secs);
        }
        best
    })
}

fn main() {
    let datasets: Vec<Dataset> = if full_mode() {
        gsgcn_data::presets::all_scaled(seed())
    } else {
        vec![
            gsgcn_data::presets::ppi_scaled(seed()),
            gsgcn_data::presets::amazon_scaled(seed() + 3),
        ]
    };
    let cores = core_sweep();
    let batch = cores.last().unwrap() * 8;
    let reps = 3;

    header("Fig. 4A: sampling speedup vs p_inter (lane-batched probing)");
    println!(
        "{:<10} {}",
        "dataset",
        cores.iter().map(|c| format!("{c:>8}")).collect::<String>()
    );
    for d in &datasets {
        let tv = d.train_view();
        let s = sampler(d, ProbeMode::Lanes);
        // Full warm-up pass (graph + feature caches, rayon pools).
        let _ = batch_subgraph_secs(&tv.graph, &s, 1, batch, 1);
        let base = batch_subgraph_secs(&tv.graph, &s, 1, batch, reps);
        let mut row = format!("{:<10}", d.name);
        for &c in &cores {
            let secs = batch_subgraph_secs(&tv.graph, &s, c, batch, reps);
            row.push_str(&format!("{:>7.2}x", base / secs));
        }
        println!("{row}");
    }
    println!("(paper: near-linear to 20 cores, NUMA knee beyond; {batch} subgraphs per point, min of {reps})");

    header("Fig. 4B: lane-batched (AVX analogue) gain over scalar probing (vertex phase)");
    let pinters: Vec<usize> = cores.iter().copied().filter(|&c| c > 1).collect();
    let pinters = if pinters.is_empty() { vec![1] } else { pinters };
    println!(
        "{:<10} {:>8} {}",
        "dataset",
        "serial",
        pinters
            .iter()
            .map(|c| format!("{c:>8}"))
            .collect::<String>()
    );
    for d in &datasets {
        let tv = d.train_view();
        let scalar_s = sampler(d, ProbeMode::Scalar);
        let lanes_s = sampler(d, ProbeMode::Lanes);
        let _ = batch_vertex_secs(&tv.graph, &lanes_s, 1, batch, 1); // warm-up
        let serial_gain = batch_vertex_secs(&tv.graph, &scalar_s, 1, batch, reps)
            / batch_vertex_secs(&tv.graph, &lanes_s, 1, batch, reps);
        let mut row = format!("{:<10} {:>7.2}x", d.name, serial_gain);
        for &c in &pinters {
            let scalar = batch_vertex_secs(&tv.graph, &scalar_s, c, batch, reps);
            let lanes = batch_vertex_secs(&tv.graph, &lanes_s, c, batch, reps);
            row.push_str(&format!("{:>7.2}x", scalar / lanes));
        }
        println!("{row}");
    }
    println!("(paper reports ~4x from AVX2 intrinsics; our scalar baseline is already");
    println!(
        " auto-vectorised by LLVM, so the residual probing gain is smaller — see EXPERIMENTS.md)"
    );

    header("Fig. 4B microbench: lane-batched RNG throughput (the vectorisable component)");
    {
        use gsgcn_sampler::rng::{LaneRng, Xorshift128Plus, LANES};
        let n = 4_000_000usize;
        let mut srng = Xorshift128Plus::new(seed());
        let (_, scalar_secs) = time(|| {
            let mut acc = 0u64;
            for _ in 0..n {
                acc = acc.wrapping_add(srng.next_u64());
            }
            std::hint::black_box(acc)
        });
        let mut lrng = LaneRng::new(seed());
        let (_, lane_secs) = time(|| {
            let mut acc = 0u64;
            for _ in 0..n / LANES {
                for v in lrng.next_batch() {
                    acc = acc.wrapping_add(v);
                }
            }
            std::hint::black_box(acc)
        });
        println!(
            "scalar: {:.0} Mu64/s | lane-batched: {:.0} Mu64/s | gain {:.2}x",
            n as f64 / scalar_secs / 1e6,
            n as f64 / lane_secs / 1e6,
            scalar_secs / lane_secs
        );
    }

    header("Theorem 1 cost model (analytic, for the measured graphs)");
    for d in &datasets {
        let tv = d.train_view();
        let m = SamplerCostModel::unit(2.0, tv.graph.avg_degree().min(30.0));
        let pmax = m.theorem1_max_p(0.5);
        println!(
            "{:<10} d̄(capped)={:>6.1}  theorem-1 bound p ≤ {:>6.1}  modeled speedup at p=8: {:.2}x (guarantee {:.2}x)",
            d.name,
            tv.graph.avg_degree().min(30.0),
            pmax,
            m.speedup(8000, 1000, 8),
            m.theorem1_guarantee(8, 0.5),
        );
    }
}
