//! Ablation A2 — feature-propagation partitioning (Sec. V, Theorem 2).
//!
//! Part 1 measures the kernels (naive row-parallel, feature-partitioned
//! Alg. 6, 2-D P×Q) on a paper-typical subgraph (n ≈ 4000–8000, f = 256–512,
//! d ≈ 15). Part 2 demonstrates the cache crossover: once the source
//! matrix exceeds the LLC, the Alg. 6 kernel overtakes the naive one —
//! the regime the paper's 256 KiB-cache model lives in. Part 3 prints the
//! communication cost model including the Theorem 2 approximation ratio.
//!
//! Methodology: min of `reps` repetitions after one warm-up run.

use gsgcn_bench::{core_sweep, full_mode, header, seed, time, with_threads};
use gsgcn_data::generators::{community_powerlaw, CommunityGraphSpec};
use gsgcn_graph::partition::{bfs_partition, range_partition};
use gsgcn_graph::CsrGraph;
use gsgcn_prop::cost_model::PropCostModel;
use gsgcn_prop::kernels;
use gsgcn_tensor::DMatrix;

fn min_secs(reps: usize, mut f: impl FnMut()) -> f64 {
    f(); // warm-up
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let (_, secs) = time(&mut f);
        best = best.min(secs);
    }
    best
}

fn make_graph(n: usize, d: usize) -> CsrGraph {
    community_powerlaw(
        &CommunityGraphSpec {
            vertices: n,
            edges: n * d / 2,
            communities: 16,
            ..CommunityGraphSpec::default()
        },
        seed(),
    )
    .graph
}

fn main() {
    let (n, f) = if full_mode() {
        (8000, 512)
    } else {
        (4000, 256)
    };
    let reps = if full_mode() { 10 } else { 5 };
    let g = make_graph(n, 15);
    let h = DMatrix::from_fn(n, f, |i, j| ((i * 31 + j * 7) % 23) as f32 * 0.1 - 1.0);
    let cache = 256 * 1024;

    header(&format!(
        "A2 part 1: kernels at subgraph scale (n={n}, f={f}, d̄={:.1}, min of {reps})",
        g.avg_degree()
    ));
    println!(
        "{:>6} {:>12} {:>14} {:>12} {:>12}  (seconds per propagation)",
        "cores", "naive", "feat-part(Q)", "2D bfs P=4", "2D range P=4"
    );
    let cores = core_sweep();
    for &c in &cores {
        let naive = with_threads(c, || {
            min_secs(reps, || {
                std::hint::black_box(kernels::aggregate_naive(&g, &h));
            })
        });
        let part = with_threads(c, || {
            min_secs(reps, || {
                std::hint::black_box(kernels::aggregate_feature_partitioned(&g, &h, cache));
            })
        });
        let bfs = bfs_partition(&g, 4);
        let q2d = (c / 4).max(1);
        let twod_bfs = with_threads(c, || {
            min_secs(reps, || {
                std::hint::black_box(kernels::aggregate_2d(&g, &h, &bfs, q2d));
            })
        });
        let rng_part = range_partition(n, 4);
        let twod_rng = with_threads(c, || {
            min_secs(reps, || {
                std::hint::black_box(kernels::aggregate_2d(&g, &h, &rng_part, q2d));
            })
        });
        println!("{c:>6} {naive:>12.6} {part:>14.6} {twod_bfs:>12.6} {twod_rng:>12.6}");
    }
    println!(
        "At this scale the source matrix ({} MB) is LLC-resident → naive wins;",
        n * f * 4 / (1 << 20)
    );
    println!("PropMode::Auto picks it automatically.");

    header("A2 part 2: crossover search (long feature vectors, matrix ≫ LLC)");
    {
        // Alg. 6's intended regime per the paper's motivation: small-n
        // subgraph, *long* per-vertex feature vectors, tiny per-core fast
        // memory. We sweep the fast-memory parameter (and with it Q) to
        // search for a crossover on this machine.
        let n_big = 8000;
        let f_big = if full_mode() { 8192 } else { 4096 };
        let g_big = make_graph(n_big, 15);
        let h_big = DMatrix::from_fn(n_big, f_big, |i, j| {
            ((i * 13 + j * 5) % 17) as f32 * 0.1 - 0.8
        });
        let c = *cores.last().unwrap();
        let reps_big = 3;
        let naive = with_threads(c, || {
            min_secs(reps_big, || {
                std::hint::black_box(kernels::aggregate_naive(&g_big, &h_big));
            })
        });
        println!(
            "n={n_big}, f={f_big} ({} MB source), {c} cores",
            n_big * f_big * 4 / (1 << 20)
        );
        println!("naive row-parallel: {naive:.4}s");
        for s_cache in [256 * 1024usize, 1 << 20, 4 << 20, 16 << 20] {
            let q = kernels::num_feature_partitions(n_big, f_big, s_cache, c);
            let part = with_threads(c, || {
                min_secs(reps_big, || {
                    std::hint::black_box(kernels::aggregate_feature_partitioned(
                        &g_big, &h_big, s_cache,
                    ));
                })
            });
            println!(
                "feat-part S_cache={s_cache:>9} (Q={q:>4}): {part:.4}s → Alg.6 gain {:.2}x",
                naive / part
            );
        }
        println!("Honest finding: on this container the hardware prefetcher makes the naive");
        println!("kernel's sequential full-row reads more bandwidth-efficient than any");
        println!("random-line column-block scheme, so no crossover appears — unlike the");
        println!("paper's 2016 Xeon with 256 KiB effective fast memory. See EXPERIMENTS.md.");
    }

    header("A2 part 3: Theorem 2 cost model");
    let c = *cores.last().unwrap();
    let model = PropCostModel::paper(n, g.avg_degree(), f, c, cache);
    println!(
        "applicable (C ≤ 4f/d and 2nd ≤ S): {} (C={}, 4f/d={:.0}, 2nd={:.0}, S={})",
        model.theorem2_applicable(),
        c,
        4.0 * f as f64 / g.avg_degree(),
        2.0 * n as f64 * g.avg_degree(),
        cache
    );
    println!("feature-only Q = {}", model.feature_only_q());
    println!(
        "g_comm(feature-only) = {:.3e} bytes; brute-force optimum ≥ {:.3e} bytes",
        model.feature_only_comm(),
        model.bruteforce_optimum(64, 8192)
    );
    println!(
        "approximation ratio = {:.3} (Theorem 2 bound: ≤ 2)",
        model.approximation_ratio(64, 8192)
    );
}
