//! Ablation A3 — GCN accuracy under different sampling algorithms
//! (Sec. III-C's requirements + the paper's future-work item on
//! "evaluating impact on accuracy using various sampling algorithms").
//!
//! The same GCN is trained with subgraphs drawn by each sampler; samplers
//! that preserve connectivity (frontier, random-walk, forest-fire) should
//! beat topology-blind ones (uniform node) on final F1. Also prints each
//! sampler's subgraph connectivity statistics.

use gsgcn_bench::{full_mode, header, seed};
use gsgcn_data::dataset::TaskKind;
use gsgcn_data::Dataset;
use gsgcn_graph::stats;
use gsgcn_metrics::f1;
use gsgcn_nn::model::{GcnConfig, GcnModel, LossKind};
use gsgcn_sampler::alt::{
    ForestFireSampler, RandomWalkSampler, UniformEdgeSampler, UniformNodeSampler,
};
use gsgcn_sampler::dashboard::{DashboardSampler, FrontierConfig};
use gsgcn_sampler::GraphSampler;

/// Train the GCN with an arbitrary sampler (generic mini-batch loop
/// mirroring the core trainer, without the Dashboard-specific pool).
fn train_with_sampler(
    d: &Dataset,
    sampler: &dyn GraphSampler,
    epochs: usize,
    hidden: usize,
) -> f64 {
    let tv = d.train_view();
    let loss = match d.task {
        TaskKind::MultiLabel => LossKind::SigmoidBce,
        TaskKind::SingleLabel => LossKind::SoftmaxCe,
    };
    let cfg = GcnConfig {
        in_dim: d.feature_dim(),
        hidden_dims: vec![hidden, hidden],
        num_classes: d.num_classes(),
        loss,
        adam: gsgcn_nn::adam::AdamHyper {
            lr: 2e-2,
            ..Default::default()
        },
        dropout: 0.0,
        fused: true,
    };
    let mut model = GcnModel::new(cfg, seed());
    let budget = 500.min(tv.graph.num_vertices());
    let iters_per_epoch = tv.graph.num_vertices().div_ceil(budget).max(1);
    let mut it = 0u64;
    for _ in 0..epochs {
        for _ in 0..iters_per_epoch {
            let sub = sampler.sample_subgraph(&*tv.graph, seed() ^ it.wrapping_mul(0x9E37));
            it += 1;
            if sub.num_vertices() == 0 {
                continue;
            }
            let x = tv.features.gather_rows(&sub.origin);
            let y = tv.labels.gather_rows(&sub.origin);
            model.train_step(&sub.graph, &x, &y);
        }
    }
    // Full-graph validation F1.
    let probs = model.infer_probs(&d.graph, &d.features);
    let idx = &d.split.val;
    f1::f1_micro_from_probs(
        &probs.gather_rows(idx),
        &d.labels.gather_rows(idx),
        d.task == TaskKind::SingleLabel,
    )
}

fn main() {
    let d = gsgcn_data::presets::ppi_scaled(seed());
    let tv = d.train_view();
    let epochs = if full_mode() { 30 } else { 12 };
    let hidden = 64;
    let budget = 500.min(tv.graph.num_vertices());

    let samplers: Vec<(&str, Box<dyn GraphSampler>)> = vec![
        (
            "frontier",
            Box::new(DashboardSampler::new(FrontierConfig {
                frontier_size: budget / 8,
                budget,
                ..FrontierConfig::default()
            })),
        ),
        ("uniform-node", Box::new(UniformNodeSampler { budget })),
        ("uniform-edge", Box::new(UniformEdgeSampler { budget })),
        (
            "random-walk",
            Box::new(RandomWalkSampler {
                walkers: budget / 8,
                budget,
                restart_prob: 0.1,
            }),
        ),
        (
            "forest-fire",
            Box::new(ForestFireSampler {
                budget,
                burn_prob: 0.7,
            }),
        ),
    ];

    header("A3: subgraph statistics per sampler (training graph)");
    let full_stats = stats::degree_stats(&tv.graph);
    println!(
        "training graph: |V|={} d̄={:.1} clustering={:.4}",
        tv.graph.num_vertices(),
        full_stats.mean,
        stats::clustering_coefficient(&tv.graph)
    );
    println!(
        "{:<14} {:>8} {:>8} {:>10} {:>12} {:>10}",
        "sampler", "|V_sub|", "d̄_sub", "cluster", "deg-TV-dist", "LCC%"
    );
    for (name, s) in &samplers {
        let sub = s.sample_subgraph(&*tv.graph, seed());
        let ds = stats::degree_stats(&sub.graph);
        let tv_dist = stats::degree_distribution_distance(&tv.graph, &sub.graph);
        let lcc = if sub.num_vertices() > 0 {
            stats::largest_component_size(&sub.graph) as f64 / sub.num_vertices() as f64 * 100.0
        } else {
            0.0
        };
        println!(
            "{:<14} {:>8} {:>8.1} {:>10.4} {:>12.4} {:>9.1}%",
            name,
            sub.num_vertices(),
            ds.mean,
            stats::clustering_coefficient(&sub.graph),
            tv_dist,
            lcc
        );
    }

    header(&format!(
        "A3: final validation F1 after {epochs} epochs per sampler"
    ));
    let mut results = Vec::new();
    for (name, s) in &samplers {
        let f1 = train_with_sampler(&d, s.as_ref(), epochs, hidden);
        println!("{name:<14} val F1 = {f1:.4}");
        results.push((*name, f1));
    }
    let frontier_f1 = results.iter().find(|(n, _)| *n == "frontier").unwrap().1;
    println!("\nExpected shape: connectivity-preserving samplers (frontier/walk/fire)");
    println!("≥ topology-blind uniform-node; frontier F1 here: {frontier_f1:.4}");
}
