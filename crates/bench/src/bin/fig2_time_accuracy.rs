//! Figure 2 — accuracy (F1-micro) vs sequential training time, and the
//! Sec. VI-B serial-speedup-at-threshold numbers.
//!
//! All three systems run single-threaded (the paper "eliminates the
//! impact of different parallelization strategies") on the four scaled
//! datasets with 2-layer models. Output: one CSV block per curve plus the
//! threshold-speedup summary (paper reference: 1.9× PPI, 7.8× Reddit,
//! 4.7× Yelp, 2.1× Amazon over the best baseline).

use gsgcn_baselines::fullbatch::{FullBatchConfig, FullBatchTrainer};
use gsgcn_baselines::sage::{SageConfig, SageTrainer};
use gsgcn_bench::{full_mode, header, seed, with_threads};
use gsgcn_core::{GsGcnTrainer, TrainerConfig};
use gsgcn_data::Dataset;
use gsgcn_metrics::convergence::{threshold_speedup, Curve};
use gsgcn_nn::adam::AdamHyper;

struct RunSpec {
    epochs_proposed: usize,
    epochs_sage: usize,
    epochs_fullbatch: usize,
    hidden: usize,
}

fn run_dataset(d: &Dataset, spec: &RunSpec) -> (Curve, Curve, Curve) {
    // --- Proposed: graph-sampling GCN, serial ---
    let mut cfg = TrainerConfig {
        hidden_dims: vec![spec.hidden, spec.hidden],
        adam: AdamHyper {
            lr: 2e-2,
            ..AdamHyper::default()
        },
        epochs: spec.epochs_proposed,
        eval_every: 1,
        ..TrainerConfig::quick_test()
    }
    .serial();
    cfg.sampler.frontier_size = 100;
    cfg.sampler.budget = 1000;
    cfg.seed = seed();
    let mut proposed_curve = Curve::new("proposed");
    with_threads(1, || {
        let mut t = GsGcnTrainer::new(d, cfg).expect("trainer");
        for e in 0..spec.epochs_proposed {
            t.train_epoch().expect("epoch");
            // Evaluate every other epoch (evaluation is full-graph
            // inference and would otherwise dominate the serial run).
            if e % 2 == 1 || e == spec.epochs_proposed - 1 {
                proposed_curve.push(
                    t.train_secs(),
                    t.evaluate(gsgcn_core::trainer::EvalSplit::Val),
                );
            }
        }
    });

    // --- GraphSAGE-style baseline, serial ---
    let sage_cfg = SageConfig {
        fanout: 10,
        batch_size: 512,
        hidden_dims: vec![spec.hidden, spec.hidden],
        adam: AdamHyper {
            lr: 2e-2,
            ..AdamHyper::default()
        },
        seed: seed(),
    };
    let mut sage_curve = Curve::new("graphsage");
    with_threads(1, || {
        let mut t = SageTrainer::new(d, sage_cfg).expect("sage trainer");
        for _ in 0..spec.epochs_sage {
            t.train_epoch();
            sage_curve.push(t.train_secs(), t.evaluate_val());
        }
    });

    // --- Full-batch GCN baseline, serial ---
    let fb_cfg = FullBatchConfig {
        hidden_dims: vec![spec.hidden, spec.hidden],
        adam: AdamHyper {
            lr: 2e-2,
            ..AdamHyper::default()
        },
        seed: seed(),
    };
    let mut fb_curve = Curve::new("batched-gcn");
    with_threads(1, || {
        let mut t = FullBatchTrainer::new(d, fb_cfg).expect("fullbatch trainer");
        for e in 0..spec.epochs_fullbatch {
            t.train_epoch();
            // Evaluation is expensive relative to one full-batch step;
            // sample the curve sparsely.
            if e % 5 == 4 || e == spec.epochs_fullbatch - 1 {
                fb_curve.push(t.train_secs(), t.evaluate_val());
            }
        }
    });

    (proposed_curve, sage_curve, fb_curve)
}

/// (dataset, gsgcn time-to-threshold, sage time-to-threshold, gsgcn F1, sage F1, fullbatch F1).
type SummaryRow = (String, Option<f64>, Option<f64>, f64, f64, f64);

fn main() {
    let spec = if full_mode() {
        RunSpec {
            epochs_proposed: 100,
            epochs_sage: 60,
            epochs_fullbatch: 300,
            hidden: 256,
        }
    } else {
        RunSpec {
            epochs_proposed: 60,
            epochs_sage: 25,
            epochs_fullbatch: 100,
            hidden: 128,
        }
    };

    header("Fig. 2: accuracy vs sequential training time (2-layer GCN, 1 thread)");
    println!(
        "paper reference speedups at threshold: PPI 1.9x, Reddit 7.8x, Yelp 4.7x, Amazon 2.1x\n"
    );

    let datasets = gsgcn_data::presets::all_scaled(seed());
    let mut summary: Vec<SummaryRow> = Vec::new();

    for d in &datasets {
        println!("--- dataset {} ---", d.name);
        let (p, s, f) = run_dataset(d, &spec);
        println!("method,time_secs,val_f1");
        print!("{}", p.to_csv());
        print!("{}", s.to_csv());
        print!("{}", f.to_csv());
        let strict = threshold_speedup(&p, &[&s, &f]);
        // Relaxed variant (97% of baseline best): informative when the
        // strict paper rule is unreachable at scaled sizes.
        let a0 = s.best_metric().max(f.best_metric());
        let relaxed_threshold = a0 * 0.97;
        let relaxed = p.time_to_reach(relaxed_threshold).and_then(|ours| {
            let theirs = [&s, &f]
                .iter()
                .filter_map(|c| c.time_to_reach(relaxed_threshold))
                .fold(f64::INFINITY, f64::min);
            if theirs.is_finite() {
                Some(theirs / ours)
            } else {
                None
            }
        });
        summary.push((
            d.name.clone(),
            strict,
            relaxed,
            p.best_metric(),
            s.best_metric(),
            f.best_metric(),
        ));
    }

    header("Sec. VI-B summary: serial speedup to baseline-best threshold");
    println!(
        "{:<10} {:>12} {:>14} {:>12} {:>12} {:>12}",
        "Dataset", "Strict(a0)", "Relaxed(97%)", "F1 proposed", "F1 sage", "F1 batched"
    );
    for (name, strict, relaxed, fp, fs, fb) in &summary {
        let fmt = |o: &Option<f64>| {
            o.map(|s| format!("{s:.2}x"))
                .unwrap_or_else(|| "n/a".into())
        };
        println!(
            "{name:<10} {:>12} {:>14} {fp:>12.4} {fs:>12.4} {fb:>12.4}",
            fmt(strict),
            fmt(relaxed)
        );
    }
    println!("\nPaper reference: 1.9x (PPI), 7.8x (Reddit), 4.7x (Yelp), 2.1x (Amazon).");
    println!("Expected shape: proposed reaches the baselines' accuracy band faster (relaxed");
    println!("speedup > 1); at a few thousand vertices the subgraph/full-graph gap");
    println!("compresses the strict-threshold comparison (see EXPERIMENTS.md).");
}
