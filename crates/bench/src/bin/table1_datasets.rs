//! Table I — dataset statistics.
//!
//! Prints the paper's target statistics (the generator specs) and the
//! realised statistics of the scaled synthetic datasets the experiments
//! run on. `GSGCN_FULL=1` also generates and verifies the full-scale PPI
//! dataset (the other full-scale sets take minutes/GBs; their specs are
//! printed either way).

use gsgcn_bench::{full_mode, header, seed};
use gsgcn_data::presets;
use gsgcn_graph::stats;

fn main() {
    header("Table I: dataset statistics (paper targets)");
    println!(
        "{:<10} {:>10} {:>12} {:>8} {:>6} Task",
        "Dataset", "#Vertices", "#Edges", "Attr", "Cls"
    );
    for spec in [
        presets::ppi_spec(),
        presets::reddit_spec(),
        presets::yelp_spec(),
        presets::amazon_spec(),
    ] {
        println!(
            "{:<10} {:>10} {:>12} {:>8} {:>6} {}",
            spec.name,
            spec.vertices,
            spec.edges,
            spec.feature_dim,
            spec.classes,
            spec.task.mark()
        );
    }

    header("Realised scaled datasets (experiment defaults)");
    println!(
        "{:<10} {:>10} {:>12} {:>8} {:>6} {:>6} {:>8} {:>8} {:>8}",
        "Dataset", "#Vertices", "#Edges(und)", "Attr", "Cls", "Task", "AvgDeg", "MaxDeg", "LCC%"
    );
    for d in presets::all_scaled(seed()) {
        d.validate().expect("generated dataset must validate");
        let ds = stats::degree_stats(&d.graph);
        let lcc =
            stats::largest_component_size(&d.graph) as f64 / d.graph.num_vertices() as f64 * 100.0;
        println!(
            "{:<10} {:>10} {:>12} {:>8} {:>6} {:>6} {:>8.1} {:>8} {:>7.1}%",
            d.name,
            d.graph.num_vertices(),
            d.num_undirected_edges(),
            d.feature_dim(),
            d.num_classes(),
            d.task.mark(),
            ds.mean,
            ds.max,
            lcc
        );
    }

    if full_mode() {
        header("Full-scale PPI (GSGCN_FULL=1)");
        let d = presets::ppi_full(seed());
        d.validate().expect("full PPI must validate");
        println!("{}", d.table1_row());
        let ds = stats::degree_stats(&d.graph);
        println!(
            "avg degree {:.1} (paper: {:.1}), max degree {}",
            ds.mean,
            2.0 * 225_270.0 / 14_755.0,
            ds.max
        );
    } else {
        println!("\n(run with GSGCN_FULL=1 to also generate + verify full-scale PPI)");
    }
}
