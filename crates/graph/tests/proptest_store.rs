//! Property-based tests of the sharded `GraphStore`: whatever random
//! graph, shard count, or cache budget the generator picks, the mmap
//! backend must be observationally identical to the resident graph —
//! and any on-disk corruption must surface as an error, never as
//! silently different data.

use gsgcn_graph::builder::from_edges;
use gsgcn_graph::store::mmap::MmapStore;
use gsgcn_graph::store::shard::{shard_file_name, verify_store, write_store, write_store_ordered};
use gsgcn_graph::{l_hop_ball, CsrGraph, GraphStore, StoreOrder, Topology};
use gsgcn_tensor::DMatrix;
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// Strategy: a connected-ish random graph (ring + random chords) so
/// L-hop balls actually grow, plus a shard count that forces boundary
/// vertices (down to one-vertex shards) and a deliberately tiny cache
/// budget so eviction churn is part of every case.
fn store_case() -> impl Strategy<Value = (CsrGraph, usize, usize)> {
    (
        3usize..48,
        proptest::collection::vec((0u32..48, 0u32..48), 0..96),
        1usize..9,
        1usize..64,
    )
        .prop_map(|(n, extra, shards, budget_kb)| {
            let mut edges: Vec<(u32, u32)> =
                (0..n as u32).map(|i| (i, (i + 1) % n as u32)).collect();
            edges.extend(
                extra
                    .into_iter()
                    .filter(|&(a, b)| (a as usize) < n && (b as usize) < n && a != b),
            );
            (from_edges(n, &edges), shards, budget_kb * 1024)
        })
}

fn fresh_dir() -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "gsgcn-proptest-store-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed),
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Deterministic per-vertex rows so bitwise comparison is meaningful.
fn feature_rows(n: usize, dim: usize) -> DMatrix {
    DMatrix::from_fn(n, dim, |i, j| ((i * 31 + j * 7) as f32).sin())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The mmap store answers every topology probe, L-hop ball, and
    /// feature gather bit-identically to the resident graph it was
    /// spilled from — across shard boundaries and under eviction.
    #[test]
    fn mmap_store_is_observationally_identical((g, shards, budget) in store_case(), root_seed in any::<u64>()) {
        let n = g.num_vertices();
        let f = feature_rows(n, 5);
        let dir = fresh_dir();
        write_store(&dir, &g, Some(&f), None, shards).unwrap();
        let store = GraphStore::open_with_budget(&dir, budget).unwrap();

        prop_assert_eq!(Topology::num_vertices(&store), n);
        prop_assert_eq!(Topology::num_edges(&store), g.num_edges());
        for v in 0..n as u32 {
            prop_assert!(store.contains(v));
            prop_assert!(store.shard_of(v).is_some());
            prop_assert_eq!(Topology::degree(&store, v), g.degree(v));
            prop_assert_eq!(&*store.neighbors_ref(v), g.neighbors(v), "vertex {}", v);
        }

        // Bit-identical L-hop balls from a few pseudo-random root sets.
        for hops in 1..=3usize {
            let roots: Vec<u32> = (0..4u64)
                .map(|k| ((root_seed.wrapping_mul(2654435761).wrapping_add(k * 97)) % n as u64) as u32)
                .collect();
            let ball_mem = l_hop_ball(&g, &roots, hops);
            let ball_mmap = l_hop_ball(&store, &roots, hops);
            prop_assert_eq!(ball_mem, ball_mmap, "hops {}", hops);
        }

        // Bitwise-equal feature gathers, including duplicate rows.
        let rows: Vec<u32> = (0..n as u32).chain([0, (n - 1) as u32]).collect();
        let mut got = DMatrix::zeros(rows.len(), 5);
        store.gather_features_into(&rows, &mut got).unwrap();
        for (i, &v) in rows.iter().enumerate() {
            prop_assert_eq!(got.row(i), f.row(v as usize), "row {}", v);
        }

        std::fs::remove_dir_all(&dir).ok();
    }

    /// Materializing the store back to memory round-trips the graph and
    /// rows exactly, whatever the partition looked like.
    #[test]
    fn materialize_roundtrips_any_partition((g, shards, budget) in store_case()) {
        let n = g.num_vertices();
        let f = feature_rows(n, 3);
        let dir = fresh_dir();
        write_store(&dir, &g, Some(&f), None, shards).unwrap();
        let store = GraphStore::open_with_budget(&dir, budget).unwrap();
        let (graph, feats, labels) = store.materialize().unwrap();
        prop_assert_eq!(&*graph, &g);
        prop_assert_eq!(&**feats.as_ref().unwrap(), &f);
        prop_assert!(labels.is_none());
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Crash safety: truncating any shard at any point must fail the
    /// open loudly — a partially-written spill can never be read back as
    /// a plausible-but-wrong graph.
    #[test]
    fn truncated_shard_never_reads_back((g, shards, _) in store_case(), pick in any::<u64>()) {
        let n = g.num_vertices();
        let f = feature_rows(n, 3);
        let dir = fresh_dir();
        let manifest = write_store(&dir, &g, Some(&f), None, shards).unwrap();
        let sid = (pick % manifest.shards.len() as u64) as usize;
        let file_len = manifest.shards[sid].file_len;
        prop_assume!(file_len > 0);
        let keep = (pick / 7) % file_len; // strictly shorter than written
        let path = dir.join(shard_file_name(sid));
        let fh = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
        fh.set_len(keep).unwrap();
        drop(fh);
        let err = GraphStore::open_with_budget(&dir, 1 << 20).unwrap_err();
        prop_assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Corruption that preserves file length is invisible to open() but
    /// must be flagged by verify_store — or, if it hits the header, fail
    /// the open. Either way it can never pass both checks.
    #[test]
    fn bitflip_is_always_detected((g, shards, _) in store_case(), pick in any::<u64>()) {
        let n = g.num_vertices();
        let f = feature_rows(n, 3);
        let dir = fresh_dir();
        let manifest = write_store(&dir, &g, Some(&f), None, shards).unwrap();
        let sid = (pick % manifest.shards.len() as u64) as usize;
        let path = dir.join(shard_file_name(sid));
        let mut bytes = std::fs::read(&path).unwrap();
        prop_assume!(!bytes.is_empty());
        let at = ((pick / 3) % bytes.len() as u64) as usize;
        bytes[at] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        let open_failed = GraphStore::open_with_budget(&dir, 1 << 20).is_err();
        let flagged = verify_store(&dir).map(|bad| bad.contains(&sid)).unwrap_or(true);
        prop_assert!(open_failed || flagged, "corrupt shard {} passed open AND verify", sid);
        std::fs::remove_dir_all(&dir).ok();
    }

    /// A bfs- or degree-ordered store is observationally identical to the
    /// natural one: placement moved, but every topology probe, L-hop
    /// ball, and feature gather answers in the user's vertex numbering,
    /// bit for bit — and the recorded mapping is a true inverse pair.
    #[test]
    fn reordered_store_is_observationally_identical((g, shards, budget) in store_case(), root_seed in any::<u64>()) {
        let n = g.num_vertices();
        let f = feature_rows(n, 5);
        for order in [StoreOrder::Bfs, StoreOrder::Degree] {
            let dir = fresh_dir();
            write_store_ordered(&dir, &g, Some(&f), None, shards, order).unwrap();
            prop_assert!(verify_store(&dir).unwrap().is_empty());
            let store = GraphStore::open_with_budget(&dir, budget).unwrap();
            prop_assert_eq!(store.order(), order);

            for v in 0..n as u32 {
                prop_assert_eq!(store.to_external(store.to_internal(v)), v);
                prop_assert_eq!(Topology::degree(&store, v), g.degree(v));
                prop_assert_eq!(&*store.neighbors_ref(v), g.neighbors(v), "{:?} vertex {}", order, v);
            }

            let roots: Vec<u32> = (0..4u64)
                .map(|k| ((root_seed.wrapping_mul(2654435761).wrapping_add(k * 97)) % n as u64) as u32)
                .collect();
            for hops in 1..=3usize {
                prop_assert_eq!(l_hop_ball(&g, &roots, hops), l_hop_ball(&store, &roots, hops));
            }

            let rows: Vec<u32> = (0..n as u32).chain([0, (n - 1) as u32]).collect();
            let mut got = DMatrix::zeros(rows.len(), 5);
            store.gather_features_into(&rows, &mut got).unwrap();
            for (i, &v) in rows.iter().enumerate() {
                prop_assert_eq!(got.row(i), f.row(v as usize), "{:?} row {}", order, v);
            }

            drop(store);
            std::fs::remove_dir_all(&dir).ok();
        }
    }

    /// Turning the prefetcher on never changes any result, whatever the
    /// cache budget — eviction churn, guarded eviction declines, and the
    /// grouped gather path must all be invisible to the reader.
    #[test]
    fn prefetch_on_off_is_observationally_identical((g, shards, budget) in store_case(), root_seed in any::<u64>()) {
        let n = g.num_vertices();
        let f = feature_rows(n, 5);
        let dir = fresh_dir();
        write_store_ordered(&dir, &g, Some(&f), None, shards, StoreOrder::Bfs).unwrap();
        let plain = GraphStore::open_with_budget(&dir, budget).unwrap();
        let pf = GraphStore::Mmap(MmapStore::open_with_prefetch(&dir, budget, true).unwrap());

        // Scattered, duplicated row set exercises the grouped gather.
        let rows: Vec<u32> = (0..2 * n as u64)
            .map(|k| ((root_seed.wrapping_mul(6364136223846793005).wrapping_add(k * 1442695041)) % n as u64) as u32)
            .collect();
        // Hint the prefetcher, then read both stores identically.
        prop_assert!(pf.prefetch_enabled());
        pf.prefetch_nodes(&rows);
        let mut want = DMatrix::zeros(0, 0);
        let mut got = DMatrix::zeros(0, 0);
        plain.gather_features_into(&rows, &mut want).unwrap();
        pf.gather_features_into(&rows, &mut got).unwrap();
        prop_assert_eq!(want.data(), got.data());

        for v in 0..n as u32 {
            prop_assert_eq!(&*pf.neighbors_ref(v), g.neighbors(v), "vertex {}", v);
        }
        let roots: Vec<u32> = rows.iter().take(4).copied().collect();
        prop_assert_eq!(l_hop_ball(&plain, &roots, 2), l_hop_ball(&pf, &roots, 2));

        drop(pf);
        drop(plain);
        std::fs::remove_dir_all(&dir).ok();
    }
}
