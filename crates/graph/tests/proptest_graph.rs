//! Property-based tests of the graph substrate.

use gsgcn_graph::{builder::from_edges, induced_subgraph, BitSet, GraphBuilder};
use proptest::prelude::*;

/// Strategy: a random edge list over `n` vertices.
fn edges_strategy(max_n: usize) -> impl Strategy<Value = (usize, Vec<(u32, u32)>)> {
    (2..max_n).prop_flat_map(|n| {
        let edge = (0..n as u32, 0..n as u32);
        (Just(n), proptest::collection::vec(edge, 0..n * 4))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The builder always yields a symmetric, self-loop-free, sorted CSR.
    #[test]
    fn builder_invariants((n, edges) in edges_strategy(60)) {
        let g = from_edges(n, &edges);
        prop_assert!(g.is_symmetric());
        prop_assert!(!g.has_self_loops());
        for v in 0..n as u32 {
            let nb = g.neighbors(v);
            prop_assert!(nb.windows(2).all(|w| w[0] < w[1]), "unsorted/duplicate adjacency");
        }
    }

    /// Building twice from the same (shuffled) edges gives the same graph.
    #[test]
    fn builder_order_independent((n, mut edges) in edges_strategy(40)) {
        let a = from_edges(n, &edges);
        edges.reverse();
        let b = from_edges(n, &edges);
        prop_assert_eq!(a, b);
    }

    /// Every undirected edge appears exactly twice in directed storage.
    #[test]
    fn edge_count_is_even((n, edges) in edges_strategy(40)) {
        let g = from_edges(n, &edges);
        prop_assert_eq!(g.num_edges() % 2, 0);
    }

    /// Induced subgraph equals the brute-force quadratic reference.
    #[test]
    fn induced_subgraph_matches_bruteforce(
        (n, edges) in edges_strategy(30),
        selector in proptest::collection::vec(any::<bool>(), 30),
    ) {
        let g = from_edges(n, &edges);
        let verts: Vec<u32> = (0..n as u32)
            .filter(|&v| selector.get(v as usize).copied().unwrap_or(false))
            .collect();
        let sub = induced_subgraph(&g, &verts);
        // Reference edge count.
        let mut expect = 0usize;
        for &a in &verts {
            for &b in &verts {
                if g.has_edge(a, b) {
                    expect += 1;
                }
            }
        }
        prop_assert_eq!(sub.graph.num_edges(), expect);
        // Mapping is sorted + correct.
        prop_assert!(sub.origin.windows(2).all(|w| w[0] < w[1]));
        for (local, &orig) in sub.origin.iter().enumerate() {
            prop_assert_eq!(sub.to_original(local as u32), orig);
        }
        // Every subgraph edge exists in the original.
        for (u, v) in sub.graph.edges() {
            prop_assert!(g.has_edge(sub.origin[u as usize], sub.origin[v as usize]));
        }
    }

    /// Subgraph degrees never exceed original degrees.
    #[test]
    fn subgraph_degrees_bounded((n, edges) in edges_strategy(30)) {
        let g = from_edges(n, &edges);
        let verts: Vec<u32> = (0..n as u32).step_by(2).collect();
        let sub = induced_subgraph(&g, &verts);
        for (local, &orig) in sub.origin.iter().enumerate() {
            prop_assert!(sub.graph.degree(local as u32) <= g.degree(orig));
        }
    }

    /// BitSet agrees with a HashSet model under arbitrary operations.
    #[test]
    fn bitset_matches_hashset_model(ops in proptest::collection::vec((0usize..200, any::<bool>()), 1..100)) {
        let mut bs = BitSet::new(200);
        let mut model = std::collections::HashSet::new();
        for (i, insert) in ops {
            if insert {
                let was_new = bs.insert(i);
                prop_assert_eq!(was_new, model.insert(i));
            } else {
                bs.remove(i);
                model.remove(&i);
            }
        }
        prop_assert_eq!(bs.count(), model.len());
        let mut from_iter: Vec<usize> = bs.iter().collect();
        let mut expect: Vec<usize> = model.into_iter().collect();
        from_iter.sort_unstable();
        expect.sort_unstable();
        prop_assert_eq!(from_iter, expect);
    }

    /// Binary I/O round-trips arbitrary graphs.
    #[test]
    fn binary_io_roundtrip((n, edges) in edges_strategy(40)) {
        let g = from_edges(n, &edges);
        let bytes = gsgcn_graph::io::to_bytes(&g);
        let back = gsgcn_graph::io::from_bytes(bytes).unwrap();
        prop_assert_eq!(g, back);
    }

    /// Directed builder preserves exactly the deduplicated edge set.
    #[test]
    fn directed_builder_preserves_edges((n, edges) in edges_strategy(30)) {
        let g = GraphBuilder::new(n)
            .symmetric(false)
            .drop_self_loops(false)
            .add_edges(edges.iter().copied())
            .build();
        let mut expect: Vec<(u32, u32)> = edges.clone();
        expect.sort_unstable();
        expect.dedup();
        let got: Vec<(u32, u32)> = g.edges().collect();
        prop_assert_eq!(got, expect);
    }
}
