//! Graph statistics used to validate sampler quality.
//!
//! Section III-C of the paper requires the sampler to "preserve the
//! connectivity characteristics in the training graph". This module
//! provides the measures we compare between the training graph and sampled
//! subgraphs: degree distribution (histogram + moments), clustering
//! coefficient, and connected components. These back both unit tests and
//! the `sampler_explorer` example.

use crate::csr::CsrGraph;
use rayon::prelude::*;

/// Summary statistics of a graph's degree distribution.
#[derive(Clone, Debug, PartialEq)]
pub struct DegreeStats {
    pub min: usize,
    pub max: usize,
    pub mean: f64,
    pub std_dev: f64,
    /// Fraction of vertices with degree 0.
    pub isolated_fraction: f64,
}

/// Compute degree summary statistics.
pub fn degree_stats(g: &CsrGraph) -> DegreeStats {
    let n = g.num_vertices();
    if n == 0 {
        return DegreeStats {
            min: 0,
            max: 0,
            mean: 0.0,
            std_dev: 0.0,
            isolated_fraction: 0.0,
        };
    }
    let degs: Vec<usize> = (0..n as u32).map(|v| g.degree(v)).collect();
    let min = *degs.iter().min().unwrap();
    let max = *degs.iter().max().unwrap();
    let mean = degs.iter().sum::<usize>() as f64 / n as f64;
    let var = degs
        .iter()
        .map(|&d| {
            let x = d as f64 - mean;
            x * x
        })
        .sum::<f64>()
        / n as f64;
    let isolated = degs.iter().filter(|&&d| d == 0).count();
    DegreeStats {
        min,
        max,
        mean,
        std_dev: var.sqrt(),
        isolated_fraction: isolated as f64 / n as f64,
    }
}

/// Degree histogram with log-2 buckets: bucket `i` counts vertices with
/// degree in `[2^i, 2^{i+1})`; bucket 0 additionally holds degree-0 and 1.
pub fn degree_histogram_log2(g: &CsrGraph) -> Vec<usize> {
    let mut hist = vec![0usize; 33];
    for v in 0..g.num_vertices() as u32 {
        let d = g.degree(v);
        let b = if d <= 1 {
            0
        } else {
            (usize::BITS - d.leading_zeros()) as usize - 1
        };
        hist[b] += 1;
    }
    while hist.len() > 1 && *hist.last().unwrap() == 0 {
        hist.pop();
    }
    hist
}

/// Normalised degree-histogram distance between two graphs in [0, 1]
/// (total-variation distance over log-2 degree buckets). Small values mean
/// the subgraph preserves the degree shape of the original graph.
pub fn degree_distribution_distance(a: &CsrGraph, b: &CsrGraph) -> f64 {
    let (ha, hb) = (degree_histogram_log2(a), degree_histogram_log2(b));
    let (na, nb) = (
        a.num_vertices().max(1) as f64,
        b.num_vertices().max(1) as f64,
    );
    let len = ha.len().max(hb.len());
    let mut tv = 0.0;
    for i in 0..len {
        let pa = ha.get(i).copied().unwrap_or(0) as f64 / na;
        let pb = hb.get(i).copied().unwrap_or(0) as f64 / nb;
        tv += (pa - pb).abs();
    }
    tv / 2.0
}

/// Exact global clustering coefficient: `3·#triangles / #wedges`.
///
/// Counts each triangle via sorted-adjacency intersection; parallel over
/// vertices. Intended for the modest graph sizes used in tests/examples.
pub fn clustering_coefficient(g: &CsrGraph) -> f64 {
    let n = g.num_vertices();
    if n == 0 {
        return 0.0;
    }
    let (tri2, wedges): (usize, usize) = (0..n as u32)
        .into_par_iter()
        .map(|v| {
            let nv = g.neighbors(v);
            let d = nv.len();
            let wedge = if d >= 2 { d * (d - 1) / 2 } else { 0 };
            // Closed wedges centred at v: adjacent neighbor pairs.
            let mut closed = 0usize;
            for (i, &a) in nv.iter().enumerate() {
                for &b in &nv[i + 1..] {
                    if a != b && g.has_edge(a, b) {
                        closed += 1;
                    }
                }
            }
            (closed, wedge)
        })
        .reduce(|| (0, 0), |x, y| (x.0 + y.0, x.1 + y.1));
    if wedges == 0 {
        0.0
    } else {
        tri2 as f64 / wedges as f64
    }
}

/// Connected components by BFS; returns `(component_id per vertex, count)`.
pub fn connected_components(g: &CsrGraph) -> (Vec<u32>, usize) {
    let n = g.num_vertices();
    let mut comp = vec![u32::MAX; n];
    let mut count = 0u32;
    let mut queue = Vec::new();
    for s in 0..n {
        if comp[s] != u32::MAX {
            continue;
        }
        comp[s] = count;
        queue.push(s as u32);
        while let Some(v) = queue.pop() {
            for &u in g.neighbors(v) {
                if comp[u as usize] == u32::MAX {
                    comp[u as usize] = count;
                    queue.push(u);
                }
            }
        }
        count += 1;
    }
    (comp, count as usize)
}

/// Size of the largest connected component.
pub fn largest_component_size(g: &CsrGraph) -> usize {
    let (comp, count) = connected_components(g);
    if count == 0 {
        return 0;
    }
    let mut sizes = vec![0usize; count];
    for &c in &comp {
        sizes[c as usize] += 1;
    }
    sizes.into_iter().max().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::from_edges;

    #[test]
    fn degree_stats_on_star() {
        // Star: center 0 with 4 leaves.
        let g = from_edges(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]);
        let s = degree_stats(&g);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 4);
        assert!((s.mean - 8.0 / 5.0).abs() < 1e-12);
        assert_eq!(s.isolated_fraction, 0.0);
    }

    #[test]
    fn histogram_buckets() {
        let g = from_edges(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]);
        let h = degree_histogram_log2(&g);
        // Degrees: [4,1,1,1,1] → bucket0 (deg≤1): 4 vertices, bucket2 ([4,8)): 1.
        assert_eq!(h[0], 4);
        assert_eq!(h[2], 1);
    }

    #[test]
    fn distribution_distance_zero_for_same_graph() {
        let g = from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        assert_eq!(degree_distribution_distance(&g, &g), 0.0);
    }

    #[test]
    fn distribution_distance_positive_for_different() {
        let path = from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let star = from_edges(4, &[(0, 1), (0, 2), (0, 3)]);
        assert!(degree_distribution_distance(&path, &star) > 0.0);
    }

    #[test]
    fn clustering_triangle_is_one() {
        let g = from_edges(3, &[(0, 1), (1, 2), (2, 0)]);
        assert!((clustering_coefficient(&g) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn clustering_path_is_zero() {
        let g = from_edges(3, &[(0, 1), (1, 2)]);
        assert_eq!(clustering_coefficient(&g), 0.0);
    }

    #[test]
    fn clustering_mixed() {
        // Triangle 0-1-2 plus pendant 3 on vertex 0.
        let g = from_edges(4, &[(0, 1), (1, 2), (2, 0), (0, 3)]);
        // Wedges: v0 has deg3 → 3, v1 deg2 → 1, v2 deg2 → 1, v3 → 0. Total 5.
        // Closed: v0 1, v1 1, v2 1. Total 3 → coefficient 3/5.
        assert!((clustering_coefficient(&g) - 0.6).abs() < 1e-12);
    }

    #[test]
    fn components_counts() {
        let g = from_edges(6, &[(0, 1), (1, 2), (3, 4)]);
        let (comp, count) = connected_components(&g);
        assert_eq!(count, 3); // {0,1,2}, {3,4}, {5}
        assert_eq!(comp[0], comp[1]);
        assert_eq!(comp[1], comp[2]);
        assert_eq!(comp[3], comp[4]);
        assert_ne!(comp[0], comp[3]);
        assert_ne!(comp[0], comp[5]);
        assert_eq!(largest_component_size(&g), 3);
    }

    #[test]
    fn empty_graph_stats() {
        let g = CsrGraph::empty(0);
        let s = degree_stats(&g);
        assert_eq!(s.mean, 0.0);
        assert_eq!(clustering_coefficient(&g), 0.0);
        assert_eq!(connected_components(&g).1, 0);
    }
}
