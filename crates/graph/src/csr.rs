//! Compressed-sparse-row graph representation.
//!
//! The CSR layout stores all adjacency lists back to back in one `Vec<u32>`
//! with an offsets array delimiting per-vertex ranges. This is the layout
//! assumed by the paper's feature-propagation model (Sec. V-B): "using CSR
//! format, the neighbor lists of vertices can be streamed into the
//! processor, without the need to stay in cache".

/// An immutable graph in compressed-sparse-row form.
///
/// Vertex ids are `u32` (graphs up to ~4.2 B vertices); edge endpoints are
/// stored once per direction, so an undirected graph built through
/// [`crate::GraphBuilder::symmetric`] has `2·|E|` stored (directed) edges.
///
/// Serialisation goes through the explicit binary/text formats in
/// [`crate::io`] (the build environment has no serde; the derives the seed
/// carried were unused).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CsrGraph {
    /// `offsets[v]..offsets[v+1]` delimits the adjacency list of `v`.
    offsets: Vec<usize>,
    /// Concatenated adjacency lists, each sorted ascending.
    adj: Vec<u32>,
}

impl CsrGraph {
    /// Build directly from raw CSR arrays.
    ///
    /// # Panics
    /// Panics if the offsets array is malformed (not monotone, wrong length,
    /// or last offset ≠ `adj.len()`) or any target id is out of range.
    pub fn from_raw(offsets: Vec<usize>, adj: Vec<u32>) -> Self {
        assert!(!offsets.is_empty(), "offsets must have at least one entry");
        assert_eq!(
            *offsets.last().unwrap(),
            adj.len(),
            "last offset must equal adjacency length"
        );
        assert!(
            offsets.windows(2).all(|w| w[0] <= w[1]),
            "offsets must be non-decreasing"
        );
        let n = offsets.len() - 1;
        assert!(
            adj.iter().all(|&t| (t as usize) < n),
            "adjacency target out of range"
        );
        CsrGraph { offsets, adj }
    }

    /// An empty graph with `n` isolated vertices.
    pub fn empty(n: usize) -> Self {
        CsrGraph {
            offsets: vec![0; n + 1],
            adj: Vec::new(),
        }
    }

    /// Number of vertices `|V|`.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of *directed* edges stored (an undirected edge counts twice).
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.adj.len()
    }

    /// Out-degree of vertex `v`.
    #[inline]
    pub fn degree(&self, v: u32) -> usize {
        let v = v as usize;
        self.offsets[v + 1] - self.offsets[v]
    }

    /// Average degree `d̄ = |E| / |V|` (directed-edge count over vertices).
    #[inline]
    pub fn avg_degree(&self) -> f64 {
        if self.num_vertices() == 0 {
            0.0
        } else {
            self.num_edges() as f64 / self.num_vertices() as f64
        }
    }

    /// Maximum degree over all vertices.
    pub fn max_degree(&self) -> usize {
        (0..self.num_vertices() as u32)
            .map(|v| self.degree(v))
            .max()
            .unwrap_or(0)
    }

    /// The sorted adjacency list of `v`.
    #[inline]
    pub fn neighbors(&self, v: u32) -> &[u32] {
        let v = v as usize;
        &self.adj[self.offsets[v]..self.offsets[v + 1]]
    }

    /// The `k`-th neighbor of `v` (0-based); used by samplers for O(1)
    /// uniform neighbor selection.
    #[inline]
    pub fn neighbor(&self, v: u32, k: usize) -> u32 {
        debug_assert!(k < self.degree(v));
        self.adj[self.offsets[v as usize] + k]
    }

    /// Whether the directed edge `(u, v)` exists (binary search).
    #[inline]
    pub fn has_edge(&self, u: u32, v: u32) -> bool {
        self.neighbors(u).binary_search(&v).is_ok()
    }

    /// Raw offsets array (length `|V|+1`).
    #[inline]
    pub fn offsets(&self) -> &[usize] {
        &self.offsets
    }

    /// Raw concatenated adjacency array.
    #[inline]
    pub fn adjacency(&self) -> &[u32] {
        &self.adj
    }

    /// Iterate over all directed edges `(u, v)`.
    pub fn edges(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        (0..self.num_vertices() as u32)
            .flat_map(move |u| self.neighbors(u).iter().map(move |&v| (u, v)))
    }

    /// Iterate over vertex ids `0..|V|`.
    pub fn vertices(&self) -> impl Iterator<Item = u32> {
        0..self.num_vertices() as u32
    }

    /// True if every edge `(u,v)` has its reverse `(v,u)` — i.e. the graph
    /// is a valid undirected graph in symmetric-directed encoding.
    pub fn is_symmetric(&self) -> bool {
        self.edges().all(|(u, v)| self.has_edge(v, u))
    }

    /// True if any vertex has a self-loop.
    pub fn has_self_loops(&self) -> bool {
        self.edges().any(|(u, v)| u == v)
    }

    /// Degrees of all vertices as a vector (parallel-friendly accessor).
    pub fn degrees(&self) -> Vec<u32> {
        (0..self.num_vertices())
            .map(|v| (self.offsets[v + 1] - self.offsets[v]) as u32)
            .collect()
    }

    /// Approximate in-memory footprint in bytes (arrays only).
    pub fn memory_bytes(&self) -> usize {
        self.offsets.len() * std::mem::size_of::<usize>()
            + self.adj.len() * std::mem::size_of::<u32>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path3() -> CsrGraph {
        // 0 - 1 - 2 undirected path
        CsrGraph::from_raw(vec![0, 1, 3, 4], vec![1, 0, 2, 1])
    }

    #[test]
    fn basic_accessors() {
        let g = path3();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(1), 2);
        assert_eq!(g.neighbors(1), &[0, 2]);
        assert_eq!(g.neighbor(1, 1), 2);
        assert!((g.avg_degree() - 4.0 / 3.0).abs() < 1e-12);
        assert_eq!(g.max_degree(), 2);
    }

    #[test]
    fn edge_queries() {
        let g = path3();
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
        assert!(!g.has_edge(0, 2));
        assert!(g.is_symmetric());
        assert!(!g.has_self_loops());
    }

    #[test]
    fn edge_iterator_yields_all_directed_edges() {
        let g = path3();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges, vec![(0, 1), (1, 0), (1, 2), (2, 1)]);
    }

    #[test]
    fn empty_graph() {
        let g = CsrGraph::empty(5);
        assert_eq!(g.num_vertices(), 5);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.avg_degree(), 0.0);
        assert_eq!(g.max_degree(), 0);
        assert!(g.is_symmetric());
    }

    #[test]
    fn zero_vertex_graph() {
        let g = CsrGraph::empty(0);
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.avg_degree(), 0.0);
    }

    #[test]
    fn degrees_vector_matches() {
        let g = path3();
        assert_eq!(g.degrees(), vec![1, 2, 1]);
    }

    #[test]
    #[should_panic(expected = "last offset")]
    fn malformed_offsets_rejected() {
        CsrGraph::from_raw(vec![0, 1, 2], vec![1, 0, 0]);
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn decreasing_offsets_rejected() {
        CsrGraph::from_raw(vec![0, 2, 1, 3], vec![1, 0, 2]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_target_rejected() {
        CsrGraph::from_raw(vec![0, 1], vec![5]);
    }

    #[test]
    fn detects_asymmetry_and_self_loops() {
        // Directed edge 0->1 only, self loop at 2.
        let g = CsrGraph::from_raw(vec![0, 1, 1, 2], vec![1, 2]);
        assert!(!g.is_symmetric());
        assert!(g.has_self_loops());
    }
}
