//! Vertex partitioners.
//!
//! Theorem 2 of the paper argues that *feature-only* partitioning (P = 1)
//! is a 2-approximation of the communication-minimal 2-D scheme, so the
//! production propagation kernel never partitions the graph. These
//! partitioners exist to *implement the alternative* — the `P > 1` schemes
//! the theorem compares against — for the partitioning ablation bench, and
//! to measure the replication factor `γ_P = |V_src^{(i)}| / |V|`.

use crate::csr::CsrGraph;

/// A disjoint vertex partitioning into `P` parts.
#[derive(Clone, Debug)]
pub struct VertexPartition {
    /// `part[v]` = partition id of vertex `v`.
    pub part: Vec<u32>,
    /// Number of partitions.
    pub num_parts: usize,
}

impl VertexPartition {
    /// The vertices of partition `i`, in ascending order.
    pub fn members(&self, i: u32) -> Vec<u32> {
        self.part
            .iter()
            .enumerate()
            .filter(|(_, &p)| p == i)
            .map(|(v, _)| v as u32)
            .collect()
    }

    /// Sizes of all partitions.
    pub fn sizes(&self) -> Vec<usize> {
        let mut s = vec![0usize; self.num_parts];
        for &p in &self.part {
            s[p as usize] += 1;
        }
        s
    }
}

/// Contiguous range partitioning: vertex `v` goes to part `v·P / n`.
/// Zero preprocessing cost; the scheme the paper's cost model assumes when
/// it bounds `1/P ≤ γ_P ≤ 1`.
pub fn range_partition(n: usize, p: usize) -> VertexPartition {
    assert!(p >= 1);
    let part = (0..n).map(|v| ((v * p) / n.max(1)) as u32).collect();
    VertexPartition { part, num_parts: p }
}

/// BFS-grown partitioning: grow each part from an unvisited seed until it
/// reaches `⌈n/P⌉` vertices. Produces locality-aware parts with lower edge
/// cut than range partitioning on community-structured graphs, at the cost
/// of a sequential preprocessing pass — exactly the preprocessing overhead
/// Sec. V-B says feature-only partitioning avoids.
pub fn bfs_partition(g: &CsrGraph, p: usize) -> VertexPartition {
    assert!(p >= 1);
    let n = g.num_vertices();
    let target = n.div_ceil(p);
    let mut part = vec![u32::MAX; n];
    let mut current = 0u32;
    let mut filled = 0usize;
    let mut queue = std::collections::VecDeque::new();
    for seed in 0..n {
        if part[seed] != u32::MAX {
            continue;
        }
        queue.push_back(seed as u32);
        part[seed] = current;
        filled += 1;
        while let Some(v) = queue.pop_front() {
            for &u in g.neighbors(v) {
                if part[u as usize] == u32::MAX {
                    if filled == target && (current as usize) < p - 1 {
                        current += 1;
                        filled = 0;
                    }
                    part[u as usize] = current;
                    filled += 1;
                    queue.push_back(u);
                }
            }
        }
    }
    VertexPartition { part, num_parts: p }
}

/// Replication factor `γ_P`: the average over partitions of
/// `|V_src^{(i)}|/|V|`, where `V_src^{(i)}` is the set of vertices sending
/// features into partition `i` (including the partition's own vertices via
/// self-connections, Sec. V-B).
pub fn replication_factor(g: &CsrGraph, partition: &VertexPartition) -> f64 {
    let n = g.num_vertices();
    if n == 0 {
        return 0.0;
    }
    let p = partition.num_parts;
    let mut total_src = 0usize;
    let mut seen = vec![u32::MAX; n]; // last partition that counted v
    for i in 0..p as u32 {
        let mut count = 0usize;
        for v in 0..n as u32 {
            if partition.part[v as usize] != i {
                continue;
            }
            // v itself is a source (self-connection).
            if seen[v as usize] != i {
                seen[v as usize] = i;
                count += 1;
            }
            for &u in g.neighbors(v) {
                if seen[u as usize] != i {
                    seen[u as usize] = i;
                    count += 1;
                }
            }
        }
        total_src += count;
    }
    total_src as f64 / (n as f64 * p as f64)
}

/// Number of cut edges (endpoints in different parts), counted per
/// directed edge.
pub fn edge_cut(g: &CsrGraph, partition: &VertexPartition) -> usize {
    g.edges()
        .filter(|&(u, v)| partition.part[u as usize] != partition.part[v as usize])
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::from_edges;

    fn ring(n: usize) -> CsrGraph {
        let edges: Vec<_> = (0..n as u32).map(|i| (i, (i + 1) % n as u32)).collect();
        from_edges(n, &edges)
    }

    #[test]
    fn range_partition_balanced() {
        let p = range_partition(10, 3);
        let sizes = p.sizes();
        assert_eq!(sizes.iter().sum::<usize>(), 10);
        assert!(sizes.iter().all(|&s| (3..=4).contains(&s)));
    }

    #[test]
    fn range_partition_single_part() {
        let p = range_partition(5, 1);
        assert!(p.part.iter().all(|&x| x == 0));
    }

    #[test]
    fn members_ascending() {
        let p = range_partition(6, 2);
        assert_eq!(p.members(0), vec![0, 1, 2]);
        assert_eq!(p.members(1), vec![3, 4, 5]);
    }

    #[test]
    fn bfs_partition_covers_all() {
        let g = ring(12);
        let p = bfs_partition(&g, 3);
        assert!(p.part.iter().all(|&x| (x as usize) < 3));
        assert_eq!(p.sizes().iter().sum::<usize>(), 12);
    }

    #[test]
    fn bfs_partition_locality_on_ring() {
        // BFS grows each part as at most two arcs of the ring (the frontier
        // expands in both directions), so each part contributes at most 4
        // boundaries → ≤ 2·4·P directed cut edges; random assignment would
        // expect (1 − 1/P)·2n = 36.
        let g = ring(24);
        let p = bfs_partition(&g, 4);
        assert!(edge_cut(&g, &p) <= 32);
    }

    #[test]
    fn replication_factor_bounds() {
        let g = ring(16);
        for parts in [1, 2, 4] {
            let p = range_partition(16, parts);
            let gamma = replication_factor(&g, &p);
            assert!(
                gamma >= 1.0 / parts as f64 - 1e-9 && gamma <= 1.0 + 1e-9,
                "gamma {gamma} out of bounds for P={parts}"
            );
        }
    }

    #[test]
    fn replication_factor_single_part_is_one() {
        let g = ring(8);
        let p = range_partition(8, 1);
        assert!((replication_factor(&g, &p) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn edge_cut_zero_for_single_part() {
        let g = ring(8);
        let p = range_partition(8, 1);
        assert_eq!(edge_cut(&g, &p), 0);
    }
}
