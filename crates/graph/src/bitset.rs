//! A compact fixed-size bitset for vertex-membership tests.
//!
//! Induced-subgraph extraction (Alg. 2 line 8) needs an O(1) "is this vertex
//! in `V_sub`?" test that is cheap to build and cache-friendly; a `u64`-word
//! bitset over `|V|` bits beats hashing for the graph sizes in play.

/// Fixed-capacity bitset over `0..len` indices.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BitSet {
    words: Vec<u64>,
    len: usize,
}

impl BitSet {
    /// A bitset with capacity for `len` bits, all clear.
    pub fn new(len: usize) -> Self {
        BitSet {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Build from an iterator of set indices.
    pub fn from_indices<I: IntoIterator<Item = u32>>(len: usize, it: I) -> Self {
        let mut bs = Self::new(len);
        for i in it {
            bs.insert(i as usize);
        }
        bs
    }

    /// Capacity in bits.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.len
    }

    /// Set bit `i`. Returns whether the bit was previously clear.
    #[inline]
    pub fn insert(&mut self, i: usize) -> bool {
        debug_assert!(i < self.len);
        let (w, b) = (i / 64, i % 64);
        let was = self.words[w] & (1 << b) == 0;
        self.words[w] |= 1 << b;
        was
    }

    /// Clear bit `i`.
    #[inline]
    pub fn remove(&mut self, i: usize) {
        debug_assert!(i < self.len);
        self.words[i / 64] &= !(1 << (i % 64));
    }

    /// Test bit `i`.
    #[inline]
    pub fn contains(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        self.words[i / 64] & (1 << (i % 64)) != 0
    }

    /// Number of set bits.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Clear all bits.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// Iterate over set indices in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut bits = w;
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let b = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    Some(wi * 64 + b)
                }
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut bs = BitSet::new(130);
        assert!(bs.insert(0));
        assert!(bs.insert(64));
        assert!(bs.insert(129));
        assert!(!bs.insert(64)); // already set
        assert!(bs.contains(0) && bs.contains(64) && bs.contains(129));
        assert!(!bs.contains(1));
        bs.remove(64);
        assert!(!bs.contains(64));
        assert_eq!(bs.count(), 2);
    }

    #[test]
    fn iter_ascending() {
        let bs = BitSet::from_indices(200, [5u32, 199, 63, 64, 65]);
        let got: Vec<usize> = bs.iter().collect();
        assert_eq!(got, vec![5, 63, 64, 65, 199]);
    }

    #[test]
    fn clear_resets() {
        let mut bs = BitSet::from_indices(10, [1u32, 2, 3]);
        bs.clear();
        assert_eq!(bs.count(), 0);
        assert!(!bs.contains(1));
    }

    #[test]
    fn empty_and_boundary() {
        let bs = BitSet::new(0);
        assert_eq!(bs.count(), 0);
        let mut bs = BitSet::new(64);
        bs.insert(63);
        assert!(bs.contains(63));
        assert_eq!(bs.iter().collect::<Vec<_>>(), vec![63]);
    }
}
