//! Graph substrate for the graph-sampling-based GCN (IPDPS 2019 reproduction).
//!
//! This crate provides the fundamental graph machinery every other crate in
//! the workspace builds on:
//!
//! * [`CsrGraph`] — a compact, immutable compressed-sparse-row graph with
//!   `u32` vertex ids, optimised for the streaming access pattern of the
//!   feature-propagation kernel (Sec. V of the paper).
//! * [`GraphBuilder`] — edge-list ingestion with deduplication, optional
//!   symmetrisation (undirected closure) and self-loop removal.
//! * [`subgraph`] — parallel extraction of the *induced* subgraph on a
//!   vertex set, the output side of the frontier sampler (Alg. 2, line 8).
//! * [`neighborhood`] — L-hop ball extraction around a query node set,
//!   the inference-side counterpart of subgraph sampling: a K-node batch
//!   runs forward on its K-rooted L-hop induced subgraph instead of the
//!   full graph (exact at the roots — see the module docs).
//! * [`stats`] — degree/connectivity statistics used to verify that sampled
//!   subgraphs preserve the connectivity characteristics of the training
//!   graph (Sec. III-C requirement 1).
//! * [`partition`] — vertex partitioners used by the 2-D partitioned
//!   propagation ablation (Theorem 2 compares against graph partitioning)
//!   and by the shard writer (BFS-grown locality-aware shards).
//! * [`io`] — text edge-list and compact binary (de)serialisation.
//! * [`store`] — the [`GraphStore`] abstraction over *where the graph
//!   lives*: fully resident ([`store::MemStore`]) or memory-mapped CSR
//!   shards behind a CLOCK cache with a bounded mapped-byte budget
//!   ([`store::MmapStore`]), selected by `--graph-store` /
//!   `GSGCN_GRAPH_STORE`. Consumers read topology through the object-safe
//!   [`Topology`] trait, which [`CsrGraph`] also implements — out-of-core
//!   access is a backend swap, not an API fork. See the `store` module
//!   docs for the shard format spec, cache policy and consistency rules.
//!
//! # Example
//!
//! ```
//! use gsgcn_graph::GraphBuilder;
//!
//! let g = GraphBuilder::new(4)
//!     .add_edge(0, 1)
//!     .add_edge(1, 2)
//!     .add_edge(2, 3)
//!     .symmetric(true)
//!     .build();
//! assert_eq!(g.num_vertices(), 4);
//! assert_eq!(g.degree(1), 2);
//! ```

pub mod bitset;
pub mod builder;
pub mod csr;
pub mod io;
pub mod neighborhood;
pub mod partition;
pub mod stats;
pub mod store;
pub mod subgraph;

pub use bitset::BitSet;
pub use builder::GraphBuilder;
pub use csr::CsrGraph;
pub use neighborhood::{
    l_hop_ball, l_hop_subgraph, one_hop_frontier, FrontierBall, NeighborhoodBatch,
};
pub use store::{GraphStore, NeighborsRef, StoreBackend, StoreCacheStats, StoreOrder, Topology};
pub use subgraph::{induced_subgraph, InducedSubgraph};
