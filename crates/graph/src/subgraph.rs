//! Parallel induced-subgraph extraction (Alg. 2, line 8: "Subgraph of G
//! induced by V_sub").
//!
//! Given the vertex set produced by a sampler, this module relabels the
//! vertices to `0..|V_sub|` and gathers every edge of the original graph
//! whose two endpoints both lie in the set. Extraction is embarrassingly
//! parallel over the (sorted) vertex set and runs every training iteration,
//! so it must be cheap: one bitset build + one counting pass + one fill
//! pass, all `O(Σ_{v∈V_sub} deg(v))`. Against a shard-backed topology the
//! two passes instead walk the vertex set grouped by physical shard (with
//! a prefetch hint one group ahead) — same output, but a bounded shard
//! cache sees one run per shard rather than `|V_sub|` scattered probes.

use crate::bitset::BitSet;
use crate::csr::CsrGraph;
use crate::store::Topology;
use rayon::prelude::*;

/// An induced subgraph plus the mapping back to original vertex ids.
#[derive(Clone, Debug)]
pub struct InducedSubgraph {
    /// The subgraph over relabelled vertices `0..k`.
    pub graph: CsrGraph,
    /// `origin[i]` is the original id of subgraph vertex `i` (sorted ascending).
    pub origin: Vec<u32>,
}

impl InducedSubgraph {
    /// Number of vertices in the subgraph.
    pub fn num_vertices(&self) -> usize {
        self.graph.num_vertices()
    }

    /// Map a subgraph-local id back to the original graph id.
    #[inline]
    pub fn to_original(&self, local: u32) -> u32 {
        self.origin[local as usize]
    }
}

/// Extract the subgraph of `g` induced by `vertices`.
///
/// `vertices` may be unsorted and contain duplicates; the output vertex
/// order is the ascending original-id order, which keeps feature gathers
/// (`H[V_sub]`, Alg. 1 line 5) sequential in the original feature matrix.
///
/// Generic over [`Topology`] so the same extraction runs against a
/// resident `CsrGraph` or a shard-backed `GraphStore` (including via
/// `&dyn Topology`) — the output is bit-identical either way because both
/// expose the same neighbor order.
pub fn induced_subgraph<T: Topology + ?Sized>(g: &T, vertices: &[u32]) -> InducedSubgraph {
    let mut origin: Vec<u32> = vertices.to_vec();
    origin.sort_unstable();
    origin.dedup();

    let n = g.num_vertices();
    let member = BitSet::from_indices(n, origin.iter().copied());

    // Dense relabel table: original id -> local id (u32::MAX = absent).
    // For repeated per-iteration extraction on large graphs a scratch
    // buffer could be reused; the allocation is O(|V|) and in practice
    // dwarfed by edge gathering, so we keep the API stateless.
    let mut relabel = vec![u32::MAX; n];
    for (local, &orig) in origin.iter().enumerate() {
        relabel[orig as usize] = local as u32;
    }

    // Shard-backed topology: visit vertices grouped by physical shard.
    // `origin` is sorted by *external* id, which a locality-aware
    // placement deliberately scatters across shards — scanned in that
    // order, a bounded shard cache would see |V_sub| scattered probes
    // instead of one run per shard. Each output cell is owned by exactly
    // one vertex, so visit order cannot change the result.
    let groups = locality_groups(g, &origin);

    // Pass 1: count retained neighbors per subgraph vertex.
    let counts: Vec<usize> = if let Some(groups) = &groups {
        let mut counts = vec![0usize; origin.len()];
        for_each_grouped(g, &origin, groups, |i, v| {
            counts[i] = g
                .neighbors_ref(v)
                .iter()
                .filter(|&&u| member.contains(u as usize))
                .count();
        });
        counts
    } else {
        origin
            .par_iter()
            .map(|&v| {
                g.neighbors_ref(v)
                    .iter()
                    .filter(|&&u| member.contains(u as usize))
                    .count()
            })
            .collect()
    };

    let mut offsets = vec![0usize; origin.len() + 1];
    for (i, &c) in counts.iter().enumerate() {
        offsets[i + 1] = offsets[i] + c;
    }

    // Pass 2: fill adjacency — each local vertex owns a disjoint output
    // range, so the parallel (and the shard-grouped) writes are
    // race-free.
    let total = offsets[origin.len()];
    let mut adj = vec![0u32; total];
    {
        // Split the output buffer into per-vertex slices.
        let mut slices: Vec<&mut [u32]> = Vec::with_capacity(origin.len());
        let mut rest: &mut [u32] = &mut adj;
        for &count in counts.iter().take(origin.len()) {
            let (head, tail) = rest.split_at_mut(count);
            slices.push(head);
            rest = tail;
        }
        let fill = |out: &mut [u32], v: u32| {
            let mut k = 0;
            for &u in g.neighbors_ref(v).iter() {
                if member.contains(u as usize) {
                    out[k] = relabel[u as usize];
                    k += 1;
                }
            }
            debug_assert_eq!(k, out.len());
        };
        if let Some(groups) = &groups {
            for_each_grouped(g, &origin, groups, |i, v| fill(slices[i], v));
        } else {
            slices
                .par_iter_mut()
                .zip(origin.par_iter())
                .for_each(|(out, &v)| fill(out, v));
        }
    }

    InducedSubgraph {
        graph: CsrGraph::from_raw(offsets, adj),
        origin,
    }
}

/// Group descriptor for shard-grouped passes: origin indices reordered so
/// same-shard vertices are contiguous, plus the group boundaries.
struct LocalityGroups {
    /// Origin indices, stably sorted by locality group (within a group
    /// the ascending-id origin order is preserved).
    visit: Vec<u32>,
    /// Half-open ranges of `visit`, one per non-empty group.
    bounds: Vec<std::ops::Range<usize>>,
}

/// Build the shard grouping for `origin`, or `None` when the topology is
/// resident (a single group — the existing parallel passes are better).
fn locality_groups<T: Topology + ?Sized>(g: &T, origin: &[u32]) -> Option<LocalityGroups> {
    if g.num_locality_groups() <= 1 || origin.len() <= 1 {
        return None;
    }
    let mut keyed: Vec<(u32, u32)> = origin
        .iter()
        .enumerate()
        .map(|(i, &v)| (g.locality_group(v), i as u32))
        .collect();
    keyed.sort_by_key(|&(grp, _)| grp);
    let mut bounds = Vec::new();
    let mut start = 0;
    for i in 1..=keyed.len() {
        if i == keyed.len() || keyed[i].0 != keyed[start].0 {
            bounds.push(start..i);
            start = i;
        }
    }
    Some(LocalityGroups {
        visit: keyed.into_iter().map(|(_, i)| i).collect(),
        bounds,
    })
}

/// Run `f(origin_index, vertex)` over every vertex one locality group at
/// a time, hinting the next group to the prefetcher while the current one
/// is scanned (one vertex per group is enough — the hint dedups to the
/// group's shard).
fn for_each_grouped<T: Topology + ?Sized>(
    g: &T,
    origin: &[u32],
    groups: &LocalityGroups,
    mut f: impl FnMut(usize, u32),
) {
    for (gi, range) in groups.bounds.iter().enumerate() {
        if let Some(next) = groups.bounds.get(gi + 1) {
            g.prefetch_hint(&[origin[groups.visit[next.start] as usize]]);
        }
        for &i in &groups.visit[range.clone()] {
            f(i as usize, origin[i as usize]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::from_edges;

    fn sample_graph() -> CsrGraph {
        // 0-1, 1-2, 2-3, 3-0, 1-3 (a square with one diagonal), plus 4-5.
        from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 0), (1, 3), (4, 5)])
    }

    #[test]
    fn induces_correct_edges() {
        let g = sample_graph();
        let sub = induced_subgraph(&g, &[0, 1, 3]);
        assert_eq!(sub.origin, vec![0, 1, 3]);
        // Local: 0<->1 (orig 0-1), 0<->2 (orig 0-3), 1<->2 (orig 1-3).
        assert_eq!(sub.graph.num_edges(), 6);
        assert!(sub.graph.has_edge(0, 1));
        assert!(sub.graph.has_edge(0, 2));
        assert!(sub.graph.has_edge(1, 2));
        assert!(sub.graph.is_symmetric());
    }

    #[test]
    fn duplicates_and_order_ignored() {
        let g = sample_graph();
        let a = induced_subgraph(&g, &[3, 1, 0, 1, 3]);
        let b = induced_subgraph(&g, &[0, 1, 3]);
        assert_eq!(a.origin, b.origin);
        assert_eq!(a.graph, b.graph);
    }

    #[test]
    fn isolated_selection() {
        let g = sample_graph();
        let sub = induced_subgraph(&g, &[0, 2]);
        // 0 and 2 are not adjacent.
        assert_eq!(sub.graph.num_edges(), 0);
        assert_eq!(sub.num_vertices(), 2);
    }

    #[test]
    fn full_selection_is_identity() {
        let g = sample_graph();
        let sub = induced_subgraph(&g, &[0, 1, 2, 3, 4, 5]);
        assert_eq!(sub.graph, g);
        assert_eq!(sub.origin, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn empty_selection() {
        let g = sample_graph();
        let sub = induced_subgraph(&g, &[]);
        assert_eq!(sub.num_vertices(), 0);
        assert_eq!(sub.graph.num_edges(), 0);
    }

    #[test]
    fn to_original_mapping() {
        let g = sample_graph();
        let sub = induced_subgraph(&g, &[5, 2]);
        assert_eq!(sub.to_original(0), 2);
        assert_eq!(sub.to_original(1), 5);
    }

    #[test]
    fn matches_bruteforce_on_random_sets() {
        // Cross-check against a quadratic reference implementation.
        let g = sample_graph();
        for mask in 0u32..64 {
            let verts: Vec<u32> = (0..6).filter(|i| mask & (1 << i) != 0).collect();
            let sub = induced_subgraph(&g, &verts);
            // Reference: edge (a,b) kept iff both in set.
            let mut expect = 0;
            for &a in &verts {
                for &b in &verts {
                    if g.has_edge(a, b) {
                        expect += 1;
                    }
                }
            }
            assert_eq!(sub.graph.num_edges(), expect, "mask={mask:06b}");
        }
    }
}
