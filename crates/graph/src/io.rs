//! Graph (de)serialisation: whitespace edge-list text and a compact binary
//! format.
//!
//! The text format is the lowest common denominator for importing real
//! datasets (one `u v` pair per line, `#` comments); the binary format is a
//! fixed little-endian layout (`magic, n, m, offsets, adj`) for fast
//! round-tripping of generated benchmark graphs.

use crate::builder::GraphBuilder;
use crate::csr::CsrGraph;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::io::{self, BufRead, BufReader, Read, Write};
use std::path::Path;

const MAGIC: u32 = 0x47_53_47_31; // "GSG1"

/// Parse a whitespace edge list (`u v` per line, `#`-prefixed comments).
///
/// `n` is the vertex count; edges are symmetrised.
pub fn read_edge_list<R: Read>(reader: R, n: usize) -> io::Result<CsrGraph> {
    let mut b = GraphBuilder::new(n);
    for line in BufReader::new(reader).lines() {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') {
            continue;
        }
        let mut it = t.split_whitespace();
        let (u, v) = match (it.next(), it.next()) {
            (Some(u), Some(v)) => (u, v),
            _ => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("malformed edge line: {t:?}"),
                ))
            }
        };
        let parse = |s: &str| {
            s.parse::<u32>().map_err(|e| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("bad vertex id {s:?}: {e}"),
                )
            })
        };
        let (u, v) = (parse(u)?, parse(v)?);
        if (u as usize) >= n || (v as usize) >= n {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("edge ({u},{v}) out of range for n={n}"),
            ));
        }
        b = b.add_edge(u, v);
    }
    Ok(b.build())
}

/// Write a graph as a text edge list (each undirected edge once, `u < v`;
/// directed/asymmetric edges are emitted as stored).
pub fn write_edge_list<W: Write>(g: &CsrGraph, mut w: W) -> io::Result<()> {
    writeln!(
        w,
        "# gsgcn edge list |V|={} |E|={}",
        g.num_vertices(),
        g.num_edges()
    )?;
    for (u, v) in g.edges() {
        if u <= v || !g.has_edge(v, u) {
            writeln!(w, "{u} {v}")?;
        }
    }
    Ok(())
}

/// Serialise to the compact binary format.
pub fn to_bytes(g: &CsrGraph) -> Bytes {
    let mut buf = BytesMut::with_capacity(16 + g.num_vertices() * 8 + g.num_edges() * 4);
    buf.put_u32_le(MAGIC);
    buf.put_u64_le(g.num_vertices() as u64);
    buf.put_u64_le(g.num_edges() as u64);
    for &o in g.offsets() {
        buf.put_u64_le(o as u64);
    }
    for &t in g.adjacency() {
        buf.put_u32_le(t);
    }
    buf.freeze()
}

/// Deserialise from the compact binary format.
pub fn from_bytes(mut data: Bytes) -> io::Result<CsrGraph> {
    let bad = |m: &str| io::Error::new(io::ErrorKind::InvalidData, m.to_string());
    if data.remaining() < 20 {
        return Err(bad("truncated header"));
    }
    if data.get_u32_le() != MAGIC {
        return Err(bad("bad magic"));
    }
    let n = data.get_u64_le() as usize;
    let m = data.get_u64_le() as usize;
    if data.remaining() < (n + 1) * 8 + m * 4 {
        return Err(bad("truncated body"));
    }
    let mut offsets = Vec::with_capacity(n + 1);
    for _ in 0..=n {
        offsets.push(data.get_u64_le() as usize);
    }
    let mut adj = Vec::with_capacity(m);
    for _ in 0..m {
        adj.push(data.get_u32_le());
    }
    Ok(CsrGraph::from_raw(offsets, adj))
}

/// Save a graph to a binary file.
pub fn save_binary<P: AsRef<Path>>(g: &CsrGraph, path: P) -> io::Result<()> {
    std::fs::write(path, to_bytes(g))
}

/// Load a graph from a binary file.
pub fn load_binary<P: AsRef<Path>>(path: P) -> io::Result<CsrGraph> {
    from_bytes(Bytes::from(std::fs::read(path)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::from_edges;

    fn g() -> CsrGraph {
        from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0), (1, 3)])
    }

    #[test]
    fn binary_roundtrip() {
        let g = g();
        let bytes = to_bytes(&g);
        let back = from_bytes(bytes).unwrap();
        assert_eq!(g, back);
    }

    #[test]
    fn text_roundtrip() {
        let g = g();
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let back = read_edge_list(&buf[..], 5).unwrap();
        assert_eq!(g, back);
    }

    #[test]
    fn text_parses_comments_and_blanks() {
        let text = "# header\n\n0 1\n  1 2 \n";
        let g = read_edge_list(text.as_bytes(), 3).unwrap();
        assert_eq!(g.num_edges(), 4);
    }

    #[test]
    fn text_rejects_garbage() {
        assert!(read_edge_list("0\n".as_bytes(), 3).is_err());
        assert!(read_edge_list("a b\n".as_bytes(), 3).is_err());
        assert!(read_edge_list("0 99\n".as_bytes(), 3).is_err());
    }

    #[test]
    fn binary_rejects_corruption() {
        let g = g();
        let bytes = to_bytes(&g);
        assert!(from_bytes(bytes.slice(0..10)).is_err());
        let mut wrong = BytesMut::from(&bytes[..]);
        wrong[0] = 0;
        assert!(from_bytes(wrong.freeze()).is_err());
    }

    #[test]
    fn file_roundtrip() {
        let g = g();
        let dir = std::env::temp_dir().join("gsgcn_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.bin");
        save_binary(&g, &path).unwrap();
        let back = load_binary(&path).unwrap();
        assert_eq!(g, back);
    }
}
