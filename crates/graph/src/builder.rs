//! Edge-list → CSR graph construction.
//!
//! The builder normalises arbitrary edge lists into the canonical CSR form
//! the rest of the system assumes: sorted adjacency lists, no duplicate
//! edges, optional symmetric closure (undirected semantics) and optional
//! self-loop removal. Construction is parallel (sort + segmented dedup).

use crate::csr::CsrGraph;
use rayon::prelude::*;

/// Builder accumulating directed edges before CSR finalisation.
///
/// By default the builder produces the *symmetric closure* (for every added
/// `(u,v)` the reverse `(v,u)` is also inserted) because the paper's
/// datasets are all undirected, and strips self-loops (mean aggregation
/// handles the self-feature through `W_self`, Alg. 1 line 8).
#[derive(Clone, Debug)]
pub struct GraphBuilder {
    n: usize,
    edges: Vec<(u32, u32)>,
    symmetric: bool,
    drop_self_loops: bool,
}

impl GraphBuilder {
    /// Start a builder for a graph with `n` vertices (ids `0..n`).
    pub fn new(n: usize) -> Self {
        GraphBuilder {
            n,
            edges: Vec::new(),
            symmetric: true,
            drop_self_loops: true,
        }
    }

    /// Reserve capacity for `cap` edges up front.
    pub fn with_capacity(n: usize, cap: usize) -> Self {
        let mut b = Self::new(n);
        b.edges.reserve(cap);
        b
    }

    /// Whether to insert the reverse of every edge (undirected semantics).
    /// Default: `true`.
    pub fn symmetric(mut self, yes: bool) -> Self {
        self.symmetric = yes;
        self
    }

    /// Whether to drop self-loops `(v,v)`. Default: `true`.
    pub fn drop_self_loops(mut self, yes: bool) -> Self {
        self.drop_self_loops = yes;
        self
    }

    /// Add a single directed edge. Panics if an endpoint is out of range.
    pub fn add_edge(mut self, u: u32, v: u32) -> Self {
        assert!(
            (u as usize) < self.n && (v as usize) < self.n,
            "edge ({u},{v}) out of range for n={}",
            self.n
        );
        self.edges.push((u, v));
        self
    }

    /// Add many edges at once.
    pub fn add_edges<I: IntoIterator<Item = (u32, u32)>>(mut self, it: I) -> Self {
        for (u, v) in it {
            assert!(
                (u as usize) < self.n && (v as usize) < self.n,
                "edge ({u},{v}) out of range for n={}",
                self.n
            );
            self.edges.push((u, v));
        }
        self
    }

    /// Number of edges currently staged (before dedup/closure).
    pub fn staged_edges(&self) -> usize {
        self.edges.len()
    }

    /// Finalise into a [`CsrGraph`]: closure, sort, dedup, CSR assembly.
    pub fn build(self) -> CsrGraph {
        let GraphBuilder {
            n,
            mut edges,
            symmetric,
            drop_self_loops,
        } = self;

        if drop_self_loops {
            edges.retain(|&(u, v)| u != v);
        }
        if symmetric {
            let rev: Vec<(u32, u32)> = edges.par_iter().map(|&(u, v)| (v, u)).collect();
            edges.extend(rev);
        }
        edges.par_sort_unstable();
        edges.dedup();

        // Counting pass → offsets, then a placement pass.
        let mut offsets = vec![0usize; n + 1];
        for &(u, _) in &edges {
            offsets[u as usize + 1] += 1;
        }
        for i in 0..n {
            offsets[i + 1] += offsets[i];
        }
        let adj: Vec<u32> = edges.iter().map(|&(_, v)| v).collect();
        CsrGraph::from_raw(offsets, adj)
    }
}

/// Convenience: build an undirected graph straight from an edge slice.
pub fn from_edges(n: usize, edges: &[(u32, u32)]) -> CsrGraph {
    GraphBuilder::new(n)
        .add_edges(edges.iter().copied())
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symmetric_closure_and_dedup() {
        let g = GraphBuilder::new(3)
            .add_edge(0, 1)
            .add_edge(1, 0) // duplicate after closure
            .add_edge(1, 2)
            .build();
        assert_eq!(g.num_edges(), 4); // (0,1),(1,0),(1,2),(2,1)
        assert!(g.is_symmetric());
        assert_eq!(g.neighbors(1), &[0, 2]);
    }

    #[test]
    fn directed_mode_keeps_orientation() {
        let g = GraphBuilder::new(3)
            .symmetric(false)
            .add_edge(0, 1)
            .add_edge(1, 2)
            .build();
        assert_eq!(g.num_edges(), 2);
        assert!(g.has_edge(0, 1));
        assert!(!g.has_edge(1, 0));
    }

    #[test]
    fn self_loops_dropped_by_default() {
        let g = GraphBuilder::new(2).add_edge(0, 0).add_edge(0, 1).build();
        assert!(!g.has_self_loops());
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn self_loops_kept_when_requested() {
        let g = GraphBuilder::new(2)
            .drop_self_loops(false)
            .symmetric(false)
            .add_edge(0, 0)
            .build();
        assert!(g.has_self_loops());
    }

    #[test]
    fn adjacency_lists_sorted() {
        let g = GraphBuilder::new(5)
            .add_edge(0, 4)
            .add_edge(0, 2)
            .add_edge(0, 3)
            .add_edge(0, 1)
            .build();
        assert_eq!(g.neighbors(0), &[1, 2, 3, 4]);
    }

    #[test]
    fn from_edges_helper() {
        let g = from_edges(4, &[(0, 1), (2, 3)]);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.degree(0), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_edge_panics() {
        GraphBuilder::new(2).add_edge(0, 2);
    }

    #[test]
    fn empty_builder_gives_isolated_vertices() {
        let g = GraphBuilder::new(7).build();
        assert_eq!(g.num_vertices(), 7);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn parallel_duplicate_heavy_build() {
        // Many duplicates of the same few edges must collapse.
        let mut edges = Vec::new();
        for _ in 0..1000 {
            edges.push((0u32, 1u32));
            edges.push((1, 2));
        }
        let g = from_edges(3, &edges);
        assert_eq!(g.num_edges(), 4);
    }
}
