//! The versioned on-disk shard format behind the mmap-backed
//! [`GraphStore`](super::GraphStore) — see the `store` module docs for the
//! architecture overview.
//!
//! A store is a directory:
//!
//! ```text
//! store/
//! ├── manifest.gss      store-wide header + per-shard sizes/checksums
//! ├── index.gss         part_of[u32; n] ++ local_of[u32; n]
//! ├── shard_0000.gss    one partition's CSR slice + feature/label rows
//! └── shard_0001.gss    …
//! ```
//!
//! Every file starts with a 4-byte magic and a format version; all integers
//! and floats are little-endian, and sections inside a shard are 8-byte
//! aligned so the loader can hand out typed slices straight from the
//! mapping. One shard file holds, for the `k` member vertices of one
//! partition part:
//!
//! ```text
//! header   magic, version, shard id, feat-precision, k, e, feature_dim, label_dim
//! members  [u32; k]       global vertex ids
//! offsets  [u64; k+1]     shard-local CSR offsets
//! adj      [u32; e]       neighbor lists — GLOBAL ids (edges may cross shards)
//! features [f32|bf16; k·f] row-major, aligned with `members`
//! labels   [f32; k·l]     row-major, aligned with `members`
//! ```
//!
//! # Feature precision
//!
//! Feature rows are stored as f32 (the historical layout) or bf16
//! ([`write_store_with_precision`]), halving the feature payload. The
//! element type lives in the shard header's precision slot — the u32 at
//! offset 12 that was always-zero padding before, so pre-precision shards
//! decode as f32 — and, for non-f32 stores, in a trailing manifest
//! section ([`FEATPREC_MAGIC`]). Readers widen rows back to f32 on copy
//! ([`ShardData::copy_feature_row_into`]); labels are always f32. f32
//! stores remain byte-identical to pre-precision stores.
//!
//! # Placement orders and the manifest ordering section
//!
//! Which vertices share a shard — and in what sequence inside it — is the
//! *placement order* (see [`super::order`]):
//!
//! * `natural` (default): the historical layout — a
//!   [`bfs_partition`](crate::partition::bfs_partition) part per shard,
//!   members ascending by global id. The manifest carries **no** ordering
//!   section, so natural stores are byte-identical to stores written
//!   before orders existed, and pre-order stores read back as natural.
//! * `bfs` / `degree`: a rank permutation is computed
//!   ([`super::order::order_rank`]), shard membership is contiguous rank
//!   ranges, members are stored in rank order, and the manifest gains a
//!   trailing section (`ORDER_MAGIC`, order code, `n`, `rank[u32; n]`)
//!   recording the old↔new mapping. Old readers ignore trailing manifest
//!   bytes, so the format version is unchanged.
//!
//! All ids **on disk stay global (user numbering)** regardless of order:
//! adjacency, members, the CLI/serve protocol and eval splits never
//! translate. The order only decides *placement*, which is why answers
//! are bit-identical across orders while the shards an L-hop ball
//! touches (and therefore out-of-core gather cost) differ.
//!
//! Choosing an order: `bfs` is the right default for training and
//! ball-shaped serving reads — neighbors get adjacent ranks, so L-hop
//! balls stay within few shards. `degree` is the cheap alternative (one
//! sort, no traversal) that concentrates the hub vertices most gathers
//! touch; prefer it when shard-write time dominates (huge graphs,
//! re-shard pipelines). `natural` exists for byte-stable reproduction of
//! pre-order stores.
//!
//! Consistency rules (the crash-safety contract pinned by
//! `proptest_store.rs`):
//!
//! * Every file is written to a `*.tmp` sibling and atomically renamed, so
//!   a crash mid-write never leaves a half-written file under the final
//!   name.
//! * The manifest is written **last**; a directory without a valid
//!   manifest is not a store and fails to open loudly.
//! * The manifest records every shard's exact file length and FNV-1a
//!   checksum. [`open`](super::GraphStore::open) eagerly stats every
//!   present shard file against the recorded length, so truncation is a
//!   loud [`InvalidData`](std::io::ErrorKind::InvalidData) error at open
//!   time — never a silent short read later.
//! * A *missing* shard file is tolerated at open (a partial deployment
//!   serving a slice of the graph); reads of its vertices fail per-request
//!   (`GraphStore::contains` is the membership probe).

use super::order::{order_rank, partition_by_rank, StoreOrder};
use crate::csr::CsrGraph;
use crate::partition::VertexPartition;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use gsgcn_tensor::{bf16, DMatrix, Precision};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

/// Manifest magic: `GSTR` (gsgcn store).
pub const MANIFEST_MAGIC: u32 = 0x4753_5452;
/// Magic of the optional manifest ordering section: `GSOR`.
pub const ORDER_MAGIC: u32 = 0x4753_4F52;
/// Magic of the optional manifest feature-precision section: `GSFP`.
/// Written only for non-f32 stores (same trailing-section gating as
/// [`ORDER_MAGIC`]: f32 stores stay byte-identical to pre-precision ones,
/// and its absence means f32).
pub const FEATPREC_MAGIC: u32 = 0x4753_4650;
/// Shard-file magic: `GSHD`.
pub const SHARD_MAGIC: u32 = 0x4753_4844;
/// Index-file magic: `GSIX`.
pub const INDEX_MAGIC: u32 = 0x4753_4958;
/// Format version; bump on any layout change.
pub const FORMAT_VERSION: u32 = 1;

/// Fixed shard-file header length in bytes.
pub const SHARD_HEADER_LEN: usize = 40;
/// Fixed index-file header length in bytes.
pub const INDEX_HEADER_LEN: usize = 16;

fn bad(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

const fn align8(x: usize) -> usize {
    (x + 7) & !7
}

/// FNV-1a 64-bit, streamed over file bytes as they are written.
#[derive(Clone, Copy)]
pub struct Fnv1a(u64);

impl Default for Fnv1a {
    fn default() -> Self {
        Fnv1a(0xcbf2_9ce4_8422_2325)
    }
}

impl Fnv1a {
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    pub fn finish(self) -> u64 {
        self.0
    }
}

/// Reinterpret a `u32` slice as raw little-endian file bytes.
///
/// The format is little-endian and the loader maps files back as typed
/// slices, so writer and reader must agree on host byte order; the
/// big-endian guard in [`write_store`] / [`ShardData::load`] enforces it.
fn u32s_as_bytes(v: &[u32]) -> &[u8] {
    // Safety: u32 has no invalid byte patterns and the length is exact.
    unsafe { std::slice::from_raw_parts(v.as_ptr() as *const u8, std::mem::size_of_val(v)) }
}

fn u64s_as_bytes(v: &[u64]) -> &[u8] {
    // Safety: as above.
    unsafe { std::slice::from_raw_parts(v.as_ptr() as *const u8, std::mem::size_of_val(v)) }
}

fn f32s_as_bytes(v: &[f32]) -> &[u8] {
    // Safety: as above.
    unsafe { std::slice::from_raw_parts(v.as_ptr() as *const u8, std::mem::size_of_val(v)) }
}

fn u16s_as_bytes(v: &[u16]) -> &[u8] {
    // Safety: as above.
    unsafe { std::slice::from_raw_parts(v.as_ptr() as *const u8, std::mem::size_of_val(v)) }
}

fn endian_guard() -> io::Result<()> {
    if cfg!(target_endian = "big") {
        return Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "shard format is little-endian; big-endian hosts are unsupported",
        ));
    }
    Ok(())
}

/// Per-shard bookkeeping recorded in the manifest.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardInfo {
    /// Member vertex count `k`.
    pub members: u64,
    /// Directed edge count `e` stored in the shard.
    pub edges: u64,
    /// Exact shard file length in bytes.
    pub file_len: u64,
    /// FNV-1a 64 over the whole shard file.
    pub checksum: u64,
}

/// Store-wide metadata: the contents of `manifest.gss`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StoreManifest {
    /// Total vertex count across all shards.
    pub n: u64,
    /// Total directed edge count.
    pub num_edges: u64,
    /// Feature columns per vertex (0 = no features stored).
    pub feature_dim: u32,
    /// Label columns per vertex (0 = no labels stored).
    pub label_dim: u32,
    /// One entry per shard, shard id = position.
    pub shards: Vec<ShardInfo>,
    /// Placement order the store was written with (see
    /// [`super::order`]). [`StoreOrder::Natural`] writes no manifest
    /// section, so natural stores are byte-identical to pre-order ones.
    pub order: StoreOrder,
    /// `rank[v]` = position of vertex `v` in `order`; empty for
    /// [`StoreOrder::Natural`] (identity). This is the old↔new mapping:
    /// internal id of `v` is `rank[v]`.
    pub rank: Vec<u32>,
    /// Element type of the stored feature rows. [`Precision::F32`] writes
    /// no manifest section (byte-identical to pre-precision stores);
    /// [`Precision::Bf16`] halves the feature payload and adds the
    /// trailing [`FEATPREC_MAGIC`] section. Labels are always f32.
    pub feature_precision: Precision,
}

/// On-disk code for a feature precision (shard header + manifest section).
/// 0 is f32 so pre-precision shard headers (which wrote 0 padding in the
/// slot) read back correctly.
pub(crate) fn precision_code(p: Precision) -> u32 {
    match p {
        Precision::F32 => 0,
        Precision::Bf16 => 1,
    }
}

pub(crate) fn precision_from_code(code: u32) -> Option<Precision> {
    match code {
        0 => Some(Precision::F32),
        1 => Some(Precision::Bf16),
        _ => None,
    }
}

impl StoreManifest {
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Internal (placement) id of external vertex `v`: its rank in the
    /// store's order, identity for natural stores.
    #[inline]
    pub fn to_internal(&self, v: u32) -> u32 {
        if self.rank.is_empty() {
            v
        } else {
            self.rank[v as usize]
        }
    }

    pub fn to_bytes(&self) -> Bytes {
        let order_extra = if self.order == StoreOrder::Natural {
            0
        } else {
            16 + 4 * self.rank.len()
        };
        let mut buf = BytesMut::with_capacity(32 + self.shards.len() * 32 + order_extra);
        buf.put_u32_le(MANIFEST_MAGIC);
        buf.put_u32_le(FORMAT_VERSION);
        buf.put_u64_le(self.n);
        buf.put_u64_le(self.num_edges);
        buf.put_u32_le(self.shards.len() as u32);
        buf.put_u32_le(self.feature_dim);
        buf.put_u32_le(self.label_dim);
        buf.put_u32_le(0); // padding
        for s in &self.shards {
            buf.put_u64_le(s.members);
            buf.put_u64_le(s.edges);
            buf.put_u64_le(s.file_len);
            buf.put_u64_le(s.checksum);
        }
        // Optional trailing ordering section. Readers that predate it
        // ignore trailing bytes, and its absence means natural order, so
        // the format version does not need to change.
        if self.order != StoreOrder::Natural {
            buf.put_u32_le(ORDER_MAGIC);
            buf.put_u32_le(self.order.code());
            buf.put_u64_le(self.rank.len() as u64);
            for &r in &self.rank {
                buf.put_u32_le(r);
            }
        }
        // Optional trailing feature-precision section, gated the same way:
        // absent means f32, so f32 manifests keep their historical bytes.
        if self.feature_precision != Precision::F32 {
            buf.put_u32_le(FEATPREC_MAGIC);
            buf.put_u32_le(precision_code(self.feature_precision));
        }
        buf.freeze()
    }

    pub fn from_bytes(mut data: Bytes) -> io::Result<Self> {
        if data.remaining() < 36 {
            return Err(bad("truncated store manifest header"));
        }
        if data.get_u32_le() != MANIFEST_MAGIC {
            return Err(bad("bad store manifest magic (not a gsgcn shard store)"));
        }
        let version = data.get_u32_le();
        if version != FORMAT_VERSION {
            return Err(bad(format!(
                "unsupported store format version {version} (this build reads v{FORMAT_VERSION})"
            )));
        }
        let n = data.get_u64_le();
        let num_edges = data.get_u64_le();
        let num_shards = data.get_u32_le() as usize;
        let feature_dim = data.get_u32_le();
        let label_dim = data.get_u32_le();
        let _pad = data.get_u32_le();
        if data.remaining() < num_shards * 32 {
            return Err(bad("truncated store manifest shard table"));
        }
        let mut shards = Vec::with_capacity(num_shards);
        for _ in 0..num_shards {
            shards.push(ShardInfo {
                members: data.get_u64_le(),
                edges: data.get_u64_le(),
                file_len: data.get_u64_le(),
                checksum: data.get_u64_le(),
            });
        }
        let total: u64 = shards.iter().map(|s| s.members).sum();
        if total != n {
            return Err(bad(format!(
                "manifest inconsistent: shard member counts sum to {total}, expected n={n}"
            )));
        }
        // Optional ordering section (absent in pre-order stores = natural).
        let (order, rank) = if data.remaining() >= 16 && data.clone().get_u32_le() == ORDER_MAGIC {
            let _magic = data.get_u32_le();
            let code = data.get_u32_le();
            let order = StoreOrder::from_code(code)
                .ok_or_else(|| bad(format!("manifest ordering section: unknown order {code}")))?;
            let len = data.get_u64_le() as usize;
            if len != n as usize {
                return Err(bad(format!(
                    "manifest ordering section covers {len} vertices, expected n={n}"
                )));
            }
            if data.remaining() < 4 * len {
                return Err(bad("truncated manifest ordering section"));
            }
            let mut rank = Vec::with_capacity(len);
            let mut seen = vec![false; len];
            for _ in 0..len {
                let r = data.get_u32_le();
                if (r as usize) >= len || seen[r as usize] {
                    return Err(bad("manifest ordering section is not a permutation"));
                }
                seen[r as usize] = true;
                rank.push(r);
            }
            (order, rank)
        } else {
            (StoreOrder::Natural, Vec::new())
        };
        // Optional feature-precision section (absent = f32).
        let feature_precision =
            if data.remaining() >= 8 && data.clone().get_u32_le() == FEATPREC_MAGIC {
                let _magic = data.get_u32_le();
                let code = data.get_u32_le();
                precision_from_code(code).ok_or_else(|| {
                    bad(format!(
                        "manifest feature-precision section: unknown precision code {code}"
                    ))
                })?
            } else {
                Precision::F32
            };
        Ok(StoreManifest {
            n,
            num_edges,
            feature_dim,
            label_dim,
            shards,
            order,
            rank,
            feature_precision,
        })
    }

    pub fn save(&self, dir: &Path) -> io::Result<()> {
        write_atomic(&dir.join(MANIFEST_FILE), &self.to_bytes())
    }

    pub fn load(dir: &Path) -> io::Result<Self> {
        let path = dir.join(MANIFEST_FILE);
        let data = std::fs::read(&path).map_err(|e| {
            io::Error::new(
                e.kind(),
                format!("opening store manifest {}: {e}", path.display()),
            )
        })?;
        Self::from_bytes(Bytes::from(data))
    }
}

pub const MANIFEST_FILE: &str = "manifest.gss";
pub const INDEX_FILE: &str = "index.gss";

/// File name of shard `i`.
pub fn shard_file_name(i: usize) -> String {
    format!("shard_{i:04}.gss")
}

/// Expected byte offsets of each section for a shard with `k` members,
/// `e` edges, `f` feature columns and `l` label columns.
#[derive(Clone, Copy, Debug)]
pub struct ShardLayout {
    pub members_off: usize,
    pub offsets_off: usize,
    pub adj_off: usize,
    pub feat_off: usize,
    pub label_off: usize,
    pub file_len: usize,
}

impl ShardLayout {
    pub fn new(k: usize, e: usize, f: usize, l: usize) -> Self {
        Self::with_precision(k, e, f, l, Precision::F32)
    }

    /// Layout for a shard whose feature rows are stored at `fp` element
    /// width (f32 = 4 bytes, bf16 = 2). Labels are always f32; sections
    /// stay 8-byte aligned either way.
    pub fn with_precision(k: usize, e: usize, f: usize, l: usize, fp: Precision) -> Self {
        let members_off = SHARD_HEADER_LEN;
        let offsets_off = align8(members_off + 4 * k);
        let adj_off = offsets_off + 8 * (k + 1);
        let feat_off = align8(adj_off + 4 * e);
        let label_off = align8(feat_off + feature_elem_size(fp) * k * f);
        let file_len = label_off + 4 * k * l;
        ShardLayout {
            members_off,
            offsets_off,
            adj_off,
            feat_off,
            label_off,
            file_len,
        }
    }
}

/// Bytes per stored feature element at precision `p`.
pub(crate) const fn feature_elem_size(p: Precision) -> usize {
    match p {
        Precision::F32 => 4,
        Precision::Bf16 => 2,
    }
}

/// Write `bytes` to `path` atomically (temp sibling + rename).
fn write_atomic(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let tmp = tmp_sibling(path);
    std::fs::write(&tmp, bytes)?;
    std::fs::rename(&tmp, path)
}

fn tmp_sibling(path: &Path) -> PathBuf {
    let mut name = path
        .file_name()
        .map(|s| s.to_os_string())
        .unwrap_or_default();
    name.push(".tmp");
    path.with_file_name(name)
}

/// A buffered shard-file writer that checksums everything it writes.
struct CheckedWriter {
    w: io::BufWriter<std::fs::File>,
    hash: Fnv1a,
    written: usize,
}

impl CheckedWriter {
    fn create(path: &Path) -> io::Result<Self> {
        Ok(CheckedWriter {
            w: io::BufWriter::new(std::fs::File::create(path)?),
            hash: Fnv1a::default(),
            written: 0,
        })
    }

    fn put(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.hash.update(bytes);
        self.written += bytes.len();
        self.w.write_all(bytes)
    }

    fn pad_to(&mut self, off: usize) -> io::Result<()> {
        debug_assert!(off >= self.written && off - self.written < 8);
        const ZEROS: [u8; 8] = [0; 8];
        let pad = off - self.written;
        self.put(&ZEROS[..pad])
    }

    fn finish(mut self) -> io::Result<(usize, u64)> {
        self.w.flush()?;
        Ok((self.written, self.hash.finish()))
    }
}

/// Write a complete shard store for `graph` (plus optional per-vertex
/// feature/label rows) under `dir`, partitioned into `num_shards` parts by
/// the frontier (BFS-grown) partitioner. Returns the manifest.
///
/// `num_shards` may exceed the vertex count; trailing shards are then
/// empty, which the loader handles. Existing store files in `dir` are
/// overwritten.
pub fn write_store(
    dir: &Path,
    graph: &CsrGraph,
    features: Option<&DMatrix>,
    labels: Option<&DMatrix>,
    num_shards: usize,
) -> io::Result<StoreManifest> {
    write_store_ordered(
        dir,
        graph,
        features,
        labels,
        num_shards,
        StoreOrder::Natural,
    )
}

/// As [`write_store`] with an explicit placement order. `Natural` keeps
/// the historical BFS-grown partition with members ascending — stores it
/// writes are byte-identical to pre-order ones. `Bfs`/`Degree` compute a
/// rank permutation ([`order_rank`]), cut it into contiguous-rank shards
/// and store members in rank order, recording the permutation in the
/// manifest's ordering section.
pub fn write_store_ordered(
    dir: &Path,
    graph: &CsrGraph,
    features: Option<&DMatrix>,
    labels: Option<&DMatrix>,
    num_shards: usize,
    order: StoreOrder,
) -> io::Result<StoreManifest> {
    write_store_with_precision(
        dir,
        graph,
        features,
        labels,
        num_shards,
        order,
        Precision::F32,
    )
}

/// As [`write_store_ordered`] with an explicit feature storage precision.
/// [`Precision::F32`] stores features verbatim (byte-identical to
/// [`write_store_ordered`]); [`Precision::Bf16`] rounds each feature
/// element to bf16 (round-to-nearest-even), halving the feature payload of
/// every shard. Labels are always stored as f32. Readers widen bf16 rows
/// back to f32 on gather, so downstream code sees f32 either way — rows
/// just carry bf16 rounding.
pub fn write_store_with_precision(
    dir: &Path,
    graph: &CsrGraph,
    features: Option<&DMatrix>,
    labels: Option<&DMatrix>,
    num_shards: usize,
    order: StoreOrder,
    feature_precision: Precision,
) -> io::Result<StoreManifest> {
    endian_guard()?;
    let n = graph.num_vertices();
    if let Some(f) = features {
        if f.rows() != n {
            return Err(bad(format!(
                "feature matrix has {} rows for a {n}-vertex graph",
                f.rows()
            )));
        }
    }
    if let Some(l) = labels {
        if l.rows() != n {
            return Err(bad(format!(
                "label matrix has {} rows for a {n}-vertex graph",
                l.rows()
            )));
        }
    }
    std::fs::create_dir_all(dir)?;
    let p = num_shards.max(1);
    match order_rank(graph, order) {
        None => {
            let partition = crate::partition::bfs_partition(graph, p);
            write_partitioned_ordered(
                dir,
                graph,
                features,
                labels,
                &partition,
                None,
                feature_precision,
            )
        }
        Some(rank) => {
            let partition = partition_by_rank(&rank, p);
            write_partitioned_ordered(
                dir,
                graph,
                features,
                labels,
                &partition,
                Some((order, rank)),
                feature_precision,
            )
        }
    }
}

/// As [`write_store`] but with a caller-supplied partition (must cover
/// exactly the graph's vertices).
pub fn write_partitioned(
    dir: &Path,
    graph: &CsrGraph,
    features: Option<&DMatrix>,
    labels: Option<&DMatrix>,
    partition: &VertexPartition,
) -> io::Result<StoreManifest> {
    write_partitioned_ordered(
        dir,
        graph,
        features,
        labels,
        partition,
        None,
        Precision::F32,
    )
}

/// The writer core: partition + optional `(order, rank)` placement
/// permutation. Without a rank, members are ascending global ids (the
/// historical layout); with one, members are stored in rank order and
/// the manifest records the ordering section.
fn write_partitioned_ordered(
    dir: &Path,
    graph: &CsrGraph,
    features: Option<&DMatrix>,
    labels: Option<&DMatrix>,
    partition: &VertexPartition,
    ordering: Option<(StoreOrder, Vec<u32>)>,
    feature_precision: Precision,
) -> io::Result<StoreManifest> {
    endian_guard()?;
    // With no feature rows the precision is vacuous; normalise to f32 so
    // the store stays byte-identical to historical feature-less stores.
    let feature_precision = if features.is_none() {
        Precision::F32
    } else {
        feature_precision
    };
    let n = graph.num_vertices();
    if partition.part.len() != n {
        return Err(bad("partition does not cover the graph's vertex set"));
    }
    if let Some((_, rank)) = &ordering {
        if rank.len() != n {
            return Err(bad("placement rank does not cover the graph's vertex set"));
        }
    }
    let p = partition.num_parts.max(1);
    let f = features.map_or(0, |m| m.cols());
    let l = labels.map_or(0, |m| m.cols());

    // Shard member lists: ascending global id without an order, rank
    // order with one (readers resolve via the index either way).
    let mut members_of = vec![Vec::new(); p];
    for v in 0..n {
        let s = partition.part[v];
        debug_assert!((s as usize) < p, "partition id out of range");
        members_of[s as usize].push(v as u32);
    }
    if let Some((_, rank)) = &ordering {
        for members in &mut members_of {
            members.sort_by_key(|&v| rank[v as usize]);
        }
    }

    // Global → (shard, local) index, derived from the member lists.
    let mut part_of = vec![0u32; n];
    let mut local_of = vec![0u32; n];
    for (sid, members) in members_of.iter().enumerate() {
        for (local, &v) in members.iter().enumerate() {
            part_of[v as usize] = sid as u32;
            local_of[v as usize] = local as u32;
        }
    }

    let mut shards = Vec::with_capacity(p);
    let mut qrow: Vec<bf16::Bf16> = vec![bf16::Bf16::ZERO; f];
    for (sid, members) in members_of.iter().enumerate() {
        let k = members.len();
        let e: usize = members.iter().map(|&v| graph.degree(v)).sum();
        let layout = ShardLayout::with_precision(k, e, f, l, feature_precision);
        let path = dir.join(shard_file_name(sid));
        let tmp = tmp_sibling(&path);
        let mut w = CheckedWriter::create(&tmp)?;
        let mut header = Vec::with_capacity(SHARD_HEADER_LEN);
        header.extend_from_slice(&SHARD_MAGIC.to_le_bytes());
        header.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        header.extend_from_slice(&(sid as u32).to_le_bytes());
        // Historically padding (always 0); now the feature-precision code.
        // F32 writes 0, so f32 shards keep their pre-precision bytes.
        header.extend_from_slice(&precision_code(feature_precision).to_le_bytes());
        header.extend_from_slice(&(k as u64).to_le_bytes());
        header.extend_from_slice(&(e as u64).to_le_bytes());
        header.extend_from_slice(&(f as u32).to_le_bytes());
        header.extend_from_slice(&(l as u32).to_le_bytes());
        w.put(&header)?;
        w.put(u32s_as_bytes(members))?;
        w.pad_to(layout.offsets_off)?;
        let mut offsets = Vec::with_capacity(k + 1);
        let mut acc = 0u64;
        offsets.push(0u64);
        for &v in members {
            acc += graph.degree(v) as u64;
            offsets.push(acc);
        }
        w.put(u64s_as_bytes(&offsets))?;
        for &v in members {
            w.put(u32s_as_bytes(graph.neighbors(v)))?;
        }
        w.pad_to(layout.feat_off)?;
        if let Some(m) = features {
            match feature_precision {
                Precision::F32 => {
                    for &v in members {
                        w.put(f32s_as_bytes(m.row(v as usize)))?;
                    }
                }
                Precision::Bf16 => {
                    for &v in members {
                        bf16::quantize_slice(m.row(v as usize), &mut qrow);
                        w.put(u16s_as_bytes(bf16::to_bits_slice(&qrow)))?;
                    }
                }
            }
        }
        w.pad_to(layout.label_off)?;
        if let Some(m) = labels {
            for &v in members {
                w.put(f32s_as_bytes(m.row(v as usize)))?;
            }
        }
        let (written, checksum) = w.finish()?;
        debug_assert_eq!(written, layout.file_len, "shard writer layout drift");
        std::fs::rename(&tmp, &path)?;
        shards.push(ShardInfo {
            members: k as u64,
            edges: e as u64,
            file_len: written as u64,
            checksum,
        });
    }

    // Index file: header ++ part_of ++ local_of.
    let mut index = Vec::with_capacity(INDEX_HEADER_LEN + 8 * n);
    index.extend_from_slice(&INDEX_MAGIC.to_le_bytes());
    index.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    index.extend_from_slice(&(n as u64).to_le_bytes());
    index.extend_from_slice(u32s_as_bytes(&part_of));
    index.extend_from_slice(u32s_as_bytes(&local_of));
    write_atomic(&dir.join(INDEX_FILE), &index)?;

    // Manifest last: its presence marks the store complete.
    let (order, rank) = ordering.unwrap_or((StoreOrder::Natural, Vec::new()));
    let manifest = StoreManifest {
        n: n as u64,
        num_edges: graph.num_edges() as u64,
        feature_dim: f as u32,
        label_dim: l as u32,
        shards,
        order,
        rank,
        feature_precision,
    };
    manifest.save(dir)?;
    Ok(manifest)
}

/// Recompute every present shard file's checksum against the manifest.
/// Returns the shard ids that failed (empty = all good). Missing shard
/// files are skipped — presence is a deployment choice, corruption is not.
pub fn verify_store(dir: &Path) -> io::Result<Vec<usize>> {
    let manifest = StoreManifest::load(dir)?;
    let mut failed = Vec::new();
    let mut buf = vec![0u8; 1 << 20];
    for (sid, info) in manifest.shards.iter().enumerate() {
        let path = dir.join(shard_file_name(sid));
        let file = match std::fs::File::open(&path) {
            Ok(f) => f,
            Err(e) if e.kind() == io::ErrorKind::NotFound => continue,
            Err(e) => return Err(e),
        };
        let mut hash = Fnv1a::default();
        let mut total = 0u64;
        let mut reader = io::BufReader::new(file);
        loop {
            let got = reader.read(&mut buf)?;
            if got == 0 {
                break;
            }
            hash.update(&buf[..got]);
            total += got as u64;
        }
        if total != info.file_len || hash.finish() != info.checksum {
            failed.push(sid);
        }
    }
    Ok(failed)
}

/// One loaded (memory-mapped) shard. Readers hold an `Arc<ShardData>`
/// handed out by the store's cache, so eviction can never unmap pages a
/// reader is still walking: the munmap happens when the last `Arc` drops.
pub struct ShardData {
    map: super::mmap::Mapping,
    k: usize,
    e: usize,
    f: usize,
    l: usize,
    fp: Precision,
    layout: ShardLayout,
}

impl ShardData {
    /// Map and validate one shard file. The entire layout is checked
    /// against the header and `expected` (the manifest entry) before any
    /// slice is handed out, so truncated or foreign files are loud
    /// [`InvalidData`](io::ErrorKind::InvalidData) errors here.
    pub fn load(path: &Path, shard_id: usize, expected: Option<&ShardInfo>) -> io::Result<Self> {
        endian_guard()?;
        let file = std::fs::File::open(path).map_err(|e| {
            io::Error::new(e.kind(), format!("opening shard {}: {e}", path.display()))
        })?;
        let file_len = file.metadata()?.len() as usize;
        let ctx = |msg: String| bad(format!("shard {}: {msg}", path.display()));
        if file_len < SHARD_HEADER_LEN {
            return Err(ctx(format!(
                "file is {file_len} bytes, smaller than the {SHARD_HEADER_LEN}-byte header \
                 (truncated write?)"
            )));
        }
        if let Some(info) = expected {
            if file_len as u64 != info.file_len {
                return Err(ctx(format!(
                    "file is {file_len} bytes but the manifest records {} \
                     (truncated or corrupt — refusing to read)",
                    info.file_len
                )));
            }
        }
        let map = super::mmap::Mapping::map(&file, file_len)?;
        let mut header = Bytes::from(map.bytes()[..SHARD_HEADER_LEN].to_vec());
        if header.get_u32_le() != SHARD_MAGIC {
            return Err(ctx("bad magic (not a gsgcn shard file)".into()));
        }
        let version = header.get_u32_le();
        if version != FORMAT_VERSION {
            return Err(ctx(format!(
                "format version {version}, this build reads v{FORMAT_VERSION}"
            )));
        }
        let id = header.get_u32_le() as usize;
        if id != shard_id {
            return Err(ctx(format!("header says shard {id}, expected {shard_id}")));
        }
        // The one-time padding slot now carries the feature-precision
        // code; pre-precision shards wrote 0 there, which decodes to f32.
        let prec_code = header.get_u32_le();
        let fp = precision_from_code(prec_code).ok_or_else(|| {
            ctx(format!(
                "unknown feature-precision code {prec_code} (written by a newer build?)"
            ))
        })?;
        let k = header.get_u64_le() as usize;
        let e = header.get_u64_le() as usize;
        let f = header.get_u32_le() as usize;
        let l = header.get_u32_le() as usize;
        let layout = ShardLayout::with_precision(k, e, f, l, fp);
        if layout.file_len != file_len {
            return Err(ctx(format!(
                "header implies {} bytes but the file has {file_len} \
                 (truncated or corrupt — refusing to read)",
                layout.file_len
            )));
        }
        if let Some(info) = expected {
            if info.members != k as u64 || info.edges != e as u64 {
                return Err(ctx(format!(
                    "header (k={k}, e={e}) disagrees with the manifest (k={}, e={})",
                    info.members, info.edges
                )));
            }
        }
        Ok(ShardData {
            map,
            k,
            e,
            f,
            l,
            fp,
            layout,
        })
    }

    fn view_u32(&self, off: usize, count: usize) -> &[u32] {
        let bytes = &self.map.bytes()[off..off + 4 * count];
        debug_assert_eq!(bytes.as_ptr() as usize % 4, 0);
        // Safety: range-checked above, 4-aligned by the section layout.
        unsafe { std::slice::from_raw_parts(bytes.as_ptr() as *const u32, count) }
    }

    fn view_u64(&self, off: usize, count: usize) -> &[u64] {
        let bytes = &self.map.bytes()[off..off + 8 * count];
        debug_assert_eq!(bytes.as_ptr() as usize % 8, 0);
        // Safety: range-checked above, 8-aligned by the section layout.
        unsafe { std::slice::from_raw_parts(bytes.as_ptr() as *const u64, count) }
    }

    fn view_f32(&self, off: usize, count: usize) -> &[f32] {
        let bytes = &self.map.bytes()[off..off + 4 * count];
        debug_assert_eq!(bytes.as_ptr() as usize % 4, 0);
        // Safety: range-checked above, 4-aligned; any bit pattern is a
        // valid f32.
        unsafe { std::slice::from_raw_parts(bytes.as_ptr() as *const f32, count) }
    }

    fn view_u16(&self, off: usize, count: usize) -> &[u16] {
        let bytes = &self.map.bytes()[off..off + 2 * count];
        debug_assert_eq!(bytes.as_ptr() as usize % 2, 0);
        // Safety: range-checked above, 2-aligned by the section layout.
        unsafe { std::slice::from_raw_parts(bytes.as_ptr() as *const u16, count) }
    }

    /// Member vertex count `k`.
    pub fn num_members(&self) -> usize {
        self.k
    }

    /// Directed edges stored in this shard.
    pub fn num_edges(&self) -> usize {
        self.e
    }

    /// Bytes this shard holds mapped (charged against the cache budget).
    pub fn mapped_bytes(&self) -> usize {
        self.layout.file_len
    }

    /// Global ids of the member vertices, in placement order (ascending
    /// for natural stores, rank order for ordered ones — readers resolve
    /// vertices through the index, never by searching this list).
    pub fn members(&self) -> &[u32] {
        self.view_u32(self.layout.members_off, self.k)
    }

    fn offsets(&self) -> &[u64] {
        self.view_u64(self.layout.offsets_off, self.k + 1)
    }

    /// Full adjacency section (global ids).
    pub fn adj(&self) -> &[u32] {
        self.view_u32(self.layout.adj_off, self.e)
    }

    /// `(start, len)` of member `local`'s neighbor list within [`Self::adj`].
    pub fn adj_range(&self, local: usize) -> (usize, usize) {
        let off = self.offsets();
        let start = off[local] as usize;
        (start, off[local + 1] as usize - start)
    }

    /// Degree of member `local`.
    pub fn degree(&self, local: usize) -> usize {
        self.adj_range(local).1
    }

    /// The `j`-th neighbor (global id) of member `local`.
    pub fn neighbor(&self, local: usize, j: usize) -> u32 {
        let (start, len) = self.adj_range(local);
        debug_assert!(j < len);
        self.adj()[start + j]
    }

    /// Neighbor list (global ids) of member `local`.
    pub fn neighbors(&self, local: usize) -> &[u32] {
        let (start, len) = self.adj_range(local);
        &self.adj()[start..start + len]
    }

    /// Feature columns stored per member (0 = none).
    pub fn feature_dim(&self) -> usize {
        self.f
    }

    /// Label columns stored per member (0 = none).
    pub fn label_dim(&self) -> usize {
        self.l
    }

    /// Element type of the stored feature rows (from the shard header,
    /// so a shard is self-describing even without its manifest).
    pub fn feature_precision(&self) -> Precision {
        self.fp
    }

    /// Feature row of member `local` as a borrowed `&[f32]` slice.
    /// Only valid for f32 shards — bf16 rows have no f32 representation
    /// in the mapping; use [`Self::copy_feature_row_into`] instead.
    pub fn feature_row(&self, local: usize) -> &[f32] {
        assert_eq!(
            self.fp,
            Precision::F32,
            "feature_row: shard stores bf16 features; use copy_feature_row_into"
        );
        debug_assert!(local < self.k);
        self.view_f32(self.layout.feat_off + 4 * local * self.f, self.f)
    }

    /// Copy member `local`'s feature row into `out` as f32, widening from
    /// the stored precision (memcpy for f32 shards, exact bf16→f32 widen
    /// for bf16 shards — widening never rounds).
    pub fn copy_feature_row_into(&self, local: usize, out: &mut [f32]) {
        debug_assert!(local < self.k);
        assert_eq!(out.len(), self.f, "feature row destination length mismatch");
        match self.fp {
            Precision::F32 => out
                .copy_from_slice(self.view_f32(self.layout.feat_off + 4 * local * self.f, self.f)),
            Precision::Bf16 => {
                let bits = self.view_u16(self.layout.feat_off + 2 * local * self.f, self.f);
                bf16::widen_slice(bf16::from_bits_slice(bits), out);
            }
        }
    }

    /// Label row of member `local`.
    pub fn label_row(&self, local: usize) -> &[f32] {
        debug_assert!(local < self.k);
        self.view_f32(self.layout.label_off + 4 * local * self.l, self.l)
    }
}
