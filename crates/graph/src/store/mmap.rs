//! The memory-mapped shard backend: lazily maps shard files on demand and
//! bounds the total mapped bytes with a CLOCK (second-chance) cache —
//! the same eviction discipline as the serving activation cache, applied
//! to whole shards instead of activation rows.
//!
//! Why bound *mapped* bytes rather than resident bytes: the out-of-core CI
//! smoke asserts the RSS cap with `ulimit -v`, which limits the address
//! space — a mapping counts against it whether or not its pages are
//! resident. Bounding the mappings therefore bounds both.
//!
//! Reader safety: `get()` hands out `Arc<ShardData>`. Eviction only drops
//! the cache's own `Arc`; the munmap runs when the **last** reader drops
//! theirs, so a reader never observes a partially unmapped (or remapped)
//! shard — the same "readers never observe partial state" rule the
//! activation cache enforces with its all-or-nothing gather.
//!
//! # Structure
//!
//! The cache state lives in [`StoreCore`], shared by `Arc` between the
//! consumer-facing [`MmapStore`] and the optional background
//! [`Prefetcher`](super::prefetch::Prefetcher) thread
//! (`GSGCN_SHARD_PREFETCH`, or the CLI's `--prefetch`). The prefetcher
//! pages shards in *ahead* of the consumer through
//! [`StoreCore::prefetch_load`], whose eviction sweep is **guarded**: it
//! never clears referenced bits and never evicts pinned or referenced
//! shards, so speculative page-in cannot push out what the current batch
//! is reading — at worst it declines and the demand path pays the map
//! synchronously, exactly as with no prefetcher at all.

use super::prefetch::{prefetch_from_env, Prefetcher};
use super::shard::{
    shard_file_name, ShardData, StoreManifest, FORMAT_VERSION, INDEX_FILE, INDEX_HEADER_LEN,
    INDEX_MAGIC,
};
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// A read-only file mapping (unix: `mmap(2)`; elsewhere: a heap copy so
/// the store still functions, without the memory bound).
pub struct Mapping {
    #[cfg(unix)]
    ptr: *mut u8,
    #[cfg(unix)]
    len: usize,
    #[cfg(not(unix))]
    buf: Vec<u8>,
}

#[cfg(unix)]
mod sys {
    extern "C" {
        pub fn mmap(
            addr: *mut u8,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut u8;
        pub fn munmap(addr: *mut u8, len: usize) -> i32;
    }
    pub const PROT_READ: i32 = 1;
    pub const MAP_SHARED: i32 = 1;
}

// Safety: the mapping is read-only for its whole lifetime.
unsafe impl Send for Mapping {}
unsafe impl Sync for Mapping {}

impl Mapping {
    /// Map the first `len` bytes of `file` read-only.
    #[cfg(unix)]
    pub fn map(file: &std::fs::File, len: usize) -> io::Result<Mapping> {
        use std::os::unix::io::AsRawFd;
        if len == 0 {
            return Ok(Mapping {
                ptr: std::ptr::null_mut(),
                len: 0,
            });
        }
        let ptr = unsafe {
            sys::mmap(
                std::ptr::null_mut(),
                len,
                sys::PROT_READ,
                sys::MAP_SHARED,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr as isize == -1 {
            return Err(io::Error::last_os_error());
        }
        Ok(Mapping { ptr, len })
    }

    #[cfg(not(unix))]
    pub fn map(file: &std::fs::File, len: usize) -> io::Result<Mapping> {
        use std::io::Read;
        let mut buf = Vec::with_capacity(len);
        let got = file.take(len as u64).read_to_end(&mut buf)?;
        if got != len {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("short read: got {got} of {len} bytes"),
            ));
        }
        Ok(Mapping { buf })
    }

    /// The mapped bytes.
    #[cfg(unix)]
    pub fn bytes(&self) -> &[u8] {
        if self.len == 0 {
            return &[];
        }
        // Safety: ptr/len come from a successful mmap that lives until Drop.
        unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
    }

    #[cfg(not(unix))]
    pub fn bytes(&self) -> &[u8] {
        &self.buf
    }
}

#[cfg(unix)]
impl Drop for Mapping {
    fn drop(&mut self) {
        if self.len > 0 {
            // Safety: exact pair of the successful mmap in `map`.
            unsafe {
                sys::munmap(self.ptr, self.len);
            }
        }
    }
}

/// Counters exported by [`MmapStore::cache_stats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreCacheStats {
    /// Shard probes answered from an already-mapped shard.
    pub hits: u64,
    /// Shard probes that had to map the file.
    pub misses: u64,
    /// Shards unmapped by the CLOCK hand to respect the budget.
    pub evictions: u64,
    /// Bytes currently charged against the budget (mapped shards).
    pub mapped_bytes: usize,
    /// Shards currently mapped.
    pub resident_shards: usize,
    /// Prefetch requests accepted into the queue (post-dedup).
    pub prefetch_issued: u64,
    /// Demand probes served by a shard the prefetcher had mapped.
    pub prefetch_hits: u64,
    /// Prefetched shards evicted (or declined for lack of evictable
    /// room) without ever serving a demand probe.
    pub prefetch_wasted: u64,
}

impl StoreCacheStats {
    /// Hit fraction over all shard probes so far (0 when never probed).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// One-line human summary for CLI reports and banners.
    pub fn summary(&self) -> String {
        let mut s = format!(
            "hits {} misses {} evictions {} ({:.1}% hit rate, {} shards / {:.1} MiB mapped)",
            self.hits,
            self.misses,
            self.evictions,
            100.0 * self.hit_rate(),
            self.resident_shards,
            self.mapped_bytes as f64 / (1 << 20) as f64,
        );
        if self.prefetch_issued > 0 {
            s.push_str(&format!(
                "; prefetch issued {} hit {} wasted {}",
                self.prefetch_issued, self.prefetch_hits, self.prefetch_wasted
            ));
        }
        s
    }
}

/// One cache slot per shard: the resident mapping (if any) plus the CLOCK
/// bookkeeping bits. `referenced` is flipped lock-free on every hit;
/// `pinned` exempts hot shards from eviction entirely; `prefetched`
/// marks a mapping the prefetcher brought in that no demand probe has
/// used yet (for the hit/wasted accounting).
struct Slot {
    data: Mutex<Option<Arc<ShardData>>>,
    referenced: AtomicBool,
    pinned: AtomicBool,
    prefetched: AtomicBool,
    /// Whether the shard file exists on disk (validated at open).
    present: bool,
}

/// The global → (shard, local) index, itself memory-mapped (it is the one
/// O(n) structure the store keeps "resident"; 8 bytes per vertex, charged
/// as fixed overhead rather than against the shard budget).
struct IndexView {
    map: Mapping,
    n: usize,
}

impl IndexView {
    fn open(dir: &Path, n: usize) -> io::Result<IndexView> {
        let path = dir.join(INDEX_FILE);
        let bad = |msg: String| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("store index {}: {msg}", path.display()),
            )
        };
        let file = std::fs::File::open(&path).map_err(|e| {
            io::Error::new(
                e.kind(),
                format!("opening store index {}: {e}", path.display()),
            )
        })?;
        let len = file.metadata()?.len() as usize;
        let expect = INDEX_HEADER_LEN + 8 * n;
        if len != expect {
            return Err(bad(format!(
                "file is {len} bytes, expected {expect} for n={n} (truncated or stale)"
            )));
        }
        let map = Mapping::map(&file, len)?;
        let b = map.bytes();
        let magic = u32::from_le_bytes(b[0..4].try_into().unwrap());
        let version = u32::from_le_bytes(b[4..8].try_into().unwrap());
        let stored_n = u64::from_le_bytes(b[8..16].try_into().unwrap()) as usize;
        if magic != INDEX_MAGIC {
            return Err(bad("bad magic".into()));
        }
        if version != FORMAT_VERSION {
            return Err(bad(format!(
                "format version {version}, this build reads v{FORMAT_VERSION}"
            )));
        }
        if stored_n != n {
            return Err(bad(format!(
                "index covers {stored_n} vertices, manifest says {n}"
            )));
        }
        Ok(IndexView { map, n })
    }

    #[inline]
    fn entry(&self, base: usize, v: u32) -> u32 {
        let off = base + 4 * v as usize;
        let b = &self.map.bytes()[off..off + 4];
        u32::from_le_bytes(b.try_into().unwrap())
    }

    #[inline]
    fn part_of(&self, v: u32) -> u32 {
        debug_assert!((v as usize) < self.n);
        self.entry(INDEX_HEADER_LEN, v)
    }

    #[inline]
    fn local_of(&self, v: u32) -> u32 {
        debug_assert!((v as usize) < self.n);
        self.entry(INDEX_HEADER_LEN + 4 * self.n, v)
    }
}

/// The shared cache state behind an opened store: manifest, index, slots
/// and every counter. [`MmapStore`] and the prefetch thread each hold an
/// `Arc<StoreCore>`, so the thread needs no lifetime tie to the store
/// (drop order is handled by [`MmapStore::drop`] joining the thread
/// before the core can be orphaned).
pub(super) struct StoreCore {
    dir: PathBuf,
    manifest: StoreManifest,
    /// Inverse of `manifest.rank` (internal id → external vertex);
    /// empty for natural stores (identity).
    unrank: Vec<u32>,
    index: IndexView,
    slots: Vec<Slot>,
    /// Mapped-bytes budget the CLOCK hand enforces (best effort: a single
    /// shard larger than the budget still loads — the alternative is
    /// livelock).
    budget: usize,
    mapped: AtomicUsize,
    hand: AtomicUsize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    prefetch_issued: AtomicU64,
    prefetch_hits: AtomicU64,
    prefetch_wasted: AtomicU64,
    /// `(cap, d_eff)` memo for `Topology::capped_mean_degree` — the scan
    /// touches every shard, which a bounded cache must never repeat per
    /// sampler batch.
    mean_degree_memo: Mutex<Vec<(u32, f64)>>,
}

impl StoreCore {
    pub(super) fn num_vertices(&self) -> usize {
        self.manifest.n as usize
    }

    pub(super) fn num_shards(&self) -> usize {
        self.slots.len()
    }

    #[inline]
    fn shard_of(&self, v: u32) -> u32 {
        self.index.part_of(v)
    }

    /// Get shard `sid`, mapping it on demand and evicting others to stay
    /// under the byte budget.
    fn get(&self, sid: usize) -> io::Result<Arc<ShardData>> {
        let slot = self.slots.get(sid).ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("shard {sid} out of range ({} shards)", self.slots.len()),
            )
        })?;
        if !slot.present {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!(
                    "shard {sid} is not present in store {} (partial deployment?)",
                    self.dir.display()
                ),
            ));
        }
        {
            let guard = slot.data.lock().unwrap_or_else(|p| p.into_inner());
            if let Some(d) = guard.as_ref() {
                self.note_demand_hit(slot);
                return Ok(Arc::clone(d));
            }
        }
        // Miss: load under the slot lock (a racing second loader waits and
        // then takes the hit path above via the re-check).
        let mut guard = slot.data.lock().unwrap_or_else(|p| p.into_inner());
        if let Some(d) = guard.as_ref() {
            self.note_demand_hit(slot);
            return Ok(Arc::clone(d));
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let data = Arc::new(ShardData::load(
            &self.dir.join(shard_file_name(sid)),
            sid,
            Some(&self.manifest.shards[sid]),
        )?);
        self.mapped
            .fetch_add(data.mapped_bytes(), Ordering::Relaxed);
        slot.referenced.store(true, Ordering::Relaxed);
        slot.prefetched.store(false, Ordering::Relaxed);
        *guard = Some(Arc::clone(&data));
        drop(guard);
        self.evict_to_budget(sid);
        Ok(data)
    }

    /// Demand-probe hit bookkeeping: flip the CLOCK bit, count the hit,
    /// and credit the prefetcher when it was the one that mapped this.
    fn note_demand_hit(&self, slot: &Slot) {
        slot.referenced.store(true, Ordering::Relaxed);
        self.hits.fetch_add(1, Ordering::Relaxed);
        if slot.prefetched.swap(false, Ordering::Relaxed) {
            self.prefetch_hits.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// CLOCK sweep: unmap unpinned, unreferenced shards until the mapped
    /// total fits the budget. `keep` (the shard just loaded) is exempt so
    /// the caller's handout is never immediately evicted.
    fn evict_to_budget(&self, keep: usize) {
        let nslots = self.slots.len();
        if nslots <= 1 {
            return;
        }
        // Two full sweeps: the first may only clear referenced bits.
        let mut steps = 2 * nslots;
        while self.mapped.load(Ordering::Relaxed) > self.budget && steps > 0 {
            steps -= 1;
            let i = self.hand.fetch_add(1, Ordering::Relaxed) % nslots;
            if i == keep || self.slots[i].pinned.load(Ordering::Relaxed) {
                continue;
            }
            if self.slots[i].referenced.swap(false, Ordering::Relaxed) {
                continue; // second chance
            }
            self.evict_slot(i);
        }
    }

    /// Unmap slot `i` if mapped (caller has already decided it is
    /// evictable). A still-prefetched mapping going out unused is counted
    /// wasted.
    fn evict_slot(&self, i: usize) {
        let mut guard = self.slots[i].data.lock().unwrap_or_else(|p| p.into_inner());
        if let Some(d) = guard.take() {
            self.mapped.fetch_sub(d.mapped_bytes(), Ordering::Relaxed);
            self.evictions.fetch_add(1, Ordering::Relaxed);
            if self.slots[i].prefetched.swap(false, Ordering::Relaxed) {
                self.prefetch_wasted.fetch_add(1, Ordering::Relaxed);
            }
            // Dropping `d` here only drops the cache's Arc; readers
            // holding clones keep the mapping alive until they finish.
        }
    }

    /// Guarded eviction for the prefetch path: one sweep that skips
    /// pinned **and referenced** slots without clearing any referenced
    /// bit — speculative page-in must never push out what the current
    /// batch is reading, and must not perturb the demand CLOCK state.
    /// Returns whether `extra` more bytes now fit the budget.
    fn evict_guarded(&self, extra: usize) -> bool {
        let nslots = self.slots.len();
        for i in 0..nslots {
            if self.mapped.load(Ordering::Relaxed) + extra <= self.budget {
                return true;
            }
            if self.slots[i].pinned.load(Ordering::Relaxed)
                || self.slots[i].referenced.load(Ordering::Relaxed)
            {
                continue;
            }
            self.evict_slot(i);
        }
        self.mapped.load(Ordering::Relaxed) + extra <= self.budget
    }

    /// Prefetch-side page-in of shard `sid`: map it if absent, evicting
    /// only via the guarded sweep. Declines (counting the request wasted)
    /// when nothing evictable can make room — the demand path then pays
    /// the map synchronously, exactly as without a prefetcher.
    pub(super) fn prefetch_load(&self, sid: usize) -> io::Result<()> {
        let Some(slot) = self.slots.get(sid) else {
            return Ok(());
        };
        if !slot.present {
            return Ok(());
        }
        {
            let guard = slot.data.lock().unwrap_or_else(|p| p.into_inner());
            if guard.is_some() {
                return Ok(()); // already resident: nothing to do
            }
        }
        let need = self.manifest.shards[sid].file_len as usize;
        if self.mapped.load(Ordering::Relaxed) + need > self.budget && !self.evict_guarded(need) {
            self.prefetch_wasted.fetch_add(1, Ordering::Relaxed);
            return Ok(());
        }
        let mut guard = slot.data.lock().unwrap_or_else(|p| p.into_inner());
        if guard.is_some() {
            return Ok(()); // raced with a demand load
        }
        let data = Arc::new(ShardData::load(
            &self.dir.join(shard_file_name(sid)),
            sid,
            Some(&self.manifest.shards[sid]),
        )?);
        self.mapped
            .fetch_add(data.mapped_bytes(), Ordering::Relaxed);
        // Not referenced yet: a prefetched-but-never-used shard is the
        // first thing both sweeps may reclaim.
        slot.referenced.store(false, Ordering::Relaxed);
        slot.prefetched.store(true, Ordering::Relaxed);
        *guard = Some(data);
        Ok(())
    }

    fn cache_stats(&self) -> StoreCacheStats {
        let mut resident_shards = 0;
        for slot in &self.slots {
            if slot
                .data
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .is_some()
            {
                resident_shards += 1;
            }
        }
        StoreCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            mapped_bytes: self.mapped.load(Ordering::Relaxed),
            resident_shards,
            prefetch_issued: self.prefetch_issued.load(Ordering::Relaxed),
            prefetch_hits: self.prefetch_hits.load(Ordering::Relaxed),
            prefetch_wasted: self.prefetch_wasted.load(Ordering::Relaxed),
        }
    }
}

/// A shard store opened for memory-mapped access. See the module docs.
pub struct MmapStore {
    core: Arc<StoreCore>,
    /// Background page-in thread, when enabled at open.
    prefetcher: Option<Prefetcher>,
    /// When set, `Drop` removes the whole store directory (used by the
    /// env-rerouted temp spill, so test-suite runs leave no tmp litter).
    remove_on_drop: bool,
}

impl MmapStore {
    /// Open the store written under `dir`, bounding mapped shard bytes by
    /// `budget` (bytes); prefetch follows `GSGCN_SHARD_PREFETCH`. Eagerly
    /// validates the manifest, the index and every *present* shard file's
    /// length — truncation fails here, not at first access. Missing shard
    /// files leave their shard unavailable.
    pub fn open(dir: &Path, budget: usize) -> io::Result<MmapStore> {
        Self::open_with_prefetch(dir, budget, prefetch_from_env())
    }

    /// As [`Self::open`] with an explicit prefetch choice (the CLI flag
    /// path, and tests that must not depend on the environment).
    pub fn open_with_prefetch(dir: &Path, budget: usize, prefetch: bool) -> io::Result<MmapStore> {
        let manifest = StoreManifest::load(dir)?;
        let n = manifest.n as usize;
        let index = IndexView::open(dir, n)?;
        let mut slots = Vec::with_capacity(manifest.num_shards());
        for (sid, info) in manifest.shards.iter().enumerate() {
            let path = dir.join(shard_file_name(sid));
            let present = match std::fs::metadata(&path) {
                Ok(meta) => {
                    if meta.len() != info.file_len {
                        return Err(io::Error::new(
                            io::ErrorKind::InvalidData,
                            format!(
                                "shard {}: file is {} bytes but the manifest records {} \
                                 (truncated or corrupt — refusing to open the store)",
                                path.display(),
                                meta.len(),
                                info.file_len
                            ),
                        ));
                    }
                    true
                }
                Err(e) if e.kind() == io::ErrorKind::NotFound => false,
                Err(e) => return Err(e),
            };
            slots.push(Slot {
                data: Mutex::new(None),
                referenced: AtomicBool::new(false),
                pinned: AtomicBool::new(false),
                prefetched: AtomicBool::new(false),
                present,
            });
        }
        let mut unrank = Vec::new();
        if !manifest.rank.is_empty() {
            unrank = vec![0u32; n];
            for (v, &r) in manifest.rank.iter().enumerate() {
                unrank[r as usize] = v as u32;
            }
        }
        let core = Arc::new(StoreCore {
            dir: dir.to_path_buf(),
            manifest,
            unrank,
            index,
            slots,
            budget: budget.max(1),
            mapped: AtomicUsize::new(0),
            hand: AtomicUsize::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            prefetch_issued: AtomicU64::new(0),
            prefetch_hits: AtomicU64::new(0),
            prefetch_wasted: AtomicU64::new(0),
            mean_degree_memo: Mutex::new(Vec::new()),
        });
        let prefetcher = prefetch.then(|| Prefetcher::spawn(Arc::clone(&core)));
        Ok(MmapStore {
            core,
            prefetcher,
            remove_on_drop: false,
        })
    }

    /// Mark the store directory for removal when the store drops (the
    /// env-rerouted temp spill owns its directory).
    pub(super) fn set_remove_on_drop(&mut self) {
        self.remove_on_drop = true;
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.core.dir
    }

    pub fn manifest(&self) -> &StoreManifest {
        &self.core.manifest
    }

    pub fn num_vertices(&self) -> usize {
        self.core.num_vertices()
    }

    pub fn num_edges(&self) -> usize {
        self.core.manifest.num_edges as usize
    }

    pub fn feature_dim(&self) -> usize {
        self.core.manifest.feature_dim as usize
    }

    /// Element type of the stored feature rows (f32 unless the store was
    /// written with `--features bf16`). Gathers always return f32.
    pub fn feature_precision(&self) -> gsgcn_tensor::Precision {
        self.core.manifest.feature_precision
    }

    pub fn label_dim(&self) -> usize {
        self.core.manifest.label_dim as usize
    }

    pub fn num_shards(&self) -> usize {
        self.core.num_shards()
    }

    /// Memoized `d_eff` for `cap`, if a scan already ran on this store.
    pub fn cached_mean_degree(&self, cap: u32) -> Option<f64> {
        let memo = self
            .core
            .mean_degree_memo
            .lock()
            .unwrap_or_else(|p| p.into_inner());
        memo.iter().find(|&&(c, _)| c == cap).map(|&(_, d)| d)
    }

    /// Record the result of a `capped_mean_degree` scan for `cap`.
    pub fn store_mean_degree(&self, cap: u32, d_eff: f64) {
        let mut memo = self
            .core
            .mean_degree_memo
            .lock()
            .unwrap_or_else(|p| p.into_inner());
        if !memo.iter().any(|&(c, _)| c == cap) {
            memo.push((cap, d_eff));
        }
    }

    /// Mapped-bytes budget.
    pub fn budget_bytes(&self) -> usize {
        self.core.budget
    }

    /// Placement order this store was written with.
    pub fn order(&self) -> super::order::StoreOrder {
        self.core.manifest.order
    }

    /// Internal (placement) id of external vertex `v` (identity for
    /// natural stores).
    #[inline]
    pub fn to_internal(&self, v: u32) -> u32 {
        self.core.manifest.to_internal(v)
    }

    /// External vertex of internal (placement) id `i` — the inverse of
    /// [`Self::to_internal`].
    #[inline]
    pub fn to_external(&self, i: u32) -> u32 {
        if self.core.unrank.is_empty() {
            i
        } else {
            self.core.unrank[i as usize]
        }
    }

    /// Whether a prefetch thread is serving this store.
    pub fn prefetch_enabled(&self) -> bool {
        self.prefetcher.as_ref().is_some_and(|p| !p.degraded())
    }

    /// Hand upcoming vertices to the prefetch thread (advisory, never
    /// blocks): their shards are paged in ahead of the demand reads.
    /// Returns how many shard requests were accepted; 0 with prefetch
    /// off, degraded, or everything already queued.
    pub fn prefetch_nodes(&self, nodes: &[u32]) -> usize {
        if self.prefetcher.is_none() {
            return 0;
        }
        let n = self.num_vertices();
        let mut want = Vec::new();
        let mut seen = vec![false; self.core.slots.len()];
        for &v in nodes {
            if (v as usize) >= n {
                continue;
            }
            let sid = self.core.shard_of(v) as usize;
            if !seen[sid] && self.core.slots[sid].present {
                seen[sid] = true;
                want.push(sid as u32);
            }
        }
        self.prefetch_shards(&want)
    }

    /// As [`Self::prefetch_nodes`] for explicit shard ids.
    pub fn prefetch_shards(&self, sids: &[u32]) -> usize {
        let Some(pf) = &self.prefetcher else { return 0 };
        let accepted = pf.request(sids);
        self.core
            .prefetch_issued
            .fetch_add(accepted as u64, Ordering::Relaxed);
        accepted
    }

    /// Test hook: make the prefetch thread panic on its next request, to
    /// exercise the degraded (synchronous page-in) path.
    #[cfg(test)]
    pub(crate) fn inject_prefetch_panic(&self) {
        if let Some(pf) = &self.prefetcher {
            pf.inject_panic();
        }
    }

    /// Shard id of vertex `v`.
    #[inline]
    pub fn shard_of(&self, v: u32) -> u32 {
        self.core.shard_of(v)
    }

    /// Shard-local slot of vertex `v`.
    #[inline]
    pub fn local_of(&self, v: u32) -> u32 {
        self.core.index.local_of(v)
    }

    /// Whether `v` is a valid vertex **and** its shard file is present.
    pub fn contains(&self, v: u32) -> bool {
        (v as usize) < self.num_vertices() && self.core.slots[self.shard_of(v) as usize].present
    }

    /// Whether shard `sid`'s file is present on disk.
    pub fn shard_present(&self, sid: usize) -> bool {
        self.core.slots.get(sid).is_some_and(|s| s.present)
    }

    /// Get shard `sid`, mapping it on demand and evicting others to stay
    /// under the byte budget.
    pub fn get(&self, sid: usize) -> io::Result<Arc<ShardData>> {
        self.core.get(sid)
    }

    /// The shard holding vertex `v` plus `v`'s local slot in it.
    #[inline]
    pub fn shard_for(&self, v: u32) -> io::Result<(Arc<ShardData>, usize)> {
        let sid = self.shard_of(v) as usize;
        Ok((self.core.get(sid)?, self.local_of(v) as usize))
    }

    /// Pin the shards containing `nodes`: map them now and exempt them
    /// from eviction until [`Self::unpin_all`]. Used by serving to keep
    /// the hot working set resident across queries.
    pub fn pin_nodes(&self, nodes: &[u32]) -> io::Result<usize> {
        let mut pinned = 0;
        for &v in nodes {
            if (v as usize) >= self.num_vertices() {
                continue;
            }
            let sid = self.shard_of(v) as usize;
            if !self.core.slots[sid].present {
                continue;
            }
            if !self.core.slots[sid].pinned.swap(true, Ordering::Relaxed) {
                self.core.get(sid)?;
                pinned += 1;
            }
        }
        Ok(pinned)
    }

    /// Release every pin taken by [`Self::pin_nodes`].
    pub fn unpin_all(&self) {
        for slot in &self.core.slots {
            slot.pinned.store(false, Ordering::Relaxed);
        }
        // Re-apply the budget now that pins no longer shield shards.
        self.core.evict_to_budget(usize::MAX);
    }

    /// Counter snapshot.
    pub fn cache_stats(&self) -> StoreCacheStats {
        self.core.cache_stats()
    }
}

impl Drop for MmapStore {
    fn drop(&mut self) {
        // Join the prefetch thread before any directory teardown: its
        // in-flight load must not race the removal below.
        self.prefetcher.take();
        if self.remove_on_drop {
            let _ = std::fs::remove_dir_all(&self.core.dir);
        }
    }
}

impl std::fmt::Debug for MmapStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MmapStore")
            .field("dir", &self.core.dir)
            .field("n", &self.num_vertices())
            .field("shards", &self.num_shards())
            .field("budget_bytes", &self.core.budget)
            .field("order", &self.order())
            .field("prefetch", &self.prefetcher.is_some())
            .field("stats", &self.cache_stats())
            .finish()
    }
}
