//! The memory-mapped shard backend: lazily maps shard files on demand and
//! bounds the total mapped bytes with a CLOCK (second-chance) cache —
//! the same eviction discipline as the serving activation cache, applied
//! to whole shards instead of activation rows.
//!
//! Why bound *mapped* bytes rather than resident bytes: the out-of-core CI
//! smoke asserts the RSS cap with `ulimit -v`, which limits the address
//! space — a mapping counts against it whether or not its pages are
//! resident. Bounding the mappings therefore bounds both.
//!
//! Reader safety: `get()` hands out `Arc<ShardData>`. Eviction only drops
//! the cache's own `Arc`; the munmap runs when the **last** reader drops
//! theirs, so a reader never observes a partially unmapped (or remapped)
//! shard — the same "readers never observe partial state" rule the
//! activation cache enforces with its all-or-nothing gather.

use super::shard::{
    shard_file_name, ShardData, StoreManifest, FORMAT_VERSION, INDEX_FILE, INDEX_HEADER_LEN,
    INDEX_MAGIC,
};
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// A read-only file mapping (unix: `mmap(2)`; elsewhere: a heap copy so
/// the store still functions, without the memory bound).
pub struct Mapping {
    #[cfg(unix)]
    ptr: *mut u8,
    #[cfg(unix)]
    len: usize,
    #[cfg(not(unix))]
    buf: Vec<u8>,
}

#[cfg(unix)]
mod sys {
    extern "C" {
        pub fn mmap(
            addr: *mut u8,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut u8;
        pub fn munmap(addr: *mut u8, len: usize) -> i32;
    }
    pub const PROT_READ: i32 = 1;
    pub const MAP_SHARED: i32 = 1;
}

// Safety: the mapping is read-only for its whole lifetime.
unsafe impl Send for Mapping {}
unsafe impl Sync for Mapping {}

impl Mapping {
    /// Map the first `len` bytes of `file` read-only.
    #[cfg(unix)]
    pub fn map(file: &std::fs::File, len: usize) -> io::Result<Mapping> {
        use std::os::unix::io::AsRawFd;
        if len == 0 {
            return Ok(Mapping {
                ptr: std::ptr::null_mut(),
                len: 0,
            });
        }
        let ptr = unsafe {
            sys::mmap(
                std::ptr::null_mut(),
                len,
                sys::PROT_READ,
                sys::MAP_SHARED,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr as isize == -1 {
            return Err(io::Error::last_os_error());
        }
        Ok(Mapping { ptr, len })
    }

    #[cfg(not(unix))]
    pub fn map(file: &std::fs::File, len: usize) -> io::Result<Mapping> {
        use std::io::Read;
        let mut buf = Vec::with_capacity(len);
        let got = file.take(len as u64).read_to_end(&mut buf)?;
        if got != len {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("short read: got {got} of {len} bytes"),
            ));
        }
        Ok(Mapping { buf })
    }

    /// The mapped bytes.
    #[cfg(unix)]
    pub fn bytes(&self) -> &[u8] {
        if self.len == 0 {
            return &[];
        }
        // Safety: ptr/len come from a successful mmap that lives until Drop.
        unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
    }

    #[cfg(not(unix))]
    pub fn bytes(&self) -> &[u8] {
        &self.buf
    }
}

#[cfg(unix)]
impl Drop for Mapping {
    fn drop(&mut self) {
        if self.len > 0 {
            // Safety: exact pair of the successful mmap in `map`.
            unsafe {
                sys::munmap(self.ptr, self.len);
            }
        }
    }
}

/// Counters exported by [`MmapStore::cache_stats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreCacheStats {
    /// Shard probes answered from an already-mapped shard.
    pub hits: u64,
    /// Shard probes that had to map the file.
    pub misses: u64,
    /// Shards unmapped by the CLOCK hand to respect the budget.
    pub evictions: u64,
    /// Bytes currently charged against the budget (mapped shards).
    pub mapped_bytes: usize,
    /// Shards currently mapped.
    pub resident_shards: usize,
}

impl StoreCacheStats {
    /// Hit fraction over all shard probes so far (0 when never probed).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// One cache slot per shard: the resident mapping (if any) plus the CLOCK
/// bookkeeping bits. `referenced` is flipped lock-free on every hit;
/// `pinned` exempts hot shards from eviction entirely.
struct Slot {
    data: Mutex<Option<Arc<ShardData>>>,
    referenced: AtomicBool,
    pinned: AtomicBool,
    /// Whether the shard file exists on disk (validated at open).
    present: bool,
}

/// The global → (shard, local) index, itself memory-mapped (it is the one
/// O(n) structure the store keeps "resident"; 8 bytes per vertex, charged
/// as fixed overhead rather than against the shard budget).
struct IndexView {
    map: Mapping,
    n: usize,
}

impl IndexView {
    fn open(dir: &Path, n: usize) -> io::Result<IndexView> {
        let path = dir.join(INDEX_FILE);
        let bad = |msg: String| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("store index {}: {msg}", path.display()),
            )
        };
        let file = std::fs::File::open(&path).map_err(|e| {
            io::Error::new(
                e.kind(),
                format!("opening store index {}: {e}", path.display()),
            )
        })?;
        let len = file.metadata()?.len() as usize;
        let expect = INDEX_HEADER_LEN + 8 * n;
        if len != expect {
            return Err(bad(format!(
                "file is {len} bytes, expected {expect} for n={n} (truncated or stale)"
            )));
        }
        let map = Mapping::map(&file, len)?;
        let b = map.bytes();
        let magic = u32::from_le_bytes(b[0..4].try_into().unwrap());
        let version = u32::from_le_bytes(b[4..8].try_into().unwrap());
        let stored_n = u64::from_le_bytes(b[8..16].try_into().unwrap()) as usize;
        if magic != INDEX_MAGIC {
            return Err(bad("bad magic".into()));
        }
        if version != FORMAT_VERSION {
            return Err(bad(format!(
                "format version {version}, this build reads v{FORMAT_VERSION}"
            )));
        }
        if stored_n != n {
            return Err(bad(format!(
                "index covers {stored_n} vertices, manifest says {n}"
            )));
        }
        Ok(IndexView { map, n })
    }

    #[inline]
    fn entry(&self, base: usize, v: u32) -> u32 {
        let off = base + 4 * v as usize;
        let b = &self.map.bytes()[off..off + 4];
        u32::from_le_bytes(b.try_into().unwrap())
    }

    #[inline]
    fn part_of(&self, v: u32) -> u32 {
        debug_assert!((v as usize) < self.n);
        self.entry(INDEX_HEADER_LEN, v)
    }

    #[inline]
    fn local_of(&self, v: u32) -> u32 {
        debug_assert!((v as usize) < self.n);
        self.entry(INDEX_HEADER_LEN + 4 * self.n, v)
    }
}

/// A shard store opened for memory-mapped access. See the module docs.
pub struct MmapStore {
    dir: PathBuf,
    manifest: StoreManifest,
    index: IndexView,
    slots: Vec<Slot>,
    /// Mapped-bytes budget the CLOCK hand enforces (best effort: a single
    /// shard larger than the budget still loads — the alternative is
    /// livelock).
    budget: usize,
    mapped: AtomicUsize,
    hand: AtomicUsize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    /// When set, `Drop` removes the whole store directory (used by the
    /// env-rerouted temp spill, so test-suite runs leave no tmp litter).
    remove_on_drop: bool,
}

impl MmapStore {
    /// Open the store written under `dir`, bounding mapped shard bytes by
    /// `budget` (bytes). Eagerly validates the manifest, the index and
    /// every *present* shard file's length — truncation fails here, not at
    /// first access. Missing shard files leave their shard unavailable.
    pub fn open(dir: &Path, budget: usize) -> io::Result<MmapStore> {
        let manifest = StoreManifest::load(dir)?;
        let n = manifest.n as usize;
        let index = IndexView::open(dir, n)?;
        let mut slots = Vec::with_capacity(manifest.num_shards());
        for (sid, info) in manifest.shards.iter().enumerate() {
            let path = dir.join(shard_file_name(sid));
            let present = match std::fs::metadata(&path) {
                Ok(meta) => {
                    if meta.len() != info.file_len {
                        return Err(io::Error::new(
                            io::ErrorKind::InvalidData,
                            format!(
                                "shard {}: file is {} bytes but the manifest records {} \
                                 (truncated or corrupt — refusing to open the store)",
                                path.display(),
                                meta.len(),
                                info.file_len
                            ),
                        ));
                    }
                    true
                }
                Err(e) if e.kind() == io::ErrorKind::NotFound => false,
                Err(e) => return Err(e),
            };
            slots.push(Slot {
                data: Mutex::new(None),
                referenced: AtomicBool::new(false),
                pinned: AtomicBool::new(false),
                present,
            });
        }
        Ok(MmapStore {
            dir: dir.to_path_buf(),
            manifest,
            index,
            slots,
            budget: budget.max(1),
            mapped: AtomicUsize::new(0),
            hand: AtomicUsize::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            remove_on_drop: false,
        })
    }

    /// Mark the store directory for removal when the store drops (the
    /// env-rerouted temp spill owns its directory).
    pub(super) fn set_remove_on_drop(&mut self) {
        self.remove_on_drop = true;
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    pub fn manifest(&self) -> &StoreManifest {
        &self.manifest
    }

    pub fn num_vertices(&self) -> usize {
        self.manifest.n as usize
    }

    pub fn num_edges(&self) -> usize {
        self.manifest.num_edges as usize
    }

    pub fn feature_dim(&self) -> usize {
        self.manifest.feature_dim as usize
    }

    pub fn label_dim(&self) -> usize {
        self.manifest.label_dim as usize
    }

    pub fn num_shards(&self) -> usize {
        self.slots.len()
    }

    /// Mapped-bytes budget.
    pub fn budget_bytes(&self) -> usize {
        self.budget
    }

    /// Shard id of vertex `v`.
    #[inline]
    pub fn shard_of(&self, v: u32) -> u32 {
        self.index.part_of(v)
    }

    /// Shard-local slot of vertex `v`.
    #[inline]
    pub fn local_of(&self, v: u32) -> u32 {
        self.index.local_of(v)
    }

    /// Whether `v` is a valid vertex **and** its shard file is present.
    pub fn contains(&self, v: u32) -> bool {
        (v as usize) < self.num_vertices() && self.slots[self.shard_of(v) as usize].present
    }

    /// Whether shard `sid`'s file is present on disk.
    pub fn shard_present(&self, sid: usize) -> bool {
        self.slots.get(sid).is_some_and(|s| s.present)
    }

    /// Get shard `sid`, mapping it on demand and evicting others to stay
    /// under the byte budget.
    pub fn get(&self, sid: usize) -> io::Result<Arc<ShardData>> {
        let slot = self.slots.get(sid).ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("shard {sid} out of range ({} shards)", self.slots.len()),
            )
        })?;
        if !slot.present {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!(
                    "shard {sid} is not present in store {} (partial deployment?)",
                    self.dir.display()
                ),
            ));
        }
        {
            let guard = slot.data.lock().unwrap_or_else(|p| p.into_inner());
            if let Some(d) = guard.as_ref() {
                slot.referenced.store(true, Ordering::Relaxed);
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Ok(Arc::clone(d));
            }
        }
        // Miss: load under the slot lock (a racing second loader waits and
        // then takes the hit path above via the re-check).
        let mut guard = slot.data.lock().unwrap_or_else(|p| p.into_inner());
        if let Some(d) = guard.as_ref() {
            slot.referenced.store(true, Ordering::Relaxed);
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(Arc::clone(d));
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let data = Arc::new(ShardData::load(
            &self.dir.join(shard_file_name(sid)),
            sid,
            Some(&self.manifest.shards[sid]),
        )?);
        self.mapped
            .fetch_add(data.mapped_bytes(), Ordering::Relaxed);
        slot.referenced.store(true, Ordering::Relaxed);
        *guard = Some(Arc::clone(&data));
        drop(guard);
        self.evict_to_budget(sid);
        Ok(data)
    }

    /// The shard holding vertex `v` plus `v`'s local slot in it.
    #[inline]
    pub fn shard_for(&self, v: u32) -> io::Result<(Arc<ShardData>, usize)> {
        let sid = self.shard_of(v) as usize;
        Ok((self.get(sid)?, self.local_of(v) as usize))
    }

    /// CLOCK sweep: unmap unpinned, unreferenced shards until the mapped
    /// total fits the budget. `keep` (the shard just loaded) is exempt so
    /// the caller's handout is never immediately evicted.
    fn evict_to_budget(&self, keep: usize) {
        let nslots = self.slots.len();
        if nslots <= 1 {
            return;
        }
        // Two full sweeps: the first may only clear referenced bits.
        let mut steps = 2 * nslots;
        while self.mapped.load(Ordering::Relaxed) > self.budget && steps > 0 {
            steps -= 1;
            let i = self.hand.fetch_add(1, Ordering::Relaxed) % nslots;
            if i == keep || self.slots[i].pinned.load(Ordering::Relaxed) {
                continue;
            }
            if self.slots[i].referenced.swap(false, Ordering::Relaxed) {
                continue; // second chance
            }
            let mut guard = self.slots[i].data.lock().unwrap_or_else(|p| p.into_inner());
            if let Some(d) = guard.take() {
                self.mapped.fetch_sub(d.mapped_bytes(), Ordering::Relaxed);
                self.evictions.fetch_add(1, Ordering::Relaxed);
                // Dropping `d` here only drops the cache's Arc; readers
                // holding clones keep the mapping alive until they finish.
            }
        }
    }

    /// Pin the shards containing `nodes`: map them now and exempt them
    /// from eviction until [`Self::unpin_all`]. Used by serving to keep
    /// the hot working set resident across queries.
    pub fn pin_nodes(&self, nodes: &[u32]) -> io::Result<usize> {
        let mut pinned = 0;
        for &v in nodes {
            if (v as usize) >= self.num_vertices() {
                continue;
            }
            let sid = self.shard_of(v) as usize;
            if !self.slots[sid].present {
                continue;
            }
            if !self.slots[sid].pinned.swap(true, Ordering::Relaxed) {
                self.get(sid)?;
                pinned += 1;
            }
        }
        Ok(pinned)
    }

    /// Release every pin taken by [`Self::pin_nodes`].
    pub fn unpin_all(&self) {
        for slot in &self.slots {
            slot.pinned.store(false, Ordering::Relaxed);
        }
        // Re-apply the budget now that pins no longer shield shards.
        self.evict_to_budget(usize::MAX);
    }

    /// Counter snapshot.
    pub fn cache_stats(&self) -> StoreCacheStats {
        let mut resident_shards = 0;
        for slot in &self.slots {
            if slot
                .data
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .is_some()
            {
                resident_shards += 1;
            }
        }
        StoreCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            mapped_bytes: self.mapped.load(Ordering::Relaxed),
            resident_shards,
        }
    }
}

impl Drop for MmapStore {
    fn drop(&mut self) {
        if self.remove_on_drop {
            let _ = std::fs::remove_dir_all(&self.dir);
        }
    }
}

impl std::fmt::Debug for MmapStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MmapStore")
            .field("dir", &self.dir)
            .field("n", &self.num_vertices())
            .field("shards", &self.num_shards())
            .field("budget_bytes", &self.budget)
            .field("stats", &self.cache_stats())
            .finish()
    }
}
