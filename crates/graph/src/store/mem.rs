//! The in-memory [`GraphStore`](super::GraphStore) backend: a thin wrapper
//! over the existing `Arc<CsrGraph>` (plus optional feature/label
//! matrices) so every consumer that reads through the store abstraction
//! keeps the exact data — and therefore the exact bits — it read before
//! the store existed.

use crate::csr::CsrGraph;
use gsgcn_tensor::DMatrix;
use std::sync::Arc;

/// Fully resident store backend.
pub struct MemStore {
    graph: Arc<CsrGraph>,
    features: Option<Arc<DMatrix>>,
    labels: Option<Arc<DMatrix>>,
}

impl MemStore {
    /// Wrap already-resident data. Panics if a matrix's row count does not
    /// match the vertex count — the same invariant the shard writer
    /// enforces on disk.
    pub fn new(
        graph: Arc<CsrGraph>,
        features: Option<Arc<DMatrix>>,
        labels: Option<Arc<DMatrix>>,
    ) -> Self {
        let n = graph.num_vertices();
        if let Some(f) = &features {
            assert_eq!(f.rows(), n, "feature rows must match vertex count");
        }
        if let Some(l) = &labels {
            assert_eq!(l.rows(), n, "label rows must match vertex count");
        }
        MemStore {
            graph,
            features,
            labels,
        }
    }

    pub fn graph(&self) -> &Arc<CsrGraph> {
        &self.graph
    }

    pub fn features(&self) -> Option<&Arc<DMatrix>> {
        self.features.as_ref()
    }

    pub fn labels(&self) -> Option<&Arc<DMatrix>> {
        self.labels.as_ref()
    }

    pub fn feature_dim(&self) -> usize {
        self.features.as_ref().map_or(0, |m| m.cols())
    }

    pub fn label_dim(&self) -> usize {
        self.labels.as_ref().map_or(0, |m| m.cols())
    }
}
