//! `GraphStore` — one abstraction over "where does the graph live".
//!
//! Every consumer in the workspace (sampler, trainer, serving
//! neighborhood extraction) historically took `&CsrGraph`, which hard-wires
//! the assumption that the whole CSR plus the feature matrix is resident.
//! This module breaks that assumption with two backends behind one type:
//!
//! * [`MemStore`] — the existing fully-resident `Arc<CsrGraph>` (plus
//!   optional feature/label matrices). Zero new indirection on the hot
//!   paths: readers that can see a CSR get the actual slices.
//! * [`MmapStore`] — CSR shards partitioned by the frontier
//!   ([`bfs_partition`](crate::partition::bfs_partition)) partitioner,
//!   written in the versioned on-disk format of [`shard`] and memory-mapped
//!   on demand behind a CLOCK cache with a **mapped-bytes budget**
//!   ([`mmap`]). Training and serving a graph ≥10× physical RAM becomes a
//!   cache-management problem instead of an OOM.
//!
//! Consumers read topology through the [`Topology`] trait (object-safe, so
//! `&CsrGraph` coerces to `&dyn Topology` at existing call sites) and bulk
//! rows through [`GraphStore::gather_features_into`] /
//! [`GraphStore::gather_labels_into`].
//!
//! Backend selection follows the workspace's flag > env > default policy:
//! the CLI's `--graph-store mem|mmap` wins, the `GSGCN_GRAPH_STORE`
//! environment variable supplies the default (this is how CI runs the
//! whole test matrix out-of-core without touching a single test), and the
//! default is `mem`. [`GraphStore::from_parts_env`] is the reroute point:
//! under `GSGCN_GRAPH_STORE=mmap` it spills the given parts to a unique
//! temp directory, reopens them memory-mapped, and removes the directory
//! when the store drops. The mapped-bytes budget comes from
//! `GSGCN_SHARD_CACHE` (default 64 MiB).

pub mod mem;
pub mod mmap;
pub mod order;
pub mod prefetch;
pub mod shard;

pub use mem::MemStore;
pub use mmap::{MmapStore, StoreCacheStats};
pub use order::{order_from_env, StoreOrder};
pub use prefetch::prefetch_from_env;
pub use shard::{
    verify_store, write_store, write_store_ordered, write_store_with_precision, ShardData,
    StoreManifest,
};

use crate::csr::CsrGraph;
use gsgcn_tensor::DMatrix;
use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// The fully-resident parts a store can be materialized into: the graph
/// plus optional feature and label matrices (see
/// [`GraphStore::materialize`]).
pub type ResidentParts = (Arc<CsrGraph>, Option<Arc<DMatrix>>, Option<Arc<DMatrix>>);

/// Read-only topology access, implemented by [`CsrGraph`] (fully resident)
/// and [`GraphStore`] (possibly shard-backed). Object-safe on purpose:
/// samplers and extractors take `&dyn Topology`, and `&CsrGraph` coerces
/// implicitly, so pre-store call sites compile unchanged.
///
/// Determinism contract: both implementations expose the *same* vertex
/// ids, degrees and neighbor orderings for the same graph — the shard
/// format stores neighbor lists verbatim — so anything derived from
/// topology alone (sampler trajectories, neighborhood balls) is
/// bit-identical across backends. `proptest_store.rs` pins this.
pub trait Topology: Sync {
    /// Number of vertices `|V|`.
    fn num_vertices(&self) -> usize;

    /// Number of directed edges.
    fn num_edges(&self) -> usize;

    /// Out-degree of vertex `v`.
    fn degree(&self, v: u32) -> usize;

    /// The `k`-th neighbor of `v` (0-based, `k < degree(v)`).
    fn neighbor(&self, v: u32, k: usize) -> u32;

    /// The full neighbor list of `v`. The guard keeps the backing shard
    /// mapped for its lifetime (see [`NeighborsRef`]).
    fn neighbors_ref(&self, v: u32) -> NeighborsRef<'_>;

    /// Average degree `|E| / |V|`.
    fn avg_degree(&self) -> f64 {
        if self.num_vertices() == 0 {
            0.0
        } else {
            self.num_edges() as f64 / self.num_vertices() as f64
        }
    }

    /// Mean of `clamp(degree(v), 1, cap)` over all vertices — the
    /// effective average degree the frontier sampler sizes its dashboard
    /// with. The default scans every vertex on each call; shard-backed
    /// topologies memoize it, because out of core the sweep is both
    /// O(|V|) per batch and a cache-flooding access pattern that evicts
    /// the batch's own working set.
    fn capped_mean_degree(&self, cap: u32) -> f64 {
        scan_capped_mean_degree(self, cap)
    }

    /// Locality group (physical shard) of vertex `v`; `0` everywhere
    /// when the topology is fully resident. Group-aware consumers batch
    /// their accesses per group so a bounded shard cache sees one run
    /// per shard instead of scattered probes.
    fn locality_group(&self, v: u32) -> u32 {
        let _ = v;
        0
    }

    /// Number of distinct locality groups (`1` = resident, nothing worth
    /// grouping by).
    fn num_locality_groups(&self) -> usize {
        1
    }

    /// Advise that `nodes` are about to be read (asynchronous page-in
    /// where supported; default no-op).
    fn prefetch_hint(&self, nodes: &[u32]) {
        let _ = nodes;
    }

    /// Escape hatch: the resident CSR, when this topology has one.
    /// Readers needing raw `offsets()`/`adjacency()` slices (e.g. the
    /// uniform edge sampler) take this fast path and fall back to
    /// per-vertex access otherwise.
    fn as_csr(&self) -> Option<&CsrGraph> {
        None
    }
}

/// The [`Topology::capped_mean_degree`] scan, summed in ascending vertex
/// order. Overrides must preserve this exact order and arithmetic —
/// samplers size their tables from the result, so a last-ulp difference
/// between backends would fork otherwise bit-identical trajectories.
pub fn scan_capped_mean_degree<T: Topology + ?Sized>(g: &T, cap: u32) -> f64 {
    let n = g.num_vertices();
    if n == 0 {
        return 0.0;
    }
    let total: f64 = (0..n as u32)
        .map(|v| (g.degree(v) as u32).min(cap).max(1) as f64)
        .sum();
    total / n as f64
}

/// A borrowed neighbor list: either a plain slice into a resident CSR or
/// a slice into a mapped shard, with the `Arc` keeping the mapping alive —
/// which is exactly why eviction can never pull pages out from under a
/// reader.
pub enum NeighborsRef<'a> {
    /// Slice into resident memory.
    Slice(&'a [u32]),
    /// Slice `start..start+len` of a mapped shard's adjacency section.
    Shard {
        shard: Arc<ShardData>,
        start: usize,
        len: usize,
    },
}

impl std::ops::Deref for NeighborsRef<'_> {
    type Target = [u32];

    #[inline]
    fn deref(&self) -> &[u32] {
        match self {
            NeighborsRef::Slice(s) => s,
            NeighborsRef::Shard { shard, start, len } => &shard.adj()[*start..*start + *len],
        }
    }
}

impl Topology for CsrGraph {
    #[inline]
    fn num_vertices(&self) -> usize {
        CsrGraph::num_vertices(self)
    }

    #[inline]
    fn num_edges(&self) -> usize {
        CsrGraph::num_edges(self)
    }

    #[inline]
    fn degree(&self, v: u32) -> usize {
        CsrGraph::degree(self, v)
    }

    #[inline]
    fn neighbor(&self, v: u32, k: usize) -> u32 {
        CsrGraph::neighbor(self, v, k)
    }

    #[inline]
    fn neighbors_ref(&self, v: u32) -> NeighborsRef<'_> {
        NeighborsRef::Slice(self.neighbors(v))
    }

    #[inline]
    fn as_csr(&self) -> Option<&CsrGraph> {
        Some(self)
    }
}

/// Which [`GraphStore`] backend to build.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum StoreBackend {
    /// Fully resident (the pre-store behavior).
    #[default]
    Mem,
    /// Memory-mapped shards with a bounded cache.
    Mmap,
}

impl StoreBackend {
    pub fn name(self) -> &'static str {
        match self {
            StoreBackend::Mem => "mem",
            StoreBackend::Mmap => "mmap",
        }
    }
}

impl std::str::FromStr for StoreBackend {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        match s.trim().to_ascii_lowercase().as_str() {
            "mem" | "memory" => Ok(StoreBackend::Mem),
            "mmap" => Ok(StoreBackend::Mmap),
            other => Err(format!("bad graph store {other:?}: expected mem|mmap")),
        }
    }
}

/// The `GSGCN_GRAPH_STORE` env default (flag > env > default; the CLI flag
/// overrides this). Unset or empty means [`StoreBackend::Mem`].
///
/// # Panics
/// Panics on an unparseable value: a typo silently falling back to the
/// in-memory backend would invalidate exactly the out-of-core CI runs the
/// variable exists for.
pub fn backend_from_env() -> StoreBackend {
    match std::env::var("GSGCN_GRAPH_STORE") {
        Err(_) => StoreBackend::Mem,
        Ok(raw) if raw.trim().is_empty() => StoreBackend::Mem,
        Ok(raw) => raw
            .parse()
            .unwrap_or_else(|e| panic!("GSGCN_GRAPH_STORE: {e}")),
    }
}

/// Parse a human byte-size string: a plain byte count (`"1048576"`) or a
/// binary/decimal suffix (`KiB`/`MiB`/`GiB` = 2^10/20/30,
/// `KB`/`MB`/`GB` = 10^3/6/9, bare `K`/`M`/`G` = binary),
/// case-insensitive, optional whitespace before the suffix.
pub fn parse_byte_size(s: &str) -> Result<usize, String> {
    let s = s.trim();
    let split = s.find(|c: char| !c.is_ascii_digit()).unwrap_or(s.len());
    let (num, suffix) = s.split_at(split);
    let num: usize = num
        .parse()
        .map_err(|_| format!("bad byte size {s:?}: expected <number>[KiB|MiB|GiB|KB|MB|GB]"))?;
    let mult: usize = match suffix.trim().to_ascii_lowercase().as_str() {
        "" | "b" => 1,
        "k" | "kib" => 1 << 10,
        "m" | "mib" => 1 << 20,
        "g" | "gib" => 1 << 30,
        "kb" => 1_000,
        "mb" => 1_000_000,
        "gb" => 1_000_000_000,
        other => return Err(format!("bad byte size suffix {other:?} in {s:?}")),
    };
    num.checked_mul(mult)
        .ok_or_else(|| format!("byte size {s:?} overflows"))
}

/// Default mapped-bytes budget for the shard cache.
pub const DEFAULT_SHARD_CACHE_BYTES: usize = 64 << 20;

/// The `GSGCN_SHARD_CACHE` env override for the shard-cache budget. A
/// parse failure warns on stderr and keeps the default (the cache still
/// bounds memory either way, unlike a backend typo).
pub fn shard_cache_budget_from_env() -> usize {
    match std::env::var("GSGCN_SHARD_CACHE") {
        Err(_) => DEFAULT_SHARD_CACHE_BYTES,
        Ok(raw) => match parse_byte_size(&raw) {
            Ok(0) => {
                eprintln!("warning: GSGCN_SHARD_CACHE=0 is meaningless; keeping the default");
                DEFAULT_SHARD_CACHE_BYTES
            }
            Ok(bytes) => bytes,
            Err(e) => {
                eprintln!("warning: ignoring GSGCN_SHARD_CACHE: {e}");
                DEFAULT_SHARD_CACHE_BYTES
            }
        },
    }
}

/// Shard-count heuristic for env-rerouted temp spills: small graphs still
/// get ≥2 shards (so cross-shard edges are exercised everywhere), large
/// graphs get shards of ~4k vertices, capped so the cache always has
/// slack to evict into.
pub fn default_num_shards(n: usize) -> usize {
    n.div_ceil(4096).clamp(2, 64)
}

/// Create a unique, freshly-created temp directory for a spilled store.
fn fresh_temp_dir() -> io::Result<std::path::PathBuf> {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let base = std::env::temp_dir();
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.subsec_nanos());
    loop {
        let dir = base.join(format!(
            "gsgcn-store-{}-{}-{nanos}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed),
        ));
        match std::fs::create_dir(&dir) {
            Ok(()) => return Ok(dir),
            Err(e) if e.kind() == io::ErrorKind::AlreadyExists => continue,
            Err(e) => return Err(e),
        }
    }
}

/// A graph (plus optional per-vertex feature/label rows) behind one of two
/// backends. See the module docs for the architecture.
pub enum GraphStore {
    Mem(MemStore),
    Mmap(MmapStore),
}

impl std::fmt::Debug for GraphStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphStore::Mem(m) => f
                .debug_struct("GraphStore::Mem")
                .field("n", &m.graph().num_vertices())
                .field("feature_dim", &m.feature_dim())
                .field("label_dim", &m.label_dim())
                .finish(),
            GraphStore::Mmap(m) => m.fmt(f),
        }
    }
}

impl GraphStore {
    /// Fully-resident store over existing parts.
    pub fn mem(
        graph: Arc<CsrGraph>,
        features: Option<Arc<DMatrix>>,
        labels: Option<Arc<DMatrix>>,
    ) -> GraphStore {
        GraphStore::Mem(MemStore::new(graph, features, labels))
    }

    /// Fully-resident store over a bare graph (no features/labels).
    pub fn from_graph(graph: Arc<CsrGraph>) -> GraphStore {
        GraphStore::mem(graph, None, None)
    }

    /// Open an on-disk shard store with the env-default cache budget.
    pub fn open(dir: &Path) -> io::Result<GraphStore> {
        Self::open_with_budget(dir, shard_cache_budget_from_env())
    }

    /// Open an on-disk shard store with an explicit mapped-bytes budget.
    pub fn open_with_budget(dir: &Path, budget: usize) -> io::Result<GraphStore> {
        Ok(GraphStore::Mmap(MmapStore::open(dir, budget)?))
    }

    /// Build a store over `parts` honoring `GSGCN_GRAPH_STORE`: `mem`
    /// wraps them as-is; `mmap` spills them to a unique temp directory,
    /// reopens memory-mapped, and removes the directory on drop. This is
    /// the single reroute point that lets the whole test suite run
    /// out-of-core with zero test changes.
    pub fn from_parts_env(
        graph: Arc<CsrGraph>,
        features: Option<Arc<DMatrix>>,
        labels: Option<Arc<DMatrix>>,
    ) -> io::Result<GraphStore> {
        Self::from_parts(backend_from_env(), graph, features, labels)
    }

    /// As [`Self::from_parts_env`] with an explicit backend choice (the
    /// CLI flag path).
    pub fn from_parts(
        backend: StoreBackend,
        graph: Arc<CsrGraph>,
        features: Option<Arc<DMatrix>>,
        labels: Option<Arc<DMatrix>>,
    ) -> io::Result<GraphStore> {
        match backend {
            StoreBackend::Mem => Ok(GraphStore::mem(graph, features, labels)),
            StoreBackend::Mmap => {
                let dir = fresh_temp_dir()?;
                shard::write_store_ordered(
                    &dir,
                    &graph,
                    features.as_deref(),
                    labels.as_deref(),
                    default_num_shards(graph.num_vertices()),
                    order_from_env(),
                )?;
                let mut store = MmapStore::open(&dir, shard_cache_budget_from_env())?;
                store.set_remove_on_drop();
                Ok(GraphStore::Mmap(store))
            }
        }
    }

    /// Backend name for logs/bench tags.
    pub fn backend(&self) -> StoreBackend {
        match self {
            GraphStore::Mem(_) => StoreBackend::Mem,
            GraphStore::Mmap(_) => StoreBackend::Mmap,
        }
    }

    pub fn as_mem(&self) -> Option<&MemStore> {
        match self {
            GraphStore::Mem(m) => Some(m),
            GraphStore::Mmap(_) => None,
        }
    }

    pub fn as_mmap(&self) -> Option<&MmapStore> {
        match self {
            GraphStore::Mem(_) => None,
            GraphStore::Mmap(m) => Some(m),
        }
    }

    /// Feature columns per vertex (0 = store holds no features).
    pub fn feature_dim(&self) -> usize {
        match self {
            GraphStore::Mem(m) => m.feature_dim(),
            GraphStore::Mmap(m) => m.feature_dim(),
        }
    }

    /// Label columns per vertex (0 = store holds no labels).
    pub fn label_dim(&self) -> usize {
        match self {
            GraphStore::Mem(m) => m.label_dim(),
            GraphStore::Mmap(m) => m.label_dim(),
        }
    }

    /// Shard count (the mem backend is one implicit shard).
    pub fn num_shards(&self) -> usize {
        match self {
            GraphStore::Mem(_) => 1,
            GraphStore::Mmap(m) => m.num_shards(),
        }
    }

    /// Whether `v` is a valid vertex whose data this store can actually
    /// serve (for a partial mmap deployment, the shard file must be
    /// present). Serving validates requests with this *before* batching,
    /// so one unavailable node fails one request — it cannot poison a
    /// coalesced batch.
    pub fn contains(&self, v: u32) -> bool {
        match self {
            GraphStore::Mem(m) => (v as usize) < m.graph().num_vertices(),
            GraphStore::Mmap(m) => m.contains(v),
        }
    }

    /// Shard id of `v` (mmap backend only).
    pub fn shard_of(&self, v: u32) -> Option<u32> {
        match self {
            GraphStore::Mem(_) => None,
            GraphStore::Mmap(m) => Some(m.shard_of(v)),
        }
    }

    /// Pin the shards holding `nodes` into the cache (no-op for mem).
    /// Returns how many shards were newly pinned.
    pub fn pin_nodes(&self, nodes: &[u32]) -> io::Result<usize> {
        match self {
            GraphStore::Mem(_) => Ok(0),
            GraphStore::Mmap(m) => m.pin_nodes(nodes),
        }
    }

    /// Release all shard pins (no-op for mem).
    pub fn unpin_all(&self) {
        if let GraphStore::Mmap(m) = self {
            m.unpin_all();
        }
    }

    /// Shard-cache counters (None for the mem backend).
    pub fn cache_stats(&self) -> Option<StoreCacheStats> {
        match self {
            GraphStore::Mem(_) => None,
            GraphStore::Mmap(m) => Some(m.cache_stats()),
        }
    }

    /// Placement order of the backing store (mem is trivially natural).
    pub fn order(&self) -> StoreOrder {
        match self {
            GraphStore::Mem(_) => StoreOrder::Natural,
            GraphStore::Mmap(m) => m.order(),
        }
    }

    /// Internal (placement) id of external vertex `v`. Identity for the
    /// mem backend and natural-order stores; every public API — the CLI's
    /// `--nodes`, the serve protocol, labels, eval splits — speaks
    /// external ids, and this is the one boundary where they translate.
    #[inline]
    pub fn to_internal(&self, v: u32) -> u32 {
        match self {
            GraphStore::Mem(_) => v,
            GraphStore::Mmap(m) => m.to_internal(v),
        }
    }

    /// External vertex id of internal (placement) id `i` — inverse of
    /// [`Self::to_internal`].
    #[inline]
    pub fn to_external(&self, i: u32) -> u32 {
        match self {
            GraphStore::Mem(_) => i,
            GraphStore::Mmap(m) => m.to_external(i),
        }
    }

    /// Whether a background prefetch thread serves this store (and has
    /// not degraded).
    pub fn prefetch_enabled(&self) -> bool {
        match self {
            GraphStore::Mem(_) => false,
            GraphStore::Mmap(m) => m.prefetch_enabled(),
        }
    }

    /// Advise the store that `nodes` are about to be read: their shards
    /// are paged in asynchronously ahead of the demand reads. Never
    /// blocks; a no-op for mem / prefetch-off / degraded stores. Returns
    /// the number of shard requests accepted.
    pub fn prefetch_nodes(&self, nodes: &[u32]) -> usize {
        match self {
            GraphStore::Mem(_) => 0,
            GraphStore::Mmap(m) => m.prefetch_nodes(nodes),
        }
    }

    /// Gather feature rows for `nodes` into `out` (reshaped to
    /// `nodes.len() × feature_dim`, rows aligned with `nodes`).
    pub fn gather_features_into(&self, nodes: &[u32], out: &mut DMatrix) -> io::Result<()> {
        match self {
            GraphStore::Mem(m) => {
                let f = m.features().ok_or_else(no_features)?;
                f.gather_rows_into(nodes, out);
                Ok(())
            }
            GraphStore::Mmap(m) => gather_mmap(m, nodes, out, RowKind::Features),
        }
    }

    /// Gather label rows for `nodes` into `out` (reshaped to
    /// `nodes.len() × label_dim`, rows aligned with `nodes`).
    pub fn gather_labels_into(&self, nodes: &[u32], out: &mut DMatrix) -> io::Result<()> {
        match self {
            GraphStore::Mem(m) => {
                let l = m.labels().ok_or_else(no_labels)?;
                l.gather_rows_into(nodes, out);
                Ok(())
            }
            GraphStore::Mmap(m) => gather_mmap(m, nodes, out, RowKind::Labels),
        }
    }

    /// Materialize the whole store as resident parts. For the mem backend
    /// this clones the `Arc`s; for mmap it **allocates the full graph and
    /// matrices** — that is the point: it is the negative control the
    /// out-of-core CI smoke runs under a memory cap to prove the cap is
    /// real. Requires every shard to be present.
    pub fn materialize(&self) -> io::Result<ResidentParts> {
        match self {
            GraphStore::Mem(m) => Ok((
                Arc::clone(m.graph()),
                m.features().cloned(),
                m.labels().cloned(),
            )),
            GraphStore::Mmap(m) => materialize_mmap(m),
        }
    }
}

fn no_features() -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidInput,
        "store holds no feature rows (feature_dim = 0)",
    )
}

fn no_labels() -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidInput,
        "store holds no label rows (label_dim = 0)",
    )
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum RowKind {
    Features,
    Labels,
}

fn gather_mmap(m: &MmapStore, nodes: &[u32], out: &mut DMatrix, kind: RowKind) -> io::Result<()> {
    let width = match kind {
        RowKind::Features => m.feature_dim(),
        RowKind::Labels => m.label_dim(),
    };
    if width == 0 {
        return Err(match kind {
            RowKind::Features => no_features(),
            RowKind::Labels => no_labels(),
        });
    }
    out.ensure_shape(nodes.len(), width);
    if m.prefetch_enabled() && nodes.len() > 1 {
        return gather_mmap_grouped(m, nodes, out, kind);
    }
    // Batches are usually shard-clustered (BFS partitions follow the same
    // locality the sampler does), so memoize the last shard handle.
    let mut cached: Option<(u32, Arc<ShardData>)> = None;
    for (i, &v) in nodes.iter().enumerate() {
        let sid = m.shard_of(v);
        let shard = match &cached {
            Some((cur, s)) if *cur == sid => s,
            _ => {
                cached = Some((sid, m.get(sid as usize)?));
                &cached.as_ref().unwrap().1
            }
        };
        let local = m.local_of(v) as usize;
        match kind {
            RowKind::Features => shard.copy_feature_row_into(local, out.row_mut(i)),
            RowKind::Labels => out.row_mut(i).copy_from_slice(shard.label_row(local)),
        }
    }
    Ok(())
}

/// How many shard groups ahead of the copy cursor a grouped gather keeps
/// requested at the prefetcher.
const GATHER_PREFETCH_AHEAD: usize = 2;

/// Shard-grouped gather, used when a prefetch thread is available: visit
/// the rows shard by shard (each shard mapped exactly once per gather, no
/// matter how scattered `nodes` is) while the prefetcher pages in the
/// next [`GATHER_PREFETCH_AHEAD`] shards behind the copies. Output rows
/// land at their original positions, so the result is byte-identical to
/// the sequential path.
fn gather_mmap_grouped(
    m: &MmapStore,
    nodes: &[u32],
    out: &mut DMatrix,
    kind: RowKind,
) -> io::Result<()> {
    // Stable sort of row indices by shard keeps the per-shard copy order
    // deterministic (it does not affect the output, which is indexed).
    let mut by_shard: Vec<(u32, u32)> = nodes
        .iter()
        .enumerate()
        .map(|(i, &v)| (m.shard_of(v), i as u32))
        .collect();
    by_shard.sort_by_key(|&(sid, _)| sid);

    // Group boundaries + the distinct shard sequence for lookahead.
    let mut groups: Vec<(u32, std::ops::Range<usize>)> = Vec::new();
    let mut start = 0;
    for i in 1..=by_shard.len() {
        if i == by_shard.len() || by_shard[i].0 != by_shard[start].0 {
            groups.push((by_shard[start].0, start..i));
            start = i;
        }
    }

    for (g, (sid, range)) in groups.iter().enumerate() {
        if let Some((ahead_sid, _)) = groups.get(g + GATHER_PREFETCH_AHEAD) {
            m.prefetch_shards(&[*ahead_sid]);
        }
        if g == 0 {
            // Kick the pipeline: the shards after the one we are about to
            // map synchronously.
            for (ahead_sid, _) in groups.iter().skip(1).take(GATHER_PREFETCH_AHEAD - 1) {
                m.prefetch_shards(&[*ahead_sid]);
            }
        }
        let shard = m.get(*sid as usize)?;
        for &(_, idx) in &by_shard[range.clone()] {
            let v = nodes[idx as usize];
            let local = m.local_of(v) as usize;
            match kind {
                RowKind::Features => shard.copy_feature_row_into(local, out.row_mut(idx as usize)),
                RowKind::Labels => out
                    .row_mut(idx as usize)
                    .copy_from_slice(shard.label_row(local)),
            }
        }
    }
    Ok(())
}

fn materialize_mmap(m: &MmapStore) -> io::Result<ResidentParts> {
    let n = m.num_vertices();
    let f = m.feature_dim();
    let l = m.label_dim();
    let mut offsets = Vec::with_capacity(n + 1);
    let mut adj = Vec::with_capacity(m.num_edges());
    let mut features = (f > 0).then(|| DMatrix::zeros(n, f));
    let mut labels = (l > 0).then(|| DMatrix::zeros(n, l));
    let mut cached: Option<(u32, Arc<ShardData>)> = None;
    offsets.push(0usize);
    for v in 0..n as u32 {
        let sid = m.shard_of(v);
        let shard = match &cached {
            Some((cur, s)) if *cur == sid => s,
            _ => {
                cached = Some((sid, m.get(sid as usize)?));
                &cached.as_ref().unwrap().1
            }
        };
        let local = m.local_of(v) as usize;
        adj.extend_from_slice(shard.neighbors(local));
        offsets.push(adj.len());
        if let Some(mat) = &mut features {
            shard.copy_feature_row_into(local, mat.row_mut(v as usize));
        }
        if let Some(mat) = &mut labels {
            mat.row_mut(v as usize)
                .copy_from_slice(shard.label_row(local));
        }
    }
    Ok((
        Arc::new(CsrGraph::from_raw(offsets, adj)),
        features.map(Arc::new),
        labels.map(Arc::new),
    ))
}

impl Topology for GraphStore {
    fn num_vertices(&self) -> usize {
        match self {
            GraphStore::Mem(m) => m.graph().num_vertices(),
            GraphStore::Mmap(m) => m.num_vertices(),
        }
    }

    fn num_edges(&self) -> usize {
        match self {
            GraphStore::Mem(m) => m.graph().num_edges(),
            GraphStore::Mmap(m) => m.num_edges(),
        }
    }

    fn degree(&self, v: u32) -> usize {
        match self {
            GraphStore::Mem(m) => m.graph().degree(v),
            GraphStore::Mmap(m) => {
                let (shard, local) = expect_shard(m, v);
                shard.degree(local)
            }
        }
    }

    fn neighbor(&self, v: u32, k: usize) -> u32 {
        match self {
            GraphStore::Mem(m) => m.graph().neighbor(v, k),
            GraphStore::Mmap(m) => {
                let (shard, local) = expect_shard(m, v);
                shard.neighbor(local, k)
            }
        }
    }

    fn neighbors_ref(&self, v: u32) -> NeighborsRef<'_> {
        match self {
            GraphStore::Mem(m) => NeighborsRef::Slice(m.graph().neighbors(v)),
            GraphStore::Mmap(m) => {
                let (shard, local) = expect_shard(m, v);
                let (start, len) = shard.adj_range(local);
                NeighborsRef::Shard { shard, start, len }
            }
        }
    }

    fn capped_mean_degree(&self, cap: u32) -> f64 {
        match self {
            GraphStore::Mem(m) => scan_capped_mean_degree(m.graph().as_ref(), cap),
            GraphStore::Mmap(m) => {
                if let Some(d) = m.cached_mean_degree(cap) {
                    return d;
                }
                // Same helper (and thus the same summation order) as the
                // trait default — the memo only skips repeat scans.
                let d = scan_capped_mean_degree(self, cap);
                m.store_mean_degree(cap, d);
                d
            }
        }
    }

    fn locality_group(&self, v: u32) -> u32 {
        match self {
            GraphStore::Mem(_) => 0,
            GraphStore::Mmap(m) => m.shard_of(v),
        }
    }

    fn num_locality_groups(&self) -> usize {
        match self {
            GraphStore::Mem(_) => 1,
            GraphStore::Mmap(m) => m.num_shards(),
        }
    }

    fn prefetch_hint(&self, nodes: &[u32]) {
        self.prefetch_nodes(nodes);
    }

    fn as_csr(&self) -> Option<&CsrGraph> {
        match self {
            GraphStore::Mem(m) => Some(m.graph()),
            GraphStore::Mmap(_) => None,
        }
    }
}

/// Topology reads have no error channel; a vertex whose shard cannot be
/// served is a caller bug (validate with [`GraphStore::contains`] first)
/// or a vanished/corrupt file — both must be loud, not a wrong answer.
fn expect_shard(m: &MmapStore, v: u32) -> (Arc<ShardData>, usize) {
    match m.shard_for(v) {
        Ok(pair) => pair,
        Err(e) => panic!(
            "graph store cannot serve vertex {v} (shard {}): {e}",
            m.shard_of(v)
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::from_edges;

    fn two_communities() -> CsrGraph {
        // Two dense 8-cliques bridged by one edge: bfs_partition splits
        // them cleanly, and the bridge is a guaranteed cross-shard edge.
        let mut edges = Vec::new();
        for base in [0u32, 8] {
            for i in 0..8 {
                for j in (i + 1)..8 {
                    edges.push((base + i, base + j));
                }
            }
        }
        edges.push((7, 8));
        from_edges(16, &edges)
    }

    fn spill(g: &CsrGraph, shards: usize) -> (std::path::PathBuf, StoreManifest) {
        let dir = fresh_temp_dir().unwrap();
        let f = DMatrix::from_fn(g.num_vertices(), 3, |i, j| (i * 10 + j) as f32);
        let l = DMatrix::from_fn(g.num_vertices(), 2, |i, j| (i + j) as f32);
        let manifest = write_store(&dir, g, Some(&f), Some(&l), shards).unwrap();
        (dir, manifest)
    }

    #[test]
    fn mmap_matches_mem_topology_and_rows() {
        let g = two_communities();
        let (dir, manifest) = spill(&g, 2);
        assert_eq!(manifest.num_shards(), 2);
        let store = GraphStore::open_with_budget(&dir, 1 << 20).unwrap();
        assert_eq!(Topology::num_vertices(&store), g.num_vertices());
        assert_eq!(Topology::num_edges(&store), g.num_edges());
        for v in 0..g.num_vertices() as u32 {
            assert_eq!(Topology::degree(&store, v), g.degree(v));
            assert_eq!(&*store.neighbors_ref(v), g.neighbors(v), "vertex {v}");
            for k in 0..g.degree(v) {
                assert_eq!(Topology::neighbor(&store, v, k), g.neighbor(v, k));
            }
        }
        let mut out = DMatrix::zeros(0, 0);
        store
            .gather_features_into(&[15, 0, 7, 8], &mut out)
            .unwrap();
        assert_eq!(out.row(0), &[150.0, 151.0, 152.0]);
        assert_eq!(out.row(2), &[70.0, 71.0, 72.0]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn materialize_roundtrips() {
        let g = two_communities();
        let (dir, _) = spill(&g, 3);
        let store = GraphStore::open_with_budget(&dir, 1 << 20).unwrap();
        let (back, feats, labels) = store.materialize().unwrap();
        assert_eq!(*back, g);
        assert_eq!(feats.unwrap().get(9, 1), 91.0);
        assert_eq!(labels.unwrap().get(9, 1), 10.0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn tiny_budget_evicts_but_answers_stay_exact() {
        let g = two_communities();
        let (dir, _) = spill(&g, 4);
        // Budget of 1 byte: every cross-shard hop forces an eviction.
        let store = GraphStore::open_with_budget(&dir, 1).unwrap();
        for v in 0..g.num_vertices() as u32 {
            assert_eq!(&*store.neighbors_ref(v), g.neighbors(v));
        }
        let stats = store.cache_stats().unwrap();
        assert!(stats.evictions > 0, "{stats:?}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn pinning_keeps_shards_resident() {
        let g = two_communities();
        let (dir, _) = spill(&g, 4);
        let store = GraphStore::open_with_budget(&dir, 1).unwrap();
        store.pin_nodes(&[0]).unwrap();
        let sid = store.shard_of(0).unwrap();
        // Hammer other shards; shard(0) must stay resident.
        for v in 0..g.num_vertices() as u32 {
            let _ = store.neighbors_ref(v);
        }
        let m = store.as_mmap().unwrap();
        let before = m.cache_stats();
        let _ = store.neighbors_ref(0);
        let after = m.cache_stats();
        assert_eq!(
            after.misses, before.misses,
            "pinned shard {sid} was evicted"
        );
        store.unpin_all();
        drop(store);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_shard_is_partial_not_fatal() {
        let g = two_communities();
        let (dir, _) = spill(&g, 2);
        let probe = GraphStore::open_with_budget(&dir, 1 << 20).unwrap();
        let gone_sid = probe.shard_of(15).unwrap() as usize;
        drop(probe);
        std::fs::remove_file(dir.join(shard::shard_file_name(gone_sid))).unwrap();
        let store = GraphStore::open_with_budget(&dir, 1 << 20).unwrap();
        assert!(store.contains(0) != store.contains(15) || gone_sid == 0);
        let absent: Vec<u32> = (0..16).filter(|&v| !store.contains(v)).collect();
        assert!(!absent.is_empty());
        let m = store.as_mmap().unwrap();
        assert!(m.get(gone_sid).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncated_shard_fails_open_loudly() {
        let g = two_communities();
        let (dir, manifest) = spill(&g, 2);
        let path = dir.join(shard::shard_file_name(0));
        let truncated = manifest.shards[0].file_len / 2;
        let file = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
        file.set_len(truncated).unwrap();
        drop(file);
        let err = GraphStore::open_with_budget(&dir, 1 << 20).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("truncated"), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_and_oversharded_stores_load() {
        // More shards than vertices: trailing shards are empty.
        let g = from_edges(3, &[(0, 1), (1, 2)]);
        let dir = fresh_temp_dir().unwrap();
        write_store(&dir, &g, None, None, 8).unwrap();
        let store = GraphStore::open_with_budget(&dir, 1 << 20).unwrap();
        assert_eq!(store.num_shards(), 8);
        for v in 0..3u32 {
            assert_eq!(&*store.neighbors_ref(v), g.neighbors(v));
        }
        assert!(store
            .gather_features_into(&[0], &mut DMatrix::zeros(0, 0))
            .is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn verify_detects_bitflip() {
        let g = two_communities();
        let (dir, manifest) = spill(&g, 2);
        assert!(verify_store(&dir).unwrap().is_empty());
        // Flip one byte in shard 1 without changing its length: open()
        // cannot see it (size matches) but verify() must.
        let path = dir.join(shard::shard_file_name(1));
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        assert_eq!(verify_store(&dir).unwrap(), vec![1]);
        assert_eq!(manifest.shards.len(), 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn ordered_store_roundtrips_manifest_and_translation() {
        let g = two_communities();
        let f = DMatrix::from_fn(g.num_vertices(), 3, |i, j| (i * 10 + j) as f32);
        for order in [StoreOrder::Bfs, StoreOrder::Degree] {
            let dir = fresh_temp_dir().unwrap();
            let manifest = shard::write_store_ordered(&dir, &g, Some(&f), None, 4, order).unwrap();
            assert_eq!(manifest.order, order);
            assert_eq!(manifest.rank.len(), g.num_vertices());
            let store = GraphStore::open_with_budget(&dir, 1 << 20).unwrap();
            assert_eq!(store.order(), order);
            // The recorded mapping is a permutation consistent with the
            // physical layout: internal id = shard base + local slot.
            let m = store.as_mmap().unwrap();
            let mut base = vec![0u32; m.num_shards()];
            for sid in 1..m.num_shards() {
                base[sid] = base[sid - 1] + m.manifest().shards[sid - 1].members as u32;
            }
            for v in 0..g.num_vertices() as u32 {
                let internal = store.to_internal(v);
                assert_eq!(store.to_external(internal), v);
                assert_eq!(
                    internal,
                    base[m.shard_of(v) as usize] + m.local_of(v),
                    "vertex {v} placement disagrees with the manifest rank"
                );
            }
            // Observational identity: topology and rows are unchanged.
            for v in 0..g.num_vertices() as u32 {
                assert_eq!(&*store.neighbors_ref(v), g.neighbors(v), "{order:?} v{v}");
            }
            let mut out = DMatrix::zeros(0, 0);
            store
                .gather_features_into(&[15, 0, 7, 8], &mut out)
                .unwrap();
            assert_eq!(out.row(0), &[150.0, 151.0, 152.0]);
            assert_eq!(out.row(3), &[80.0, 81.0, 82.0]);
            assert!(verify_store(&dir).unwrap().is_empty());
            std::fs::remove_dir_all(&dir).unwrap();
        }
    }

    #[test]
    fn natural_order_is_byte_identical_to_legacy_writer() {
        let g = two_communities();
        let f = DMatrix::from_fn(g.num_vertices(), 3, |i, j| (i + j) as f32);
        let d1 = fresh_temp_dir().unwrap();
        let d2 = fresh_temp_dir().unwrap();
        write_store(&d1, &g, Some(&f), None, 3).unwrap();
        shard::write_store_ordered(&d2, &g, Some(&f), None, 3, StoreOrder::Natural).unwrap();
        for name in [shard::MANIFEST_FILE, shard::INDEX_FILE] {
            assert_eq!(
                std::fs::read(d1.join(name)).unwrap(),
                std::fs::read(d2.join(name)).unwrap(),
                "{name} differs between legacy and natural-order writers"
            );
        }
        for sid in 0..3 {
            let name = shard::shard_file_name(sid);
            assert_eq!(
                std::fs::read(d1.join(&name)).unwrap(),
                std::fs::read(d2.join(&name)).unwrap(),
                "{name} differs"
            );
        }
        // Natural stores report identity translation.
        let store = GraphStore::open_with_budget(&d1, 1 << 20).unwrap();
        assert_eq!(store.order(), StoreOrder::Natural);
        assert_eq!(store.to_internal(13), 13);
        assert_eq!(store.to_external(13), 13);
        std::fs::remove_dir_all(&d1).unwrap();
        std::fs::remove_dir_all(&d2).unwrap();
    }

    #[test]
    fn f32_precision_writer_is_byte_identical_to_legacy() {
        use gsgcn_tensor::Precision;
        let g = two_communities();
        let f = DMatrix::from_fn(g.num_vertices(), 3, |i, j| (i + j) as f32 * 0.37);
        let d1 = fresh_temp_dir().unwrap();
        let d2 = fresh_temp_dir().unwrap();
        write_store(&d1, &g, Some(&f), None, 3).unwrap();
        shard::write_store_with_precision(
            &d2,
            &g,
            Some(&f),
            None,
            3,
            StoreOrder::Natural,
            Precision::F32,
        )
        .unwrap();
        let mut names = vec![
            shard::MANIFEST_FILE.to_string(),
            shard::INDEX_FILE.to_string(),
        ];
        names.extend((0..3).map(shard::shard_file_name));
        for name in names {
            assert_eq!(
                std::fs::read(d1.join(&name)).unwrap(),
                std::fs::read(d2.join(&name)).unwrap(),
                "{name} differs between legacy and f32-precision writers"
            );
        }
        std::fs::remove_dir_all(&d1).unwrap();
        std::fs::remove_dir_all(&d2).unwrap();
    }

    #[test]
    fn bf16_store_roundtrips_quantized_features() {
        use gsgcn_tensor::{Bf16, Precision};
        let g = two_communities();
        let n = g.num_vertices();
        // Values that do NOT round-trip bf16 exactly, so a silent f32
        // fallback would fail the equality below.
        let f = DMatrix::from_fn(n, 5, |i, j| (i * 7 + j) as f32 * 0.123 + 0.001);
        let l = DMatrix::from_fn(n, 2, |i, j| (i + j) as f32 * 0.456);
        let dir = fresh_temp_dir().unwrap();
        let manifest = shard::write_store_with_precision(
            &dir,
            &g,
            Some(&f),
            Some(&l),
            3,
            StoreOrder::Natural,
            Precision::Bf16,
        )
        .unwrap();
        assert_eq!(manifest.feature_precision, Precision::Bf16);
        // The manifest round-trips the precision through its GSFP section.
        assert_eq!(
            StoreManifest::load(&dir).unwrap().feature_precision,
            Precision::Bf16
        );
        assert!(verify_store(&dir).unwrap().is_empty());

        let store = GraphStore::open_with_budget(&dir, 1 << 20).unwrap();
        if let GraphStore::Mmap(m) = &store {
            assert_eq!(m.feature_precision(), Precision::Bf16);
        } else {
            panic!("expected mmap store");
        }
        // Gathers widen each element to exactly its bf16 rounding; labels
        // stay exact f32.
        let nodes: Vec<u32> = (0..n as u32).rev().collect();
        let mut feat = DMatrix::zeros(0, 0);
        let mut lab = DMatrix::zeros(0, 0);
        store.gather_features_into(&nodes, &mut feat).unwrap();
        store.gather_labels_into(&nodes, &mut lab).unwrap();
        for (i, &v) in nodes.iter().enumerate() {
            for j in 0..5 {
                let want = Bf16::from_f32(f.get(v as usize, j)).to_f32();
                assert_eq!(feat.get(i, j), want, "feature ({v},{j})");
            }
            for j in 0..2 {
                assert_eq!(lab.get(i, j), l.get(v as usize, j), "label ({v},{j})");
            }
        }
        // Materialize widens through the same path.
        let (back, feats, _) = store.materialize().unwrap();
        assert_eq!(*back, g);
        let feats = feats.unwrap();
        assert_eq!(feats.get(9, 3), Bf16::from_f32(f.get(9, 3)).to_f32());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bf16_store_halves_feature_bytes() {
        use gsgcn_tensor::Precision;
        let g = two_communities();
        let n = g.num_vertices();
        let f_dim = 64;
        let f = DMatrix::from_fn(n, f_dim, |i, j| (i * f_dim + j) as f32 * 0.01);
        let d32 = fresh_temp_dir().unwrap();
        let d16 = fresh_temp_dir().unwrap();
        let m32 = write_store(&d32, &g, Some(&f), None, 3).unwrap();
        let m16 = shard::write_store_with_precision(
            &d16,
            &g,
            Some(&f),
            None,
            3,
            StoreOrder::Natural,
            Precision::Bf16,
        )
        .unwrap();
        let total = |m: &StoreManifest| m.shards.iter().map(|s| s.file_len).sum::<u64>();
        // Per shard the feature section shrinks from 4·k·f to 2·k·f bytes,
        // give or take ≤8 bytes of section alignment.
        let saved = total(&m32) - total(&m16);
        let expect = 2 * (n * f_dim) as u64;
        assert!(
            saved + 8 * m32.num_shards() as u64 >= expect && saved <= expect,
            "bf16 saved {saved} bytes, expected ~{expect}"
        );
        std::fs::remove_dir_all(&d32).unwrap();
        std::fs::remove_dir_all(&d16).unwrap();
    }

    #[test]
    fn prefetch_pages_shards_in_and_counts_hits() {
        let g = two_communities();
        let (dir, _) = spill(&g, 4);
        let store = GraphStore::Mmap(MmapStore::open_with_prefetch(&dir, 1 << 20, true).unwrap());
        assert!(store.prefetch_enabled());
        let nodes: Vec<u32> = (0..16).collect();
        let accepted = store.prefetch_nodes(&nodes);
        assert!(accepted > 0, "no prefetch requests accepted");
        // Wait (bounded) for the worker to drain the queue.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        loop {
            let stats = store.cache_stats().unwrap();
            if stats.resident_shards == 4 {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "prefetcher never paged the shards in: {stats:?}"
            );
            std::thread::yield_now();
        }
        // Demand reads now hit without a single demand miss, and the
        // prefetch-hit counter credits the prefetcher.
        for v in 0..16u32 {
            assert_eq!(&*store.neighbors_ref(v), g.neighbors(v));
        }
        let stats = store.cache_stats().unwrap();
        assert_eq!(stats.misses, 0, "{stats:?}");
        assert_eq!(stats.prefetch_hits, 4, "{stats:?}");
        assert_eq!(stats.prefetch_issued, accepted as u64);
        drop(store);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn prefetch_never_evicts_referenced_shards() {
        let g = two_communities();
        let (dir, _) = spill(&g, 4);
        // Budget fits roughly one shard: prefetching all shards must
        // decline rather than evict what the reader is using.
        let one_shard = std::fs::metadata(dir.join(shard::shard_file_name(0)))
            .unwrap()
            .len() as usize;
        let store = GraphStore::Mmap(
            MmapStore::open_with_prefetch(&dir, one_shard + one_shard / 2, true).unwrap(),
        );
        // Touch vertex 0's shard so its referenced bit is set.
        let hot = store.neighbors_ref(0);
        let hot_sid = store.shard_of(0).unwrap();
        store.prefetch_nodes(&(0..16).collect::<Vec<u32>>());
        // Drain the queue.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        while store.cache_stats().unwrap().prefetch_issued
            > store.cache_stats().unwrap().prefetch_hits
                + store.cache_stats().unwrap().prefetch_wasted
                + store.cache_stats().unwrap().resident_shards as u64
            && std::time::Instant::now() < deadline
        {
            std::thread::yield_now();
        }
        std::thread::sleep(std::time::Duration::from_millis(50));
        // The hot shard was never evicted: re-reading it is a hit, not a
        // reload (misses for it stay at 1).
        let before = store.cache_stats().unwrap();
        assert_eq!(&*store.neighbors_ref(0), &*hot);
        let after = store.cache_stats().unwrap();
        assert_eq!(
            after.misses, before.misses,
            "prefetch evicted referenced shard {hot_sid}"
        );
        drop(store);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn panicked_prefetcher_degrades_to_synchronous_reads() {
        let g = two_communities();
        let (dir, _) = spill(&g, 4);
        let store = MmapStore::open_with_prefetch(&dir, 1 << 20, true).unwrap();
        store.inject_prefetch_panic();
        // Trigger the panic with a real request, then wait for degrade.
        store.prefetch_nodes(&[0]);
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        while store.prefetch_enabled() {
            assert!(
                std::time::Instant::now() < deadline,
                "prefetcher never degraded after injected panic"
            );
            std::thread::yield_now();
        }
        // Requests are no-ops now; demand reads still answer exactly.
        assert_eq!(store.prefetch_nodes(&(0..16).collect::<Vec<u32>>()), 0);
        let store = GraphStore::Mmap(store);
        for v in 0..16u32 {
            assert_eq!(&*store.neighbors_ref(v), g.neighbors(v));
        }
        drop(store);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn grouped_gather_matches_sequential_under_churn() {
        let g = two_communities();
        let (dir, _) = spill(&g, 4);
        let plain = GraphStore::open_with_budget(&dir, 1).unwrap();
        let pf = GraphStore::Mmap(MmapStore::open_with_prefetch(&dir, 1, true).unwrap());
        // Deliberately scattered and duplicated row set.
        let nodes: Vec<u32> = (0..64u32).map(|i| (i * 7) % 16).collect();
        let mut want = DMatrix::zeros(0, 0);
        let mut got = DMatrix::zeros(0, 0);
        plain.gather_features_into(&nodes, &mut want).unwrap();
        pf.gather_features_into(&nodes, &mut got).unwrap();
        assert_eq!(want.data(), got.data());
        drop(pf);
        drop(plain);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn order_and_prefetch_env_parsing() {
        assert_eq!("bfs".parse::<StoreOrder>().unwrap(), StoreOrder::Bfs);
        assert!("zorder".parse::<StoreOrder>().is_err());
    }

    #[test]
    fn backend_parsing() {
        assert_eq!("mem".parse::<StoreBackend>().unwrap(), StoreBackend::Mem);
        assert_eq!("MMAP".parse::<StoreBackend>().unwrap(), StoreBackend::Mmap);
        assert!("disk".parse::<StoreBackend>().is_err());
        assert_eq!(parse_byte_size("64MiB").unwrap(), 64 << 20);
        assert_eq!(parse_byte_size("10KB").unwrap(), 10_000);
        assert!(parse_byte_size("64XB").is_err());
    }
}
