//! Locality-aware vertex orders for shard layout.
//!
//! The shard writer places vertices into shards; *which* vertices share a
//! shard decides how many shards an L-hop ball touches and therefore what
//! an out-of-core gather costs under an undersized cache. This module
//! computes the placement permutation:
//!
//! * [`StoreOrder::Natural`] — identity. The writer keeps its historical
//!   behavior (BFS-grown partition, members ascending by id) and the
//!   manifest carries no ordering section, so natural stores are
//!   byte-identical to stores written before orders existed.
//! * [`StoreOrder::Bfs`] — breadth-first from a maximum-degree root per
//!   component. Neighbors get adjacent ranks, so the contiguous-rank
//!   shard cut keeps L-hop balls inside few shards.
//! * [`StoreOrder::Degree`] — degree-descending. Cheap (one sort), groups
//!   the hubs most gathers touch into the same few shards.
//!
//! The order is purely a *placement* permutation: vertex ids on disk
//! (members, adjacency, the CLI/serve protocol) stay in user numbering,
//! and the global → (shard, local) index resolves reads exactly as
//! before. `rank[v]` — the position of vertex `v` in the chosen order —
//! is recorded in the manifest so
//! [`GraphStore::to_internal`](super::GraphStore::to_internal) /
//! [`to_external`](super::GraphStore::to_external) can translate at the
//! store boundary; no read path depends on it, which is why loss/F1 are
//! bit-identical across orders by construction.

use crate::csr::CsrGraph;
use crate::partition::VertexPartition;

/// Which placement order the shard writer uses. See the module docs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum StoreOrder {
    /// Identity placement (the historical writer; no manifest section).
    #[default]
    Natural,
    /// BFS from a max-degree root per component.
    Bfs,
    /// Degree-descending.
    Degree,
}

impl StoreOrder {
    /// Stable name for flags, manifests and bench tags.
    pub fn name(self) -> &'static str {
        match self {
            StoreOrder::Natural => "natural",
            StoreOrder::Bfs => "bfs",
            StoreOrder::Degree => "degree",
        }
    }

    /// On-disk tag in the manifest ordering section.
    pub(crate) fn code(self) -> u32 {
        match self {
            StoreOrder::Natural => 0,
            StoreOrder::Bfs => 1,
            StoreOrder::Degree => 2,
        }
    }

    pub(crate) fn from_code(code: u32) -> Option<StoreOrder> {
        match code {
            0 => Some(StoreOrder::Natural),
            1 => Some(StoreOrder::Bfs),
            2 => Some(StoreOrder::Degree),
            _ => None,
        }
    }
}

impl std::str::FromStr for StoreOrder {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        match s.trim().to_ascii_lowercase().as_str() {
            "natural" | "none" => Ok(StoreOrder::Natural),
            "bfs" => Ok(StoreOrder::Bfs),
            "degree" | "deg" => Ok(StoreOrder::Degree),
            other => Err(format!(
                "bad shard order {other:?}: expected natural|bfs|degree"
            )),
        }
    }
}

/// The `GSGCN_SHARD_ORDER` env default for env-rerouted spills (the CLI
/// `--order` flag wins). Unset or empty means [`StoreOrder::Natural`].
///
/// # Panics
/// Panics on an unparseable value, for the same reason as
/// [`backend_from_env`](super::backend_from_env): a typo silently writing
/// natural-order stores would invalidate the locality CI runs.
pub fn order_from_env() -> StoreOrder {
    match std::env::var("GSGCN_SHARD_ORDER") {
        Err(_) => StoreOrder::Natural,
        Ok(raw) if raw.trim().is_empty() => StoreOrder::Natural,
        Ok(raw) => raw
            .parse()
            .unwrap_or_else(|e| panic!("GSGCN_SHARD_ORDER: {e}")),
    }
}

/// `rank[v]` = position of vertex `v` under `order`, or `None` for
/// [`StoreOrder::Natural`] (identity — the writer takes its historical
/// path and writes no ordering section).
pub fn order_rank(graph: &CsrGraph, order: StoreOrder) -> Option<Vec<u32>> {
    match order {
        StoreOrder::Natural => None,
        StoreOrder::Bfs => Some(bfs_rank(graph)),
        StoreOrder::Degree => Some(degree_rank(graph)),
    }
}

/// Vertices sorted degree-descending, ties broken by ascending id (both
/// deterministic, so the same graph always gets the same layout).
fn by_degree_desc(graph: &CsrGraph) -> Vec<u32> {
    let mut verts: Vec<u32> = (0..graph.num_vertices() as u32).collect();
    verts.sort_by_key(|&v| (std::cmp::Reverse(graph.degree(v)), v));
    verts
}

fn degree_rank(graph: &CsrGraph) -> Vec<u32> {
    let mut rank = vec![0u32; graph.num_vertices()];
    for (r, &v) in by_degree_desc(graph).iter().enumerate() {
        rank[v as usize] = r as u32;
    }
    rank
}

/// BFS order: each component is traversed breadth-first from its
/// max-degree vertex (ties by id); components are taken in that same
/// degree-descending seed order. Neighbors are visited in stored
/// adjacency order, so the result is deterministic.
fn bfs_rank(graph: &CsrGraph) -> Vec<u32> {
    let n = graph.num_vertices();
    let mut rank = vec![u32::MAX; n];
    let mut next = 0u32;
    let mut queue = std::collections::VecDeque::new();
    for seed in by_degree_desc(graph) {
        if rank[seed as usize] != u32::MAX {
            continue;
        }
        rank[seed as usize] = next;
        next += 1;
        queue.push_back(seed);
        while let Some(v) = queue.pop_front() {
            for &u in graph.neighbors(v) {
                if rank[u as usize] == u32::MAX {
                    rank[u as usize] = next;
                    next += 1;
                    queue.push_back(u);
                }
            }
        }
    }
    debug_assert_eq!(next as usize, n);
    rank
}

/// Cut a rank permutation into `p` contiguous rank ranges: part of `v` is
/// `rank[v] / ⌈n/p⌉`. Equal-sized parts (last may be short), and because
/// ranks of close-by vertices are close, each part is a locality cluster.
pub fn partition_by_rank(rank: &[u32], p: usize) -> VertexPartition {
    assert!(p >= 1);
    let n = rank.len();
    let target = n.div_ceil(p).max(1);
    let part = rank
        .iter()
        .map(|&r| ((r as usize / target) as u32).min(p as u32 - 1))
        .collect();
    VertexPartition { part, num_parts: p }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::from_edges;

    fn star_plus_path() -> CsrGraph {
        // Vertex 3 is the hub (degree 4); 5-6-7 is a separate path
        // component whose max-degree vertex is 6.
        from_edges(8, &[(3, 0), (3, 1), (3, 2), (3, 4), (5, 6), (6, 7)])
    }

    fn is_permutation(rank: &[u32]) -> bool {
        let mut seen = vec![false; rank.len()];
        for &r in rank {
            if (r as usize) >= rank.len() || seen[r as usize] {
                return false;
            }
            seen[r as usize] = true;
        }
        true
    }

    #[test]
    fn parse_and_names() {
        assert_eq!("bfs".parse::<StoreOrder>().unwrap(), StoreOrder::Bfs);
        assert_eq!("DEGREE".parse::<StoreOrder>().unwrap(), StoreOrder::Degree);
        assert_eq!(
            "natural".parse::<StoreOrder>().unwrap(),
            StoreOrder::Natural
        );
        assert!("hilbert".parse::<StoreOrder>().is_err());
        for o in [StoreOrder::Natural, StoreOrder::Bfs, StoreOrder::Degree] {
            assert_eq!(o.name().parse::<StoreOrder>().unwrap(), o);
            assert_eq!(StoreOrder::from_code(o.code()), Some(o));
        }
        assert_eq!(StoreOrder::from_code(9), None);
    }

    #[test]
    fn natural_is_identity() {
        let g = star_plus_path();
        assert!(order_rank(&g, StoreOrder::Natural).is_none());
    }

    #[test]
    fn bfs_starts_at_max_degree_root_per_component() {
        let g = star_plus_path();
        let rank = order_rank(&g, StoreOrder::Bfs).unwrap();
        assert!(is_permutation(&rank));
        // Hub first, then its neighbors in adjacency order.
        assert_eq!(rank[3], 0);
        assert_eq!(rank[0], 1);
        assert_eq!(rank[1], 2);
        assert_eq!(rank[2], 3);
        assert_eq!(rank[4], 4);
        // Second component roots at 6 (degree 2 beats 5 and 7).
        assert_eq!(rank[6], 5);
    }

    #[test]
    fn degree_rank_is_degree_sorted() {
        let g = star_plus_path();
        let rank = order_rank(&g, StoreOrder::Degree).unwrap();
        assert!(is_permutation(&rank));
        assert_eq!(rank[3], 0); // degree 4
        assert_eq!(rank[6], 1); // degree 2
                                // Remaining vertices are degree 1, ties by id.
        assert!(rank[0] < rank[1] && rank[1] < rank[2]);
    }

    #[test]
    fn rank_partition_is_contiguous_and_balanced() {
        let g = from_edges(10, &[(0, 1), (2, 3)]);
        let rank: Vec<u32> = (0..10).rev().collect(); // reverse order
        let p = partition_by_rank(&rank, 3);
        assert_eq!(p.sizes(), vec![4, 4, 2]);
        // Part of v follows rank, not id.
        assert_eq!(p.part[9], 0);
        assert_eq!(p.part[0], 2);
        // More parts than vertices still yields a valid partition.
        let q = partition_by_rank(&rank, 20);
        assert_eq!(q.num_parts, 20);
        assert!(q.part.iter().all(|&x| (x as usize) < 20));
        let _ = g;
    }

    #[test]
    fn bfs_keeps_ring_neighbors_in_same_part() {
        let n = 64;
        let edges: Vec<_> = (0..n as u32).map(|i| (i, (i + 1) % n as u32)).collect();
        let g = from_edges(n, &edges);
        let rank = order_rank(&g, StoreOrder::Bfs).unwrap();
        let p = partition_by_rank(&rank, 4);
        // A BFS of a ring expands two arcs; each part is at most two
        // rank-contiguous arcs, so the cut is tiny compared to random.
        let cut = crate::partition::edge_cut(&g, &p);
        assert!(cut <= 16, "ring cut {cut} too high for a BFS order");
    }
}
