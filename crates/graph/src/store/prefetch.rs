//! Asynchronous shard prefetch: a dedicated thread that pages shards into
//! the CLOCK cache *ahead* of the demand reads.
//!
//! The sampler knows the next batch's vertices before the trainer gathers
//! them, the stored evaluator knows chunk `c+1`'s roots while computing
//! chunk `c`, and a grouped gather knows every shard it will touch up
//! front. Feeding those to the prefetcher overlaps the page-in (mmap +
//! first-touch I/O) with compute, the same way the PR-4 sampler pipeline
//! overlaps sampling — and with the same shutdown discipline:
//!
//! * **Bounded queue.** At most one pending request per shard (dedup by
//!   id) and never more than the shard count; producers *drop* excess
//!   requests instead of blocking — prefetch is advisory, a consumer must
//!   never stall on it.
//! * **Stop flag + join on drop.** Dropping the [`Prefetcher`] raises
//!   `stop`, wakes the worker and joins it, so drop mid-epoch or at
//!   early-stop cannot deadlock and never races a store-directory
//!   removal.
//! * **Degrade on panic.** A panicking worker (caught by `catch_unwind`)
//!   flips the `degraded` flag and exits. Requests become no-ops and
//!   every read falls back to synchronous page-in; the cache itself is
//!   untouched because the worker mutates it only through
//!   [`StoreCore::prefetch_load`](super::mmap::StoreCore::prefetch_load),
//!   whose eviction is guarded and whose locks are poison-tolerant.
//!
//! Enablement follows the workspace's flag > env > default policy:
//! `--prefetch` in the CLI, `GSGCN_SHARD_PREFETCH` in the environment,
//! off by default.

use super::mmap::StoreCore;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;

/// The `GSGCN_SHARD_PREFETCH` env default (the CLI's `--prefetch` wins by
/// setting this before stores open). Unset/empty/`0`/`off`/`false` means
/// disabled.
///
/// # Panics
/// Panics on an unparseable value — a typo silently running without
/// prefetch would invalidate exactly the out-of-core CI runs the variable
/// exists for.
pub fn prefetch_from_env() -> bool {
    match std::env::var("GSGCN_SHARD_PREFETCH") {
        Err(_) => false,
        Ok(raw) => match raw.trim().to_ascii_lowercase().as_str() {
            "" | "0" | "off" | "false" | "no" => false,
            "1" | "on" | "true" | "yes" => true,
            other => panic!("GSGCN_SHARD_PREFETCH: bad value {other:?}: expected 0|1|on|off"),
        },
    }
}

/// Mutex-guarded request queue (see module docs for the protocol).
struct State {
    /// Pending shard ids, FIFO.
    queue: VecDeque<u32>,
    /// `queued[sid]`: sid is in `queue` (dedup bit, cleared on pop).
    queued: Vec<bool>,
    /// Shutdown flag (drop).
    stop: bool,
}

struct Shared {
    state: Mutex<State>,
    /// Signalled on new requests and on shutdown.
    wake: Condvar,
    /// Set once the worker has panicked; requests become no-ops.
    degraded: AtomicBool,
    /// Test hook: panic before serving the next request.
    panic_next: AtomicBool,
}

impl Shared {
    fn lock(&self) -> MutexGuard<'_, State> {
        self.state.lock().unwrap_or_else(|p| p.into_inner())
    }
}

/// Handle to the background page-in thread of one store. Owned by
/// [`MmapStore`](super::MmapStore); dropping it joins the thread.
pub(super) struct Prefetcher {
    shared: Arc<Shared>,
    worker: Option<JoinHandle<()>>,
}

impl Prefetcher {
    /// Spawn the worker over the store's shared cache state.
    pub(super) fn spawn(core: Arc<StoreCore>) -> Prefetcher {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                queued: vec![false; core.num_shards()],
                stop: false,
            }),
            wake: Condvar::new(),
            degraded: AtomicBool::new(false),
            panic_next: AtomicBool::new(false),
        });
        let worker = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("gsgcn-prefetch".into())
                .spawn(move || worker_loop(&shared, &core))
                .expect("failed to spawn shard prefetch thread")
        };
        Prefetcher {
            shared,
            worker: Some(worker),
        }
    }

    /// Enqueue shard ids for background page-in. Never blocks: duplicates
    /// of already-queued shards and anything past the queue bound are
    /// dropped. Returns how many requests were accepted.
    pub(super) fn request(&self, sids: &[u32]) -> usize {
        if self.degraded() {
            return 0;
        }
        let mut st = self.shared.lock();
        if st.stop {
            return 0;
        }
        let cap = st.queued.len(); // ≤ one pending request per shard
        let mut accepted = 0;
        for &sid in sids {
            let i = sid as usize;
            if i < cap && !st.queued[i] && st.queue.len() < cap {
                st.queued[i] = true;
                st.queue.push_back(sid);
                accepted += 1;
            }
        }
        drop(st);
        if accepted > 0 {
            self.shared.wake.notify_one();
        }
        accepted
    }

    /// Whether the worker has panicked (requests are no-ops; reads fall
    /// back to synchronous page-in).
    pub(super) fn degraded(&self) -> bool {
        self.shared.degraded.load(Ordering::Relaxed)
    }

    /// Test hook: panic the worker on its next request.
    #[cfg(test)]
    pub(super) fn inject_panic(&self) {
        self.shared.panic_next.store(true, Ordering::Relaxed);
    }
}

impl Drop for Prefetcher {
    fn drop(&mut self) {
        {
            let mut st = self.shared.lock();
            st.stop = true;
        }
        self.shared.wake.notify_all();
        if let Some(handle) = self.worker.take() {
            // A panic already flipped `degraded` via catch_unwind; a join
            // error here has nothing further to report.
            let _ = handle.join();
        }
    }
}

/// Worker loop: pop the next shard id, page it in through the guarded
/// prefetch path, repeat. I/O errors are swallowed (the demand read will
/// surface them loudly); a panic degrades the prefetcher permanently.
fn worker_loop(shared: &Shared, core: &StoreCore) {
    loop {
        let sid = {
            let mut st = shared.lock();
            loop {
                if st.stop {
                    return;
                }
                if let Some(sid) = st.queue.pop_front() {
                    st.queued[sid as usize] = false;
                    break sid;
                }
                st = shared.wake.wait(st).unwrap_or_else(|p| p.into_inner());
            }
        };
        let result = catch_unwind(AssertUnwindSafe(|| {
            if shared.panic_next.swap(false, Ordering::Relaxed) {
                panic!("injected prefetch failure");
            }
            // A failed load is not worth degrading over: the shard may
            // have vanished (partial deployment) and the demand path owns
            // the loud error.
            let _ = core.prefetch_load(sid as usize);
        }));
        if result.is_err() {
            shared.degraded.store(true, Ordering::Relaxed);
            return;
        }
    }
}
