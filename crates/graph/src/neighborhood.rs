//! L-hop neighborhood extraction for batched inference.
//!
//! An L-layer GCN's output at a vertex depends on the input features of
//! exactly the vertices within L hops: layer `k` activations of a vertex
//! at distance `d` from the query set are correct on the induced
//! subgraph of the L-hop ball whenever `d + k ≤ L` (induction on `k` —
//! every neighbor of such a vertex lies within distance `d + 1 ≤
//! L - (k-1)`, and its full neighbor list is inside the ball, so both the
//! aggregate and the `D⁻¹` normalisation match the full graph). Hence a
//! batch of K query nodes can run forward on its K-rooted L-hop induced
//! subgraph instead of the full graph and read off *exactly* the
//! full-graph outputs at the roots — the serving-side counterpart of the
//! paper's subgraph-minibatch training, and the core of the
//! `gsgcn-serve` batch engine.
//!
//! Extraction is a plain breadth-first expansion over the CSR adjacency
//! followed by the same parallel induction used every training iteration
//! ([`crate::subgraph::induced_subgraph`]).

use crate::bitset::BitSet;
use crate::csr::CsrGraph;
use crate::store::Topology;
use crate::subgraph::{induced_subgraph, InducedSubgraph};

/// The induced subgraph of an L-hop ball plus the query-root positions
/// and per-vertex root distances.
#[derive(Clone, Debug)]
pub struct NeighborhoodBatch {
    /// Induced subgraph of every vertex within `hops` of the roots
    /// (relabelled ids + mapping back to original ids).
    pub sub: InducedSubgraph,
    /// Subgraph-local id of each requested root, aligned with the order
    /// of the `roots` argument (duplicates map to the same local id).
    pub root_locals: Vec<u32>,
    /// Hops from the nearest root, indexed by subgraph-local id (roots
    /// are 0). Shortest paths from a root stay inside the ball, so this
    /// equals the full-graph distance.
    pub dist: Vec<u32>,
}

impl NeighborhoodBatch {
    /// Number of vertices in the extracted subgraph.
    pub fn num_vertices(&self) -> usize {
        self.sub.num_vertices()
    }

    /// Per-layer **cone-pruned** graphs for an exact L-layer GCN forward
    /// over this batch.
    ///
    /// Layer `k` (0-based) of an L-layer forward is only *consumed* at
    /// vertices within `L-k-1` hops of the roots: layer L-1 feeds the
    /// roots alone, layer L-2 the roots' 1-hop ball, and so on. The
    /// returned graphs share the ball's vertex set (so activation row
    /// indexing — and the fused `PackSource` pipeline — is untouched)
    /// but graph `k` keeps adjacency only for rows with
    /// `dist ≤ L-k-1`; every other row is isolated, making its (never
    /// consumed) aggregate free. Root-ward rows keep their full
    /// neighbor lists and degrees, so consumed values are **exactly**
    /// the full-graph forward's — the shrinking-frontier counterpart of
    /// the module-level induction argument, pinned by the
    /// batched-vs-full proptests in `gsgcn-serve`.
    ///
    /// The ball must have been extracted with `hops ≥ layers`.
    pub fn layer_graphs(&self, layers: usize) -> Vec<CsrGraph> {
        let n = self.num_vertices();
        let offsets = self.sub.graph.offsets();
        let adj = self.sub.graph.adjacency();
        (0..layers)
            .map(|k| {
                let keep_below = (layers - k - 1) as u32;
                let mut new_offsets = Vec::with_capacity(n + 1);
                new_offsets.push(0usize);
                let mut new_adj =
                    Vec::with_capacity(if k == 0 { adj.len() } else { adj.len() / 2 });
                for v in 0..n {
                    if self.dist[v] <= keep_below {
                        new_adj.extend_from_slice(&adj[offsets[v]..offsets[v + 1]]);
                    }
                    new_offsets.push(new_adj.len());
                }
                CsrGraph::from_raw(new_offsets, new_adj)
            })
            .collect()
    }
}

/// The closed 1-hop ball of a root set, laid out for the serving-side
/// **final hop**: unique roots occupy local rows `0..num_roots` (in
/// first-appearance order), frontier-only vertices follow, and the ball
/// graph keeps adjacency *only on the root rows* (frontier rows are
/// isolated — their aggregates are never consumed).
///
/// This is the activation-cache counterpart of
/// [`NeighborhoodBatch::layer_graphs`]: when the inputs to the last GCN
/// layer (`acts^{L-1}`) are already known at every ball vertex — from a
/// cache, or from a cone-pruned forward, where they are full-graph-exact
/// at all rows within distance 1 of the roots — the last layer plus the
/// classifier head only need this structure, not the L-hop cone. Root
/// rows keep their full neighbor lists (and hence full degrees, the
/// `D⁻¹` exactness condition), so the fused last layer over
/// [`FrontierBall::graph`] is bit-identical at the root rows to the same
/// layer run over any larger exact graph.
#[derive(Clone, Debug)]
pub struct FrontierBall {
    /// Input-graph id of each local row; the first
    /// [`FrontierBall::num_roots`] entries are the unique roots.
    pub origin: Vec<u32>,
    /// Ball graph over `origin.len()` vertices: full (relabelled)
    /// neighbor lists on root rows, isolated frontier rows.
    pub graph: CsrGraph,
    /// Number of unique roots (= the prefix of `origin` they occupy).
    pub num_roots: usize,
    /// Local id of each *requested* root, aligned with the `roots`
    /// argument (duplicates map to the same local id; all `< num_roots`).
    pub root_locals: Vec<u32>,
}

/// Extract the [`FrontierBall`] of `roots` in `g`.
///
/// # Panics
/// Panics if any root id is out of range for `g`.
pub fn one_hop_frontier<T: Topology + ?Sized>(g: &T, roots: &[u32]) -> FrontierBall {
    let n = g.num_vertices();
    let mut local_of: std::collections::HashMap<u32, u32> =
        std::collections::HashMap::with_capacity(roots.len() * 4);
    let mut origin: Vec<u32> = Vec::with_capacity(roots.len());
    let mut root_locals = Vec::with_capacity(roots.len());
    for &r in roots {
        assert!(
            (r as usize) < n,
            "root vertex {r} out of range for a {n}-vertex graph"
        );
        let next = origin.len() as u32;
        let id = *local_of.entry(r).or_insert(next);
        if id == next {
            origin.push(r);
        }
        root_locals.push(id);
    }
    let num_roots = origin.len();
    let mut offsets = Vec::with_capacity(num_roots + 1);
    offsets.push(0usize);
    let mut adj = Vec::new();
    for k in 0..num_roots {
        let orig = origin[k];
        for &u in g.neighbors_ref(orig).iter() {
            let next = origin.len() as u32;
            let id = *local_of.entry(u).or_insert(next);
            if id == next {
                origin.push(u);
            }
            adj.push(id);
        }
        offsets.push(adj.len());
    }
    // Frontier rows are isolated: empty adjacency, same offset.
    offsets.resize(origin.len() + 1, adj.len());
    FrontierBall {
        graph: CsrGraph::from_raw(offsets, adj),
        num_roots,
        root_locals,
        origin,
    }
}

/// Multi-source BFS distances from `roots` over `g` (`u32::MAX` is
/// unreachable — cannot occur for ball-extracted subgraphs).
fn bfs_distances(g: &CsrGraph, roots: &[u32]) -> Vec<u32> {
    let n = g.num_vertices();
    let mut dist = vec![u32::MAX; n];
    let mut frontier: Vec<u32> = Vec::with_capacity(roots.len());
    for &r in roots {
        if dist[r as usize] != 0 {
            dist[r as usize] = 0;
            frontier.push(r);
        }
    }
    let mut next = Vec::new();
    let mut d = 0u32;
    while !frontier.is_empty() {
        d += 1;
        for &v in &frontier {
            for &u in g.neighbors(v) {
                if dist[u as usize] == u32::MAX {
                    dist[u as usize] = d;
                    next.push(u);
                }
            }
        }
        std::mem::swap(&mut frontier, &mut next);
        next.clear();
    }
    dist
}

/// All vertices within `hops` of `roots` (the closed L-hop ball), as a
/// sorted, deduplicated original-id list.
///
/// # Panics
/// Panics if any root id is out of range for `g`.
pub fn l_hop_ball<T: Topology + ?Sized>(g: &T, roots: &[u32], hops: usize) -> Vec<u32> {
    let n = g.num_vertices();
    let mut visited = BitSet::new(n);
    let mut frontier: Vec<u32> = Vec::with_capacity(roots.len());
    for &r in roots {
        assert!(
            (r as usize) < n,
            "root vertex {r} out of range for a {n}-vertex graph"
        );
        if visited.insert(r as usize) {
            frontier.push(r);
        }
    }
    let mut next = Vec::new();
    for _ in 0..hops {
        for &v in &frontier {
            for &u in g.neighbors_ref(v).iter() {
                if visited.insert(u as usize) {
                    next.push(u);
                }
            }
        }
        if next.is_empty() {
            break;
        }
        std::mem::swap(&mut frontier, &mut next);
        next.clear();
    }
    let mut ball: Vec<u32> = visited.iter().map(|i| i as u32).collect();
    ball.sort_unstable();
    ball
}

/// Extract the induced subgraph of the L-hop ball around `roots` and
/// locate each root inside it.
///
/// Running an L-layer GCN forward on `sub.graph` (features gathered by
/// `sub.origin`) yields, at rows `root_locals`, exactly the values the
/// same forward would produce on the full graph — see the module docs.
///
/// # Panics
/// Panics if any root id is out of range for `g`.
pub fn l_hop_subgraph<T: Topology + ?Sized>(
    g: &T,
    roots: &[u32],
    hops: usize,
) -> NeighborhoodBatch {
    let ball = l_hop_ball(g, roots, hops);
    let sub = induced_subgraph(g, &ball);
    // `origin` is sorted ascending, so each root resolves by binary search.
    let root_locals: Vec<u32> = roots
        .iter()
        .map(|r| {
            sub.origin
                .binary_search(r)
                .expect("root must be in its own ball") as u32
        })
        .collect();
    // Root distances via BFS *inside* the ball: a shortest root path
    // only visits closer-to-root vertices, all of which are in the
    // ball, so these equal the full-graph distances.
    let dist = bfs_distances(&sub.graph, &root_locals);
    NeighborhoodBatch {
        sub,
        root_locals,
        dist,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::from_edges;

    /// Path 0-1-2-3-4 plus an isolated pair 5-6.
    fn path_graph() -> CsrGraph {
        from_edges(7, &[(0, 1), (1, 2), (2, 3), (3, 4), (5, 6)])
    }

    #[test]
    fn zero_hops_is_the_root_set() {
        let g = path_graph();
        let ball = l_hop_ball(&g, &[2, 4], 0);
        assert_eq!(ball, vec![2, 4]);
    }

    #[test]
    fn one_hop_adds_direct_neighbors() {
        let g = path_graph();
        assert_eq!(l_hop_ball(&g, &[2], 1), vec![1, 2, 3]);
        assert_eq!(l_hop_ball(&g, &[0], 1), vec![0, 1]);
    }

    #[test]
    fn two_hops_expand_transitively() {
        let g = path_graph();
        assert_eq!(l_hop_ball(&g, &[2], 2), vec![0, 1, 2, 3, 4]);
        assert_eq!(l_hop_ball(&g, &[5], 2), vec![5, 6]);
    }

    #[test]
    fn ball_saturates_on_connected_component() {
        let g = path_graph();
        // Hops beyond the component diameter change nothing.
        assert_eq!(l_hop_ball(&g, &[0], 10), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn duplicate_and_unsorted_roots() {
        let g = path_graph();
        let ball = l_hop_ball(&g, &[3, 1, 3], 1);
        assert_eq!(ball, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn subgraph_locates_roots_in_request_order() {
        let g = path_graph();
        let batch = l_hop_subgraph(&g, &[3, 1, 3], 1);
        assert_eq!(batch.sub.origin, vec![0, 1, 2, 3, 4]);
        assert_eq!(batch.root_locals, vec![3, 1, 3]);
        for (&local, &orig) in batch.root_locals.iter().zip(&[3u32, 1, 3]) {
            assert_eq!(batch.sub.to_original(local), orig);
        }
    }

    #[test]
    fn interior_vertices_keep_full_degree() {
        // Vertices whose whole neighborhood is inside the ball must keep
        // their full-graph degree (the D⁻¹ normalisation the exactness
        // argument rests on).
        let g = path_graph();
        let batch = l_hop_subgraph(&g, &[2], 2);
        // Local id of original 2.
        let local = batch.root_locals[0];
        assert_eq!(batch.sub.graph.degree(local), g.degree(2));
        // 1 and 3 are at distance 1 ≤ L-1: full degree too.
        for orig in [1u32, 3] {
            let l = batch.sub.origin.binary_search(&orig).unwrap() as u32;
            assert_eq!(batch.sub.graph.degree(l), g.degree(orig));
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_root_panics() {
        let g = path_graph();
        l_hop_ball(&g, &[99], 1);
    }

    #[test]
    fn distances_match_hops_from_nearest_root() {
        let g = path_graph();
        let batch = l_hop_subgraph(&g, &[2], 2);
        // origin = [0,1,2,3,4]; distances from 2 along the path.
        assert_eq!(batch.dist, vec![2, 1, 0, 1, 2]);
        // Multi-root: nearest root wins.
        let batch = l_hop_subgraph(&g, &[0, 4], 2);
        assert_eq!(batch.sub.origin, vec![0, 1, 2, 3, 4]);
        assert_eq!(batch.dist, vec![0, 1, 2, 1, 0]);
    }

    #[test]
    fn layer_graphs_prune_outward_rows_only() {
        let g = path_graph();
        let batch = l_hop_subgraph(&g, &[2], 2);
        let layers = batch.layer_graphs(2);
        assert_eq!(layers.len(), 2);
        // Layer 0 keeps adjacency for dist ≤ 1 (locals of 1, 2, 3);
        // boundary rows (0, 4) are isolated.
        let l0 = &layers[0];
        assert_eq!(l0.num_vertices(), 5);
        for v in 0..5u32 {
            let expect = if batch.dist[v as usize] <= 1 {
                batch.sub.graph.neighbors(v)
            } else {
                &[][..]
            };
            assert_eq!(l0.neighbors(v), expect, "layer 0 row {v}");
        }
        // Layer 1 (the last) keeps only the root row.
        let l1 = &layers[1];
        for v in 0..5u32 {
            let expect = if batch.dist[v as usize] == 0 {
                batch.sub.graph.neighbors(v)
            } else {
                &[][..]
            };
            assert_eq!(l1.neighbors(v), expect, "layer 1 row {v}");
        }
        // Kept rows retain their full degrees (the D⁻¹ exactness
        // condition).
        let root_local = batch.root_locals[0];
        assert_eq!(l1.degree(root_local), g.degree(2));
    }

    #[test]
    fn frontier_ball_roots_first_with_full_root_adjacency() {
        let g = path_graph();
        // Duplicated + unsorted roots: 3 appears twice, maps once.
        let fb = one_hop_frontier(&g, &[3, 1, 3]);
        assert_eq!(fb.num_roots, 2);
        assert_eq!(&fb.origin[..2], &[3, 1]);
        assert_eq!(fb.root_locals, vec![0, 1, 0]);
        // Ball = {3,1} ∪ N(3) ∪ N(1) = {0,1,2,3,4}.
        let mut all = fb.origin.clone();
        all.sort_unstable();
        assert_eq!(all, vec![0, 1, 2, 3, 4]);
        // Root rows keep full degree; frontier rows are isolated.
        for k in 0..fb.num_roots as u32 {
            assert_eq!(fb.graph.degree(k), g.degree(fb.origin[k as usize]));
        }
        for k in fb.num_roots as u32..fb.origin.len() as u32 {
            assert_eq!(fb.graph.degree(k), 0, "frontier row {k} not isolated");
        }
        // Adjacency maps back to the original neighbor lists, in order.
        for k in 0..fb.num_roots as u32 {
            let mapped: Vec<u32> = fb
                .graph
                .neighbors(k)
                .iter()
                .map(|&l| fb.origin[l as usize])
                .collect();
            assert_eq!(mapped, g.neighbors(fb.origin[k as usize]));
        }
    }

    #[test]
    fn frontier_ball_of_whole_vertex_set_is_the_graph() {
        let g = path_graph();
        let all: Vec<u32> = (0..7).collect();
        let fb = one_hop_frontier(&g, &all);
        assert_eq!(fb.num_roots, 7);
        assert_eq!(fb.origin, all);
        assert_eq!(fb.root_locals, all);
        assert_eq!(fb.graph, g);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn frontier_ball_rejects_out_of_range_roots() {
        let g = path_graph();
        one_hop_frontier(&g, &[0, 99]);
    }

    #[test]
    fn layer_graphs_for_whole_set_batch_are_unpruned() {
        let g = path_graph();
        let batch = l_hop_subgraph(&g, &[0, 1, 2, 3, 4, 5, 6], 2);
        for lg in batch.layer_graphs(2) {
            assert_eq!(lg, batch.sub.graph);
        }
    }
}
