//! Property tests pinning the fused GCN layer (aggregate→GEMM pipeline)
//! to the unfused aggregate-then-GEMM reference layer: forward
//! activations, input gradients and both weight gradients must agree
//! within 1e-4 on random graphs, blocking-boundary shapes and 1/2/4
//! thread counts, for both whole-model train steps and single layers.

use gsgcn_graph::{CsrGraph, GraphBuilder};
use gsgcn_nn::gcn_layer::GcnLayer;
use gsgcn_nn::model::{GcnConfig, GcnModel, LossKind};
use gsgcn_prop::propagator::FeaturePropagator;
use gsgcn_tensor::{precision, DMatrix, Precision};
use proptest::prelude::*;

const N_DIMS: [usize; 6] = [2, 7, 9, 33, 65, 80];
const F_DIMS: [usize; 4] = [1, 3, 9, 33];
const HALF_DIMS: [usize; 3] = [1, 8, 17];
const THREADS: [usize; 3] = [1, 2, 4];

fn rand_graph(n: usize, extra: usize, seed: u64) -> CsrGraph {
    let mut edges: Vec<(u32, u32)> = (0..n as u32).map(|i| (i, (i + 1) % n as u32)).collect();
    let mut s = seed | 1;
    for _ in 0..extra {
        s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let a = ((s >> 33) as usize) % n;
        s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let b = ((s >> 33) as usize) % n;
        if a != b {
            edges.push((a as u32, b as u32));
        }
    }
    GraphBuilder::new(n).add_edges(edges).build()
}

fn mat(rows: usize, cols: usize, seed: u64) -> DMatrix {
    DMatrix::from_fn(rows, cols, |i, j| {
        let x = (seed as usize)
            .wrapping_mul(37)
            .wrapping_add(i * 113 + j * 29)
            % 19;
        x as f32 * 0.12 - 1.0
    })
}

fn in_pool<R: Send>(threads: usize, f: impl FnOnce() -> R + Send) -> R {
    rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .unwrap()
        .install(f)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// One layer, forward + backward, fused vs unfused reference.
    #[test]
    fn fused_layer_matches_unfused(
        ni in 0..N_DIMS.len(), fi in 0..F_DIMS.len(), hi in 0..HALF_DIMS.len(),
        ti in 0..THREADS.len(), seed in any::<u64>(),
    ) {
        let (n, f_in, half) = (N_DIMS[ni], F_DIMS[fi], HALF_DIMS[hi]);
        let g = rand_graph(n, 2 * n, seed);
        let h = mat(n, f_in, seed ^ 0xA);
        let d_out = mat(n, 2 * half, seed ^ 0xB);
        let prop = FeaturePropagator::default();

        // Pinned to f32 storage: the unfused reference has no bf16 path,
        // so this equivalence is exact only at full precision. (The
        // override wraps the forward call inside the pool, where the
        // precision is read.)
        let run = |fused: bool, threads: usize| {
            let mut layer = GcnLayer::new(f_in, half, true, seed ^ 0xC).with_fused(fused);
            in_pool(threads, || {
                precision::with_precision(Precision::F32, || {
                    let (out, _) = layer.forward(&g, &h, &prop);
                    let (d_in, grads, _) = layer.backward(&g, &d_out, &prop);
                    (out, d_in, grads.d_w_neigh.clone(), grads.d_w_self.clone())
                })
            })
        };
        let (of, df, wnf, wsf) = run(true, THREADS[ti]);
        let (ou, du, wnu, wsu) = run(false, 1);
        prop_assert!(of.max_abs_diff(&ou) < 1e-4, "forward n={n} f={f_in} half={half}");
        prop_assert!(df.max_abs_diff(&du) < 1e-4, "d_in n={n} f={f_in} half={half}");
        prop_assert!(wnf.max_abs_diff(&wnu) < 1e-4, "dW_neigh");
        prop_assert!(wsf.max_abs_diff(&wsu) < 1e-4, "dW_self");

        // Fused results must not depend on the thread count.
        let (of1, df1, _, _) = run(true, 1);
        prop_assert!(of.max_abs_diff(&of1) == 0.0, "fused forward thread variance");
        prop_assert!(df.max_abs_diff(&df1) == 0.0, "fused backward thread variance");
    }

    /// Whole-model train steps: fused and unfused models starting from
    /// identical weights follow the same loss trajectory.
    #[test]
    fn fused_model_trajectory_matches_unfused(
        ni in 0..N_DIMS.len(), ti in 0..THREADS.len(), seed in any::<u64>(),
    ) {
        let n = N_DIMS[ni].max(4);
        let g = rand_graph(n, 3 * n, seed);
        let x = mat(n, 6, seed ^ 0xD);
        let y = DMatrix::from_fn(n, 3, |i, j| ((i + j + seed as usize) % 2) as f32);
        let run = |fused: bool| {
            let cfg = GcnConfig {
                in_dim: 6,
                hidden_dims: vec![8, 8],
                num_classes: 3,
                loss: LossKind::SigmoidBce,
                fused,
                ..GcnConfig::default()
            };
            let mut m = GcnModel::new(cfg, seed ^ 0xE);
            // Pinned to f32 storage — same rationale as the layer test.
            in_pool(THREADS[ti], || {
                precision::with_precision(Precision::F32, || {
                    (0..4).map(|_| m.train_step(&g, &x, &y).loss).collect::<Vec<f32>>()
                })
            })
        };
        let lf = run(true);
        let lu = run(false);
        for (a, b) in lf.iter().zip(&lu) {
            prop_assert!((a - b).abs() < 1e-4, "loss trajectory diverged: {lf:?} vs {lu:?}");
        }
    }

    /// Mixed-precision trajectory band: a model trained with bf16
    /// activation storage must track the f32 trajectory within the
    /// composed tolerance model (`precision::rel_tolerance` at the
    /// model's depth), across kernel tiers and 1/2/4 threads. Weight
    /// updates compound the storage rounding, so the band widens per
    /// step — but it must stay far inside the <0.5% F1 budget.
    #[test]
    fn bf16_model_trajectory_within_band(
        ni in 0..N_DIMS.len(), ti in 0..THREADS.len(), seed in any::<u64>(),
    ) {
        use gsgcn_tensor::gemm;
        let n = N_DIMS[ni].max(4);
        let g = rand_graph(n, 3 * n, seed);
        let x = mat(n, 6, seed ^ 0xD);
        let y = DMatrix::from_fn(n, 3, |i, j| ((i + j + seed as usize) % 2) as f32);
        let run = |p: Precision, tier: gemm::Tier| {
            let cfg = GcnConfig {
                in_dim: 6,
                hidden_dims: vec![8, 8],
                num_classes: 3,
                loss: LossKind::SigmoidBce,
                ..GcnConfig::default()
            };
            let mut m = GcnModel::new(cfg, seed ^ 0x10);
            in_pool(THREADS[ti], || {
                gemm::with_tier(tier, || {
                    precision::with_precision(p, || {
                        (0..4).map(|_| m.train_step(&g, &x, &y).loss).collect::<Vec<f32>>()
                    })
                })
            })
        };
        let reference = run(Precision::F32, gemm::Tier::Scalar);
        // Depth 3 (two hidden layers + classifier), fan-in = widest input.
        let tol = precision::rel_tolerance(Precision::Bf16, 3, 8);
        for tier in gemm::available_tiers() {
            let losses = run(Precision::Bf16, tier);
            for (step, (a, b)) in losses.iter().zip(&reference).enumerate() {
                // The rounding compounds through the optimiser: widen the
                // band per completed update.
                let band = tol * (step + 1) as f32 * (1.0 + b.abs());
                prop_assert!(
                    (a - b).abs() <= band,
                    "tier {} step {step}: bf16 loss {a} vs f32 {b} outside {band}",
                    tier.name()
                );
            }
        }
    }

    /// Whole-model tier equivalence: the training loss trajectory (fused
    /// path, the default) is within 1e-4 of the scalar tier's for every
    /// microkernel tier this CPU can run — the end-to-end guarantee that
    /// kernel dispatch never changes what the model learns.
    #[test]
    fn model_trajectory_tier_equivalence(
        ni in 0..N_DIMS.len(), ti in 0..THREADS.len(), seed in any::<u64>(),
    ) {
        use gsgcn_tensor::gemm;
        let n = N_DIMS[ni].max(4);
        let g = rand_graph(n, 3 * n, seed);
        let x = mat(n, 6, seed ^ 0xD);
        let y = DMatrix::from_fn(n, 3, |i, j| ((i + j + seed as usize) % 2) as f32);
        let run = |tier: gemm::Tier| {
            let cfg = GcnConfig {
                in_dim: 6,
                hidden_dims: vec![8, 8],
                num_classes: 3,
                loss: LossKind::SigmoidBce,
                ..GcnConfig::default()
            };
            let mut m = GcnModel::new(cfg, seed ^ 0xF);
            in_pool(THREADS[ti], || {
                gemm::with_tier(tier, || {
                    (0..4).map(|_| m.train_step(&g, &x, &y).loss).collect::<Vec<f32>>()
                })
            })
        };
        let reference = run(gemm::Tier::Scalar);
        // Scalar produced the reference trajectory; check the SIMD tiers.
        for tier in gemm::available_tiers()
            .into_iter()
            .filter(|&t| t != gemm::Tier::Scalar)
        {
            let losses = run(tier);
            for (a, b) in losses.iter().zip(&reference) {
                prop_assert!(
                    (a - b).abs() < 1e-4,
                    "tier {} trajectory diverged: {losses:?} vs scalar {reference:?}",
                    tier.name()
                );
            }
        }
    }
}
