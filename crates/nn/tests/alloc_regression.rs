//! Allocation-regression tests for the training *and inference* hot
//! paths.
//!
//! `GcnModel::train_step` must perform **zero matrix allocations** once
//! its persistent workspace is warm — the property the packed-GEMM /
//! buffer-reuse refactor exists to guarantee — and the workspace-driven
//! inference pair `infer_logits_into`/`infer_probs_into` must match it
//! once the caller-owned [`InferenceWorkspace`] is warm (this is what
//! makes the serving hot path and the trainer's per-epoch `evaluate`
//! allocation-free). These tests pin both with the thread-local
//! allocation counter in `gsgcn_tensor::alloc`, running the measured
//! region inside a 1-thread rayon pool so every allocation is attributed
//! to the measuring thread.

use gsgcn_graph::{CsrGraph, GraphBuilder};
use gsgcn_nn::adam::AdamHyper;
use gsgcn_nn::model::{GcnConfig, GcnModel, LossKind};
use gsgcn_nn::InferenceWorkspace;
use gsgcn_tensor::{alloc, DMatrix};

fn ring_graph(n: usize) -> CsrGraph {
    let edges: Vec<(u32, u32)> = (0..n as u32)
        .map(|i| (i, (i + 1) % n as u32))
        .chain((0..n as u32 / 2).map(|i| (i, i + n as u32 / 2)))
        .collect();
    GraphBuilder::new(n).add_edges(edges).build()
}

fn cfg(in_dim: usize, dropout: f32) -> GcnConfig {
    GcnConfig {
        in_dim,
        hidden_dims: vec![16, 16],
        num_classes: 4,
        loss: LossKind::SigmoidBce,
        adam: AdamHyper::default(),
        dropout,
        fused: true,
    }
}

/// Run `steps` training steps and return the allocation-counter delta.
fn allocs_during(
    model: &mut GcnModel,
    g: &CsrGraph,
    x: &DMatrix,
    y: &DMatrix,
    steps: usize,
) -> u64 {
    let before = alloc::matrix_allocations();
    for _ in 0..steps {
        model.train_step(g, x, y);
    }
    alloc::matrix_allocations() - before
}

/// The fused (default) train_step must perform zero matrix allocations
/// after warm-up: fused GEMM packs, the aggregation producer's
/// accumulator and the spilled `Z` buffer all come from persistent or
/// pooled storage.
#[test]
fn train_step_is_allocation_free_after_first_iteration() {
    let n = 64;
    let g = ring_graph(n);
    let x = DMatrix::from_fn(n, 8, |i, j| ((i * 7 + j) % 13) as f32 * 0.1 - 0.6);
    let y = DMatrix::from_fn(n, 4, |i, j| ((i + j) % 2) as f32);
    let mut model = GcnModel::new(cfg(8, 0.0), 42);
    assert!(model.config().fused, "default model must be fused");

    // All parallel work inline on this thread so the thread-local counter
    // sees every allocation.
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(1)
        .build()
        .unwrap();
    pool.install(|| {
        // Warm-up: first iteration builds the persistent workspace.
        let warmup = allocs_during(&mut model, &g, &x, &y, 1);
        assert!(warmup > 0, "warm-up should build the workspace");
        // Steady state: strictly zero matrix allocations.
        let steady = allocs_during(&mut model, &g, &x, &y, 10);
        assert_eq!(
            steady, 0,
            "fused train_step allocated {steady} matrices after warm-up"
        );
    });
}

/// The unfused reference path keeps the same guarantee.
#[test]
fn unfused_train_step_is_allocation_free_after_first_iteration() {
    let n = 64;
    let g = ring_graph(n);
    let x = DMatrix::from_fn(n, 8, |i, j| ((i * 5 + j) % 11) as f32 * 0.1 - 0.5);
    let y = DMatrix::from_fn(n, 4, |i, j| ((i + j) % 2) as f32);
    let mut c = cfg(8, 0.0);
    c.fused = false;
    let mut model = GcnModel::new(c, 42);

    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(1)
        .build()
        .unwrap();
    pool.install(|| {
        allocs_during(&mut model, &g, &x, &y, 1);
        let steady = allocs_during(&mut model, &g, &x, &y, 10);
        assert_eq!(
            steady, 0,
            "unfused train_step allocated {steady} matrices after warm-up"
        );
    });
}

#[test]
fn train_step_with_dropout_is_allocation_free_after_first_iteration() {
    let n = 48;
    let g = ring_graph(n);
    let x = DMatrix::from_fn(n, 6, |i, j| ((i * 3 + j) % 11) as f32 * 0.1 - 0.5);
    let y = DMatrix::from_fn(n, 4, |i, j| ((i * 2 + j) % 2) as f32);
    let mut model = GcnModel::new(cfg(6, 0.3), 7);

    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(1)
        .build()
        .unwrap();
    pool.install(|| {
        allocs_during(&mut model, &g, &x, &y, 2);
        let steady = allocs_during(&mut model, &g, &x, &y, 10);
        assert_eq!(
            steady, 0,
            "dropout path allocated {steady} matrices after warm-up"
        );
    });
}

/// Workspace-driven inference must be allocation-free once the
/// ping-pong buffers are warm — for the fused default and the unfused
/// reference, and for both output activations.
#[test]
fn infer_into_is_allocation_free_after_warmup() {
    let n = 64;
    let g = ring_graph(n);
    let x = DMatrix::from_fn(n, 8, |i, j| ((i * 7 + j) % 13) as f32 * 0.1 - 0.6);

    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(1)
        .build()
        .unwrap();
    pool.install(|| {
        for fused in [true, false] {
            for loss in [LossKind::SigmoidBce, LossKind::SoftmaxCe] {
                let mut c = cfg(8, 0.0);
                c.fused = fused;
                c.loss = loss;
                let model = GcnModel::new(c, 42);
                let mut ws = InferenceWorkspace::new();
                let mut probs = DMatrix::zeros(0, 0);
                // Warm-up sizes the workspace and output buffer.
                model.infer_probs_into(&g, &x, &mut ws, &mut probs);
                let before = alloc::matrix_allocations();
                for _ in 0..10 {
                    model.infer_probs_into(&g, &x, &mut ws, &mut probs);
                }
                let steady = alloc::matrix_allocations() - before;
                assert_eq!(
                    steady, 0,
                    "infer_probs_into (fused={fused}, {loss:?}) allocated \
                     {steady} matrices after warm-up"
                );
            }
        }
    });
}

/// A warm workspace absorbs *bounded* shape variation — the batched
/// serving case, where L-hop subgraph sizes vary per request but stay
/// under a cap.
#[test]
fn infer_into_reuses_buffers_across_bounded_graph_sizes() {
    let sizes = [40usize, 64, 52, 48];
    let graphs: Vec<CsrGraph> = sizes.iter().map(|&n| ring_graph(n)).collect();
    let xs: Vec<DMatrix> = sizes
        .iter()
        .map(|&n| DMatrix::from_fn(n, 8, |i, j| ((i + j) % 5) as f32 * 0.2 - 0.4))
        .collect();
    let model = GcnModel::new(cfg(8, 0.0), 3);
    let mut ws = InferenceWorkspace::new();
    let mut out = DMatrix::zeros(0, 0);

    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(1)
        .build()
        .unwrap();
    pool.install(|| {
        for i in 0..sizes.len() {
            model.infer_probs_into(&graphs[i], &xs[i], &mut ws, &mut out);
        }
        let before = alloc::matrix_allocations();
        for _ in 0..3 {
            for i in 0..sizes.len() {
                model.infer_probs_into(&graphs[i], &xs[i], &mut ws, &mut out);
            }
        }
        let steady = alloc::matrix_allocations() - before;
        assert_eq!(
            steady, 0,
            "bounded-shape inference allocated {steady} matrices after warm-up"
        );
    });
}

#[test]
fn train_step_reuses_buffers_across_bounded_subgraph_sizes() {
    // Shapes vary (as sampled subgraphs do) but stay within a bound:
    // after one pass over the size range, further passes must be free.
    let sizes = [40usize, 64, 52, 48];
    let graphs: Vec<CsrGraph> = sizes.iter().map(|&n| ring_graph(n)).collect();
    let xs: Vec<DMatrix> = sizes
        .iter()
        .map(|&n| DMatrix::from_fn(n, 8, |i, j| ((i + j) % 5) as f32 * 0.2 - 0.4))
        .collect();
    let ys: Vec<DMatrix> = sizes
        .iter()
        .map(|&n| DMatrix::from_fn(n, 4, |i, j| ((i * j) % 2) as f32))
        .collect();
    let mut model = GcnModel::new(cfg(8, 0.0), 3);

    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(1)
        .build()
        .unwrap();
    pool.install(|| {
        // Warm-up pass over every size (the largest fixes the capacity).
        for i in 0..sizes.len() {
            model.train_step(&graphs[i], &xs[i], &ys[i]);
        }
        let before = alloc::matrix_allocations();
        for _ in 0..3 {
            for i in 0..sizes.len() {
                model.train_step(&graphs[i], &xs[i], &ys[i]);
            }
        }
        let steady = alloc::matrix_allocations() - before;
        assert_eq!(
            steady, 0,
            "bounded-shape training allocated {steady} matrices after warm-up"
        );
    });
}
