//! Property-based tests of the neural-network substrate: gradient
//! correctness on random shapes is the load-bearing guarantee.

use gsgcn_graph::builder::from_edges;
use gsgcn_nn::adam::{AdamHyper, AdamParam};
use gsgcn_nn::gcn_layer::GcnLayer;
use gsgcn_nn::loss::{sigmoid_bce, softmax_ce};
use gsgcn_prop::propagator::{FeaturePropagator, PropMode};
use gsgcn_tensor::{precision, DMatrix, Precision};
use proptest::prelude::*;

fn small_matrix(
    rows: std::ops::Range<usize>,
    cols: std::ops::Range<usize>,
) -> impl Strategy<Value = DMatrix> {
    (rows, cols).prop_flat_map(|(r, c)| {
        proptest::collection::vec(-1.5f32..1.5, r * c).prop_map(move |d| DMatrix::from_vec(r, c, d))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// BCE gradient matches finite differences on random logits/targets.
    #[test]
    fn bce_gradient_random(x in small_matrix(1..5, 1..5), seed in any::<u64>()) {
        let y = DMatrix::from_fn(x.rows(), x.cols(), |i, j| {
            ((seed as usize).wrapping_add(i * 31 + j * 7) % 2) as f32
        });
        let (_, grad) = sigmoid_bce(&x, &y);
        let eps = 1e-3f32;
        for i in 0..x.rows() {
            for j in 0..x.cols() {
                let mut xp = x.clone();
                xp.set(i, j, x.get(i, j) + eps);
                let mut xm = x.clone();
                xm.set(i, j, x.get(i, j) - eps);
                let num = (sigmoid_bce(&xp, &y).0 - sigmoid_bce(&xm, &y).0) / (2.0 * eps);
                prop_assert!((num - grad.get(i, j)).abs() < 2e-2, "[{i},{j}] {num} vs {}", grad.get(i, j));
            }
        }
    }

    /// CE gradient matches finite differences; gradient rows sum to zero.
    #[test]
    fn ce_gradient_random(x in small_matrix(1..5, 2..5), pick in any::<u64>()) {
        let y = DMatrix::from_fn(x.rows(), x.cols(), |i, j| {
            if j == (pick as usize).wrapping_add(i) % x.cols() { 1.0 } else { 0.0 }
        });
        let (_, grad) = softmax_ce(&x, &y);
        for i in 0..x.rows() {
            let s: f32 = grad.row(i).iter().sum();
            prop_assert!(s.abs() < 1e-5);
        }
        let eps = 1e-3f32;
        for i in 0..x.rows() {
            for j in 0..x.cols() {
                let mut xp = x.clone();
                xp.set(i, j, x.get(i, j) + eps);
                let mut xm = x.clone();
                xm.set(i, j, x.get(i, j) - eps);
                let num = (softmax_ce(&xp, &y).0 - softmax_ce(&xm, &y).0) / (2.0 * eps);
                prop_assert!((num - grad.get(i, j)).abs() < 2e-2);
            }
        }
    }

    /// Losses are non-negative and finite everywhere.
    #[test]
    fn losses_nonnegative(x in small_matrix(1..6, 1..6)) {
        let y = DMatrix::from_fn(x.rows(), x.cols(), |i, j| ((i + j) % 2) as f32);
        let (bce, gb) = sigmoid_bce(&x, &y);
        prop_assert!(bce >= 0.0 && bce.is_finite());
        prop_assert!(gb.all_finite());
        let onehot = DMatrix::from_fn(x.rows(), x.cols(), |_, j| if j == 0 { 1.0 } else { 0.0 });
        let (ce, gc) = softmax_ce(&x, &onehot);
        prop_assert!(ce >= 0.0 && ce.is_finite());
        prop_assert!(gc.all_finite());
    }

    /// Adam with zero gradient and zero decay never moves the weights.
    #[test]
    fn adam_zero_grad_fixed_point(w in small_matrix(1..5, 1..5), steps in 1u64..20) {
        let mut p = AdamParam::new(w.clone());
        let zero = DMatrix::zeros(w.rows(), w.cols());
        let hyper = AdamHyper::default();
        for t in 1..=steps {
            p.step(&zero, &hyper, t);
        }
        prop_assert!(p.value.max_abs_diff(&w) < 1e-6);
    }

    /// Adam first step is bounded by the learning rate per coordinate.
    #[test]
    fn adam_step_bounded(w in small_matrix(1..5, 1..5), seed in any::<u64>()) {
        let g = DMatrix::from_fn(w.rows(), w.cols(), |i, j| {
            (((seed as usize) + i * 17 + j * 3) % 19) as f32 * 0.1 - 0.9
        });
        let mut p = AdamParam::new(w.clone());
        let hyper = AdamHyper { lr: 0.01, ..AdamHyper::default() };
        p.step(&g, &hyper, 1);
        for (before, after) in w.data().iter().zip(p.value.data()) {
            prop_assert!((before - after).abs() <= hyper.lr * 1.01);
        }
    }

    /// GCN layer gradients match finite differences on random graphs and
    /// dimensions (the full chain: aggregate → weights → concat → ReLU).
    #[test]
    fn gcn_layer_gradient_random(n in 3usize..7, fin in 1usize..4, half in 1usize..3, seed in 0u64..1000) {
        // Pinned to f32 storage: finite differences probe at a step size
        // below bf16 granularity, so the quantized forward would drown
        // the numeric gradient in rounding noise. (The precision is read
        // on this thread, at the layer-forward call.)
        precision::with_precision(Precision::F32, || gcn_layer_gradient_random_body(n, fin, half, seed))?;
    }
}

fn gcn_layer_gradient_random_body(
    n: usize,
    fin: usize,
    half: usize,
    seed: u64,
) -> Result<(), String> {
    {
        let edges: Vec<(u32, u32)> = (0..n as u32).map(|i| (i, (i + 1) % n as u32)).collect();
        let g = from_edges(n, &edges);
        let mut layer = GcnLayer::new(fin, half, true, seed);
        let h = DMatrix::from_fn(n, fin, |i, j| {
            (((seed as usize) + i * 13 + j * 29) % 11) as f32 * 0.2 - 1.0
        });
        let p = FeaturePropagator::new(PropMode::Naive);
        let loss_of = |layer: &GcnLayer, h: &DMatrix| -> f32 {
            let o = layer.infer(&g, h, &p);
            0.5 * o.data().iter().map(|x| x * x).sum::<f32>()
        };
        let (out, _) = layer.forward(&g, &h, &p);
        let (dh, grads, _) = layer.backward(&g, &out, &p);
        let eps = 1e-2f32;
        // Spot-check one weight entry and one input entry.
        {
            let orig = layer.w_neigh.value.get(0, 0);
            layer.w_neigh.value.set(0, 0, orig + eps);
            let lp = loss_of(&layer, &h);
            layer.w_neigh.value.set(0, 0, orig - eps);
            let lm = loss_of(&layer, &h);
            layer.w_neigh.value.set(0, 0, orig);
            let num = (lp - lm) / (2.0 * eps);
            let ana = grads.d_w_neigh.get(0, 0);
            prop_assert!(
                (num - ana).abs() < 0.1 * (1.0 + ana.abs()),
                "dW {num} vs {ana}"
            );
        }
        {
            let mut hp = h.clone();
            hp.set(0, 0, h.get(0, 0) + eps);
            let mut hm = h.clone();
            hm.set(0, 0, h.get(0, 0) - eps);
            let num = (loss_of(&layer, &hp) - loss_of(&layer, &hm)) / (2.0 * eps);
            let ana = dh.get(0, 0);
            prop_assert!(
                (num - ana).abs() < 0.1 * (1.0 + ana.abs()),
                "dH {num} vs {ana}"
            );
        }
    }
    Ok(())
}
