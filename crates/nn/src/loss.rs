//! Loss functions (Alg. 1 line 12) with analytic gradients.
//!
//! Both losses consume raw logits and return `(loss, dLogits)` — fusing
//! the activation into the loss keeps the gradient numerically exact
//! (`σ(x) − y` / `softmax(x) − y`) instead of chaining two lossy steps.
//!
//! Reduction: mean over rows (vertices), sum over classes within a row —
//! the convention of the GraphSAGE reference implementation, so learning
//! rates transfer.

use gsgcn_tensor::{ops, DMatrix};

/// Multi-label sigmoid binary cross-entropy.
///
/// `loss = (1/n) Σ_v Σ_c [ −y·log σ(x) − (1−y)·log(1−σ(x)) ]`
pub fn sigmoid_bce(logits: &DMatrix, targets: &DMatrix) -> (f32, DMatrix) {
    let mut grad = DMatrix::zeros(0, 0);
    let loss = sigmoid_bce_into(logits, targets, &mut grad);
    (loss, grad)
}

/// In-place variant of [`sigmoid_bce`]: writes `dLogits` into `grad`
/// (buffer reused) and returns the loss.
pub fn sigmoid_bce_into(logits: &DMatrix, targets: &DMatrix, grad: &mut DMatrix) -> f32 {
    assert_eq!(
        logits.shape(),
        targets.shape(),
        "logits/targets shape mismatch"
    );
    let n = logits.rows().max(1) as f32;
    let mut loss = 0.0f64;
    grad.ensure_shape(logits.rows(), logits.cols());
    for i in 0..logits.rows() {
        let (xr, yr) = (logits.row(i), targets.row(i));
        let gr = grad.row_mut(i);
        for ((&x, &y), g) in xr.iter().zip(yr).zip(gr.iter_mut()) {
            // Numerically stable: log(1+e^{-|x|}) + max(x,0) − x·y.
            let max_part = x.max(0.0);
            loss += (max_part - x * y + (1.0 + (-x.abs()).exp()).ln()) as f64;
            let sig = 1.0 / (1.0 + (-x).exp());
            *g = (sig - y) / n;
        }
    }
    (loss / n as f64) as f32
}

/// Single-label softmax cross-entropy with one-hot (or distribution)
/// targets.
///
/// `loss = −(1/n) Σ_v Σ_c y·log softmax(x)`
pub fn softmax_ce(logits: &DMatrix, targets: &DMatrix) -> (f32, DMatrix) {
    let mut grad = DMatrix::zeros(0, 0);
    let loss = softmax_ce_into(logits, targets, &mut grad);
    (loss, grad)
}

/// In-place variant of [`softmax_ce`]: `grad` doubles as the softmax
/// workspace, so no temporary is allocated.
pub fn softmax_ce_into(logits: &DMatrix, targets: &DMatrix, grad: &mut DMatrix) -> f32 {
    assert_eq!(
        logits.shape(),
        targets.shape(),
        "logits/targets shape mismatch"
    );
    let n = logits.rows().max(1) as f32;
    grad.copy_from(logits);
    ops::softmax_rows_inplace(grad);
    let mut loss = 0.0f64;
    for i in 0..logits.rows() {
        let yr = targets.row(i);
        let gr = grad.row_mut(i);
        for (&y, g) in yr.iter().zip(gr.iter_mut()) {
            let p = *g;
            if y > 0.0 {
                loss -= (y * p.max(1e-12).ln()) as f64;
            }
            *g = (p - y) / n;
        }
    }
    (loss / n as f64) as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Finite-difference check of an analytic gradient.
    fn check_grad<F: Fn(&DMatrix) -> (f32, DMatrix)>(f: F, x0: &DMatrix, tol: f32) {
        let (_, grad) = f(x0);
        let eps = 1e-3f32;
        for i in 0..x0.rows() {
            for j in 0..x0.cols() {
                let mut xp = x0.clone();
                xp.set(i, j, x0.get(i, j) + eps);
                let mut xm = x0.clone();
                xm.set(i, j, x0.get(i, j) - eps);
                let num = (f(&xp).0 - f(&xm).0) / (2.0 * eps);
                let ana = grad.get(i, j);
                assert!(
                    (num - ana).abs() < tol,
                    "grad[{i},{j}]: numeric {num} vs analytic {ana}"
                );
            }
        }
    }

    #[test]
    fn bce_zero_loss_on_perfect_confidence() {
        let logits = DMatrix::from_vec(1, 2, vec![30.0, -30.0]);
        let y = DMatrix::from_vec(1, 2, vec![1.0, 0.0]);
        let (loss, grad) = sigmoid_bce(&logits, &y);
        assert!(loss < 1e-6);
        assert!(grad.frobenius_norm() < 1e-6);
    }

    #[test]
    fn bce_known_value_at_zero_logits() {
        // σ(0) = 0.5 → per-element loss = ln 2 regardless of target.
        let logits = DMatrix::zeros(2, 3);
        let y = DMatrix::from_fn(2, 3, |i, j| ((i + j) % 2) as f32);
        let (loss, _) = sigmoid_bce(&logits, &y);
        // Sum over 3 classes, mean over 2 rows: 3·ln2.
        assert!((loss - 3.0 * std::f32::consts::LN_2).abs() < 1e-5);
    }

    #[test]
    fn bce_gradient_matches_finite_difference() {
        let x = DMatrix::from_fn(3, 4, |i, j| (i as f32 - 1.0) * 0.7 + j as f32 * 0.3 - 0.5);
        let y = DMatrix::from_fn(3, 4, |i, j| ((i * 2 + j) % 2) as f32);
        check_grad(|x| sigmoid_bce(x, &y), &x, 1e-3);
    }

    #[test]
    fn bce_stable_for_extreme_logits() {
        let x = DMatrix::from_vec(1, 2, vec![1e4, -1e4]);
        let y = DMatrix::from_vec(1, 2, vec![0.0, 1.0]);
        let (loss, grad) = sigmoid_bce(&x, &y);
        assert!(loss.is_finite());
        assert!(grad.all_finite());
        // Completely wrong confident predictions: loss ≈ 2·1e4 / 1 row.
        assert!(loss > 1e4);
    }

    #[test]
    fn ce_zero_loss_on_perfect_prediction() {
        let logits = DMatrix::from_vec(1, 3, vec![30.0, 0.0, 0.0]);
        let y = DMatrix::from_vec(1, 3, vec![1.0, 0.0, 0.0]);
        let (loss, _) = softmax_ce(&logits, &y);
        assert!(loss < 1e-5);
    }

    #[test]
    fn ce_uniform_logits_give_log_k() {
        let logits = DMatrix::zeros(4, 5);
        let y = DMatrix::from_fn(4, 5, |i, j| if j == i % 5 { 1.0 } else { 0.0 });
        let (loss, _) = softmax_ce(&logits, &y);
        assert!((loss - (5.0f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn ce_gradient_matches_finite_difference() {
        let x = DMatrix::from_fn(3, 4, |i, j| (i as f32 * 0.5 - j as f32 * 0.4) * 0.8);
        let y = DMatrix::from_fn(3, 4, |i, j| if j == (i + 1) % 4 { 1.0 } else { 0.0 });
        check_grad(|x| softmax_ce(x, &y), &x, 1e-3);
    }

    #[test]
    fn ce_gradient_rows_sum_to_zero() {
        // softmax − onehot sums to zero per row.
        let x = DMatrix::from_fn(2, 3, |i, j| (i + j) as f32);
        let y = DMatrix::from_fn(2, 3, |_, j| if j == 0 { 1.0 } else { 0.0 });
        let (_, g) = softmax_ce(&x, &y);
        for i in 0..2 {
            let s: f32 = g.row(i).iter().sum();
            assert!(s.abs() < 1e-6);
        }
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn shape_mismatch_panics() {
        sigmoid_bce(&DMatrix::zeros(2, 2), &DMatrix::zeros(2, 3));
    }
}
