//! The end-to-end L-layer GCN model (Algorithm 1, lines 5–13).
//!
//! A [`GcnModel`] owns the GCN layers, the dense classifier head and the
//! Adam state, and runs one complete training step on *any* graph it is
//! handed — a sampled subgraph during training (the paper's design) or the
//! full graph for inference. Keeping the model graph-agnostic is exactly
//! what makes graph-sampling GCN work: "we first sample a small induced
//! subgraph and then construct a complete GCN on it" (Sec. III-A).

use crate::adam::AdamHyper;
use crate::dense::DenseLayer;
use crate::gcn_layer::{GcnLayer, KernelTimings};
use crate::loss;
use crate::workspace::InferenceWorkspace;
use gsgcn_graph::CsrGraph;
use gsgcn_prop::propagator::FeaturePropagator;
use gsgcn_tensor::{ops, DMatrix};

/// Which loss (and implied output activation) the task uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LossKind {
    /// Multi-label: sigmoid + binary cross-entropy (PPI, Yelp, Amazon).
    SigmoidBce,
    /// Single-label: softmax + cross-entropy (Reddit).
    SoftmaxCe,
}

/// Model architecture + optimisation configuration.
#[derive(Clone, Debug)]
pub struct GcnConfig {
    /// Input feature width `f^{(0)}` (the dataset's attribute size).
    pub in_dim: usize,
    /// Output width of each hidden GCN layer (must be even — it is the
    /// concat of the neighbor and self halves). Length = `L`.
    pub hidden_dims: Vec<usize>,
    /// Number of target classes.
    pub num_classes: usize,
    /// Loss/activation pairing.
    pub loss: LossKind,
    /// Adam hyperparameters.
    pub adam: AdamHyper,
    /// Dropout probability on layer inputs (0 disables).
    pub dropout: f32,
    /// Run GCN layers on the fused aggregate→GEMM pipeline (default).
    /// `false` selects the unfused aggregate-then-GEMM reference path,
    /// kept for equivalence tests and benches.
    pub fused: bool,
}

impl Default for GcnConfig {
    fn default() -> Self {
        GcnConfig {
            in_dim: 0,
            hidden_dims: vec![256, 256],
            num_classes: 2,
            loss: LossKind::SigmoidBce,
            adam: AdamHyper::default(),
            dropout: 0.0,
            fused: true,
        }
    }
}

impl GcnConfig {
    /// Validate dimensions; returns a description of the first problem.
    pub fn validate(&self) -> Result<(), String> {
        if self.in_dim == 0 {
            return Err("in_dim must be > 0".into());
        }
        if self.hidden_dims.is_empty() {
            return Err("at least one GCN layer is required".into());
        }
        if let Some(d) = self.hidden_dims.iter().find(|&&d| d == 0 || d % 2 != 0) {
            return Err(format!(
                "hidden dims must be positive and even (concat halves); got {d}"
            ));
        }
        if self.num_classes == 0 {
            return Err("num_classes must be > 0".into());
        }
        if !(0.0..1.0).contains(&self.dropout) {
            return Err(format!("dropout must be in [0,1); got {}", self.dropout));
        }
        Ok(())
    }
}

/// Result of one training step.
#[derive(Clone, Copy, Debug)]
pub struct StepResult {
    /// Mini-batch loss value.
    pub loss: f32,
    /// Kernel timing split of this step (forward + backward).
    pub timings: KernelTimings,
}

/// The L-layer GCN plus classifier head.
///
/// The model owns the training workspace: per-layer activation buffers,
/// the gradient ping-pong pair, the logits/`dLogits` buffers and the
/// dropout masks all persist across [`GcnModel::train_step`] calls.
/// Sampled-subgraph shapes are bounded by the pool's largest subgraph, so
/// after warm-up every step runs with **zero matrix allocations** (pinned
/// by the allocation-regression test in `tests/alloc_regression.rs`).
pub struct GcnModel {
    layers: Vec<GcnLayer>,
    head: DenseLayer,
    cfg: GcnConfig,
    prop: FeaturePropagator,
    /// Adam step counter (shared by all parameters).
    t: u64,
    /// RNG stream counter for dropout masks.
    dropout_stream: u64,
    /// `acts[0]` = (dropout-masked) input copy; `acts[i+1]` = layer `i`
    /// output. Length `L + 1`.
    acts: Vec<DMatrix>,
    /// Classifier logits.
    logits: DMatrix,
    /// Gradient ping-pong buffers for the backward sweep.
    d_cur: DMatrix,
    d_next: DMatrix,
    /// Per-layer dropout masks (empty when dropout is disabled).
    masks: Vec<Vec<bool>>,
}

impl GcnModel {
    /// Build a model from `cfg` with Xavier-initialised weights.
    ///
    /// # Panics
    /// Panics if the configuration is invalid (see [`GcnConfig::validate`]).
    pub fn new(cfg: GcnConfig, seed: u64) -> Self {
        Self::with_propagator(cfg, seed, FeaturePropagator::default())
    }

    /// Build with an explicit propagation kernel (used by benches to
    /// compare `PropMode`s inside full training).
    pub fn with_propagator(cfg: GcnConfig, seed: u64, prop: FeaturePropagator) -> Self {
        if let Err(e) = cfg.validate() {
            panic!("invalid GcnConfig: {e}");
        }
        let mut layers = Vec::with_capacity(cfg.hidden_dims.len());
        let mut in_dim = cfg.in_dim;
        for (i, &h) in cfg.hidden_dims.iter().enumerate() {
            layers.push(
                GcnLayer::new(in_dim, h / 2, true, seed ^ ((i as u64 + 1) * 0x9E37))
                    .with_fused(cfg.fused),
            );
            in_dim = h;
        }
        let head = DenseLayer::new(in_dim, cfg.num_classes, seed ^ 0xDEAD_4EAD);
        let num_layers = layers.len();
        GcnModel {
            layers,
            head,
            cfg,
            prop,
            t: 0,
            dropout_stream: seed,
            acts: (0..=num_layers).map(|_| DMatrix::zeros(0, 0)).collect(),
            logits: DMatrix::zeros(0, 0),
            d_cur: DMatrix::zeros(0, 0),
            d_next: DMatrix::zeros(0, 0),
            masks: vec![Vec::new(); num_layers],
        }
    }

    /// Number of GCN layers `L`.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Total trainable parameters.
    pub fn num_params(&self) -> usize {
        self.layers.iter().map(|l| l.num_params()).sum::<usize>() + self.head.num_params()
    }

    /// The model configuration.
    pub fn config(&self) -> &GcnConfig {
        &self.cfg
    }

    /// Adam steps taken so far.
    pub fn steps(&self) -> u64 {
        self.t
    }

    /// Read access to the GCN layers (checkpointing).
    pub(crate) fn layers_ref(&self) -> &[GcnLayer] {
        &self.layers
    }

    /// Mutable access to the GCN layers (checkpointing).
    pub(crate) fn layers_mut(&mut self) -> &mut [GcnLayer] {
        &mut self.layers
    }

    /// Read access to the classifier head (checkpointing).
    pub(crate) fn head_ref(&self) -> &DenseLayer {
        &self.head
    }

    /// Mutable access to the classifier head (checkpointing).
    pub(crate) fn head_mut(&mut self) -> &mut DenseLayer {
        &mut self.head
    }

    /// One full training step on graph `g` with features `x` and targets
    /// `y` (rows = vertices of `g`): forward, loss, backward, Adam update.
    ///
    /// Runs entirely on the model's persistent buffers — see the struct
    /// docs; no matrix is allocated once the workspace is warm.
    pub fn train_step(&mut self, g: &CsrGraph, x: &DMatrix, y: &DMatrix) -> StepResult {
        assert_eq!(x.rows(), g.num_vertices(), "feature/vertex mismatch");
        assert_eq!(y.rows(), g.num_vertices(), "label/vertex mismatch");
        let mut timings = KernelTimings::default();
        let num_layers = self.layers.len();
        let hyper = self.cfg.adam;

        // ---- Forward (Alg. 1 lines 6–9) ----
        self.acts[0].copy_from(x);
        for i in 0..num_layers {
            if self.cfg.dropout > 0.0 {
                self.dropout_stream = self.dropout_stream.wrapping_add(0x9E3779B97F4A7C15);
                ops::dropout_inplace_with(
                    &mut self.acts[i],
                    self.cfg.dropout,
                    self.dropout_stream,
                    &mut self.masks[i],
                );
            }
            // Split-borrow: `acts[i]` is the input, `acts[i+1]` the output.
            let (lo, hi) = self.acts.split_at_mut(i + 1);
            let t = self.layers[i].forward_into(g, &lo[i], &mut hi[0], &self.prop);
            timings.add(t);
        }
        self.head
            .forward_into(&self.acts[num_layers], &mut self.logits);

        // ---- Loss (Alg. 1 lines 11–12); d_cur receives dLogits ----
        let loss_val = match self.cfg.loss {
            LossKind::SigmoidBce => loss::sigmoid_bce_into(&self.logits, y, &mut self.d_cur),
            LossKind::SoftmaxCe => loss::softmax_ce_into(&self.logits, y, &mut self.d_cur),
        };

        // ---- Backward + Adam (Alg. 1 line 13) ----
        self.t += 1;
        self.head
            .backward_into(&self.acts[num_layers], &self.d_cur, &mut self.d_next);
        self.head.apply_own_grads(&hyper, self.t);
        std::mem::swap(&mut self.d_cur, &mut self.d_next);
        for i in (0..num_layers).rev() {
            // d_cur = dOut for layer i (consumed in place); d_next = dIn.
            let t = self.layers[i].backward_into(
                g,
                &self.acts[i],
                &self.acts[i + 1],
                &mut self.d_cur,
                &mut self.d_next,
                &self.prop,
            );
            timings.add(t);
            self.layers[i].apply_own_grads(&hyper, self.t);
            std::mem::swap(&mut self.d_cur, &mut self.d_next);
            if self.cfg.dropout > 0.0 {
                ops::dropout_backward_inplace(&mut self.d_cur, &self.masks[i], self.cfg.dropout);
            }
        }

        StepResult {
            loss: loss_val,
            timings,
        }
    }

    /// In-place inference on caller-owned scratch: logits for every
    /// vertex of `g` land in `out` (buffer reused, reshaped as needed).
    ///
    /// The forward pass is `&self` — the model is immutable, so one
    /// `Arc<GcnModel>` can serve many threads, each bringing its own
    /// [`InferenceWorkspace`] (activation ping-pong buffers, lazily
    /// sized). With bounded input shapes a warm call performs **zero
    /// matrix allocations** (pinned by `tests/alloc_regression.rs`).
    /// No dropout is applied (inference semantics).
    pub fn infer_logits_into(
        &self,
        g: &CsrGraph,
        x: &DMatrix,
        ws: &mut InferenceWorkspace,
        out: &mut DMatrix,
    ) {
        self.forward_layers_into(&mut |_| g, x, ws, out);
    }

    /// Inference with a *different graph per layer* over one shared
    /// vertex set — the cone-pruned batched-serving path
    /// (`gsgcn_graph::neighborhood::NeighborhoodBatch::layer_graphs`):
    /// layer `i` aggregates over `layer_graphs[i]`, whose outward rows
    /// are isolated so their never-consumed aggregates cost nothing.
    /// All graphs must share `x`'s row count; panics on a layer-count
    /// mismatch.
    pub fn infer_logits_pruned_into(
        &self,
        layer_graphs: &[CsrGraph],
        x: &DMatrix,
        ws: &mut InferenceWorkspace,
        out: &mut DMatrix,
    ) {
        assert_eq!(
            layer_graphs.len(),
            self.layers.len(),
            "need one pruned graph per GCN layer"
        );
        self.forward_layers_into(&mut |i| &layer_graphs[i], x, ws, out);
    }

    /// Shared `&self` forward: layer `i` runs on `graph_for(i)`.
    fn forward_layers_into<'g>(
        &self,
        graph_for: &mut dyn FnMut(usize) -> &'g CsrGraph,
        x: &DMatrix,
        ws: &mut InferenceWorkspace,
        out: &mut DMatrix,
    ) {
        let last = self.run_gcn_layers(graph_for, self.layers.len(), x, ws);
        self.head.forward_into(last, out);
    }

    /// Run the first `count` GCN layers (layer `i` on `graph_for(i)`)
    /// and return the final activation, which lives in one of the
    /// workspace's ping-pong buffers.
    fn run_gcn_layers<'g, 'w>(
        &self,
        graph_for: &mut dyn FnMut(usize) -> &'g CsrGraph,
        count: usize,
        x: &DMatrix,
        ws: &'w mut InferenceWorkspace,
    ) -> &'w DMatrix {
        assert!(
            (1..=self.layers.len()).contains(&count),
            "layer count {count} outside 1..={}",
            self.layers.len()
        );
        assert_eq!(
            x.rows(),
            graph_for(0).num_vertices(),
            "feature/vertex mismatch"
        );
        let InferenceWorkspace { ping, pong, agg } = ws;
        // Layer 0 reads `x` directly; afterwards activations ping-pong
        // between the two workspace buffers (layer i reads one, writes
        // the other), so depth costs no extra buffers.
        let mut src_is_ping = false;
        for (i, layer) in self.layers.iter().take(count).enumerate() {
            let (src, dst): (&DMatrix, &mut DMatrix) = if i == 0 {
                (x, &mut *ping)
            } else if src_is_ping {
                (&*ping, &mut *pong)
            } else {
                (&*pong, &mut *ping)
            };
            let g = graph_for(i);
            assert_eq!(g.num_vertices(), x.rows(), "layer graph vertex mismatch");
            layer.infer_into(g, src, dst, agg, &self.prop);
            src_is_ping = i % 2 == 0;
        }
        if src_is_ping {
            ping
        } else {
            pong
        }
    }

    /// Run the first `layer_graphs.len()` GCN layers of a cone-pruned
    /// forward and return the resulting activation — the serving-side
    /// entry point that harvests `acts^{L-1}` (the last GCN layer's
    /// *input*) for the activation cache. With the cone pruning of
    /// [`GcnModel::infer_logits_pruned_into`], the returned rows are
    /// full-graph-exact at every vertex within distance
    /// `L - layer_graphs.len()` of the batch roots.
    ///
    /// Pass fewer graphs than layers to stop early (e.g. `L-1` graphs
    /// for the final-hop split); panics if `layer_graphs` is empty or
    /// longer than the layer stack.
    pub fn infer_hidden_pruned_into<'w>(
        &self,
        layer_graphs: &[CsrGraph],
        x: &DMatrix,
        ws: &'w mut InferenceWorkspace,
    ) -> &'w DMatrix {
        self.run_gcn_layers(&mut |i| &layer_graphs[i], layer_graphs.len(), x, ws)
    }

    /// The serving **final hop**: one fused last-GCN-layer pass over a
    /// frontier-ball graph plus a root-row-limited classifier head and
    /// the output activation.
    ///
    /// `hidden` holds `acts^{L-1}` for every vertex of `g`
    /// (`gsgcn_graph::neighborhood::FrontierBall` layout: the roots are
    /// rows `0..num_roots`, frontier rows follow and are isolated in
    /// `g`). Writes `num_roots` probability rows into `out`. Because the
    /// fused layer and the packed GEMM accumulate each row
    /// independently, the root rows are bit-identical to a full forward
    /// whenever `hidden`'s rows are.
    pub fn infer_probs_final_hop_into(
        &self,
        g: &CsrGraph,
        hidden: &DMatrix,
        num_roots: usize,
        ws: &mut InferenceWorkspace,
        out: &mut DMatrix,
    ) {
        assert_eq!(hidden.rows(), g.num_vertices(), "hidden/vertex mismatch");
        assert!(num_roots <= hidden.rows(), "more roots than ball rows");
        let last = self.layers.last().expect("validated: ≥ 1 layer");
        let InferenceWorkspace { ping, pong: _, agg } = ws;
        last.infer_into(g, hidden, ping, agg, &self.prop);
        self.head.forward_range_into(ping, 0, num_roots, out);
        self.apply_output_activation(out);
    }

    /// Input width of the last GCN layer (= `acts^{L-1}` row width): the
    /// row size an activation cache stores. Equals `in_dim` for a
    /// single-layer model.
    pub fn hidden_width(&self) -> usize {
        match self.layers.len() {
            1 => self.cfg.in_dim,
            l => self.cfg.hidden_dims[l - 2],
        }
    }

    /// In-place inference with the task's output activation applied
    /// (sigmoid probabilities or softmax distribution); see
    /// [`GcnModel::infer_logits_into`].
    pub fn infer_probs_into(
        &self,
        g: &CsrGraph,
        x: &DMatrix,
        ws: &mut InferenceWorkspace,
        out: &mut DMatrix,
    ) {
        self.infer_logits_into(g, x, ws, out);
        self.apply_output_activation(out);
    }

    /// Cone-pruned inference with the task's output activation applied;
    /// see [`GcnModel::infer_logits_pruned_into`]. Only rows within
    /// `L-1-i` hops of the batch roots carry full-graph-exact values
    /// after layer `i`; read the root rows.
    pub fn infer_probs_pruned_into(
        &self,
        layer_graphs: &[CsrGraph],
        x: &DMatrix,
        ws: &mut InferenceWorkspace,
        out: &mut DMatrix,
    ) {
        self.infer_logits_pruned_into(layer_graphs, x, ws, out);
        self.apply_output_activation(out);
    }

    fn apply_output_activation(&self, out: &mut DMatrix) {
        match self.cfg.loss {
            LossKind::SigmoidBce => ops::sigmoid_inplace(out),
            LossKind::SoftmaxCe => ops::softmax_rows_inplace(out),
        }
    }

    /// Inference: logits for every vertex of `g` (no dropout, no
    /// caching). Allocating wrapper around
    /// [`GcnModel::infer_logits_into`].
    pub fn infer_logits(&self, g: &CsrGraph, x: &DMatrix) -> DMatrix {
        let mut out = DMatrix::zeros(0, 0);
        self.infer_logits_into(g, x, &mut InferenceWorkspace::new(), &mut out);
        out
    }

    /// Inference with the task's output activation applied (sigmoid
    /// probabilities or softmax distribution). Allocating wrapper around
    /// [`GcnModel::infer_probs_into`].
    pub fn infer_probs(&self, g: &CsrGraph, x: &DMatrix) -> DMatrix {
        let mut out = DMatrix::zeros(0, 0);
        self.infer_probs_into(g, x, &mut InferenceWorkspace::new(), &mut out);
        out
    }

    /// Evaluate the loss on `(g, x, y)` without updating weights.
    pub fn eval_loss(&self, g: &CsrGraph, x: &DMatrix, y: &DMatrix) -> f32 {
        let logits = self.infer_logits(g, x);
        match self.cfg.loss {
            LossKind::SigmoidBce => loss::sigmoid_bce(&logits, y).0,
            LossKind::SoftmaxCe => loss::softmax_ce(&logits, y).0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsgcn_graph::GraphBuilder;

    fn two_cluster_graph() -> (CsrGraph, DMatrix, DMatrix) {
        // Two 4-cliques joined by one edge; features correlate with the
        // cluster, labels = cluster id (2 classes, one-hot).
        let mut edges = Vec::new();
        for base in [0u32, 4] {
            for i in 0..4 {
                for j in (i + 1)..4 {
                    edges.push((base + i, base + j));
                }
            }
        }
        edges.push((0, 4));
        let g = GraphBuilder::new(8).add_edges(edges).build();
        let x = DMatrix::from_fn(8, 4, |i, j| {
            let cluster = (i / 4) as f32;
            (cluster * 2.0 - 1.0) * 0.5 + ((i * 4 + j) % 3) as f32 * 0.05
        });
        let y = DMatrix::from_fn(8, 2, |i, j| if j == i / 4 { 1.0 } else { 0.0 });
        (g, x, y)
    }

    fn small_cfg(loss: LossKind) -> GcnConfig {
        GcnConfig {
            in_dim: 4,
            hidden_dims: vec![8, 8],
            num_classes: 2,
            loss,
            adam: AdamHyper {
                lr: 0.02,
                ..AdamHyper::default()
            },
            dropout: 0.0,
            fused: true,
        }
    }

    #[test]
    fn config_validation() {
        assert!(small_cfg(LossKind::SigmoidBce).validate().is_ok());
        let mut c = small_cfg(LossKind::SigmoidBce);
        c.hidden_dims = vec![7]; // odd
        assert!(c.validate().is_err());
        let mut c = small_cfg(LossKind::SigmoidBce);
        c.in_dim = 0;
        assert!(c.validate().is_err());
        let mut c = small_cfg(LossKind::SigmoidBce);
        c.hidden_dims.clear();
        assert!(c.validate().is_err());
        let mut c = small_cfg(LossKind::SigmoidBce);
        c.dropout = 1.0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn shapes_and_param_count() {
        let m = GcnModel::new(small_cfg(LossKind::SigmoidBce), 1);
        assert_eq!(m.num_layers(), 2);
        // Layer 1: 2 × (4×4); layer 2: 2 × (8×4); head: 8×2 + 2.
        assert_eq!(m.num_params(), 32 + 64 + 18);
    }

    #[test]
    fn training_fits_two_clusters_bce() {
        let (g, x, y) = two_cluster_graph();
        let mut m = GcnModel::new(small_cfg(LossKind::SigmoidBce), 7);
        let before = m.eval_loss(&g, &x, &y);
        for _ in 0..150 {
            m.train_step(&g, &x, &y);
        }
        let after = m.eval_loss(&g, &x, &y);
        assert!(after < before * 0.5, "loss {before} → {after}");
        // Predictions should match cluster labels.
        let probs = m.infer_probs(&g, &x);
        for v in 0..8 {
            let want = v / 4;
            assert!(
                probs.get(v, want) > probs.get(v, 1 - want),
                "vertex {v}: probs {:?}",
                probs.row(v)
            );
        }
    }

    #[test]
    fn training_fits_two_clusters_softmax() {
        let (g, x, y) = two_cluster_graph();
        let mut m = GcnModel::new(small_cfg(LossKind::SoftmaxCe), 8);
        for _ in 0..150 {
            m.train_step(&g, &x, &y);
        }
        let probs = m.infer_probs(&g, &x);
        for v in 0..8 {
            let want = v / 4;
            assert!(probs.get(v, want) > 0.5, "vertex {v}");
        }
    }

    #[test]
    fn dropout_training_still_learns() {
        let (g, x, y) = two_cluster_graph();
        let mut cfg = small_cfg(LossKind::SigmoidBce);
        cfg.dropout = 0.2;
        let mut m = GcnModel::new(cfg, 9);
        let before = m.eval_loss(&g, &x, &y);
        for _ in 0..200 {
            m.train_step(&g, &x, &y);
        }
        let after = m.eval_loss(&g, &x, &y);
        assert!(after < before, "dropout run: {before} → {after}");
    }

    #[test]
    fn timings_are_recorded() {
        let (g, x, y) = two_cluster_graph();
        let mut m = GcnModel::new(small_cfg(LossKind::SigmoidBce), 10);
        let r = m.train_step(&g, &x, &y);
        assert!(r.timings.feature_prop_secs > 0.0);
        assert!(r.timings.weight_app_secs > 0.0);
        assert!(r.loss.is_finite());
    }

    #[test]
    fn deterministic_given_seed() {
        let (g, x, y) = two_cluster_graph();
        let run = |seed: u64| {
            let mut m = GcnModel::new(small_cfg(LossKind::SigmoidBce), seed);
            let mut losses = Vec::new();
            for _ in 0..5 {
                losses.push(m.train_step(&g, &x, &y).loss);
            }
            losses
        };
        assert_eq!(run(3), run(3));
        assert_ne!(run(3), run(4));
    }

    #[test]
    fn model_transfers_across_graphs() {
        // Train on one graph, infer on a different-sized graph — the
        // property the graph-sampling design relies on.
        let (g, x, y) = two_cluster_graph();
        let mut m = GcnModel::new(small_cfg(LossKind::SigmoidBce), 11);
        for _ in 0..20 {
            m.train_step(&g, &x, &y);
        }
        let g2 = GraphBuilder::new(3).add_edges([(0, 1), (1, 2)]).build();
        let x2 = DMatrix::from_fn(3, 4, |i, j| (i + j) as f32 * 0.1);
        let probs = m.infer_probs(&g2, &x2);
        assert_eq!(probs.shape(), (3, 2));
        assert!(probs.all_finite());
    }

    /// The workspace ping-pong forward must agree exactly with the
    /// layer-by-layer allocating path at every depth (odd depths end on
    /// the other buffer of the pair), and a reused workspace must not
    /// leak state between calls on different graphs.
    #[test]
    fn workspace_inference_matches_allocating_path() {
        let (g, x, _) = two_cluster_graph();
        for depth in 1..=3 {
            let mut cfg = small_cfg(LossKind::SigmoidBce);
            cfg.hidden_dims = vec![8; depth];
            let m = GcnModel::new(cfg, 21 + depth as u64);
            let reference = m.infer_probs(&g, &x);
            let mut ws = crate::workspace::InferenceWorkspace::new();
            let mut probs = DMatrix::zeros(0, 0);
            m.infer_probs_into(&g, &x, &mut ws, &mut probs);
            assert_eq!(
                probs.data(),
                reference.data(),
                "depth {depth}: workspace forward diverged"
            );
            // Second call through the warm workspace: bit-identical.
            let mut probs2 = DMatrix::zeros(0, 0);
            m.infer_probs_into(&g, &x, &mut ws, &mut probs2);
            assert_eq!(
                probs.data(),
                probs2.data(),
                "depth {depth}: warm call diverged"
            );
        }
    }

    /// Splitting the forward as "first L-1 layers, then the final hop
    /// over a frontier ball" must reproduce the monolithic forward
    /// bit-for-bit at the root rows — the property the serving
    /// activation cache rests on.
    #[test]
    fn final_hop_split_matches_monolithic_forward() {
        let (g, x, _) = two_cluster_graph();
        for depth in 2..=3 {
            let mut cfg = small_cfg(LossKind::SoftmaxCe);
            cfg.hidden_dims = vec![8; depth];
            let m = GcnModel::new(cfg, 31 + depth as u64);
            let reference = m.infer_probs(&g, &x);
            let mut ws = InferenceWorkspace::new();
            // Full-graph hidden state (every row exact).
            let graphs = vec![g.clone(); depth - 1];
            let mut hidden_all = DMatrix::zeros(0, 0);
            hidden_all.copy_from(m.infer_hidden_pruned_into(&graphs, &x, &mut ws));
            assert_eq!(hidden_all.cols(), m.hidden_width());
            for roots in [vec![0u32], vec![5, 2, 5], (0..8).collect::<Vec<u32>>()] {
                let fb = gsgcn_graph::one_hop_frontier(&g, &roots);
                let mut hidden = DMatrix::zeros(0, 0);
                hidden_all.gather_rows_into(&fb.origin, &mut hidden);
                let mut probs = DMatrix::zeros(0, 0);
                m.infer_probs_final_hop_into(&fb.graph, &hidden, fb.num_roots, &mut ws, &mut probs);
                assert_eq!(probs.rows(), fb.num_roots);
                for (&req, &local) in roots.iter().zip(&fb.root_locals) {
                    assert_eq!(
                        probs.row(local as usize),
                        reference.row(req as usize),
                        "depth {depth}: root {req} diverged on the final hop"
                    );
                }
            }
        }
    }

    /// One immutable model shared across threads, each with its own
    /// workspace — the serving access pattern `infer_logits_into`'s
    /// `&self` signature exists for.
    #[test]
    fn shared_model_serves_concurrent_workspaces() {
        let (g, x, y) = two_cluster_graph();
        let mut m = GcnModel::new(small_cfg(LossKind::SoftmaxCe), 13);
        for _ in 0..10 {
            m.train_step(&g, &x, &y);
        }
        let reference = m.infer_probs(&g, &x);
        let model = std::sync::Arc::new(m);
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let model = std::sync::Arc::clone(&model);
                let g = g.clone();
                let x = x.clone();
                std::thread::spawn(move || {
                    let mut ws = crate::workspace::InferenceWorkspace::new();
                    let mut out = DMatrix::zeros(0, 0);
                    model.infer_probs_into(&g, &x, &mut ws, &mut out);
                    out
                })
            })
            .collect();
        for h in handles {
            let out = h.join().unwrap();
            assert_eq!(out.data(), reference.data());
        }
    }

    #[test]
    #[should_panic(expected = "feature/vertex mismatch")]
    fn wrong_feature_rows_panics() {
        let (g, _, y) = two_cluster_graph();
        let mut m = GcnModel::new(small_cfg(LossKind::SigmoidBce), 12);
        let bad_x = DMatrix::zeros(3, 4);
        m.train_step(&g, &bad_x, &y);
    }
}
