//! Caller-owned inference workspace — the inference twin of the model's
//! training workspace.
//!
//! [`crate::model::GcnModel::train_step`] owns its activation buffers
//! because training mutates the model anyway. Inference must not: one
//! immutable model behind an `Arc` serves many threads (the
//! `gsgcn-serve` batch engine gives each worker thread its own
//! workspace), so the forward pass takes the model by `&self` and the
//! scratch state lives *here*, owned by the caller.
//!
//! The workspace holds the activation **ping-pong pair** — layer `i`
//! reads one buffer and writes the other, so an L-layer forward needs
//! two buffers regardless of depth — plus the unfused path's aggregate
//! scratch. Buffers are sized lazily by the first forward and reused
//! afterwards; as long as input shapes stay bounded (batched inference
//! caps the subgraph size by construction), every warm call performs
//! **zero matrix allocations** (pinned by `tests/alloc_regression.rs`).

use gsgcn_tensor::DMatrix;

/// Reusable scratch for [`crate::model::GcnModel::infer_logits_into`] /
/// [`crate::model::GcnModel::infer_probs_into`].
///
/// Cheap to construct (empty buffers); safe to reuse across models and
/// graphs — every forward reshapes as needed. Not shareable between
/// concurrent forwards: give each thread its own.
#[derive(Clone, Debug)]
pub struct InferenceWorkspace {
    /// Activation ping-pong pair (layer outputs alternate between them).
    pub(crate) ping: DMatrix,
    pub(crate) pong: DMatrix,
    /// Unfused path only: the materialised aggregate `Â·H` of the
    /// current layer (the fused path streams it through pack scratch).
    pub(crate) agg: DMatrix,
}

impl Default for InferenceWorkspace {
    fn default() -> Self {
        Self::new()
    }
}

impl InferenceWorkspace {
    /// A fresh (empty) workspace; buffers grow on first use.
    pub fn new() -> Self {
        InferenceWorkspace {
            ping: DMatrix::zeros(0, 0),
            pong: DMatrix::zeros(0, 0),
            agg: DMatrix::zeros(0, 0),
        }
    }

    /// Bytes currently held across the scratch buffers (capacity probe
    /// for dashboards/tests).
    pub fn scratch_bytes(&self) -> usize {
        (self.ping.data().len() + self.pong.data().len() + self.agg.data().len())
            * std::mem::size_of::<f32>()
    }
}
