//! One GCN layer (Sec. II-A / Alg. 1 lines 7–9).
//!
//! Forward, for input features `H ∈ R^{n×f_in}` on graph `G`:
//!
//! ```text
//! H_neigh = (Â·H) · W_neigh          (feature aggregation, then weights)
//! H_self  =  H    · W_self
//! H_out   = σ( H_neigh ‖ H_self )    (concat + ReLU)
//! ```
//!
//! where `Â = D⁻¹A` is the mean-aggregation operator supplied by
//! `gsgcn-prop`. Output width is `2·half_dim` (the concatenation).
//!
//! Backward (hand-derived, cached activations):
//!
//! ```text
//! dPre       = dOut ⊙ 1[H_out > 0]          (ReLU)
//! dH_neigh, dH_self = split(dPre)
//! dW_neigh   = (Â·H)ᵀ · dH_neigh
//! dW_self    = Hᵀ · dH_self
//! dH         = Âᵀ·(dH_neigh · W_neighᵀ) + dH_self · W_selfᵀ
//! ```
//!
//! In the default **fused** mode both passes avoid materialising any
//! aggregated matrix: forward fuses `Â·H` into the `·W_neigh` GEMM, and
//! backward reassociates `dW_neigh = Hᵀ·(Âᵀ·dH_neigh)` and
//! `Âᵀ·(dH_neigh·W_neighᵀ) = (Âᵀ·dH_neigh)·W_neighᵀ` around the narrow
//! intermediate `Z = Âᵀ·dH_neigh` (valid because `Â` acts on a symmetric
//! adjacency), which the fused `Z·W_neighᵀ` GEMM spills as a side effect
//! of panel packing. See the struct docs.
//!
//! The layer reports the wall-clock split between sparse feature
//! propagation and dense weight application, feeding the Fig. 3
//! execution-time breakdown.

use crate::adam::{AdamHyper, AdamParam};
use gsgcn_graph::CsrGraph;
use gsgcn_prop::propagator::FeaturePropagator;
use gsgcn_tensor::{bf16, gemm, init, ops, precision, scratch, Bf16MatRef, DMatrix, Precision};
use std::time::Instant;

/// Wall-clock seconds spent in the two kernel classes of one pass.
///
/// **Fused-mode caveat:** in the fused pipeline the sparse aggregation
/// runs *inside* the neighbor-half GEMM's pack step and the two cannot be
/// timed separately, so the whole fused call — pack (aggregation) *and*
/// multiply — is booked under `feature_prop_secs`, while only the
/// self-half and weight-gradient GEMMs count as `weight_app_secs`. The
/// unfused path books the dense neighbor-half multiply under
/// `weight_app_secs` instead, so breakdowns are **not comparable across
/// the fused toggle**; compare totals, or use the unfused mode for the
/// Fig. 3-style split.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct KernelTimings {
    /// Sparse feature propagation (`Â·H`, `Âᵀ·dY`), including the fused
    /// GEMMs it is inseparable from (see the struct docs).
    pub feature_prop_secs: f64,
    /// Dense weight application (all GEMMs outside the fused calls).
    pub weight_app_secs: f64,
}

impl KernelTimings {
    /// Accumulate another measurement.
    pub fn add(&mut self, other: KernelTimings) {
        self.feature_prop_secs += other.feature_prop_secs;
        self.weight_app_secs += other.weight_app_secs;
    }
}

/// Cached forward state needed by the standalone [`GcnLayer::backward`]
/// API (the model's in-place path passes activations explicitly instead).
#[derive(Clone, Debug)]
struct ForwardCache {
    /// Layer input `H`.
    input: DMatrix,
    /// Post-activation output (ReLU mask source).
    output: DMatrix,
}

/// One graph-convolution layer with `W_self` and `W_neigh`.
///
/// The layer owns persistent work buffers (`aggregated`/`z_neigh`,
/// `d_agg`, weight gradients): the in-place `forward_into` /
/// `backward_into` pair reuses them across iterations, so a warm training
/// loop allocates nothing here.
///
/// # Fused vs unfused hot path
///
/// By default (`fused = true`) the layer runs the fused
/// aggregate→GEMM pipeline (`gsgcn_prop::fused`): forward computes
/// `(Â·H)·W_neigh` in one cache pass without materialising `Â·H`, and
/// backward reassociates `dW_neigh = (Â·H)ᵀ·dY = Hᵀ·(Âᵀ·dY)` so only the
/// *narrow* `Z = Âᵀ·dY_neigh` (`n × half`) is ever stored — the wide
/// `n × f_in` aggregate cache of the unfused path disappears, and `Z`
/// itself is spilled as a side effect of the fused `Z·W_neighᵀ` GEMM.
/// The unfused path ([`GcnLayer::with_fused`]`(false)`) keeps the
/// original aggregate-then-GEMM composition as the reference
/// implementation for equivalence proptests and benches.
#[derive(Clone, Debug)]
pub struct GcnLayer {
    pub w_neigh: AdamParam,
    pub w_self: AdamParam,
    /// Apply ReLU after concat (disabled on the last embedding layer if
    /// raw embeddings are wanted).
    pub activation: bool,
    /// Use the fused aggregate→GEMM pipeline (default).
    fused: bool,
    /// Unfused path only: `Â·H` of the last forward (consumed by backward
    /// for `dW_neigh`).
    aggregated: DMatrix,
    /// Fused path only: `Z = Âᵀ·dH_neigh` of the current backward,
    /// spilled by the fused input-gradient GEMM and consumed by the
    /// weight-gradient GEMM.
    z_neigh: DMatrix,
    /// True between a `forward_into` and the `backward_into` that
    /// consumes its forward state — guards against mis-paired calls.
    fwd_pending: bool,
    /// Scratch for `dH_neigh·W_neighᵀ` in the unfused backward.
    d_agg: DMatrix,
    /// Persistent weight-gradient buffers (see [`GcnLayer::own_grads`]).
    grads: GcnLayerGrads,
    cache: Option<ForwardCache>,
}

/// Gradients of one GCN layer.
#[derive(Clone, Debug)]
pub struct GcnLayerGrads {
    pub d_w_neigh: DMatrix,
    pub d_w_self: DMatrix,
}

impl GcnLayer {
    /// A layer mapping `in_dim → 2·half_dim` (concat of the two halves).
    pub fn new(in_dim: usize, half_dim: usize, activation: bool, seed: u64) -> Self {
        GcnLayer {
            w_neigh: AdamParam::new(init::xavier_uniform(in_dim, half_dim, seed)),
            w_self: AdamParam::new(init::xavier_uniform(in_dim, half_dim, seed ^ 0x5EED)),
            activation,
            fused: true,
            aggregated: DMatrix::zeros(0, 0),
            z_neigh: DMatrix::zeros(0, 0),
            fwd_pending: false,
            d_agg: DMatrix::zeros(0, 0),
            grads: GcnLayerGrads {
                d_w_neigh: DMatrix::zeros(0, 0),
                d_w_self: DMatrix::zeros(0, 0),
            },
            cache: None,
        }
    }

    /// Select the fused (default) or unfused reference hot path.
    pub fn with_fused(mut self, fused: bool) -> Self {
        self.fused = fused;
        self
    }

    /// Whether this layer runs the fused aggregate→GEMM pipeline.
    pub fn fused(&self) -> bool {
        self.fused
    }

    pub fn in_dim(&self) -> usize {
        self.w_neigh.value.rows()
    }

    /// Output width (`2·half_dim`).
    pub fn out_dim(&self) -> usize {
        self.w_neigh.value.cols() * 2
    }

    /// Total parameter count.
    pub fn num_params(&self) -> usize {
        2 * self.w_neigh.value.rows() * self.w_neigh.value.cols()
    }

    /// Weight application shared by training forward and inference:
    /// `out = σ?( [Â·H · W_neigh ‖ H · W_self] )`, writing each GEMM
    /// straight into its column half of `out` through strided views — the
    /// concat never exists as a copy. `out` must be pre-shaped
    /// `h.rows() × 2·half`.
    fn apply_weights(&self, aggregated: &DMatrix, h: &DMatrix, out: &mut DMatrix) {
        let half = self.w_neigh.value.cols();
        debug_assert_eq!(out.shape(), (h.rows(), 2 * half));
        gemm::gemm_nn_v(
            1.0,
            aggregated.view(),
            self.w_neigh.value.view(),
            0.0,
            out.view_cols_mut(0, half),
        );
        gemm::gemm_nn_v(
            1.0,
            h.view(),
            self.w_self.value.view(),
            0.0,
            out.view_cols_mut(half, 2 * half),
        );
        if self.activation {
            ops::relu_inplace(out);
        }
    }

    /// The fused forward computation shared by training
    /// ([`GcnLayer::forward_into`]) and inference ([`GcnLayer::infer`]):
    /// `out = σ?( [(Â·H)·W_neigh ‖ H·W_self] )` with the neighbor half
    /// fused (aggregation inside the GEMM pack). Returns the timing
    /// split; see [`KernelTimings`] for what each bucket means in fused
    /// mode. `out` must be pre-shaped `h.rows() × 2·half`.
    fn apply_fused(
        &self,
        g: &CsrGraph,
        h: &DMatrix,
        out: &mut DMatrix,
        prop: &FeaturePropagator,
    ) -> KernelTimings {
        let mut t = KernelTimings::default();
        let half = self.w_neigh.value.cols();
        debug_assert_eq!(out.shape(), (h.rows(), 2 * half));

        if precision::current() == Precision::Bf16 {
            return self.apply_fused_bf16(g, h, out, prop, half);
        }

        let t0 = Instant::now();
        prop.forward_gemm_into(
            g,
            h,
            self.w_neigh.value.view(),
            0.0,
            out.view_cols_mut(0, half),
        );
        t.feature_prop_secs += t0.elapsed().as_secs_f64();

        let t0 = Instant::now();
        gemm::gemm_nn_v(
            1.0,
            h.view(),
            self.w_self.value.view(),
            0.0,
            out.view_cols_mut(half, 2 * half),
        );
        if self.activation {
            ops::relu_inplace(out);
        }
        t.weight_app_secs += t0.elapsed().as_secs_f64();
        t
    }

    /// [`GcnLayer::apply_fused`] under [`Precision::Bf16`]: the layer
    /// input is quantised **once** into a thread-local bf16 shadow
    /// (`scratch` u16 pool — no API churn, warm calls allocate nothing),
    /// and both GEMMs read the half-width rows. The aggregation re-reads
    /// each feature row `deg(u)` times, so the one-off quantise pass is
    /// repaid immediately in row bandwidth; accumulation stays f32
    /// throughout. Training's backward pass keeps reading the caller's
    /// original f32 activations (the standard mixed-precision gradient
    /// inconsistency, bounded by the storage rounding).
    fn apply_fused_bf16(
        &self,
        g: &CsrGraph,
        h: &DMatrix,
        out: &mut DMatrix,
        prop: &FeaturePropagator,
        half: usize,
    ) -> KernelTimings {
        let mut t = KernelTimings::default();
        scratch::with_buf_u16(h.rows() * h.cols(), |bits| {
            let qh = bf16::from_bits_slice_mut(bits);
            bf16::quantize_slice(h.data(), qh);
            let qh = Bf16MatRef::new(&*qh, h.rows(), h.cols());

            let t0 = Instant::now();
            prop.forward_gemm_bf16_into(
                g,
                qh,
                self.w_neigh.value.view(),
                0.0,
                out.view_cols_mut(0, half),
            );
            t.feature_prop_secs += t0.elapsed().as_secs_f64();

            let t0 = Instant::now();
            gemm::gemm_bf16_nn_v(
                1.0,
                qh,
                self.w_self.value.view(),
                0.0,
                out.view_cols_mut(half, 2 * half),
            );
            if self.activation {
                ops::relu_inplace(out);
            }
            t.weight_app_secs += t0.elapsed().as_secs_f64();
        });
        t
    }

    /// In-place forward: write the activations into `out` (buffer reused,
    /// reshaped as needed). Fused mode computes the neighbor half
    /// `(Â·H)·W_neigh` in one pass; unfused mode caches the aggregated
    /// input `Â·H` in a persistent layer buffer for the backward pass.
    pub fn forward_into(
        &mut self,
        g: &CsrGraph,
        h: &DMatrix,
        out: &mut DMatrix,
        prop: &FeaturePropagator,
    ) -> KernelTimings {
        let mut t = KernelTimings::default();
        let half = self.w_neigh.value.cols();
        out.ensure_shape(h.rows(), 2 * half);

        if self.fused {
            let t2 = self.apply_fused(g, h, out, prop);
            self.fwd_pending = true;
            t.add(t2);
            return t;
        }

        let t0 = Instant::now();
        prop.forward_into(g, h, &mut self.aggregated); // Â·H
        t.feature_prop_secs += t0.elapsed().as_secs_f64();

        let t0 = Instant::now();
        self.apply_weights(&self.aggregated, h, out);
        self.fwd_pending = true;
        t.weight_app_secs += t0.elapsed().as_secs_f64();
        t
    }

    /// Forward pass with caching for backward (standalone API; the model
    /// uses [`GcnLayer::forward_into`] + [`GcnLayer::backward_into`] with
    /// explicit activations instead). Returns the activations and the
    /// kernel timing split.
    pub fn forward(
        &mut self,
        g: &CsrGraph,
        h: &DMatrix,
        prop: &FeaturePropagator,
    ) -> (DMatrix, KernelTimings) {
        let mut out = DMatrix::zeros(0, 0);
        let t = self.forward_into(g, h, &mut out, prop);
        self.cache = Some(ForwardCache {
            input: h.clone(),
            output: out.clone(),
        });
        (out, t)
    }

    /// Inference-only in-place forward (`&self`, no caching, no forward
    /// state): writes the activations into `out` (buffer reused, reshaped
    /// as needed). The unfused path materialises `Â·H` into the
    /// caller-owned `agg` scratch; the fused path streams the aggregate
    /// through the GEMM pack scratch and leaves `agg` untouched. This is
    /// the per-layer step of the model's workspace-driven inference
    /// ([`crate::workspace::InferenceWorkspace`]) — warm calls allocate
    /// nothing.
    pub fn infer_into(
        &self,
        g: &CsrGraph,
        h: &DMatrix,
        out: &mut DMatrix,
        agg: &mut DMatrix,
        prop: &FeaturePropagator,
    ) {
        out.ensure_shape(h.rows(), 2 * self.w_neigh.value.cols());
        if self.fused {
            self.apply_fused(g, h, out, prop);
        } else {
            prop.forward_into(g, h, agg);
            self.apply_weights(agg, h, out);
        }
    }

    /// Inference-only forward (`&self`, no caching). Allocating wrapper
    /// around [`GcnLayer::infer_into`].
    pub fn infer(&self, g: &CsrGraph, h: &DMatrix, prop: &FeaturePropagator) -> DMatrix {
        let mut out = DMatrix::zeros(0, 0);
        let mut agg = DMatrix::zeros(0, 0);
        self.infer_into(g, h, &mut out, &mut agg, prop);
        out
    }

    /// In-place backward. `input`/`output` are this layer's forward
    /// activations (owned by the caller), `d_out` is the gradient w.r.t.
    /// `output` and is consumed in place (the ReLU mask is applied to it),
    /// and `d_in` receives the gradient w.r.t. `input` (buffer reused).
    /// Weight gradients land in the layer's persistent buffers — apply
    /// them with [`GcnLayer::apply_own_grads`] or read them via
    /// [`GcnLayer::own_grads`].
    ///
    /// Everything runs on reused buffers and strided views: the column
    /// split of `d_out` and the transposed operands are views the packed
    /// GEMM absorbs, so a warm iteration performs zero allocations.
    pub fn backward_into(
        &mut self,
        g: &CsrGraph,
        input: &DMatrix,
        output: &DMatrix,
        d_out: &mut DMatrix,
        d_in: &mut DMatrix,
        prop: &FeaturePropagator,
    ) -> KernelTimings {
        assert!(
            self.fwd_pending,
            "backward_into called before forward_into (or called twice)"
        );
        if !self.fused {
            assert_eq!(
                self.aggregated.shape(),
                (input.rows(), self.w_neigh.value.rows()),
                "activations do not match the cached forward state"
            );
        }
        self.fwd_pending = false;
        let mut t = KernelTimings::default();
        if self.activation {
            ops::relu_backward_inplace(d_out, output);
        }
        let half = self.w_neigh.value.cols();
        let in_dim = self.w_neigh.value.rows();
        let d_neigh = d_out.view_cols(0, half);
        let d_self = d_out.view_cols(half, 2 * half);

        if self.fused {
            // Reassociated backward: with Z = Âᵀ·dH_neigh,
            //   d_in     = dH_self·W_selfᵀ + Z·W_neighᵀ
            //   dW_neigh = (Â·H)ᵀ·dH_neigh = Hᵀ·Z
            // so no forward-side aggregate cache is needed, and the only
            // sparse pass runs at width `half` instead of `in_dim`.
            let t0 = Instant::now();
            d_in.ensure_shape(input.rows(), in_dim);
            gemm::gemm_nt_v(1.0, d_self, self.w_self.value.view(), 0.0, d_in.view_mut());
            t.weight_app_secs += t0.elapsed().as_secs_f64();

            // Fused: d_in += Z·W_neighᵀ with Z spilled on the way through.
            let t0 = Instant::now();
            prop.backward_gemm_into(
                g,
                d_neigh,
                self.w_neigh.value.view(),
                &mut self.z_neigh,
                d_in.view_mut(),
            );
            t.feature_prop_secs += t0.elapsed().as_secs_f64();

            let t0 = Instant::now();
            self.grads.d_w_neigh.ensure_shape(in_dim, half);
            gemm::gemm_tn_v(
                1.0,
                input.view(),
                self.z_neigh.view(),
                0.0,
                self.grads.d_w_neigh.view_mut(),
            );
            self.grads.d_w_self.ensure_shape(in_dim, half);
            gemm::gemm_tn_v(
                1.0,
                input.view(),
                d_self,
                0.0,
                self.grads.d_w_self.view_mut(),
            );
            t.weight_app_secs += t0.elapsed().as_secs_f64();
            return t;
        }

        let t0 = Instant::now();
        self.grads.d_w_neigh.ensure_shape(in_dim, half);
        gemm::gemm_tn_v(
            1.0,
            self.aggregated.view(),
            d_neigh,
            0.0,
            self.grads.d_w_neigh.view_mut(),
        );
        self.grads.d_w_self.ensure_shape(in_dim, half);
        gemm::gemm_tn_v(
            1.0,
            input.view(),
            d_self,
            0.0,
            self.grads.d_w_self.view_mut(),
        );
        // dH via the two weight paths: d_in = dH_self·W_selfᵀ, then the
        // propagation backward accumulates Âᵀ·(dH_neigh·W_neighᵀ) on top.
        self.d_agg.ensure_shape(input.rows(), in_dim);
        gemm::gemm_nt_v(
            1.0,
            d_neigh,
            self.w_neigh.value.view(),
            0.0,
            self.d_agg.view_mut(),
        );
        d_in.ensure_shape(input.rows(), in_dim);
        gemm::gemm_nt_v(1.0, d_self, self.w_self.value.view(), 0.0, d_in.view_mut());
        t.weight_app_secs += t0.elapsed().as_secs_f64();

        let t0 = Instant::now();
        prop.backward_acc_into(g, &self.d_agg, d_in); // d_in += Âᵀ·dAgg
        t.feature_prop_secs += t0.elapsed().as_secs_f64();
        t
    }

    /// Backward pass (standalone API). Consumes `dOut` (gradient w.r.t.
    /// this layer's output), returns `dH` (gradient w.r.t. the input),
    /// the weight gradients and kernel timings.
    pub fn backward(
        &mut self,
        g: &CsrGraph,
        d_out: &DMatrix,
        prop: &FeaturePropagator,
    ) -> (DMatrix, GcnLayerGrads, KernelTimings) {
        let cache = self.cache.take().expect("backward called before forward");
        // The persistent cache keeps the paired activations, so repeated
        // backward calls on one forward stay legal here (seed semantics).
        self.fwd_pending = true;
        let mut d_pre = d_out.clone();
        let mut d_in = DMatrix::zeros(0, 0);
        let t = self.backward_into(g, &cache.input, &cache.output, &mut d_pre, &mut d_in, prop);
        self.cache = Some(cache);
        (d_in, self.grads.clone(), t)
    }

    /// The weight gradients of the last backward pass.
    pub fn own_grads(&self) -> &GcnLayerGrads {
        &self.grads
    }

    /// Apply Adam updates from the layer's own gradient buffers (the
    /// allocation-free counterpart of [`GcnLayer::apply_grads`]).
    pub fn apply_own_grads(&mut self, hyper: &AdamHyper, t: u64) {
        self.w_neigh.step(&self.grads.d_w_neigh, hyper, t);
        self.w_self.step(&self.grads.d_w_self, hyper, t);
    }

    /// Apply Adam updates.
    pub fn apply_grads(&mut self, grads: &GcnLayerGrads, hyper: &AdamHyper, t: u64) {
        self.w_neigh.step(&grads.d_w_neigh, hyper, t);
        self.w_self.step(&grads.d_w_self, hyper, t);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsgcn_graph::GraphBuilder;
    use gsgcn_prop::propagator::{FeaturePropagator, PropMode};

    fn square() -> CsrGraph {
        GraphBuilder::new(4)
            .add_edges([(0, 1), (1, 2), (2, 3), (3, 0)])
            .build()
    }

    fn prop() -> FeaturePropagator {
        FeaturePropagator::new(PropMode::Naive)
    }

    #[test]
    fn forward_shape_and_concat_structure() {
        let g = square();
        let mut layer = GcnLayer::new(3, 5, false, 1);
        let h = DMatrix::from_fn(4, 3, |i, j| (i + j) as f32 * 0.1);
        let (out, timings) = layer.forward(&g, &h, &prop());
        assert_eq!(out.shape(), (4, 10));
        assert!(timings.feature_prop_secs >= 0.0 && timings.weight_app_secs >= 0.0);
    }

    #[test]
    fn relu_clamps_when_enabled() {
        let g = square();
        let mut layer = GcnLayer::new(2, 4, true, 2);
        let h = DMatrix::from_fn(4, 2, |i, _| i as f32 - 1.5);
        let (out, _) = layer.forward(&g, &h, &prop());
        assert!(out.data().iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn infer_matches_forward() {
        let g = square();
        let mut layer = GcnLayer::new(3, 4, true, 3);
        let h = DMatrix::from_fn(4, 3, |i, j| ((i * 3 + j) % 5) as f32 * 0.2 - 0.4);
        let (a, _) = layer.forward(&g, &h, &prop());
        let b = layer.infer(&g, &h, &prop());
        assert!(a.max_abs_diff(&b) < 1e-7);
    }

    /// Full finite-difference gradient check through aggregation, weights,
    /// concat and ReLU — the critical correctness test for the layer.
    /// Pinned to f32 storage: a finite difference through the quantised
    /// forward would measure the rounding staircase, not the gradient.
    #[test]
    fn gradient_check_weights_and_input() {
        precision::with_precision(Precision::F32, gradient_check_weights_and_input_body);
    }

    fn gradient_check_weights_and_input_body() {
        let g = square();
        let mut layer = GcnLayer::new(3, 2, true, 4);
        let h = DMatrix::from_fn(4, 3, |i, j| ((i * 7 + j * 3) % 11) as f32 * 0.15 - 0.6);
        let p = prop();

        // Scalar loss: ½‖out‖².
        let loss_of = |layer: &GcnLayer, h: &DMatrix| -> f32 {
            let o = layer.infer(&g, h, &p);
            0.5 * o.data().iter().map(|x| x * x).sum::<f32>()
        };

        let (out, _) = layer.forward(&g, &h, &p);
        let (dh, grads, _) = layer.backward(&g, &out, &p);

        let eps = 1e-2f32;
        // Check a spread of W_neigh entries.
        for (r, c) in [(0usize, 0usize), (1, 1), (2, 0)] {
            let orig = layer.w_neigh.value.get(r, c);
            layer.w_neigh.value.set(r, c, orig + eps);
            let lp = loss_of(&layer, &h);
            layer.w_neigh.value.set(r, c, orig - eps);
            let lm = loss_of(&layer, &h);
            layer.w_neigh.value.set(r, c, orig);
            let num = (lp - lm) / (2.0 * eps);
            let ana = grads.d_w_neigh.get(r, c);
            assert!(
                (num - ana).abs() < 0.05 * (1.0 + ana.abs()),
                "dW_neigh[{r},{c}]: {num} vs {ana}"
            );
        }
        // W_self entries.
        for (r, c) in [(0usize, 1usize), (2, 1)] {
            let orig = layer.w_self.value.get(r, c);
            layer.w_self.value.set(r, c, orig + eps);
            let lp = loss_of(&layer, &h);
            layer.w_self.value.set(r, c, orig - eps);
            let lm = loss_of(&layer, &h);
            layer.w_self.value.set(r, c, orig);
            let num = (lp - lm) / (2.0 * eps);
            let ana = grads.d_w_self.get(r, c);
            assert!(
                (num - ana).abs() < 0.05 * (1.0 + ana.abs()),
                "dW_self[{r},{c}]: {num} vs {ana}"
            );
        }
        // Input entries (tests the Âᵀ backward path).
        for (r, c) in [(0usize, 0usize), (3, 2)] {
            let orig = h.get(r, c);
            let mut hp = h.clone();
            hp.set(r, c, orig + eps);
            let lp = loss_of(&layer, &hp);
            let mut hm = h.clone();
            hm.set(r, c, orig - eps);
            let lm = loss_of(&layer, &hm);
            let num = (lp - lm) / (2.0 * eps);
            let ana = dh.get(r, c);
            assert!(
                (num - ana).abs() < 0.05 * (1.0 + ana.abs()),
                "dH[{r},{c}]: {num} vs {ana}"
            );
        }
    }

    /// The fused hot path must match the unfused reference composition —
    /// same weights, same inputs, forward activations, input gradients
    /// and weight gradients all within fp tolerance. Pinned to f32
    /// storage (the unfused reference has no bf16 path); the bf16 twin
    /// below is tolerance-banded instead.
    #[test]
    fn fused_matches_unfused_reference() {
        precision::with_precision(Precision::F32, fused_matches_unfused_reference_body);
    }

    fn fused_matches_unfused_reference_body() {
        let g = square();
        let h = DMatrix::from_fn(4, 5, |i, j| ((i * 5 + j) % 9) as f32 * 0.2 - 0.7);
        let p = prop();
        let mut fused = GcnLayer::new(5, 3, true, 9).with_fused(true);
        let mut unfused = fused.clone().with_fused(false);

        let (of, _) = fused.forward(&g, &h, &p);
        let (ou, _) = unfused.forward(&g, &h, &p);
        assert!(of.max_abs_diff(&ou) < 1e-5, "forward mismatch");

        let d_out = DMatrix::from_fn(4, 6, |i, j| ((i + 2 * j) % 5) as f32 * 0.3 - 0.6);
        let (df, gf, _) = fused.backward(&g, &d_out, &p);
        let (du, gu, _) = unfused.backward(&g, &d_out, &p);
        assert!(df.max_abs_diff(&du) < 1e-5, "d_in mismatch");
        assert!(gf.d_w_neigh.max_abs_diff(&gu.d_w_neigh) < 1e-5);
        assert!(gf.d_w_self.max_abs_diff(&gu.d_w_self) < 1e-5);
    }

    /// The bf16 twin of `fused_matches_unfused_reference`: storage
    /// rounding moves the fused forward off the f32 reference by at most
    /// the depth-1 tolerance band, across every available kernel tier.
    #[test]
    fn fused_bf16_forward_within_tolerance() {
        use gsgcn_tensor::ukernel::{available_tiers, with_tier};
        let g = square();
        let h = DMatrix::from_fn(4, 5, |i, j| ((i * 5 + j) % 9) as f32 * 0.2 - 0.7);
        let p = prop();
        let layer = GcnLayer::new(5, 3, true, 9);
        let f32_out = precision::with_precision(Precision::F32, || layer.infer(&g, &h, &p));
        let tol = precision::rel_tolerance(Precision::Bf16, 1, 5);
        let scale = f32_out.data().iter().fold(0f32, |s, &x| s.max(x.abs()));
        for tier in available_tiers() {
            let bf16_out = with_tier(tier, || {
                precision::with_precision(Precision::Bf16, || layer.infer(&g, &h, &p))
            });
            for (b, r) in bf16_out.data().iter().zip(f32_out.data()) {
                assert!(
                    (b - r).abs() <= tol * scale,
                    "tier {}: bf16 {b} vs f32 {r} outside band {tol}",
                    tier.name()
                );
            }
        }
    }

    #[test]
    fn unfused_gradient_check_weights_and_input() {
        // The reference path keeps its own finite-difference check.
        let g = square();
        let mut layer = GcnLayer::new(3, 2, true, 4).with_fused(false);
        let h = DMatrix::from_fn(4, 3, |i, j| ((i * 7 + j * 3) % 11) as f32 * 0.15 - 0.6);
        let p = prop();
        let loss_of = |layer: &GcnLayer, h: &DMatrix| -> f32 {
            let o = layer.infer(&g, h, &p);
            0.5 * o.data().iter().map(|x| x * x).sum::<f32>()
        };
        let (out, _) = layer.forward(&g, &h, &p);
        let (dh, grads, _) = layer.backward(&g, &out, &p);
        let eps = 1e-2f32;
        // W_neigh entries.
        for (r, c) in [(0usize, 0usize), (1, 1), (2, 0)] {
            let orig = layer.w_neigh.value.get(r, c);
            layer.w_neigh.value.set(r, c, orig + eps);
            let lp = loss_of(&layer, &h);
            layer.w_neigh.value.set(r, c, orig - eps);
            let lm = loss_of(&layer, &h);
            layer.w_neigh.value.set(r, c, orig);
            let num = (lp - lm) / (2.0 * eps);
            let ana = grads.d_w_neigh.get(r, c);
            assert!(
                (num - ana).abs() < 0.05 * (1.0 + ana.abs()),
                "dW_neigh[{r},{c}]: {num} vs {ana}"
            );
        }
        // W_self entries.
        for (r, c) in [(0usize, 1usize), (2, 1)] {
            let orig = layer.w_self.value.get(r, c);
            layer.w_self.value.set(r, c, orig + eps);
            let lp = loss_of(&layer, &h);
            layer.w_self.value.set(r, c, orig - eps);
            let lm = loss_of(&layer, &h);
            layer.w_self.value.set(r, c, orig);
            let num = (lp - lm) / (2.0 * eps);
            let ana = grads.d_w_self.get(r, c);
            assert!(
                (num - ana).abs() < 0.05 * (1.0 + ana.abs()),
                "dW_self[{r},{c}]: {num} vs {ana}"
            );
        }
        // Input entries (ground truth for the Âᵀ backward path shared by
        // both modes — the fused/unfused equivalence test cannot see a
        // bug they have in common).
        for (r, c) in [(0usize, 0usize), (3, 2)] {
            let orig = h.get(r, c);
            let mut hp = h.clone();
            hp.set(r, c, orig + eps);
            let lp = loss_of(&layer, &hp);
            let mut hm = h.clone();
            hm.set(r, c, orig - eps);
            let lm = loss_of(&layer, &hm);
            let num = (lp - lm) / (2.0 * eps);
            let ana = dh.get(r, c);
            assert!(
                (num - ana).abs() < 0.05 * (1.0 + ana.abs()),
                "dH[{r},{c}]: {num} vs {ana}"
            );
        }
    }

    #[test]
    fn training_reduces_layer_loss() {
        let g = square();
        let mut layer = GcnLayer::new(2, 3, true, 5);
        let h = DMatrix::from_fn(4, 2, |i, j| (i as f32 + j as f32) * 0.3);
        let p = prop();
        let hyper = AdamHyper {
            lr: 0.02,
            ..AdamHyper::default()
        };
        let loss_of = |layer: &mut GcnLayer| -> f32 {
            let (o, _) = layer.forward(&g, &h, &p);
            0.5 * o.data().iter().map(|x| x * x).sum::<f32>()
        };
        let before = loss_of(&mut layer);
        for t in 1..=50 {
            let (o, _) = layer.forward(&g, &h, &p);
            let (_, grads, _) = layer.backward(&g, &o, &p);
            layer.apply_grads(&grads, &hyper, t);
        }
        let after = loss_of(&mut layer);
        assert!(after < before, "{after} !< {before}");
    }

    #[test]
    #[should_panic(expected = "before forward")]
    fn backward_without_forward_panics() {
        let g = square();
        let mut layer = GcnLayer::new(2, 2, true, 6);
        layer.backward(&g, &DMatrix::zeros(4, 4), &prop());
    }
}
