//! Model checkpointing: export/import of trained GCN weights in a compact
//! little-endian binary format.
//!
//! Training large graphs takes hours; a downstream user needs to persist
//! the learned `{W_self, W_neigh}` set (Alg. 1's output) and reload it for
//! inference. The format is self-describing (`magic, version, [meta], L,
//! dims, data`), so loading validates shape compatibility before touching
//! the model.
//!
//! Version 2 adds an optional **provenance block** ([`CheckpointMeta`]):
//! the dataset name, generation seed, scale and architecture the weights
//! were trained with. The workspace's datasets are *synthetic* — they are
//! regenerated from `(name, seed, full)` on every run — so evaluating a
//! checkpoint against a differently-seeded regeneration silently scores
//! the model on a different random graph (F1 collapses to ≈ chance, the
//! long-standing `gsgcn eval --load` footgun). With the provenance stored,
//! `eval` can default to the training-time dataset and warn when an
//! explicit flag contradicts it. Version-1 checkpoints still load (no
//! meta).

use crate::model::GcnModel;
use gsgcn_tensor::DMatrix;
use std::io;
use std::path::Path;

const MAGIC: u32 = 0x47_43_4E_31; // "GCN1"
const VERSION: u32 = 2;
/// Newest format readers below can parse; v1 = weights only.
const MIN_VERSION: u32 = 1;
/// Shared writer/reader bounds on the meta block, so [`ModelWeights::to_bytes`]
/// can never emit a checkpoint its own [`ModelWeights::from_bytes`] rejects.
const MAX_DATASET_NAME_BYTES: usize = 256;
const MAX_HIDDEN_LAYERS: usize = 1024;

/// Training-time provenance stored alongside the weights (v2+).
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct CheckpointMeta {
    /// Dataset preset name (lowercase, e.g. `ppi`).
    pub dataset: String,
    /// Generation seed the synthetic dataset was built from.
    pub seed: u64,
    /// Whether the Table-I full-scale variant was used.
    pub full: bool,
    /// Hidden layer widths the model was built with.
    pub hidden_dims: Vec<usize>,
}

/// A serialisable snapshot of all trainable parameters.
#[derive(Clone, Debug, PartialEq)]
pub struct ModelWeights {
    /// Per GCN layer: `(W_neigh, W_self)`.
    pub layers: Vec<(DMatrix, DMatrix)>,
    /// Classifier head weight.
    pub head_w: DMatrix,
    /// Classifier head bias (1 × classes).
    pub head_b: DMatrix,
    /// Training-time provenance; `None` for v1 checkpoints or snapshots
    /// taken outside the CLI.
    pub meta: Option<CheckpointMeta>,
}

impl ModelWeights {
    /// Total parameter count.
    pub fn num_params(&self) -> usize {
        self.layers
            .iter()
            .map(|(a, b)| a.data().len() + b.data().len())
            .sum::<usize>()
            + self.head_w.data().len()
            + self.head_b.data().len()
    }

    /// Attach training-time provenance (builder style).
    ///
    /// # Panics
    /// Panics if the meta violates the format's (deliberately generous)
    /// bounds — dataset name over 256 bytes, more than 1024 hidden layers,
    /// or a hidden dim exceeding `u32::MAX` — which the reader would
    /// reject; validating at attach time keeps write and read symmetric.
    pub fn with_meta(mut self, meta: CheckpointMeta) -> Self {
        assert!(
            meta.dataset.len() <= MAX_DATASET_NAME_BYTES,
            "checkpoint dataset name exceeds {MAX_DATASET_NAME_BYTES} bytes"
        );
        assert!(
            meta.hidden_dims.len() <= MAX_HIDDEN_LAYERS,
            "checkpoint hidden-layer count exceeds {MAX_HIDDEN_LAYERS}"
        );
        assert!(
            meta.hidden_dims.iter().all(|&h| h <= u32::MAX as usize),
            "checkpoint hidden dim exceeds u32::MAX"
        );
        self.meta = Some(meta);
        self
    }

    /// Serialise to bytes (always the current version).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        let put_u32 = |out: &mut Vec<u8>, v: u32| out.extend_from_slice(&v.to_le_bytes());
        let put_matrix = |out: &mut Vec<u8>, m: &DMatrix| {
            put_u32(out, m.rows() as u32);
            put_u32(out, m.cols() as u32);
            for &x in m.data() {
                out.extend_from_slice(&x.to_le_bytes());
            }
        };
        put_u32(&mut out, MAGIC);
        put_u32(&mut out, VERSION);
        // v2 meta block: presence flag, then the provenance fields.
        match &self.meta {
            None => put_u32(&mut out, 0),
            Some(meta) => {
                put_u32(&mut out, 1);
                put_u32(&mut out, meta.dataset.len() as u32);
                out.extend_from_slice(meta.dataset.as_bytes());
                out.extend_from_slice(&meta.seed.to_le_bytes());
                put_u32(&mut out, meta.full as u32);
                put_u32(&mut out, meta.hidden_dims.len() as u32);
                for &h in &meta.hidden_dims {
                    put_u32(&mut out, h as u32);
                }
            }
        }
        put_u32(&mut out, self.layers.len() as u32);
        for (wn, ws) in &self.layers {
            put_matrix(&mut out, wn);
            put_matrix(&mut out, ws);
        }
        put_matrix(&mut out, &self.head_w);
        put_matrix(&mut out, &self.head_b);
        out
    }

    /// Deserialise from bytes.
    pub fn from_bytes(data: &[u8]) -> io::Result<Self> {
        let bad = |m: &str| io::Error::new(io::ErrorKind::InvalidData, m.to_string());
        let mut pos = 0usize;
        let get_u32 = |data: &[u8], pos: &mut usize| -> io::Result<u32> {
            if *pos + 4 > data.len() {
                return Err(bad("truncated"));
            }
            let v = u32::from_le_bytes(data[*pos..*pos + 4].try_into().unwrap());
            *pos += 4;
            Ok(v)
        };
        if get_u32(data, &mut pos)? != MAGIC {
            return Err(bad("bad magic"));
        }
        let version = get_u32(data, &mut pos)?;
        if !(MIN_VERSION..=VERSION).contains(&version) {
            return Err(bad("unsupported version"));
        }
        let meta = if version >= 2 && get_u32(data, &mut pos)? != 0 {
            let name_len = get_u32(data, &mut pos)? as usize;
            if name_len > MAX_DATASET_NAME_BYTES {
                return Err(bad("implausible dataset name length"));
            }
            let name_bytes = data
                .get(pos..pos + name_len)
                .ok_or_else(|| bad("truncated meta"))?;
            pos += name_len;
            let dataset = std::str::from_utf8(name_bytes)
                .map_err(|_| bad("meta dataset name is not UTF-8"))?
                .to_string();
            let seed_bytes = data
                .get(pos..pos + 8)
                .ok_or_else(|| bad("truncated meta"))?;
            pos += 8;
            let seed = u64::from_le_bytes(seed_bytes.try_into().unwrap());
            let full = get_u32(data, &mut pos)? != 0;
            let dims = get_u32(data, &mut pos)? as usize;
            if dims > MAX_HIDDEN_LAYERS {
                return Err(bad("implausible hidden-layer count"));
            }
            let mut hidden_dims = Vec::with_capacity(dims);
            for _ in 0..dims {
                hidden_dims.push(get_u32(data, &mut pos)? as usize);
            }
            Some(CheckpointMeta {
                dataset,
                seed,
                full,
                hidden_dims,
            })
        } else {
            None
        };
        let get_matrix = |data: &[u8], pos: &mut usize| -> io::Result<DMatrix> {
            let rows = u32::from_le_bytes(
                data.get(*pos..*pos + 4)
                    .ok_or_else(|| bad("truncated"))?
                    .try_into()
                    .unwrap(),
            ) as usize;
            let cols = u32::from_le_bytes(
                data.get(*pos + 4..*pos + 8)
                    .ok_or_else(|| bad("truncated"))?
                    .try_into()
                    .unwrap(),
            ) as usize;
            *pos += 8;
            let bytes = rows * cols * 4;
            let slice = data
                .get(*pos..*pos + bytes)
                .ok_or_else(|| bad("truncated matrix data"))?;
            *pos += bytes;
            let vals = slice
                .chunks_exact(4)
                .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
                .collect();
            Ok(DMatrix::from_vec(rows, cols, vals))
        };
        let l = get_u32(data, &mut pos)? as usize;
        if l > 1024 {
            return Err(bad("implausible layer count"));
        }
        let mut layers = Vec::with_capacity(l);
        for _ in 0..l {
            let wn = get_matrix(data, &mut pos)?;
            let ws = get_matrix(data, &mut pos)?;
            if wn.shape() != ws.shape() {
                return Err(bad("layer weight shape mismatch"));
            }
            layers.push((wn, ws));
        }
        let head_w = get_matrix(data, &mut pos)?;
        let head_b = get_matrix(data, &mut pos)?;
        if head_b.rows() != 1 || head_b.cols() != head_w.cols() {
            return Err(bad("head bias shape mismatch"));
        }
        Ok(ModelWeights {
            layers,
            head_w,
            head_b,
            meta,
        })
    }

    /// Save to a file.
    pub fn save<P: AsRef<Path>>(&self, path: P) -> io::Result<()> {
        std::fs::write(path, self.to_bytes())
    }

    /// Load from a file.
    pub fn load<P: AsRef<Path>>(path: P) -> io::Result<Self> {
        Self::from_bytes(&std::fs::read(path)?)
    }
}

impl GcnModel {
    /// Snapshot the current parameters.
    pub fn export_weights(&self) -> ModelWeights {
        ModelWeights {
            layers: self
                .layers_ref()
                .iter()
                .map(|l| (l.w_neigh.value.clone(), l.w_self.value.clone()))
                .collect(),
            head_w: self.head_ref().w.value.clone(),
            head_b: self.head_ref().b.value.clone(),
            meta: None,
        }
    }

    /// Restore parameters from a snapshot. Optimiser moments reset.
    ///
    /// # Errors
    /// Returns a message if any shape differs from the model architecture.
    pub fn import_weights(&mut self, w: &ModelWeights) -> Result<(), String> {
        if w.layers.len() != self.num_layers() {
            return Err(format!(
                "layer count mismatch: checkpoint {} vs model {}",
                w.layers.len(),
                self.num_layers()
            ));
        }
        for (i, ((wn, ws), layer)) in w.layers.iter().zip(self.layers_ref()).enumerate() {
            if wn.shape() != layer.w_neigh.value.shape() || ws.shape() != layer.w_self.value.shape()
            {
                return Err(format!("layer {i} weight shape mismatch"));
            }
        }
        if w.head_w.shape() != self.head_ref().w.value.shape() {
            return Err("head weight shape mismatch".into());
        }
        for ((wn, ws), layer) in w.layers.iter().zip(self.layers_mut()) {
            layer.w_neigh = crate::adam::AdamParam::new(wn.clone());
            layer.w_self = crate::adam::AdamParam::new(ws.clone());
        }
        self.head_mut().w = crate::adam::AdamParam::new(w.head_w.clone());
        self.head_mut().b = crate::adam::AdamParam::new(w.head_b.clone());
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{GcnConfig, LossKind};
    use gsgcn_graph::GraphBuilder;

    fn model() -> GcnModel {
        GcnModel::new(
            GcnConfig {
                in_dim: 4,
                hidden_dims: vec![8, 6],
                num_classes: 3,
                loss: LossKind::SigmoidBce,
                ..GcnConfig::default()
            },
            7,
        )
    }

    #[test]
    fn bytes_roundtrip() {
        let w = model().export_weights();
        let back = ModelWeights::from_bytes(&w.to_bytes()).unwrap();
        assert_eq!(w, back);
        assert_eq!(w.num_params(), model().num_params());
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("gsgcn_ckpt_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("m.gcn");
        let w = model().export_weights();
        w.save(&path).unwrap();
        assert_eq!(ModelWeights::load(&path).unwrap(), w);
    }

    #[test]
    fn import_restores_inference() {
        let g = GraphBuilder::new(5)
            .add_edges([(0, 1), (1, 2), (2, 3), (3, 4)])
            .build();
        let x = DMatrix::from_fn(5, 4, |i, j| (i + j) as f32 * 0.1);
        let y = DMatrix::from_fn(5, 3, |i, j| ((i + j) % 2) as f32);
        let mut m1 = model();
        for _ in 0..5 {
            m1.train_step(&g, &x, &y);
        }
        let snapshot = m1.export_weights();
        let probs1 = m1.infer_probs(&g, &x);
        let mut m2 = model();
        let probs_before = m2.infer_probs(&g, &x);
        assert!(
            probs1.max_abs_diff(&probs_before) > 1e-6,
            "models should differ pre-import"
        );
        m2.import_weights(&snapshot).unwrap();
        let probs2 = m2.infer_probs(&g, &x);
        assert!(
            probs1.max_abs_diff(&probs2) < 1e-7,
            "import must restore inference exactly"
        );
    }

    #[test]
    fn import_rejects_wrong_architecture() {
        let w = model().export_weights();
        let mut other = GcnModel::new(
            GcnConfig {
                in_dim: 4,
                hidden_dims: vec![8],
                num_classes: 3,
                loss: LossKind::SigmoidBce,
                ..GcnConfig::default()
            },
            1,
        );
        assert!(other.import_weights(&w).is_err());
    }

    #[test]
    fn corrupt_bytes_rejected() {
        let mut bytes = model().export_weights().to_bytes();
        assert!(ModelWeights::from_bytes(&bytes[..10]).is_err());
        bytes[0] ^= 0xFF;
        assert!(ModelWeights::from_bytes(&bytes).is_err());
    }

    #[test]
    fn meta_roundtrips() {
        let meta = CheckpointMeta {
            dataset: "ppi".into(),
            seed: 0xDEAD_BEEF_0042,
            full: true,
            hidden_dims: vec![128, 128],
        };
        let w = model().export_weights().with_meta(meta.clone());
        let back = ModelWeights::from_bytes(&w.to_bytes()).unwrap();
        assert_eq!(back.meta.as_ref(), Some(&meta));
        assert_eq!(back, w);
        // Meta-less snapshots stay meta-less through the round trip.
        let bare = model().export_weights();
        let back = ModelWeights::from_bytes(&bare.to_bytes()).unwrap();
        assert_eq!(back.meta, None);
    }

    #[test]
    #[should_panic(expected = "dataset name exceeds")]
    fn with_meta_rejects_unloadable_meta() {
        // The write side must refuse anything the read side would reject.
        let meta = CheckpointMeta {
            dataset: "x".repeat(300),
            ..CheckpointMeta::default()
        };
        let _ = model().export_weights().with_meta(meta);
    }

    /// Version-1 checkpoints (pre-provenance) must still load. v1 is the
    /// v2 layout with no meta block, so synthesise one by stripping the
    /// meta flag and patching the version field.
    #[test]
    fn v1_checkpoints_still_load() {
        let w = model().export_weights();
        let v2 = w.to_bytes();
        let mut v1 = Vec::with_capacity(v2.len() - 4);
        v1.extend_from_slice(&v2[..4]); // magic
        v1.extend_from_slice(&1u32.to_le_bytes()); // version 1
        v1.extend_from_slice(&v2[12..]); // skip version + absent-meta flag
        let back = ModelWeights::from_bytes(&v1).unwrap();
        assert_eq!(back.meta, None);
        assert_eq!(back.layers, w.layers);
        assert_eq!(back.head_w, w.head_w);
        assert_eq!(back.head_b, w.head_b);
    }
}
