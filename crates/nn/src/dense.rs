//! Dense (fully connected) layer — the classifier head of Alg. 1 line 11.

use crate::adam::{AdamHyper, AdamParam};
use gsgcn_tensor::{gemm, init, DMatrix};

/// `X = H·W + b` with learned `W` and bias `b`.
///
/// Owns persistent gradient buffers so the in-place `forward_into` /
/// `backward_into` pair allocates nothing once warm.
#[derive(Clone, Debug)]
pub struct DenseLayer {
    pub w: AdamParam,
    pub b: AdamParam,
    /// Cached input of the last standalone `forward` (needed for dW).
    input: Option<DMatrix>,
    /// Persistent parameter-gradient buffers.
    grads: DenseGrads,
}

impl DenseLayer {
    /// Xavier-initialised layer mapping `in_dim → out_dim`.
    pub fn new(in_dim: usize, out_dim: usize, seed: u64) -> Self {
        DenseLayer {
            w: AdamParam::new(init::xavier_uniform(in_dim, out_dim, seed)),
            b: AdamParam::new(DMatrix::zeros(1, out_dim)),
            input: None,
            grads: DenseGrads {
                dw: DMatrix::zeros(0, 0),
                db: DMatrix::zeros(0, 0),
            },
        }
    }

    pub fn in_dim(&self) -> usize {
        self.w.value.rows()
    }

    pub fn out_dim(&self) -> usize {
        self.w.value.cols()
    }

    /// In-place forward: `out = H·W + b`, reusing `out`'s buffer.
    pub fn forward_into(&self, h: &DMatrix, out: &mut DMatrix) {
        out.ensure_shape(h.rows(), self.w.value.cols());
        gemm::gemm_nn_v(1.0, h.view(), self.w.value.view(), 0.0, out.view_mut());
        let b = self.b.value.row(0);
        for i in 0..out.rows() {
            for (o, &bv) in out.row_mut(i).iter_mut().zip(b) {
                *o += bv;
            }
        }
    }

    /// Row-range-limited forward: `out = H[lo..hi]·W + b` (`out` gets
    /// `hi-lo` rows). The serving path reads only the root rows of the
    /// final activation, so the head's GEMM need not touch the frontier
    /// rows; per-row results are bit-identical to [`forward_into`]
    /// (the packed GEMM accumulates each row independently of the row
    /// count).
    ///
    /// [`forward_into`]: DenseLayer::forward_into
    pub fn forward_range_into(&self, h: &DMatrix, lo: usize, hi: usize, out: &mut DMatrix) {
        assert!(lo <= hi && hi <= h.rows(), "row range out of bounds");
        let cols = h.cols();
        out.ensure_shape(hi - lo, self.w.value.cols());
        let view = gsgcn_tensor::MatRef::new(&h.data()[lo * cols..hi * cols], hi - lo, cols, cols);
        gemm::gemm_nn_v(1.0, view, self.w.value.view(), 0.0, out.view_mut());
        let b = self.b.value.row(0);
        for i in 0..out.rows() {
            for (o, &bv) in out.row_mut(i).iter_mut().zip(b) {
                *o += bv;
            }
        }
    }

    /// Forward pass; caches the input for the standalone backward pass.
    pub fn forward(&mut self, h: &DMatrix) -> DMatrix {
        let mut out = DMatrix::zeros(0, 0);
        self.forward_into(h, &mut out);
        self.input = Some(h.clone());
        out
    }

    /// Inference-only forward (no caching, `&self`).
    pub fn infer(&self, h: &DMatrix) -> DMatrix {
        let mut out = DMatrix::zeros(0, 0);
        self.forward_into(h, &mut out);
        out
    }

    /// In-place backward with an explicit input: writes `dH` into `d_h`
    /// (buffer reused) and the parameter gradients into the layer's
    /// persistent buffers (apply with [`DenseLayer::apply_own_grads`]).
    pub fn backward_into(&mut self, input: &DMatrix, d_out: &DMatrix, d_h: &mut DMatrix) {
        self.grads
            .dw
            .ensure_shape(self.w.value.rows(), self.w.value.cols());
        gemm::gemm_tn_v(
            1.0,
            input.view(),
            d_out.view(),
            0.0,
            self.grads.dw.view_mut(),
        );
        // db = column sums of dOut.
        self.grads.db.ensure_shape(1, d_out.cols());
        self.grads.db.fill(0.0);
        for i in 0..d_out.rows() {
            for (g, &d) in self.grads.db.row_mut(0).iter_mut().zip(d_out.row(i)) {
                *g += d;
            }
        }
        d_h.ensure_shape(d_out.rows(), self.w.value.rows());
        gemm::gemm_nt_v(1.0, d_out.view(), self.w.value.view(), 0.0, d_h.view_mut());
    }

    /// Backward pass (standalone API): consumes `dOut`, returns `dH` and
    /// the parameter gradients for [`DenseLayer::apply_grads`].
    pub fn backward(&mut self, d_out: &DMatrix) -> (DMatrix, DenseGrads) {
        let input = self.input.take().expect("backward called before forward");
        let mut dh = DMatrix::zeros(0, 0);
        self.backward_into(&input, d_out, &mut dh);
        self.input = Some(input);
        (dh, self.grads.clone())
    }

    /// Apply Adam updates from the layer's own gradient buffers.
    pub fn apply_own_grads(&mut self, hyper: &AdamHyper, t: u64) {
        self.w.step(&self.grads.dw, hyper, t);
        self.b.step(&self.grads.db, hyper, t);
    }

    /// Apply Adam updates with the given step counter.
    pub fn apply_grads(&mut self, grads: &DenseGrads, hyper: &AdamHyper, t: u64) {
        self.w.step(&grads.dw, hyper, t);
        self.b.step(&grads.db, hyper, t);
    }

    /// Total parameter count.
    pub fn num_params(&self) -> usize {
        self.w.value.rows() * self.w.value.cols() + self.b.value.cols()
    }
}

/// Gradients of one dense layer.
#[derive(Clone, Debug)]
pub struct DenseGrads {
    pub dw: DMatrix,
    pub db: DMatrix,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_shapes_and_bias() {
        let mut l = DenseLayer::new(3, 2, 1);
        l.w.value = DMatrix::zeros(3, 2);
        l.b.value = DMatrix::from_vec(1, 2, vec![1.5, -0.5]);
        let h = DMatrix::filled(4, 3, 1.0);
        let out = l.forward(&h);
        assert_eq!(out.shape(), (4, 2));
        assert_eq!(out.get(0, 0), 1.5);
        assert_eq!(out.get(3, 1), -0.5);
    }

    #[test]
    fn infer_matches_forward() {
        let mut l = DenseLayer::new(3, 2, 7);
        let h = DMatrix::from_fn(5, 3, |i, j| (i + j) as f32 * 0.2);
        let a = l.forward(&h);
        let b = l.infer(&h);
        assert!(a.max_abs_diff(&b) < 1e-7);
    }

    #[test]
    fn forward_range_is_bit_identical_to_full_rows() {
        let l = DenseLayer::new(6, 4, 11);
        let h = DMatrix::from_fn(9, 6, |i, j| ((i * 7 + j * 3) % 11) as f32 * 0.17 - 0.8);
        let mut full = DMatrix::zeros(0, 0);
        l.forward_into(&h, &mut full);
        for (lo, hi) in [(0, 9), (0, 3), (2, 7), (4, 4)] {
            let mut part = DMatrix::zeros(0, 0);
            l.forward_range_into(&h, lo, hi, &mut part);
            assert_eq!(part.shape(), (hi - lo, 4));
            for r in lo..hi {
                assert_eq!(
                    part.row(r - lo),
                    full.row(r),
                    "rows {lo}..{hi}: row {r} diverged"
                );
            }
        }
    }

    #[test]
    fn gradient_check() {
        // Loss = ½‖forward(H)‖²; dOut = out. Verify dW numerically.
        let mut l = DenseLayer::new(3, 2, 3);
        let h = DMatrix::from_fn(4, 3, |i, j| ((i * 3 + j) % 5) as f32 * 0.3 - 0.5);
        let out = l.forward(&h);
        let (_dh, grads) = l.backward(&out);
        let eps = 1e-3f32;
        let loss = |l: &DenseLayer, h: &DMatrix| -> f32 {
            let o = l.infer(h);
            0.5 * o.data().iter().map(|x| x * x).sum::<f32>()
        };
        for (r, c) in [(0usize, 0usize), (1, 1), (2, 0)] {
            let orig = l.w.value.get(r, c);
            l.w.value.set(r, c, orig + eps);
            let lp = loss(&l, &h);
            l.w.value.set(r, c, orig - eps);
            let lm = loss(&l, &h);
            l.w.value.set(r, c, orig);
            let num = (lp - lm) / (2.0 * eps);
            let ana = grads.dw.get(r, c);
            assert!((num - ana).abs() < 1e-2, "dW[{r},{c}]: {num} vs {ana}");
        }
        // Bias gradient: column sums of dOut.
        for c in 0..2 {
            let expect: f32 = (0..4).map(|i| out.get(i, c)).sum();
            assert!((grads.db.get(0, c) - expect).abs() < 1e-4);
        }
    }

    #[test]
    fn input_gradient_is_dout_wt() {
        let mut l = DenseLayer::new(2, 2, 5);
        let h = DMatrix::from_fn(3, 2, |i, j| (i as f32) - (j as f32));
        let _ = l.forward(&h);
        let d_out = DMatrix::from_fn(3, 2, |i, j| (i * 2 + j) as f32);
        let (dh, _) = l.backward(&d_out);
        let expect = gemm::matmul_nt(&d_out, &l.w.value);
        assert!(dh.max_abs_diff(&expect) < 1e-6);
    }

    #[test]
    #[should_panic(expected = "before forward")]
    fn backward_without_forward_panics() {
        let mut l = DenseLayer::new(2, 2, 1);
        l.backward(&DMatrix::zeros(1, 2));
    }

    #[test]
    fn training_linear_regression() {
        // Fit y = H·W* exactly with Adam.
        let w_star = DMatrix::from_vec(2, 1, vec![2.0, -1.0]);
        let h = DMatrix::from_fn(16, 2, |i, j| ((i * 2 + j) % 7) as f32 * 0.3 - 1.0);
        let y = gemm::matmul(&h, &w_star);
        let mut l = DenseLayer::new(2, 1, 11);
        let hyper = AdamHyper {
            lr: 0.05,
            ..AdamHyper::default()
        };
        for t in 1..=800 {
            let out = l.forward(&h);
            let mut d = out.clone();
            for (dv, (&ov, &yv)) in d.data_mut().iter_mut().zip(out.data().iter().zip(y.data())) {
                *dv = (ov - yv) / 16.0;
                let _ = ov;
            }
            let (_, grads) = l.backward(&d);
            l.apply_grads(&grads, &hyper, t);
        }
        assert!(l.w.value.max_abs_diff(&w_star) < 0.05, "{:?}", l.w.value);
    }
}
