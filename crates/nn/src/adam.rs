//! Adam optimiser (Kingma & Ba), the weight-update rule of Alg. 1 line 13.

use gsgcn_tensor::DMatrix;

/// Adam hyperparameters.
#[derive(Clone, Copy, Debug)]
pub struct AdamHyper {
    pub lr: f32,
    pub beta1: f32,
    pub beta2: f32,
    pub eps: f32,
    /// L2 weight decay added to the gradient (0 disables).
    pub weight_decay: f32,
}

impl Default for AdamHyper {
    fn default() -> Self {
        AdamHyper {
            lr: 1e-2,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.0,
        }
    }
}

/// One parameter tensor plus its Adam moment estimates.
#[derive(Clone, Debug)]
pub struct AdamParam {
    /// Current parameter value.
    pub value: DMatrix,
    m: DMatrix,
    v: DMatrix,
}

impl AdamParam {
    /// Wrap an initial parameter value.
    pub fn new(value: DMatrix) -> Self {
        let (r, c) = value.shape();
        AdamParam {
            value,
            m: DMatrix::zeros(r, c),
            v: DMatrix::zeros(r, c),
        }
    }

    /// Apply one Adam update with bias correction at step `t` (1-based).
    pub fn step(&mut self, grad: &DMatrix, hyper: &AdamHyper, t: u64) {
        assert_eq!(self.value.shape(), grad.shape(), "gradient shape mismatch");
        assert!(t >= 1, "Adam step count is 1-based");
        let bc1 = 1.0 - hyper.beta1.powi(t as i32);
        let bc2 = 1.0 - hyper.beta2.powi(t as i32);
        let (b1, b2) = (hyper.beta1, hyper.beta2);
        let wd = hyper.weight_decay;
        for ((w, g), (m, v)) in self.value.data_mut().iter_mut().zip(grad.data()).zip(
            self.m
                .data_mut()
                .iter_mut()
                .zip(self.v.data_mut().iter_mut()),
        ) {
            let g = g + wd * *w;
            *m = b1 * *m + (1.0 - b1) * g;
            *v = b2 * *v + (1.0 - b2) * g * g;
            let m_hat = *m / bc1;
            let v_hat = *v / bc2;
            *w -= hyper.lr * m_hat / (v_hat.sqrt() + hyper.eps);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_step_matches_reference_formula() {
        // With zero moments, step 1 gives: m̂ = g, v̂ = g², so
        // Δw = −lr·g/(|g| + eps) ≈ −lr·sign(g).
        let hyper = AdamHyper {
            lr: 0.1,
            ..AdamHyper::default()
        };
        let mut p = AdamParam::new(DMatrix::from_vec(1, 2, vec![1.0, -2.0]));
        let g = DMatrix::from_vec(1, 2, vec![0.5, -0.25]);
        p.step(&g, &hyper, 1);
        assert!((p.value.get(0, 0) - (1.0 - 0.1)).abs() < 1e-4);
        assert!((p.value.get(0, 1) - (-2.0 + 0.1)).abs() < 1e-4);
    }

    #[test]
    fn converges_on_quadratic() {
        // Minimise f(w) = ½‖w − target‖²; grad = w − target.
        let hyper = AdamHyper {
            lr: 0.05,
            ..AdamHyper::default()
        };
        let target = DMatrix::from_vec(1, 3, vec![1.0, -2.0, 0.5]);
        let mut p = AdamParam::new(DMatrix::zeros(1, 3));
        for t in 1..=2000 {
            let grad = DMatrix::from_fn(1, 3, |_, j| p.value.get(0, j) - target.get(0, j));
            p.step(&grad, &hyper, t);
        }
        assert!(p.value.max_abs_diff(&target) < 1e-2, "{:?}", p.value);
    }

    #[test]
    fn weight_decay_shrinks_weights() {
        let hyper = AdamHyper {
            lr: 0.01,
            weight_decay: 1.0,
            ..AdamHyper::default()
        };
        let mut p = AdamParam::new(DMatrix::filled(1, 1, 5.0));
        let zero_grad = DMatrix::zeros(1, 1);
        for t in 1..=100 {
            p.step(&zero_grad, &hyper, t);
        }
        assert!(p.value.get(0, 0) < 5.0, "decay must shrink the weight");
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn shape_mismatch_panics() {
        let mut p = AdamParam::new(DMatrix::zeros(2, 2));
        p.step(&DMatrix::zeros(1, 2), &AdamHyper::default(), 1);
    }

    #[test]
    fn deterministic_updates() {
        let hyper = AdamHyper::default();
        let g = DMatrix::from_vec(1, 2, vec![0.3, -0.7]);
        let mut a = AdamParam::new(DMatrix::filled(1, 2, 1.0));
        let mut b = AdamParam::new(DMatrix::filled(1, 2, 1.0));
        for t in 1..=10 {
            a.step(&g, &hyper, t);
            b.step(&g, &hyper, t);
        }
        assert_eq!(a.value, b.value);
    }
}
