//! Neural-network substrate: the GCN model of Algorithm 1.
//!
//! * [`gcn_layer`] — one GCN layer: mean aggregation (via
//!   `gsgcn-prop`), the two learned weight matrices `W_neigh`/`W_self`
//!   (Sec. II-A), neighbor‖self concatenation and ReLU, with a full
//!   hand-derived backward pass.
//! * [`dense`] — the dense classifier head (`PREDICT`, Alg. 1 line 11).
//! * [`loss`] — sigmoid binary cross-entropy (multi-label datasets: PPI,
//!   Yelp, Amazon) and softmax cross-entropy (single-label: Reddit).
//! * [`adam`] — the Adam optimiser (Alg. 1 line 13).
//! * [`model`] — the L-layer GCN assembled end to end: forward, loss,
//!   backward, update; reports per-phase timings (feature propagation vs
//!   weight application) for the Fig. 3 breakdown.
//! * [`workspace`] — the caller-owned [`workspace::InferenceWorkspace`]:
//!   activation ping-pong buffers for the `&self` inference path, so one
//!   immutable model serves many threads allocation-free
//!   (`GcnModel::{infer_logits_into, infer_probs_into}`).
//!
//! Everything is deterministic given the seeds in [`model::GcnConfig`].
//!
//! # Example
//!
//! ```
//! use gsgcn_graph::GraphBuilder;
//! use gsgcn_tensor::DMatrix;
//! use gsgcn_nn::model::{GcnConfig, GcnModel, LossKind};
//!
//! let g = GraphBuilder::new(4)
//!     .add_edges([(0, 1), (1, 2), (2, 3), (3, 0)])
//!     .build();
//! let x = DMatrix::from_fn(4, 3, |i, j| (i + j) as f32 * 0.1);
//! let y = DMatrix::from_fn(4, 2, |i, _| (i % 2) as f32);
//! let cfg = GcnConfig {
//!     in_dim: 3,
//!     hidden_dims: vec![8],
//!     num_classes: 2,
//!     loss: LossKind::SigmoidBce,
//!     ..GcnConfig::default()
//! };
//! let mut model = GcnModel::new(cfg, 42);
//! let before = model.train_step(&g, &x, &y).loss;
//! for _ in 0..30 {
//!     model.train_step(&g, &x, &y);
//! }
//! let after = model.train_step(&g, &x, &y).loss;
//! assert!(after < before, "training must reduce the loss");
//! ```

pub mod adam;
pub mod checkpoint;
pub mod dense;
pub mod gcn_layer;
pub mod loss;
pub mod model;
pub mod workspace;

pub use workspace::InferenceWorkspace;
