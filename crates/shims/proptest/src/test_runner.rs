//! The deterministic RNG driving value generation.

/// SplitMix64-seeded xoshiro256++ stream, derived from the test name and
/// case index so every run of the suite explores the same cases.
#[derive(Clone, Debug)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Stream for case `case` of the named test.
    pub fn for_case(name: &str, case: u64) -> TestRng {
        // FNV-1a over the test name, mixed with the case index.
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        let mut sm = h ^ case.wrapping_mul(0x9E3779B97F4A7C15);
        let mut next = || {
            sm = sm.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform draw in `[0, span)`; `span == 0` yields 0.
    pub fn below(&mut self, span: u64) -> u64 {
        if span == 0 {
            return 0;
        }
        ((self.next_u64() as u128 * span as u128) >> 64) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::TestRng;

    #[test]
    fn deterministic_per_name_and_case() {
        let mut a = TestRng::for_case("foo", 3);
        let mut b = TestRng::for_case("foo", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::for_case("foo", 4);
        let mut d = TestRng::for_case("bar", 3);
        let x = TestRng::for_case("foo", 3).next_u64();
        assert_ne!(c.next_u64(), x);
        assert_ne!(d.next_u64(), x);
    }

    #[test]
    fn below_in_range() {
        let mut rng = TestRng::for_case("below", 0);
        for _ in 0..1000 {
            assert!(rng.below(7) < 7);
        }
        assert_eq!(rng.below(0), 0);
        assert_eq!(rng.below(1), 0);
    }
}
