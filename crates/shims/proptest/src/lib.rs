//! Minimal in-tree replacement for the `proptest` crate.
//!
//! The build environment has no network access to crates.io; this shim
//! provides the subset the workspace's property tests use: the
//! [`proptest!`] macro (with `#![proptest_config(...)]`), range / tuple /
//! `Just` / `any` / `collection::vec` strategies, the `prop_map` /
//! `prop_flat_map` adaptors, and the `prop_assert*` / `prop_assume!`
//! macros.
//!
//! Differences from upstream proptest, deliberately accepted:
//!
//! * **No shrinking.** A failing case reports its seed and values via the
//!   panic message but is not minimised.
//! * **Derandomised by name.** Each test's RNG stream is derived from the
//!   test function name and case index, so runs are fully deterministic
//!   (upstream uses an entropy-seeded RNG plus a persistence file).

pub mod strategy;
pub mod test_runner;

pub use strategy::{any, Just, Strategy};

/// Boolean strategies (`proptest::bool`).
pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Uniform true/false.
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    /// The canonical instance (`prop::bool::ANY`).
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Length specification accepted by [`vec`]: a fixed `usize` or a
    /// `Range<usize>`.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Strategy for `Vec<T>` with element strategy `S` and a length drawn
    /// from `size`.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `proptest::collection::vec(element, size)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.below((self.size.hi - self.size.lo) as u64) as usize + self.size.lo;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Per-test configuration (`proptest::test_runner::Config` subset).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// Mirror of upstream's `prelude::prop` module alias.
    pub mod prop {
        pub use crate::bool;
        pub use crate::collection;
    }
}

/// The main property-test macro. Each listed function becomes a `#[test]`
/// that runs `config.cases` random cases.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_impl!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Implementation detail of [`proptest!`]; do not invoke directly.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        ($cfg:expr)
        $(
            $(#[$attr:meta])*
            fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$attr])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                for case in 0..config.cases {
                    let mut proptest_rng = $crate::test_runner::TestRng::for_case(
                        stringify!($name),
                        case as u64,
                    );
                    $(
                        let $pat = $crate::strategy::Strategy::generate(
                            &($strat),
                            &mut proptest_rng,
                        );
                    )+
                    let result: ::core::result::Result<(), ::std::string::String> =
                        (move || {
                            $body
                            ::core::result::Result::Ok(())
                        })();
                    if let ::core::result::Result::Err(msg) = result {
                        panic!(
                            "proptest `{}` failed at case {}: {}",
                            stringify!($name),
                            case,
                            msg
                        );
                    }
                }
            }
        )*
    };
}

/// Assert inside a `proptest!` body; failure fails only the current case
/// with a formatted message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err(
                ::std::format!("assertion failed: {}", stringify!($cond)),
            );
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// Equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err(::std::format!(
                "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
                stringify!($left),
                stringify!($right),
                l,
                r
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err(::std::format!($($fmt)+));
        }
    }};
}

/// Inequality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::core::result::Result::Err(::std::format!(
                "assertion failed: `{} != {}` (both: `{:?}`)",
                stringify!($left),
                stringify!($right),
                l
            ));
        }
    }};
}

/// Skip the current case when a precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Ok(());
        }
    };
}
