//! The [`Strategy`] trait and the built-in strategies.

use crate::test_runner::TestRng;
use std::ops::Range;
use std::sync::Arc;

/// A recipe for generating random values of `Self::Value`.
pub trait Strategy {
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<R, F: Fn(Self::Value) -> R>(self, f: F) -> PropMap<Self, F>
    where
        Self: Sized,
    {
        PropMap {
            inner: self,
            f: Arc::new(f),
        }
    }

    /// Generate a value, then generate from a strategy derived from it.
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> PropFlatMap<Self, F>
    where
        Self: Sized,
    {
        PropFlatMap {
            inner: self,
            f: Arc::new(f),
        }
    }

    /// Discard generated values failing the predicate (regenerates up to a
    /// bounded number of attempts).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        whence: &'static str,
        f: F,
    ) -> PropFilter<Self, F>
    where
        Self: Sized,
    {
        PropFilter {
            inner: self,
            whence,
            f: Arc::new(f),
        }
    }
}

/// Always yields a clone of the wrapped value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub struct PropMap<S, F: ?Sized> {
    inner: S,
    f: Arc<F>,
}

impl<S: Clone, F: ?Sized> Clone for PropMap<S, F> {
    fn clone(&self) -> Self {
        PropMap {
            inner: self.inner.clone(),
            f: Arc::clone(&self.f),
        }
    }
}

impl<S: Strategy, R, F: Fn(S::Value) -> R + ?Sized> Strategy for PropMap<S, F> {
    type Value = R;
    fn generate(&self, rng: &mut TestRng) -> R {
        (self.f)(self.inner.generate(rng))
    }
}

pub struct PropFlatMap<S, F: ?Sized> {
    inner: S,
    f: Arc<F>,
}

impl<S: Clone, F: ?Sized> Clone for PropFlatMap<S, F> {
    fn clone(&self) -> Self {
        PropFlatMap {
            inner: self.inner.clone(),
            f: Arc::clone(&self.f),
        }
    }
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2 + ?Sized> Strategy for PropFlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

pub struct PropFilter<S, F: ?Sized> {
    inner: S,
    whence: &'static str,
    f: Arc<F>,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool + ?Sized> Strategy for PropFilter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter `{}` rejected 1000 candidates", self.whence);
    }
}

// ---- integer and float ranges -------------------------------------------

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let unit = (rng.next_u64() >> 11) as $t / (1u64 << 53) as $t;
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

// ---- tuples --------------------------------------------------------------

macro_rules! tuple_strategy {
    ($(($($s:ident.$idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

// ---- any -----------------------------------------------------------------

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> u64 {
        rng.next_u64()
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> u32 {
        rng.next_u64() as u32
    }
}

impl Arbitrary for u16 {
    fn arbitrary(rng: &mut TestRng) -> u16 {
        rng.next_u64() as u16
    }
}

impl Arbitrary for u8 {
    fn arbitrary(rng: &mut TestRng) -> u8 {
        rng.next_u64() as u8
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy returned by [`any`].
#[derive(Clone, Copy, Debug, Default)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `proptest::prelude::any::<T>()`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}
