//! Minimal in-tree replacement for the `bytes` crate.
//!
//! The build environment has no network access to crates.io; this shim
//! provides the little-endian cursor/builder subset the graph I/O layer
//! uses: `Bytes` (an owning read cursor), `BytesMut` (an append buffer),
//! and the `Buf` / `BufMut` traits.

use std::ops::{Deref, DerefMut};

/// Read-side cursor trait (`bytes::Buf` subset).
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// Advance the cursor.
    fn advance(&mut self, cnt: usize);
    /// Peek at the unread bytes.
    fn chunk(&self) -> &[u8];

    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        b.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        u32::from_le_bytes(b)
    }

    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        b.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        u64::from_le_bytes(b)
    }
}

/// Write-side builder trait (`bytes::BufMut` subset).
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

/// An owned, cheaply sliceable byte buffer with a read cursor.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
    pos: usize,
}

impl Bytes {
    /// A view of the given subrange of the *unread* bytes.
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        Bytes {
            data: self.chunk()[range].to_vec(),
            pos: 0,
        }
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes { data, pos: 0 }
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Self {
        Bytes {
            data: data.to_vec(),
            pos: 0,
        }
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }
    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.remaining(), "advance past end of buffer");
        self.pos += cnt;
    }
    fn chunk(&self) -> &[u8] {
        &self.data[self.pos..]
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.chunk()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.chunk()
    }
}

/// A growable byte buffer (`bytes::BytesMut` subset).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> Self {
        BytesMut::default()
    }

    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Freeze into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes {
            data: self.data,
            pos: 0,
        }
    }
}

impl From<&[u8]> for BytesMut {
    fn from(src: &[u8]) -> Self {
        BytesMut { data: src.to_vec() }
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_le() {
        let mut b = BytesMut::with_capacity(12);
        b.put_u32_le(0xDEADBEEF);
        b.put_u64_le(42);
        let mut bytes = b.freeze();
        assert_eq!(bytes.remaining(), 12);
        assert_eq!(bytes.get_u32_le(), 0xDEADBEEF);
        assert_eq!(bytes.get_u64_le(), 42);
        assert_eq!(bytes.remaining(), 0);
    }

    #[test]
    fn slice_and_index() {
        let bytes = Bytes::from(vec![1u8, 2, 3, 4]);
        assert_eq!(&bytes[..], &[1, 2, 3, 4]);
        let s = bytes.slice(1..3);
        assert_eq!(&s[..], &[2, 3]);
        let mut m = BytesMut::from(&bytes[..]);
        m[0] = 9;
        assert_eq!(&m.freeze()[..], &[9, 2, 3, 4]);
    }
}
