//! The execution engine: a fixed-size FIFO thread pool plus a scoped
//! dispatch primitive ([`run_scoped`]) that parallel iterators drive.

use std::any::Any;
use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

struct Shared {
    size: usize,
    queue: Mutex<VecDeque<Job>>,
    available: Condvar,
    shutdown: AtomicBool,
}

impl Shared {
    fn push(&self, job: Job) {
        self.queue.lock().unwrap().push_back(job);
        self.available.notify_one();
    }

    fn try_pop(&self) -> Option<Job> {
        self.queue.lock().unwrap().pop_front()
    }
}

/// A pool of worker threads; `install` scopes parallel calls to it.
pub struct ThreadPool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

/// Error type returned by [`ThreadPoolBuilder::build`] (never produced in
/// practice by this shim; it exists for API compatibility).
#[derive(Debug)]
pub struct ThreadPoolBuildError(String);

impl fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "thread pool build error: {}", self.0)
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    pub fn new() -> Self {
        ThreadPoolBuilder { num_threads: 0 }
    }

    /// Worker count; `0` means the number of available cores.
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let size = if self.num_threads == 0 {
            default_parallelism()
        } else {
            self.num_threads
        };
        Ok(ThreadPool::with_size(size))
    }
}

fn default_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

impl ThreadPool {
    fn with_size(size: usize) -> ThreadPool {
        let shared = Arc::new(Shared {
            size,
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        // `size - 1` workers: the installing/calling thread acts as the
        // remaining participant (it helps drain the queue while waiting).
        let workers = (1..size)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(shared))
            })
            .collect();
        ThreadPool { shared, workers }
    }

    /// Current pool size (worker threads + the installing thread).
    pub fn current_num_threads(&self) -> usize {
        self.shared.size
    }

    /// Run `f` with this pool as the target of all parallel calls.
    pub fn install<R: Send>(&self, f: impl FnOnce() -> R + Send) -> R {
        CURRENT.with(|cur| {
            let prev = cur.replace(Some(Arc::clone(&self.shared)));
            let out = f();
            cur.replace(prev);
            out
        })
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.available.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

fn worker_loop(shared: Arc<Shared>) {
    IN_WORKER.with(|w| w.set(true));
    CURRENT.with(|cur| cur.replace(Some(Arc::clone(&shared))));
    loop {
        let job = {
            let mut q = shared.queue.lock().unwrap();
            loop {
                if let Some(job) = q.pop_front() {
                    break Some(job);
                }
                if shared.shutdown.load(Ordering::SeqCst) {
                    break None;
                }
                q = shared.available.wait(q).unwrap();
            }
        };
        match job {
            Some(job) => job(),
            None => return,
        }
    }
}

thread_local! {
    static CURRENT: std::cell::RefCell<Option<Arc<Shared>>> =
        const { std::cell::RefCell::new(None) };
    static IN_WORKER: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

fn global() -> &'static Arc<Shared> {
    static GLOBAL: OnceLock<ThreadPool> = OnceLock::new();
    &GLOBAL
        .get_or_init(|| ThreadPool::with_size(default_parallelism()))
        .shared
}

fn current_shared() -> Arc<Shared> {
    CURRENT.with(|cur| match &*cur.borrow() {
        Some(s) => Arc::clone(s),
        None => Arc::clone(global()),
    })
}

/// Number of threads parallel calls on this thread will use.
pub fn current_num_threads() -> usize {
    CURRENT.with(|cur| match &*cur.borrow() {
        Some(s) => s.size,
        None => global().size,
    })
}

/// Completion latch shared between the dispatching thread and workers.
struct Latch {
    remaining: Mutex<usize>,
    done: Condvar,
    panic: Mutex<Option<Box<dyn Any + Send>>>,
}

impl Latch {
    fn record(&self, result: std::thread::Result<()>) {
        if let Err(payload) = result {
            self.panic.lock().unwrap().get_or_insert(payload);
        }
        let mut rem = self.remaining.lock().unwrap();
        *rem -= 1;
        if *rem == 0 {
            self.done.notify_all();
        }
    }

    fn wait(&self) {
        let mut rem = self.remaining.lock().unwrap();
        while *rem > 0 {
            rem = self.done.wait(rem).unwrap();
        }
    }
}

/// Run a batch of independent tasks, in parallel when a pool with spare
/// workers is current, inline otherwise. Returns after every task has
/// finished; re-throws the first panic observed.
///
/// The *values* computed by the tasks never depend on which path executes
/// them — callers encode any order-sensitivity in the task list itself.
pub(crate) fn run_scoped<'scope>(tasks: Vec<Box<dyn FnOnce() + Send + 'scope>>) {
    let inline = IN_WORKER.with(|w| w.get());
    let shared = current_shared();
    if inline || shared.size <= 1 || tasks.len() <= 1 {
        for t in tasks {
            t();
        }
        return;
    }

    let latch = Arc::new(Latch {
        remaining: Mutex::new(tasks.len()),
        done: Condvar::new(),
        panic: Mutex::new(None),
    });

    for task in tasks {
        let latch = Arc::clone(&latch);
        let job: Box<dyn FnOnce() + Send + 'scope> = Box::new(move || {
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(task));
            latch.record(result);
        });
        // SAFETY: `run_scoped` does not return until the latch counts every
        // task as finished, so the borrowed environment outlives all jobs.
        let job: Job = unsafe { std::mem::transmute(job) };
        shared.push(job);
    }

    // Help drain the queue while waiting so a caller outside the pool's
    // worker set still contributes a core and small pools make progress.
    IN_WORKER.with(|w| {
        let prev = w.replace(true);
        while let Some(job) = shared.try_pop() {
            job();
        }
        w.set(prev);
    });
    latch.wait();

    let payload = latch.panic.lock().unwrap().take();
    if let Some(p) = payload {
        std::panic::resume_unwind(p);
    }
}
