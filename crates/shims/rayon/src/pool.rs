//! The execution engine: a fixed-size thread pool plus the scoped
//! dispatch primitive ([`run_indexed`]) that parallel iterators drive.
//!
//! Dispatch uses **atomic chunk claiming**, not a per-task queue: a
//! parallel call publishes one *runner* job per worker, and every runner
//! claims piece indices from a shared atomic counter until they run out.
//! The mutex-protected FIFO is touched once per runner (≈ once per
//! worker) instead of once per piece, so many small or skewed pieces —
//! e.g. fused aggregation tasks whose cost follows the per-row degree —
//! never convoy on the queue lock; the only shared write on the claim
//! path is one `fetch_add`.

use std::any::Any;
use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

struct Shared {
    size: usize,
    queue: Mutex<VecDeque<Job>>,
    available: Condvar,
    shutdown: AtomicBool,
}

impl Shared {
    fn push(&self, job: Job) {
        self.queue.lock().unwrap().push_back(job);
        self.available.notify_one();
    }

    fn try_pop(&self) -> Option<Job> {
        self.queue.lock().unwrap().pop_front()
    }
}

/// A pool of worker threads; `install` scopes parallel calls to it.
pub struct ThreadPool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

/// Error type returned by [`ThreadPoolBuilder::build`] (never produced in
/// practice by this shim; it exists for API compatibility).
#[derive(Debug)]
pub struct ThreadPoolBuildError(String);

impl fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "thread pool build error: {}", self.0)
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    pub fn new() -> Self {
        ThreadPoolBuilder { num_threads: 0 }
    }

    /// Worker count; `0` means the number of available cores.
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let size = if self.num_threads == 0 {
            default_parallelism()
        } else {
            self.num_threads
        };
        Ok(ThreadPool::with_size(size))
    }
}

fn default_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

impl ThreadPool {
    fn with_size(size: usize) -> ThreadPool {
        let shared = Arc::new(Shared {
            size,
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        // `size - 1` workers: the installing/calling thread acts as the
        // remaining participant (it helps drain the queue while waiting).
        let workers = (1..size)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(shared))
            })
            .collect();
        ThreadPool { shared, workers }
    }

    /// Current pool size (worker threads + the installing thread).
    pub fn current_num_threads(&self) -> usize {
        self.shared.size
    }

    /// Run `f` with this pool as the target of all parallel calls.
    pub fn install<R: Send>(&self, f: impl FnOnce() -> R + Send) -> R {
        CURRENT.with(|cur| {
            let prev = cur.replace(Some(Arc::clone(&self.shared)));
            let out = f();
            cur.replace(prev);
            out
        })
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.available.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

fn worker_loop(shared: Arc<Shared>) {
    IN_WORKER.with(|w| w.set(true));
    CURRENT.with(|cur| cur.replace(Some(Arc::clone(&shared))));
    loop {
        let job = {
            let mut q = shared.queue.lock().unwrap();
            loop {
                if let Some(job) = q.pop_front() {
                    break Some(job);
                }
                if shared.shutdown.load(Ordering::SeqCst) {
                    break None;
                }
                q = shared.available.wait(q).unwrap();
            }
        };
        match job {
            Some(job) => job(),
            None => return,
        }
    }
}

thread_local! {
    static CURRENT: std::cell::RefCell<Option<Arc<Shared>>> =
        const { std::cell::RefCell::new(None) };
    static IN_WORKER: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

fn global() -> &'static Arc<Shared> {
    static GLOBAL: OnceLock<ThreadPool> = OnceLock::new();
    &GLOBAL
        .get_or_init(|| ThreadPool::with_size(default_parallelism()))
        .shared
}

fn current_shared() -> Arc<Shared> {
    CURRENT.with(|cur| match &*cur.borrow() {
        Some(s) => Arc::clone(s),
        None => Arc::clone(global()),
    })
}

/// Number of threads parallel calls on this thread will use.
pub fn current_num_threads() -> usize {
    CURRENT.with(|cur| match &*cur.borrow() {
        Some(s) => s.size,
        None => global().size,
    })
}

/// Completion latch shared between the dispatching thread and workers.
struct Latch {
    remaining: Mutex<usize>,
    done: Condvar,
    panic: Mutex<Option<Box<dyn Any + Send>>>,
}

impl Latch {
    fn record(&self, result: std::thread::Result<()>) {
        if let Err(payload) = result {
            self.panic.lock().unwrap().get_or_insert(payload);
        }
        let mut rem = self.remaining.lock().unwrap();
        *rem -= 1;
        if *rem == 0 {
            self.done.notify_all();
        }
    }

    fn wait(&self) {
        let mut rem = self.remaining.lock().unwrap();
        while *rem > 0 {
            rem = self.done.wait(rem).unwrap();
        }
    }
}

/// Shared state of one indexed parallel call: the claim counter, the
/// poison flag that stops claiming after a panic, and the payload slot.
struct ClaimState {
    next: AtomicUsize,
    n: usize,
    poisoned: AtomicBool,
    latch: Latch,
}

impl ClaimState {
    /// Claim-and-run loop executed by every runner (workers and the
    /// dispatching thread alike): one `fetch_add` per piece, no lock.
    fn run_claims(&self, task: &(dyn Fn(usize) + Sync)) {
        loop {
            if self.poisoned.load(Ordering::Relaxed) {
                return;
            }
            let i = self.next.fetch_add(1, Ordering::Relaxed);
            if i >= self.n {
                return;
            }
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| task(i)));
            if let Err(payload) = result {
                self.poisoned.store(true, Ordering::Relaxed);
                self.latch.panic.lock().unwrap().get_or_insert(payload);
            }
        }
    }
}

/// Run `task(0..n)` across the current pool by atomic chunk claiming, in
/// parallel when a pool with spare workers is current, inline otherwise.
/// Returns after every claimed index has finished; re-throws the first
/// panic observed. After a panic the batch is poisoned: indices not yet
/// claimed are skipped (in-flight ones still complete), so side effects
/// of a panicked batch may be partial — callers must not rely on the
/// remaining pieces having run, and none of this workspace's consumers
/// observe results of a panicked parallel call.
///
/// The *values* computed per index never depend on which thread runs it —
/// callers encode any order-sensitivity in the index space itself.
pub(crate) fn run_indexed<'scope, F>(n: usize, task: F)
where
    F: Fn(usize) + Sync + 'scope,
{
    let inline = IN_WORKER.with(|w| w.get());
    let shared = current_shared();
    if inline || shared.size <= 1 || n <= 1 {
        for i in 0..n {
            task(i);
        }
        return;
    }

    let runners = (shared.size - 1).min(n);
    let state = Arc::new(ClaimState {
        next: AtomicUsize::new(0),
        n,
        poisoned: AtomicBool::new(false),
        latch: Latch {
            remaining: Mutex::new(runners),
            done: Condvar::new(),
            panic: Mutex::new(None),
        },
    });

    {
        // One runner job per worker; each drains the claim counter.
        let task_ref: &(dyn Fn(usize) + Sync) = &task;
        for _ in 0..runners {
            let state = Arc::clone(&state);
            let job: Box<dyn FnOnce() + Send + '_> = Box::new(move || {
                state.run_claims(task_ref);
                state.latch.record(Ok(()));
            });
            // SAFETY: `run_indexed` does not return until the latch counts
            // every runner as finished, so the borrowed environment
            // outlives all jobs.
            let job: Job = unsafe { std::mem::transmute(job) };
            shared.push(job);
        }
    }

    // The dispatching thread claims pieces too, then helps drain the
    // queue (its runner jobs, or unrelated work) while waiting so small
    // pools still make progress.
    IN_WORKER.with(|w| {
        let prev = w.replace(true);
        state.run_claims(&task);
        while let Some(job) = shared.try_pop() {
            job();
        }
        w.set(prev);
    });
    state.latch.wait();

    let payload = state.latch.panic.lock().unwrap().take();
    if let Some(p) = payload {
        std::panic::resume_unwind(p);
    }
}
