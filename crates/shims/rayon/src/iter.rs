//! Parallel iterator traits and adaptors.
//!
//! Every iterator here is *indexed*: it knows its length and can split at
//! an item boundary. The driver ([`ParallelIterator::pieces`]) cuts the
//! iterator into a piece structure derived **only from its length** (never
//! the pool size), executes pieces via [`crate::pool::run_indexed`] —
//! workers claim piece indices from an atomic counter, so skewed pieces
//! load-balance without queue-lock convoys — and combines results in
//! index order, making every consumer deterministic across thread counts,
//! including floating-point reductions.

use crate::pool::run_indexed;
use std::cell::UnsafeCell;

/// Upper bound on pieces per parallel call. Chosen to keep scheduling
/// overhead negligible while still load-balancing uneven work.
const MAX_PIECES: usize = 64;

/// An indexed, splittable parallel iterator.
pub trait ParallelIterator: Sized + Send {
    /// Item produced for consumers.
    type Item: Send;
    /// Sequential iterator a piece decays into.
    type Seq: Iterator<Item = Self::Item>;

    /// Exact number of items.
    fn len(&self) -> usize;
    /// True when there are no items.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Split into `[0, mid)` and `[mid, len)`.
    fn split_at(self, mid: usize) -> (Self, Self);
    /// Decay into a sequential iterator over all remaining items.
    fn into_seq(self) -> Self::Seq;

    // ---- adaptors ----

    fn map<R: Send, F: Fn(Self::Item) -> R + Sync + Send>(self, f: F) -> Map<Self, F> {
        Map {
            inner: self,
            f: std::sync::Arc::new(f),
        }
    }

    fn zip<B: ParallelIterator>(self, other: B) -> Zip<Self, B> {
        Zip { a: self, b: other }
    }

    fn enumerate(self) -> Enumerate<Self> {
        Enumerate {
            inner: self,
            offset: 0,
        }
    }

    fn flat_map_iter<II, F>(self, f: F) -> FlatMapIter<Self, F>
    where
        II: IntoIterator,
        II::Item: Send,
        F: Fn(Self::Item) -> II + Sync + Send,
    {
        FlatMapIter {
            inner: self,
            f: std::sync::Arc::new(f),
        }
    }

    // ---- consumers ----

    /// Cut into the deterministic piece structure.
    fn pieces(self) -> Vec<Self> {
        let n = self.len();
        let count = n.min(MAX_PIECES);
        if count <= 1 {
            return vec![self];
        }
        let mut pieces = Vec::with_capacity(count);
        let mut rest = self;
        let mut remaining = n;
        for i in 0..count - 1 {
            // Evenly sized pieces: ceil-divide what's left.
            let take = remaining.div_ceil(count - i);
            let (head, tail) = rest.split_at(take);
            pieces.push(head);
            rest = tail;
            remaining -= take;
        }
        pieces.push(rest);
        pieces
    }

    fn for_each<F: Fn(Self::Item) + Sync + Send>(self, f: F) {
        let pieces: Vec<ClaimCell<Self>> = self.pieces().into_iter().map(ClaimCell::new).collect();
        run_indexed(pieces.len(), |i| {
            // SAFETY: `run_indexed` hands out each index exactly once.
            let p = unsafe { pieces[i].take() };
            for item in p.into_seq() {
                f(item);
            }
        });
    }

    /// Collect into a container (only `Vec<T>` is supported, matching the
    /// workspace's usage). Item order is preserved.
    fn collect<C: FromParallelIterator<Self::Item>>(self) -> C {
        C::from_par_iter(self)
    }

    /// Fold every item with `op`, seeding each piece with `identity()` and
    /// combining partial results in piece order (deterministic).
    fn reduce<ID, OP>(self, identity: ID, op: OP) -> Self::Item
    where
        ID: Fn() -> Self::Item + Sync + Send,
        OP: Fn(Self::Item, Self::Item) -> Self::Item + Sync + Send,
    {
        let partials = run_ordered(self, |seq| {
            let mut acc = identity();
            for item in seq {
                acc = op(acc, item);
            }
            acc
        });
        let mut acc = identity();
        for p in partials {
            acc = op(acc, p);
        }
        acc
    }

    fn sum<S>(self) -> S
    where
        S: std::iter::Sum<Self::Item> + std::iter::Sum<S> + Send,
    {
        run_ordered(self, |seq| seq.sum::<S>()).into_iter().sum()
    }

    fn count(self) -> usize {
        run_ordered(self, |seq| seq.count()).into_iter().sum()
    }
}

/// A one-shot slot claimed by exactly one `run_indexed` index: the unique
/// claim (a `fetch_add` result) is what makes the unsynchronised interior
/// access sound, and the `run_indexed` completion latch publishes all
/// writes back to the dispatching thread.
struct ClaimCell<T>(UnsafeCell<Option<T>>);

// SAFETY: at most one thread touches a given cell (unique index claim),
// and the latch orders those accesses before the dispatcher reads.
unsafe impl<T: Send> Sync for ClaimCell<T> {}

impl<T> ClaimCell<T> {
    fn new(v: T) -> Self {
        ClaimCell(UnsafeCell::new(Some(v)))
    }

    fn empty() -> Self {
        ClaimCell(UnsafeCell::new(None))
    }

    /// # Safety
    /// Must be called at most once per cell, from the unique claimant.
    unsafe fn take(&self) -> T {
        (*self.0.get()).take().expect("claim cell taken twice")
    }

    /// # Safety
    /// Must be called at most once per cell, from the unique claimant.
    unsafe fn put(&self, v: T) {
        *self.0.get() = Some(v);
    }

    fn into_inner(self) -> Option<T> {
        self.0.into_inner()
    }
}

/// Run one closure per piece, returning per-piece results in piece order.
fn run_ordered<I: ParallelIterator, R: Send>(
    iter: I,
    per_piece: impl Fn(I::Seq) -> R + Sync,
) -> Vec<R> {
    let pieces: Vec<ClaimCell<I>> = iter.pieces().into_iter().map(ClaimCell::new).collect();
    let slots: Vec<ClaimCell<R>> = (0..pieces.len()).map(|_| ClaimCell::empty()).collect();
    run_indexed(pieces.len(), |i| {
        // SAFETY: `run_indexed` hands out each index exactly once, so
        // piece i is taken once and slot i written once.
        let p = unsafe { pieces[i].take() };
        let r = per_piece(p.into_seq());
        unsafe { slots[i].put(r) };
    });
    slots
        .into_iter()
        .map(|s| s.into_inner().expect("piece result missing"))
        .collect()
}

/// Conversion trait mirroring `rayon::iter::FromParallelIterator`.
pub trait FromParallelIterator<T: Send>: Sized {
    fn from_par_iter<I: ParallelIterator<Item = T>>(iter: I) -> Self;
}

impl<T: Send> FromParallelIterator<T> for Vec<T> {
    fn from_par_iter<I: ParallelIterator<Item = T>>(iter: I) -> Self {
        let chunks = run_ordered(iter, |seq| seq.collect::<Vec<T>>());
        let mut out = Vec::with_capacity(chunks.iter().map(Vec::len).sum());
        for c in chunks {
            out.extend(c);
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Adaptors
// ---------------------------------------------------------------------------

pub struct Map<I, F: ?Sized> {
    inner: I,
    f: std::sync::Arc<F>,
}

pub struct MapSeq<S, F: ?Sized> {
    inner: S,
    f: std::sync::Arc<F>,
}

impl<S: Iterator, R, F: Fn(S::Item) -> R + ?Sized> Iterator for MapSeq<S, F> {
    type Item = R;
    fn next(&mut self) -> Option<R> {
        self.inner.next().map(|x| (self.f)(x))
    }
}

impl<I, R, F> ParallelIterator for Map<I, F>
where
    I: ParallelIterator,
    R: Send,
    F: Fn(I::Item) -> R + Sync + Send,
{
    type Item = R;
    type Seq = MapSeq<I::Seq, F>;

    fn len(&self) -> usize {
        self.inner.len()
    }
    fn split_at(self, mid: usize) -> (Self, Self) {
        let (l, r) = self.inner.split_at(mid);
        (
            Map {
                inner: l,
                f: std::sync::Arc::clone(&self.f),
            },
            Map {
                inner: r,
                f: self.f,
            },
        )
    }
    fn into_seq(self) -> Self::Seq {
        MapSeq {
            inner: self.inner.into_seq(),
            f: self.f,
        }
    }
}

pub struct Zip<A, B> {
    a: A,
    b: B,
}

impl<A: ParallelIterator, B: ParallelIterator> ParallelIterator for Zip<A, B> {
    type Item = (A::Item, B::Item);
    type Seq = std::iter::Zip<A::Seq, B::Seq>;

    fn len(&self) -> usize {
        self.a.len().min(self.b.len())
    }
    fn split_at(self, mid: usize) -> (Self, Self) {
        let (al, ar) = self.a.split_at(mid);
        let (bl, br) = self.b.split_at(mid);
        (Zip { a: al, b: bl }, Zip { a: ar, b: br })
    }
    fn into_seq(self) -> Self::Seq {
        self.a.into_seq().zip(self.b.into_seq())
    }
}

pub struct Enumerate<I> {
    inner: I,
    offset: usize,
}

pub struct EnumerateSeq<S> {
    inner: S,
    next: usize,
}

impl<S: Iterator> Iterator for EnumerateSeq<S> {
    type Item = (usize, S::Item);
    fn next(&mut self) -> Option<Self::Item> {
        let item = self.inner.next()?;
        let i = self.next;
        self.next += 1;
        Some((i, item))
    }
}

impl<I: ParallelIterator> ParallelIterator for Enumerate<I> {
    type Item = (usize, I::Item);
    type Seq = EnumerateSeq<I::Seq>;

    fn len(&self) -> usize {
        self.inner.len()
    }
    fn split_at(self, mid: usize) -> (Self, Self) {
        let (l, r) = self.inner.split_at(mid);
        (
            Enumerate {
                inner: l,
                offset: self.offset,
            },
            Enumerate {
                inner: r,
                offset: self.offset + mid,
            },
        )
    }
    fn into_seq(self) -> Self::Seq {
        EnumerateSeq {
            inner: self.inner.into_seq(),
            next: self.offset,
        }
    }
}

pub struct FlatMapIter<I, F: ?Sized> {
    inner: I,
    f: std::sync::Arc<F>,
}

pub struct FlatMapSeq<S, II: IntoIterator, F: ?Sized> {
    inner: S,
    cur: Option<II::IntoIter>,
    f: std::sync::Arc<F>,
}

impl<S, II, F> Iterator for FlatMapSeq<S, II, F>
where
    S: Iterator,
    II: IntoIterator,
    F: Fn(S::Item) -> II + ?Sized,
{
    type Item = II::Item;
    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if let Some(cur) = &mut self.cur {
                if let Some(item) = cur.next() {
                    return Some(item);
                }
            }
            self.cur = Some((self.f)(self.inner.next()?).into_iter());
        }
    }
}

impl<I, II, F> ParallelIterator for FlatMapIter<I, F>
where
    I: ParallelIterator,
    II: IntoIterator,
    II::Item: Send,
    II::IntoIter: Send,
    F: Fn(I::Item) -> II + Sync + Send,
{
    type Item = II::Item;
    type Seq = FlatMapSeq<I::Seq, II, F>;

    // `len` counts *outer* items; pieces therefore split on outer
    // boundaries, which is exactly rayon's `flat_map_iter` behaviour.
    fn len(&self) -> usize {
        self.inner.len()
    }
    fn split_at(self, mid: usize) -> (Self, Self) {
        let (l, r) = self.inner.split_at(mid);
        (
            FlatMapIter {
                inner: l,
                f: std::sync::Arc::clone(&self.f),
            },
            FlatMapIter {
                inner: r,
                f: self.f,
            },
        )
    }
    fn into_seq(self) -> Self::Seq {
        FlatMapSeq {
            inner: self.inner.into_seq(),
            cur: None,
            f: self.f,
        }
    }
}

// ---------------------------------------------------------------------------
// Base producers
// ---------------------------------------------------------------------------

/// Parallel iterator over an integer range.
pub struct RangeIter<T> {
    start: T,
    end: T,
}

macro_rules! range_impl {
    ($($t:ty),*) => {$(
        impl ParallelIterator for RangeIter<$t> {
            type Item = $t;
            type Seq = std::ops::Range<$t>;

            fn len(&self) -> usize {
                (self.end.saturating_sub(self.start)) as usize
            }
            fn split_at(self, mid: usize) -> (Self, Self) {
                let m = self.start + mid as $t;
                (
                    RangeIter { start: self.start, end: m },
                    RangeIter { start: m, end: self.end },
                )
            }
            fn into_seq(self) -> Self::Seq {
                self.start..self.end
            }
        }

        impl IntoParallelIterator for std::ops::Range<$t> {
            type Iter = RangeIter<$t>;
            type Item = $t;
            fn into_par_iter(self) -> Self::Iter {
                RangeIter { start: self.start, end: self.end.max(self.start) }
            }
        }
    )*};
}

range_impl!(u32, u64, usize);

/// Parallel iterator over `&[T]`.
pub struct SliceIter<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync + 'a> ParallelIterator for SliceIter<'a, T> {
    type Item = &'a T;
    type Seq = std::slice::Iter<'a, T>;

    fn len(&self) -> usize {
        self.slice.len()
    }
    fn split_at(self, mid: usize) -> (Self, Self) {
        let (l, r) = self.slice.split_at(mid);
        (SliceIter { slice: l }, SliceIter { slice: r })
    }
    fn into_seq(self) -> Self::Seq {
        self.slice.iter()
    }
}

/// Parallel iterator over `&mut [T]`.
pub struct SliceIterMut<'a, T> {
    slice: &'a mut [T],
}

impl<'a, T: Send + 'a> ParallelIterator for SliceIterMut<'a, T> {
    type Item = &'a mut T;
    type Seq = std::slice::IterMut<'a, T>;

    fn len(&self) -> usize {
        self.slice.len()
    }
    fn split_at(self, mid: usize) -> (Self, Self) {
        let (l, r) = self.slice.split_at_mut(mid);
        (SliceIterMut { slice: l }, SliceIterMut { slice: r })
    }
    fn into_seq(self) -> Self::Seq {
        self.slice.iter_mut()
    }
}

/// `IntoParallelIterator` mirror (ranges and explicit conversions).
pub trait IntoParallelIterator {
    type Iter: ParallelIterator<Item = Self::Item>;
    type Item: Send;
    fn into_par_iter(self) -> Self::Iter;
}

/// `.par_iter()` on slices and `Vec`s.
pub trait IntoParallelRefIterator<'data> {
    type Iter: ParallelIterator<Item = Self::Item>;
    type Item: Send + 'data;
    fn par_iter(&'data self) -> Self::Iter;
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
    type Iter = SliceIter<'data, T>;
    type Item = &'data T;
    fn par_iter(&'data self) -> Self::Iter {
        SliceIter { slice: self }
    }
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
    type Iter = SliceIter<'data, T>;
    type Item = &'data T;
    fn par_iter(&'data self) -> Self::Iter {
        SliceIter { slice: self }
    }
}

/// `.par_iter_mut()` on slices and `Vec`s.
pub trait IntoParallelRefMutIterator<'data> {
    type Iter: ParallelIterator<Item = Self::Item>;
    type Item: Send + 'data;
    fn par_iter_mut(&'data mut self) -> Self::Iter;
}

impl<'data, T: Send + 'data> IntoParallelRefMutIterator<'data> for [T] {
    type Iter = SliceIterMut<'data, T>;
    type Item = &'data mut T;
    fn par_iter_mut(&'data mut self) -> Self::Iter {
        SliceIterMut { slice: self }
    }
}

impl<'data, T: Send + 'data> IntoParallelRefMutIterator<'data> for Vec<T> {
    type Iter = SliceIterMut<'data, T>;
    type Item = &'data mut T;
    fn par_iter_mut(&'data mut self) -> Self::Iter {
        SliceIterMut { slice: self }
    }
}

/// Parallel mutable-slice operations (`rayon::slice::ParallelSliceMut`).
pub trait ParallelSliceMut<T: Send> {
    fn as_parallel_slice_mut(&mut self) -> &mut [T];

    fn par_chunks_mut(&mut self, chunk_size: usize) -> crate::slice::ChunksMut<'_, T> {
        assert!(chunk_size != 0, "chunk size must be non-zero");
        crate::slice::ChunksMut {
            slice: self.as_parallel_slice_mut(),
            size: chunk_size,
        }
    }

    fn par_chunks_exact_mut(&mut self, chunk_size: usize) -> crate::slice::ChunksExactMut<'_, T> {
        assert!(chunk_size != 0, "chunk size must be non-zero");
        let s = self.as_parallel_slice_mut();
        let full = s.len() / chunk_size * chunk_size;
        crate::slice::ChunksExactMut {
            slice: &mut s[..full],
            size: chunk_size,
        }
    }

    /// Sequential sort (adequate for this workspace's builder-time sorts).
    fn par_sort_unstable(&mut self)
    where
        T: Ord,
    {
        self.as_parallel_slice_mut().sort_unstable();
    }
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn as_parallel_slice_mut(&mut self) -> &mut [T] {
        self
    }
}
