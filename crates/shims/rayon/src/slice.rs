//! Named parallel slice iterators (`rayon::slice::*`).

use crate::iter::ParallelIterator;

/// Parallel version of `slice::chunks_mut` (ragged final chunk allowed).
pub struct ChunksMut<'a, T> {
    pub(crate) slice: &'a mut [T],
    pub(crate) size: usize,
}

impl<'a, T: Send + 'a> ParallelIterator for ChunksMut<'a, T> {
    type Item = &'a mut [T];
    type Seq = std::slice::ChunksMut<'a, T>;

    fn len(&self) -> usize {
        self.slice.len().div_ceil(self.size)
    }
    fn split_at(self, mid: usize) -> (Self, Self) {
        let at = (mid * self.size).min(self.slice.len());
        let (l, r) = self.slice.split_at_mut(at);
        (
            ChunksMut {
                slice: l,
                size: self.size,
            },
            ChunksMut {
                slice: r,
                size: self.size,
            },
        )
    }
    fn into_seq(self) -> Self::Seq {
        self.slice.chunks_mut(self.size)
    }
}

/// Parallel version of `slice::chunks_exact_mut` (trailing remainder is
/// dropped, matching the std semantics).
pub struct ChunksExactMut<'a, T> {
    pub(crate) slice: &'a mut [T],
    pub(crate) size: usize,
}

impl<'a, T: Send + 'a> ParallelIterator for ChunksExactMut<'a, T> {
    type Item = &'a mut [T];
    type Seq = std::slice::ChunksExactMut<'a, T>;

    fn len(&self) -> usize {
        self.slice.len() / self.size
    }
    fn split_at(self, mid: usize) -> (Self, Self) {
        let at = (mid * self.size).min(self.slice.len());
        let (l, r) = self.slice.split_at_mut(at);
        (
            ChunksExactMut {
                slice: l,
                size: self.size,
            },
            ChunksExactMut {
                slice: r,
                size: self.size,
            },
        )
    }
    fn into_seq(self) -> Self::Seq {
        self.slice.chunks_exact_mut(self.size)
    }
}
