//! Minimal in-tree replacement for the `rayon` crate.
//!
//! The build environment has no network access to crates.io, so this shim
//! provides the exact subset of rayon's API the workspace uses: slice/range
//! parallel iterators (`par_iter`, `par_iter_mut`, `par_chunks_mut`,
//! `par_chunks_exact_mut`, `into_par_iter`), the `map` / `zip` / `enumerate`
//! / `flat_map_iter` adaptors, the `for_each` / `collect` / `reduce`
//! consumers, plus `ThreadPool` / `ThreadPoolBuilder` / `install` /
//! `current_num_threads`.
//!
//! Semantics the workspace relies on and this shim guarantees:
//!
//! * **Thread-count invariance.** Work is split into a piece structure that
//!   depends only on the input length — never on the pool size — and pieces
//!   are combined in index order, so floating-point results are bit-equal
//!   across pool sizes.
//! * **Panic propagation.** A panic inside a parallel closure is caught on
//!   the worker, carried back, and re-thrown on the calling thread.
//! * **No deadlocks under nesting.** Parallel calls issued from inside a
//!   worker task run inline (sequentially) instead of re-entering the pool.
//!
//! Scheduling is deliberately simple (a mutex-protected FIFO instead of
//! work stealing): every parallel region in this workspace enqueues a small
//! number of coarse pieces, for which a lock-based queue is not a
//! bottleneck.

mod iter;
mod pool;

pub mod slice;

pub use pool::{current_num_threads, ThreadPool, ThreadPoolBuildError, ThreadPoolBuilder};

pub mod prelude {
    pub use crate::iter::{
        IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator,
        ParallelIterator, ParallelSliceMut,
    };
}

pub use iter::{
    IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator, ParallelIterator,
    ParallelSliceMut,
};
