//! Tests of the atomic chunk-claiming dispatch: every index runs exactly
//! once on multi-thread pools, order-sensitive consumers stay
//! deterministic across thread counts, skewed workloads complete, and
//! panics propagate.

use rayon::prelude::*;
use rayon::ThreadPoolBuilder;
use std::sync::atomic::{AtomicUsize, Ordering};

fn pool(threads: usize) -> rayon::ThreadPool {
    ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .unwrap()
}

#[test]
fn every_index_claimed_exactly_once() {
    for threads in [1, 2, 8] {
        let n = 10_000usize;
        let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        pool(threads).install(|| {
            (0..n).into_par_iter().for_each(|i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
        });
        assert!(
            hits.iter().all(|h| h.load(Ordering::Relaxed) == 1),
            "threads={threads}: some index ran zero or multiple times"
        );
    }
}

#[test]
fn chunks_cover_slice_exactly_once() {
    let mut data = vec![0u32; 4097];
    pool(8).install(|| {
        data.par_chunks_mut(17).for_each(|chunk| {
            for x in chunk {
                *x += 1;
            }
        });
    });
    assert!(data.iter().all(|&x| x == 1));
}

#[test]
fn collect_and_sum_are_thread_count_invariant() {
    let run = |threads: usize| {
        pool(threads).install(|| {
            let v: Vec<usize> = (0..1000usize).into_par_iter().map(|i| i * 3).collect();
            let s: f64 = (0..1000usize)
                .into_par_iter()
                .map(|i| (i as f64) * 0.1)
                .sum();
            (v, s)
        })
    };
    let (v1, s1) = run(1);
    let (v8, s8) = run(8);
    assert_eq!(v1, v8, "collect order must not depend on thread count");
    // Bit-equal: the piece structure (and thus reduction order) is a
    // function of the length alone.
    assert_eq!(s1.to_bits(), s8.to_bits());
    assert_eq!(v1[999], 2997);
}

#[test]
fn skewed_work_completes() {
    // Degree-skew-like load: a few indices are much heavier than the
    // rest; claiming must still cover everything.
    let total = AtomicUsize::new(0);
    pool(4).install(|| {
        (0..512usize).into_par_iter().for_each(|i| {
            let spin = if i % 127 == 0 { 20_000 } else { 10 };
            let mut acc = 0u64;
            for k in 0..spin {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(k);
            }
            std::hint::black_box(acc);
            total.fetch_add(1, Ordering::Relaxed);
        });
    });
    assert_eq!(total.load(Ordering::Relaxed), 512);
}

#[test]
fn panic_in_one_piece_propagates() {
    let result = std::panic::catch_unwind(|| {
        pool(4).install(|| {
            (0..1000usize).into_par_iter().for_each(|i| {
                if i == 637 {
                    panic!("boom at {i}");
                }
            });
        });
    });
    assert!(result.is_err(), "panic must cross the parallel call");
}

#[test]
fn nested_parallel_calls_run_inline() {
    // A parallel call from inside a worker must not deadlock.
    let total = AtomicUsize::new(0);
    pool(2).install(|| {
        (0..8usize).into_par_iter().for_each(|_| {
            (0..8usize).into_par_iter().for_each(|_| {
                total.fetch_add(1, Ordering::Relaxed);
            });
        });
    });
    assert_eq!(total.load(Ordering::Relaxed), 64);
}
