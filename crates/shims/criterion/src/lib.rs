//! Minimal in-tree replacement for the `criterion` benchmark harness.
//!
//! The build environment has no network access to crates.io; this shim
//! keeps the `criterion_group!` / `criterion_main!` / `BenchmarkGroup`
//! surface the workspace's benches use, and implements a simple but honest
//! measurement loop: per benchmark it warms up, sizes an inner batch so a
//! sample takes ≳ `TARGET_SAMPLE_SECS`, records `sample_size` samples, and
//! reports min / median / mean per-iteration time plus throughput.
//!
//! Results are printed as one self-contained line per benchmark:
//!
//! ```text
//! gemm/nn/1000x512x256  median 12.345 ms  mean 12.401 ms  min 12.100 ms  (2.12 Gelem/s)
//! ```
//!
//! When the `GSGCN_BENCH_JSON` environment variable names a file, every
//! result of the run is additionally written there as a JSON array (one
//! object per benchmark with `name`, `median_secs`, `mean_secs`,
//! `min_secs` and optional `throughput_per_sec`), so CI can archive
//! machine-readable numbers — e.g. `BENCH_fused_layer.json` for the
//! fused-vs-unfused layer comparison.

use std::sync::Mutex;
use std::time::{Duration, Instant};

const TARGET_SAMPLE_SECS: f64 = 0.025;
const MAX_TOTAL_SECS: f64 = 5.0;

/// Throughput annotation for a benchmark group.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier `function_name/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    /// Iterations per sample (sized during warm-up).
    batch: u64,
    /// Collected per-sample durations.
    samples: Vec<Duration>,
    /// Samples to record.
    target_samples: usize,
}

impl Bencher {
    /// Measure `f` repeatedly. The closure's result is black-boxed so LLVM
    /// cannot elide the work.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up & batch sizing: double the batch until one batch takes
        // at least the target sample time.
        self.batch = 1;
        loop {
            let start = Instant::now();
            for _ in 0..self.batch {
                std::hint::black_box(f());
            }
            let elapsed = start.elapsed().as_secs_f64();
            if elapsed >= TARGET_SAMPLE_SECS || self.batch >= 1 << 20 {
                break;
            }
            self.batch *= 2;
        }
        let budget = Instant::now();
        for _ in 0..self.target_samples {
            let start = Instant::now();
            for _ in 0..self.batch {
                std::hint::black_box(f());
            }
            self.samples.push(start.elapsed());
            if budget.elapsed().as_secs_f64() > MAX_TOTAL_SECS {
                break;
            }
        }
    }
}

/// A named group of benchmarks sharing sample-count and throughput config.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    group_name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkName,
        mut f: F,
    ) -> &mut Self {
        let name = format!("{}/{}", self.group_name, id.into_benchmark_name());
        let mut bencher = Bencher {
            batch: 1,
            samples: Vec::new(),
            target_samples: self.sample_size,
        };
        f(&mut bencher);
        report(&name, &bencher, self.throughput);
        let _ = &self.criterion;
        self
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    pub fn finish(&mut self) {}
}

/// Accepts both `&str` and [`BenchmarkId`] benchmark names.
pub trait IntoBenchmarkName {
    fn into_benchmark_name(self) -> String;
}

impl IntoBenchmarkName for &str {
    fn into_benchmark_name(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkName for String {
    fn into_benchmark_name(self) -> String {
        self
    }
}

impl IntoBenchmarkName for BenchmarkId {
    fn into_benchmark_name(self) -> String {
        self.name
    }
}

/// One finished benchmark, kept for the optional JSON dump.
struct BenchRecord {
    name: String,
    median_secs: f64,
    mean_secs: f64,
    min_secs: f64,
    /// Tail latency, only for distribution records
    /// ([`record_latency_distribution`]).
    p99_secs: Option<f64>,
    throughput_per_sec: Option<f64>,
    tags: Vec<(String, String)>,
}

/// Results of the whole bench run (filled by [`report`], drained by
/// [`write_json_if_requested`] at the end of `criterion_main!`).
fn records() -> &'static Mutex<Vec<BenchRecord>> {
    static RECORDS: Mutex<Vec<BenchRecord>> = Mutex::new(Vec::new());
    &RECORDS
}

/// Context tags stamped onto every subsequently-reported record's JSON
/// object (e.g. `("kernel", "avx512")` so bench artifacts are attributable
/// to the dispatched GEMM tier). Replaced wholesale by [`set_json_tags`].
fn json_tags() -> &'static Mutex<Vec<(String, String)>> {
    static TAGS: Mutex<Vec<(String, String)>> = Mutex::new(Vec::new());
    &TAGS
}

/// Replace the set of context tags attached to every benchmark recorded
/// from now on (see [`json_tags`]). Keys become extra JSON fields, so use
/// identifier-like keys that cannot collide with the standard ones
/// (`name`, `median_secs`, `mean_secs`, `min_secs`, `throughput_per_sec`).
pub fn set_json_tags<K, V>(tags: impl IntoIterator<Item = (K, V)>)
where
    K: Into<String>,
    V: Into<String>,
{
    *json_tags().lock().unwrap() = tags
        .into_iter()
        .map(|(k, v)| (k.into(), v.into()))
        .collect();
}

/// Record a pre-measured per-operation latency distribution under the
/// standard reporting/JSON pipeline (shim extension, like
/// [`set_json_tags`]). `Bencher::iter` amortises an inner batch per
/// sample, which is right for micro-kernels but hides tail latency;
/// serving benches measure every request themselves and need p50/p99 of
/// that raw distribution. Prints one line and records `median`
/// (= p50) / `mean` / `min` plus `p99_secs`, with an optional
/// throughput annotation (e.g. node classifications per second).
pub fn record_latency_distribution(
    name: &str,
    latencies_secs: &[f64],
    throughput_per_sec: Option<f64>,
) {
    assert!(
        !latencies_secs.is_empty(),
        "latency distribution must not be empty"
    );
    let mut sorted = latencies_secs.to_vec();
    sorted.sort_by(f64::total_cmp);
    let min = sorted[0];
    let median = sorted[sorted.len() / 2];
    // Nearest-rank p99, clamped into range for short distributions.
    let p99_idx = (sorted.len() * 99)
        .div_ceil(100)
        .saturating_sub(1)
        .min(sorted.len() - 1);
    let p99 = sorted[p99_idx];
    let mean = sorted.iter().sum::<f64>() / sorted.len() as f64;
    let thr = match throughput_per_sec {
        Some(t) => format!("  ({} /s)", si(t)),
        None => String::new(),
    };
    println!(
        "{name}  p50 {}  p99 {}  mean {}  min {}{thr}",
        fmt_secs(median),
        fmt_secs(p99),
        fmt_secs(mean),
        fmt_secs(min)
    );
    records().lock().unwrap().push(BenchRecord {
        name: name.to_string(),
        median_secs: median,
        mean_secs: mean,
        min_secs: min,
        p99_secs: Some(p99),
        throughput_per_sec,
        tags: json_tags().lock().unwrap().clone(),
    });
}

/// If `GSGCN_BENCH_JSON` names a file, write all recorded results there
/// as a JSON array. An existing array at that path is **extended**, not
/// clobbered — `cargo bench` runs each bench target as a separate binary,
/// so a multi-target run accumulates every target's records (delete the
/// file first for a fresh capture; CI starts from a clean checkout).
/// Called by the `criterion_main!` expansion; a write failure is
/// reported but does not fail the bench run.
pub fn write_json_if_requested() {
    let Ok(path) = std::env::var("GSGCN_BENCH_JSON") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    let recs = records().lock().unwrap();
    if recs.is_empty() {
        return;
    }
    // Re-open an existing array (an earlier bench target's output):
    // strip the closing bracket and continue the element list.
    let mut out = match std::fs::read_to_string(&path) {
        Ok(prev) => {
            let trimmed = prev.trim_end();
            match trimmed.strip_suffix(']') {
                Some(head) if trimmed.starts_with('[') => {
                    let head = head.trim_end().to_string();
                    if head.ends_with('}') {
                        head + ",\n"
                    } else {
                        head + "\n"
                    }
                }
                _ => String::from("[\n"),
            }
        }
        Err(_) => String::from("[\n"),
    };
    let lines: Vec<String> = recs
        .iter()
        .map(|r| {
            let thr = match (r.p99_secs, r.throughput_per_sec) {
                (Some(p), Some(t)) => {
                    format!(", \"p99_secs\": {p:.9}, \"throughput_per_sec\": {t:.3}")
                }
                (Some(p), None) => format!(", \"p99_secs\": {p:.9}"),
                (None, Some(t)) => format!(", \"throughput_per_sec\": {t:.3}"),
                (None, None) => String::new(),
            };
            let tags: String = r
                .tags
                .iter()
                .map(|(k, v)| {
                    format!(
                        ", \"{}\": \"{}\"",
                        k.replace('"', "\\\""),
                        v.replace('"', "\\\"")
                    )
                })
                .collect();
            format!(
                "  {{\"name\": \"{}\", \"median_secs\": {:.9}, \"mean_secs\": {:.9}, \"min_secs\": {:.9}{}{}}}",
                r.name.replace('"', "\\\""),
                r.median_secs,
                r.mean_secs,
                r.min_secs,
                thr,
                tags,
            )
        })
        .collect();
    out.push_str(&lines.join(",\n"));
    out.push_str("\n]\n");
    match std::fs::write(&path, out) {
        Ok(()) => println!("bench results written to {path}"),
        Err(e) => eprintln!("failed to write {path}: {e}"),
    }
}

fn report(name: &str, bencher: &Bencher, throughput: Option<Throughput>) {
    if bencher.samples.is_empty() {
        println!("{name}  (no samples)");
        return;
    }
    let batch = bencher.batch as f64;
    let mut per_iter: Vec<f64> = bencher
        .samples
        .iter()
        .map(|d| d.as_secs_f64() / batch)
        .collect();
    per_iter.sort_by(f64::total_cmp);
    let min = per_iter[0];
    let median = per_iter[per_iter.len() / 2];
    let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
    let per_sec = match throughput {
        Some(Throughput::Elements(n)) | Some(Throughput::Bytes(n)) => Some(n as f64 / median),
        None => None,
    };
    let thr = match throughput {
        Some(Throughput::Elements(n)) => format!("  ({} elem/s)", si(n as f64 / median)),
        Some(Throughput::Bytes(n)) => format!("  ({}B/s)", si(n as f64 / median)),
        None => String::new(),
    };
    println!(
        "{name}  median {}  mean {}  min {}{thr}",
        fmt_secs(median),
        fmt_secs(mean),
        fmt_secs(min)
    );
    records().lock().unwrap().push(BenchRecord {
        name: name.to_string(),
        median_secs: median,
        mean_secs: mean,
        min_secs: min,
        p99_secs: None,
        throughput_per_sec: per_sec,
        tags: json_tags().lock().unwrap().clone(),
    });
}

fn fmt_secs(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.3} µs", s * 1e6)
    } else {
        format!("{:.1} ns", s * 1e9)
    }
}

fn si(v: f64) -> String {
    if v >= 1e9 {
        format!("{:.2} G", v / 1e9)
    } else if v >= 1e6 {
        format!("{:.2} M", v / 1e6)
    } else if v >= 1e3 {
        format!("{:.2} k", v / 1e3)
    } else {
        format!("{v:.2} ")
    }
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let group_name = name.into();
        println!("— benchmark group `{group_name}` —");
        BenchmarkGroup {
            criterion: self,
            group_name,
            sample_size: 20,
            throughput: None,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher {
            batch: 1,
            samples: Vec::new(),
            target_samples: 20,
        };
        f(&mut bencher);
        report(name, &bencher, None);
        self
    }
}

/// Re-export mirroring `criterion::black_box` (tests/benches may import
/// either this or `std::hint::black_box`).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declare a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Declare the benchmark binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $($group(&mut c);)+
            $crate::write_json_if_requested();
        }
    };
}
