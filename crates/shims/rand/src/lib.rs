//! Minimal in-tree replacement for the `rand` crate (0.9-style API).
//!
//! The build environment has no network access to crates.io, so this shim
//! provides the subset the workspace uses: `rngs::StdRng`, `SeedableRng::
//! seed_from_u64`, `Rng::{random, random_range}`, and `seq::SliceRandom::
//! shuffle`.
//!
//! `StdRng` is xoshiro256++ seeded through SplitMix64 — not ChaCha as in
//! the real crate, so *streams differ from upstream rand*, but they are
//! deterministic, high-quality, and identical across platforms, which is
//! all the workspace's seeded experiments require.

use std::ops::{Range, RangeInclusive};

/// Low-level uniform bit source.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Seedable construction (`rand::SeedableRng`).
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// Values samplable uniformly over their full domain via `Rng::random`.
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 random bits.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 random bits.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges accepted by [`Rng::random_range`].
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Unbiased-enough integer draw in `[0, span)` via 128-bit multiply.
#[inline]
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! int_range_impl {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + uniform_below(rng, span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64 + 1;
                if span == 0 {
                    // Full u64 domain.
                    return lo + rng.next_u64() as $t;
                }
                lo + uniform_below(rng, span) as $t
            }
        }
    )*};
}

int_range_impl!(u8, u16, u32, u64, usize, i32, i64, isize);

macro_rules! float_range_impl {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = <$t as Standard>::sample(rng);
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}

float_range_impl!(f32, f64);

/// High-level sampling interface (`rand::Rng`).
pub trait Rng: RngCore {
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ seeded via SplitMix64.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    use super::{Rng, RngCore};

    /// Slice shuffling (`rand::seq::SliceRandom`).
    pub trait SliceRandom {
        type Item;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        /// Fisher–Yates.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.random_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.random::<u64>(), c.random::<u64>());
    }

    #[test]
    fn ranges_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f32 = rng.random_range(-0.5..0.5);
            assert!((-0.5..0.5).contains(&x));
            let y = rng.random_range(3usize..10);
            assert!((3..10).contains(&y));
            let z = rng.random_range(0..=4u32);
            assert!(z <= 4);
        }
    }

    #[test]
    fn uniformity_rough() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = [0usize; 10];
        for _ in 0..10_000 {
            counts[rng.random_range(0..10usize)] += 1;
        }
        for &c in &counts {
            assert!((800..1200).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut StdRng::seed_from_u64(3));
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }
}
