//! Training reports: everything an experiment binary needs to print the
//! paper's tables and figures.

use gsgcn_graph::StoreCacheStats;
use gsgcn_metrics::convergence::Curve;
use gsgcn_metrics::timing::Breakdown;

/// Statistics of one training epoch.
#[derive(Clone, Debug)]
pub struct EpochStats {
    /// Epoch index (0-based).
    pub epoch: usize,
    /// Mini-batches (subgraphs) trained on.
    pub batches: usize,
    /// Mean training loss over the epoch's batches.
    pub mean_loss: f32,
    /// Mean subgraph size `|V_sub|`.
    pub mean_subgraph_vertices: f64,
    /// Mean subgraph directed edge count.
    pub mean_subgraph_edges: f64,
    /// Wall-clock seconds of this epoch (training work only).
    pub secs: f64,
}

/// Result of a full training run.
#[derive(Clone, Debug)]
pub struct TrainReport {
    /// Per-epoch statistics.
    pub epochs: Vec<EpochStats>,
    /// Validation F1-micro at the end of training.
    pub final_val_f1: f64,
    /// Test F1-micro at the end of training.
    pub test_f1: f64,
    /// Training-time vs validation-F1 curve (Fig. 2 series).
    pub curve: Curve,
    /// Cumulative per-phase breakdown (Fig. 3 bars).
    pub breakdown: Breakdown,
    /// Total training seconds (excluding evaluation).
    pub total_train_secs: f64,
    /// Shard-cache counters of the training store at the end of the run
    /// (`None` when training read a fully-resident store).
    pub shard_cache: Option<StoreCacheStats>,
}

impl TrainReport {
    /// Mean per-iteration wall time.
    pub fn secs_per_iteration(&self) -> f64 {
        let iters: usize = self.epochs.iter().map(|e| e.batches).sum();
        if iters == 0 {
            0.0
        } else {
            self.total_train_secs / iters as f64
        }
    }

    /// Final epoch's mean loss.
    pub fn final_loss(&self) -> f32 {
        self.epochs.last().map(|e| e.mean_loss).unwrap_or(f32::NAN)
    }

    /// Fraction of sampler wall-clock hidden behind compute (0 on the
    /// synchronous path — there, sampling always stalls the trainer).
    pub fn sampling_overlap_fraction(&self) -> f64 {
        self.breakdown.sampling_overlap_fraction()
    }

    /// One-line human summary. The breakdown segment reports the
    /// sampling-overlap percentage when the pipelined sampler hid any
    /// sampling time behind compute.
    pub fn summary(&self) -> String {
        let mut s = format!(
            "{} epochs, {:.2}s train, loss {:.4}, val F1 {:.4}, test F1 {:.4} [{}]",
            self.epochs.len(),
            self.total_train_secs,
            self.final_loss(),
            self.final_val_f1,
            self.test_f1,
            self.breakdown.report()
        );
        if let Some(cache) = &self.shard_cache {
            s.push_str(&format!(" [shard cache: {}]", cache.summary()));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsgcn_metrics::timing::Phase;

    fn dummy() -> TrainReport {
        TrainReport {
            epochs: vec![
                EpochStats {
                    epoch: 0,
                    batches: 4,
                    mean_loss: 1.0,
                    mean_subgraph_vertices: 100.0,
                    mean_subgraph_edges: 500.0,
                    secs: 2.0,
                },
                EpochStats {
                    epoch: 1,
                    batches: 4,
                    mean_loss: 0.5,
                    mean_subgraph_vertices: 100.0,
                    mean_subgraph_edges: 500.0,
                    secs: 2.0,
                },
            ],
            final_val_f1: 0.8,
            test_f1: 0.79,
            curve: Curve::new("test"),
            breakdown: Breakdown::default(),
            total_train_secs: 4.0,
            shard_cache: None,
        }
    }

    #[test]
    fn per_iteration_math() {
        assert!((dummy().secs_per_iteration() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn final_loss_from_last_epoch() {
        assert_eq!(dummy().final_loss(), 0.5);
    }

    #[test]
    fn summary_contains_key_numbers() {
        let s = dummy().summary();
        assert!(s.contains("2 epochs"));
        assert!(s.contains("0.8000"));
    }

    #[test]
    fn summary_reports_overlap_when_pipelined() {
        let mut r = dummy();
        r.breakdown.add(Phase::Sampling, 1.0);
        r.breakdown.add_hidden_sampling(1.0);
        assert!((r.sampling_overlap_fraction() - 0.5).abs() < 1e-12);
        let s = r.summary();
        assert!(s.contains("sampling overlap 50.0%"), "{s}");
    }

    #[test]
    fn empty_report_degenerate() {
        let r = TrainReport {
            epochs: vec![],
            final_val_f1: 0.0,
            test_f1: 0.0,
            curve: Curve::new("x"),
            breakdown: Breakdown::default(),
            total_train_secs: 0.0,
            shard_cache: None,
        };
        assert_eq!(r.secs_per_iteration(), 0.0);
        assert!(r.final_loss().is_nan());
    }
}
