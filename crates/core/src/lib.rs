//! The paper's primary contribution assembled: **graph-sampling-based GCN
//! training** (Algorithms 1 and 5).
//!
//! Per training iteration the trainer:
//! 1. consumes the next pre-sampled subgraph in ticket order — either
//!    popped from the synchronous pool (refilled with `p_inter` parallel
//!    Dashboard frontier samplers when empty — inter-subgraph
//!    parallelism, Sec. IV-C) or, with `sampler_threads > 0`, from the
//!    pipelined sampler whose dedicated worker threads sample ahead
//!    continuously so sampling overlaps compute (same subgraph stream,
//!    bit-identical trajectory);
//! 2. gathers the subgraph's feature and label rows (`H⁽⁰⁾[V_sub]`);
//! 3. builds a *complete* GCN on the subgraph and runs forward, loss,
//!    backward, Adam (intra-iteration parallelism: feature-partitioned
//!    propagation, parallel GEMM);
//! 4. records the per-phase wall-clock breakdown (sampling / feature
//!    propagation / weight application) that Fig. 3 reports.
//!
//! Work per epoch is `O(L·|V|·f·(f + d_GS))` — linear in depth and graph
//! size, the efficiency claim of Sec. III-B.
//!
//! # Example
//!
//! ```
//! use gsgcn_data::presets;
//! use gsgcn_core::{GsGcnTrainer, TrainerConfig};
//!
//! let dataset = presets::ppi_scaled(42);
//! let mut trainer = GsGcnTrainer::new(&dataset, TrainerConfig::quick_test()).unwrap();
//! let report = trainer.train().unwrap();
//! assert!(report.final_val_f1 > 0.3, "F1 {}", report.final_val_f1);
//! ```

pub mod config;
pub mod report;
pub mod trainer;

pub use config::TrainerConfig;
pub use report::TrainReport;
pub use trainer::GsGcnTrainer;
