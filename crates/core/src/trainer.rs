//! The graph-sampling GCN trainer — Algorithm 5 end to end.
//!
//! # Dataflow
//!
//! Per iteration the trainer consumes one ticketed subgraph, gathers its
//! feature/label rows, and runs forward/backward/Adam. Where the subgraph
//! comes from depends on [`TrainerConfig::sampler_threads`]:
//!
//! ```text
//! synchronous (sampler_threads = 0, the reference path):
//!   ┌────────────────────── every p_inter iterations ─────────────────────┐
//!   │ pool.refill: p_inter parallel sampler instances  (compute stalls)   │
//!   └──────────────────────────────────────────────────────────────────────┘
//!     pop → gather rows → train_step → pop → gather → train_step → …
//!
//! pipelined (sampler_threads = N ≥ 1):
//!   sampler workers: claim ticket → sample subgraph → reorder buffer ─┐
//!        (N dedicated OS threads, bounded queue, runs continuously)   │
//!   consumer:  pop(next in ticket order) → gather rows → train_step ◄─┘
//!        (stalls only when the queue has not caught up)
//! ```
//!
//! Both paths draw subgraphs from the same `(batch, instance)` ticket
//! stream with the same seeds and consume them in the same order, so the
//! loss trajectory is bit-identical for a fixed seed — pinned by
//! `tests/pipeline_equivalence.rs`. The per-phase [`Breakdown`] accounts
//! the difference instead: on the pipelined path `Phase::Sampling` is
//! only the consumer's queue stall, and sampling wall-clock that ran
//! hidden behind compute accumulates in
//! [`Breakdown::sampling_hidden_secs`].

use crate::config::TrainerConfig;
use crate::report::{EpochStats, TrainReport};
use gsgcn_data::dataset::{Dataset, Split, TaskKind};
use gsgcn_data::store_dataset::StoreDataset;
use gsgcn_graph::{l_hop_ball, l_hop_subgraph, GraphStore, Topology};
use gsgcn_metrics::convergence::Curve;
use gsgcn_metrics::f1;
use gsgcn_metrics::timing::{Breakdown, Phase};
use gsgcn_nn::model::{GcnConfig, GcnModel, LossKind};
use gsgcn_nn::InferenceWorkspace;
use gsgcn_prop::propagator::FeaturePropagator;
use gsgcn_sampler::dashboard::DashboardSampler;
use gsgcn_sampler::pipeline::{PipelineConfig, SamplerPipeline};
use gsgcn_sampler::pool::SubgraphPool;
use std::sync::Arc;
use std::time::Instant;

/// Which split to evaluate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EvalSplit {
    Train,
    Val,
    Test,
}

/// Where the evaluation graph lives: fully resident ([`Dataset`]) or in
/// a sharded on-disk store ([`StoreDataset`]). Training always reads
/// through a [`GraphStore`]; only evaluation branches on this.
enum EvalSource<'a> {
    Resident(&'a Dataset),
    Stored(&'a StoreDataset),
}

impl EvalSource<'_> {
    fn name(&self) -> &str {
        match self {
            EvalSource::Resident(d) => &d.name,
            EvalSource::Stored(sd) => &sd.name,
        }
    }

    fn task(&self) -> TaskKind {
        match self {
            EvalSource::Resident(d) => d.task,
            EvalSource::Stored(sd) => sd.task,
        }
    }

    fn split(&self) -> &Split {
        match self {
            EvalSource::Resident(d) => &d.split,
            EvalSource::Stored(sd) => &sd.split,
        }
    }
}

/// Roots per chunk for the out-of-core (stored) evaluation path —
/// an upper bound; the chunk size adapts downward (see
/// [`EVAL_MAX_BALL_ROWS`]) when L-hop balls grow dense.
const EVAL_CHUNK_ROOTS: usize = 256;

/// Cap on one eval chunk's L-hop ball, in vertices. The ball of `c`
/// roots grows like `c · d̄^L`, so on dense graphs a fixed root count
/// would materialise feature buffers proportional to the *graph*, not
/// the chunk — exactly the resident-set blowup the stored path exists
/// to avoid. Chunks halve until the ball fits (single-root overshoot is
/// accepted: one root's ball is irreducible). 32 Ki rows ≈ 38 MiB of
/// 300-dim f32 features.
const EVAL_MAX_BALL_ROWS: usize = 32 * 1024;

/// Trainer state: dataset view, model, sampler pool/pipeline, timers.
pub struct GsGcnTrainer<'a> {
    source: EvalSource<'a>,
    /// Store over the training-induced subgraph. On the resident path
    /// this is built by [`GraphStore::from_parts_env`], so
    /// `GSGCN_GRAPH_STORE=mmap` makes even `Dataset`-backed training
    /// exercise the out-of-core read path.
    train_store: Arc<GraphStore>,
    model: GcnModel,
    sampler: Arc<DashboardSampler>,
    pool: SubgraphPool,
    /// Producer–consumer sampling pipeline (`None` on the synchronous
    /// path). Holds its own `Arc` clones of the sampler and training
    /// store, so drop order is irrelevant; dropping the trainer joins
    /// the worker threads.
    pipeline: Option<SamplerPipeline>,
    cfg: TrainerConfig,
    thread_pool: rayon::ThreadPool,
    breakdown: Breakdown,
    train_secs: f64,
    epochs_run: usize,
    /// Persistent per-iteration gather buffers (subgraph features/labels).
    /// Subgraph sizes are bounded by the sampling budget, so these reach a
    /// steady capacity after the first few iterations and the inner loop
    /// stops allocating.
    x_buf: gsgcn_tensor::DMatrix,
    y_buf: gsgcn_tensor::DMatrix,
    /// Persistent evaluation state: the inference workspace (activation
    /// ping-pong buffers) plus full-graph probability and per-split
    /// gather buffers. Validation runs every `eval_every` epochs over the
    /// whole graph, so without reuse it dominated the allocation churn of
    /// a training run; with it, [`GsGcnTrainer::evaluate`] performs zero
    /// matrix allocations once warm (pinned by `tests/eval_alloc.rs`).
    eval_ws: InferenceWorkspace,
    eval_probs: gsgcn_tensor::DMatrix,
    eval_probs_split: gsgcn_tensor::DMatrix,
    eval_labels_split: gsgcn_tensor::DMatrix,
    /// Ball-feature gather buffer for the stored (out-of-core) eval path.
    eval_x: gsgcn_tensor::DMatrix,
}

impl<'a> GsGcnTrainer<'a> {
    /// Build a trainer for `dataset` with configuration `cfg`.
    ///
    /// Fails (rather than panics) on invalid configuration or an
    /// inconsistent dataset, so experiment binaries can surface errors.
    pub fn new(dataset: &'a Dataset, cfg: TrainerConfig) -> Result<Self, String> {
        cfg.validate()?;
        dataset.validate()?;

        // Build the training-view store. `from_parts_env` honours
        // `GSGCN_GRAPH_STORE`: on `mem` it aliases the view's matrices
        // (zero copy); on `mmap` it spills them to a temporary shard
        // directory and training reads through the shard cache.
        let tv = dataset.train_view();
        let train_store = GraphStore::from_parts_env(
            Arc::clone(&tv.graph),
            Some(Arc::clone(&tv.features)),
            Some(Arc::clone(&tv.labels)),
        )
        .map_err(|e| format!("failed to build training graph store: {e}"))?;
        Self::build(EvalSource::Resident(dataset), Arc::new(train_store), cfg)
    }

    /// Build a trainer over a sharded on-disk [`StoreDataset`] (see
    /// `gsgcn shard`). Training samples from the store's training
    /// subgraph; evaluation streams L-hop balls of the eval roots
    /// through the shard cache instead of materialising the full graph,
    /// so peak RSS stays bounded by the cache budget plus one ball.
    pub fn from_store(sd: &'a StoreDataset, cfg: TrainerConfig) -> Result<Self, String> {
        cfg.validate()?;
        if sd.full.feature_dim() == 0 {
            return Err("graph store has no feature matrix".into());
        }
        if sd.full.label_dim() == 0 {
            return Err("graph store has no label matrix".into());
        }
        Self::build(EvalSource::Stored(sd), Arc::clone(&sd.train), cfg)
    }

    /// Like [`Self::new`], but reusing a pipeline taken from a previous
    /// trainer ([`Self::take_pipeline`]) instead of spawning fresh worker
    /// threads — the cheap way to run a hyper-parameter sweep's `train()`
    /// calls back to back. The pipeline is rewound over this trainer's
    /// sampler, store and seed, so the subgraph stream is bit-identical
    /// to what a freshly spawned pipeline would produce. With
    /// `sampler_threads == 0` the handed-in pipeline is simply dropped
    /// (its workers join).
    pub fn new_with_pipeline(
        dataset: &'a Dataset,
        cfg: TrainerConfig,
        pipeline: SamplerPipeline,
    ) -> Result<Self, String> {
        let mut t = Self::new(dataset, cfg)?;
        t.install_pipeline(pipeline);
        Ok(t)
    }

    /// [`Self::from_store`] with a reused pipeline; see
    /// [`Self::new_with_pipeline`].
    pub fn from_store_with_pipeline(
        sd: &'a StoreDataset,
        cfg: TrainerConfig,
        pipeline: SamplerPipeline,
    ) -> Result<Self, String> {
        let mut t = Self::from_store(sd, cfg)?;
        t.install_pipeline(pipeline);
        Ok(t)
    }

    /// Detach the sampling pipeline for reuse by the next trainer in a
    /// sweep (`None` on the synchronous path). The trainer falls back to
    /// synchronous sampling if trained further afterwards.
    pub fn take_pipeline(&mut self) -> Option<SamplerPipeline> {
        self.pipeline.take()
    }

    /// Replace the freshly spawned pipeline (if any) with a reused one,
    /// rewound over this trainer's sampler × store × seed stream.
    fn install_pipeline(&mut self, mut pipeline: SamplerPipeline) {
        if self.pipeline.is_none() {
            return; // synchronous path: drop the pipeline, joining it
        }
        pipeline.reset_with(
            Arc::clone(&self.sampler),
            Arc::clone(&self.train_store),
            self.cfg.seed ^ 0x5A4B,
        );
        self.pipeline = Some(pipeline);
        self.wire_prefetch_hook();
    }

    /// Feed the shard prefetcher from the sampler pipeline: each
    /// delivered subgraph announces its origin set before the consumer
    /// can pop it, so the shards a batch will gather from are paging in
    /// while the previous batch computes. No-op unless both the
    /// pipelined sampler and the store prefetcher are active.
    fn wire_prefetch_hook(&self) {
        let Some(pipe) = &self.pipeline else { return };
        if !self.train_store.prefetch_enabled() {
            return;
        }
        let store = Arc::clone(&self.train_store);
        pipe.set_on_ready(Some(Arc::new(move |origin: &[u32]| {
            store.prefetch_nodes(origin);
        })));
    }

    fn build(
        source: EvalSource<'a>,
        train_store: Arc<GraphStore>,
        mut cfg: TrainerConfig,
    ) -> Result<Self, String> {
        // Clamp the sampling budget to the training-graph size so tiny
        // datasets work with default sampler settings.
        let t = train_store.num_vertices();
        if t == 0 {
            return Err("training split is empty".into());
        }
        if cfg.sampler.budget > t {
            cfg.sampler.budget = t;
        }
        if cfg.sampler.frontier_size > cfg.sampler.budget {
            cfg.sampler.frontier_size = (cfg.sampler.budget / 2).max(1);
        }

        let loss = match source.task() {
            TaskKind::MultiLabel => LossKind::SigmoidBce,
            TaskKind::SingleLabel => LossKind::SoftmaxCe,
        };
        let model_cfg = GcnConfig {
            in_dim: train_store.feature_dim(),
            hidden_dims: cfg.hidden_dims.clone(),
            num_classes: train_store.label_dim(),
            loss,
            adam: cfg.adam,
            dropout: cfg.dropout,
            fused: cfg.fused,
        };
        model_cfg.validate()?;
        let model = GcnModel::with_propagator(
            model_cfg,
            cfg.seed,
            FeaturePropagator::new(cfg.prop_mode.clone()),
        );

        let sampler = Arc::new(DashboardSampler::new(cfg.sampler.clone()));
        let pool = SubgraphPool::new(cfg.p_inter, cfg.seed ^ 0x5A4B);
        let pipeline = if cfg.sampler_threads > 0 {
            Some(SamplerPipeline::spawn(
                Arc::clone(&sampler),
                Arc::clone(&train_store),
                PipelineConfig {
                    workers: cfg.sampler_threads,
                    p_inter: cfg.p_inter,
                    base_seed: cfg.seed ^ 0x5A4B, // same stream as the pool
                    capacity: 0,                  // default ~2·p_inter
                },
            ))
        } else {
            None
        };

        let thread_pool = rayon::ThreadPoolBuilder::new()
            .num_threads(cfg.threads) // 0 = default
            .build()
            .map_err(|e| format!("failed to build thread pool: {e}"))?;

        let trainer = GsGcnTrainer {
            source,
            train_store,
            model,
            sampler,
            pool,
            pipeline,
            cfg,
            thread_pool,
            breakdown: Breakdown::default(),
            train_secs: 0.0,
            epochs_run: 0,
            x_buf: gsgcn_tensor::DMatrix::zeros(0, 0),
            y_buf: gsgcn_tensor::DMatrix::zeros(0, 0),
            eval_ws: InferenceWorkspace::new(),
            eval_probs: gsgcn_tensor::DMatrix::zeros(0, 0),
            eval_probs_split: gsgcn_tensor::DMatrix::zeros(0, 0),
            eval_labels_split: gsgcn_tensor::DMatrix::zeros(0, 0),
            eval_x: gsgcn_tensor::DMatrix::zeros(0, 0),
        };
        trainer.wire_prefetch_hook();
        Ok(trainer)
    }

    /// The effective configuration (after dataset-dependent clamping).
    pub fn config(&self) -> &TrainerConfig {
        &self.cfg
    }

    /// The model under training.
    pub fn model(&self) -> &GcnModel {
        &self.model
    }

    /// Restore model parameters from a checkpoint (e.g. for evaluation of
    /// a previously trained model). Optimiser state resets.
    pub fn import_weights(
        &mut self,
        weights: &gsgcn_nn::checkpoint::ModelWeights,
    ) -> Result<(), String> {
        self.model.import_weights(weights)
    }

    /// Cumulative per-phase breakdown.
    pub fn breakdown(&self) -> &Breakdown {
        &self.breakdown
    }

    /// The sampling pipeline, when the pipelined path is active
    /// (`sampler_threads > 0`). Exposes stall/overlap counters.
    pub fn sampler_pipeline(&self) -> Option<&SamplerPipeline> {
        self.pipeline.as_ref()
    }

    /// Cumulative training seconds.
    pub fn train_secs(&self) -> f64 {
        self.train_secs
    }

    /// Iterations per epoch: `⌈|V_train| / budget⌉` (one epoch ≈ one full
    /// traversal of the training vertices, Sec. III-B).
    pub fn iterations_per_epoch(&self) -> usize {
        self.train_store
            .num_vertices()
            .div_ceil(self.cfg.sampler.budget)
            .max(1)
    }

    /// Run one training epoch; returns its statistics.
    ///
    /// On the pipelined path the only sampling cost paid here is the
    /// queue stall (`Phase::Sampling`); the sampler wall-clock that
    /// overlapped compute is added to the breakdown's hidden-sampling
    /// account afterwards. Fails if a sampler worker panicked.
    pub fn train_epoch(&mut self) -> Result<EpochStats, String> {
        let iters = self.iterations_per_epoch();
        let mut loss_sum = 0.0f64;
        let mut vert_sum = 0usize;
        let mut edge_sum = 0usize;
        let epoch_start = Instant::now();

        // Snapshot overlap accounting: deltas over this epoch turn into
        // hidden-sampling seconds below.
        let stall_before = self.breakdown.sampling_secs;
        let producer_before = self
            .pipeline
            .as_ref()
            .map(|p| p.producer_sampling_secs())
            .unwrap_or(0.0);

        // Borrow-splitting: move fields we need inside the closure out of
        // `self` references explicitly.
        let sampler = &self.sampler;
        let train_store = &self.train_store;
        let pool = &mut self.pool;
        let pipeline = &mut self.pipeline;
        let model = &mut self.model;
        let breakdown = &mut self.breakdown;
        let x_buf = &mut self.x_buf;
        let y_buf = &mut self.y_buf;

        let run: Result<(), String> = self.thread_pool.install(|| {
            for _ in 0..iters {
                // --- Sampling phase: next subgraph in ticket order.
                // Synchronous: refill every p_inter iterations (Alg. 5
                // lines 3–5, full stall). Pipelined: pop from the worker
                // queue — elapsed time is pure consumer stall.
                let t0 = Instant::now();
                let sub = match pipeline.as_mut() {
                    Some(pipe) => pipe.pop().map_err(|e| e.to_string())?,
                    None => pool.pop_or_refill(&**sampler, &**train_store),
                };
                breakdown.add(Phase::Sampling, t0.elapsed().as_secs_f64());

                // --- Gather subgraph rows (Alg. 1 line 5) into reused
                // buffers — no per-iteration matrix allocation. On the
                // mmap backend this is the out-of-core read: rows come
                // through the shard cache.
                let t0 = Instant::now();
                train_store
                    .gather_features_into(&sub.origin, x_buf)
                    .map_err(|e| format!("feature gather from graph store failed: {e}"))?;
                train_store
                    .gather_labels_into(&sub.origin, y_buf)
                    .map_err(|e| format!("label gather from graph store failed: {e}"))?;
                let gather_secs = t0.elapsed().as_secs_f64();

                // --- Forward/backward/update (Alg. 1 lines 6–13) ---
                let t0 = Instant::now();
                let step = model.train_step(&sub.graph, x_buf, y_buf);
                let step_secs = t0.elapsed().as_secs_f64();

                breakdown.add(Phase::FeatureProp, step.timings.feature_prop_secs);
                breakdown.add(Phase::WeightApp, step.timings.weight_app_secs);
                breakdown.add(
                    Phase::Other,
                    gather_secs
                        + (step_secs
                            - step.timings.feature_prop_secs
                            - step.timings.weight_app_secs)
                            .max(0.0),
                );

                loss_sum += step.loss as f64;
                vert_sum += sub.graph.num_vertices();
                edge_sum += sub.graph.num_edges();
            }
            Ok(())
        });
        run?;

        // Sampler wall-clock this epoch minus what the consumer actually
        // waited is the time the pipeline hid behind compute. (Clamped:
        // producers may still be mid-sample at the epoch boundary.)
        if let Some(pipe) = &self.pipeline {
            let produced = pipe.producer_sampling_secs() - producer_before;
            let stalled = self.breakdown.sampling_secs - stall_before;
            self.breakdown
                .add_hidden_sampling((produced - stalled).max(0.0));
        }

        let secs = epoch_start.elapsed().as_secs_f64();
        self.train_secs += secs;
        let stats = EpochStats {
            epoch: self.epochs_run,
            batches: iters,
            mean_loss: (loss_sum / iters as f64) as f32,
            mean_subgraph_vertices: vert_sum as f64 / iters as f64,
            mean_subgraph_edges: edge_sum as f64 / iters as f64,
            secs,
        };
        self.epochs_run += 1;
        Ok(stats)
    }

    /// Inference + F1-micro on the chosen split.
    ///
    /// * Resident datasets: one full-graph forward on the trainer's
    ///   persistent [`InferenceWorkspace`] and gather buffers — after
    ///   the first call everything (forward, row gathers, streaming F1)
    ///   is allocation-free.
    /// * Stored datasets: the full graph may not fit in RAM, so eval
    ///   streams the split in chunks of [`EVAL_CHUNK_ROOTS`] roots.
    ///   Each chunk extracts the L-hop ball of its roots through the
    ///   shard cache, runs L layers on the ball (exact at the roots),
    ///   and feeds root rows into a chunk-order-free
    ///   [`f1::F1Accumulator`].
    pub fn evaluate(&mut self, split: EvalSplit) -> f64 {
        let s = self.source.split();
        let idx: &[u32] = match split {
            EvalSplit::Train => &s.train,
            EvalSplit::Val => &s.val,
            EvalSplit::Test => &s.test,
        };
        if idx.is_empty() {
            return 0.0;
        }
        let single = self.source.task() == TaskKind::SingleLabel;
        let model = &self.model;
        let eval_ws = &mut self.eval_ws;
        let eval_probs = &mut self.eval_probs;
        let eval_probs_split = &mut self.eval_probs_split;
        let eval_labels_split = &mut self.eval_labels_split;
        let eval_x = &mut self.eval_x;
        match self.source {
            EvalSource::Resident(dataset) => self.thread_pool.install(|| {
                model.infer_probs_into(&dataset.graph, &dataset.features, eval_ws, eval_probs);
                eval_probs.gather_rows_into(idx, eval_probs_split);
                dataset.labels.gather_rows_into(idx, eval_labels_split);
                f1::f1_micro_from_probs(eval_probs_split, eval_labels_split, single)
            }),
            EvalSource::Stored(sd) => {
                let full = &sd.full;
                let hops = model.num_layers();
                self.thread_pool.install(|| {
                    let mut acc = f1::F1Accumulator::new(single);
                    let mut start = 0usize;
                    let mut chunk = EVAL_CHUNK_ROOTS;
                    while start < idx.len() {
                        let roots = &idx[start..(start + chunk).min(idx.len())];
                        // Probe the ball first: halve the chunk until
                        // its ball respects the row cap, so eval memory
                        // is bounded by the cap — not the graph.
                        let ball_rows = l_hop_ball(&**full, roots, hops).len();
                        if ball_rows > EVAL_MAX_BALL_ROWS && roots.len() > 1 {
                            chunk = (chunk / 2).max(1);
                            continue;
                        }
                        // Hint chunk c+1's roots while chunk c computes:
                        // their shards page in behind this chunk's forward.
                        let next_start = start + roots.len();
                        if full.prefetch_enabled() && next_start < idx.len() {
                            full.prefetch_nodes(
                                &idx[next_start..(next_start + chunk).min(idx.len())],
                            );
                        }
                        let batch = l_hop_subgraph(&**full, roots, hops);
                        full.gather_features_into(&batch.sub.origin, eval_x)
                            .unwrap_or_else(|e| panic!("eval feature gather failed: {e}"));
                        full.gather_labels_into(roots, eval_labels_split)
                            .unwrap_or_else(|e| panic!("eval label gather failed: {e}"));
                        // L layers on the L-hop ball are exact at the
                        // roots (hop distance 0) — same invariant the
                        // serving engine relies on.
                        model.infer_probs_into(&batch.sub.graph, eval_x, eval_ws, eval_probs);
                        for (i, &local) in batch.root_locals.iter().enumerate() {
                            acc.push_row(eval_probs.row(local as usize), eval_labels_split.row(i));
                        }
                        start += roots.len();
                        // Sparse region: let the chunk re-grow so the
                        // per-chunk extraction cost stays amortised.
                        if ball_rows * 2 <= EVAL_MAX_BALL_ROWS {
                            chunk = (chunk * 2).min(EVAL_CHUNK_ROOTS);
                        }
                    }
                    acc.f1()
                })
            }
        }
    }

    /// Run the configured number of epochs, recording the Fig. 2 curve
    /// and Fig. 3 breakdown, with optional early stopping. Can be called
    /// again to continue training.
    pub fn train(&mut self) -> Result<TrainReport, String> {
        let mut epochs = Vec::with_capacity(self.cfg.epochs);
        let mut curve = Curve::new(format!("gsgcn-{}", self.source.name()));
        let mut best_f1 = f64::NEG_INFINITY;
        let mut evals_since_best = 0usize;
        for e in 0..self.cfg.epochs {
            let stats = self.train_epoch()?;
            epochs.push(stats);
            let do_eval = self.cfg.eval_every > 0 && (e + 1) % self.cfg.eval_every == 0;
            if do_eval {
                let f1 = self.evaluate(EvalSplit::Val);
                curve.push(self.train_secs, f1);
                if f1 > best_f1 {
                    best_f1 = f1;
                    evals_since_best = 0;
                } else {
                    evals_since_best += 1;
                }
                if let Some(patience) = self.cfg.patience {
                    if evals_since_best >= patience {
                        break; // early stop: no val improvement
                    }
                }
            }
        }
        let final_val_f1 = self.evaluate(EvalSplit::Val);
        if curve.points.is_empty() || self.cfg.eval_every == 0 {
            curve.push(self.train_secs, final_val_f1);
        }
        let test_f1 = self.evaluate(EvalSplit::Test);
        Ok(TrainReport {
            epochs,
            final_val_f1,
            test_f1,
            curve,
            breakdown: self.breakdown,
            total_train_secs: self.train_secs,
            shard_cache: self.train_store.cache_stats(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsgcn_data::presets;

    fn quick_dataset() -> Dataset {
        // Small PPI-shaped dataset for fast trainer tests.
        presets::scale_spec(&presets::ppi_spec(), 600).generate(11)
    }

    #[test]
    fn trainer_builds_and_clamps_budget() {
        let d = quick_dataset();
        let mut cfg = TrainerConfig::quick_test();
        cfg.sampler.budget = 100_000; // larger than the training graph
        let t = GsGcnTrainer::new(&d, cfg).unwrap();
        assert!(t.config().sampler.budget <= d.split.train.len());
        assert!(t.iterations_per_epoch() >= 1);
    }

    #[test]
    fn invalid_config_is_err_not_panic() {
        let d = quick_dataset();
        let mut cfg = TrainerConfig::quick_test();
        cfg.epochs = 0;
        assert!(GsGcnTrainer::new(&d, cfg).is_err());
    }

    #[test]
    fn single_epoch_updates_model_and_timers() {
        let d = quick_dataset();
        let mut t = GsGcnTrainer::new(&d, TrainerConfig::quick_test()).unwrap();
        let stats = t.train_epoch().unwrap();
        assert!(stats.batches >= 1);
        assert!(stats.mean_loss.is_finite());
        assert!(stats.mean_subgraph_vertices > 0.0);
        assert!(t.breakdown().sampling_secs > 0.0);
        assert!(t.breakdown().feature_prop_secs > 0.0);
        assert!(t.breakdown().weight_app_secs > 0.0);
        assert!(t.model().steps() as usize >= stats.batches);
    }

    #[test]
    fn training_learns_ppi_shaped_data() {
        let d = quick_dataset();
        let mut cfg = TrainerConfig::quick_test();
        cfg.epochs = 40;
        cfg.sampler.budget = 150;
        cfg.sampler.frontier_size = 30;
        let mut t = GsGcnTrainer::new(&d, cfg).unwrap();
        let early_f1 = t.evaluate(EvalSplit::Val);
        let report = t.train().unwrap();
        assert!(
            report.final_val_f1 > early_f1,
            "F1 should improve: {early_f1} → {}",
            report.final_val_f1
        );
        assert!(report.final_val_f1 > 0.3, "F1 {}", report.final_val_f1);
        // Loss decreases over epochs.
        let first = report.epochs.first().unwrap().mean_loss;
        let last = report.epochs.last().unwrap().mean_loss;
        assert!(last < first, "loss {first} → {last}");
        // Curve recorded.
        assert!(!report.curve.points.is_empty());
    }

    #[test]
    fn deterministic_given_seed_and_parallelism() {
        let d = quick_dataset();
        let run = |threads: usize| {
            let mut cfg = TrainerConfig::quick_test();
            cfg.epochs = 2;
            cfg.threads = threads;
            let mut t = GsGcnTrainer::new(&d, cfg).unwrap();
            let r = t.train().unwrap();
            (r.final_loss(), r.final_val_f1)
        };
        let (l1, f1a) = run(1);
        let (l2, f1b) = run(4);
        // Same seed, same pool contents (instance-seeded) → identical
        // training trajectory regardless of thread count, up to f32
        // non-associativity in parallel reductions. Our kernels do
        // per-row sequential accumulation, so results are bit-equal.
        assert_eq!(l1, l2);
        assert_eq!(f1a, f1b);
    }

    #[test]
    fn early_stopping_halts_training() {
        let d = quick_dataset();
        let mut cfg = TrainerConfig::quick_test();
        cfg.epochs = 100;
        cfg.eval_every = 1;
        cfg.patience = Some(2);
        cfg.adam.lr = 0.0; // frozen weights → F1 never improves after eval 1
        let mut t = GsGcnTrainer::new(&d, cfg).unwrap();
        let report = t.train().unwrap();
        assert!(
            report.epochs.len() <= 4,
            "patience 2 with flat F1 should stop after ~3 epochs, ran {}",
            report.epochs.len()
        );
    }

    #[test]
    fn patience_config_validation() {
        let d = quick_dataset();
        let mut cfg = TrainerConfig::quick_test();
        cfg.patience = Some(0);
        assert!(GsGcnTrainer::new(&d, cfg).is_err());
        let mut cfg = TrainerConfig::quick_test();
        cfg.patience = Some(3);
        cfg.eval_every = 0;
        assert!(GsGcnTrainer::new(&d, cfg).is_err());
    }

    #[test]
    fn from_store_matches_resident_training() {
        let d = quick_dataset();
        let dir = std::env::temp_dir().join(format!(
            "gsgcn-trainer-store-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        d.spill_to_dir(&dir, 4).unwrap();
        let sd = gsgcn_data::StoreDataset::open(&dir).unwrap();

        let mut cfg = TrainerConfig::quick_test();
        cfg.epochs = 2;
        let run = |mut t: GsGcnTrainer<'_>| {
            let mut losses = Vec::new();
            for _ in 0..2 {
                losses.push(t.train_epoch().unwrap().mean_loss);
            }
            (losses, t.evaluate(EvalSplit::Val))
        };
        let (loss_res, f1_res) = run(GsGcnTrainer::new(&d, cfg.clone()).unwrap());
        let (loss_st, f1_st) = run(GsGcnTrainer::from_store(&sd, cfg).unwrap());

        // The train store holds the same induced topology and gathered
        // rows as the resident TrainView, and sampling is seeded — so
        // the loss trajectory is bit-identical.
        assert_eq!(loss_res, loss_st);
        // Stored eval runs L layers on L-hop balls, exact at the roots;
        // allow a whisker of float slack for the different code path.
        assert!(
            (f1_res - f1_st).abs() < 1e-6,
            "resident {f1_res} vs stored {f1_st}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sweep_over_shared_pipeline_matches_owned_pipelines() {
        let d = quick_dataset();
        let cfg_for = |seed: u64| {
            let mut cfg = TrainerConfig::quick_test();
            cfg.epochs = 2;
            cfg.sampler_threads = 1;
            cfg.seed = seed;
            cfg
        };
        let run = |mut t: GsGcnTrainer<'_>| -> (Vec<f32>, Option<SamplerPipeline>) {
            let mut losses = Vec::new();
            for _ in 0..2 {
                losses.push(t.train_epoch().unwrap().mean_loss);
            }
            let pipe = t.take_pipeline();
            (losses, pipe)
        };

        // Reference: each sweep point spawns its own pipeline.
        let (own_a, _) = run(GsGcnTrainer::new(&d, cfg_for(7)).unwrap());
        let (own_b, _) = run(GsGcnTrainer::new(&d, cfg_for(8)).unwrap());

        // One pipeline threaded through the whole sweep.
        let (shared_a, pipe) = run(GsGcnTrainer::new(&d, cfg_for(7)).unwrap());
        let pipe = pipe.expect("pipelined trainer must hold a pipeline");
        let (shared_b, pipe) = run(GsGcnTrainer::new_with_pipeline(&d, cfg_for(8), pipe).unwrap());
        assert!(pipe.is_some(), "pipeline must survive the second leg");

        assert_eq!(own_a, shared_a, "sweep leg 1 diverged under pipeline reuse");
        assert_eq!(own_b, shared_b, "sweep leg 2 diverged under pipeline reuse");
    }

    #[test]
    fn evaluate_all_splits() {
        let d = quick_dataset();
        let mut t = GsGcnTrainer::new(&d, TrainerConfig::quick_test()).unwrap();
        t.train_epoch().unwrap();
        for s in [EvalSplit::Train, EvalSplit::Val, EvalSplit::Test] {
            let f = t.evaluate(s);
            assert!((0.0..=1.0).contains(&f), "{s:?}: {f}");
        }
    }
}
