//! Trainer configuration.

use gsgcn_nn::adam::AdamHyper;
use gsgcn_prop::propagator::PropMode;
use gsgcn_sampler::dashboard::FrontierConfig;

/// Full configuration of a graph-sampling GCN training run.
///
/// Model dimensions that depend on the dataset (`in_dim`, `num_classes`,
/// loss kind) are filled in by the trainer from the dataset itself; this
/// struct holds everything the *user* chooses.
#[derive(Clone, Debug)]
pub struct TrainerConfig {
    /// Frontier-sampler parameters (`m`, `n`, `η`, degree cap, probe mode).
    pub sampler: FrontierConfig,
    /// Hidden layer widths (`L` = length; each must be even).
    pub hidden_dims: Vec<usize>,
    /// Adam hyperparameters.
    pub adam: AdamHyper,
    /// Dropout on layer inputs.
    pub dropout: f32,
    /// Training epochs (one epoch ≈ `|V_train| / budget` iterations —
    /// "one full traversal of all training vertices", Sec. III-B).
    pub epochs: usize,
    /// Sampler instances launched per pool refill (`p_inter`, Alg. 5).
    pub p_inter: usize,
    /// Worker threads for ALL parallel stages (sampling, propagation,
    /// GEMM). `0` = rayon default.
    pub threads: usize,
    /// Dedicated sampler worker threads for the pipelined trainer:
    /// subgraph sampling runs on these threads concurrently with training
    /// compute, hiding sampler latency behind the GEMMs. `0` disables the
    /// pipeline and falls back to synchronous in-loop sampling (the
    /// reference path). Both paths consume subgraphs in the same
    /// `(batch, instance)` ticket order with the same seeds, so the loss
    /// trajectory is bit-identical for a fixed seed either way.
    ///
    /// Overridable at process level via `GSGCN_SAMPLER_THREADS` (a count
    /// or `auto`), which CI uses to exercise the pipelined path across
    /// the whole test suite.
    pub sampler_threads: usize,
    /// Evaluate validation F1 every this many epochs (0 = only at end).
    pub eval_every: usize,
    /// Propagation kernel for the *unfused* path (Alg. 6 by default).
    /// Only consulted when `fused` is off — the fused pipeline has its
    /// own fixed blocking and ignores this for both training and
    /// inference, so kernel ablations over `prop_mode` must also set
    /// `fused: false`.
    pub prop_mode: PropMode,
    /// Run GCN layers on the fused aggregate→GEMM pipeline (default).
    /// `false` falls back to the unfused aggregate-then-GEMM reference
    /// path (ablations, equivalence tests).
    pub fused: bool,
    /// Early stopping: end training when validation F1 has not improved
    /// for this many consecutive evaluations (`None` disables; requires
    /// `eval_every > 0`).
    pub patience: Option<usize>,
    /// Master seed for weights, sampling and splits-independent RNG.
    pub seed: u64,
}

impl Default for TrainerConfig {
    fn default() -> Self {
        TrainerConfig {
            sampler: FrontierConfig {
                frontier_size: 1000,
                budget: 8000,
                ..FrontierConfig::default()
            },
            hidden_dims: vec![512, 512],
            adam: AdamHyper {
                lr: 1e-2,
                ..AdamHyper::default()
            },
            dropout: 0.0,
            epochs: 20,
            p_inter: num_cpus_estimate(),
            threads: 0,
            sampler_threads: sampler_threads_from_env().unwrap_or(0),
            eval_every: 1,
            prop_mode: PropMode::default(),
            fused: true,
            patience: None,
            seed: 1,
        }
    }
}

impl TrainerConfig {
    /// Small/fast settings for unit tests and doc examples: tiny frontier,
    /// small hidden layers, few epochs, deterministic single pool refill.
    pub fn quick_test() -> Self {
        TrainerConfig {
            sampler: FrontierConfig {
                frontier_size: 40,
                budget: 300,
                ..FrontierConfig::default()
            },
            hidden_dims: vec![64, 64],
            adam: AdamHyper {
                lr: 2e-2,
                ..AdamHyper::default()
            },
            dropout: 0.0,
            epochs: 15,
            p_inter: 4,
            threads: 0,
            sampler_threads: sampler_threads_from_env().unwrap_or(0),
            eval_every: 5,
            prop_mode: PropMode::default(),
            fused: true,
            patience: None,
            seed: 42,
        }
    }

    /// Single-threaded variant (serial baseline of Figs. 2–3). Also
    /// forces synchronous sampling: a serial measurement must not hide
    /// sampler time on extra threads.
    pub fn serial(mut self) -> Self {
        self.threads = 1;
        self.p_inter = 1;
        self.sampler_threads = 0;
        self
    }

    /// Set the thread count for every parallel stage.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Validate user-chosen parameters.
    pub fn validate(&self) -> Result<(), String> {
        self.sampler.validate()?;
        if self.hidden_dims.is_empty() {
            return Err("hidden_dims must be non-empty".into());
        }
        if let Some(d) = self.hidden_dims.iter().find(|&&d| d == 0 || d % 2 != 0) {
            return Err(format!("hidden dims must be positive and even; got {d}"));
        }
        if self.epochs == 0 {
            return Err("epochs must be ≥ 1".into());
        }
        if self.p_inter == 0 {
            return Err("p_inter must be ≥ 1".into());
        }
        if self.sampler_threads > MAX_SAMPLER_THREADS {
            return Err(format!(
                "sampler_threads {} exceeds the maximum of {MAX_SAMPLER_THREADS}; \
                 use 0 for the synchronous in-loop sampler",
                self.sampler_threads
            ));
        }
        if !(0.0..1.0).contains(&self.dropout) {
            return Err(format!("dropout must be in [0,1); got {}", self.dropout));
        }
        if self.patience.is_some() && self.eval_every == 0 {
            return Err("patience requires eval_every > 0".into());
        }
        if self.patience == Some(0) {
            return Err("patience must be ≥ 1".into());
        }
        Ok(())
    }
}

/// Upper bound on `sampler_threads` — beyond this a config is almost
/// certainly a typo, and each worker pins a subgraph-sized buffer slot.
pub const MAX_SAMPLER_THREADS: usize = 256;

/// Conservative CPU estimate without extra dependencies.
fn num_cpus_estimate() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
}

/// The `auto` sampler-thread count: `min(2, cores/4)`. Sampling is far
/// cheaper than training compute, so a couple of dedicated producers
/// saturate the queue; on small machines (`cores < 4`) this yields `0` —
/// the synchronous path — because there is no spare core to overlap on.
pub fn auto_sampler_threads() -> usize {
    (num_cpus_estimate() / 4).min(2)
}

/// Parse a sampler-thread spec: a worker count, `auto`
/// ([`auto_sampler_threads`]), or `0` for the synchronous in-loop
/// sampler. Shared by the CLI flag and the `GSGCN_SAMPLER_THREADS`
/// environment override.
pub fn parse_sampler_threads(spec: &str) -> Result<usize, String> {
    if spec.eq_ignore_ascii_case("auto") {
        return Ok(auto_sampler_threads());
    }
    spec.parse().map_err(|_| {
        format!(
            "invalid sampler-threads value {spec:?}: expected a worker count, \
             `auto`, or `0` for the synchronous in-loop sampler"
        )
    })
}

/// Process-wide `GSGCN_SAMPLER_THREADS` override (used by CI to run the
/// whole suite on the pipelined path). Panics loudly on an unparseable
/// value — a silently ignored misconfiguration would quietly test the
/// wrong path, the same policy as `GSGCN_KERNEL`.
fn sampler_threads_from_env() -> Option<usize> {
    let v = std::env::var("GSGCN_SAMPLER_THREADS").ok()?;
    Some(parse_sampler_threads(&v).unwrap_or_else(|e| panic!("GSGCN_SAMPLER_THREADS: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        assert!(TrainerConfig::default().validate().is_ok());
        assert!(TrainerConfig::quick_test().validate().is_ok());
    }

    #[test]
    fn serial_sets_both_knobs() {
        let c = TrainerConfig::default().serial();
        assert_eq!(c.threads, 1);
        assert_eq!(c.p_inter, 1);
    }

    #[test]
    fn invalid_configs_rejected() {
        let mut c = TrainerConfig::quick_test();
        c.hidden_dims = vec![63];
        assert!(c.validate().is_err());
        let mut c = TrainerConfig::quick_test();
        c.epochs = 0;
        assert!(c.validate().is_err());
        let mut c = TrainerConfig::quick_test();
        c.p_inter = 0;
        assert!(c.validate().is_err());
        let mut c = TrainerConfig::quick_test();
        c.sampler.budget = 0;
        assert!(c.validate().is_err());
        let mut c = TrainerConfig::quick_test();
        c.dropout = -0.1;
        assert!(c.validate().is_err());
    }

    #[test]
    fn with_threads_builder() {
        let c = TrainerConfig::quick_test().with_threads(3);
        assert_eq!(c.threads, 3);
    }

    #[test]
    fn sampler_threads_validation() {
        let mut c = TrainerConfig::quick_test();
        c.sampler_threads = 2;
        assert!(c.validate().is_ok());
        c.sampler_threads = MAX_SAMPLER_THREADS + 1;
        let err = c.validate().unwrap_err();
        assert!(err.contains("synchronous"), "{err}");
        assert!(err.contains('0'), "{err}");
    }

    #[test]
    fn parse_sampler_threads_spec() {
        assert_eq!(parse_sampler_threads("0"), Ok(0));
        assert_eq!(parse_sampler_threads("3"), Ok(3));
        assert_eq!(parse_sampler_threads("auto"), Ok(auto_sampler_threads()));
        assert_eq!(parse_sampler_threads("AUTO"), Ok(auto_sampler_threads()));
        let err = parse_sampler_threads("two").unwrap_err();
        assert!(err.contains("synchronous"), "{err}");
    }

    #[test]
    fn auto_sampler_threads_bounded() {
        // min(2, cores/4): never more than 2, and 0 on small machines.
        assert!(auto_sampler_threads() <= 2);
    }

    #[test]
    fn serial_forces_synchronous_sampling() {
        let c = TrainerConfig {
            sampler_threads: 4,
            ..TrainerConfig::default()
        }
        .serial();
        assert_eq!(c.sampler_threads, 0);
    }
}
