//! Regression tests for the `eval --load` F1-mismatch footgun (present
//! since the PR-1 seed): the workspace's datasets are synthetic, so a
//! checkpoint is only meaningful against the dataset *regenerated from the
//! same `(preset, seed)`*. These tests pin both halves of the fix:
//!
//! 1. a checkpoint round-tripped through bytes and imported into a fresh
//!    trainer on a same-seed regenerated dataset reproduces the training
//!    run's F1 exactly;
//! 2. the v2 provenance block survives the round trip, which is what lets
//!    the CLI default `eval` to the training-time dataset instead of
//!    silently regenerating a different one.

use gsgcn_core::trainer::EvalSplit;
use gsgcn_core::{GsGcnTrainer, TrainerConfig};
use gsgcn_data::presets;
use gsgcn_nn::checkpoint::{CheckpointMeta, ModelWeights};

#[test]
fn reloaded_checkpoint_reproduces_f1_on_regenerated_dataset() {
    let seed = 7u64;
    let spec = presets::ppi_spec();

    // Train on a dataset generated from (spec, seed). Long enough to be
    // clearly above chance (mirrors `training_learns_ppi_shaped_data`).
    let dataset = presets::scale_spec(&spec, 600).generate(seed);
    let mut cfg = TrainerConfig::quick_test();
    cfg.epochs = 40;
    cfg.sampler.budget = 150;
    cfg.sampler.frontier_size = 30;
    let mut trainer = GsGcnTrainer::new(&dataset, cfg.clone()).unwrap();
    trainer.train().unwrap();
    let trained_val = trainer.evaluate(EvalSplit::Val);
    let trained_test = trainer.evaluate(EvalSplit::Test);

    // Round-trip the weights through the serialised format.
    let bytes = trainer
        .model()
        .export_weights()
        .with_meta(CheckpointMeta {
            dataset: "ppi".into(),
            seed,
            full: false,
            hidden_dims: cfg.hidden_dims.clone(),
        })
        .to_bytes();
    let weights = ModelWeights::from_bytes(&bytes).unwrap();

    // A fresh process would regenerate the dataset from the checkpoint's
    // provenance; model the same thing in-process with a second
    // generation from the identical (spec, seed).
    let regenerated = presets::scale_spec(&spec, 600).generate(weights.meta.as_ref().unwrap().seed);
    let mut fresh = GsGcnTrainer::new(&regenerated, cfg).unwrap();
    fresh.import_weights(&weights).unwrap();

    let reloaded_val = fresh.evaluate(EvalSplit::Val);
    let reloaded_test = fresh.evaluate(EvalSplit::Test);
    assert_eq!(
        trained_val, reloaded_val,
        "val F1 after reload must match the training run exactly"
    );
    assert_eq!(trained_test, reloaded_test, "test F1 after reload");
    assert!(
        reloaded_val > 0.1,
        "reloaded model should be far above chance (got {reloaded_val}); \
         an F1 near zero means the dataset regeneration diverged"
    );
}

#[test]
fn different_seed_regeneration_scores_near_chance() {
    // The inverse property — what the old `eval --load` did by accident:
    // scoring against a differently-seeded regeneration collapses F1. If
    // this ever stops holding, the generators stopped depending on the
    // seed and the provenance fix is moot.
    let spec = presets::ppi_spec();
    let dataset = presets::scale_spec(&spec, 600).generate(7);
    let mut cfg = TrainerConfig::quick_test();
    cfg.epochs = 40;
    cfg.sampler.budget = 150;
    cfg.sampler.frontier_size = 30;
    let mut trainer = GsGcnTrainer::new(&dataset, cfg.clone()).unwrap();
    trainer.train().unwrap();
    let trained_val = trainer.evaluate(EvalSplit::Val);

    let other = presets::scale_spec(&spec, 600).generate(42);
    let weights_bytes = trainer.model().export_weights().to_bytes();
    let weights = ModelWeights::from_bytes(&weights_bytes).unwrap();
    let mut fresh = GsGcnTrainer::new(&other, cfg).unwrap();
    fresh.import_weights(&weights).unwrap();
    let mismatched_val = fresh.evaluate(EvalSplit::Val);

    assert!(
        mismatched_val < trained_val * 0.5,
        "scoring on a different random dataset should collapse F1: \
         trained {trained_val} vs mismatched {mismatched_val}"
    );
}
