//! Regression pins for the pipelined sampler→trainer path: the loss
//! trajectory must be bit-identical to the synchronous reference path for
//! a fixed seed, invariant to the sampler-worker count, and shutdown must
//! be deadlock-free in every early-exit scenario.

use gsgcn_core::{GsGcnTrainer, TrainerConfig};
use gsgcn_data::dataset::Dataset;
use gsgcn_data::presets;

fn quick_dataset() -> Dataset {
    presets::scale_spec(&presets::ppi_spec(), 600).generate(11)
}

fn quick_cfg(sampler_threads: usize) -> TrainerConfig {
    let mut cfg = TrainerConfig::quick_test();
    cfg.epochs = 3;
    cfg.sampler_threads = sampler_threads;
    cfg
}

/// Per-epoch mean losses (bit patterns) plus final validation F1.
fn trajectory(d: &Dataset, sampler_threads: usize) -> (Vec<u32>, f64) {
    let mut t = GsGcnTrainer::new(d, quick_cfg(sampler_threads)).unwrap();
    let report = t.train().unwrap();
    let losses = report
        .epochs
        .iter()
        .map(|e| e.mean_loss.to_bits())
        .collect();
    (losses, report.final_val_f1)
}

#[test]
fn pipelined_loss_trajectory_bit_identical_to_synchronous() {
    let d = quick_dataset();
    let reference = trajectory(&d, 0);
    for workers in [1usize, 2, 4] {
        let got = trajectory(&d, workers);
        assert_eq!(
            got, reference,
            "{workers} sampler workers diverged from the synchronous path"
        );
    }
}

#[test]
fn pipelined_path_accounts_hidden_sampling() {
    let d = quick_dataset();
    let mut t = GsGcnTrainer::new(&d, quick_cfg(2)).unwrap();
    t.train_epoch().unwrap();
    t.train_epoch().unwrap();
    let b = t.breakdown();
    // Workers sample continuously: some sampler wall-clock must exist,
    // split between consumer stall and compute-hidden time.
    let pipe = t.sampler_pipeline().expect("pipeline active");
    assert_eq!(pipe.workers(), 2);
    assert!(pipe.producer_sampling_secs() > 0.0);
    assert!(b.sampling_wall_secs() > 0.0);
    assert!(b.sampling_hidden_secs >= 0.0);
    let f = b.sampling_overlap_fraction();
    assert!((0.0..=1.0).contains(&f), "overlap fraction {f}");
}

#[test]
fn drop_mid_training_joins_workers_without_deadlock() {
    let d = quick_dataset();
    // Drop at several pipeline states: untouched (queue full of
    // presampled subgraphs), mid-epoch, and after a full epoch.
    {
        let _t = GsGcnTrainer::new(&d, quick_cfg(2)).unwrap();
        // Give workers time to fill the queue and park on backpressure.
        std::thread::sleep(std::time::Duration::from_millis(50));
    }
    {
        let mut t = GsGcnTrainer::new(&d, quick_cfg(3)).unwrap();
        t.train_epoch().unwrap();
    } // drop with in-flight presampling joins cleanly or the test hangs
}

#[test]
fn early_stopping_shuts_pipeline_down() {
    let d = quick_dataset();
    let mut cfg = quick_cfg(2);
    cfg.epochs = 100;
    cfg.eval_every = 1;
    cfg.patience = Some(2);
    cfg.adam.lr = 0.0; // frozen weights → F1 never improves after eval 1
    let mut t = GsGcnTrainer::new(&d, cfg).unwrap();
    let report = t.train().unwrap();
    assert!(
        report.epochs.len() <= 4,
        "early stop ran {} epochs",
        report.epochs.len()
    );
    drop(t); // join the still-running workers
}

#[test]
fn pipelined_training_learns() {
    let d = quick_dataset();
    let mut cfg = quick_cfg(2);
    cfg.epochs = 40;
    cfg.sampler.budget = 150;
    cfg.sampler.frontier_size = 30;
    let mut t = GsGcnTrainer::new(&d, cfg).unwrap();
    let report = t.train().unwrap();
    assert!(report.final_val_f1 > 0.3, "F1 {}", report.final_val_f1);
    let first = report.epochs.first().unwrap().mean_loss;
    let last = report.epochs.last().unwrap().mean_loss;
    assert!(last < first, "loss {first} → {last}");
}
