//! Allocation regression for the trainer's evaluation path.
//!
//! `GsGcnTrainer::evaluate` used to rebuild full-graph logits/probs
//! matrices (plus per-split gathers) on every validation epoch. It now
//! runs on the trainer's persistent `InferenceWorkspace` and gather
//! buffers with a streaming F1, so once warm it must perform **zero**
//! matrix allocations — measured with the thread-local counter in
//! `gsgcn_tensor::alloc`, on a 1-thread trainer so every allocation is
//! attributed to the measuring thread.

use gsgcn_core::trainer::EvalSplit;
use gsgcn_core::{GsGcnTrainer, TrainerConfig};
use gsgcn_data::presets;
use gsgcn_tensor::alloc;

#[test]
fn evaluate_is_allocation_free_after_warmup() {
    let d = presets::scale_spec(&presets::ppi_spec(), 600).generate(11);
    let mut cfg = TrainerConfig::quick_test().serial();
    cfg.epochs = 1;
    let mut t = GsGcnTrainer::new(&d, cfg).unwrap();
    t.train_epoch().unwrap();

    // Warm-up: size the workspace and the per-split gather buffers (the
    // largest split fixes each buffer's steady capacity).
    for split in [EvalSplit::Train, EvalSplit::Val, EvalSplit::Test] {
        t.evaluate(split);
    }

    let before = alloc::matrix_allocations();
    for _ in 0..3 {
        for split in [EvalSplit::Train, EvalSplit::Val, EvalSplit::Test] {
            let f1 = t.evaluate(split);
            assert!((0.0..=1.0).contains(&f1));
        }
    }
    let steady = alloc::matrix_allocations() - before;
    assert_eq!(
        steady, 0,
        "evaluate allocated {steady} matrices after warm-up"
    );
}

/// Routing evaluate through the workspace must not change its result:
/// pin against the allocating model path.
#[test]
fn evaluate_matches_allocating_inference() {
    let d = presets::scale_spec(&presets::ppi_spec(), 600).generate(7);
    let mut cfg = TrainerConfig::quick_test();
    cfg.epochs = 2;
    let mut t = GsGcnTrainer::new(&d, cfg).unwrap();
    t.train().unwrap();

    let probs = t.model().infer_probs(&d.graph, &d.features);
    let idx = &d.split.val;
    let reference = gsgcn_metrics::f1::f1_micro(
        &gsgcn_metrics::f1::binarize(&probs.gather_rows(idx), 0.5),
        &d.labels.gather_rows(idx),
    );
    let got = t.evaluate(EvalSplit::Val);
    assert_eq!(got, reference);
}
