//! BatchEngine behaviour tests: coalescing, max-wait flush, backpressure,
//! shutdown joins and panic poisoning (the PR-4 failure-surface pattern),
//! plus a full TCP round-trip.

use gsgcn_graph::GraphBuilder;
use gsgcn_nn::model::{GcnConfig, GcnModel, LossKind};
use gsgcn_serve::classifier::BatchClassify;
use gsgcn_serve::{
    AdmissionControl, BatchEngine, ClassifyWorkspace, EngineConfig, NodeClassifier, Prediction,
    ServeError, TrySubmitError,
};
use gsgcn_tensor::DMatrix;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn classifier() -> Arc<NodeClassifier> {
    let n = 24;
    let edges: Vec<(u32, u32)> = (0..n as u32)
        .map(|i| (i, (i + 1) % n as u32))
        .chain((0..n as u32 / 2).map(|i| (i, i + n as u32 / 2)))
        .collect();
    let g = GraphBuilder::new(n).add_edges(edges).build();
    let x = DMatrix::from_fn(n, 6, |i, j| ((i * 5 + j) % 9) as f32 * 0.2 - 0.7);
    let model = GcnModel::new(
        GcnConfig {
            in_dim: 6,
            hidden_dims: vec![8, 8],
            num_classes: 4,
            loss: LossKind::SoftmaxCe,
            ..GcnConfig::default()
        },
        23,
    );
    Arc::new(NodeClassifier::new(Arc::new(model), Arc::new(g), Arc::new(x)).unwrap())
}

fn cfg() -> EngineConfig {
    EngineConfig {
        workers: 1,
        max_batch: 64,
        max_wait: Duration::from_millis(20),
        queue_capacity: 64,
        admission: AdmissionControl::Block,
    }
}

#[test]
fn responses_match_direct_classification() {
    let c = classifier();
    let engine = BatchEngine::spawn(Arc::clone(&c), cfg()).unwrap();
    let direct = c.classify(&[3, 11, 20]).unwrap();
    let served = engine.classify(vec![3, 11, 20]).unwrap();
    assert_eq!(served, direct);
}

/// Requests submitted while a worker is assembling a batch must share
/// one forward: with a generous wait window and a single worker, k
/// concurrent small requests coalesce into one executed batch.
#[test]
fn concurrent_requests_coalesce_into_one_batch() {
    let c = classifier();
    let mut cfg = cfg();
    cfg.max_wait = Duration::from_millis(300);
    let engine = Arc::new(BatchEngine::spawn(c, cfg).unwrap());

    let handles: Vec<_> = (0..4u32)
        .map(|i| engine.submit(vec![i, i + 8]).unwrap())
        .collect();
    for h in handles {
        assert_eq!(h.wait().unwrap().len(), 2);
    }
    // All 4 requests (8 nodes ≤ max_batch) fit one coalescing window.
    assert_eq!(engine.requests(), 4);
    assert_eq!(
        engine.batches(),
        1,
        "4 small concurrent requests should coalesce into one forward"
    );
    assert_eq!(engine.nodes_classified(), 8);
}

/// A lone request must not wait for a batch that never fills: it flushes
/// within ~max_wait.
#[test]
fn lone_request_flushes_at_max_wait() {
    let c = classifier();
    let mut cfg = cfg();
    cfg.max_batch = 10_000; // can never fill
    cfg.max_wait = Duration::from_millis(30);
    let engine = BatchEngine::spawn(c, cfg).unwrap();
    let t0 = Instant::now();
    engine.classify(vec![5]).unwrap();
    let elapsed = t0.elapsed();
    assert!(
        elapsed < Duration::from_millis(500),
        "lone request took {elapsed:?} — max-wait flush broken?"
    );
}

/// Requests above max_batch are served alone (never split), and the
/// batch counter reflects the per-forward grouping.
#[test]
fn oversized_request_is_served_alone() {
    let c = classifier();
    let mut cfg = cfg();
    cfg.max_batch = 4;
    cfg.max_wait = Duration::from_millis(1);
    let engine = BatchEngine::spawn(c, cfg).unwrap();
    let nodes: Vec<u32> = (0..12).collect();
    let preds = engine.classify(nodes).unwrap();
    assert_eq!(preds.len(), 12);
    assert_eq!(engine.batches(), 1);
}

/// When the FIFO head no longer fits the batch being assembled, the
/// batch must flush immediately — waiting out max_wait could only delay
/// both the batch and the blocked head.
#[test]
fn blocked_head_flushes_batch_without_waiting() {
    let c = classifier();
    let mut cfg = cfg();
    cfg.max_batch = 64;
    cfg.max_wait = Duration::from_millis(2000);
    let engine = Arc::new(BatchEngine::spawn(c, cfg).unwrap());
    let t0 = Instant::now();
    // 40 + 40 > 64: B blocks A's batch → A flushes at once; B + C fill
    // the next batch exactly (64 = max_batch) → immediate flush too.
    let a = engine.submit((0..20).map(|i| i % 24).collect()).unwrap();
    let a2 = engine
        .submit((0..20).map(|i| (i + 1) % 24).collect())
        .unwrap();
    let b = engine.submit((0..40).map(|i| i % 24).collect()).unwrap();
    let c_req = engine.submit((0..24).collect()).unwrap();
    for h in [a, a2, b, c_req] {
        h.wait().unwrap();
    }
    assert!(
        t0.elapsed() < Duration::from_millis(1000),
        "blocked-head batch waited out the window: {:?}",
        t0.elapsed()
    );
}

#[test]
fn empty_request_is_rejected() {
    let engine = BatchEngine::spawn(classifier(), cfg()).unwrap();
    assert!(matches!(
        engine.submit(Vec::new()),
        Err(ServeError::BadRequest(_))
    ));
}

#[test]
fn out_of_range_node_fails_the_request() {
    let engine = BatchEngine::spawn(classifier(), cfg()).unwrap();
    match engine.classify(vec![0, 9999]) {
        Err(ServeError::BadRequest(m)) => assert!(m.contains("out of range"), "{m}"),
        other => panic!("expected BadRequest, got {other:?}"),
    }
    // The engine survives a bad request.
    assert_eq!(engine.classify(vec![0]).unwrap().len(), 1);
}

/// Dropping the engine joins the workers cleanly — empty, mid-traffic
/// and with requests still queued (which must fail, not hang).
#[test]
fn drop_joins_workers_cleanly() {
    // Idle engine.
    drop(BatchEngine::spawn(classifier(), cfg()).unwrap());

    // After traffic.
    let engine = BatchEngine::spawn(classifier(), cfg()).unwrap();
    engine.classify(vec![1, 2, 3]).unwrap();
    drop(engine); // deadlock here fails via test timeout
}

/// A slow classifier delays the queue; dropping the engine while
/// requests wait must fail them with ShuttingDown instead of hanging
/// their waiters.
struct SlowClassifier {
    inner: Arc<NodeClassifier>,
    delay: Duration,
}

impl BatchClassify for SlowClassifier {
    fn classify_into(
        &self,
        nodes: &[u32],
        ws: &mut ClassifyWorkspace,
        out: &mut Vec<Prediction>,
    ) -> Result<(), String> {
        std::thread::sleep(self.delay);
        self.inner.classify_into(nodes, ws, out)
    }
    fn num_nodes(&self) -> usize {
        self.inner.num_nodes()
    }
}

#[test]
fn drop_fails_queued_requests_with_shutting_down() {
    let slow = Arc::new(SlowClassifier {
        inner: classifier(),
        delay: Duration::from_millis(60),
    });
    let mut cfg = cfg();
    cfg.max_batch = 1; // no coalescing: each request is its own forward
    cfg.max_wait = Duration::from_millis(1);
    let engine = BatchEngine::spawn(slow, cfg).unwrap();
    // First request occupies the single worker; the rest sit queued.
    let handles: Vec<_> = (0..4u32).map(|i| engine.submit(vec![i]).unwrap()).collect();
    std::thread::sleep(Duration::from_millis(10));
    drop(engine);
    let results: Vec<_> = handles.into_iter().map(|h| h.wait()).collect();
    // At least the tail of the queue was never served.
    assert!(
        results
            .iter()
            .any(|r| matches!(r, Err(ServeError::ShuttingDown))),
        "queued requests should fail with ShuttingDown: {results:?}"
    );
    // And nothing hangs (reaching this line is the real assertion).
}

/// A classifier that panics on a trigger node.
struct PanickyClassifier {
    inner: Arc<NodeClassifier>,
    trigger: u32,
    calls: AtomicUsize,
}

impl BatchClassify for PanickyClassifier {
    fn classify_into(
        &self,
        nodes: &[u32],
        ws: &mut ClassifyWorkspace,
        out: &mut Vec<Prediction>,
    ) -> Result<(), String> {
        self.calls.fetch_add(1, Ordering::SeqCst);
        if nodes.contains(&self.trigger) {
            panic!("injected classify failure");
        }
        self.inner.classify_into(nodes, ws, out)
    }
    fn num_nodes(&self) -> usize {
        self.inner.num_nodes()
    }
}

/// A worker panic surfaces as WorkerPanicked on the failing request, on
/// everything queued behind it, and on all future submits — the engine
/// is poisoned, not hung (PR-4 pattern).
#[test]
fn panicking_worker_poisons_the_engine() {
    let panicky = Arc::new(PanickyClassifier {
        inner: classifier(),
        trigger: 7,
        calls: AtomicUsize::new(0),
    });
    let mut cfg = cfg();
    cfg.max_batch = 1;
    cfg.max_wait = Duration::from_millis(1);
    let engine = BatchEngine::spawn(panicky, cfg).unwrap();

    // Healthy traffic first.
    engine.classify(vec![1]).unwrap();

    match engine.classify(vec![7]) {
        Err(ServeError::WorkerPanicked(m)) => {
            assert!(m.contains("injected classify failure"), "{m}")
        }
        other => panic!("expected WorkerPanicked, got {other:?}"),
    }

    // Poison is sticky: future submits fail fast.
    let mut poisoned_submit = false;
    for _ in 0..50 {
        match engine.submit(vec![1]) {
            Err(ServeError::WorkerPanicked(_)) => {
                poisoned_submit = true;
                break;
            }
            Err(e) => panic!("unexpected error {e:?}"),
            // A still-draining worker may accept a stragglers' request;
            // give the poison a moment to propagate.
            Ok(h) => {
                let _ = h.wait();
                std::thread::sleep(Duration::from_millis(5));
            }
        }
    }
    assert!(poisoned_submit, "submit never surfaced the poison");
    // Drop after poison must still join cleanly.
    drop(engine);
}

/// Queue backpressure: submit blocks once queue_capacity requests wait,
/// rather than growing without bound.
#[test]
fn submit_blocks_on_full_queue() {
    let slow = Arc::new(SlowClassifier {
        inner: classifier(),
        delay: Duration::from_millis(40),
    });
    let mut cfg = cfg();
    cfg.max_batch = 1;
    cfg.max_wait = Duration::from_millis(1);
    cfg.queue_capacity = 2;
    let engine = Arc::new(BatchEngine::spawn(slow, cfg).unwrap());

    // Fill: 1 in flight + 2 queued.
    let h: Vec<_> = (0..3u32).map(|i| engine.submit(vec![i]).unwrap()).collect();
    // The 4th submit must block until the worker frees queue space —
    // observable as elapsed time on this thread.
    let t0 = Instant::now();
    let h4 = engine.submit(vec![3]).unwrap();
    assert!(
        t0.elapsed() >= Duration::from_millis(10),
        "submit returned instantly on a full queue"
    );
    for handle in h.into_iter().chain(std::iter::once(h4)) {
        handle.wait().unwrap();
    }
}

/// Shed admission: a full queue answers `overloaded` instead of
/// blocking, the engine keeps serving, and nothing hangs.
#[test]
fn shed_admission_returns_overloaded_without_blocking() {
    let slow = Arc::new(SlowClassifier {
        inner: classifier(),
        delay: Duration::from_millis(50),
    });
    let mut cfg = cfg();
    cfg.max_batch = 1;
    cfg.max_wait = Duration::from_millis(1);
    cfg.queue_capacity = 2;
    cfg.admission = AdmissionControl::Shed;
    let engine = Arc::new(BatchEngine::spawn(slow, cfg).unwrap());

    // Flood far past capacity. No submit may block (each call must
    // return well under the classifier delay), and the overflow must
    // surface as Overloaded somewhere — either synchronously or on a
    // shed queued request's handle.
    let mut handles = Vec::new();
    let mut sync_overloaded = 0u32;
    for i in 0..16u32 {
        let t0 = Instant::now();
        match engine.submit(vec![i % 24]) {
            Ok(h) => handles.push(h),
            Err(ServeError::Overloaded) => sync_overloaded += 1,
            Err(e) => panic!("unexpected error {e:?}"),
        }
        assert!(
            t0.elapsed() < Duration::from_millis(40),
            "shed-mode submit blocked for {:?}",
            t0.elapsed()
        );
    }
    let mut served = 0u32;
    let mut shed = 0u32;
    for h in handles {
        match h.wait() {
            Ok(_) => served += 1,
            Err(ServeError::Overloaded) => shed += 1,
            Err(e) => panic!("unexpected error {e:?}"),
        }
    }
    assert!(served > 0, "nothing was served under overload");
    assert!(
        shed + sync_overloaded > 0,
        "16 requests into a 2-slot queue shed nothing"
    );
    assert_eq!(engine.shed(), (shed + sync_overloaded) as u64);
    // The engine is healthy afterwards.
    assert_eq!(engine.classify(vec![5]).unwrap().len(), 1);
}

/// Block admission + try_submit: a full queue hands the nodes back as
/// `TrySubmitError::Full` instead of blocking the caller.
#[test]
fn try_submit_returns_full_instead_of_blocking() {
    let slow = Arc::new(SlowClassifier {
        inner: classifier(),
        delay: Duration::from_millis(50),
    });
    let mut cfg = cfg();
    cfg.max_batch = 1;
    cfg.max_wait = Duration::from_millis(1);
    cfg.queue_capacity = 1;
    let engine = BatchEngine::spawn(slow, cfg).unwrap();

    let mut got_full = false;
    let mut handles = Vec::new();
    for i in 0..8u32 {
        let t0 = Instant::now();
        match engine.try_submit(vec![i % 24]) {
            Ok(h) => handles.push(h),
            Err(TrySubmitError::Full(nodes)) => {
                assert_eq!(nodes, vec![i % 24], "nodes must come back intact");
                got_full = true;
            }
            Err(TrySubmitError::Rejected(e)) => panic!("unexpected rejection {e:?}"),
        }
        assert!(
            t0.elapsed() < Duration::from_millis(40),
            "try_submit blocked for {:?}",
            t0.elapsed()
        );
    }
    assert!(got_full, "8 try_submits into a 1-slot queue never saw Full");
    for h in handles {
        h.wait().unwrap();
    }
}

/// try_take polls without blocking: None while the engine is busy, the
/// result exactly once after fulfillment.
#[test]
fn response_handle_try_take_polls() {
    let slow = Arc::new(SlowClassifier {
        inner: classifier(),
        delay: Duration::from_millis(60),
    });
    let mut cfg = cfg();
    cfg.max_wait = Duration::from_millis(1);
    let engine = BatchEngine::spawn(slow, cfg).unwrap();
    let h = engine.submit(vec![3]).unwrap();
    assert!(h.try_take().is_none(), "result appeared before the forward");
    let t0 = Instant::now();
    loop {
        if let Some(r) = h.try_take() {
            assert_eq!(r.unwrap().len(), 1);
            break;
        }
        assert!(
            t0.elapsed() < Duration::from_secs(5),
            "try_take never saw the result"
        );
        std::thread::sleep(Duration::from_millis(2));
    }
}

/// Full TCP round-trip over the newline-delimited protocol.
#[test]
fn tcp_round_trip() {
    use std::io::{BufRead, BufReader, Write};

    let c = classifier();
    let engine = Arc::new(BatchEngine::spawn(Arc::clone(&c), cfg()).unwrap());
    let addr = gsgcn_serve::tcp::spawn(engine, "127.0.0.1:0").unwrap();

    let stream = std::net::TcpStream::connect(addr).unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);

    writer.write_all(b"3, 11 20\n").unwrap();
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    assert!(line.starts_with("ok "), "{line}");
    let triples: Vec<&str> = line.trim()[3..].split(' ').collect();
    assert_eq!(triples.len(), 3);
    let direct = c.classify(&[3, 11, 20]).unwrap();
    for (t, p) in triples.iter().zip(&direct) {
        let mut parts = t.split(':');
        assert_eq!(parts.next().unwrap(), p.node.to_string());
        assert_eq!(parts.next().unwrap(), p.labels[0].to_string());
    }

    // Bad id: error, connection stays usable.
    writer.write_all(b"999999\n").unwrap();
    line.clear();
    reader.read_line(&mut line).unwrap();
    assert!(line.starts_with("err "), "{line}");
    assert!(line.contains("out of range"), "{line}");

    writer.write_all(b"0\n").unwrap();
    line.clear();
    reader.read_line(&mut line).unwrap();
    assert!(line.starts_with("ok 0:"), "{line}");

    writer.write_all(b"quit\n").unwrap();
    line.clear();
    assert_eq!(
        reader.read_line(&mut line).unwrap(),
        0,
        "connection should close"
    );
}
