//! Front-end integration tests: the event-driven poller (line + binary
//! protocols, pipelining, idle eviction, max-conns) and the fixed
//! thread-per-connection front-end (EOF-mid-line, idle eviction,
//! shutdown joins — the PR-6 leak fix).

use gsgcn_graph::GraphBuilder;
use gsgcn_nn::model::{GcnConfig, GcnModel, LossKind};
use gsgcn_serve::classifier::BatchClassify;
use gsgcn_serve::poll::{wire, EventFrontend, FrontendConfig, Protocol};
use gsgcn_serve::tcp::{TcpConfig, TcpFrontend};
use gsgcn_serve::{
    AdmissionControl, BatchEngine, ClassifyWorkspace, EngineConfig, NodeClassifier, Prediction,
};
use std::io::{BufRead, BufReader, ErrorKind, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn classifier() -> Arc<NodeClassifier> {
    let n = 24;
    let edges: Vec<(u32, u32)> = (0..n as u32)
        .map(|i| (i, (i + 1) % n as u32))
        .chain((0..n as u32 / 2).map(|i| (i, i + n as u32 / 2)))
        .collect();
    let g = GraphBuilder::new(n).add_edges(edges).build();
    let x = gsgcn_tensor::DMatrix::from_fn(n, 6, |i, j| ((i * 5 + j) % 9) as f32 * 0.2 - 0.7);
    let model = GcnModel::new(
        GcnConfig {
            in_dim: 6,
            hidden_dims: vec![8, 8],
            num_classes: 4,
            loss: LossKind::SoftmaxCe,
            ..GcnConfig::default()
        },
        23,
    );
    Arc::new(NodeClassifier::new(Arc::new(model), Arc::new(g), Arc::new(x)).unwrap())
}

fn engine(c: Arc<NodeClassifier>) -> Arc<BatchEngine<NodeClassifier>> {
    Arc::new(
        BatchEngine::spawn(
            c,
            EngineConfig {
                workers: 1,
                max_batch: 64,
                max_wait: Duration::from_millis(5),
                queue_capacity: 64,
                admission: AdmissionControl::Block,
            },
        )
        .unwrap(),
    )
}

/// Read exactly one binary response frame off a blocking stream.
fn read_frame(stream: &mut TcpStream, buf: &mut Vec<u8>) -> (u64, wire::WireResponse) {
    let mut chunk = [0u8; 4096];
    loop {
        if let Some((used, id, resp)) = wire::try_decode_response(buf).expect("well-formed frame") {
            buf.drain(..used);
            return (id, resp);
        }
        let n = stream.read(&mut chunk).expect("read");
        assert!(n > 0, "connection closed mid-frame");
        buf.extend_from_slice(&chunk[..n]);
    }
}

#[test]
fn poll_line_protocol_round_trip() {
    let c = classifier();
    let eng = engine(Arc::clone(&c));
    let fe = EventFrontend::spawn(eng, "127.0.0.1:0", FrontendConfig::default()).unwrap();

    let stream = TcpStream::connect(fe.local_addr()).unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);
    let mut line = String::new();

    writer.write_all(b"3, 11 20\n").unwrap();
    reader.read_line(&mut line).unwrap();
    assert!(line.starts_with("ok "), "{line}");
    assert_eq!(line.trim()[3..].split(' ').count(), 3);
    let direct = c.classify(&[3, 11, 20]).unwrap();
    let first = line.trim()[3..].split(' ').next().unwrap();
    assert!(
        first.starts_with(&format!("3:{}", direct[0].labels[0])),
        "{first}"
    );

    // Bad id: error reply, connection stays usable.
    writer.write_all(b"999999\n").unwrap();
    line.clear();
    reader.read_line(&mut line).unwrap();
    assert!(
        line.starts_with("err ") && line.contains("out of range"),
        "{line}"
    );

    writer.write_all(b"0\n").unwrap();
    line.clear();
    reader.read_line(&mut line).unwrap();
    assert!(line.starts_with("ok 0:"), "{line}");

    writer.write_all(b"quit\n").unwrap();
    line.clear();
    assert_eq!(reader.read_line(&mut line).unwrap(), 0, "should close");
    fe.shutdown();
}

#[test]
fn poll_binary_protocol_pipelines_in_order() {
    let c = classifier();
    let eng = engine(Arc::clone(&c));
    let cfg = FrontendConfig {
        protocol: Protocol::Binary,
        ..FrontendConfig::default()
    };
    let fe = EventFrontend::spawn(eng, "127.0.0.1:0", cfg).unwrap();

    let mut stream = TcpStream::connect(fe.local_addr()).unwrap();
    // Pipeline 8 requests in one write, ids 100..108.
    let mut out = Vec::new();
    for i in 0..8u64 {
        wire::encode_request(100 + i, &[i as u32, (i as u32 + 7) % 24], &mut out);
    }
    // And one bad request in the middle of the stream.
    wire::encode_request(999, &[23, 9999], &mut out);
    stream.write_all(&out).unwrap();

    let direct = |n: &[u32]| c.classify(n).unwrap();
    let mut buf = Vec::new();
    for i in 0..8u64 {
        let (id, resp) = read_frame(&mut stream, &mut buf);
        assert_eq!(id, 100 + i, "replies must come back in request order");
        let wire::WireResponse::Ok(preds) = resp else {
            panic!("unexpected response for id {id}: {resp:?}");
        };
        let want = direct(&[i as u32, (i as u32 + 7) % 24]);
        assert_eq!(preds.len(), 2);
        for (p, w) in preds.iter().zip(&want) {
            assert_eq!(p.node, w.node);
            assert_eq!(p.labels, w.labels);
            assert!((p.max_prob - w.max_prob()).abs() < 1e-6);
        }
    }
    let (id, resp) = read_frame(&mut stream, &mut buf);
    assert_eq!(id, 999);
    let wire::WireResponse::Err(m) = resp else {
        panic!("expected error frame, got {resp:?}");
    };
    assert!(m.contains("out of range"), "{m}");
    assert_eq!(fe.stats().requests.load(Ordering::Relaxed), 9);
    fe.shutdown();
}

#[test]
fn poll_evicts_idle_connections() {
    let eng = engine(classifier());
    let cfg = FrontendConfig {
        idle_timeout: Duration::from_millis(150),
        ..FrontendConfig::default()
    };
    let fe = EventFrontend::spawn(eng, "127.0.0.1:0", cfg).unwrap();

    let stream = TcpStream::connect(fe.local_addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    // Sit idle: the front-end must close on us.
    assert_eq!(reader.read_line(&mut line).unwrap(), 0, "not evicted");
    assert!(fe.stats().evicted_idle.load(Ordering::Relaxed) >= 1);
    fe.shutdown();
}

#[test]
fn poll_refuses_connections_past_max_conns() {
    let eng = engine(classifier());
    let cfg = FrontendConfig {
        max_conns: 1,
        ..FrontendConfig::default()
    };
    let fe = EventFrontend::spawn(eng, "127.0.0.1:0", cfg).unwrap();

    let keeper = TcpStream::connect(fe.local_addr()).unwrap();
    let mut kw = keeper.try_clone().unwrap();
    let mut kr = BufReader::new(keeper);
    let mut line = String::new();
    kw.write_all(b"1\n").unwrap();
    kr.read_line(&mut line).unwrap();
    assert!(line.starts_with("ok "), "{line}");

    // Second connection: one `overloaded` line, then close.
    let extra = TcpStream::connect(fe.local_addr()).unwrap();
    extra
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let mut er = BufReader::new(extra);
    line.clear();
    let t0 = Instant::now();
    loop {
        match er.read_line(&mut line) {
            Ok(_) => break,
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                assert!(t0.elapsed() < Duration::from_secs(5), "no refusal reply");
            }
            Err(e) => panic!("read failed: {e}"),
        }
    }
    assert_eq!(line.trim(), "overloaded", "{line}");
    assert!(fe.stats().refused.load(Ordering::Relaxed) >= 1);

    // The first connection is unaffected.
    kw.write_all(b"2\n").unwrap();
    line.clear();
    kr.read_line(&mut line).unwrap();
    assert!(line.starts_with("ok "), "{line}");
    fe.shutdown();
}

/// Shed admission end-to-end over the binary protocol: flooding a tiny
/// queue yields explicit status-2 `overloaded` frames, not hangs.
struct SlowClassifier(Arc<NodeClassifier>);

impl BatchClassify for SlowClassifier {
    fn classify_into(
        &self,
        nodes: &[u32],
        ws: &mut ClassifyWorkspace,
        out: &mut Vec<Prediction>,
    ) -> Result<(), String> {
        std::thread::sleep(Duration::from_millis(30));
        self.0.classify_into(nodes, ws, out)
    }
    fn num_nodes(&self) -> usize {
        self.0.num_nodes()
    }
}

#[test]
fn poll_shed_overload_replies_overloaded() {
    let eng = Arc::new(
        BatchEngine::spawn(
            Arc::new(SlowClassifier(classifier())),
            EngineConfig {
                workers: 1,
                max_batch: 1,
                max_wait: Duration::from_millis(1),
                queue_capacity: 2,
                admission: AdmissionControl::Shed,
            },
        )
        .unwrap(),
    );
    let cfg = FrontendConfig {
        protocol: Protocol::Binary,
        ..FrontendConfig::default()
    };
    let fe = EventFrontend::spawn(eng, "127.0.0.1:0", cfg).unwrap();

    let mut stream = TcpStream::connect(fe.local_addr()).unwrap();
    let total = 24u64;
    let mut out = Vec::new();
    for i in 0..total {
        wire::encode_request(i, &[(i % 24) as u32], &mut out);
    }
    stream.write_all(&out).unwrap();
    let mut buf = Vec::new();
    let (mut served, mut shed) = (0u32, 0u32);
    for want in 0..total {
        let (id, resp) = read_frame(&mut stream, &mut buf);
        assert_eq!(id, want, "order must survive shedding");
        match resp {
            wire::WireResponse::Ok(_) => served += 1,
            wire::WireResponse::Overloaded => shed += 1,
            wire::WireResponse::Err(m) => panic!("unexpected err {m}"),
        }
    }
    assert!(served > 0, "nothing served under overload");
    assert!(shed > 0, "24 requests into a 2-slot queue shed nothing");
    fe.shutdown();
}

#[test]
fn tcp_serves_final_partial_line_on_eof() {
    let eng = engine(classifier());
    let fe = TcpFrontend::spawn(eng, "127.0.0.1:0", TcpConfig::default()).unwrap();

    let stream = TcpStream::connect(fe.local_addr()).unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);
    // EOF mid-line: no trailing newline, then close the write half. The
    // old front-end parked its handler thread forever here.
    writer.write_all(b"0 5").unwrap();
    writer.shutdown(std::net::Shutdown::Write).unwrap();
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    assert!(line.starts_with("ok 0:"), "{line}");
    line.clear();
    assert_eq!(reader.read_line(&mut line).unwrap(), 0, "should close");
    // Shutdown joining proves the handler thread exited (a leaked
    // parked thread would hang the join and time the test out).
    fe.shutdown();
}

#[test]
fn tcp_evicts_idle_connections_and_joins() {
    let eng = engine(classifier());
    let cfg = TcpConfig {
        idle_timeout: Duration::from_millis(150),
        ..TcpConfig::default()
    };
    let fe = TcpFrontend::spawn(eng, "127.0.0.1:0", cfg).unwrap();

    let stream = TcpStream::connect(fe.local_addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    assert_eq!(reader.read_line(&mut line).unwrap(), 0, "not evicted");
    assert_eq!(fe.evicted_idle(), 1);
    let t0 = Instant::now();
    while fe.live_conns() > 0 {
        assert!(t0.elapsed() < Duration::from_secs(5), "gauge never dropped");
        std::thread::sleep(Duration::from_millis(5));
    }
    fe.shutdown();
}

#[test]
fn tcp_refuses_connections_past_max_conns() {
    let eng = engine(classifier());
    let cfg = TcpConfig {
        max_conns: 1,
        ..TcpConfig::default()
    };
    let fe = TcpFrontend::spawn(eng, "127.0.0.1:0", cfg).unwrap();

    let keeper = TcpStream::connect(fe.local_addr()).unwrap();
    let mut kw = keeper.try_clone().unwrap();
    let mut kr = BufReader::new(keeper);
    let mut line = String::new();
    kw.write_all(b"1\n").unwrap();
    kr.read_line(&mut line).unwrap();
    assert!(line.starts_with("ok "), "{line}");

    let extra = TcpStream::connect(fe.local_addr()).unwrap();
    extra
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let mut er = BufReader::new(extra);
    line.clear();
    er.read_line(&mut line).unwrap();
    assert_eq!(line.trim(), "overloaded", "{line}");
    assert!(fe.refused() >= 1);
    fe.shutdown();
}
