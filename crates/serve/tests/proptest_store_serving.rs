//! Serving-side mem-vs-mmap equivalence: the probabilities a classifier
//! reports must not depend on which `GraphStore` backend sits under it.
//! The forward is floating-point over identical inputs (the mmap store
//! round-trips rows bit-exactly), so the tolerance is the serving
//! contract's 1e-4 — and the shard-aware request validation must reject
//! the same out-of-range ids either way.

use gsgcn_graph::{CsrGraph, GraphBuilder, GraphStore, StoreBackend};
use gsgcn_nn::model::{GcnConfig, GcnModel, LossKind};
use gsgcn_serve::{ClassifyWorkspace, NodeClassifier};
use gsgcn_tensor::DMatrix;
use proptest::prelude::*;
use std::sync::Arc;

fn rand_graph(n: usize, extra: usize, seed: u64) -> CsrGraph {
    let mut edges: Vec<(u32, u32)> = (0..n as u32).map(|i| (i, (i + 1) % n as u32)).collect();
    let mut s = seed | 1;
    for _ in 0..extra {
        s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let a = ((s >> 33) as usize) % n;
        s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let b = ((s >> 33) as usize) % n;
        if a != b {
            edges.push((a as u32, b as u32));
        }
    }
    GraphBuilder::new(n).add_edges(edges).build()
}

fn both_backends(
    n: usize,
    depth: usize,
    loss: LossKind,
    seed: u64,
) -> (NodeClassifier, NodeClassifier) {
    let g = Arc::new(rand_graph(n, 3 * n, seed));
    let x = Arc::new(DMatrix::from_fn(n, 5, |i, j| {
        ((seed as usize)
            .wrapping_mul(41)
            .wrapping_add(i * 131 + j * 37)
            % 17) as f32
            * 0.13
            - 1.0
    }));
    let model = Arc::new(GcnModel::new(
        GcnConfig {
            in_dim: 5,
            hidden_dims: vec![8; depth],
            num_classes: 4,
            loss,
            ..GcnConfig::default()
        },
        seed ^ 0xBEEF,
    ));
    let mk = |backend| {
        let store =
            GraphStore::from_parts(backend, Arc::clone(&g), Some(Arc::clone(&x)), None).unwrap();
        NodeClassifier::from_store(Arc::clone(&model), Arc::new(store))
            .unwrap()
            .with_cache(None)
    };
    (mk(StoreBackend::Mem), mk(StoreBackend::Mmap))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Classified probabilities agree within 1e-4 between backends, for
    /// random graphs, depths, losses and query batches — and the decided
    /// label sets match exactly.
    #[test]
    fn serving_probs_backend_invariant(
        n in 6usize..40,
        depth in 1usize..4,
        softmax in any::<bool>(),
        seed in any::<u64>(),
        picks in proptest::collection::vec(any::<u32>(), 1..12),
    ) {
        let loss = if softmax { LossKind::SoftmaxCe } else { LossKind::SigmoidBce };
        let (mem, mmap) = both_backends(n, depth, loss, seed);
        let nodes: Vec<u32> = picks.iter().map(|&p| p % n as u32).collect();
        let (mut ws_a, mut ws_b) = (ClassifyWorkspace::new(), ClassifyWorkspace::new());
        let (mut out_a, mut out_b) = (Vec::new(), Vec::new());
        mem.classify_into(&nodes, &mut ws_a, &mut out_a).unwrap();
        mmap.classify_into(&nodes, &mut ws_b, &mut out_b).unwrap();
        prop_assert_eq!(out_a.len(), out_b.len());
        for (a, b) in out_a.iter().zip(&out_b) {
            prop_assert_eq!(a.node, b.node);
            prop_assert_eq!(&a.labels, &b.labels, "node {}", a.node);
            prop_assert_eq!(a.probs.len(), b.probs.len());
            for (pa, pb) in a.probs.iter().zip(&b.probs) {
                prop_assert!((pa - pb).abs() <= 1e-4, "node {}: {} vs {}", a.node, pa, pb);
            }
        }
    }

    /// Both backends reject the same out-of-range ids, and a bad id in a
    /// batch fails that request without classifying anything.
    #[test]
    fn bad_ids_rejected_identically(n in 6usize..40, seed in any::<u64>(), over in 0u32..1000) {
        let (mem, mmap) = both_backends(n, 1, LossKind::SoftmaxCe, seed);
        let bad = n as u32 + over;
        let nodes = vec![0, bad, 1];
        let mut ws = ClassifyWorkspace::new();
        let mut out = Vec::new();
        let e_mem = mem.classify_into(&nodes, &mut ws, &mut out).unwrap_err();
        prop_assert!(out.is_empty());
        let e_mmap = mmap.classify_into(&nodes, &mut ws, &mut out).unwrap_err();
        prop_assert!(out.is_empty());
        prop_assert!(e_mem.contains(&bad.to_string()), "{}", e_mem);
        prop_assert!(e_mmap.contains(&bad.to_string()), "{}", e_mmap);
    }
}
