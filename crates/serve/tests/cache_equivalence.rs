//! Cached-vs-uncached serving equivalence: attaching an
//! [`ActivationCache`] must never change an answer.
//!
//! The contract (see `gsgcn_serve::cache`): a cold cache leaves the
//! exact cone-pruned path untouched — **bit-identical** answers — and a
//! warm cache replays `acts^{L-1}` rows that the exact path itself
//! computed, so warm answers agree within float-accumulation noise
//! (≤ 1e-4) across kernel tiers, depths and eviction pressure.

use gsgcn_graph::{CsrGraph, GraphBuilder};
use gsgcn_nn::model::{GcnConfig, GcnModel, LossKind};
use gsgcn_serve::{ActivationCache, NodeClassifier};
use gsgcn_tensor::{gemm, DMatrix};
use proptest::prelude::*;
use std::sync::Arc;

const N_DIMS: [usize; 4] = [9, 17, 40, 65];
/// Cache depths start at 2: a 1-layer model has no hidden activations
/// to cache (the classifier refuses the attachment).
const DEPTHS: [usize; 2] = [2, 3];

fn rand_graph(n: usize, extra: usize, seed: u64) -> CsrGraph {
    let mut edges: Vec<(u32, u32)> = (0..n as u32).map(|i| (i, (i + 1) % n as u32)).collect();
    let mut s = seed | 1;
    for _ in 0..extra {
        s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let a = ((s >> 33) as usize) % n;
        s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let b = ((s >> 33) as usize) % n;
        if a != b {
            edges.push((a as u32, b as u32));
        }
    }
    GraphBuilder::new(n).add_edges(edges).build()
}

fn classifier_for(n: usize, depth: usize, loss: LossKind, seed: u64) -> NodeClassifier {
    let g = rand_graph(n, 3 * n, seed);
    let x = DMatrix::from_fn(n, 5, |i, j| {
        ((seed as usize)
            .wrapping_mul(41)
            .wrapping_add(i * 131 + j * 37)
            % 17) as f32
            * 0.13
            - 1.0
    });
    let model = GcnModel::new(
        GcnConfig {
            in_dim: 5,
            hidden_dims: vec![8; depth],
            num_classes: 4,
            loss,
            ..GcnConfig::default()
        },
        seed ^ 0xBEEF,
    );
    NodeClassifier::new(Arc::new(model), Arc::new(g), Arc::new(x))
        .unwrap()
        // Pin the baseline regardless of GSGCN_ACTIVATION_CACHE (the CI
        // matrix sets it); cached variants attach explicitly below.
        .with_cache(None)
}

fn batch_of(n: usize, seed: u64) -> Vec<u32> {
    (0..n as u32)
        .filter(|v| (v.wrapping_mul(2654435761).wrapping_add(seed as u32)) % 3 == 0)
        .chain([(seed % n as u64) as u32])
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Cold pass bit-identical, warm pass ≤ 1e-4, on every available
    /// kernel tier — and the warm pass must actually hit the cache. The
    /// uncached baseline is computed **per tier**: the contract is that
    /// attaching a cache never changes that tier's answer, not that
    /// tiers agree with each other (under bf16 storage the top tier's
    /// native dot-product kernel is tolerance-banded, not bit-identical,
    /// against the widen tiers).
    #[test]
    fn cached_matches_uncached_across_tiers(
        ni in 0..N_DIMS.len(),
        di in 0..DEPTHS.len(),
        single in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let n = N_DIMS[ni];
        let loss = if single { LossKind::SoftmaxCe } else { LossKind::SigmoidBce };
        let uncached = classifier_for(n, DEPTHS[di], loss, seed);
        let batch = batch_of(n, seed);

        for tier in gemm::available_tiers() {
            let cache = Arc::new(ActivationCache::new(8 << 20));
            let cached = classifier_for(n, DEPTHS[di], loss, seed)
                .with_cache(Some(Arc::clone(&cache)));
            let (baseline, cold, warm) = gemm::with_tier(tier, || {
                (
                    uncached.classify(&batch).unwrap(),
                    cached.classify(&batch).unwrap(),
                    cached.classify(&batch).unwrap(),
                )
            });
            let probed = cache.stats();
            prop_assert!(
                probed.hits > 0,
                "tier {}: warm pass never hit the cache ({probed:?})",
                tier.name()
            );
            for (p, b) in cold.iter().zip(&baseline) {
                prop_assert_eq!(p.node, b.node);
                prop_assert!(
                    p.probs.as_slice() == b.probs.as_slice(),
                    "tier {} node {}: cold cache not bit-identical",
                    tier.name(), p.node
                );
            }
            for (p, b) in warm.iter().zip(&baseline) {
                prop_assert_eq!(p.node, b.node);
                prop_assert_eq!(p.labels.clone(), b.labels.clone());
                for (k, (a, v)) in p.probs.iter().zip(&b.probs).enumerate() {
                    prop_assert!(
                        (a - v).abs() < 1e-4,
                        "tier {} node {} class {k}: warm {a} vs uncached {v}",
                        tier.name(), p.node
                    );
                }
            }
        }
    }

    /// A starved cache (room for a handful of rows) thrashes through
    /// evictions but never changes an answer.
    #[test]
    fn eviction_pressure_preserves_equivalence(
        ni in 0..N_DIMS.len(),
        seed in any::<u64>(),
    ) {
        let n = N_DIMS[ni];
        let uncached = classifier_for(n, 2, LossKind::SoftmaxCe, seed);
        // ~6 rows of 8 f32 across 1 shard: constant eviction churn.
        let cache = Arc::new(ActivationCache::with_shards(6 * (8 * 4 + 64), 1));
        let cached = classifier_for(n, 2, LossKind::SoftmaxCe, seed)
            .with_cache(Some(Arc::clone(&cache)));
        for round in 0..6u64 {
            let batch = batch_of(n, seed.wrapping_add(round * 7919));
            let want = uncached.classify(&batch).unwrap();
            let got = cached.classify(&batch).unwrap();
            for (p, b) in got.iter().zip(&want) {
                prop_assert_eq!(p.node, b.node);
                for (a, v) in p.probs.iter().zip(&b.probs) {
                    prop_assert!((a - v).abs() < 1e-4, "node {} under eviction", p.node);
                }
            }
        }
        prop_assert!(
            cache.stats().resident_bytes <= cache.budget_bytes(),
            "budget violated: {:?}", cache.stats()
        );
    }
}

/// Bumping the model version invalidates every cached row: the next
/// query recomputes (misses), re-warms, and stays correct.
#[test]
fn version_bump_invalidates_and_rewarms() {
    let n = 40;
    let uncached = classifier_for(n, 2, LossKind::SigmoidBce, 11);
    let cache = Arc::new(ActivationCache::new(8 << 20));
    let cached =
        classifier_for(n, 2, LossKind::SigmoidBce, 11).with_cache(Some(Arc::clone(&cache)));
    let batch = batch_of(n, 11);
    let want = uncached.classify(&batch).unwrap();

    cached.classify(&batch).unwrap(); // cold: warms the cache
    cached.classify(&batch).unwrap(); // warm
    let warm_hits = cache.stats().hits;
    assert!(warm_hits > 0, "warm pass never hit: {:?}", cache.stats());

    cache.bump_version();
    let after = cached.classify(&batch).unwrap(); // stale: must recompute
    let s = cache.stats();
    assert_eq!(
        s.hits, warm_hits,
        "a stale-version probe counted as a hit: {s:?}"
    );
    assert!(s.misses > 0, "version bump produced no misses: {s:?}");
    for (p, b) in after.iter().zip(&want) {
        assert_eq!(p.node, b.node);
        assert!(
            p.probs.as_slice() == b.probs.as_slice(),
            "post-bump recompute not bit-identical at node {}",
            p.node
        );
    }
    // And the recompute re-warmed the cache for the next round.
    cached.classify(&batch).unwrap();
    assert!(cache.stats().hits > warm_hits, "cache never re-warmed");
}
