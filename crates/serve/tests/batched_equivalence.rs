//! Batched-vs-full inference equivalence: the probabilities a K-node
//! batch reads off its L-hop induced subgraph must match the full-graph
//! forward within 1e-4 on random graphs and batches, across GEMM kernel
//! tiers and thread counts — and be **bit-identical** when the batch is
//! the whole node set (the extraction is then the identity).
//!
//! This is the correctness contract of the serving path: the engine may
//! coalesce, re-batch and parallelise however it likes, but a query's
//! answer never depends on how it was batched.

use gsgcn_graph::{CsrGraph, GraphBuilder};
use gsgcn_nn::model::{GcnConfig, GcnModel, LossKind};
use gsgcn_serve::NodeClassifier;
use gsgcn_tensor::{gemm, DMatrix};
use proptest::prelude::*;
use std::sync::Arc;

const N_DIMS: [usize; 5] = [3, 9, 17, 40, 65];
const THREADS: [usize; 3] = [1, 2, 4];
const DEPTHS: [usize; 3] = [1, 2, 3];

fn rand_graph(n: usize, extra: usize, seed: u64) -> CsrGraph {
    let mut edges: Vec<(u32, u32)> = (0..n as u32).map(|i| (i, (i + 1) % n as u32)).collect();
    let mut s = seed | 1;
    for _ in 0..extra {
        s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let a = ((s >> 33) as usize) % n;
        s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let b = ((s >> 33) as usize) % n;
        if a != b {
            edges.push((a as u32, b as u32));
        }
    }
    GraphBuilder::new(n).add_edges(edges).build()
}

fn mat(rows: usize, cols: usize, seed: u64) -> DMatrix {
    DMatrix::from_fn(rows, cols, |i, j| {
        let x = (seed as usize)
            .wrapping_mul(41)
            .wrapping_add(i * 131 + j * 37)
            % 17;
        x as f32 * 0.13 - 1.0
    })
}

fn in_pool<R: Send>(threads: usize, f: impl FnOnce() -> R + Send) -> R {
    rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .unwrap()
        .install(f)
}

fn classifier_for(n: usize, depth: usize, loss: LossKind, seed: u64) -> NodeClassifier {
    let g = rand_graph(n, 3 * n, seed);
    let x = mat(n, 5, seed ^ 0xF00D);
    let model = GcnModel::new(
        GcnConfig {
            in_dim: 5,
            hidden_dims: vec![8; depth],
            num_classes: 4,
            loss,
            ..GcnConfig::default()
        },
        seed ^ 0xBEEF,
    );
    NodeClassifier::new(Arc::new(model), Arc::new(g), Arc::new(x)).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random batch on a random graph: batched probs ≈ full-graph probs
    /// (1e-4), for every available kernel tier and across thread counts.
    #[test]
    fn batched_matches_full_graph(
        ni in 0..N_DIMS.len(),
        di in 0..DEPTHS.len(),
        ti in 0..THREADS.len(),
        single in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let n = N_DIMS[ni];
        let loss = if single { LossKind::SoftmaxCe } else { LossKind::SigmoidBce };
        let c = classifier_for(n, DEPTHS[di], loss, seed);
        // Batch: a pseudo-random subset (~1/3) of the nodes, never empty.
        let batch: Vec<u32> = (0..n as u32)
            .filter(|v| (v.wrapping_mul(2654435761).wrapping_add(seed as u32)) % 3 == 0)
            .chain([(seed % n as u64) as u32])
            .collect();

        let full = c.full_graph_probs();
        for tier in gemm::available_tiers() {
            let preds = gemm::with_tier(tier, || {
                in_pool(THREADS[ti], || c.classify(&batch).unwrap())
            });
            for p in &preds {
                let want = full.row(p.node as usize);
                for (k, (a, b)) in p.probs.iter().zip(want).enumerate() {
                    prop_assert!(
                        (a - b).abs() < 1e-4,
                        "tier {} node {} class {k}: batched {a} vs full {b}",
                        tier.name(), p.node
                    );
                }
            }
        }
    }

    /// The identity batch (every node) is bit-identical to the full
    /// forward: extraction degenerates to a relabel-free copy and the
    /// kernels see the exact same operands.
    #[test]
    fn whole_node_set_is_bit_identical(
        ni in 0..N_DIMS.len(),
        di in 0..DEPTHS.len(),
        single in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let n = N_DIMS[ni];
        let loss = if single { LossKind::SoftmaxCe } else { LossKind::SigmoidBce };
        let c = classifier_for(n, DEPTHS[di], loss, seed);
        let full = c.full_graph_probs();
        let all: Vec<u32> = (0..n as u32).collect();
        let preds = c.classify(&all).unwrap();
        for p in &preds {
            prop_assert!(
                p.probs.as_slice() == full.row(p.node as usize),
                "node {} not bit-identical on the identity batch",
                p.node
            );
        }
    }

    /// Batching is invisible: splitting a query set across separate
    /// batches gives the same answers as one batch.
    #[test]
    fn batch_partitioning_is_invisible(
        ni in 0..N_DIMS.len(),
        seed in any::<u64>(),
    ) {
        let n = N_DIMS[ni];
        let c = classifier_for(n, 2, LossKind::SoftmaxCe, seed);
        let nodes: Vec<u32> = (0..n as u32).step_by(2).collect();
        let together = c.classify(&nodes).unwrap();
        let mid = nodes.len() / 2;
        let mut split = c.classify(&nodes[..mid.max(1)]).unwrap();
        split.extend(c.classify(&nodes[mid.max(1)..]).unwrap());
        for (a, b) in together.iter().zip(&split) {
            prop_assert_eq!(a.node, b.node);
            for (x, y) in a.probs.iter().zip(&b.probs) {
                prop_assert!((x - y).abs() < 1e-4, "node {}: {x} vs {y}", a.node);
            }
        }
    }
}
