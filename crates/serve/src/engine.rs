//! The batched inference engine: a bounded request queue, a coalescing
//! batcher and N worker threads sharing one immutable model.
//!
//! See the crate docs for the dataflow picture. Design points:
//!
//! * **Bounded queue + admission** — what a full queue does is
//!   [`AdmissionControl`]'s call: `Block` parks the caller
//!   (backpressure, the PR-4 pipeline bound applied to the serving
//!   side), `Shed` fails the minimum-weight request with
//!   [`ServeError::Overloaded`] and claims work by weight (see
//!   [`crate::admission`]). Submission to a stopped or poisoned engine
//!   fails immediately; [`BatchEngine::try_submit`] is the non-blocking
//!   variant the event front-end uses.
//! * **Coalescing batcher** — a free worker claims the queue head, then
//!   keeps absorbing whole requests until the batch reaches
//!   `max_batch` query nodes or `max_wait` has elapsed since it started
//!   assembling, whichever is first. Small concurrent requests therefore
//!   share one L-hop extraction + forward; a lone request never waits
//!   longer than `max_wait`. A single request larger than `max_batch` is
//!   served alone (requests are never split).
//! * **Workers** — dedicated OS threads (not rayon tasks — same
//!   reasoning as the sampler pipeline: long-lived loops must not sit in
//!   the compute pool the GEMMs need). Each owns a
//!   [`ClassifyWorkspace`], so a warm worker classifies without matrix
//!   allocations; the model/graph/features are shared immutably through
//!   the [`NodeClassifier`].
//! * **Shutdown** — dropping the engine raises the stop flag, wakes
//!   every parked thread and joins the workers (the PR-4
//!   stop-flag+join protocol). Requests still queued at shutdown fail
//!   with [`ServeError::ShuttingDown`]; a batch already claimed by a
//!   worker is finished first (bounded work).
//! * **Panic containment** — a worker panic is caught, the payload is
//!   parked in the shared state, and the engine is *poisoned*: the
//!   failing batch's requests, everything still queued and every future
//!   submit or wait fail with [`ServeError::WorkerPanicked`] instead of
//!   hanging a client forever.

use crate::admission::{AdmissionControl, Claim, Frontier};
use crate::classifier::{BatchClassify, ClassifyWorkspace, NodeClassifier, Prediction};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Configuration of a [`BatchEngine`].
#[derive(Clone, Copy, Debug)]
pub struct EngineConfig {
    /// Worker threads running forwards (≥ 1).
    pub workers: usize,
    /// Coalescing bound: maximum query nodes per forward batch.
    pub max_batch: usize,
    /// Coalescing window: a batch is flushed at the latest this long
    /// after its first request was claimed.
    pub max_wait: Duration,
    /// Bound on queued (not yet claimed) requests; what happens beyond
    /// it is `admission`'s call.
    pub queue_capacity: usize,
    /// Full-queue policy: [`AdmissionControl::Block`] parks submitters
    /// (backpressure, the original engine behavior);
    /// [`AdmissionControl::Shed`] never blocks — the minimum-weight
    /// request fails with [`ServeError::Overloaded`] instead.
    pub admission: AdmissionControl,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            workers: 1,
            max_batch: 64,
            max_wait: Duration::from_micros(200),
            queue_capacity: 1024,
            admission: AdmissionControl::Block,
        }
    }
}

impl EngineConfig {
    fn validate(&self) -> Result<(), String> {
        if self.workers == 0 {
            return Err("engine needs at least one worker".into());
        }
        if self.max_batch == 0 {
            return Err("max_batch must be ≥ 1".into());
        }
        if self.queue_capacity == 0 {
            return Err("queue_capacity must be ≥ 1".into());
        }
        Ok(())
    }
}

/// Why a request failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServeError {
    /// The request itself was invalid (e.g. node id out of range).
    BadRequest(String),
    /// The engine is shutting down; the request was not served.
    ShuttingDown,
    /// A worker thread panicked; the engine is poisoned.
    WorkerPanicked(String),
    /// Admission control shed this request under overload
    /// ([`AdmissionControl::Shed`] with a full queue). The client may
    /// retry with backoff.
    Overloaded,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::BadRequest(m) => write!(f, "bad request: {m}"),
            ServeError::ShuttingDown => write!(f, "engine is shutting down"),
            ServeError::WorkerPanicked(m) => write!(f, "serve worker panicked: {m}"),
            ServeError::Overloaded => write!(f, "overloaded"),
        }
    }
}

impl std::error::Error for ServeError {}

/// Outcome of [`BatchEngine::try_submit`] when the request was not
/// enqueued.
#[derive(Debug)]
pub enum TrySubmitError {
    /// Block-mode queue is full right now; the nodes are handed back so
    /// the caller can retry without re-validating or re-allocating.
    Full(Vec<u32>),
    /// The request failed for real (bad ids, shutdown, poisoned engine,
    /// or shed under overload).
    Rejected(ServeError),
}

/// One-shot response slot shared between the submitting client and the
/// worker that serves the request.
struct ResponseSlot {
    result: Mutex<Option<Result<Vec<Prediction>, ServeError>>>,
    ready: Condvar,
}

impl ResponseSlot {
    fn fulfill(&self, r: Result<Vec<Prediction>, ServeError>) {
        let mut slot = self.result.lock().unwrap_or_else(|p| p.into_inner());
        // First writer wins (a poisoning sweep may race the worker that
        // already owns the batch).
        if slot.is_none() {
            *slot = Some(r);
        }
        drop(slot);
        self.ready.notify_all();
    }
}

/// Handle returned by [`BatchEngine::submit`]; redeem with
/// [`ResponseHandle::wait`].
pub struct ResponseHandle {
    slot: Arc<ResponseSlot>,
}

impl ResponseHandle {
    /// Block until the engine answers (or fails) this request.
    pub fn wait(self) -> Result<Vec<Prediction>, ServeError> {
        let mut guard = self.slot.result.lock().unwrap_or_else(|p| p.into_inner());
        loop {
            if let Some(r) = guard.take() {
                return r;
            }
            guard = self
                .slot
                .ready
                .wait(guard)
                .unwrap_or_else(|p| p.into_inner());
        }
    }

    /// Non-blocking poll: `Some` exactly once, when the engine has
    /// answered. The event-driven front-end sweeps its in-flight
    /// requests with this instead of parking a thread per connection.
    pub fn try_take(&self) -> Option<Result<Vec<Prediction>, ServeError>> {
        self.slot
            .result
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .take()
    }
}

/// A queued request: the node batch plus its response slot.
struct QueuedRequest {
    nodes: Vec<u32>,
    slot: Arc<ResponseSlot>,
}

/// Mutex-guarded engine state.
struct State {
    queue: Frontier<QueuedRequest>,
    stop: bool,
    poisoned: Option<String>,
}

struct Shared {
    state: Mutex<State>,
    /// Signalled when a request lands in the queue or on shutdown.
    can_work: Condvar,
    /// Signalled when queue space frees up or on shutdown.
    can_submit: Condvar,
    /// Counters (relaxed; for tests, benches and dashboards).
    requests: AtomicU64,
    batches: AtomicU64,
    nodes: AtomicU64,
    shed: AtomicU64,
    cfg: EngineConfig,
}

impl Shared {
    fn lock(&self) -> MutexGuard<'_, State> {
        self.state.lock().unwrap_or_else(|p| p.into_inner())
    }

    fn fail_error(&self, st: &State) -> ServeError {
        match &st.poisoned {
            Some(m) => ServeError::WorkerPanicked(m.clone()),
            None => ServeError::ShuttingDown,
        }
    }
}

/// The running engine: worker threads + the shared queue. See the module
/// docs for the protocol. Generic over the classify implementation
/// ([`NodeClassifier`] in production) so tests can inject failures.
pub struct BatchEngine<C: BatchClassify = NodeClassifier> {
    shared: Arc<Shared>,
    classifier: Arc<C>,
    workers: Vec<JoinHandle<()>>,
}

impl<C: BatchClassify> BatchEngine<C> {
    /// Spawn `cfg.workers` worker threads over the shared classifier.
    pub fn spawn(classifier: Arc<C>, cfg: EngineConfig) -> Result<Self, String> {
        cfg.validate()?;
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: Frontier::new(cfg.max_batch),
                stop: false,
                poisoned: None,
            }),
            can_work: Condvar::new(),
            can_submit: Condvar::new(),
            requests: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            nodes: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            cfg,
        });
        let mut workers = Vec::with_capacity(cfg.workers);
        for i in 0..cfg.workers {
            let spawn = {
                let shared = Arc::clone(&shared);
                let classifier = Arc::clone(&classifier);
                std::thread::Builder::new()
                    .name(format!("gsgcn-serve-{i}"))
                    .spawn(move || worker_loop(&shared, &*classifier))
            };
            match spawn {
                Ok(handle) => workers.push(handle),
                Err(e) => {
                    // Don't leak the workers already parked on the
                    // condvar: stop and join them before reporting.
                    {
                        let mut st = shared.lock();
                        st.stop = true;
                    }
                    shared.can_work.notify_all();
                    for handle in workers {
                        let _ = handle.join();
                    }
                    return Err(format!("failed to spawn serve worker: {e}"));
                }
            }
        }
        Ok(BatchEngine {
            shared,
            classifier,
            workers,
        })
    }

    /// The classifier this engine serves.
    pub fn classifier(&self) -> &C {
        &self.classifier
    }

    /// Enqueue a node batch. Under [`AdmissionControl::Block`] this
    /// blocks while the queue is full (backpressure); under
    /// [`AdmissionControl::Shed`] it never blocks — a full queue sheds
    /// the minimum-weight request (possibly this one) with
    /// [`ServeError::Overloaded`]. The returned handle's
    /// [`ResponseHandle::wait`] yields one [`Prediction`] per requested
    /// node in request order.
    ///
    /// Node ids are validated here, before queueing, so one bad request
    /// can never fail the unrelated requests it would have been
    /// coalesced with.
    pub fn submit(&self, nodes: Vec<u32>) -> Result<ResponseHandle, ServeError> {
        self.enqueue(nodes, true).map_err(|e| match e {
            TrySubmitError::Rejected(e) => e,
            // Unreachable: blocking enqueue never reports Full.
            TrySubmitError::Full(_) => ServeError::ShuttingDown,
        })
    }

    /// Non-blocking [`BatchEngine::submit`] for event-loop callers: a
    /// full queue in [`AdmissionControl::Block`] mode returns
    /// [`TrySubmitError::Full`] (giving back the nodes, so the caller
    /// can apply its own backpressure — e.g. stop reading a socket)
    /// instead of parking the thread. Shed mode never reports `Full`.
    pub fn try_submit(&self, nodes: Vec<u32>) -> Result<ResponseHandle, TrySubmitError> {
        self.enqueue(nodes, false)
    }

    fn enqueue(&self, nodes: Vec<u32>, block: bool) -> Result<ResponseHandle, TrySubmitError> {
        if nodes.is_empty() {
            return Err(TrySubmitError::Rejected(ServeError::BadRequest(
                "empty node batch".into(),
            )));
        }
        // Shard-aware for store-backed classifiers: a node whose shard
        // is not loaded fails *this* request only, before coalescing.
        if let Err(msg) = self.classifier.validate_nodes(&nodes) {
            return Err(TrySubmitError::Rejected(ServeError::BadRequest(msg)));
        }
        let slot = Arc::new(ResponseSlot {
            result: Mutex::new(None),
            ready: Condvar::new(),
        });
        let handle = ResponseHandle {
            slot: Arc::clone(&slot),
        };
        let mut st = self.shared.lock();
        loop {
            if st.stop || st.poisoned.is_some() {
                return Err(TrySubmitError::Rejected(self.shared.fail_error(&st)));
            }
            if st.queue.len() < self.shared.cfg.queue_capacity {
                break;
            }
            match self.shared.cfg.admission {
                AdmissionControl::Shed => {
                    // Full queue: the minimum-weight request loses —
                    // either a queued one (failed via its slot) or this
                    // one, if nothing queued weighs less than a fresh
                    // arrival of this size.
                    let now = Instant::now();
                    let incoming = st.queue.weight_of(nodes.len(), Duration::ZERO);
                    let queued_min = st.queue.min_weight(now);
                    self.shared.shed.fetch_add(1, Ordering::Relaxed);
                    match queued_min {
                        Some(w) if w < incoming => {
                            let loser = st.queue.shed_min(now).expect("min_weight saw an entry");
                            loser.slot.fulfill(Err(ServeError::Overloaded));
                        }
                        _ => {
                            return Err(TrySubmitError::Rejected(ServeError::Overloaded));
                        }
                    }
                    break;
                }
                AdmissionControl::Block if !block => {
                    drop(st);
                    return Err(TrySubmitError::Full(nodes));
                }
                AdmissionControl::Block => {
                    st = self
                        .shared
                        .can_submit
                        .wait(st)
                        .unwrap_or_else(|p| p.into_inner());
                }
            }
        }
        let count = nodes.len();
        st.queue.push(QueuedRequest { nodes, slot }, count);
        drop(st);
        self.shared.can_work.notify_one();
        self.shared.requests.fetch_add(1, Ordering::Relaxed);
        Ok(handle)
    }

    /// Convenience: submit + wait.
    pub fn classify(&self, nodes: Vec<u32>) -> Result<Vec<Prediction>, ServeError> {
        self.submit(nodes)?.wait()
    }

    /// Requests accepted so far.
    pub fn requests(&self) -> u64 {
        self.shared.requests.load(Ordering::Relaxed)
    }

    /// Forward batches executed so far (≤ requests when coalescing
    /// merges concurrent requests).
    pub fn batches(&self) -> u64 {
        self.shared.batches.load(Ordering::Relaxed)
    }

    /// Query nodes classified so far.
    pub fn nodes_classified(&self) -> u64 {
        self.shared.nodes.load(Ordering::Relaxed)
    }

    /// Requests shed by admission control so far (Shed mode only).
    pub fn shed(&self) -> u64 {
        self.shared.shed.load(Ordering::Relaxed)
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }
}

impl<C: BatchClassify> Drop for BatchEngine<C> {
    fn drop(&mut self) {
        {
            let mut st = self.shared.lock();
            st.stop = true;
        }
        self.shared.can_work.notify_all();
        self.shared.can_submit.notify_all();
        for handle in self.workers.drain(..) {
            // Worker panics were caught and parked in `poisoned`; an
            // escaped one has nothing better to do on drop.
            let _ = handle.join();
        }
        // Workers are gone: whatever is still queued can never be
        // served. Fail it visibly rather than leaving waiters hanging.
        let mut st = self.shared.lock();
        let err = self.shared.fail_error(&st);
        for req in st.queue.drain_all() {
            req.slot.fulfill(Err(err.clone()));
        }
    }
}

/// Worker loop: claim the queue head, coalesce up to the batch/wait
/// bounds, classify outside the lock, fulfill each request.
fn worker_loop<C: BatchClassify>(shared: &Shared, classifier: &C) {
    let mut ws = ClassifyWorkspace::new();
    let mut batch: Vec<QueuedRequest> = Vec::new();
    loop {
        // --- Claim + coalesce phase (under lock) ---
        {
            let mut st = shared.lock();
            // Wait for the first request (or shutdown).
            loop {
                if st.stop || st.poisoned.is_some() {
                    let err = shared.fail_error(&st);
                    for req in st.queue.drain_all() {
                        req.slot.fulfill(Err(err.clone()));
                    }
                    return;
                }
                if !st.queue.is_empty() {
                    break;
                }
                st = shared.can_work.wait(st).unwrap_or_else(|p| p.into_inner());
            }
            // Coalesce: absorb whole requests until the node budget or
            // the wait window runs out. The first claim always takes
            // something, so an oversized request is served alone. FIFO
            // order under Block admission; weight order (aged and
            // batch-friendly requests first) under Shed.
            let weighted = shared.cfg.admission == AdmissionControl::Shed;
            let started = Instant::now();
            let mut nodes_taken = 0usize;
            loop {
                let mut head_blocked = false;
                loop {
                    let budget = shared.cfg.max_batch.saturating_sub(nodes_taken);
                    let first = nodes_taken == 0;
                    match st.queue.claim(Instant::now(), budget, first, weighted) {
                        Claim::Taken(req, count) => {
                            nodes_taken += count;
                            batch.push(req);
                            if nodes_taken >= shared.cfg.max_batch {
                                break;
                            }
                        }
                        Claim::Blocked => {
                            head_blocked = true;
                            break;
                        }
                        Claim::Empty => break,
                    }
                }
                // Flush when the budget is reached — and also when the
                // FIFO head no longer fits it: the batch can never grow
                // past a blocked head, so waiting out the window would
                // only delay both the batch and the head request.
                if nodes_taken >= shared.cfg.max_batch
                    || head_blocked
                    || st.stop
                    || st.poisoned.is_some()
                {
                    break;
                }
                let elapsed = started.elapsed();
                if elapsed >= shared.cfg.max_wait {
                    break;
                }
                // Park for the window's remainder; more requests may
                // arrive and join this batch.
                let (guard, timeout) = shared
                    .can_work
                    .wait_timeout(st, shared.cfg.max_wait - elapsed)
                    .unwrap_or_else(|p| p.into_inner());
                st = guard;
                if timeout.timed_out() {
                    break;
                }
            }
            drop(st);
            // Queue space freed: wake parked submitters (and possibly
            // other workers if requests remain).
            shared.can_submit.notify_all();
            if !batch.is_empty() {
                shared.can_work.notify_one();
            }
        }

        // --- Classify phase (no lock held) ---
        let flat: Vec<u32> = batch.iter().flat_map(|r| r.nodes.iter().copied()).collect();
        let run = catch_unwind(AssertUnwindSafe(|| -> Result<Vec<Prediction>, String> {
            let mut preds = Vec::new();
            classifier.classify_into(&flat, &mut ws, &mut preds)?;
            // Enforce the BatchClassify contract *inside* the panic/
            // error containment: a short list would otherwise panic in
            // the split below, killing the worker without poisoning.
            if preds.len() != flat.len() {
                return Err(format!(
                    "classifier returned {} predictions for {} nodes",
                    preds.len(),
                    flat.len()
                ));
            }
            Ok(preds)
        }));
        match run {
            Ok(Ok(mut preds)) => {
                shared.batches.fetch_add(1, Ordering::Relaxed);
                shared.nodes.fetch_add(flat.len() as u64, Ordering::Relaxed);
                // Split the flat prediction list back per request
                // (front to back, preserving request order).
                for req in batch.drain(..) {
                    let rest = preds.split_off(req.nodes.len());
                    req.slot.fulfill(Ok(preds));
                    preds = rest;
                }
            }
            Ok(Err(msg)) => {
                // Classifier-reported failure (ids are validated at
                // submit, so this is a backstop for contract
                // violations, not a neighbor-tenant hazard).
                let err = ServeError::BadRequest(msg);
                for req in batch.drain(..) {
                    req.slot.fulfill(Err(err.clone()));
                }
            }
            Err(payload) => {
                let msg = panic_message(payload);
                let err = ServeError::WorkerPanicked(msg.clone());
                for req in batch.drain(..) {
                    req.slot.fulfill(Err(err.clone()));
                }
                let mut st = shared.lock();
                st.poisoned.get_or_insert(msg);
                st.stop = true;
                let sweep = shared.fail_error(&st);
                for req in st.queue.drain_all() {
                    req.slot.fulfill(Err(sweep.clone()));
                }
                drop(st);
                shared.can_work.notify_all();
                shared.can_submit.notify_all();
                return;
            }
        }
    }
}

/// Best-effort stringification of a panic payload (PR-4 idiom).
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}
