//! Sharded hidden-layer activation cache — the serving-side realisation
//! of the paper's observation that GCN inference cost is dominated by
//! redundant neighborhood recomputation.
//!
//! A depth-L query's last GCN layer consumes `acts^{L-1}` only at the
//! closed 1-hop ball of the roots, and the cone-pruned batched forward
//! (`NeighborhoodBatch::layer_graphs`) makes exactly those rows
//! full-graph-exact (distance ≤ 1 ⇒ exact after L-1 layers). So every
//! cold batch computes — for free — cacheable hidden rows keyed by
//! `(node, model_version)`, and a later query whose whole ball is
//! resident skips the L-hop cone entirely: gather the rows, run one
//! fused layer + the root-limited head ([`crate::classifier`]'s "final
//! hop"). Cold or partially-cold balls fall back to the exact pruned
//! path, so cached and uncached answers agree at the roots by
//! construction.
//!
//! Design: N independently locked shards (node id → shard by
//! multiplicative hash) each running **CLOCK** (second-chance) eviction
//! under a per-shard byte budget. CLOCK gives LRU-like behavior with an
//! O(1) hit path — a hit flips a `referenced` bit instead of splicing a
//! recency list, which matters because every serving worker probes the
//! cache concurrently. Version bumps ([`ActivationCache::bump_version`])
//! invalidate lazily: stale entries are treated as misses and reclaimed
//! by the eviction hand, so invalidation is O(1), not O(entries).
//!
//! Budget policy follows the `GSGCN_KERNEL` env-override pattern: the
//! `GSGCN_ACTIVATION_CACHE` variable (`"64MiB"`, `"0"` to disable)
//! supplies a default, and the `gsgcn serve --cache-bytes` flag
//! overrides it (see the CLI).
//!
//! # Row storage precision
//!
//! Rows are stored f32 by default, or bf16 when the cache is built with
//! [`ActivationCache::with_precision`] — halving bytes-per-row, so the
//! same budget keeps twice the working set resident. bf16 rows are
//! widened back to f32 on gather (widening is exact); the rounding
//! happens once, at insert, and is covered by the serving tolerance
//! band (`gsgcn_tensor::precision::rel_tolerance`) since the final
//! fused layer re-accumulates in f32 either way. The precision is fixed
//! at construction — mixing would make hit bytes depend on insert
//! history — and the serving engine passes the session's resolved
//! precision (`--precision` flag / `GSGCN_PRECISION` env).

use gsgcn_tensor::{bf16, Bf16, DMatrix, Precision};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Per-entry bookkeeping overhead charged against the byte budget
/// (map entry + queue slot + flags; an estimate, deliberately coarse).
const ENTRY_OVERHEAD: usize = 48;

/// Counters exported by [`ActivationCache::stats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Row probes that found a current-version entry.
    pub hits: u64,
    /// Row probes that missed (absent or stale version).
    pub misses: u64,
    /// Rows inserted (including overwrites).
    pub insertions: u64,
    /// Rows evicted by the CLOCK hand to make room.
    pub evictions: u64,
    /// Bytes currently resident (data + bookkeeping estimate).
    pub resident_bytes: usize,
    /// Entries currently resident.
    pub entries: usize,
}

impl CacheStats {
    /// Hit fraction over all row probes so far (0 when never probed).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// One cached activation row at the cache's storage precision.
enum RowData {
    F32(Box<[f32]>),
    Bf16(Box<[Bf16]>),
}

impl RowData {
    fn quantize(row: &[f32], p: Precision) -> RowData {
        match p {
            Precision::F32 => RowData::F32(row.into()),
            Precision::Bf16 => {
                let mut q = vec![Bf16::ZERO; row.len()].into_boxed_slice();
                bf16::quantize_slice(row, &mut q);
                RowData::Bf16(q)
            }
        }
    }

    fn len(&self) -> usize {
        match self {
            RowData::F32(d) => d.len(),
            RowData::Bf16(d) => d.len(),
        }
    }

    fn data_bytes(&self) -> usize {
        match self {
            RowData::F32(d) => d.len() * std::mem::size_of::<f32>(),
            RowData::Bf16(d) => d.len() * std::mem::size_of::<Bf16>(),
        }
    }

    /// Overwrite in place from an f32 row of the same length, keeping
    /// the storage variant.
    fn overwrite(&mut self, row: &[f32]) {
        match self {
            RowData::F32(d) => d.copy_from_slice(row),
            RowData::Bf16(d) => bf16::quantize_slice(row, d),
        }
    }

    /// Copy into an f32 destination, widening bf16 exactly.
    fn copy_into(&self, out: &mut [f32]) {
        match self {
            RowData::F32(d) => out.copy_from_slice(d),
            RowData::Bf16(d) => bf16::widen_slice(d, out),
        }
    }
}

struct Entry {
    version: u64,
    referenced: bool,
    data: RowData,
}

impl Entry {
    fn bytes(&self) -> usize {
        self.data.data_bytes() + ENTRY_OVERHEAD
    }
}

/// One lock's worth of cache: a node→entry map plus the CLOCK ring.
#[derive(Default)]
struct Shard {
    map: HashMap<u32, Entry>,
    /// CLOCK ring of candidate keys, oldest at the front. May contain
    /// keys already removed from `map` (skipped when popped); a key is
    /// enqueued exactly once per map residency, so the ring length is
    /// bounded by insertions-minus-evictions.
    ring: VecDeque<u32>,
    bytes: usize,
}

impl Shard {
    /// Evict second-chance victims until `need` bytes fit under
    /// `budget`. Returns the number of entries evicted.
    fn make_room(&mut self, need: usize, budget: usize) -> u64 {
        let mut evicted = 0;
        while self.bytes + need > budget {
            let Some(key) = self.ring.pop_front() else {
                break; // nothing left to evict
            };
            match self.map.get_mut(&key) {
                None => {} // removed earlier; stale ring slot
                Some(e) if e.referenced => {
                    e.referenced = false;
                    self.ring.push_back(key);
                }
                Some(_) => {
                    let e = self.map.remove(&key).expect("entry checked");
                    self.bytes -= e.bytes();
                    evicted += 1;
                }
            }
        }
        evicted
    }
}

/// Concurrent `(node, model_version)` → `acts^{L-1}` row cache. See the
/// module docs for the exactness argument and the eviction policy.
pub struct ActivationCache {
    shards: Vec<Mutex<Shard>>,
    /// Per-shard slice of the global byte budget.
    shard_budget: usize,
    /// Storage element type of cached rows (fixed at construction).
    precision: Precision,
    /// Current model version; entries with an older stamp are stale.
    version: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    insertions: AtomicU64,
    evictions: AtomicU64,
}

impl ActivationCache {
    /// Default shard count: enough to keep worker threads from
    /// serialising on one lock, small enough that a tiny budget still
    /// leaves room per shard.
    pub const DEFAULT_SHARDS: usize = 16;

    /// A cache bounded by `budget_bytes` across [`Self::DEFAULT_SHARDS`]
    /// shards, storing rows as f32.
    pub fn new(budget_bytes: usize) -> Self {
        Self::with_shards(budget_bytes, Self::DEFAULT_SHARDS)
    }

    /// A cache with an explicit shard count (≥ 1; tests use 1 to make
    /// eviction order deterministic), storing rows as f32.
    pub fn with_shards(budget_bytes: usize, shards: usize) -> Self {
        Self::with_shards_precision(budget_bytes, shards, Precision::F32)
    }

    /// As [`Self::new`] with an explicit row storage precision.
    /// [`Precision::Bf16`] halves bytes-per-row — the same budget holds
    /// twice the rows — at one bf16 rounding per cached element.
    pub fn with_precision(budget_bytes: usize, precision: Precision) -> Self {
        Self::with_shards_precision(budget_bytes, Self::DEFAULT_SHARDS, precision)
    }

    /// The fully explicit constructor: budget, shard count, precision.
    pub fn with_shards_precision(budget_bytes: usize, shards: usize, precision: Precision) -> Self {
        let shards = shards.max(1);
        ActivationCache {
            shards: (0..shards).map(|_| Mutex::new(Shard::default())).collect(),
            shard_budget: budget_bytes / shards,
            precision,
            version: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            insertions: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Total byte budget (sum of the per-shard slices).
    pub fn budget_bytes(&self) -> usize {
        self.shard_budget * self.shards.len()
    }

    /// Storage element type of cached rows.
    pub fn precision(&self) -> Precision {
        self.precision
    }

    /// Current model version stamp.
    pub fn version(&self) -> u64 {
        self.version.load(Ordering::Acquire)
    }

    /// Invalidate every resident entry in O(1): entries stamped with an
    /// older version read as misses and are reclaimed lazily by the
    /// eviction hand. Call after swapping model weights.
    pub fn bump_version(&self) {
        self.version.fetch_add(1, Ordering::AcqRel);
    }

    fn shard_of(&self, node: u32) -> &Mutex<Shard> {
        // Fibonacci hash: consecutive node ids spread across shards.
        let h = (node as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        &self.shards[(h >> 32) as usize % self.shards.len()]
    }

    fn lock(&self, node: u32) -> std::sync::MutexGuard<'_, Shard> {
        self.shard_of(node)
            .lock()
            .unwrap_or_else(|p| p.into_inner())
    }

    /// All-or-nothing batch probe: if **every** node has a
    /// current-version row of width `width`, copy them into `out`
    /// (reshaped to `nodes.len() × width`, rows aligned with `nodes`)
    /// and return `true`. On the first miss, returns `false` — `out`
    /// may then hold partially written rows. Serving probes the whole
    /// frontier ball: a partial hit cannot skip the cone extraction, so
    /// there is no partial-result API to misuse.
    pub fn try_gather(&self, nodes: &[u32], width: usize, out: &mut DMatrix) -> bool {
        let version = self.version();
        out.ensure_shape(nodes.len(), width);
        for (i, &node) in nodes.iter().enumerate() {
            let mut shard = self.lock(node);
            match shard.map.get_mut(&node) {
                Some(e) if e.version == version && e.data.len() == width => {
                    e.referenced = true;
                    e.data.copy_into(out.row_mut(i));
                }
                _ => {
                    drop(shard);
                    self.hits.fetch_add(i as u64, Ordering::Relaxed);
                    self.misses.fetch_add(1, Ordering::Relaxed);
                    return false;
                }
            }
        }
        self.hits.fetch_add(nodes.len() as u64, Ordering::Relaxed);
        true
    }

    /// Insert (or refresh) one row per node, `rows` aligned with
    /// `nodes`. Rows wider than a whole shard's budget are skipped
    /// rather than evicting the entire shard for an entry that could
    /// never have company.
    pub fn insert_rows(&self, nodes: &[u32], rows: &DMatrix) {
        assert_eq!(nodes.len(), rows.rows(), "node/row count mismatch");
        let version = self.version();
        let elem = match self.precision {
            Precision::F32 => std::mem::size_of::<f32>(),
            Precision::Bf16 => std::mem::size_of::<Bf16>(),
        };
        let row_bytes = rows.cols() * elem + ENTRY_OVERHEAD;
        if row_bytes > self.shard_budget {
            return;
        }
        let mut inserted = 0u64;
        let mut evicted = 0u64;
        for (i, &node) in nodes.iter().enumerate() {
            let row = rows.row(i);
            let mut guard = self.lock(node);
            let shard = &mut *guard;
            if let Some(e) = shard.map.get_mut(&node) {
                // Refresh in place (version bump or re-computation);
                // the key keeps its ring slot.
                if e.data.len() == row.len() {
                    e.data.overwrite(row);
                } else {
                    shard.bytes -= e.bytes();
                    e.data = RowData::quantize(row, self.precision);
                    shard.bytes += e.bytes();
                }
                e.version = version;
                e.referenced = true;
                inserted += 1;
                continue;
            }
            evicted += shard.make_room(row_bytes, self.shard_budget);
            if shard.bytes + row_bytes > self.shard_budget {
                continue; // budget too small even after a full sweep
            }
            shard.map.insert(
                node,
                Entry {
                    version,
                    // New entries start unreferenced — only a *hit*
                    // earns the second chance, else a full hand sweep
                    // degenerates to FIFO and evicts hot rows.
                    referenced: false,
                    data: RowData::quantize(row, self.precision),
                },
            );
            shard.ring.push_back(node);
            shard.bytes += row_bytes;
            inserted += 1;
        }
        self.insertions.fetch_add(inserted, Ordering::Relaxed);
        self.evictions.fetch_add(evicted, Ordering::Relaxed);
    }

    /// Counter snapshot (relaxed; for benches, tests and dashboards).
    pub fn stats(&self) -> CacheStats {
        let mut resident_bytes = 0;
        let mut entries = 0;
        for shard in &self.shards {
            let shard = shard.lock().unwrap_or_else(|p| p.into_inner());
            resident_bytes += shard.bytes;
            entries += shard.map.len();
        }
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            insertions: self.insertions.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            resident_bytes,
            entries,
        }
    }
}

impl std::fmt::Debug for ActivationCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ActivationCache")
            .field("budget_bytes", &self.budget_bytes())
            .field("precision", &self.precision)
            .field("shards", &self.shards.len())
            .field("version", &self.version())
            .field("stats", &self.stats())
            .finish()
    }
}

/// Parse a human byte-size string: a plain byte count (`"1048576"`) or a
/// binary/decimal suffix (`KiB`/`MiB`/`GiB` = 2^10/20/30,
/// `KB`/`MB`/`GB` = 10^3/6/9, bare `K`/`M`/`G` = binary), case-insensitive,
/// optional whitespace before the suffix. `"0"` means *disabled*.
pub fn parse_cache_budget(s: &str) -> Result<usize, String> {
    // One byte-size grammar across the workspace: this is the same
    // parser the graph store uses for GSGCN_SHARD_CACHE.
    gsgcn_graph::store::parse_byte_size(s)
}

/// The `GSGCN_ACTIVATION_CACHE` env default (the `GSGCN_KERNEL`
/// pattern): unset or `"0"` → `None` (disabled); a parse failure warns
/// loudly on stderr and disables rather than silently serving uncached.
pub fn budget_from_env() -> Option<usize> {
    let raw = std::env::var("GSGCN_ACTIVATION_CACHE").ok()?;
    match parse_cache_budget(&raw) {
        Ok(0) => None,
        Ok(bytes) => Some(bytes),
        Err(e) => {
            eprintln!("warning: ignoring GSGCN_ACTIVATION_CACHE: {e}");
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row_matrix(values: &[(u32, f32)], width: usize) -> (Vec<u32>, DMatrix) {
        let nodes: Vec<u32> = values.iter().map(|&(n, _)| n).collect();
        let m = DMatrix::from_fn(values.len(), width, |i, j| values[i].1 + j as f32);
        (nodes, m)
    }

    #[test]
    fn roundtrip_and_alignment() {
        let c = ActivationCache::new(1 << 20);
        let (nodes, rows) = row_matrix(&[(3, 0.5), (9, 1.5), (7, 2.5)], 4);
        c.insert_rows(&nodes, &rows);
        let mut out = DMatrix::zeros(0, 0);
        // Probe in a different order than inserted.
        assert!(c.try_gather(&[7, 3, 9], 4, &mut out));
        assert_eq!(out.row(0), rows.row(2));
        assert_eq!(out.row(1), rows.row(0));
        assert_eq!(out.row(2), rows.row(1));
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.entries), (3, 0, 3));
    }

    #[test]
    fn partial_hit_is_a_miss() {
        let c = ActivationCache::new(1 << 20);
        let (nodes, rows) = row_matrix(&[(1, 0.0), (2, 1.0)], 3);
        c.insert_rows(&nodes, &rows);
        let mut out = DMatrix::zeros(0, 0);
        assert!(!c.try_gather(&[1, 5, 2], 3, &mut out));
        assert!(c.stats().misses >= 1);
        // Width mismatch is also a miss, not corruption.
        assert!(!c.try_gather(&[1], 2, &mut out));
    }

    #[test]
    fn version_bump_invalidates_everything() {
        let c = ActivationCache::new(1 << 20);
        let (nodes, rows) = row_matrix(&[(1, 0.0), (2, 1.0)], 3);
        c.insert_rows(&nodes, &rows);
        let mut out = DMatrix::zeros(0, 0);
        assert!(c.try_gather(&[1, 2], 3, &mut out));
        c.bump_version();
        assert!(!c.try_gather(&[1, 2], 3, &mut out));
        // Re-inserting under the new version serves hits again.
        c.insert_rows(&nodes, &rows);
        assert!(c.try_gather(&[1, 2], 3, &mut out));
    }

    #[test]
    fn tiny_budget_evicts_but_stays_bounded() {
        // One shard so the budget arithmetic is exact; room for ~4 rows.
        let width = 8;
        let row_bytes = width * 4 + ENTRY_OVERHEAD;
        let c = ActivationCache::with_shards(4 * row_bytes, 1);
        for node in 0u32..64 {
            let rows = DMatrix::from_fn(1, width, |_, j| node as f32 + j as f32);
            c.insert_rows(&[node], &rows);
        }
        let s = c.stats();
        assert!(s.resident_bytes <= c.budget_bytes(), "{s:?}");
        assert!(s.entries >= 1 && s.entries <= 4, "{s:?}");
        assert!(s.evictions >= 60, "{s:?}");
        // Whatever survived still round-trips correctly.
        let mut out = DMatrix::zeros(0, 0);
        let mut live = 0;
        for node in 0u32..64 {
            if c.try_gather(&[node], width, &mut out) {
                assert_eq!(out.get(0, 0), node as f32);
                live += 1;
            }
        }
        assert_eq!(live, s.entries);
    }

    #[test]
    fn clock_gives_hit_rows_a_second_chance() {
        let width = 8;
        let row_bytes = width * 4 + ENTRY_OVERHEAD;
        let c = ActivationCache::with_shards(3 * row_bytes, 1);
        for node in 0u32..3 {
            let rows = DMatrix::from_fn(1, width, |_, j| node as f32 + j as f32);
            c.insert_rows(&[node], &rows);
        }
        // Touch node 0 so its referenced bit is set…
        let mut out = DMatrix::zeros(0, 0);
        assert!(c.try_gather(&[0], width, &mut out));
        // …then force one eviction: the hand passes 0 (second chance)
        // and evicts 1, the oldest untouched entry.
        c.insert_rows(&[99], &DMatrix::zeros(1, width));
        assert!(c.try_gather(&[0], width, &mut out), "hot row evicted");
        assert!(!c.try_gather(&[1], width, &mut out), "cold row survived");
    }

    #[test]
    fn oversized_rows_are_rejected_not_thrashed() {
        let c = ActivationCache::with_shards(64, 1);
        let rows = DMatrix::zeros(1, 1024);
        c.insert_rows(&[5], &rows);
        let s = c.stats();
        assert_eq!((s.entries, s.insertions, s.evictions), (0, 0, 0));
    }

    #[test]
    fn concurrent_probes_and_inserts_are_safe() {
        let c = std::sync::Arc::new(ActivationCache::new(1 << 16));
        let width = 16;
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let c = std::sync::Arc::clone(&c);
                std::thread::spawn(move || {
                    let mut out = DMatrix::zeros(0, 0);
                    for i in 0..500u32 {
                        let node = (t * 131 + i) % 97;
                        let rows = DMatrix::from_fn(1, width, |_, j| node as f32 * 2.0 + j as f32);
                        c.insert_rows(&[node], &rows);
                        if c.try_gather(&[node % 50], width, &mut out) {
                            // A hit row must be internally consistent.
                            assert_eq!(out.get(0, 1), out.get(0, 0) + 1.0);
                        }
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert!(c.stats().resident_bytes <= c.budget_bytes() + 64);
    }

    #[test]
    fn bf16_rows_halve_bytes_and_widen_to_exact_rounding() {
        let width = 32;
        let (nodes, rows) = row_matrix(&[(3, 0.123), (9, 1.456), (7, 2.789)], width);
        let c32 = ActivationCache::with_shards(1 << 20, 1);
        let c16 = ActivationCache::with_shards_precision(1 << 20, 1, Precision::Bf16);
        assert_eq!(c16.precision(), Precision::Bf16);
        c32.insert_rows(&nodes, &rows);
        c16.insert_rows(&nodes, &rows);
        // Same rows, half the data bytes per entry.
        let per_row_32 = c32.stats().resident_bytes / 3 - ENTRY_OVERHEAD;
        let per_row_16 = c16.stats().resident_bytes / 3 - ENTRY_OVERHEAD;
        assert_eq!(per_row_32, width * 4);
        assert_eq!(per_row_16, width * 2);
        // A hit widens each element to exactly its bf16 rounding — one
        // quantisation at insert, none on the read path.
        let mut out = DMatrix::zeros(0, 0);
        assert!(c16.try_gather(&nodes, width, &mut out));
        for i in 0..nodes.len() {
            for j in 0..width {
                let want = Bf16::from_f32(rows.get(i, j)).to_f32();
                assert_eq!(out.get(i, j), want, "row {i} col {j}");
            }
        }
    }

    #[test]
    fn bf16_budget_holds_more_rows() {
        // Same budget, sized for exactly 4 f32 rows: the bf16 cache keeps
        // budget/(2·width+overhead) resident — the working-set win bf16
        // storage buys (→ 2× as width dwarfs the bookkeeping overhead).
        let width = 48;
        let budget = 4 * (width * 4 + ENTRY_OVERHEAD);
        let c32 = ActivationCache::with_shards(budget, 1);
        let c16 = ActivationCache::with_shards_precision(budget, 1, Precision::Bf16);
        for node in 0u32..64 {
            let rows = DMatrix::from_fn(1, width, |_, j| node as f32 + j as f32);
            c32.insert_rows(&[node], &rows);
            c16.insert_rows(&[node], &rows);
        }
        assert_eq!(c32.stats().entries, 4);
        assert_eq!(c16.stats().entries, budget / (width * 2 + ENTRY_OVERHEAD));
        assert!(c16.stats().entries > c32.stats().entries);
        assert!(c16.stats().resident_bytes <= c16.budget_bytes());
    }

    #[test]
    fn budget_parsing() {
        assert_eq!(parse_cache_budget("0").unwrap(), 0);
        assert_eq!(parse_cache_budget("1234").unwrap(), 1234);
        assert_eq!(parse_cache_budget("64MiB").unwrap(), 64 << 20);
        assert_eq!(parse_cache_budget("64 mib").unwrap(), 64 << 20);
        assert_eq!(parse_cache_budget("2g").unwrap(), 2 << 30);
        assert_eq!(parse_cache_budget("10KB").unwrap(), 10_000);
        assert!(parse_cache_budget("").is_err());
        assert!(parse_cache_budget("MiB").is_err());
        assert!(parse_cache_budget("64XB").is_err());
        assert!(parse_cache_budget("-5").is_err());
    }
}
