//! Weighted admission control for the bounded serving queue.
//!
//! Under overload a FIFO queue lets latency collapse for everyone:
//! requests queue behind work that will itself time out. The mempool
//! alternative (the kaspa `Frontier` exemplar in SNIPPETS.md: a
//! feerate-ordered search tree sampled proportionally to weight) is to
//! *choose* what to serve. This module is that idea shrunk to serving
//! scale: each queued request carries a weight
//!
//! ```text
//! weight(t) = batch_affinity × (wait(t) + ε)
//! ```
//!
//! where `batch_affinity = min(1, max_batch / nodes)` favors requests
//! that coalesce into a batch without displacing others, and the wait
//! factor ages every request so low-affinity work is delayed, not
//! starved (the ε floor makes a just-arrived request comparable at
//! all). In [`AdmissionControl::Shed`] mode a full queue sheds the
//! minimum-weight request — the incoming one included — with an
//! explicit `overloaded` reply instead of blocking the submitter, and
//! workers claim the maximum-weight *fitting* request instead of the
//! head. p99 under 2× offered load is then bounded by the queue bound ×
//! batch time rather than growing without limit (measured in
//! `BENCH_serving.json`'s `overload` records).
//!
//! Weights are time-varying, so no static order (heap or search tree)
//! survives; with the queue bounded (default 1024) an O(Q) scan at
//! claim/shed time beats maintaining the kaspa `SearchTree` — the scan
//! touches a few KB, every mutation of a tree would touch `log Q` cache
//! lines *per tick of re-aging*. [`AdmissionControl::Block`] keeps the
//! exact FIFO/backpressure semantics the engine shipped with.

use std::collections::VecDeque;
use std::time::{Duration, Instant};

/// What a full queue does to new work (see the module docs).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum AdmissionControl {
    /// Block submitters while the queue is full (lossless backpressure;
    /// FIFO claim order). The engine's original behavior.
    #[default]
    Block,
    /// Never block: a full queue sheds the minimum-weight request with
    /// an `overloaded` error, and workers claim by maximum weight.
    Shed,
}

impl std::str::FromStr for AdmissionControl {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "block" => Ok(AdmissionControl::Block),
            "shed" => Ok(AdmissionControl::Shed),
            other => Err(format!("bad admission mode {other:?}: expected block|shed")),
        }
    }
}

/// Wait-time floor ε: makes a zero-wait arrival commensurable with aged
/// entries (pure multiplication would pin every newcomer at weight 0
/// and shed it unconditionally).
const WAIT_FLOOR: Duration = Duration::from_millis(1);

/// Outcome of [`Frontier::claim`].
pub enum Claim<T> {
    /// A request was claimed; the `usize` is its node count.
    Taken(T, usize),
    /// Requests are queued, but none fits the remaining batch budget.
    Blocked,
    /// The queue is empty.
    Empty,
}

struct Queued<T> {
    payload: T,
    nodes: usize,
    enqueued: Instant,
}

/// The bounded admission queue: FIFO storage, weighted (or FIFO) claim
/// and shed policies on top. Generic over the payload so the engine
/// queues response slots and tests queue labels.
pub struct Frontier<T> {
    entries: VecDeque<Queued<T>>,
    max_batch: usize,
}

impl<T> Frontier<T> {
    /// An empty queue whose affinity weighting targets `max_batch`-node
    /// forward batches.
    pub fn new(max_batch: usize) -> Self {
        Frontier {
            entries: VecDeque::new(),
            max_batch: max_batch.max(1),
        }
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Batch affinity of an `nodes`-node request: 1 for anything that
    /// fits a batch, decaying for oversized requests that monopolise a
    /// worker.
    pub fn affinity(&self, nodes: usize) -> f64 {
        (self.max_batch as f64 / nodes.max(1) as f64).min(1.0)
    }

    /// The admission weight of a hypothetical request that has waited
    /// `waited` — also the yardstick [`BatchEngine::submit`] applies to
    /// an *incoming* request (waited = 0) before shedding it.
    ///
    /// [`BatchEngine::submit`]: crate::engine::BatchEngine::submit
    pub fn weight_of(&self, nodes: usize, waited: Duration) -> f64 {
        self.affinity(nodes) * (waited + WAIT_FLOOR).as_secs_f64()
    }

    /// Enqueue (always succeeds; the *engine* owns the capacity check so
    /// shed-vs-block policy stays in one place).
    pub fn push(&mut self, payload: T, nodes: usize) {
        self.entries.push_back(Queued {
            payload,
            nodes,
            enqueued: Instant::now(),
        });
    }

    /// Minimum weight currently queued, as of `now`.
    pub fn min_weight(&self, now: Instant) -> Option<f64> {
        self.entries
            .iter()
            .map(|e| self.weight_of(e.nodes, now.saturating_duration_since(e.enqueued)))
            .min_by(f64::total_cmp)
    }

    /// Remove and return the minimum-weight request (ties: oldest
    /// first, since the scan keeps the first minimum).
    pub fn shed_min(&mut self, now: Instant) -> Option<T> {
        let idx = self
            .entries
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| {
                let wa = self.weight_of(a.nodes, now.saturating_duration_since(a.enqueued));
                let wb = self.weight_of(b.nodes, now.saturating_duration_since(b.enqueued));
                wa.total_cmp(&wb)
            })
            .map(|(i, _)| i)?;
        self.entries.remove(idx).map(|e| e.payload)
    }

    /// Claim one request for a batch with `budget` node slots left.
    ///
    /// FIFO mode (`weighted == false`) preserves the engine's original
    /// coalescing contract exactly: the head is inspected, taken if it
    /// fits (or if the batch is still empty — oversized requests are
    /// served alone), otherwise the claim is [`Claim::Blocked`].
    ///
    /// Weighted mode picks the maximum-weight *fitting* request; if
    /// nothing fits and the batch is empty, the maximum-weight request
    /// overall (served alone); if nothing fits a non-empty batch,
    /// [`Claim::Blocked`].
    pub fn claim(&mut self, now: Instant, budget: usize, first: bool, weighted: bool) -> Claim<T> {
        if self.entries.is_empty() {
            return Claim::Empty;
        }
        let idx = if weighted {
            let best = self
                .entries
                .iter()
                .enumerate()
                .filter(|(_, e)| e.nodes <= budget)
                .max_by(|(_, a), (_, b)| {
                    let wa = self.weight_of(a.nodes, now.saturating_duration_since(a.enqueued));
                    let wb = self.weight_of(b.nodes, now.saturating_duration_since(b.enqueued));
                    wa.total_cmp(&wb)
                })
                .map(|(i, _)| i);
            match best {
                Some(i) => i,
                None if first => self
                    .entries
                    .iter()
                    .enumerate()
                    .max_by(|(_, a), (_, b)| {
                        let wa = self.weight_of(a.nodes, now.saturating_duration_since(a.enqueued));
                        let wb = self.weight_of(b.nodes, now.saturating_duration_since(b.enqueued));
                        wa.total_cmp(&wb)
                    })
                    .map(|(i, _)| i)
                    .expect("non-empty"),
                None => return Claim::Blocked,
            }
        } else {
            let head = self.entries.front().expect("non-empty");
            if head.nodes <= budget || first {
                0
            } else {
                return Claim::Blocked;
            }
        };
        let e = self.entries.remove(idx).expect("index from scan");
        Claim::Taken(e.payload, e.nodes)
    }

    /// Drain everything (shutdown/poison sweep).
    pub fn drain_all(&mut self) -> impl Iterator<Item = T> + '_ {
        self.entries.drain(..).map(|e| e.payload)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn now() -> Instant {
        Instant::now()
    }

    #[test]
    fn fifo_claim_preserves_head_semantics() {
        let mut f: Frontier<&str> = Frontier::new(4);
        f.push("a", 3);
        f.push("b", 3);
        // Empty batch: head taken even though budget says otherwise.
        match f.claim(now(), 4, true, false) {
            Claim::Taken("a", 3) => {}
            _ => panic!("head not taken"),
        }
        // Non-empty batch (budget 1 left): head no longer fits → Blocked.
        match f.claim(now(), 1, false, false) {
            Claim::Blocked => {}
            _ => panic!("expected blocked head"),
        }
        match f.claim(now(), 3, false, false) {
            Claim::Taken("b", 3) => {}
            _ => panic!("fitting head not taken"),
        }
        match f.claim(now(), 4, true, false) {
            Claim::Empty => {}
            _ => panic!("expected empty"),
        }
    }

    #[test]
    fn weighted_claim_prefers_aged_then_fitting() {
        let mut f: Frontier<&str> = Frontier::new(4);
        f.push("old", 2);
        std::thread::sleep(Duration::from_millis(5));
        f.push("new", 2);
        // Same affinity: the older request has the larger weight.
        match f.claim(now(), 4, true, true) {
            Claim::Taken("old", 2) => {}
            Claim::Taken(x, _) => panic!("claimed {x} before the aged request"),
            _ => panic!("nothing claimed"),
        }
        // Oversized entry is skipped when something fitting exists…
        f.push("huge", 100);
        std::thread::sleep(Duration::from_millis(5));
        f.push("small", 1);
        match f.claim(now(), 4, false, true) {
            Claim::Taken(x, _) => assert_ne!(x, "huge"),
            _ => panic!("nothing claimed"),
        }
        // …and Blocked when the batch is non-empty and nothing fits.
        for _ in 0..2 {
            // drain the rest ("new" and whichever of small/huge remains fits when first)
            match f.claim(now(), 100, true, true) {
                Claim::Taken(..) => {}
                _ => break,
            }
        }
        f.push("huge2", 100);
        match f.claim(now(), 4, false, true) {
            Claim::Blocked => {}
            _ => panic!("oversized request should block a non-empty batch"),
        }
        // Empty batch: served alone despite the budget.
        match f.claim(now(), 4, true, true) {
            Claim::Taken("huge2", 100) => {}
            _ => panic!("oversized request must be served alone"),
        }
    }

    #[test]
    fn shed_picks_the_lightest() {
        let mut f: Frontier<&str> = Frontier::new(4);
        f.push("aged-big", 400);
        std::thread::sleep(Duration::from_millis(150));
        f.push("fresh-big", 400);
        f.push("fresh-small", 2);
        // fresh-big: low affinity *and* no age — the loser.
        assert_eq!(f.shed_min(now()), Some("fresh-big"));
        assert_eq!(f.len(), 2);
        // Aging protects the old oversized request over a fresh small
        // one once its wait dominates: affinity 4/400 = 0.01, so
        // 0.01 × 151 ms > 1.0 × ε = 1 ms.
        assert_eq!(f.shed_min(now()), Some("fresh-small"));
    }

    #[test]
    fn incoming_weight_yardstick_is_consistent() {
        let f: Frontier<&str> = Frontier::new(64);
        // A fitting fresh request outweighs nothing but an equally
        // fresh oversized one.
        let small = f.weight_of(4, Duration::ZERO);
        let big = f.weight_of(1024, Duration::ZERO);
        assert!(small > big);
        // Aging dominates affinity eventually.
        assert!(f.weight_of(1024, Duration::from_secs(1)) > f.weight_of(4, Duration::ZERO));
    }
}
