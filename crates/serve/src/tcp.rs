//! Newline-delimited TCP front-end for the [`BatchEngine`]
//! (`std::net` only — the workspace has no async runtime dependency).
//!
//! # Protocol
//!
//! One request per line; ids separated by spaces and/or commas:
//!
//! ```text
//! → 12 55 103\n
//! ← ok 12:7:0.9312 55:3:0.5127 103:7:0.8809\n
//! ```
//!
//! Each `node:labels:prob` triple reports the queried node, its decided
//! labels (comma-separated; argmax for single-label models, the
//! ≥ 0.5-probability classes — possibly `-` for none — for multi-label)
//! and the highest class probability. Failures answer
//! `err <message>\n` and keep the connection open; an empty line or
//! `quit` closes it. Every connection gets its own handler thread;
//! concurrency-driven batching happens *behind* the queue, in the
//! engine's coalescing batcher.

use crate::classifier::BatchClassify;
use crate::engine::BatchEngine;
use crate::Prediction;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;

/// Parse a request line into node ids.
pub fn parse_request(line: &str) -> Result<Vec<u32>, String> {
    let ids: Result<Vec<u32>, _> = line
        .split([' ', ',', '\t'])
        .filter(|t| !t.is_empty())
        .map(|t| t.parse::<u32>().map_err(|_| format!("bad node id {t:?}")))
        .collect();
    let ids = ids?;
    if ids.is_empty() {
        return Err("empty request".into());
    }
    Ok(ids)
}

/// Format one prediction as the wire triple `node:labels:prob`.
fn format_prediction(p: &Prediction) -> String {
    format!("{}:{}:{:.4}", p.node, p.labels_display(), p.max_prob())
}

/// Serve one client connection until it quits or errors out.
fn handle_connection<C: BatchClassify>(
    engine: &BatchEngine<C>,
    stream: TcpStream,
) -> std::io::Result<()> {
    let mut writer = stream.try_clone()?;
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line == "quit" {
            break;
        }
        let reply = match parse_request(line) {
            Err(e) => format!("err {e}"),
            // Bad ids are rejected by `submit` before queueing, so a
            // typo cannot fail a whole coalesced batch.
            Ok(nodes) => match engine.classify(nodes) {
                Ok(preds) => {
                    let body = preds
                        .iter()
                        .map(format_prediction)
                        .collect::<Vec<_>>()
                        .join(" ");
                    format!("ok {body}")
                }
                Err(e) => format!("err {e}"),
            },
        };
        writer.write_all(reply.as_bytes())?;
        writer.write_all(b"\n")?;
        writer.flush()?;
    }
    Ok(())
}

/// Accept-loop: every connection gets a handler thread that submits its
/// requests to the shared engine. Returns when the listener errors, or
/// runs forever otherwise (the CLI's `gsgcn serve` is terminated by the
/// operator; tests connect over an ephemeral port and drop their side).
pub fn run<C: BatchClassify>(
    engine: Arc<BatchEngine<C>>,
    listener: TcpListener,
) -> std::io::Result<()> {
    for stream in listener.incoming() {
        let stream = stream?;
        let engine = Arc::clone(&engine);
        std::thread::Builder::new()
            .name("gsgcn-serve-conn".into())
            .spawn(move || {
                if let Err(e) = handle_connection(&engine, stream) {
                    eprintln!("connection error: {e}");
                }
            })
            .expect("failed to spawn connection handler");
    }
    Ok(())
}

/// Convenience used by tests and the CLI: bind `addr`, report the bound
/// address (ephemeral ports!), serve on a background thread.
pub fn spawn<C: BatchClassify>(
    engine: Arc<BatchEngine<C>>,
    addr: &str,
) -> std::io::Result<std::net::SocketAddr> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    std::thread::Builder::new()
        .name("gsgcn-serve-accept".into())
        .spawn(move || {
            if let Err(e) = run(engine, listener) {
                eprintln!("serve accept loop failed: {e}");
            }
        })?;
    Ok(local)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_mixed_separators() {
        assert_eq!(parse_request("1 2,3\t4").unwrap(), vec![1, 2, 3, 4]);
        assert!(parse_request("1 x").is_err());
        assert!(parse_request("   ").is_err());
    }

    #[test]
    fn prediction_wire_format() {
        let p = Prediction {
            node: 9,
            labels: vec![2, 5],
            probs: vec![0.1, 0.2, 0.7],
        };
        assert_eq!(format_prediction(&p), "9:2,5:0.7000");
        let none = Prediction {
            node: 1,
            labels: vec![],
            probs: vec![0.3],
        };
        assert_eq!(format_prediction(&none), "1:-:0.3000");
    }
}
