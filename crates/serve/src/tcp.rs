//! Newline-delimited thread-per-connection TCP front-end for the
//! [`BatchEngine`] (`std::net` only — the workspace has no async
//! runtime dependency). The event-driven [`crate::poll`] front-end is
//! the serving default; this one survives as the simple/debuggable
//! option and the bench baseline.
//!
//! # Protocol
//!
//! One request per line; ids separated by spaces and/or commas:
//!
//! ```text
//! → 12 55 103\n
//! ← ok 12:7:0.9312 55:3:0.5127 103:7:0.8809\n
//! ```
//!
//! Each `node:labels:prob` triple reports the queried node, its decided
//! labels (comma-separated; argmax for single-label models, the
//! ≥ 0.5-probability classes — possibly `-` for none — for multi-label)
//! and the highest class probability. Failures answer
//! `err <message>\n` and keep the connection open; admission shedding
//! answers `overloaded\n`; an empty line or `quit` closes it.
//!
//! # Connection hygiene
//!
//! Handler threads used to block forever in `BufReader::lines` when a
//! client went away mid-line without closing its socket — an unbounded
//! silent thread leak. Handlers now read with a 100 ms timeout so they
//! can observe the stop flag and an idle deadline: a connection with no
//! traffic for [`TcpConfig::idle_timeout`] is evicted, live connections
//! are bounded by [`TcpConfig::max_conns`] (excess get one
//! `overloaded` reply), finished handler threads are reaped (joined) on
//! every accept, and [`TcpFrontend::shutdown`] joins everything.

use crate::classifier::BatchClassify;
use crate::engine::{BatchEngine, ServeError};
use crate::Prediction;
use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Parse a request line into node ids.
pub fn parse_request(line: &str) -> Result<Vec<u32>, String> {
    let ids: Result<Vec<u32>, _> = line
        .split([' ', ',', '\t'])
        .filter(|t| !t.is_empty())
        .map(|t| t.parse::<u32>().map_err(|_| format!("bad node id {t:?}")))
        .collect();
    let ids = ids?;
    if ids.is_empty() {
        return Err("empty request".into());
    }
    Ok(ids)
}

/// Format one prediction as the wire triple `node:labels:prob`.
pub(crate) fn format_prediction(p: &Prediction) -> String {
    format!("{}:{}:{:.4}", p.node, p.labels_display(), p.max_prob())
}

/// Front-end limits (shared semantics with
/// [`crate::poll::FrontendConfig`]).
#[derive(Clone, Copy, Debug)]
pub struct TcpConfig {
    /// Live-connection bound; excess connections are refused with one
    /// `overloaded` reply.
    pub max_conns: usize,
    /// Connections with no traffic for this long are evicted.
    pub idle_timeout: Duration,
}

impl Default for TcpConfig {
    fn default() -> Self {
        TcpConfig {
            max_conns: 1024,
            idle_timeout: Duration::from_secs(60),
        }
    }
}

/// How often a blocked read wakes to check the stop flag and the idle
/// deadline.
const READ_TICK: Duration = Duration::from_millis(100);

/// State shared between the accept loop and connection handlers.
struct Registry {
    live: AtomicUsize,
    refused: AtomicU64,
    evicted_idle: AtomicU64,
    stop: AtomicBool,
    handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl Registry {
    fn new() -> Self {
        Registry {
            live: AtomicUsize::new(0),
            refused: AtomicU64::new(0),
            evicted_idle: AtomicU64::new(0),
            stop: AtomicBool::new(false),
            handles: Mutex::new(Vec::new()),
        }
    }

    /// Join finished handler threads; called on every accept so the
    /// handle list stays proportional to *live* connections.
    fn reap(&self) {
        let mut handles = self.handles.lock().expect("registry lock");
        let mut live = Vec::with_capacity(handles.len());
        for h in handles.drain(..) {
            if h.is_finished() {
                let _ = h.join();
            } else {
                live.push(h);
            }
        }
        *handles = live;
    }

    fn join_all(&self) {
        let drained: Vec<_> = {
            let mut handles = self.handles.lock().expect("registry lock");
            handles.drain(..).collect()
        };
        for h in drained {
            let _ = h.join();
        }
    }
}

/// Decrements the live-connection gauge even if the handler panics.
struct ConnGuard<'a>(&'a Registry);

impl Drop for ConnGuard<'_> {
    fn drop(&mut self) {
        self.0.live.fetch_sub(1, Ordering::Release);
    }
}

/// Serve one client connection until it quits, errors out, goes idle
/// past the deadline, or the front-end stops.
fn handle_connection<C: BatchClassify>(
    engine: &BatchEngine<C>,
    stream: TcpStream,
    reg: &Registry,
    idle_timeout: Duration,
) -> std::io::Result<()> {
    stream.set_read_timeout(Some(READ_TICK))?;
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    let mut buf = String::new();
    let mut last_activity = Instant::now();
    loop {
        let had = buf.len();
        match reader.read_line(&mut buf) {
            Ok(0) => return Ok(()), // clean EOF
            Ok(_) => {}
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                // Timeout tick: partial data stays in `buf` (read_line
                // appends what it got before the timeout).
                if buf.len() > had {
                    last_activity = Instant::now();
                }
                if reg.stop.load(Ordering::Acquire) {
                    return Ok(());
                }
                if last_activity.elapsed() > idle_timeout {
                    reg.evicted_idle.fetch_add(1, Ordering::Relaxed);
                    return Ok(());
                }
                continue;
            }
            Err(e) => return Err(e),
        }
        last_activity = Instant::now();
        if !buf.ends_with('\n') {
            // EOF mid-line: serve the final partial line, then close —
            // never park the thread waiting for a newline that will
            // not come (the pre-fix leak).
            let line = std::mem::take(&mut buf);
            serve_line(engine, &mut writer, line.trim())?;
            return Ok(());
        }
        let line = std::mem::take(&mut buf);
        let line = line.trim();
        if line.is_empty() || line == "quit" {
            return Ok(());
        }
        serve_line(engine, &mut writer, line)?;
    }
}

fn serve_line<C: BatchClassify>(
    engine: &BatchEngine<C>,
    writer: &mut TcpStream,
    line: &str,
) -> std::io::Result<()> {
    if line.is_empty() {
        return Ok(());
    }
    let reply = match parse_request(line) {
        Err(e) => format!("err {e}"),
        // Bad ids are rejected by `submit` before queueing, so a
        // typo cannot fail a whole coalesced batch.
        Ok(nodes) => match engine.classify(nodes) {
            Ok(preds) => {
                let body = preds
                    .iter()
                    .map(format_prediction)
                    .collect::<Vec<_>>()
                    .join(" ");
                format!("ok {body}")
            }
            Err(ServeError::Overloaded) => "overloaded".to_string(),
            Err(e) => format!("err {e}"),
        },
    };
    writer.write_all(reply.as_bytes())?;
    writer.write_all(b"\n")?;
    writer.flush()
}

fn accept_one<C: BatchClassify>(
    engine: &Arc<BatchEngine<C>>,
    reg: &Arc<Registry>,
    cfg: &TcpConfig,
    stream: TcpStream,
) {
    reg.reap();
    if reg.live.load(Ordering::Acquire) >= cfg.max_conns {
        reg.refused.fetch_add(1, Ordering::Relaxed);
        let mut s = stream;
        let _ = s.write_all(b"overloaded\n");
        return;
    }
    reg.live.fetch_add(1, Ordering::Release);
    let engine = Arc::clone(engine);
    let reg2 = Arc::clone(reg);
    let idle = cfg.idle_timeout;
    let handle = std::thread::Builder::new()
        .name("gsgcn-serve-conn".into())
        .spawn(move || {
            let _guard = ConnGuard(&reg2);
            if let Err(e) = handle_connection(&engine, stream, &reg2, idle) {
                eprintln!("connection error: {e}");
            }
        })
        .expect("failed to spawn connection handler");
    reg.handles.lock().expect("registry lock").push(handle);
}

/// Accept-loop: every connection gets a handler thread that submits its
/// requests to the shared engine. Returns when the listener errors, or
/// runs forever otherwise (kept for CLI/test compatibility; prefer
/// [`TcpFrontend::spawn`], which adds shutdown).
pub fn run<C: BatchClassify>(
    engine: Arc<BatchEngine<C>>,
    listener: TcpListener,
) -> std::io::Result<()> {
    let reg = Arc::new(Registry::new());
    let cfg = TcpConfig::default();
    for stream in listener.incoming() {
        accept_one(&engine, &reg, &cfg, stream?);
    }
    Ok(())
}

/// Convenience used by tests and the CLI: bind `addr`, report the bound
/// address (ephemeral ports!), serve on a detached background thread
/// for the life of the process.
pub fn spawn<C: BatchClassify>(
    engine: Arc<BatchEngine<C>>,
    addr: &str,
) -> std::io::Result<std::net::SocketAddr> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    std::thread::Builder::new()
        .name("gsgcn-serve-accept".into())
        .spawn(move || {
            if let Err(e) = run(engine, listener) {
                eprintln!("serve accept loop failed: {e}");
            }
        })?;
    Ok(local)
}

/// Handle to a running thread-per-connection front-end with an actual
/// off switch: [`TcpFrontend::shutdown`] stops the accept loop, wakes
/// every handler (they poll the stop flag on their 100 ms read tick)
/// and joins all threads. Dropping the handle *without* calling
/// `shutdown` leaves the front-end running detached, matching [`spawn`].
pub struct TcpFrontend {
    local: std::net::SocketAddr,
    reg: Arc<Registry>,
    accept: Option<std::thread::JoinHandle<()>>,
}

impl TcpFrontend {
    /// Bind `addr` and serve on background threads.
    pub fn spawn<C: BatchClassify>(
        engine: Arc<BatchEngine<C>>,
        addr: &str,
        cfg: TcpConfig,
    ) -> std::io::Result<TcpFrontend> {
        if cfg.max_conns == 0 {
            return Err(std::io::Error::other("max_conns must be ≥ 1"));
        }
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let reg = Arc::new(Registry::new());
        let accept = {
            let reg = Arc::clone(&reg);
            std::thread::Builder::new()
                .name("gsgcn-serve-accept".into())
                .spawn(move || {
                    while !reg.stop.load(Ordering::Acquire) {
                        match listener.accept() {
                            Ok((stream, _)) => {
                                // Handlers use read timeouts; undo the
                                // listener's inherited nonblocking mode.
                                if stream.set_nonblocking(false).is_ok() {
                                    accept_one(&engine, &reg, &cfg, stream);
                                }
                            }
                            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                                std::thread::sleep(Duration::from_millis(20));
                            }
                            Err(_) => break,
                        }
                    }
                })?
        };
        Ok(TcpFrontend {
            local,
            reg,
            accept: Some(accept),
        })
    }

    /// The bound address (ephemeral ports!).
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.local
    }

    /// Live connection count (gauge; handler threads decrement on exit).
    pub fn live_conns(&self) -> usize {
        self.reg.live.load(Ordering::Acquire)
    }

    /// Connections refused at the `max_conns` bound.
    pub fn refused(&self) -> u64 {
        self.reg.refused.load(Ordering::Relaxed)
    }

    /// Connections evicted for idling past the deadline.
    pub fn evicted_idle(&self) -> u64 {
        self.reg.evicted_idle.load(Ordering::Relaxed)
    }

    /// Stop accepting, wake and join every handler thread.
    pub fn shutdown(mut self) {
        self.reg.stop.store(true, Ordering::Release);
        if let Some(t) = self.accept.take() {
            let _ = t.join();
        }
        self.reg.join_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_mixed_separators() {
        assert_eq!(parse_request("1 2,3\t4").unwrap(), vec![1, 2, 3, 4]);
        assert!(parse_request("1 x").is_err());
        assert!(parse_request("   ").is_err());
    }

    #[test]
    fn prediction_wire_format() {
        let p = Prediction {
            node: 9,
            labels: vec![2, 5],
            probs: vec![0.1, 0.2, 0.7],
        };
        assert_eq!(format_prediction(&p), "9:2,5:0.7000");
        let none = Prediction {
            node: 1,
            labels: vec![],
            probs: vec![0.3],
        };
        assert_eq!(format_prediction(&none), "1:-:0.3000");
    }
}
