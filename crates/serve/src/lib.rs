//! Batched inference serving for a trained graph-sampling GCN.
//!
//! The paper's core claim — subgraph-minibatch execution makes GCN
//! *training* scale — applies unchanged at inference time: a batch of K
//! query nodes runs forward on its K-rooted L-hop induced subgraph
//! instead of the full graph, reading off exactly the full-graph outputs
//! at the roots ([`gsgcn_graph::neighborhood`]). This crate packages
//! that into a serving subsystem: one immutable model artifact
//! (`Arc<GcnModel>` + graph + features) queried by many concurrent
//! clients over arbitrary node batches.
//!
//! # Dataflow
//!
//! ```text
//!  clients                 BatchEngine                      shared, immutable
//!  ───────                 ───────────                      ─────────────────
//!  submit(nodes) ──┐
//!  submit(nodes) ──┼─▶ bounded request queue                Arc<NodeClassifier>
//!  submit(nodes) ──┘   (capacity Q, submit parks            │ Arc<GcnModel>
//!        ▲             when full = backpressure)            │ Arc<CsrGraph>
//!        │                     │                            │ Arc<DMatrix> (features)
//!        │                     ▼                            │
//!        │             coalescing batcher ◀─────────────────┘
//!        │             (≤ max_batch query nodes OR
//!        │              max_wait elapsed, whichever first;
//!        │              requests are never split)
//!        │                     │ one claimed batch
//!        │                     ▼
//!        │             worker thread 1..N  (each owns a ClassifyWorkspace)
//!        │               1. L-hop ball of the batch roots (L = model layers)
//!        │               2. induced subgraph + feature row gather
//!        │               3. fused forward on the subgraph (&self model,
//!        │                  ping-pong InferenceWorkspace, zero allocs warm)
//!        │               4. per-node probabilities + decided labels
//!        │                     │
//!        └───── ResponseHandle::wait ◀─ per-request fulfillment
//!
//!  shutdown: drop(engine) → stop flag → wake all → join workers;
//!            queued-but-unserved requests fail with ShuttingDown.
//!  panics:   a worker panic poisons the engine; its batch, the queue
//!            and all future submits fail with WorkerPanicked(msg).
//! ```
//!
//! [`tcp`] exposes the engine over a newline-delimited TCP protocol
//! (`std::net` only), and the `gsgcn predict` / `gsgcn serve` CLI
//! commands drive it over a checkpoint (see the binary's usage).
//!
//! # Example
//!
//! ```
//! use gsgcn_data::presets;
//! use gsgcn_nn::model::{GcnConfig, GcnModel, LossKind};
//! use gsgcn_serve::{BatchEngine, EngineConfig, NodeClassifier};
//! use std::sync::Arc;
//!
//! let d = presets::scale_spec(&presets::ppi_spec(), 400).generate(1);
//! let model = GcnModel::new(GcnConfig {
//!     in_dim: d.feature_dim(),
//!     hidden_dims: vec![16, 16],
//!     num_classes: d.num_classes(),
//!     loss: LossKind::SigmoidBce,
//!     ..GcnConfig::default()
//! }, 7);
//! let classifier = NodeClassifier::new(
//!     Arc::new(model),
//!     Arc::new(d.graph.clone()),
//!     Arc::new(d.features.clone()),
//! ).unwrap();
//! let engine = BatchEngine::spawn(Arc::new(classifier), EngineConfig::default()).unwrap();
//! let preds = engine.classify(vec![0, 5, 9]).unwrap();
//! assert_eq!(preds.len(), 3);
//! assert_eq!(preds[1].node, 5);
//! ```

pub mod classifier;
pub mod engine;
pub mod tcp;

pub use classifier::{ClassifyWorkspace, NodeClassifier, Prediction};
pub use engine::{BatchEngine, EngineConfig, ResponseHandle, ServeError};
