//! Batched inference serving for a trained graph-sampling GCN.
//!
//! The paper's core claim — subgraph-minibatch execution makes GCN
//! *training* scale — applies unchanged at inference time: a batch of K
//! query nodes runs forward on its K-rooted L-hop induced subgraph
//! instead of the full graph, reading off exactly the full-graph outputs
//! at the roots ([`gsgcn_graph::neighborhood`]). This crate packages
//! that into a serving subsystem: one immutable model artifact
//! (`Arc<GcnModel>` + graph + features) queried by many concurrent
//! clients over arbitrary node batches.
//!
//! # Dataflow
//!
//! ```text
//!  sockets                  front-end                          BatchEngine
//!  ───────                  ─────────                          ───────────
//!  conn ──┐   poll::EventFrontend (one thread)
//!  conn ──┼─▶ nonblocking accept/read/write sweep
//!  conn ──┘   per-conn state machine, pipelined replies
//!        ▲    line OR length-prefixed binary protocol,
//!        │    idle eviction, max-conns bound
//!        │         │ try_submit / try_take (never blocks)
//!        │         ▼
//!        │    admission ─▶ bounded queue (capacity Q)
//!        │    Block: full queue parks submitters (backpressure)
//!        │    Shed:  full queue sheds the min-weight request
//!        │           (weight = batch-affinity × wait-time) with
//!        │           an explicit `overloaded` reply
//!        │         │
//!        │         ▼
//!        │    coalescing batcher (≤ max_batch nodes OR max_wait,
//!        │    whichever first; requests never split; Shed claims
//!        │    by weight, Block in FIFO order)
//!        │         │ one claimed batch
//!        │         ▼
//!        │    worker thread 1..N (each owns a ClassifyWorkspace)
//!        │      warm: 1-hop FrontierBall of the roots; gather
//!        │            acts^{L-1} rows from the ActivationCache;
//!        │            final hop = fused last layer + root-row head
//!        │      cold: exact cone-pruned L-hop forward (first L-1
//!        │            layers), final hop over the ball, harvest
//!        │            the ball's hidden rows into the cache
//!        │         │                    ▲        │
//!        │         │              ActivationCache (sharded CLOCK,
//!        │         │              byte budget, (node, version) keys)
//!        │         ▼
//!        └── ordered per-conn reply queue ◀─ per-request fulfillment
//!
//!  shutdown: drop(engine) → stop flag → wake all → join workers;
//!            queued-but-unserved requests fail with ShuttingDown.
//!  panics:   a worker panic poisons the engine; its batch, the queue
//!            and all future submits fail with WorkerPanicked(msg).
//! ```
//!
//! # Wire protocols
//!
//! Both front-ends ([`poll`], the event-driven default, and [`tcp`],
//! the thread-per-connection original — both `std::net` only) speak the
//! newline-delimited **line protocol**: `"12 55 103\n"` in,
//! `"ok 12:7:0.9312 55:3:0.5127 103:7:0.8809\n"` out,
//! `"err <message>\n"` on failure and `"overloaded\n"` when admission
//! control sheds the request.
//!
//! [`poll`] additionally speaks a pipelined **binary protocol**
//! (little-endian, length-prefixed; `len` counts the bytes after the
//! length field):
//!
//! ```text
//! request:  [len: u32] [req_id: u64] [n: u32] [n × node: u32]
//! response: [len: u32] [req_id: u64] [status: u8] [payload]
//!   status 0 = ok         payload: [n: u32] then n ×
//!                         [node: u32] [max_prob: f32]
//!                         [k: u32] [k × label: u32]
//!   status 1 = error      payload: UTF-8 message
//!   status 2 = overloaded payload: empty (admission shed; retry later)
//! ```
//!
//! Clients may pipeline requests freely; responses come back in
//! per-connection request order with matching `req_id`s. The `gsgcn
//! predict` / `gsgcn serve` CLI commands drive all of this over a
//! checkpoint (see the binary's usage).
//!
//! # Example
//!
//! ```
//! use gsgcn_data::presets;
//! use gsgcn_nn::model::{GcnConfig, GcnModel, LossKind};
//! use gsgcn_serve::{BatchEngine, EngineConfig, NodeClassifier};
//! use std::sync::Arc;
//!
//! let d = presets::scale_spec(&presets::ppi_spec(), 400).generate(1);
//! let model = GcnModel::new(GcnConfig {
//!     in_dim: d.feature_dim(),
//!     hidden_dims: vec![16, 16],
//!     num_classes: d.num_classes(),
//!     loss: LossKind::SigmoidBce,
//!     ..GcnConfig::default()
//! }, 7);
//! let classifier = NodeClassifier::new(
//!     Arc::new(model),
//!     Arc::new(d.graph.clone()),
//!     Arc::new(d.features.clone()),
//! ).unwrap();
//! let engine = BatchEngine::spawn(Arc::new(classifier), EngineConfig::default()).unwrap();
//! let preds = engine.classify(vec![0, 5, 9]).unwrap();
//! assert_eq!(preds.len(), 3);
//! assert_eq!(preds[1].node, 5);
//! ```

pub mod admission;
pub mod cache;
pub mod classifier;
pub mod engine;
pub mod poll;
pub mod tcp;

pub use admission::AdmissionControl;
pub use cache::{ActivationCache, CacheStats};
pub use classifier::{ClassifyWorkspace, NodeClassifier, Prediction};
pub use engine::{BatchEngine, EngineConfig, ResponseHandle, ServeError, TrySubmitError};
