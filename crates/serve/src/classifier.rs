//! The immutable serving artifact: one trained model + one graph +
//! features, shared by every worker thread, queried over node batches.
//!
//! A query for K nodes does **not** run the full-graph forward: it
//! extracts the K-rooted L-hop induced subgraph (L = the model's layer
//! count) via [`gsgcn_graph::neighborhood`], gathers that subgraph's
//! feature rows, and runs the workspace-driven forward on it — the
//! inference-side counterpart of the paper's subgraph-minibatch
//! training. The values read off at the root rows are exactly the
//! full-graph outputs (see the neighborhood module docs for the
//! induction argument), and the forward rides the same fused
//! `PackSource` aggregation pipeline as training.
//!
//! # The final hop, cold and warm
//!
//! Every classification ends the same way: the last GCN layer fused
//! over the roots' closed 1-hop [`FrontierBall`] followed by a
//! root-row-limited classifier head (frontier rows never reach the
//! dense GEMM). What differs is where the ball's `acts^{L-1}` rows come
//! from:
//!
//! * **warm** — every ball row is resident in the
//!   [`ActivationCache`](crate::cache::ActivationCache): gather and run
//!   the final hop; the L-hop cone is never extracted. A depth-L query
//!   costs ~1 hop.
//! * **cold** — run the exact cone-pruned forward for the first `L-1`
//!   layers. Its hidden rows are full-graph-exact at every vertex
//!   within distance 1 of the roots (`d + k ≤ L` induction) — exactly
//!   the ball the final hop needs, and exactly what the cache stores,
//!   so the cold path both answers the query and warms the cache.
//!
//! Both paths produce bit-identical root rows (the fused layer and the
//! packed GEMM accumulate per-row), pinned by the cached-vs-uncached
//! proptests in `tests/cache_equivalence.rs`.

use crate::cache::ActivationCache;
use gsgcn_graph::{l_hop_subgraph, one_hop_frontier, CsrGraph, GraphStore, Topology};
use gsgcn_nn::model::{GcnModel, LossKind};
use gsgcn_nn::InferenceWorkspace;
use gsgcn_tensor::DMatrix;
use std::sync::Arc;

/// Per-node classification result.
#[derive(Clone, Debug, PartialEq)]
pub struct Prediction {
    /// The queried node (original graph id).
    pub node: u32,
    /// Decided labels: the argmax class for single-label (softmax)
    /// models, every class with probability ≥ 0.5 for multi-label
    /// (sigmoid) models — possibly empty then.
    pub labels: Vec<u32>,
    /// Full class-probability row for the node.
    pub probs: Vec<f32>,
}

impl Prediction {
    /// Decided labels joined with commas, `-` when empty — the single
    /// presentation shared by the TCP protocol and the `predict` CLI.
    pub fn labels_display(&self) -> String {
        if self.labels.is_empty() {
            "-".to_string()
        } else {
            self.labels
                .iter()
                .map(|l| l.to_string())
                .collect::<Vec<_>>()
                .join(",")
        }
    }

    /// The highest class probability of the row.
    pub fn max_prob(&self) -> f32 {
        self.probs.iter().cloned().fold(f32::NEG_INFINITY, f32::max)
    }
}

/// Reusable per-thread scratch for [`NodeClassifier::classify_into`]:
/// the inference workspace plus the subgraph feature/probability
/// buffers. Warm calls with bounded batch sizes allocate no matrices.
#[derive(Debug)]
pub struct ClassifyWorkspace {
    infer: InferenceWorkspace,
    x: DMatrix,
    /// `acts^{L-1}` rows of the current frontier ball (gathered from
    /// the cache on the warm path, harvested from the cone forward on
    /// the cold path).
    hidden: DMatrix,
    probs: DMatrix,
}

impl Default for ClassifyWorkspace {
    fn default() -> Self {
        Self::new()
    }
}

impl ClassifyWorkspace {
    /// Fresh (empty) scratch; buffers grow on first use.
    pub fn new() -> Self {
        ClassifyWorkspace {
            infer: InferenceWorkspace::new(),
            x: DMatrix::zeros(0, 0),
            hidden: DMatrix::zeros(0, 0),
            probs: DMatrix::zeros(0, 0),
        }
    }
}

/// The engine-facing batch-classification interface.
///
/// [`NodeClassifier`] is the production implementation; the engine is
/// generic over this trait (the PR-4 `GraphSampler` idiom) so tests can
/// substitute failure-injecting stubs.
pub trait BatchClassify: Send + Sync + 'static {
    /// Classify `nodes`, appending one [`Prediction`] per requested node
    /// in request order to `out`.
    fn classify_into(
        &self,
        nodes: &[u32],
        ws: &mut ClassifyWorkspace,
        out: &mut Vec<Prediction>,
    ) -> Result<(), String>;

    /// Number of servable vertices (valid ids are `0..num_nodes`).
    fn num_nodes(&self) -> usize;

    /// Check every node is servable — called by the engine *before*
    /// queueing, so one bad request never poisons the unrelated
    /// requests it would have been coalesced with. The default checks
    /// the id range; [`NodeClassifier`] overrides with shard-aware
    /// validation (a node whose shard is not loaded is rejected with a
    /// message naming the shard).
    fn validate_nodes(&self, nodes: &[u32]) -> Result<(), String> {
        let n = self.num_nodes() as u32;
        match nodes.iter().find(|&&v| v >= n) {
            Some(&bad) => Err(format!("node {bad} out of range (graph has {n} vertices)")),
            None => Ok(()),
        }
    }
}

/// One trained model plus the graph it serves, immutable and `Sync`:
/// clone the `Arc`s in, share the classifier across worker threads.
///
/// Topology and feature rows are read through a [`GraphStore`], so the
/// same classifier serves a fully resident graph (`mem` backend) or a
/// sharded on-disk one (`mmap` backend) whose working set is bounded by
/// the shard-cache budget.
pub struct NodeClassifier {
    model: Arc<GcnModel>,
    store: Arc<GraphStore>,
    /// Shared `(node, version)` → `acts^{L-1}` row cache; `None` serves
    /// every query on the exact cone-pruned path. Single-layer models
    /// never attach one — their "hidden" state is the feature matrix,
    /// already resident.
    cache: Option<Arc<ActivationCache>>,
}

impl NodeClassifier {
    /// Assemble a classifier. Fails if the feature matrix does not match
    /// the graph or the model's input width.
    ///
    /// The activation cache defaults from the `GSGCN_ACTIVATION_CACHE`
    /// environment variable (`"64MiB"`-style; unset or `"0"` disables)
    /// so the whole serve stack — tests included — can be flipped
    /// between cached and uncached without code changes; override with
    /// [`NodeClassifier::with_cache`].
    pub fn new(
        model: Arc<GcnModel>,
        graph: Arc<CsrGraph>,
        features: Arc<DMatrix>,
    ) -> Result<Self, String> {
        if features.rows() != graph.num_vertices() {
            return Err(format!(
                "features have {} rows but the graph has {} vertices",
                features.rows(),
                graph.num_vertices()
            ));
        }
        // `from_parts_env` honours GSGCN_GRAPH_STORE, so the whole serve
        // stack — tests included — flips between resident and
        // out-of-core without code changes.
        let store = GraphStore::from_parts_env(graph, Some(features), None)
            .map_err(|e| format!("failed to build serving graph store: {e}"))?;
        Self::from_store(model, Arc::new(store))
    }

    /// Assemble a classifier over an existing [`GraphStore`] (e.g. a
    /// pre-sharded on-disk graph opened with `GraphStore::open`). Fails
    /// if the store has no feature matrix or its width does not match
    /// the model's input.
    pub fn from_store(model: Arc<GcnModel>, store: Arc<GraphStore>) -> Result<Self, String> {
        if store.feature_dim() == 0 {
            return Err("graph store holds no feature matrix".into());
        }
        if store.feature_dim() != model.config().in_dim {
            return Err(format!(
                "features are {}-dimensional but the model expects {}",
                store.feature_dim(),
                model.config().in_dim
            ));
        }
        let cache = if model.num_layers() >= 2 {
            // Cached rows follow the session's resolved activation
            // precision (--precision flag / GSGCN_PRECISION env): bf16
            // serving halves cache bytes-per-row too.
            crate::cache::budget_from_env().map(|bytes| {
                Arc::new(ActivationCache::with_precision(
                    bytes,
                    gsgcn_tensor::precision::current(),
                ))
            })
        } else {
            None
        };
        Ok(NodeClassifier {
            model,
            store,
            cache,
        })
    }

    /// Replace the activation cache (`None` disables caching). Ignored
    /// with a warning for single-layer models, whose final hop already
    /// reads the feature matrix directly.
    pub fn with_cache(mut self, cache: Option<Arc<ActivationCache>>) -> Self {
        if cache.is_some() && self.model.num_layers() < 2 {
            eprintln!("warning: activation cache ignored for a 1-layer model");
            self.cache = None;
        } else {
            self.cache = cache;
        }
        self
    }

    /// The attached activation cache, if any.
    pub fn cache(&self) -> Option<&Arc<ActivationCache>> {
        self.cache.as_ref()
    }

    /// Number of vertices servable (valid node ids are `0..num_nodes`).
    pub fn num_nodes(&self) -> usize {
        self.store.num_vertices()
    }

    /// The graph store backing this classifier.
    pub fn store(&self) -> &Arc<GraphStore> {
        &self.store
    }

    /// Pin the shards holding `nodes` (plus their one-hop frontiers)
    /// resident, exempt from cache eviction, until
    /// [`GraphStore::unpin_all`]. A no-op returning 0 on the `mem`
    /// backend. Use for a known-hot working set so cone-pruned serving
    /// never faults its roots back in.
    pub fn pin_hot(&self, nodes: &[u32]) -> std::io::Result<usize> {
        let mut ball: Vec<u32> = Vec::with_capacity(nodes.len() * 4);
        for &v in nodes {
            if !self.store.contains(v) {
                continue;
            }
            ball.push(v);
            ball.extend_from_slice(&self.store.neighbors_ref(v));
        }
        self.store.pin_nodes(&ball)
    }

    /// Check every requested node is servable. Distinguishes ids beyond
    /// the graph from ids whose **shard is not loaded** (a partial
    /// store deployment): either way the request fails cleanly with a
    /// per-node message instead of poisoning a coalesced batch.
    pub fn validate_nodes(&self, nodes: &[u32]) -> Result<(), String> {
        let n = self.store.num_vertices() as u32;
        for &v in nodes {
            if v >= n {
                return Err(format!("node {v} out of range (graph has {n} vertices)"));
            }
            if !self.store.contains(v) {
                let shard = self
                    .store
                    .shard_of(v)
                    .map(|s| format!(" (shard {s})"))
                    .unwrap_or_default();
                return Err(format!(
                    "node {v} is not servable: its shard{shard} is not loaded in this store"
                ));
            }
        }
        Ok(())
    }

    /// Number of output classes.
    pub fn num_classes(&self) -> usize {
        self.model.config().num_classes
    }

    /// The neighborhood depth a query extracts (= model layer count).
    pub fn hops(&self) -> usize {
        self.model.num_layers()
    }

    /// Classify a batch of nodes, appending one [`Prediction`] per
    /// requested node (request order, duplicates included) to `out`.
    /// Fails — rather than panics — on out-of-range ids, so
    /// network-facing callers can reject bad requests cheaply.
    ///
    /// See the module docs: a warm activation cache serves the query
    /// from the roots' 1-hop frontier ball alone; otherwise the exact
    /// cone-pruned L-hop path runs (and populates the cache).
    pub fn classify_into(
        &self,
        nodes: &[u32],
        ws: &mut ClassifyWorkspace,
        out: &mut Vec<Prediction>,
    ) -> Result<(), String> {
        if nodes.is_empty() {
            return Ok(());
        }
        self.validate_nodes(nodes)?;
        let g: &GraphStore = &self.store;
        let hops = self.model.num_layers();
        if hops == 1 {
            // Single layer: acts^{L-1} *is* the feature matrix, so the
            // final hop over the original-graph frontier ball is the
            // whole forward (no cache involved).
            let fb = one_hop_frontier(g, nodes);
            self.store
                .gather_features_into(&fb.origin, &mut ws.hidden)
                .map_err(|e| format!("feature read from graph store failed: {e}"))?;
            self.model.infer_probs_final_hop_into(
                &fb.graph,
                &ws.hidden,
                fb.num_roots,
                &mut ws.infer,
                &mut ws.probs,
            );
            self.emit(nodes, &fb.root_locals, ws, out);
            return Ok(());
        }
        if let Some(cache) = &self.cache {
            let fb = one_hop_frontier(g, nodes);
            if cache.try_gather(&fb.origin, self.model.hidden_width(), &mut ws.hidden) {
                // Warm path: every ball row was resident — the L-hop
                // cone is never touched.
                self.model.infer_probs_final_hop_into(
                    &fb.graph,
                    &ws.hidden,
                    fb.num_roots,
                    &mut ws.infer,
                    &mut ws.probs,
                );
                self.emit(nodes, &fb.root_locals, ws, out);
                return Ok(());
            }
        }
        // Cold path: exact cone-pruned forward for the first L-1
        // layers. Cone pruning: layer i only aggregates rows still
        // feeding the roots (dist ≤ L-1-i); outward rows are isolated,
        // so at reddit densities — where the raw ball saturates the
        // graph — the sparse work per query stays proportional to the
        // *inner* cone, not the full ball. Values within dist ≤ 1 of
        // the roots are exact after L-1 layers — the rows the final hop
        // consumes and the cache stores.
        let batch = l_hop_subgraph(g, nodes, hops);
        let layer_graphs = batch.layer_graphs(hops);
        self.store
            .gather_features_into(&batch.sub.origin, &mut ws.x)
            .map_err(|e| format!("feature read from graph store failed: {e}"))?;
        let fb = one_hop_frontier(&batch.sub.graph, &batch.root_locals);
        {
            let hidden_cone = self.model.infer_hidden_pruned_into(
                &layer_graphs[..hops - 1],
                &ws.x,
                &mut ws.infer,
            );
            hidden_cone.gather_rows_into(&fb.origin, &mut ws.hidden);
        }
        self.model.infer_probs_final_hop_into(
            &fb.graph,
            &ws.hidden,
            fb.num_roots,
            &mut ws.infer,
            &mut ws.probs,
        );
        if let Some(cache) = &self.cache {
            // Harvest: map ball-local rows back to original ids. (Vec
            // allocation, not a matrix — the warm-allocation-free
            // contract concerns the matrix side.)
            let orig: Vec<u32> = fb
                .origin
                .iter()
                .map(|&l| batch.sub.origin[l as usize])
                .collect();
            cache.insert_rows(&orig, &ws.hidden);
        }
        self.emit(nodes, &fb.root_locals, ws, out);
        Ok(())
    }

    /// Append one prediction per requested node, reading probability
    /// row `root_locals[i]` for request `i`.
    fn emit(
        &self,
        nodes: &[u32],
        root_locals: &[u32],
        ws: &ClassifyWorkspace,
        out: &mut Vec<Prediction>,
    ) {
        let single = self.model.config().loss == LossKind::SoftmaxCe;
        out.reserve(nodes.len());
        for (&node, &local) in nodes.iter().zip(root_locals) {
            let row = ws.probs.row(local as usize);
            out.push(Prediction {
                node,
                // The exact decision rule the trainer's F1 evaluation
                // uses — serving must never diverge from it.
                labels: gsgcn_metrics::f1::decide_labels(row, single),
                probs: row.to_vec(),
            });
        }
    }

    /// Allocating convenience wrapper around
    /// [`NodeClassifier::classify_into`].
    pub fn classify(&self, nodes: &[u32]) -> Result<Vec<Prediction>, String> {
        let mut out = Vec::new();
        self.classify_into(nodes, &mut ClassifyWorkspace::new(), &mut out)?;
        Ok(out)
    }

    /// Probabilities from a full-graph forward (every vertex) — the
    /// reference the batched path is tested and benchmarked against.
    /// Materialises the store (cheap `Arc` clones on the `mem` backend;
    /// a full read on `mmap` — reference/diagnostic use only there).
    pub fn full_graph_probs(&self) -> DMatrix {
        let (graph, features, _) = self
            .store
            .materialize()
            .expect("graph store materialize failed");
        let features = features.expect("classifier store always holds features");
        self.model.infer_probs(&graph, &features)
    }

    /// In-place variant of [`NodeClassifier::full_graph_probs`] for
    /// benchmark loops.
    pub fn full_graph_probs_into(&self, ws: &mut ClassifyWorkspace) {
        let (graph, features, _) = self
            .store
            .materialize()
            .expect("graph store materialize failed");
        let features = features.expect("classifier store always holds features");
        self.model
            .infer_probs_into(&graph, &features, &mut ws.infer, &mut ws.probs);
    }
}

impl BatchClassify for NodeClassifier {
    fn classify_into(
        &self,
        nodes: &[u32],
        ws: &mut ClassifyWorkspace,
        out: &mut Vec<Prediction>,
    ) -> Result<(), String> {
        NodeClassifier::classify_into(self, nodes, ws, out)
    }

    fn num_nodes(&self) -> usize {
        NodeClassifier::num_nodes(self)
    }

    fn validate_nodes(&self, nodes: &[u32]) -> Result<(), String> {
        NodeClassifier::validate_nodes(self, nodes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsgcn_graph::GraphBuilder;
    use gsgcn_nn::model::GcnConfig;

    fn fixture_parts(loss: LossKind) -> (Arc<GcnModel>, Arc<CsrGraph>, Arc<DMatrix>) {
        // Ring of 12 with chords, 2-layer model.
        let n = 12;
        let edges: Vec<(u32, u32)> = (0..n as u32)
            .map(|i| (i, (i + 1) % n as u32))
            .chain((0..n as u32 / 2).map(|i| (i, i + n as u32 / 2)))
            .collect();
        let g = GraphBuilder::new(n).add_edges(edges).build();
        let x = DMatrix::from_fn(n, 5, |i, j| ((i * 3 + j) % 7) as f32 * 0.2 - 0.5);
        let cfg = GcnConfig {
            in_dim: 5,
            hidden_dims: vec![8, 8],
            num_classes: 3,
            loss,
            ..GcnConfig::default()
        };
        let model = GcnModel::new(cfg, 17);
        (Arc::new(model), Arc::new(g), Arc::new(x))
    }

    fn fixture(loss: LossKind) -> NodeClassifier {
        let (model, g, x) = fixture_parts(loss);
        NodeClassifier::new(model, g, x).unwrap()
    }

    #[test]
    fn batched_matches_full_graph_forward() {
        for loss in [LossKind::SoftmaxCe, LossKind::SigmoidBce] {
            let c = fixture(loss);
            let full = c.full_graph_probs();
            let preds = c.classify(&[3, 7, 7, 0]).unwrap();
            assert_eq!(preds.len(), 4);
            for p in &preds {
                let want = full.row(p.node as usize);
                for (a, b) in p.probs.iter().zip(want) {
                    assert!(
                        (a - b).abs() < 1e-4,
                        "node {}: batched {a} vs full {b}",
                        p.node
                    );
                }
            }
        }
    }

    #[test]
    fn whole_node_set_is_bit_identical() {
        let c = fixture(LossKind::SoftmaxCe);
        let full = c.full_graph_probs();
        let all: Vec<u32> = (0..c.num_nodes() as u32).collect();
        let preds = c.classify(&all).unwrap();
        for p in &preds {
            assert_eq!(
                p.probs.as_slice(),
                full.row(p.node as usize),
                "node {} diverged on the identity batch",
                p.node
            );
        }
    }

    #[test]
    fn single_label_decision_is_argmax() {
        let c = fixture(LossKind::SoftmaxCe);
        let preds = c.classify(&[2]).unwrap();
        let p = &preds[0];
        assert_eq!(p.labels.len(), 1);
        let best = p
            .probs
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0 as u32;
        assert_eq!(p.labels[0], best);
    }

    #[test]
    fn out_of_range_node_is_an_error() {
        let c = fixture(LossKind::SoftmaxCe);
        let err = c.classify(&[0, 99]).unwrap_err();
        assert!(err.contains("out of range"), "{err}");
    }

    #[test]
    fn mismatched_features_rejected() {
        let (model, g, _) = fixture_parts(LossKind::SoftmaxCe);
        let bad = DMatrix::zeros(5, 5);
        assert!(NodeClassifier::new(model, g, Arc::new(bad)).is_err());
    }

    #[test]
    fn warm_classify_is_allocation_free() {
        let c = fixture(LossKind::SoftmaxCe);
        let mut ws = ClassifyWorkspace::new();
        let mut out = Vec::new();
        c.classify_into(&[1, 5, 9], &mut ws, &mut out).unwrap();
        // The matrix side must be quiet once warm (Vec growth in the
        // response payload is expected and cheap).
        let before = gsgcn_tensor::alloc::matrix_allocations();
        for _ in 0..5 {
            out.clear();
            c.classify_into(&[1, 5, 9], &mut ws, &mut out).unwrap();
        }
        let steady = gsgcn_tensor::alloc::matrix_allocations() - before;
        assert_eq!(steady, 0, "classify allocated {steady} matrices when warm");
    }
}
