//! Event-driven TCP front-end: one thread sweeping N nonblocking
//! connections, replacing the thread-per-connection model of [`crate::tcp`].
//!
//! The workspace is `std`-only (no epoll/kqueue binding to link), so
//! readiness is discovered by a **sweep poller**: every connection is
//! nonblocking, and one loop repeatedly attempts accept/read/write on
//! all of them, parking with an adaptive backoff (50 µs doubling to
//! 2 ms) whenever a full sweep makes no progress. Under load the loop
//! never parks and behaves like a busy-polled reactor; idle, it costs a
//! few wakeups per second. The sweep is a drop-in point for a real
//! `Poller` should an OS binding ever land — connection state machines
//! and protocol framing below are readiness-agnostic.
//!
//! Per connection the state machine is: read bytes → parse frames
//! (line or binary protocol, see the crate docs) → `try_submit` to the
//! [`BatchEngine`] (never blocking the sweep; a full Block-mode queue
//! pauses *parsing* for that connection, which backpressures the socket
//! instead) → poll in-flight requests with `try_take` → encode replies
//! **in request order** → write. Clients may pipeline arbitrarily many
//! requests up to `max_pipeline`.
//!
//! Connection hygiene (the PR-6 leak fix, shared with [`crate::tcp`]):
//! connections idle longer than `idle_timeout` with nothing in flight
//! are evicted; `max_conns` bounds acceptance (excess connections get
//! one `overloaded` reply and close); EOF mid-line or mid-frame just
//! drops the connection after flushing pending replies — state lives in
//! the `Conn` struct, not in a blocked reader thread, so there is no
//! thread to leak. Shutdown joins the single loop thread.

use crate::classifier::BatchClassify;
use crate::engine::{BatchEngine, ResponseHandle, ServeError, TrySubmitError};
use crate::tcp::{format_prediction, parse_request};
use crate::Prediction;
use std::collections::VecDeque;
use std::io::{ErrorKind, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Which framing a [`EventFrontend`] speaks (see the crate docs).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Protocol {
    /// Newline-delimited text (interoperates with `nc`/telnet and the
    /// original [`crate::tcp`] front-end).
    #[default]
    Line,
    /// Length-prefixed binary frames with client request ids.
    Binary,
}

impl std::str::FromStr for Protocol {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "line" => Ok(Protocol::Line),
            "binary" => Ok(Protocol::Binary),
            other => Err(format!("bad protocol {other:?}: expected line|binary")),
        }
    }
}

/// Front-end tuning knobs.
#[derive(Clone, Copy, Debug)]
pub struct FrontendConfig {
    pub protocol: Protocol,
    /// Accepted-connection bound; excess connections are refused with
    /// one `overloaded` reply.
    pub max_conns: usize,
    /// Connections idle this long with nothing in flight are evicted.
    pub idle_timeout: Duration,
    /// In-flight request bound per connection; beyond it, parsing
    /// pauses (socket backpressure) until replies drain.
    pub max_pipeline: usize,
}

impl Default for FrontendConfig {
    fn default() -> Self {
        FrontendConfig {
            protocol: Protocol::Line,
            max_conns: 1024,
            idle_timeout: Duration::from_secs(60),
            max_pipeline: 256,
        }
    }
}

impl FrontendConfig {
    fn validate(&self) -> Result<(), String> {
        if self.max_conns == 0 {
            return Err("max_conns must be ≥ 1".into());
        }
        if self.max_pipeline == 0 {
            return Err("max_pipeline must be ≥ 1".into());
        }
        Ok(())
    }
}

/// Relaxed counters of one running front-end.
#[derive(Debug, Default)]
pub struct FrontendStats {
    pub accepted: AtomicU64,
    pub refused: AtomicU64,
    pub evicted_idle: AtomicU64,
    pub requests: AtomicU64,
    pub replies: AtomicU64,
    pub protocol_errors: AtomicU64,
}

/// Binary protocol framing (see the crate docs for the layout).
/// Encoders/decoders are plain buffer transforms so tests and bench
/// clients reuse them verbatim.
pub mod wire {
    use super::{Prediction, ServeError};

    /// Frame payload bound (1M-node request); a longer announced frame
    /// is a protocol error, not an allocation.
    pub const MAX_FRAME: usize = 4 << 20;

    /// One prediction as decoded by a binary-protocol client.
    #[derive(Clone, Debug, PartialEq)]
    pub struct WirePrediction {
        pub node: u32,
        pub max_prob: f32,
        pub labels: Vec<u32>,
    }

    /// One decoded response frame.
    #[derive(Clone, Debug, PartialEq)]
    pub enum WireResponse {
        Ok(Vec<WirePrediction>),
        Err(String),
        Overloaded,
    }

    fn put_u32(out: &mut Vec<u8>, v: u32) {
        out.extend_from_slice(&v.to_le_bytes());
    }

    fn get_u32(b: &[u8]) -> u32 {
        u32::from_le_bytes(b[..4].try_into().expect("length checked"))
    }

    /// Append one request frame.
    pub fn encode_request(req_id: u64, nodes: &[u32], out: &mut Vec<u8>) {
        let len = 8 + 4 + 4 * nodes.len();
        put_u32(out, len as u32);
        out.extend_from_slice(&req_id.to_le_bytes());
        put_u32(out, nodes.len() as u32);
        for &n in nodes {
            put_u32(out, n);
        }
    }

    /// Try to decode one request frame from the front of `buf`:
    /// `Ok(None)` = incomplete, `Ok(Some((consumed, req_id, nodes)))`
    /// on success, `Err` = malformed (close the connection).
    pub fn try_decode_request(buf: &[u8]) -> Result<Option<(usize, u64, Vec<u32>)>, String> {
        if buf.len() < 4 {
            return Ok(None);
        }
        let len = get_u32(buf) as usize;
        if len > MAX_FRAME {
            return Err(format!(
                "frame of {len} bytes exceeds the {MAX_FRAME} limit"
            ));
        }
        if len < 12 {
            return Err(format!("request frame of {len} bytes is too short"));
        }
        if buf.len() < 4 + len {
            return Ok(None);
        }
        let body = &buf[4..4 + len];
        let req_id = u64::from_le_bytes(body[..8].try_into().expect("length checked"));
        let n = get_u32(&body[8..]) as usize;
        if len != 12 + 4 * n {
            return Err(format!(
                "request frame length {len} disagrees with count {n}"
            ));
        }
        let nodes = body[12..].chunks_exact(4).map(get_u32).collect();
        Ok(Some((4 + len, req_id, nodes)))
    }

    /// Append one response frame for an engine result.
    pub fn encode_response(
        req_id: u64,
        result: &Result<Vec<Prediction>, ServeError>,
        out: &mut Vec<u8>,
    ) {
        let at = out.len();
        put_u32(out, 0); // frame length backpatched below
        out.extend_from_slice(&req_id.to_le_bytes());
        match result {
            Ok(preds) => {
                out.push(0);
                put_u32(out, preds.len() as u32);
                for p in preds {
                    put_u32(out, p.node);
                    out.extend_from_slice(&p.max_prob().to_le_bytes());
                    put_u32(out, p.labels.len() as u32);
                    for &l in &p.labels {
                        put_u32(out, l);
                    }
                }
            }
            Err(ServeError::Overloaded) => out.push(2),
            Err(e) => {
                out.push(1);
                out.extend_from_slice(e.to_string().as_bytes());
            }
        }
        let len = (out.len() - at - 4) as u32;
        out[at..at + 4].copy_from_slice(&len.to_le_bytes());
    }

    /// Try to decode one response frame from the front of `buf`; same
    /// contract as [`try_decode_request`].
    pub fn try_decode_response(buf: &[u8]) -> Result<Option<(usize, u64, WireResponse)>, String> {
        if buf.len() < 4 {
            return Ok(None);
        }
        let len = get_u32(buf) as usize;
        if len > MAX_FRAME {
            return Err(format!(
                "frame of {len} bytes exceeds the {MAX_FRAME} limit"
            ));
        }
        if len < 9 {
            return Err(format!("response frame of {len} bytes is too short"));
        }
        if buf.len() < 4 + len {
            return Ok(None);
        }
        let body = &buf[4..4 + len];
        let req_id = u64::from_le_bytes(body[..8].try_into().expect("length checked"));
        let payload = &body[9..];
        let resp = match body[8] {
            0 => {
                if payload.len() < 4 {
                    return Err("truncated ok payload".into());
                }
                let n = get_u32(payload) as usize;
                let mut preds = Vec::with_capacity(n);
                let mut at = 4;
                for _ in 0..n {
                    if payload.len() < at + 12 {
                        return Err("truncated prediction".into());
                    }
                    let node = get_u32(&payload[at..]);
                    let max_prob = f32::from_le_bytes(
                        payload[at + 4..at + 8].try_into().expect("length checked"),
                    );
                    let k = get_u32(&payload[at + 8..]) as usize;
                    at += 12;
                    if payload.len() < at + 4 * k {
                        return Err("truncated label list".into());
                    }
                    let labels = payload[at..at + 4 * k]
                        .chunks_exact(4)
                        .map(get_u32)
                        .collect();
                    at += 4 * k;
                    preds.push(WirePrediction {
                        node,
                        max_prob,
                        labels,
                    });
                }
                WireResponse::Ok(preds)
            }
            1 => WireResponse::Err(String::from_utf8_lossy(payload).into_owned()),
            2 => WireResponse::Overloaded,
            s => return Err(format!("unknown response status {s}")),
        };
        Ok(Some((4 + len, req_id, resp)))
    }
}

/// Input buffer bound: a line or partial frame beyond this is a
/// protocol error (DoS hygiene; legitimate requests are far smaller).
const MAX_RBUF: usize = wire::MAX_FRAME + 4;

/// One in-flight or answered request, queued per connection so replies
/// go out in request order even when the engine answers out of order.
enum Pending {
    Waiting {
        id: u64,
        handle: ResponseHandle,
    },
    Ready {
        id: u64,
        result: Result<Vec<Prediction>, ServeError>,
    },
}

/// Per-connection state machine.
struct Conn {
    stream: TcpStream,
    rbuf: Vec<u8>,
    wbuf: Vec<u8>,
    wpos: usize,
    pending: VecDeque<Pending>,
    /// A parsed request the engine had no room for (Block mode): retried
    /// every sweep before any further parsing — per-connection ordering
    /// is preserved and the socket backpressures.
    deferred: Option<(u64, Vec<u32>)>,
    last_activity: Instant,
    /// Peer closed its read side (or asked to quit): flush, then drop.
    closing: bool,
    /// Unrecoverable I/O or protocol error: drop without flushing.
    dead: bool,
}

impl Conn {
    fn new(stream: TcpStream) -> Self {
        Conn {
            stream,
            rbuf: Vec::new(),
            wbuf: Vec::new(),
            wpos: 0,
            pending: VecDeque::new(),
            deferred: None,
            last_activity: Instant::now(),
            closing: false,
            dead: false,
        }
    }

    fn idle(&self) -> bool {
        self.pending.is_empty() && self.wbuf.is_empty() && self.deferred.is_none()
    }
}

/// Handle to a running event front-end (accept + sweep on one thread).
/// Dropping it stops and joins the loop; [`EventFrontend::join`] blocks
/// until the loop exits on its own (listener error) — the CLI's serve
/// loop.
pub struct EventFrontend {
    local: std::net::SocketAddr,
    stop: Arc<AtomicBool>,
    stats: Arc<FrontendStats>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl EventFrontend {
    /// Bind `addr` and start the sweep loop over `engine`.
    pub fn spawn<C: BatchClassify>(
        engine: Arc<BatchEngine<C>>,
        addr: &str,
        cfg: FrontendConfig,
    ) -> std::io::Result<EventFrontend> {
        cfg.validate().map_err(std::io::Error::other)?;
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let stats = Arc::new(FrontendStats::default());
        let thread = {
            let stop = Arc::clone(&stop);
            let stats = Arc::clone(&stats);
            std::thread::Builder::new()
                .name("gsgcn-serve-poll".into())
                .spawn(move || sweep_loop(&engine, &listener, cfg, &stop, &stats))?
        };
        Ok(EventFrontend {
            local,
            stop,
            stats,
            thread: Some(thread),
        })
    }

    /// The bound address (ephemeral ports!).
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.local
    }

    /// The front-end's counters.
    pub fn stats(&self) -> &FrontendStats {
        &self.stats
    }

    /// Stop the sweep loop and join its thread.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    /// Block until the loop thread exits (it only does on listener
    /// failure or [`EventFrontend::shutdown`] from another handle).
    pub fn join(mut self) {
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for EventFrontend {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// Park times for a sweep that made no progress: escalate from 50 µs to
/// 2 ms, reset on any progress. Keeps the idle loop at a handful of
/// wakeups per millisecond-scale latency target without a kernel poller.
const PARK_MIN: Duration = Duration::from_micros(50);
const PARK_MAX: Duration = Duration::from_millis(2);

fn sweep_loop<C: BatchClassify>(
    engine: &BatchEngine<C>,
    listener: &TcpListener,
    cfg: FrontendConfig,
    stop: &AtomicBool,
    stats: &FrontendStats,
) {
    let mut conns: Vec<Conn> = Vec::new();
    let mut park = PARK_MIN;
    let mut read_chunk = [0u8; 4096];
    while !stop.load(Ordering::Acquire) {
        let mut progress = false;

        // --- Accept phase (bounded per sweep for fairness) ---
        for _ in 0..32 {
            match listener.accept() {
                Ok((stream, _)) => {
                    progress = true;
                    if conns.len() >= cfg.max_conns {
                        refuse(stream, cfg.protocol);
                        stats.refused.fetch_add(1, Ordering::Relaxed);
                        continue;
                    }
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    conns.push(Conn::new(stream));
                    stats.accepted.fetch_add(1, Ordering::Relaxed);
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(_) => return, // listener gone: shut the front-end down
            }
        }

        // --- Per-connection phases ---
        for conn in conns.iter_mut() {
            progress |= step_conn(conn, engine, &cfg, stats, &mut read_chunk);
        }

        // --- Cull phase ---
        let before = conns.len();
        let idle_timeout = cfg.idle_timeout;
        conns.retain(|c| {
            if c.dead || (c.closing && c.idle()) {
                return false;
            }
            if c.idle() && c.last_activity.elapsed() > idle_timeout {
                stats.evicted_idle.fetch_add(1, Ordering::Relaxed);
                return false;
            }
            true
        });
        progress |= conns.len() != before;

        if progress {
            park = PARK_MIN;
        } else {
            std::thread::sleep(park);
            park = (park * 2).min(PARK_MAX);
        }
    }
}

/// One sweep step of one connection; returns whether anything moved.
fn step_conn<C: BatchClassify>(
    conn: &mut Conn,
    engine: &BatchEngine<C>,
    cfg: &FrontendConfig,
    stats: &FrontendStats,
    chunk: &mut [u8],
) -> bool {
    if conn.dead {
        return false;
    }
    let mut progress = false;

    // --- Read phase (bounded per sweep for fairness) ---
    if !conn.closing {
        for _ in 0..8 {
            if conn.rbuf.len() >= MAX_RBUF {
                protocol_error(conn, cfg.protocol, "input buffer overflow", stats);
                break;
            }
            match conn.stream.read(chunk) {
                Ok(0) => {
                    conn.closing = true;
                    break;
                }
                Ok(n) => {
                    conn.rbuf.extend_from_slice(&chunk[..n]);
                    conn.last_activity = Instant::now();
                    progress = true;
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => {
                    conn.dead = true;
                    return true;
                }
            }
        }
    }

    // --- Submit phase: retry the deferred request, then parse more ---
    if let Some((id, nodes)) = conn.deferred.take() {
        // On false the queue is still full; submit() re-stashed the request.
        if submit(conn, engine, id, nodes, stats) {
            progress = true;
        }
    }
    if conn.deferred.is_none() && !conn.dead {
        progress |= parse_input(conn, engine, cfg, stats);
    }

    // --- Resolve phase: drain answered requests in order ---
    while let Some(front) = conn.pending.front_mut() {
        match front {
            Pending::Ready { .. } => {}
            Pending::Waiting { handle, .. } => match handle.try_take() {
                Some(result) => {
                    let id = match front {
                        Pending::Waiting { id, .. } => *id,
                        Pending::Ready { .. } => unreachable!(),
                    };
                    *front = Pending::Ready { id, result };
                }
                None => break,
            },
        }
        let Some(Pending::Ready { id, result }) = conn.pending.pop_front() else {
            unreachable!("front was just made Ready");
        };
        encode_reply(conn, cfg.protocol, id, &result);
        stats.replies.fetch_add(1, Ordering::Relaxed);
        progress = true;
    }

    // --- Write phase ---
    while conn.wpos < conn.wbuf.len() {
        match conn.stream.write(&conn.wbuf[conn.wpos..]) {
            Ok(0) => {
                conn.dead = true;
                break;
            }
            Ok(n) => {
                conn.wpos += n;
                conn.last_activity = Instant::now();
                progress = true;
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => {
                conn.dead = true;
                break;
            }
        }
    }
    if conn.wpos == conn.wbuf.len() && conn.wpos > 0 {
        conn.wbuf.clear();
        conn.wpos = 0;
    }
    progress
}

/// Parse as many complete requests as the pipeline bound allows.
fn parse_input<C: BatchClassify>(
    conn: &mut Conn,
    engine: &BatchEngine<C>,
    cfg: &FrontendConfig,
    stats: &FrontendStats,
) -> bool {
    let mut progress = false;
    let mut consumed = 0usize;
    while !conn.closing && conn.deferred.is_none() && conn.pending.len() < cfg.max_pipeline {
        match cfg.protocol {
            Protocol::Line => {
                let Some(nl) = conn.rbuf[consumed..].iter().position(|&b| b == b'\n') else {
                    break;
                };
                let line = &conn.rbuf[consumed..consumed + nl];
                let line = std::str::from_utf8(line).unwrap_or("\u{FFFD}").trim();
                let request = if line.is_empty() || line == "quit" {
                    conn.closing = true;
                    consumed += nl + 1;
                    break;
                } else {
                    parse_request(line)
                };
                consumed += nl + 1;
                progress = true;
                match request {
                    Ok(nodes) => {
                        stats.requests.fetch_add(1, Ordering::Relaxed);
                        submit(conn, engine, 0, nodes, stats);
                    }
                    Err(e) => conn.pending.push_back(Pending::Ready {
                        id: 0,
                        result: Err(ServeError::BadRequest(e)),
                    }),
                }
            }
            Protocol::Binary => match wire::try_decode_request(&conn.rbuf[consumed..]) {
                Ok(None) => break,
                Ok(Some((used, id, nodes))) => {
                    consumed += used;
                    progress = true;
                    stats.requests.fetch_add(1, Ordering::Relaxed);
                    submit(conn, engine, id, nodes, stats);
                }
                Err(e) => {
                    protocol_error(conn, cfg.protocol, &e, stats);
                    break;
                }
            },
        }
    }
    if consumed > 0 {
        conn.rbuf.drain(..consumed);
    }
    progress
}

/// Submit one parsed request; on a full Block-mode queue the request is
/// parked in `conn.deferred` (and `false` returned) so the sweep
/// retries it before parsing anything newer.
fn submit<C: BatchClassify>(
    conn: &mut Conn,
    engine: &BatchEngine<C>,
    id: u64,
    nodes: Vec<u32>,
    _stats: &FrontendStats,
) -> bool {
    match engine.try_submit(nodes) {
        Ok(handle) => {
            conn.pending.push_back(Pending::Waiting { id, handle });
            true
        }
        Err(TrySubmitError::Full(nodes)) => {
            conn.deferred = Some((id, nodes));
            false
        }
        Err(TrySubmitError::Rejected(e)) => {
            conn.pending
                .push_back(Pending::Ready { id, result: Err(e) });
            true
        }
    }
}

/// Append one reply in the connection's protocol framing.
fn encode_reply(
    conn: &mut Conn,
    protocol: Protocol,
    id: u64,
    result: &Result<Vec<Prediction>, ServeError>,
) {
    match protocol {
        Protocol::Line => {
            let line = match result {
                Ok(preds) => {
                    let body = preds
                        .iter()
                        .map(format_prediction)
                        .collect::<Vec<_>>()
                        .join(" ");
                    format!("ok {body}")
                }
                Err(ServeError::Overloaded) => "overloaded".to_string(),
                Err(e) => format!("err {e}"),
            };
            conn.wbuf.extend_from_slice(line.as_bytes());
            conn.wbuf.push(b'\n');
        }
        Protocol::Binary => wire::encode_response(id, result, &mut conn.wbuf),
    }
}

/// Tear a connection down on a framing violation: one last error reply,
/// then close (a framing error desynchronises the stream — there is no
/// safe way to keep parsing).
fn protocol_error(conn: &mut Conn, protocol: Protocol, msg: &str, stats: &FrontendStats) {
    stats.protocol_errors.fetch_add(1, Ordering::Relaxed);
    encode_reply(
        conn,
        protocol,
        0,
        &Err(ServeError::BadRequest(msg.to_string())),
    );
    conn.rbuf.clear();
    conn.closing = true;
}

/// Best-effort `overloaded` reply to a connection refused at
/// `max_conns` (nonblocking write; if the socket is not writable the
/// close alone carries the message).
fn refuse(stream: TcpStream, protocol: Protocol) {
    let _ = stream.set_nonblocking(true);
    let mut buf = Vec::new();
    match protocol {
        Protocol::Line => buf.extend_from_slice(b"overloaded\n"),
        Protocol::Binary => wire::encode_response(0, &Err(ServeError::Overloaded), &mut buf),
    }
    let mut s = stream;
    let _ = s.write(&buf);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn protocol_parses() {
        assert_eq!("line".parse::<Protocol>().unwrap(), Protocol::Line);
        assert_eq!("binary".parse::<Protocol>().unwrap(), Protocol::Binary);
        assert!("http".parse::<Protocol>().is_err());
    }

    #[test]
    fn request_frames_round_trip() {
        let mut buf = Vec::new();
        wire::encode_request(42, &[7, 0, 999], &mut buf);
        wire::encode_request(43, &[1], &mut buf);
        let (used, id, nodes) = wire::try_decode_request(&buf).unwrap().unwrap();
        assert_eq!((id, nodes), (42, vec![7, 0, 999]));
        let (used2, id2, nodes2) = wire::try_decode_request(&buf[used..]).unwrap().unwrap();
        assert_eq!((id2, nodes2), (43, vec![1]));
        assert_eq!(used + used2, buf.len());
        // Truncated prefix: incomplete, not an error.
        assert!(wire::try_decode_request(&buf[..used - 1])
            .unwrap()
            .is_none());
        assert!(wire::try_decode_request(&buf[..3]).unwrap().is_none());
    }

    #[test]
    fn response_frames_round_trip() {
        let preds = vec![
            Prediction {
                node: 5,
                labels: vec![2, 7],
                probs: vec![0.1, 0.2, 0.7],
            },
            Prediction {
                node: 9,
                labels: vec![],
                probs: vec![0.4],
            },
        ];
        let mut buf = Vec::new();
        wire::encode_response(11, &Ok(preds.clone()), &mut buf);
        wire::encode_response(12, &Err(ServeError::Overloaded), &mut buf);
        wire::encode_response(13, &Err(ServeError::BadRequest("nope".into())), &mut buf);
        let (used, id, resp) = wire::try_decode_response(&buf).unwrap().unwrap();
        assert_eq!(id, 11);
        match resp {
            wire::WireResponse::Ok(got) => {
                assert_eq!(got.len(), 2);
                assert_eq!(got[0].node, 5);
                assert_eq!(got[0].labels, vec![2, 7]);
                assert!((got[0].max_prob - 0.7).abs() < 1e-6);
                assert_eq!(got[1].labels, Vec::<u32>::new());
            }
            other => panic!("unexpected {other:?}"),
        }
        let (used2, id2, resp2) = wire::try_decode_response(&buf[used..]).unwrap().unwrap();
        assert_eq!((id2, resp2), (12, wire::WireResponse::Overloaded));
        let (_, id3, resp3) = wire::try_decode_response(&buf[used + used2..])
            .unwrap()
            .unwrap();
        assert_eq!(id3, 13);
        assert_eq!(
            resp3,
            wire::WireResponse::Err("bad request: nope".to_string())
        );
    }

    #[test]
    fn malformed_frames_are_errors_not_panics() {
        // Announced length beyond the cap.
        let mut buf = Vec::new();
        buf.extend_from_slice(&(u32::MAX).to_le_bytes());
        buf.extend_from_slice(&[0; 16]);
        assert!(wire::try_decode_request(&buf).is_err());
        // Length/count disagreement.
        let mut buf = Vec::new();
        wire::encode_request(1, &[1, 2, 3], &mut buf);
        buf[4 + 8] = 99; // count field corrupted
        assert!(wire::try_decode_request(&buf).is_err());
        // Unknown response status.
        let mut buf = Vec::new();
        wire::encode_response(1, &Err(ServeError::Overloaded), &mut buf);
        buf[12] = 77;
        assert!(wire::try_decode_response(&buf).is_err());
    }
}
