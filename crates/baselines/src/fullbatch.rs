//! Full-batch GCN trainer (baseline ref.\[1\], "Batched GCN").
//!
//! One gradient step per epoch over the entire training graph — the
//! Sec. III-B "Case 2 [Large batch size]" regime: work-efficient per
//! epoch (`O(L·|V|·f·(f + d))`) but converging slowly because each epoch
//! is a single large-batch update (ref.\[4\]).

use gsgcn_data::dataset::{Dataset, TaskKind, TrainView};
use gsgcn_metrics::f1;
use gsgcn_nn::adam::AdamHyper;
use gsgcn_nn::model::{GcnConfig, GcnModel, LossKind};
use std::time::Instant;

/// Full-batch trainer configuration.
#[derive(Clone, Debug)]
pub struct FullBatchConfig {
    /// Hidden layer widths.
    pub hidden_dims: Vec<usize>,
    /// Adam hyperparameters.
    pub adam: AdamHyper,
    /// Master seed.
    pub seed: u64,
}

impl Default for FullBatchConfig {
    fn default() -> Self {
        FullBatchConfig {
            hidden_dims: vec![128, 128],
            adam: AdamHyper {
                lr: 1e-2,
                ..AdamHyper::default()
            },
            seed: 1,
        }
    }
}

/// Full-batch GCN trainer.
pub struct FullBatchTrainer<'a> {
    dataset: &'a Dataset,
    train_view: TrainView,
    model: GcnModel,
    train_secs: f64,
}

impl<'a> FullBatchTrainer<'a> {
    /// Build a trainer.
    pub fn new(dataset: &'a Dataset, cfg: FullBatchConfig) -> Result<Self, String> {
        dataset.validate()?;
        let train_view = dataset.train_view();
        let loss = match dataset.task {
            TaskKind::MultiLabel => LossKind::SigmoidBce,
            TaskKind::SingleLabel => LossKind::SoftmaxCe,
        };
        let model_cfg = GcnConfig {
            in_dim: dataset.feature_dim(),
            hidden_dims: cfg.hidden_dims.clone(),
            num_classes: dataset.num_classes(),
            loss,
            adam: cfg.adam,
            dropout: 0.0,
            fused: true,
        };
        model_cfg.validate()?;
        Ok(FullBatchTrainer {
            dataset,
            train_view,
            model: GcnModel::new(model_cfg, cfg.seed),
            train_secs: 0.0,
        })
    }

    /// Cumulative training seconds.
    pub fn train_secs(&self) -> f64 {
        self.train_secs
    }

    /// The underlying model (read access for tests).
    pub fn model(&self) -> &GcnModel {
        &self.model
    }

    /// One epoch = one full-graph gradient step. Returns the loss.
    pub fn train_epoch(&mut self) -> f32 {
        let start = Instant::now();
        let step = self.model.train_step(
            &self.train_view.graph,
            &self.train_view.features,
            &self.train_view.labels,
        );
        self.train_secs += start.elapsed().as_secs_f64();
        step.loss
    }

    /// F1-micro on the validation split (full-graph inference).
    pub fn evaluate_val(&self) -> f64 {
        let probs = self
            .model
            .infer_probs(&self.dataset.graph, &self.dataset.features);
        let idx = &self.dataset.split.val;
        let single = self.dataset.task == TaskKind::SingleLabel;
        f1::f1_micro_from_probs(
            &probs.gather_rows(idx),
            &self.dataset.labels.gather_rows(idx),
            single,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsgcn_data::presets;

    fn quick_dataset() -> Dataset {
        presets::scale_spec(&presets::ppi_spec(), 400).generate(17)
    }

    fn quick_cfg() -> FullBatchConfig {
        FullBatchConfig {
            hidden_dims: vec![32, 32],
            adam: AdamHyper {
                lr: 2e-2,
                ..AdamHyper::default()
            },
            seed: 5,
        }
    }

    #[test]
    fn builds_and_trains() {
        let d = quick_dataset();
        let mut t = FullBatchTrainer::new(&d, quick_cfg()).unwrap();
        let first = t.train_epoch();
        let mut last = first;
        for _ in 0..60 {
            last = t.train_epoch();
        }
        assert!(last < first, "loss {first} → {last}");
        assert!(t.train_secs() > 0.0);
    }

    #[test]
    fn learns_above_chance() {
        let d = quick_dataset();
        let mut t = FullBatchTrainer::new(&d, quick_cfg()).unwrap();
        for _ in 0..80 {
            t.train_epoch();
        }
        assert!(t.evaluate_val() > 0.2, "val F1 {}", t.evaluate_val());
    }

    #[test]
    fn one_step_per_epoch() {
        let d = quick_dataset();
        let mut t = FullBatchTrainer::new(&d, quick_cfg()).unwrap();
        t.train_epoch();
        t.train_epoch();
        assert_eq!(t.model().steps(), 2);
    }

    #[test]
    fn invalid_config_rejected() {
        let d = quick_dataset();
        let mut cfg = quick_cfg();
        cfg.hidden_dims = vec![0];
        assert!(FullBatchTrainer::new(&d, cfg).is_err());
    }
}
