//! FastGCN-style node/layer-sampling trainer (baseline ref.\[3\]).
//!
//! Each layer's node set is sampled *independently* from the whole
//! training graph with a degree-proportional importance distribution
//! (pre-computed — the "potentially expensive pre-processing" the paper
//! notes), and inter-layer edges are reconstructed from the original
//! graph restricted to consecutive samples. This avoids neighbor
//! explosion but yields sparse inter-layer connectivity — some sampled
//! nodes end up with no sampled in-neighbors, the mechanism behind
//! FastGCN's accuracy loss (Sec. II-A).

use crate::blocks::{BlockLayer, SampledBlock};
use gsgcn_data::dataset::{Dataset, TaskKind, TrainView};
use gsgcn_metrics::f1;
use gsgcn_nn::adam::AdamHyper;
use gsgcn_nn::dense::DenseLayer;
use gsgcn_nn::loss as nn_loss;
use gsgcn_nn::model::LossKind;
use gsgcn_prop::propagator::FeaturePropagator;
use gsgcn_sampler::rng::Xorshift128Plus;
use gsgcn_tensor::{gemm, ops, DMatrix};
use std::collections::HashMap;
use std::time::Instant;

/// FastGCN trainer configuration.
#[derive(Clone, Debug)]
pub struct FastGcnConfig {
    /// Nodes sampled per hidden layer (`s` in ref.\[3\]).
    pub layer_size: usize,
    /// Minibatch size (output-layer vertices per step).
    pub batch_size: usize,
    /// Hidden layer widths.
    pub hidden_dims: Vec<usize>,
    /// Adam hyperparameters.
    pub adam: AdamHyper,
    /// Master seed.
    pub seed: u64,
}

impl Default for FastGcnConfig {
    fn default() -> Self {
        FastGcnConfig {
            layer_size: 400,
            batch_size: 256,
            hidden_dims: vec![128, 128],
            adam: AdamHyper {
                lr: 1e-2,
                ..AdamHyper::default()
            },
            seed: 1,
        }
    }
}

/// FastGCN-style trainer.
pub struct FastGcnTrainer<'a> {
    dataset: &'a Dataset,
    train_view: TrainView,
    layers: Vec<BlockLayer>,
    head: DenseLayer,
    loss: LossKind,
    cfg: FastGcnConfig,
    /// Degree-proportional cumulative weights (preprocessing cost).
    cumulative_deg: Vec<f64>,
    t: u64,
    epoch: u64,
    train_secs: f64,
    /// Fraction of (node, layer) pairs with empty gather lists in the
    /// last batch — the sparse-connectivity indicator.
    last_empty_fraction: f64,
}

impl<'a> FastGcnTrainer<'a> {
    /// Build a trainer (runs the degree-distribution preprocessing).
    pub fn new(dataset: &'a Dataset, cfg: FastGcnConfig) -> Result<Self, String> {
        dataset.validate()?;
        if cfg.layer_size == 0 || cfg.batch_size == 0 {
            return Err("layer_size and batch_size must be ≥ 1".into());
        }
        if cfg.hidden_dims.is_empty() || cfg.hidden_dims.iter().any(|&d| d == 0 || d % 2 != 0) {
            return Err("hidden dims must be non-empty, positive and even".into());
        }
        let train_view = dataset.train_view();
        let g = &train_view.graph;
        // Importance distribution q(v) ∝ deg(v): cumulative sums for
        // inverse-CDF sampling (the FastGCN preprocessing step).
        let mut cumulative_deg = Vec::with_capacity(g.num_vertices());
        let mut acc = 0.0f64;
        for v in 0..g.num_vertices() as u32 {
            acc += (g.degree(v) as f64).max(1e-9);
            cumulative_deg.push(acc);
        }
        let loss = match dataset.task {
            TaskKind::MultiLabel => LossKind::SigmoidBce,
            TaskKind::SingleLabel => LossKind::SoftmaxCe,
        };
        let mut layers = Vec::new();
        let mut in_dim = dataset.feature_dim();
        for (i, &h) in cfg.hidden_dims.iter().enumerate() {
            layers.push(BlockLayer::new(
                in_dim,
                h / 2,
                true,
                cfg.seed ^ ((i as u64 + 1) * 0xFA57),
            ));
            in_dim = h;
        }
        let head = DenseLayer::new(in_dim, dataset.num_classes(), cfg.seed ^ 0xFACE);
        Ok(FastGcnTrainer {
            dataset,
            train_view,
            layers,
            head,
            loss,
            cfg,
            cumulative_deg,
            t: 0,
            epoch: 0,
            train_secs: 0.0,
            last_empty_fraction: 0.0,
        })
    }

    /// Cumulative training seconds.
    pub fn train_secs(&self) -> f64 {
        self.train_secs
    }

    /// Sparse-connectivity indicator of the last batch.
    pub fn last_empty_fraction(&self) -> f64 {
        self.last_empty_fraction
    }

    /// Draw one vertex from the degree-proportional distribution.
    fn sample_weighted(&self, rng: &mut Xorshift128Plus) -> u32 {
        let total = *self.cumulative_deg.last().unwrap();
        let x = rng.next_f64() * total;
        self.cumulative_deg.partition_point(|&c| c <= x) as u32
    }

    /// Build the layer blocks: independent degree-proportional samples
    /// per layer, edges reconstructed from the training graph.
    fn sample_blocks(&self, targets: &[u32], seed: u64) -> (Vec<u32>, Vec<SampledBlock>, f64) {
        let g = &self.train_view.graph;
        let l = self.layers.len();
        let mut rng = Xorshift128Plus::new(seed);
        let mut blocks = Vec::with_capacity(l);
        let mut out_nodes: Vec<u32> = targets.to_vec();
        let mut empty = 0usize;
        let mut total = 0usize;
        for _ in 0..l {
            // Independent layer sample + the out nodes themselves (self
            // connections must exist for the self path).
            let mut pos: HashMap<u32, u32> = HashMap::new();
            let mut in_nodes: Vec<u32> = Vec::new();
            for &v in &out_nodes {
                pos.entry(v).or_insert_with(|| {
                    in_nodes.push(v);
                    (in_nodes.len() - 1) as u32
                });
            }
            for _ in 0..self.cfg.layer_size {
                let v = self.sample_weighted(&mut rng);
                pos.entry(v).or_insert_with(|| {
                    in_nodes.push(v);
                    (in_nodes.len() - 1) as u32
                });
            }
            // Reconstruct inter-layer edges: sampled in-neighbors only.
            let mut offsets = vec![0usize];
            let mut gather = Vec::new();
            let mut self_idx = Vec::with_capacity(out_nodes.len());
            for &v in &out_nodes {
                self_idx.push(pos[&v]);
                let before = gather.len();
                for &u in g.neighbors(v) {
                    if u != v {
                        if let Some(&p) = pos.get(&u) {
                            gather.push(p);
                        }
                    }
                }
                total += 1;
                if gather.len() == before {
                    empty += 1;
                }
                offsets.push(gather.len());
            }
            blocks.push(SampledBlock {
                offsets,
                targets: gather,
                self_idx,
                n_in: in_nodes.len(),
            });
            out_nodes = in_nodes;
        }
        blocks.reverse();
        let empty_frac = if total == 0 {
            0.0
        } else {
            empty as f64 / total as f64
        };
        (out_nodes, blocks, empty_frac)
    }

    /// Train on one batch of target vertices; returns the loss.
    pub fn train_batch(&mut self, targets: &[u32]) -> f32 {
        let start = Instant::now();
        let seed = self.cfg.seed ^ self.t.wrapping_mul(0x2545F4914F6CDD1D);
        let (input_nodes, blocks, empty_frac) = self.sample_blocks(targets, seed);
        self.last_empty_fraction = empty_frac;

        let mut h = self.train_view.features.gather_rows(&input_nodes);
        for (layer, block) in self.layers.iter_mut().zip(&blocks) {
            h = layer.forward(block, &h);
        }
        let logits = self.head.forward(&h);
        let y = self.train_view.labels.gather_rows(targets);
        let (loss_val, d_logits) = match self.loss {
            LossKind::SigmoidBce => nn_loss::sigmoid_bce(&logits, &y),
            LossKind::SoftmaxCe => nn_loss::softmax_ce(&logits, &y),
        };

        self.t += 1;
        let (mut d_h, head_grads) = self.head.backward(&d_logits);
        self.head.apply_grads(&head_grads, &self.cfg.adam, self.t);
        for (layer, block) in self.layers.iter_mut().zip(&blocks).rev() {
            let (d_prev, grads) = layer.backward(block, &d_h);
            layer.apply_grads(&grads, &self.cfg.adam, self.t);
            d_h = d_prev;
        }
        self.train_secs += start.elapsed().as_secs_f64();
        loss_val
    }

    /// One epoch over shuffled minibatches; returns the mean loss.
    pub fn train_epoch(&mut self) -> f32 {
        let n = self.train_view.graph.num_vertices();
        let mut ids: Vec<u32> = (0..n as u32).collect();
        let mut rng = Xorshift128Plus::new(self.cfg.seed ^ (0xFA57 ^ self.epoch));
        for i in (1..ids.len()).rev() {
            ids.swap(i, rng.next_range(i + 1));
        }
        self.epoch += 1;
        let mut total = 0.0f64;
        let mut batches = 0usize;
        for chunk in ids.chunks(self.cfg.batch_size) {
            total += self.train_batch(chunk) as f64;
            batches += 1;
        }
        (total / batches.max(1) as f64) as f32
    }

    /// Full-neighborhood inference probabilities.
    pub fn infer_probs(&self, g: &gsgcn_graph::CsrGraph, x: &DMatrix) -> DMatrix {
        let prop = FeaturePropagator::default();
        let mut h = x.clone();
        for layer in &self.layers {
            let agg = prop.forward(g, &h);
            let h_neigh = gemm::matmul(&agg, &layer.w_neigh.value);
            let h_self = gemm::matmul(&h, &layer.w_self.value);
            let mut out = ops::concat_cols(&h_neigh, &h_self);
            if layer.activation {
                ops::relu_inplace(&mut out);
            }
            h = out;
        }
        let mut logits = self.head.infer(&h);
        match self.loss {
            LossKind::SigmoidBce => ops::sigmoid_inplace(&mut logits),
            LossKind::SoftmaxCe => ops::softmax_rows_inplace(&mut logits),
        }
        logits
    }

    /// F1-micro on the validation split.
    pub fn evaluate_val(&self) -> f64 {
        let probs = self.infer_probs(&self.dataset.graph, &self.dataset.features);
        let idx = &self.dataset.split.val;
        let single = self.dataset.task == TaskKind::SingleLabel;
        f1::f1_micro_from_probs(
            &probs.gather_rows(idx),
            &self.dataset.labels.gather_rows(idx),
            single,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsgcn_data::presets;

    fn quick_dataset() -> Dataset {
        presets::scale_spec(&presets::ppi_spec(), 500).generate(19)
    }

    fn quick_cfg() -> FastGcnConfig {
        FastGcnConfig {
            layer_size: 150,
            batch_size: 64,
            hidden_dims: vec![32, 32],
            adam: AdamHyper {
                lr: 2e-2,
                ..AdamHyper::default()
            },
            seed: 7,
        }
    }

    #[test]
    fn builds_with_preprocessing() {
        let d = quick_dataset();
        let t = FastGcnTrainer::new(&d, quick_cfg()).unwrap();
        // Cumulative weights strictly increasing.
        assert!(t.cumulative_deg.windows(2).all(|w| w[1] > w[0]));
    }

    #[test]
    fn weighted_sampling_prefers_high_degree() {
        let d = quick_dataset();
        let t = FastGcnTrainer::new(&d, quick_cfg()).unwrap();
        let g = &t.train_view.graph;
        let mut rng = Xorshift128Plus::new(1);
        let mut deg_sum = 0usize;
        let trials = 2000;
        for _ in 0..trials {
            deg_sum += g.degree(t.sample_weighted(&mut rng));
        }
        let sampled_mean = deg_sum as f64 / trials as f64;
        // Degree-biased sampling: the size-biased mean is E[d²]/E[d],
        // strictly above E[d] for any non-constant degree distribution.
        // Compare against that exact expectation (±10%).
        let (mut d1, mut d2) = (0.0f64, 0.0f64);
        for v in 0..g.num_vertices() as u32 {
            let d = g.degree(v) as f64;
            d1 += d;
            d2 += d * d;
        }
        let expect = d2 / d1;
        assert!(
            (sampled_mean - expect).abs() < expect * 0.1,
            "sampled mean {sampled_mean:.2} vs size-biased expectation {expect:.2}"
        );
        assert!(sampled_mean > g.avg_degree(), "must exceed the plain mean");
    }

    #[test]
    fn no_neighbor_explosion() {
        let d = quick_dataset();
        let t = FastGcnTrainer::new(&d, quick_cfg()).unwrap();
        let targets: Vec<u32> = (0..50).collect();
        let (input_nodes, blocks, _) = t.sample_blocks(&targets, 2);
        for b in &blocks {
            assert!(b.validate().is_ok());
        }
        // Input layer bounded by layer_size + carried nodes (no d^L).
        assert!(
            input_nodes.len() <= 150 + 50 + 150,
            "layer size should stay bounded: {}",
            input_nodes.len()
        );
    }

    #[test]
    fn sparse_connectivity_observed() {
        // With a small layer sample on a 500-vertex graph, some nodes have
        // no sampled in-neighbors — the FastGCN accuracy-loss mechanism.
        let d = quick_dataset();
        let mut cfg = quick_cfg();
        cfg.layer_size = 20;
        let mut t = FastGcnTrainer::new(&d, cfg).unwrap();
        t.train_batch(&(0..50u32).collect::<Vec<_>>());
        assert!(
            t.last_empty_fraction() > 0.0,
            "tiny layer samples should leave empty gather lists"
        );
    }

    #[test]
    fn training_learns() {
        let d = quick_dataset();
        let mut t = FastGcnTrainer::new(&d, quick_cfg()).unwrap();
        let first = t.train_epoch();
        let mut last = first;
        for _ in 0..15 {
            last = t.train_epoch();
        }
        assert!(last < first, "loss {first} → {last}");
        assert!(t.evaluate_val() > 0.15, "val F1 {}", t.evaluate_val());
    }

    #[test]
    fn invalid_configs_rejected() {
        let d = quick_dataset();
        let mut c = quick_cfg();
        c.layer_size = 0;
        assert!(FastGcnTrainer::new(&d, c).is_err());
        let mut c = quick_cfg();
        c.hidden_dims = vec![31];
        assert!(FastGcnTrainer::new(&d, c).is_err());
    }
}
