//! Baseline GCN trainers — the systems the paper compares against
//! (Sec. II, Fig. 2, Table II), implemented on the same substrate so the
//! comparison isolates *algorithmic* differences:
//!
//! * [`sage`] — GraphSAGE-style **edge/layer sampling** (ref.\[2\]): each
//!   minibatch node samples `d_LS` neighbors per layer, so the sampled
//!   node set grows by a factor `d_LS` per layer ("neighbor explosion") —
//!   the inefficiency the graph-sampling design removes.
//! * [`fullbatch`] — batched GCN (ref.\[1\]): full-graph gradient steps; work-
//!   efficient per epoch but converges slowly at large batch sizes
//!   (Sec. III-B, Case 2).
//! * [`fastgcn`] — FastGCN-style **node/layer sampling** (ref.\[3\]): per-layer
//!   independent degree-proportional node samples with reconstructed
//!   inter-layer edges; mitigates explosion at the cost of sparse
//!   connections (accuracy loss) and preprocessing.
//! * [`blocks`] — the shared sampled-bipartite-layer machinery
//!   (gather/scatter aggregation with exact backward) used by both layer
//!   samplers.
//!
//! All trainers share the tensor/NN kernels with `gsgcn-core`, train with
//! Adam on the same losses, and evaluate by full-neighborhood inference.

pub mod blocks;
pub mod fastgcn;
pub mod fullbatch;
pub mod sage;
