//! Sampled bipartite layers ("blocks") for layer-sampling GCNs.
//!
//! A block connects an *input* node list (layer ℓ−1) to an *output* node
//! list (layer ℓ): each output node owns a gather list of input positions
//! (its sampled neighbors) plus its own position (the self path). This is
//! the `E_LS^{(ℓ)}` structure in the paper's Fig. 1 (upper half).
//!
//! The forward aggregation is a mean over the gather list; the backward
//! pass scatters gradients through a lazily built reverse CSR so it is
//! exact (verified against finite differences in the layer tests).

use gsgcn_nn::adam::{AdamHyper, AdamParam};
use gsgcn_tensor::{gemm, init, ops, DMatrix};
use rayon::prelude::*;

/// One sampled bipartite layer.
#[derive(Clone, Debug)]
pub struct SampledBlock {
    /// Gather offsets: `offsets[i]..offsets[i+1]` delimits output node
    /// `i`'s sampled input positions. May contain duplicates (sampling
    /// with replacement).
    pub offsets: Vec<usize>,
    /// Concatenated input positions.
    pub targets: Vec<u32>,
    /// Output node `i`'s own position in the input layer.
    pub self_idx: Vec<u32>,
    /// Input layer size.
    pub n_in: usize,
}

impl SampledBlock {
    /// Number of output nodes.
    pub fn n_out(&self) -> usize {
        self.self_idx.len()
    }

    /// Gather list of output node `i`.
    pub fn gather_list(&self, i: usize) -> &[u32] {
        &self.targets[self.offsets[i]..self.offsets[i + 1]]
    }

    /// Sanity checks (positions in range, offsets well formed).
    pub fn validate(&self) -> Result<(), String> {
        if self.offsets.len() != self.n_out() + 1 {
            return Err("offsets length must be n_out+1".into());
        }
        if *self.offsets.last().unwrap() != self.targets.len() {
            return Err("offsets must end at targets length".into());
        }
        if self.targets.iter().any(|&t| (t as usize) >= self.n_in) {
            return Err("gather target out of range".into());
        }
        if self.self_idx.iter().any(|&t| (t as usize) >= self.n_in) {
            return Err("self index out of range".into());
        }
        Ok(())
    }

    /// Mean-aggregate input features through the gather lists.
    pub fn forward_agg(&self, h_in: &DMatrix) -> DMatrix {
        assert_eq!(h_in.rows(), self.n_in, "input feature rows mismatch");
        let f = h_in.cols();
        let mut out = DMatrix::zeros(self.n_out(), f);
        out.data_mut()
            .par_chunks_mut(f.max(1))
            .enumerate()
            .for_each(|(i, row)| {
                let list = self.gather_list(i);
                if list.is_empty() {
                    return;
                }
                for &t in list {
                    for (o, &s) in row.iter_mut().zip(h_in.row(t as usize)) {
                        *o += s;
                    }
                }
                let inv = 1.0 / list.len() as f32;
                for o in row.iter_mut() {
                    *o *= inv;
                }
            });
        out
    }

    /// Gather the self rows.
    pub fn forward_self(&self, h_in: &DMatrix) -> DMatrix {
        h_in.gather_rows(&self.self_idx)
    }

    /// Backward of [`SampledBlock::forward_agg`]: scatter `d_agg` to input positions
    /// with the mean weights.
    pub fn backward_agg(&self, d_agg: &DMatrix) -> DMatrix {
        assert_eq!(d_agg.rows(), self.n_out());
        let f = d_agg.cols();
        let mut d_in = DMatrix::zeros(self.n_in, f);
        // Reverse CSR: input position → (output node, weight) list.
        let (rev_offsets, rev_out) = self.reverse_csr();
        d_in.data_mut()
            .par_chunks_mut(f.max(1))
            .enumerate()
            .for_each(|(j, row)| {
                for &oi in &rev_out[rev_offsets[j]..rev_offsets[j + 1]] {
                    let deg = self.offsets[oi as usize + 1] - self.offsets[oi as usize];
                    let w = 1.0 / deg as f32;
                    for (o, &g) in row.iter_mut().zip(d_agg.row(oi as usize)) {
                        *o += w * g;
                    }
                }
            });
        d_in
    }

    /// Backward of [`SampledBlock::forward_self`]: scatter `d_self` rows to self
    /// positions (accumulating — several outputs may share an input).
    pub fn backward_self_into(&self, d_self: &DMatrix, d_in: &mut DMatrix) {
        assert_eq!(d_self.rows(), self.n_out());
        assert_eq!(d_in.rows(), self.n_in);
        // Sequential: self positions can repeat across outputs.
        for (i, &j) in self.self_idx.iter().enumerate() {
            for (o, &g) in d_in.row_mut(j as usize).iter_mut().zip(d_self.row(i)) {
                *o += g;
            }
        }
    }

    /// Build the reverse CSR (counting sort over targets).
    fn reverse_csr(&self) -> (Vec<usize>, Vec<u32>) {
        let mut counts = vec![0usize; self.n_in + 1];
        for &t in &self.targets {
            counts[t as usize + 1] += 1;
        }
        for j in 0..self.n_in {
            counts[j + 1] += counts[j];
        }
        let offsets = counts.clone();
        let mut cursor = counts;
        let mut rev_out = vec![0u32; self.targets.len()];
        for i in 0..self.n_out() {
            for &t in self.gather_list(i) {
                rev_out[cursor[t as usize]] = i as u32;
                cursor[t as usize] += 1;
            }
        }
        (offsets, rev_out)
    }
}

/// Cached forward state of a block layer.
#[derive(Clone, Debug)]
struct BlockCache {
    agg: DMatrix,
    self_feats: DMatrix,
    output: DMatrix,
}

/// A GCN layer operating on a [`SampledBlock`] (same weight semantics as
/// `gsgcn_nn::gcn_layer::GcnLayer`: `W_neigh`/`W_self`, concat, ReLU).
#[derive(Clone, Debug)]
pub struct BlockLayer {
    pub w_neigh: AdamParam,
    pub w_self: AdamParam,
    pub activation: bool,
    cache: Option<BlockCache>,
}

/// Gradients of a block layer.
#[derive(Clone, Debug)]
pub struct BlockLayerGrads {
    pub d_w_neigh: DMatrix,
    pub d_w_self: DMatrix,
}

impl BlockLayer {
    /// Layer mapping `in_dim → 2·half_dim`.
    pub fn new(in_dim: usize, half_dim: usize, activation: bool, seed: u64) -> Self {
        BlockLayer {
            w_neigh: AdamParam::new(init::xavier_uniform(in_dim, half_dim, seed)),
            w_self: AdamParam::new(init::xavier_uniform(in_dim, half_dim, seed ^ 0x5EED)),
            activation,
            cache: None,
        }
    }

    pub fn out_dim(&self) -> usize {
        self.w_neigh.value.cols() * 2
    }

    /// Forward through the block.
    pub fn forward(&mut self, block: &SampledBlock, h_in: &DMatrix) -> DMatrix {
        let agg = block.forward_agg(h_in);
        let self_feats = block.forward_self(h_in);
        let h_neigh = gemm::matmul(&agg, &self.w_neigh.value);
        let h_self = gemm::matmul(&self_feats, &self.w_self.value);
        let mut out = ops::concat_cols(&h_neigh, &h_self);
        if self.activation {
            ops::relu_inplace(&mut out);
        }
        self.cache = Some(BlockCache {
            agg,
            self_feats,
            output: out.clone(),
        });
        out
    }

    /// Backward through the block; returns `dH_in` and weight gradients.
    pub fn backward(
        &mut self,
        block: &SampledBlock,
        d_out: &DMatrix,
    ) -> (DMatrix, BlockLayerGrads) {
        let cache = self.cache.as_ref().expect("backward before forward");
        let mut d_pre = d_out.clone();
        if self.activation {
            ops::relu_backward_inplace(&mut d_pre, &cache.output);
        }
        let half = self.w_neigh.value.cols();
        let (d_neigh, d_self) = ops::split_cols(&d_pre, half);

        let d_w_neigh = gemm::matmul_tn(&cache.agg, &d_neigh);
        let d_w_self = gemm::matmul_tn(&cache.self_feats, &d_self);

        let d_agg = gemm::matmul_nt(&d_neigh, &self.w_neigh.value);
        let d_selff = gemm::matmul_nt(&d_self, &self.w_self.value);

        let mut d_in = block.backward_agg(&d_agg);
        block.backward_self_into(&d_selff, &mut d_in);
        (
            d_in,
            BlockLayerGrads {
                d_w_neigh,
                d_w_self,
            },
        )
    }

    /// Apply Adam updates.
    pub fn apply_grads(&mut self, grads: &BlockLayerGrads, hyper: &AdamHyper, t: u64) {
        self.w_neigh.step(&grads.d_w_neigh, hyper, t);
        self.w_self.step(&grads.d_w_self, hyper, t);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Input layer {0,1,2}; two output nodes: out0 gathers {0,1} self 0;
    /// out1 gathers {2,2} (duplicate) self 1.
    fn block() -> SampledBlock {
        SampledBlock {
            offsets: vec![0, 2, 4],
            targets: vec![0, 1, 2, 2],
            self_idx: vec![0, 1],
            n_in: 3,
        }
    }

    #[test]
    fn validate_accepts_and_rejects() {
        assert!(block().validate().is_ok());
        let mut b = block();
        b.targets[0] = 9;
        assert!(b.validate().is_err());
        let mut b = block();
        b.offsets = vec![0, 2];
        assert!(b.validate().is_err());
    }

    #[test]
    fn forward_agg_means() {
        let b = block();
        let h = DMatrix::from_fn(3, 2, |i, _| i as f32 * 10.0);
        let a = b.forward_agg(&h);
        assert_eq!(a.row(0), &[5.0, 5.0]); // mean(0, 10)
        assert_eq!(a.row(1), &[20.0, 20.0]); // mean(20, 20)
    }

    #[test]
    fn forward_self_gathers() {
        let b = block();
        let h = DMatrix::from_fn(3, 1, |i, _| i as f32);
        let s = b.forward_self(&h);
        assert_eq!(s.data(), &[0.0, 1.0]);
    }

    #[test]
    fn backward_agg_is_adjoint() {
        // ⟨A·h, g⟩ = ⟨h, Aᵀ·g⟩ over random-ish matrices.
        let b = block();
        let h = DMatrix::from_fn(3, 4, |i, j| ((i * 4 + j) % 5) as f32 - 2.0);
        let g = DMatrix::from_fn(2, 4, |i, j| ((i + 2 * j) % 3) as f32 * 0.5);
        let fwd = b.forward_agg(&h);
        let bwd = b.backward_agg(&g);
        let lhs: f32 = fwd.data().iter().zip(g.data()).map(|(a, b)| a * b).sum();
        let rhs: f32 = h.data().iter().zip(bwd.data()).map(|(a, b)| a * b).sum();
        assert!((lhs - rhs).abs() < 1e-5, "{lhs} vs {rhs}");
    }

    #[test]
    fn backward_self_accumulates() {
        let b = SampledBlock {
            offsets: vec![0, 0, 0],
            targets: vec![],
            self_idx: vec![1, 1], // both outputs share input 1
            n_in: 3,
        };
        let d_self = DMatrix::from_fn(2, 2, |_, _| 1.0);
        let mut d_in = DMatrix::zeros(3, 2);
        b.backward_self_into(&d_self, &mut d_in);
        assert_eq!(d_in.row(1), &[2.0, 2.0]);
        assert_eq!(d_in.row(0), &[0.0, 0.0]);
    }

    #[test]
    fn empty_gather_list_is_zero() {
        let b = SampledBlock {
            offsets: vec![0, 0],
            targets: vec![],
            self_idx: vec![0],
            n_in: 1,
        };
        let h = DMatrix::filled(1, 3, 7.0);
        let a = b.forward_agg(&h);
        assert_eq!(a.row(0), &[0.0, 0.0, 0.0]);
    }

    #[test]
    fn layer_gradient_check() {
        let b = block();
        let mut layer = BlockLayer::new(3, 2, true, 9);
        let h = DMatrix::from_fn(3, 3, |i, j| ((i * 3 + j) % 7) as f32 * 0.2 - 0.5);

        let loss_of = |layer: &mut BlockLayer, h: &DMatrix| -> f32 {
            let o = layer.forward(&b, h);
            0.5 * o.data().iter().map(|x| x * x).sum::<f32>()
        };
        let out = layer.forward(&b, &h);
        let (dh, grads) = layer.backward(&b, &out);

        let eps = 1e-2f32;
        for (r, c) in [(0usize, 0usize), (1, 1), (2, 1)] {
            let orig = layer.w_neigh.value.get(r, c);
            layer.w_neigh.value.set(r, c, orig + eps);
            let lp = loss_of(&mut layer, &h);
            layer.w_neigh.value.set(r, c, orig - eps);
            let lm = loss_of(&mut layer, &h);
            layer.w_neigh.value.set(r, c, orig);
            let num = (lp - lm) / (2.0 * eps);
            let ana = grads.d_w_neigh.get(r, c);
            assert!(
                (num - ana).abs() < 0.05 * (1.0 + ana.abs()),
                "dWn[{r},{c}]: {num} vs {ana}"
            );
        }
        // Input gradient.
        for (r, c) in [(0usize, 0usize), (2, 2)] {
            let orig = h.get(r, c);
            let mut hp = h.clone();
            hp.set(r, c, orig + eps);
            let mut layer2 = layer.clone();
            let lp = loss_of(&mut layer2, &hp);
            let mut hm = h.clone();
            hm.set(r, c, orig - eps);
            let lm = loss_of(&mut layer2, &hm);
            let num = (lp - lm) / (2.0 * eps);
            let ana = dh.get(r, c);
            assert!(
                (num - ana).abs() < 0.05 * (1.0 + ana.abs()),
                "dH[{r},{c}]: {num} vs {ana}"
            );
        }
    }
}
