//! GraphSAGE-style layer-sampling GCN trainer (baseline ref.\[2\]).
//!
//! Every minibatch vertex samples `fanout` (`d_LS`) neighbors per layer,
//! recursively, so the layer-0 node set is ≈ `B·d_LS^L` — the "neighbor
//! explosion" of Sec. II-A. The per-batch sampled node counts are exposed
//! ([`SageTrainer::last_layer_sizes`]) so the Table II bench can report
//! the work ratio directly.
//!
//! Inference uses the full neighborhood (no sampling), the standard
//! GraphSAGE evaluation protocol — mathematically identical to the
//! graph-sampling model's inference, so accuracy comparisons are fair.

use crate::blocks::{BlockLayer, SampledBlock};
use gsgcn_data::dataset::{Dataset, TaskKind, TrainView};
use gsgcn_graph::CsrGraph;
use gsgcn_metrics::f1;
use gsgcn_nn::adam::AdamHyper;
use gsgcn_nn::dense::DenseLayer;
use gsgcn_nn::loss as nn_loss;
use gsgcn_nn::model::LossKind;
use gsgcn_prop::propagator::FeaturePropagator;
use gsgcn_sampler::rng::Xorshift128Plus;
use gsgcn_tensor::{gemm, ops, DMatrix};
use std::collections::HashMap;
use std::time::Instant;

/// GraphSAGE trainer configuration.
#[derive(Clone, Debug)]
pub struct SageConfig {
    /// Neighbors sampled per node per layer (`d_LS`; ref.\[2\] uses 25/10).
    pub fanout: usize,
    /// Minibatch size (target vertices per step).
    pub batch_size: usize,
    /// Hidden layer widths (even, concat halves) — length = `L`.
    pub hidden_dims: Vec<usize>,
    /// Adam hyperparameters.
    pub adam: AdamHyper,
    /// Master seed.
    pub seed: u64,
}

impl Default for SageConfig {
    fn default() -> Self {
        SageConfig {
            fanout: 10,
            batch_size: 256,
            hidden_dims: vec![128, 128],
            adam: AdamHyper {
                lr: 1e-2,
                ..AdamHyper::default()
            },
            seed: 1,
        }
    }
}

/// GraphSAGE-style trainer over a dataset's training view.
pub struct SageTrainer<'a> {
    dataset: &'a Dataset,
    train_view: TrainView,
    layers: Vec<BlockLayer>,
    head: DenseLayer,
    loss: LossKind,
    cfg: SageConfig,
    t: u64,
    epoch: u64,
    train_secs: f64,
    last_layer_sizes: Vec<usize>,
}

impl<'a> SageTrainer<'a> {
    /// Build a trainer; validates configuration and dataset.
    pub fn new(dataset: &'a Dataset, cfg: SageConfig) -> Result<Self, String> {
        dataset.validate()?;
        if cfg.fanout == 0 {
            return Err("fanout must be ≥ 1".into());
        }
        if cfg.batch_size == 0 {
            return Err("batch_size must be ≥ 1".into());
        }
        if cfg.hidden_dims.is_empty() || cfg.hidden_dims.iter().any(|&d| d == 0 || d % 2 != 0) {
            return Err("hidden dims must be non-empty, positive and even".into());
        }
        let train_view = dataset.train_view();
        let loss = match dataset.task {
            TaskKind::MultiLabel => LossKind::SigmoidBce,
            TaskKind::SingleLabel => LossKind::SoftmaxCe,
        };
        let mut layers = Vec::new();
        let mut in_dim = dataset.feature_dim();
        for (i, &h) in cfg.hidden_dims.iter().enumerate() {
            layers.push(BlockLayer::new(
                in_dim,
                h / 2,
                true,
                cfg.seed ^ ((i as u64 + 1) * 0x9E37),
            ));
            in_dim = h;
        }
        let head = DenseLayer::new(in_dim, dataset.num_classes(), cfg.seed ^ 0xD_EAD);
        Ok(SageTrainer {
            dataset,
            train_view,
            layers,
            head,
            loss,
            cfg,
            t: 0,
            epoch: 0,
            train_secs: 0.0,
            last_layer_sizes: Vec::new(),
        })
    }

    /// Cumulative training seconds.
    pub fn train_secs(&self) -> f64 {
        self.train_secs
    }

    /// Node counts per layer (input → output) of the most recent batch —
    /// the neighbor-explosion measurement.
    pub fn last_layer_sizes(&self) -> &[usize] {
        &self.last_layer_sizes
    }

    /// Sample the layer blocks for a batch of target vertices (top-down
    /// recursive neighbor sampling, returned bottom-up for the forward).
    fn sample_blocks(&self, targets: &[u32], seed: u64) -> (Vec<u32>, Vec<SampledBlock>) {
        let g = &self.train_view.graph;
        let l = self.layers.len();
        let mut rng = Xorshift128Plus::new(seed);
        let mut blocks: Vec<SampledBlock> = Vec::with_capacity(l);
        let mut out_nodes: Vec<u32> = targets.to_vec();
        for _ in 0..l {
            // Registry of input-layer nodes (position assignment).
            let mut pos: HashMap<u32, u32> = HashMap::new();
            let mut in_nodes: Vec<u32> = Vec::new();
            let mut pos_of = |v: u32, in_nodes: &mut Vec<u32>| -> u32 {
                *pos.entry(v).or_insert_with(|| {
                    in_nodes.push(v);
                    (in_nodes.len() - 1) as u32
                })
            };
            let mut self_idx = Vec::with_capacity(out_nodes.len());
            let mut offsets = Vec::with_capacity(out_nodes.len() + 1);
            let mut gather: Vec<u32> = Vec::new();
            offsets.push(0usize);
            for &v in &out_nodes {
                self_idx.push(pos_of(v, &mut in_nodes));
                let deg = g.degree(v);
                if deg > 0 {
                    for _ in 0..self.cfg.fanout {
                        let u = g.neighbor(v, rng.next_range(deg));
                        gather.push(pos_of(u, &mut in_nodes));
                    }
                }
                offsets.push(gather.len());
            }
            blocks.push(SampledBlock {
                offsets,
                targets: gather,
                self_idx,
                n_in: in_nodes.len(),
            });
            out_nodes = in_nodes;
        }
        blocks.reverse(); // bottom-up for the forward pass
        (out_nodes, blocks)
    }

    /// Train on one batch of target vertices; returns the loss.
    pub fn train_batch(&mut self, targets: &[u32]) -> f32 {
        let start = Instant::now();
        let seed = self.cfg.seed ^ (self.t.wrapping_mul(0x9E3779B97F4A7C15));
        let (input_nodes, blocks) = self.sample_blocks(targets, seed);

        self.last_layer_sizes = {
            let mut sizes = vec![input_nodes.len()];
            for b in &blocks {
                sizes.push(b.n_out());
            }
            sizes
        };

        // Forward.
        let mut h = self.train_view.features.gather_rows(&input_nodes);
        for (layer, block) in self.layers.iter_mut().zip(&blocks) {
            h = layer.forward(block, &h);
        }
        let logits = self.head.forward(&h);
        let y = self.train_view.labels.gather_rows(targets);
        let (loss_val, d_logits) = match self.loss {
            LossKind::SigmoidBce => nn_loss::sigmoid_bce(&logits, &y),
            LossKind::SoftmaxCe => nn_loss::softmax_ce(&logits, &y),
        };

        // Backward + Adam.
        self.t += 1;
        let (mut d_h, head_grads) = self.head.backward(&d_logits);
        self.head.apply_grads(&head_grads, &self.cfg.adam, self.t);
        for (layer, block) in self.layers.iter_mut().zip(&blocks).rev() {
            let (d_prev, grads) = layer.backward(block, &d_h);
            layer.apply_grads(&grads, &self.cfg.adam, self.t);
            d_h = d_prev;
        }
        self.train_secs += start.elapsed().as_secs_f64();
        loss_val
    }

    /// One epoch: shuffled minibatches covering every training vertex.
    /// Returns the mean batch loss.
    pub fn train_epoch(&mut self) -> f32 {
        let n = self.train_view.graph.num_vertices();
        let mut ids: Vec<u32> = (0..n as u32).collect();
        // Deterministic per-epoch shuffle.
        let mut rng = Xorshift128Plus::new(self.cfg.seed ^ (0xE90C ^ self.epoch));
        for i in (1..ids.len()).rev() {
            ids.swap(i, rng.next_range(i + 1));
        }
        self.epoch += 1;
        let mut total = 0.0f64;
        let mut batches = 0usize;
        for chunk in ids.chunks(self.cfg.batch_size) {
            total += self.train_batch(chunk) as f64;
            batches += 1;
        }
        (total / batches.max(1) as f64) as f32
    }

    /// Full-neighborhood inference probabilities on an arbitrary graph.
    pub fn infer_probs(&self, g: &CsrGraph, x: &DMatrix) -> DMatrix {
        let prop = FeaturePropagator::default();
        let mut h = x.clone();
        for layer in &self.layers {
            let agg = prop.forward(g, &h);
            let h_neigh = gemm::matmul(&agg, &layer.w_neigh.value);
            let h_self = gemm::matmul(&h, &layer.w_self.value);
            let mut out = ops::concat_cols(&h_neigh, &h_self);
            if layer.activation {
                ops::relu_inplace(&mut out);
            }
            h = out;
        }
        let mut logits = self.head.infer(&h);
        match self.loss {
            LossKind::SigmoidBce => ops::sigmoid_inplace(&mut logits),
            LossKind::SoftmaxCe => ops::softmax_rows_inplace(&mut logits),
        }
        logits
    }

    /// F1-micro on the validation split (full-graph inference).
    pub fn evaluate_val(&self) -> f64 {
        let probs = self.infer_probs(&self.dataset.graph, &self.dataset.features);
        let idx = &self.dataset.split.val;
        let single = self.dataset.task == TaskKind::SingleLabel;
        f1::f1_micro_from_probs(
            &probs.gather_rows(idx),
            &self.dataset.labels.gather_rows(idx),
            single,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsgcn_data::presets;

    fn quick_dataset() -> Dataset {
        presets::scale_spec(&presets::ppi_spec(), 500).generate(13)
    }

    fn quick_cfg() -> SageConfig {
        SageConfig {
            fanout: 5,
            batch_size: 64,
            hidden_dims: vec![32, 32],
            adam: AdamHyper {
                lr: 2e-2,
                ..AdamHyper::default()
            },
            seed: 3,
        }
    }

    #[test]
    fn builds_and_validates() {
        let d = quick_dataset();
        assert!(SageTrainer::new(&d, quick_cfg()).is_ok());
        let mut bad = quick_cfg();
        bad.fanout = 0;
        assert!(SageTrainer::new(&d, bad).is_err());
        let mut bad = quick_cfg();
        bad.hidden_dims = vec![33];
        assert!(SageTrainer::new(&d, bad).is_err());
    }

    #[test]
    fn blocks_are_valid_and_explode() {
        let d = quick_dataset();
        let t = SageTrainer::new(&d, quick_cfg()).unwrap();
        let targets: Vec<u32> = (0..20).collect();
        let (input_nodes, blocks) = t.sample_blocks(&targets, 1);
        assert_eq!(blocks.len(), 2);
        for b in &blocks {
            assert!(b.validate().is_ok());
        }
        // Top block outputs exactly the batch.
        assert_eq!(blocks.last().unwrap().n_out(), 20);
        // Neighbor explosion: the input layer is much larger than the batch.
        assert!(
            input_nodes.len() > 40,
            "expected explosion, got {} input nodes",
            input_nodes.len()
        );
    }

    #[test]
    fn explosion_grows_with_depth() {
        let d = quick_dataset();
        let mut cfg3 = quick_cfg();
        cfg3.hidden_dims = vec![32, 32, 32];
        let t2 = SageTrainer::new(&d, quick_cfg()).unwrap();
        let t3 = SageTrainer::new(&d, cfg3).unwrap();
        let targets: Vec<u32> = (0..10).collect();
        let (in2, _) = t2.sample_blocks(&targets, 5);
        let (in3, _) = t3.sample_blocks(&targets, 5);
        assert!(
            in3.len() > in2.len(),
            "3-layer input {} should exceed 2-layer {}",
            in3.len(),
            in2.len()
        );
    }

    #[test]
    fn training_reduces_loss_and_learns() {
        let d = quick_dataset();
        let mut t = SageTrainer::new(&d, quick_cfg()).unwrap();
        let first = t.train_epoch();
        let mut last = first;
        for _ in 0..15 {
            last = t.train_epoch();
        }
        assert!(last < first, "loss {first} → {last}");
        assert!(t.evaluate_val() > 0.2, "val F1 {}", t.evaluate_val());
        assert!(t.train_secs() > 0.0);
    }

    #[test]
    fn layer_sizes_reported() {
        let d = quick_dataset();
        let mut t = SageTrainer::new(&d, quick_cfg()).unwrap();
        t.train_batch(&(0..30u32).collect::<Vec<_>>());
        let sizes = t.last_layer_sizes();
        assert_eq!(sizes.len(), 3); // input + 2 layers
        assert_eq!(*sizes.last().unwrap(), 30);
        assert!(sizes[0] >= sizes[1] && sizes[1] >= sizes[2]);
    }

    #[test]
    fn deterministic_per_seed() {
        let d = quick_dataset();
        let run = || {
            let mut t = SageTrainer::new(&d, quick_cfg()).unwrap();
            t.train_epoch()
        };
        assert_eq!(run(), run());
    }
}
