//! Inter-subgraph parallelism (Alg. 5, lines 3–5): the shared
//! ticketing/seeding core plus the synchronous subgraph pool.
//!
//! Sampling instances are mutually independent because the training-graph
//! topology is fixed across iterations, so the scheduler launches
//! `p_inter` samplers in parallel and fills a pool of subgraphs that the
//! training loop later pops one per iteration.
//!
//! Determinism: instance `i` of batch `b` uses seed
//! `base_seed ⊕ hash(b, i)`, so the pool's *contents* depend only on the
//! configuration — never on thread interleaving. The [`Ticket`] type is
//! the single source of that `(batch, instance) ↔ seed` mapping; both this
//! synchronous pool and the pipelined producer–consumer path
//! ([`crate::pipeline`]) derive their seeds from it, which is what makes
//! the two paths bit-identical for a fixed base seed.

use crate::rng::splitmix64;
use crate::GraphSampler;
use gsgcn_graph::{InducedSubgraph, Topology};
use rayon::prelude::*;
use std::collections::VecDeque;

/// Derive the seed for sampler instance `instance` of refill batch `batch`.
pub fn instance_seed(base_seed: u64, batch: u64, instance: u64) -> u64 {
    let mut s = base_seed ^ batch.wrapping_mul(0x9E3779B97F4A7C15) ^ instance.rotate_left(17);
    splitmix64(&mut s)
}

/// A unit of sampling work: instance `instance` of refill batch `batch`.
///
/// Tickets order the training stream: subgraphs are consumed in ascending
/// [`Ticket::sequence`] order — batch-major, instance-minor — no matter
/// which path (synchronous pool or pipelined workers) produced them, and
/// [`Ticket::seed`] is the one place the per-instance RNG seed is derived.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Ticket {
    /// Refill batch (`b` in the seed scheme).
    pub batch: u64,
    /// Instance within the batch (`i < p_inter`).
    pub instance: u64,
}

impl Ticket {
    /// The `seq`-th ticket of the stream with `p_inter` instances per batch.
    pub fn from_sequence(seq: u64, p_inter: usize) -> Self {
        let p = p_inter as u64;
        Ticket {
            batch: seq / p,
            instance: seq % p,
        }
    }

    /// Position of this ticket in the consumption order (inverse of
    /// [`Ticket::from_sequence`]).
    pub fn sequence(self, p_inter: usize) -> u64 {
        self.batch * p_inter as u64 + self.instance
    }

    /// The sampler seed for this ticket (the `base_seed ⊕ hash(b, i)`
    /// scheme shared by both sampling paths).
    pub fn seed(self, base_seed: u64) -> u64 {
        instance_seed(base_seed, self.batch, self.instance)
    }
}

/// Sample `count` subgraphs in parallel on the current rayon pool.
pub fn sample_many<S: GraphSampler + ?Sized>(
    sampler: &S,
    g: &dyn Topology,
    count: usize,
    base_seed: u64,
    batch: u64,
) -> Vec<InducedSubgraph> {
    (0..count)
        .into_par_iter()
        .map(|i| {
            let ticket = Ticket {
                batch,
                instance: i as u64,
            };
            sampler.sample_subgraph(g, ticket.seed(base_seed))
        })
        .collect()
}

/// A pool of pre-sampled subgraphs (`{G_i}` in Alg. 5).
///
/// `pop` takes the next subgraph; when the pool is empty the caller
/// invokes [`SubgraphPool::refill`], which launches `p_inter` parallel
/// sampler instances.
pub struct SubgraphPool {
    queue: VecDeque<InducedSubgraph>,
    base_seed: u64,
    batch: u64,
    /// Number of sampler instances launched per refill (`p_inter`).
    pub p_inter: usize,
}

impl SubgraphPool {
    /// Create an empty pool refilled `p_inter` subgraphs at a time.
    pub fn new(p_inter: usize, base_seed: u64) -> Self {
        assert!(p_inter >= 1);
        SubgraphPool {
            queue: VecDeque::new(),
            base_seed,
            batch: 0,
            p_inter,
        }
    }

    /// Subgraphs currently available.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Whether the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Refill batches consumed so far.
    pub fn batches(&self) -> u64 {
        self.batch
    }

    /// Launch `p_inter` parallel sampler instances and enqueue their
    /// subgraphs (Alg. 5 lines 3–5).
    pub fn refill<S: GraphSampler + ?Sized>(&mut self, sampler: &S, g: &dyn Topology) {
        let subs = sample_many(sampler, g, self.p_inter, self.base_seed, self.batch);
        self.batch += 1;
        self.queue.extend(subs);
    }

    /// Pop the next subgraph, refilling first if the pool is empty
    /// (Alg. 5 lines 3–6).
    pub fn pop_or_refill<S: GraphSampler + ?Sized>(
        &mut self,
        sampler: &S,
        g: &dyn Topology,
    ) -> InducedSubgraph {
        if self.queue.is_empty() {
            self.refill(sampler, g);
        }
        self.queue
            .pop_front()
            .expect("refill produced no subgraphs")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dashboard::{DashboardSampler, FrontierConfig};
    use gsgcn_graph::{CsrGraph, GraphBuilder};

    fn ring(n: usize) -> CsrGraph {
        GraphBuilder::new(n)
            .add_edges((0..n as u32).map(|i| (i, (i + 1) % n as u32)))
            .build()
    }

    fn sampler() -> DashboardSampler {
        DashboardSampler::new(FrontierConfig {
            frontier_size: 5,
            budget: 25,
            ..FrontierConfig::default()
        })
    }

    #[test]
    fn refill_fills_p_inter_subgraphs() {
        let g = ring(200);
        let mut pool = SubgraphPool::new(4, 99);
        pool.refill(&sampler(), &g);
        assert_eq!(pool.len(), 4);
        assert_eq!(pool.batches(), 1);
    }

    #[test]
    fn pop_or_refill_auto_refills() {
        let g = ring(200);
        let mut pool = SubgraphPool::new(3, 1);
        let s = sampler();
        for i in 0..7 {
            let sub = pool.pop_or_refill(&s, &g);
            assert!(sub.num_vertices() > 0, "iteration {i}");
        }
        assert_eq!(pool.batches(), 3); // refills at iterations 0, 3, 6
        assert_eq!(pool.len(), 2);
    }

    #[test]
    fn pool_contents_deterministic_across_thread_counts() {
        let g = ring(300);
        let s = sampler();
        let run = |threads: usize| -> Vec<Vec<u32>> {
            let tp = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap();
            tp.install(|| {
                let mut pool = SubgraphPool::new(6, 42);
                pool.refill(&s, &g);
                (0..6)
                    .map(|_| {
                        let sub = pool.pop_or_refill(&s, &g);
                        sub.origin
                    })
                    .collect()
            })
        };
        assert_eq!(
            run(1),
            run(4),
            "pool contents must not depend on thread count"
        );
    }

    #[test]
    fn ticket_sequence_roundtrip() {
        for p_inter in [1usize, 3, 4, 7] {
            for seq in 0..40u64 {
                let t = Ticket::from_sequence(seq, p_inter);
                assert!(t.instance < p_inter as u64);
                assert_eq!(t.sequence(p_inter), seq, "p_inter {p_inter} seq {seq}");
            }
        }
    }

    #[test]
    fn ticket_seed_matches_instance_seed() {
        let t = Ticket {
            batch: 5,
            instance: 2,
        };
        assert_eq!(t.seed(99), instance_seed(99, 5, 2));
    }

    #[test]
    fn instance_seeds_distinct() {
        let mut seen = std::collections::HashSet::new();
        for b in 0..8u64 {
            for i in 0..8u64 {
                assert!(
                    seen.insert(instance_seed(7, b, i)),
                    "collision at ({b},{i})"
                );
            }
        }
    }

    #[test]
    fn different_instances_sample_different_subgraphs() {
        let g = ring(500);
        let subs = sample_many(&sampler(), &g, 4, 5, 0);
        // With 500 vertices and 25-vertex samples, identical outputs would
        // indicate seed reuse.
        assert!(
            subs.windows(2).any(|w| w[0].origin != w[1].origin),
            "all parallel instances produced identical subgraphs"
        );
    }
}
